(* The paper's extended example end to end: a block-structured language
   whose compiler uses the symbol table only through its algebraic
   interface — so the axioms themselves can serve as the implementation,
   and the stack-of-arrays representation can be verified against them.

     dune exec examples/symboltable_compiler.exe *)

open Blocklang

let program_source =
  {|
begin
  decl n : int;
  decl total : int;
  n := 10;
  total := 0;
  begin
    decl n : int;              -- shadows the outer n
    decl twice : int;
    n := 3;
    twice := n * 2;
    total := twice + 1;
    print twice
  end;
  total := total + n;
  print total;
  print n
end
|}

let faulty_source =
  {|
begin
  decl a : int;
  begin
    decl a : int;
    decl a : bool;             -- duplicate in the same block
    b := a                     -- undeclared
  end;
  a := true                    -- type mismatch
end
|}

let () =
  (* 1. The same checker, functorized over the SYMTAB interface, runs on a
     production data structure and on the bare axioms. *)
  Fmt.pr "=== one checker, interchangeable symbol tables (section 5) ===@.";
  List.iter
    (fun backend ->
      Fmt.pr "backend %-16s: %a@."
        (Driver.backend_name backend)
        Driver.pp_outcome
        (Driver.run_source backend program_source))
    Driver.all_backends;
  Fmt.pr "@.";

  (* 2. Diagnostics agree too. *)
  Fmt.pr "=== diagnostics on a faulty program ===@.";
  List.iter
    (fun backend ->
      Fmt.pr "backend %s:@.%a@."
        (Driver.backend_name backend)
        Driver.pp_outcome
        (Driver.check_source backend faulty_source))
    Driver.all_backends;
  Fmt.pr "@.";

  (* 3. Peek inside the algebraic backend: the "data structure" is a term. *)
  Fmt.pr "=== the algebraic backend's state is a constructor term ===@.";
  let program = Parser.parse_exn program_source in
  let ids = Ast.identifiers program in
  let st = Symtab_algebraic.create ~ids in
  let st = Symtab_algebraic.enterblock st in
  let st = Symtab_algebraic.add st "n" (Adt_specs.Attributes.mk ~ty:0 ~slot:0) in
  let st = Symtab_algebraic.add st "twice" (Adt_specs.Attributes.mk ~ty:0 ~slot:1) in
  Fmt.pr "state after INIT; ENTERBLOCK; ADD n; ADD twice:@.  %a@." Adt.Term.pp
    (Symtab_algebraic.term st);
  Fmt.pr "IS_INBLOCK?(_, n)    = %b@." (Symtab_algebraic.is_inblock st "n");
  (match Symtab_algebraic.leaveblock st with
  | Some st' ->
    Fmt.pr "after LEAVEBLOCK     : %a@." Adt.Term.pp (Symtab_algebraic.term st');
    Fmt.pr "n visible afterwards : %b@.@."
      (Option.is_some (Symtab_algebraic.retrieve st' "n"))
  | None -> assert false);

  (* 4. And the production representation is *proved* against the axioms. *)
  Fmt.pr "=== the paper's representation proof, replayed mechanically ===@.";
  let results = Adt_specs.Refinement.verify () in
  Fmt.pr "%a@." Adt_specs.Refinement.pp_results results;
  Fmt.pr "all nine axioms verified: %b@."
    (Adt_specs.Refinement.all_proved results)
