(* The paper's ring-buffer figures: two different program segments leave
   the Bounded Queue's representation in visibly different states, yet the
   abstraction function maps both to the same abstract value — "the mapping
   from values to representations may be one-to-many".

     dune exec examples/bounded_queue_phi.exe *)

open Adt
open Adt_specs

let a = Builtins.item 1 (* the paper's A *)
let b = Builtins.item 2 (* B *)
let c = Builtins.item 3 (* C *)
let d = Builtins.item 4 (* D *)

let () =
  (* Program segment 1 (the paper's first figure):
       x := EMPTY_Q; ADD A; ADD B; ADD C; REMOVE; ADD D *)
  let x1 =
    Bounded_queue_impl.(
      empty |> Fun.flip add a |> Fun.flip add b |> Fun.flip add c |> remove
      |> Fun.flip add d)
  in
  (* Program segment 2 (the second figure): ADD B; ADD C; ADD D *)
  let x2 =
    Bounded_queue_impl.(
      empty |> Fun.flip add b |> Fun.flip add c |> Fun.flip add d)
  in
  Fmt.pr "segment 1 (ADD A,B,C; REMOVE; ADD D):@.  %a@." Bounded_queue_impl.pp_state x1;
  Fmt.pr "segment 2 (ADD B,C,D):@.  %a@.@." Bounded_queue_impl.pp_state x2;
  Fmt.pr "internal states equal:  %b@." (Bounded_queue_impl.state_equal x1 x2);
  let phi1 = Bounded_queue_impl.abstraction x1 in
  let phi2 = Bounded_queue_impl.abstraction x2 in
  Fmt.pr "Phi(segment 1) = %a@." Term.pp phi1;
  Fmt.pr "Phi(segment 2) = %a@." Term.pp phi2;
  Fmt.pr "abstract values equal:  %b@.@." (Term.equal phi1 phi2);

  (* The same two segments, interpreted purely symbolically. *)
  let interp = Interp.create Bounded_queue_spec.spec in
  let seg1 =
    Bounded_queue_spec.(
      remove_q (of_items [ a; b; c ]) |> Fun.flip add_q d)
  in
  let seg2 = Bounded_queue_spec.of_items [ b; c; d ] in
  Fmt.pr "symbolically: segment 1 ~~> %a@." Interp.pp_value (Interp.eval interp seg1);
  Fmt.pr "symbolically: segment 2 ~~> %a@.@." Interp.pp_value (Interp.eval interp seg2);

  (* Both front elements agree with the figures: B. *)
  Fmt.pr "FRONT of both segments: %a / %a (paper: B)@."
    Term.pp (Bounded_queue_impl.front x1)
    Interp.pp_value (Interp.eval interp (Bounded_queue_spec.front_q seg1));

  (* The bound is a client obligation, like Assumption 1: *)
  Fmt.pr "@.adding a fourth element raises the implementation's Error: %b@."
    (match Bounded_queue_impl.add x2 a with
    | _ -> false
    | exception Bounded_queue_impl.Error -> true);
  (* ... which the specification can even see coming: *)
  Fmt.pr "IS_FULL? of segment 2, symbolically: %a@."
    Interp.pp_value (Interp.eval interp (Bounded_queue_spec.is_full seg2))
