(* Quickstart: specify the paper's Queue algebraically, check the
   specification, and run it — with no implementation in sight.

     dune exec examples/quickstart.exe *)

open Adt

let queue_source =
  {|
spec Item
  sort Item
  ops
    APPLE : -> Item
    PEAR : -> Item
    PLUM : -> Item
  constructors APPLE PEAR PLUM
end

spec Queue
  uses Item
  sort Queue
  ops
    NEW : -> Queue
    ADD : Queue Item -> Queue
    FRONT : Queue -> Item
    REMOVE : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW ADD
  vars
    q : Queue
    i : Item
  axioms
    [1] IS_EMPTY?(NEW) = true
    [2] IS_EMPTY?(ADD(q, i)) = false
    [3] FRONT(NEW) = error
    [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
    [5] REMOVE(NEW) = error
    [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
|}

let () =
  (* 1. Parse the specification. *)
  let spec =
    match Parser.parse_spec queue_source with
    | Ok spec -> spec
    | Error e -> Fmt.failwith "parse error: %a" Parser.pp_error e
  in
  Fmt.pr "Parsed specification:@.@.%a@.@." Pretty.pp_spec_source spec;

  (* 2. Is it sufficiently complete?  Consistent? *)
  let completeness = Completeness.check spec in
  Fmt.pr "Sufficiently complete: %b@." (Completeness.is_complete completeness);
  let consistency = Consistency.check spec in
  Fmt.pr "Locally confluent: %b; consistent: %b@.@."
    (Consistency.locally_confluent consistency)
    (Consistency.is_consistent spec consistency);

  (* 3. Evaluate terms symbolically — the axioms ARE the implementation. *)
  let interp = Interp.create spec in
  let eval src =
    match Parser.parse_term spec src with
    | Ok term -> Fmt.pr "  %s  ~~>  %a@." src Interp.pp_value (Interp.eval interp term)
    | Error e -> Fmt.failwith "term error: %a" Parser.pp_error e
  in
  Fmt.pr "Symbolic evaluation (FIFO behaviour falls out of the axioms):@.";
  eval "FRONT(ADD(ADD(NEW, APPLE), PEAR))";
  eval "FRONT(REMOVE(ADD(ADD(NEW, APPLE), PEAR)))";
  eval "IS_EMPTY?(REMOVE(REMOVE(ADD(ADD(NEW, APPLE), PEAR))))";
  eval "FRONT(NEW)";
  eval "FRONT(ADD(REMOVE(NEW), APPLE))";
  (* error propagates *)
  Fmt.pr "@.";

  (* 4. Watch the rewriting engine work. *)
  let term =
    match Parser.parse_term spec "FRONT(REMOVE(ADD(ADD(NEW, APPLE), PEAR)))" with
    | Ok t -> t
    | Error _ -> assert false
  in
  let nf, events = Interp.trace interp term in
  Fmt.pr "Trace of FRONT(REMOVE(ADD(ADD(NEW, APPLE), PEAR))):@.";
  List.iter (fun e -> Fmt.pr "  %a@." Rewrite.pp_event e) events;
  Fmt.pr "  normal form: %a@.@." Term.pp nf;

  (* 5. Forget a boundary axiom and let the checker prompt for it. *)
  let broken = Spec.without_axiom "5" spec in
  Fmt.pr "After deleting axiom [5] (REMOVE(NEW) = error):@.";
  List.iter
    (fun p -> Fmt.pr "  %a@." Heuristics.pp_prompt p)
    (Heuristics.prompts broken);

  (* 6. The same FIFO behaviour, proved rather than tested. *)
  let cfg = Proof.config spec in
  let q = Term.var "q" (Sort.v "Queue") and i = Term.var "i" (Sort.v "Item") in
  let add a b = Term.app (Spec.op_exn spec "ADD") [ a; b ]
  and is_empty t = Term.app (Spec.op_exn spec "IS_EMPTY?") [ t ]
  and remove t = Term.app (Spec.op_exn spec "REMOVE") [ t ] in
  let goal = (is_empty (remove (add q i)), is_empty q) in
  Fmt.pr "@.Proving IS_EMPTY?(REMOVE(ADD(q, i))) = IS_EMPTY?(q):@.";
  match Proof.prove cfg goal with
  | Proof.Proved p -> Fmt.pr "%a@." Proof.pp_proof p
  | Proof.Unknown _ as u -> Fmt.pr "%a@." Proof.pp_outcome u
