(* The paper's language-change exercise (end of section 4): adapt the
   compiler to a language where blocks inherit only the globals named in a
   "knows list". The claim: only the axioms that explicitly deal with
   ENTERBLOCK change — everything else, including the rest of the compiler,
   is untouched.

     dune exec examples/knows_variant.exe *)

open Adt
open Adt_specs

let () =
  (* 1. The axiom diff, computed mechanically. *)
  let changed, kept = Symboltable_knows_spec.changed_axioms () in
  let is_symboltable_axiom ax =
    let head = Axiom.head ax in
    List.exists (Sort.equal Symboltable_spec.sort)
      (Op.result head :: Op.args head)
  in
  let changed_st = List.filter is_symboltable_axiom changed in
  let mentions_enterblock ax =
    Term.count_op "ENTERBLOCK" (Axiom.lhs ax)
    + Term.count_op "ENTERBLOCK" (Axiom.rhs ax)
    > 0
  in
  Fmt.pr "=== axiom diff: plain Symboltable vs knows-list variant ===@.";
  Fmt.pr "changed Symboltable axioms:@.";
  List.iter (fun ax -> Fmt.pr "  %a@." Axiom.pp ax) changed_st;
  Fmt.pr "kept unchanged: %d axiom(s)@."
    (List.length (List.filter is_symboltable_axiom kept));
  Fmt.pr "every changed axiom mentions ENTERBLOCK: %b (the paper's claim)@.@."
    (List.for_all mentions_enterblock changed_st);

  (* 2. The new level: type Knowlist, specified and immediately usable. *)
  let interp = Interp.create Knowlist_spec.spec in
  let x = Identifier.id "X" and y = Identifier.id "Y" in
  let klist = Knowlist_spec.of_ids [ x ] in
  Fmt.pr "=== type Knowlist in action ===@.";
  Fmt.pr "IS_IN?([X], X) ~~> %a@." Interp.pp_value
    (Interp.eval interp (Knowlist_spec.is_in klist x));
  Fmt.pr "IS_IN?([X], Y) ~~> %a@.@." Interp.pp_value
    (Interp.eval interp (Knowlist_spec.is_in klist y));

  (* 3. The adapted compiler: same checker, knows-aware backends. *)
  let source =
    {|
begin
  decl x : int;
  decl y : int;
  x := 1;
  y := 2;
  begin knows x
    decl z : int;
    z := x * 2;
    z := z + y;        -- y is NOT in the knows list
    print z
  end
end
|}
  in
  Fmt.pr "=== checking a knows-list program on both capable backends ===@.";
  List.iter
    (fun backend ->
      Fmt.pr "%s:@.%a@."
        (Blocklang.Driver.backend_name backend)
        Blocklang.Driver.pp_outcome
        (Blocklang.Driver.check_source backend source))
    [ Blocklang.Driver.Direct; Blocklang.Driver.Algebraic_knows ];

  (* 4. And a correct knows program runs identically everywhere. *)
  let ok_source =
    {|
begin
  decl x : int;
  x := 21;
  begin knows x
    decl z : int;
    z := x + x;
    print z
  end
end
|}
  in
  Fmt.pr "=== a correct knows-list program ===@.";
  List.iter
    (fun backend ->
      Fmt.pr "%s: %a@."
        (Blocklang.Driver.backend_name backend)
        Blocklang.Driver.pp_outcome
        (Blocklang.Driver.run_source backend ok_source))
    [ Blocklang.Driver.Direct; Blocklang.Driver.Algebraic_knows ]
