(** Front ends: the request loop over channels and over a Unix socket.

    [serve] reads one request line at a time, answers, and flushes —
    suitable for stdio pipelines ([adtc serve]) and for expect-testable
    batch replays ([adtc batch], which echoes each input line prefixed
    with [> ] so the transcript documents itself).

    [serve_socket] is the concurrent front end: every accepted connection
    gets its own thread, all threads sharing one {!Session} — one cache,
    one set of metrics, which is the point of running a long-lived engine.
    The session API is the abstraction boundary (Liskov & Zilles):
    nothing in the protocol changed when the server under it became
    concurrent. Admission is capped; a client beyond the cap is answered
    [error busy ...] and closed immediately — bounded backpressure
    instead of an unbounded queue. SIGPIPE is ignored and client I/O
    failures are contained per-connection, so a client disconnecting
    mid-response drops that client only, never the engine. *)

val serve : ?echo:bool -> Session.t -> in_channel -> out_channel -> unit
(** Loops until end of input or a [quit] request. [echo] (default false)
    copies every input line to the output prefixed with [> ]. *)

val default_max_clients : int
(** 64. *)

val serve_socket :
  ?max_clients:int ->
  ?handle_signals:bool ->
  ?stop:bool ref ->
  Session.t ->
  path:string ->
  unit
(** Binds [path] and serves until told to stop. A stale socket file at
    [path] is unlinked first; anything else already there raises
    [Failure] — the server never deletes a file it cannot have created.

    [max_clients] (default {!default_max_clients}) bounds concurrent
    connections; excess connections receive one [error busy] line and are
    closed. [handle_signals] (default true) installs SIGINT/SIGTERM
    handlers that set [stop]; tests pass [false] and flip [stop]
    themselves. Once [stop] is observed (within ~100ms), the server stops
    accepting, forces end-of-file on idle connections, waits for every
    in-flight request to finish and be answered, and removes the socket
    — graceful drain, not abort. *)
