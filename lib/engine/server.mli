(** Front ends: the request loop over channels and over a Unix socket.

    [serve] reads one request line at a time, answers, and flushes —
    suitable for stdio pipelines ([adtc serve]) and for expect-testable
    batch replays ([adtc batch], which echoes each input line prefixed
    with [> ] so the transcript documents itself). [serve_socket] accepts
    connections sequentially on a Unix domain socket; the session — its
    caches and metrics — is shared across connections, which is the point
    of running a long-lived engine. *)

val serve : ?echo:bool -> Session.t -> in_channel -> out_channel -> unit
(** Loops until end of input or a [quit] request. [echo] (default false)
    copies every input line to the output prefixed with [> ]. *)

val serve_socket : Session.t -> path:string -> unit
(** Binds [path] (unlinking a stale socket first), then accepts and
    serves connections one at a time, forever; a client I/O failure
    closes that connection only. The socket is unlinked on exit. *)
