(** Front ends: the request loop over channels and over a Unix socket.

    [serve] reads one request line at a time, answers, and flushes —
    suitable for stdio pipelines ([adtc serve]) and for expect-testable
    batch replays ([adtc batch], which echoes each input line prefixed
    with [> ] so the transcript documents itself).

    [serve_socket] is the concurrent front end: a fixed pool of OCaml 5
    domains (one per core when sized by the CLI) all accept on the shared
    listening socket, and every accepted connection gets a worker thread
    inside the domain that accepted it — all of them sharing one
    {!Session}, whose caches and metrics are striped per domain. The
    session API is the abstraction boundary (Liskov & Zilles): nothing in
    the protocol changed when the server under it became concurrent, and
    nothing changed again when it became parallel. Admission is capped
    globally across the pool; a client beyond the cap is answered
    [error busy ...] and closed immediately — bounded backpressure
    instead of an unbounded queue. SIGPIPE is ignored and client I/O
    failures are contained per-connection, so a client disconnecting
    mid-response drops that client only, never the engine. *)

val serve : ?echo:bool -> Session.t -> in_channel -> out_channel -> unit
(** Loops until end of input or a [quit] request. [echo] (default false)
    copies every input line to the output prefixed with [> ]. *)

val default_max_clients : int
(** 64. *)

val send_line : Unix.file_descr -> string -> unit
(** Best-effort write of one line (a trailing newline is appended):
    retries [EINTR], swallows every other write error — the accept loop
    uses it to refuse busy clients, and a signal or a vanished client
    must never kill the server. Exposed for the regression tests. *)

val serve_socket :
  ?max_clients:int ->
  ?domains:int ->
  ?handle_signals:bool ->
  ?stop:bool ref ->
  Session.t ->
  path:string ->
  unit
(** Binds [path] and serves until told to stop. A stale socket file at
    [path] is unlinked first; anything else already there raises
    [Failure] — the server never deletes a file it cannot have created.

    [max_clients] (default {!default_max_clients}) bounds concurrent
    connections across the whole pool; excess connections receive one
    [error busy] line and are closed. [domains] (default 1) sizes the
    accept pool: each domain runs its own accept loop on the shared
    listening socket and owns the worker threads of the connections it
    accepted ([adtc serve --domains], one per core by default). Raises
    [Invalid_argument] when either is not positive.

    [handle_signals] (default true) installs SIGINT/SIGTERM handlers
    that set [stop]; tests pass [false] and flip [stop] themselves. Once
    [stop] is observed (within ~100ms), the pool stops accepting, idle
    connections are forced to end-of-file, every in-flight request
    finishes and is answered, and the domains are joined before the
    socket is removed — graceful drain, not abort. *)
