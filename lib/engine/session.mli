(** Engine session state.

    A session is what makes the engine better than one-shot CLI calls: the
    specification library is parsed and turned into rewrite systems {e
    once}, and each specification owns a memoized interpreter whose
    bounded LRU normal-form cache ({!Adt.Rewrite.Memo}) is shared across
    every subsequent request — the warm-path payoff measured by benchmark
    E9. The session also carries the per-request limits and the metrics
    counters.

    A session is shared by every connection thread of the socket server,
    so its mutable state is mutex-protected: each entry's [lock] guards
    that specification's memo cache (hold it across any evaluation that
    reads or fills the cache — {!Dispatch} does), and {!Metrics} carries
    its own lock. Entries for different specifications evaluate
    concurrently; the registry itself is immutable after {!create}. *)

type entry = {
  spec : Adt.Spec.t;
  interp : Adt.Interp.t;
  lock : Mutex.t;  (** Guards [interp]'s shared memo cache. *)
}

type t

val create :
  ?fuel:int ->
  ?timeout:float ->
  ?cache_capacity:int ->
  ?slowlog_ms:float ->
  ?slowlog_capacity:int ->
  ?tracing:bool ->
  Adt.Spec.t list ->
  t
(** [fuel] is the per-request step ceiling (default
    {!Adt.Rewrite.default_fuel}); [timeout] the per-request wall-clock
    budget (default none); [cache_capacity] the per-specification LRU
    capacity (default {!Adt.Rewrite.Memo.default_capacity}). A later
    specification with the name of an earlier one replaces it.

    [slowlog_ms] switches on the slow-request ring log: requests whose
    latency is at least the threshold are recorded (trace ID, kind,
    spec, fuel, span breakdown) into a ring of [slowlog_capacity]
    entries (default {!Obs.Slowlog.default_capacity}), queryable via the
    [slowlog] verb. [tracing] controls whether the dispatcher builds a
    span tree per request; it defaults to whether the slow log is on
    (the log needs span breakdowns), and disabled tracing costs ~nothing
    (benchmark E11). *)

val find : t -> string -> entry option
val spec_names : t -> string list
(** In registration order. *)

val limits : t -> Limits.t
val metrics : t -> Metrics.t

val slowlog : t -> Obs.Slowlog.t option
(** The shared slow-request log, when enabled. *)

val tracing : t -> bool
(** Whether the dispatcher should trace requests. *)

type cache_totals = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val cache_totals : t -> cache_totals
(** Summed over every specification's cache. *)

val prometheus : t -> string
(** The session's full Prometheus text exposition: request counters (by
    kind), malformed/error totals, latency and fuel histograms
    ([_bucket]/[_sum]/[_count] series), cache hit/miss/eviction and
    occupancy, and — when enabled — slow-log gauges. Newline-terminated
    lines; served by the [metrics] verb and [adtc stats --prometheus]. *)
