(** Engine session state.

    A session is what makes the engine better than one-shot CLI calls: the
    specification library is parsed and turned into rewrite systems {e
    once}, and each specification owns memoized interpreters whose bounded
    LRU normal-form caches ({!Adt.Rewrite.Memo}) are shared across every
    subsequent request — the warm-path payoff measured by benchmark E9.
    The session also carries the per-request limits and the metrics
    counters.

    A session is shared by every connection thread of every domain of the
    socket server, so its mutable state is striped per domain: each
    specification entry holds one interpreter slot per domain stripe,
    forked lazily ({!Adt.Interp.fork}) from a shared prototype so the
    compiled rewrite system is built once while memo state stays
    domain-local, and {!Metrics} stripes its counters the same way.
    Evaluate through {!with_interp}, which picks the calling domain's slot
    and holds its lock. A single-threaded process only ever materializes
    slot 0, so it behaves exactly like the pre-striping design (cache
    capacity included). The registry itself is immutable after
    {!create}. *)

type entry
(** One specification's state: the spec plus its striped interpreter
    slots. *)

type t

val create :
  ?fuel:int ->
  ?timeout:float ->
  ?cache_capacity:int ->
  ?slowlog_ms:float ->
  ?slowlog_capacity:int ->
  ?tracing:bool ->
  ?stripes:int ->
  ?store:Persist.Store.t ->
  ?env:(string -> Adt.Spec.t option) ->
  Adt.Spec.t list ->
  t
(** [fuel] is the per-request step ceiling (default
    {!Adt.Rewrite.default_fuel}); [timeout] the per-request wall-clock
    budget (default none); [cache_capacity] the per-slot LRU capacity
    (default {!Adt.Rewrite.Memo.default_capacity}). A later
    specification with the name of an earlier one replaces it.

    [slowlog_ms] switches on the slow-request ring log: requests whose
    latency is at least the threshold are recorded (trace ID, kind,
    spec, fuel, span breakdown) into a ring of [slowlog_capacity]
    entries (default {!Obs.Slowlog.default_capacity}), queryable via the
    [slowlog] verb. [tracing] controls whether the dispatcher builds a
    span tree per request; it defaults to whether the slow log is on
    (the log needs span breakdowns), and disabled tracing costs ~nothing
    (benchmark E11).

    [stripes] fixes the number of per-domain stripes for both the
    metrics and the interpreter slots (default: the machine's
    recommended domain count, at least 8 — see {!Metrics.create}).

    [store] plugs in the persistent on-disk result store: each
    specification's entry (keyed by {!Adt.Spec_digest.spec}) is loaded at
    creation — the warm start — and normal forms, check/lint payloads and
    testgen verdicts computed during the session are written back through
    it (see {!persist_flush}). [env] resolves [uses] clauses when
    document-session edits are parsed ({!docs}). *)

val entry_spec : entry -> Adt.Spec.t

val with_interp : entry -> (Adt.Interp.t -> 'a) -> 'a
(** Runs the function on the calling domain's interpreter slot, holding
    that slot's lock (released on exception): the way every evaluation
    that reads or fills a memo cache must run. The slot is forked from
    the entry's prototype on the domain stripe's first use. *)

val find : t -> string -> entry option
val spec_names : t -> string list
(** In registration order. *)

val limits : t -> Limits.t
val metrics : t -> Metrics.t

val slowlog : t -> Obs.Slowlog.t option
(** The shared slow-request log, when enabled. *)

val tracing : t -> bool
(** Whether the dispatcher should trace requests. *)

type cache_totals = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val cache_totals : t -> cache_totals
(** Summed over every specification's materialized interpreter slots. *)

(** {1 The persistent store}

    When the session was created with a [store], every specification
    entry carries its slice of the on-disk cache: normal forms keyed by
    the input term (hash-consed id in memory, canonical rendering on
    disk) and opaque meta payloads keyed by [(kind, key)]. A hit answers
    without evaluation — and reports zero steps, the memo-hit
    convention. All probes and recordings are no-ops without a store. *)

val store : t -> Persist.Store.t option

val persist_find : entry -> Adt.Term.t -> (Adt.Interp.value * int) option
(** The cached classification of the term's normal form plus the rewrite
    steps the cold run paid, when the store (or this session, earlier)
    has seen the term under this specification digest. *)

val persist_record : t -> entry -> Adt.Term.t -> Adt.Interp.value -> int -> unit
(** Remembers an evaluation outcome. [Diverged] is never recorded — a
    larger fuel budget could still normalize the term. Buffered; written
    back in batches and at {!persist_flush}. *)

val persist_meta_find : entry -> kind:string -> key:string -> string option
val persist_meta_record : t -> entry -> kind:string -> key:string -> string -> unit
(** Opaque response payloads (check/lint/testgen) under the same
    digest-keyed entry. The first recording for a [(kind, key)] wins for
    the life of the process; the store's replace-on-merge keeps the
    newest across processes. *)

val persist_flush : t -> unit
(** Writes every entry's buffered records to the store (atomic per
    entry). Called by the server at end of connection and shutdown; call
    it before dropping a session whose results should survive. *)

type persist_totals = {
  hits : int;
  misses : int;
  corrupt : int;  (** Validation failures, store- and parse-level. *)
  loaded : int;  (** Records served from disk at session creation. *)
  files : int;  (** Entry files on disk now. *)
  bytes : int;
  read_only : bool;
}

val persist_totals : t -> persist_totals option
(** [None] without a store. *)

val docs : t -> Docsession.Manager.t
(** The versioned-document layer behind the [session-open] /
    [session-edit] / [session-status] verbs. *)

val prometheus : t -> string
(** The session's full Prometheus text exposition: request counters (by
    kind), malformed/error totals, latency and fuel histograms
    ([_bucket]/[_sum]/[_count] series), cache hit/miss/eviction and
    occupancy, and — when enabled — slow-log gauges. Counters are the
    exact merge of every metrics stripe ({!Metrics.snapshot}).
    Newline-terminated lines; served by the [metrics] verb and
    [adtc stats --prometheus]. *)
