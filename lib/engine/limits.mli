(** Per-request resource limits.

    The engine serves untrusted request streams against axioms that may
    not terminate (section 5's symbolic interpretation has no termination
    guarantee for arbitrary specifications), so every request runs under
    two independent budgets:

    - a {b fuel} budget — a rewrite-step count enforced inside the
      normalization loop (a request may lower but never raise the
      session's ceiling);
    - a {b wall-clock} budget — a real-time alarm that interrupts work the
      fuel metric prices badly (pathological matching, huge terms).

    Either exhaustion yields a structured error response; the session and
    its cache survive. *)

type t = {
  fuel : int;  (** Per-request rewrite-step ceiling. *)
  timeout : float option;  (** Per-request wall-clock budget, seconds. *)
}

val v : ?fuel:int -> ?timeout:float -> unit -> t
(** [fuel] defaults to {!Adt.Rewrite.default_fuel}; no timeout unless
    given. Raises [Invalid_argument] on a non-positive budget. *)

val effective_fuel : t -> int option -> int
(** The budget a request gets: its own [fuel=N] option capped by the
    session ceiling, or the ceiling when it asks for nothing. *)

exception Timed_out

val with_timeout : float option -> (unit -> 'a) -> ('a, [ `Timeout ]) result
(** Runs the thunk under a real-time alarm ([Unix.setitimer]); restores
    the previous signal handler and timer state afterwards. [None] means
    no limit. Not reentrant (the engine dispatches one request at a
    time). *)
