(** Per-request resource limits.

    The engine serves untrusted request streams against axioms that may
    not terminate (section 5's symbolic interpretation has no termination
    guarantee for arbitrary specifications), so every request runs under
    two independent budgets:

    - a {b fuel} budget — a rewrite-step count enforced inside the
      normalization loop (a request may lower but never raise the
      session's ceiling);
    - a {b wall-clock} budget — a deadline checked cooperatively at every
      rewrite step (the {!Adt.Rewrite} poll hook), which interrupts work
      the fuel metric prices badly (pathological matching, huge terms).

    Either exhaustion yields a structured error response; the session and
    its cache survive. The deadline is cooperative rather than
    signal-based on purpose: a [SIGALRM] handler is process-global, so
    under the threaded server one request's alarm could fire inside
    another request — and even single-threaded it could fire between the
    work finishing and the alarm being disarmed, escaping as a stray
    exception. A closure checking the clock has neither race and is
    per-request by construction. *)

type t = {
  fuel : int;  (** Per-request rewrite-step ceiling. *)
  timeout : float option;  (** Per-request wall-clock budget, seconds. *)
}

val v : ?fuel:int -> ?timeout:float -> unit -> t
(** [fuel] defaults to {!Adt.Rewrite.default_fuel}; no timeout unless
    given. Raises [Invalid_argument] on a non-positive budget. *)

val effective_fuel : t -> int option -> int
(** The budget a request gets: its own [fuel=N] option capped by the
    session ceiling, or the ceiling when it asks for nothing. *)

exception Timed_out

val with_deadline :
  float option -> ((unit -> unit) option -> 'a) -> ('a, [ `Timeout ]) result
(** [with_deadline timeout f] calls [f poll] where [poll] (to be invoked
    from inside the metered loop — pass it to {!Adt.Interp.eval_count} or
    {!Adt.Proof.config}) raises {!Timed_out} once [timeout] seconds have
    elapsed; the escape is caught here and reported as [Error `Timeout].
    [f None] is called when [timeout] is [None] — no limit. Work that
    completes without ever polling always returns [Ok]: a deadline can
    only interrupt a poll point, never misclassify a finished result.
    Thread-safe and reentrant. *)
