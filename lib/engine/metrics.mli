(** Engine metrics, striped per domain.

    A long-lived evaluation service must be observable: the dispatcher
    counts requests by kind, malformed lines, error responses, rewrite
    steps spent, and summarizes wall-clock latency and per-request fuel
    as fixed-bucket histograms ({!Obs.Hist}) ready for Prometheus
    exposition.

    The counters are striped: each domain records into its own stripe (a
    full set of counters behind its own mutex, selected by [Domain.self]),
    so the request hot path never takes a lock another domain is holding —
    only the systhreads of one domain share a stripe. Reads go through
    {!snapshot}, which merges every stripe {e exactly}: integer counters
    add and histograms combine by the {!Obs.Hist.merge} law, so a snapshot
    taken after quiescence equals what a single global counter set would
    have recorded. Metrics are queryable over the wire through the
    [stats] and [metrics] requests ({!Dispatch}). *)

type t

val create : ?stripes:int -> unit -> t
(** [stripes] (default: the machine's recommended domain count, at least
    8) fixes the number of per-domain stripes; domains map onto stripes
    by [Domain.self mod stripes], so more domains than stripes only
    shares — never corrupts. Raises [Invalid_argument] when
    [stripes < 1]. *)

val stripes : t -> int

(** {1 Recording}

    All recording operations lock only the calling domain's stripe and
    are safe from any thread of any domain. *)

val record_request : t -> string -> unit
(** Bumps the total request counter and the per-kind counter named by
    {!Protocol.kind_name}. Total over the kinds that function can
    return; raises [Invalid_argument] on any other name — adding a
    protocol verb without its counter is a bug caught immediately, not a
    silently mis-binned statistic. *)

val record_kind : t -> string -> unit
(** The per-kind counter alone, without the request total; same totality
    contract as {!record_request}. *)

val record_malformed_request : t -> unit
(** One malformed line: counts towards [requests], [malformed], and
    [errors] atomically (one stripe lock). *)

val record_malformed : t -> unit
(** The malformed counter alone. *)

val add_fuel : t -> int -> unit
(** Adds rewrite-rule applications to the running fuel total ([prove]
    requests included, each rule application inside the proof search
    counting once). *)

val record_rule_hits : t -> string list -> unit
(** Bumps the per-rule lint finding counter for each ADTxxx code, under
    one stripe lock. *)

val record_testgen_run : t -> failures:string list -> unit
(** One conformance suite executed; [failures] names the axioms it
    falsified (one bump per occurrence). *)

val record_outcome :
  t -> latency:float -> ?fuel:int -> error:bool -> unit -> unit
(** Per-request epilogue: observes wall-clock [latency] seconds, the
    request's [fuel] steps when it was fuel-metered, and bumps the error
    counter when the response was an error — all under one stripe
    lock. *)

(** {1 Snapshots} *)

type snapshot = {
  requests : int;  (** Every request line, malformed ones included. *)
  normalize : int;
  check : int;
  skeletons : int;
  lint : int;
  testgen : int;
  prove : int;
  stats : int;
  metrics : int;
  slowlog : int;
  session_open : int;
  session_edit : int;
  session_status : int;
  quit : int;
  malformed : int;
      (** Lines that failed protocol parsing (they also count towards
          [requests] and [errors]). *)
  errors : int;  (** Error responses sent. *)
  fuel_spent : int;
  rule_hits : (string * int) list;
      (** Lint findings per ADTxxx rule code, sorted by code. *)
  testgen_suites : int;
  testgen_failures : (string * int) list;
      (** Axioms falsified per [testgen] run, sorted by axiom name — the
          [adtc_testgen_failures_total{axiom}] series. *)
  latency : Obs.Hist.t;  (** Per-request wall-clock seconds. *)
  fuel_hist : Obs.Hist.t;
      (** Per-request rewrite steps, observed once per fuel-metered
          request (normalize and prove). *)
}

val snapshot : t -> snapshot
(** The exact merge of every stripe, in stripe order. The result is
    detached: it never changes as recording continues. *)

val stripe_snapshots : t -> snapshot list
(** One snapshot per stripe, in stripe order — the decomposition whose
    {!merge}-fold {!snapshot} returns. Exposed so tests can assert the
    merge law against per-domain state. *)

val merge : snapshot -> snapshot -> snapshot
(** Exact combination: integer counters add, labelled counters add per
    label, histograms merge by {!Obs.Hist.merge}. *)

val by_kind : snapshot -> (string * int) list
(** [(kind, count)] for every kind {!record_request} accepts, in
    protocol order. *)

val latency_total : snapshot -> float
(** Seconds, summed over requests. *)

val latency_max : snapshot -> float
