(** Engine metrics.

    A long-lived evaluation service must be observable: the dispatcher
    counts requests by kind, error responses, rewrite steps spent, and
    wall-clock latency. Counters are plain mutable fields — the engine is
    single-threaded per session — and are queryable over the wire through
    the [stats] request ({!Dispatch}). *)

type t = {
  mutable requests : int;  (** Every request line, malformed ones included. *)
  mutable normalize : int;
  mutable check : int;
  mutable skeletons : int;
  mutable prove : int;
  mutable stats : int;
  mutable errors : int;  (** Error responses sent. *)
  mutable fuel_spent : int;
      (** Total rewrite-rule applications across all requests. *)
  mutable latency_total : float;  (** Seconds, summed over requests. *)
  mutable latency_max : float;
}

val create : unit -> t

val record_kind : t -> string -> unit
(** Bumps the counter named by {!Protocol.kind_name}; unknown names only
    count towards [requests]. *)

val observe_latency : t -> float -> unit
