(** Engine metrics.

    A long-lived evaluation service must be observable: the dispatcher
    counts requests by kind, error responses, rewrite steps spent, and
    wall-clock latency. Counters are plain mutable fields shared by every
    connection thread of the server, so all reads and writes must go
    through {!locked}; the counter updates are tiny, so one mutex for the
    whole record costs nothing. They are queryable over the wire through
    the [stats] request ({!Dispatch}). *)

type t = {
  lock : Mutex.t;  (** Guards every mutable field below. *)
  mutable requests : int;  (** Every request line, malformed ones included. *)
  mutable normalize : int;
  mutable check : int;
  mutable skeletons : int;
  mutable prove : int;
  mutable stats : int;
  mutable errors : int;  (** Error responses sent. *)
  mutable fuel_spent : int;
      (** Total rewrite-rule applications across all requests — [prove]
          requests included, each rule application inside the proof search
          counting once. *)
  mutable latency_total : float;  (** Seconds, summed over requests. *)
  mutable latency_max : float;
}

val create : unit -> t

val locked : t -> (unit -> 'a) -> 'a
(** Runs the thunk holding [lock]; released on exception. *)

val record_kind : t -> string -> unit
(** Bumps the counter named by {!Protocol.kind_name}; unknown names only
    count towards [requests]. Call under {!locked}. *)

val observe_latency : t -> float -> unit
(** Call under {!locked}. *)
