(** Engine metrics.

    A long-lived evaluation service must be observable: the dispatcher
    counts requests by kind, malformed lines, error responses, rewrite
    steps spent, and summarizes wall-clock latency and per-request fuel
    as fixed-bucket histograms ({!Obs.Hist}) ready for Prometheus
    exposition. Counters are plain mutable fields shared by every
    connection thread of the server, so all reads and writes must go
    through {!locked}; the counter updates are tiny, so one mutex for the
    whole record costs nothing. They are queryable over the wire through
    the [stats] and [metrics] requests ({!Dispatch}). *)

type t = {
  lock : Mutex.t;  (** Guards every mutable field below. *)
  mutable requests : int;  (** Every request line, malformed ones included. *)
  mutable normalize : int;
  mutable check : int;
  mutable skeletons : int;
  mutable lint : int;
  mutable testgen : int;
  mutable prove : int;
  mutable stats : int;
  mutable metrics : int;
  mutable slowlog : int;
  mutable quit : int;
  mutable malformed : int;
      (** Lines that failed protocol parsing (they also count towards
          [requests] and [errors]). *)
  mutable errors : int;  (** Error responses sent. *)
  mutable fuel_spent : int;
      (** Total rewrite-rule applications across all requests — [prove]
          requests included, each rule application inside the proof search
          counting once. *)
  rule_hits : (string, int) Hashtbl.t;
      (** Lint findings per ADTxxx rule code, across every [lint] request
          served. Access through {!record_rule_hit} and {!rule_hits},
          under {!locked}. *)
  mutable testgen_suites : int;
      (** Conformance suites executed (one per [testgen] request
          served). *)
  testgen_failures : (string, int) Hashtbl.t;
      (** Axioms falsified per [testgen] run, keyed by axiom name — the
          [adtc_testgen_failures_total{axiom}] series. Access through
          {!record_testgen_failure} and {!testgen_failures}, under
          {!locked}. *)
  latency : Obs.Hist.t;  (** Per-request wall-clock seconds. *)
  fuel_hist : Obs.Hist.t;
      (** Per-request rewrite steps, observed once per fuel-metered
          request (normalize and prove). *)
}

val create : unit -> t

val locked : t -> (unit -> 'a) -> 'a
(** Runs the thunk holding [lock]; released on exception. *)

val record_kind : t -> string -> unit
(** Bumps the counter named by {!Protocol.kind_name}. Total over the
    kinds that function can return; raises [Invalid_argument] on any
    other name — adding a protocol verb without its counter is a bug
    caught immediately, not a silently mis-binned statistic. Call under
    {!locked}. *)

val record_malformed : t -> unit
(** Call under {!locked}. *)

val record_rule_hit : t -> string -> unit
(** Bumps the per-rule lint finding counter for an ADTxxx code. Call
    under {!locked}. *)

val rule_hits : t -> (string * int) list
(** [(code, findings)] for every rule that has hit at least once, sorted
    by code. Call under {!locked}. *)

val record_testgen_suite : t -> unit
(** Call under {!locked}. *)

val record_testgen_failure : t -> string -> unit
(** Bumps the per-axiom falsification counter. Call under {!locked}. *)

val testgen_failures : t -> (string * int) list
(** [(axiom, failures)] for every axiom falsified at least once, sorted
    by name. Call under {!locked}. *)

val by_kind : t -> (string * int) list
(** [(kind, count)] for every kind {!record_kind} accepts, in protocol
    order. Call under {!locked}. *)

val observe_latency : t -> float -> unit
(** Call under {!locked}. *)

val observe_fuel : t -> int -> unit
(** Call under {!locked}. *)

val latency_total : t -> float
(** Seconds, summed over requests. Call under {!locked}. *)

val latency_max : t -> float
(** Call under {!locked}. *)
