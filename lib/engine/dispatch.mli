(** The request dispatcher: one protocol request in, one response out.

    Error isolation is the contract: whatever a request does — name an
    unloaded specification, fail to parse, exhaust its fuel or wall-clock
    budget, or trip an internal exception — the dispatcher answers with a
    structured [error] line and leaves the session intact for the next
    request. Every request updates the session's {!Metrics}.

    When the session has tracing on ({!Session.tracing}), each request is
    wrapped in an {!Obs.Trace} span tree — [parse], [dispatch] (with a
    [rewrite] child around the evaluation proper), [respond] — with
    per-rule step attribution fed by the core's [?on_rule] hooks; requests
    at or above the session's slow-log threshold are recorded into
    {!Session.slowlog}. With tracing off, the cost is one option test per
    rule application. *)

type outcome =
  | Silent  (** Blank or comment line: no response. *)
  | Reply of string  (** The rendered response line. *)
  | Closed  (** A [quit] request: the server loop should stop. *)

(** Per-request observation: the span tree under construction and the
    rewrite steps this request has charged (the session-wide
    [fuel_spent] cannot attribute work to a request). *)
type ctx = { trace : Obs.Trace.t; mutable fuel : int }

val handle_line :
  ?read_line:(unit -> string option) -> Session.t -> string -> outcome
(** Parse, enforce limits, evaluate, record metrics, render. Never
    raises. Safe to call concurrently from many threads on one session:
    evaluations on the same specification serialize on the entry lock,
    metrics updates on the metrics lock.

    [read_line] is the transport's body reader: a [session-edit lines=N]
    request consumes the next [N] raw lines through it (its replacement
    source text). Without a reader, body-carrying requests answer a
    protocol error; [None] from the reader mid-body (connection closed)
    does too. *)

val handle_line_obs :
  ?read_line:(unit -> string option) ->
  Session.t ->
  string ->
  outcome * Obs.Trace.result option
(** {!handle_line} plus the finished trace, when the session traces —
    what [adtc trace] prints as a JSON span tree. The trace's
    [total_steps] equals the fuel the request charged, by construction:
    both are fed from the same rule applications. *)

val handle_request :
  ?poll:(unit -> unit) ->
  ?ctx:ctx ->
  ?body:string ->
  Session.t ->
  Protocol.request ->
  Protocol.response
(** The evaluation step alone — fuel accounting included, but no
    request/error/latency counters (exposed for unit tests). [poll] is
    the deadline hook handed to every metered loop the request runs;
    {!handle_line} obtains it from {!Limits.with_deadline}. [ctx]
    defaults to a fresh untraced context. [body] is [Session_edit]'s
    replacement source (already read off the transport). *)
