(** The request dispatcher: one protocol request in, one response out.

    Error isolation is the contract: whatever a request does — name an
    unloaded specification, fail to parse, exhaust its fuel or wall-clock
    budget, or trip an internal exception — the dispatcher answers with a
    structured [error] line and leaves the session intact for the next
    request. Every request updates the session's {!Metrics}. *)

type outcome =
  | Silent  (** Blank or comment line: no response. *)
  | Reply of string  (** The rendered response line. *)
  | Closed  (** A [quit] request: the server loop should stop. *)

val handle_line : Session.t -> string -> outcome
(** Parse, enforce limits, evaluate, record metrics, render. Never
    raises. Safe to call concurrently from many threads on one session:
    evaluations on the same specification serialize on the entry lock,
    metrics updates on the metrics lock. *)

val handle_request :
  ?poll:(unit -> unit) -> Session.t -> Protocol.request -> Protocol.response
(** The evaluation step alone — fuel accounting included, but no
    request/error/latency counters (exposed for unit tests). [poll] is
    the deadline hook handed to every metered loop the request runs;
    {!handle_line} obtains it from {!Limits.with_deadline}. *)
