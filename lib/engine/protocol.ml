type request =
  | Normalize of { spec : string; term : string; fuel : int option }
  | Check of { spec : string }
  | Skeletons of { spec : string }
  | Lint of { spec : string }
  | Testgen of {
      spec : string;
      impl : string option;
      count : int option;
      seed : int option;
    }
  | Prove of {
      spec : string;
      vars : (string * string) list;
      lhs : string;
      rhs : string;
      fuel : int option;
    }
  | Session_open of { spec : string }
  | Session_edit of { spec : string; lines : int }
  | Session_status of { spec : string }
  | Stats of { verbose : bool }
  | Metrics
  | Slowlog
  | Quit

type response =
  | Ok_response of string
  | Error_response of { code : string; message : string }

let sanitize s =
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> pending_space := true
      | c ->
        if !pending_space && Buffer.length buf > 0 then Buffer.add_char buf ' ';
        pending_space := false;
        Buffer.add_char buf c)
    s;
  Buffer.contents buf

let words line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun w -> not (String.equal w ""))

(* leading KEY=VALUE words are options; [allowed] lists the keys the kind
   accepts *)
let take_options ~kind ~allowed ws =
  let rec go opts = function
    | w :: rest when String.contains w '=' -> (
      match String.index_opt w '=' with
      | Some i ->
        let key = String.sub w 0 i in
        let value = String.sub w (i + 1) (String.length w - i - 1) in
        if List.mem key allowed then go ((key, value) :: opts) rest
        else
          Error
            (Fmt.str "unknown option %s for %s%s" key kind
               (if allowed = [] then " (none accepted)"
                else Fmt.str " (accepted: %s)" (String.concat ", " allowed)))
      | None -> Ok (List.rev opts, w :: rest))
    | ws -> Ok (List.rev opts, ws)
  in
  go [] ws

let fuel_option opts =
  match List.assoc_opt "fuel" opts with
  | None -> Ok None
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> Ok (Some n)
    | _ -> Error (Fmt.str "option fuel expects a positive integer, got %s" v))

let bool_option key opts =
  match List.assoc_opt key opts with
  | None -> Ok false
  | Some "true" -> Ok true
  | Some "false" -> Ok false
  | Some v -> Error (Fmt.str "option %s expects true or false, got %s" key v)

let parse_vars = function
  | "-" -> Ok []
  | s ->
    let entries = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | entry :: rest -> (
        match String.index_opt entry ':' with
        | Some i when i > 0 && i < String.length entry - 1 ->
          let name = String.sub entry 0 i in
          let sort = String.sub entry (i + 1) (String.length entry - i - 1) in
          go ((name, sort) :: acc) rest
        | _ ->
          Error
            (Fmt.str "variable declaration %s is not of the form name:Sort"
               entry))
    in
    go [] entries

let split_goal ws =
  let rec go acc = function
    | [] -> None
    | "==" :: rhs -> Some (List.rev acc, rhs)
    | w :: rest -> go (w :: acc) rest
  in
  match go [] ws with
  | Some ((_ :: _ as lhs), (_ :: _ as rhs)) ->
    Some (String.concat " " lhs, String.concat " " rhs)
  | _ -> None

let ( let* ) r f = Result.bind r f

let parse line =
  let line = String.trim line in
  if String.equal line "" || line.[0] = '#' then Ok None
  else
    match words line with
    | [] -> Ok None
    | kind :: rest -> (
      let with_options allowed k =
        let* opts, args = take_options ~kind ~allowed rest in
        k opts args
      in
      match kind with
      | "normalize" ->
        with_options [ "fuel" ] (fun opts args ->
            let* fuel = fuel_option opts in
            match args with
            | spec :: (_ :: _ as term_words) ->
              Ok
                (Some
                   (Normalize
                      { spec; term = String.concat " " term_words; fuel }))
            | _ -> Error "normalize expects: normalize [fuel=N] SPEC TERM")
      | "check" ->
        with_options [] (fun _ args ->
            match args with
            | [ spec ] -> Ok (Some (Check { spec }))
            | _ -> Error "check expects: check SPEC")
      | "skeletons" ->
        with_options [] (fun _ args ->
            match args with
            | [ spec ] -> Ok (Some (Skeletons { spec }))
            | _ -> Error "skeletons expects: skeletons SPEC")
      | "lint" ->
        with_options [] (fun _ args ->
            match args with
            | [ spec ] -> Ok (Some (Lint { spec }))
            | _ -> Error "lint expects: lint SPEC")
      | "testgen" ->
        with_options [ "count"; "seed"; "impl" ] (fun opts args ->
            let positive key =
              match List.assoc_opt key opts with
              | None -> Ok None
              | Some v -> (
                match int_of_string_opt v with
                | Some n when n > 0 -> Ok (Some n)
                | _ ->
                  Error
                    (Fmt.str "option %s expects a positive integer, got %s"
                       key v))
            in
            let* count = positive "count" in
            let* seed =
              match List.assoc_opt "seed" opts with
              | None -> Ok None
              | Some v -> (
                match int_of_string_opt v with
                | Some n -> Ok (Some n)
                | None ->
                  Error (Fmt.str "option seed expects an integer, got %s" v))
            in
            match args with
            | [ spec ] ->
              Ok
                (Some
                   (Testgen
                      { spec; impl = List.assoc_opt "impl" opts; count; seed }))
            | _ ->
              Error "testgen expects: testgen [impl=NAME] [count=N] [seed=S] SPEC")
      | "prove" ->
        with_options [ "fuel" ] (fun opts args ->
            let* fuel = fuel_option opts in
            match args with
            | spec :: vars_word :: goal_words -> (
              let* vars = parse_vars vars_word in
              match split_goal goal_words with
              | Some (lhs, rhs) ->
                Ok (Some (Prove { spec; vars; lhs; rhs; fuel }))
              | None ->
                Error
                  "prove expects a goal of the form LHS == RHS after the \
                   variable declarations")
            | _ ->
              Error
                "prove expects: prove [fuel=N] SPEC VARS LHS == RHS (VARS \
                 is '-' or name:Sort,...)")
      | "session-open" ->
        with_options [] (fun _ args ->
            match args with
            | [ spec ] -> Ok (Some (Session_open { spec }))
            | _ -> Error "session-open expects: session-open NAME")
      | "session-edit" ->
        with_options [ "lines" ] (fun opts args ->
            let* lines =
              match List.assoc_opt "lines" opts with
              | Some v -> (
                match int_of_string_opt v with
                | Some n when n > 0 -> Ok n
                | _ ->
                  Error
                    (Fmt.str "option lines expects a positive integer, got %s"
                       v))
              | None ->
                Error
                  "session-edit expects: session-edit lines=N NAME, followed \
                   by N raw body lines"
            in
            match args with
            | [ spec ] -> Ok (Some (Session_edit { spec; lines }))
            | _ ->
              Error
                "session-edit expects: session-edit lines=N NAME, followed \
                 by N raw body lines")
      | "session-status" ->
        with_options [] (fun _ args ->
            match args with
            | [ spec ] -> Ok (Some (Session_status { spec }))
            | _ -> Error "session-status expects: session-status NAME")
      | "stats" ->
        with_options [ "verbose" ] (fun opts args ->
            let* verbose = bool_option "verbose" opts in
            match args with
            | [] -> Ok (Some (Stats { verbose }))
            | _ -> Error "stats takes no positional arguments")
      | "metrics" ->
        with_options [] (fun _ args ->
            match args with
            | [] -> Ok (Some Metrics)
            | _ -> Error "metrics takes no arguments")
      | "slowlog" ->
        with_options [] (fun _ args ->
            match args with
            | [] -> Ok (Some Slowlog)
            | _ -> Error "slowlog takes no arguments")
      | "quit" ->
        with_options [] (fun _ args ->
            match args with
            | [] -> Ok (Some Quit)
            | _ -> Error "quit takes no arguments")
      | other ->
        Error
          (Fmt.str
             "unknown request %s (expected normalize, check, skeletons, \
              lint, testgen, prove, session-open, session-edit, \
              session-status, stats, metrics, slowlog or quit)"
             other))

let render = function
  | Ok_response payload -> "ok " ^ payload
  | Error_response { code; message } -> Fmt.str "error %s %s" code message

let kind_name = function
  | Normalize _ -> "normalize"
  | Check _ -> "check"
  | Skeletons _ -> "skeletons"
  | Lint _ -> "lint"
  | Testgen _ -> "testgen"
  | Prove _ -> "prove"
  | Session_open _ -> "session-open"
  | Session_edit _ -> "session-edit"
  | Session_status _ -> "session-status"
  | Stats _ -> "stats"
  | Metrics -> "metrics"
  | Slowlog -> "slowlog"
  | Quit -> "quit"

let spec_name = function
  | Normalize { spec; _ } | Check { spec } | Skeletons { spec }
  | Lint { spec } | Testgen { spec; _ } | Prove { spec; _ }
  | Session_open { spec } | Session_edit { spec; _ }
  | Session_status { spec } ->
    Some spec
  | Stats _ | Metrics | Slowlog | Quit -> None
