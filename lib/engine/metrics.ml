type t = {
  lock : Mutex.t;
  mutable requests : int;
  mutable normalize : int;
  mutable check : int;
  mutable skeletons : int;
  mutable lint : int;
  mutable testgen : int;
  mutable prove : int;
  mutable stats : int;
  mutable metrics : int;
  mutable slowlog : int;
  mutable quit : int;
  mutable malformed : int;
  mutable errors : int;
  mutable fuel_spent : int;
  rule_hits : (string, int) Hashtbl.t;
  mutable testgen_suites : int;
  testgen_failures : (string, int) Hashtbl.t;
  latency : Obs.Hist.t;
  fuel_hist : Obs.Hist.t;
}

let create () =
  {
    lock = Mutex.create ();
    requests = 0;
    normalize = 0;
    check = 0;
    skeletons = 0;
    lint = 0;
    testgen = 0;
    prove = 0;
    stats = 0;
    metrics = 0;
    slowlog = 0;
    quit = 0;
    malformed = 0;
    errors = 0;
    fuel_spent = 0;
    rule_hits = Hashtbl.create 8;
    testgen_suites = 0;
    testgen_failures = Hashtbl.create 8;
    latency = Obs.Hist.create ~bounds:Obs.Hist.default_latency_bounds;
    fuel_hist = Obs.Hist.create ~bounds:Obs.Hist.default_fuel_bounds;
  }

let locked t f = Mutex.protect t.lock f

(* total over Protocol.kind_name by construction: a new request kind that
   reaches the fallback is a bug, not a statistic to fold away silently
   (malformed lines have their own counter, recorded by the dispatcher) *)
let record_kind t = function
  | "normalize" -> t.normalize <- t.normalize + 1
  | "check" -> t.check <- t.check + 1
  | "skeletons" -> t.skeletons <- t.skeletons + 1
  | "lint" -> t.lint <- t.lint + 1
  | "testgen" -> t.testgen <- t.testgen + 1
  | "prove" -> t.prove <- t.prove + 1
  | "stats" -> t.stats <- t.stats + 1
  | "metrics" -> t.metrics <- t.metrics + 1
  | "slowlog" -> t.slowlog <- t.slowlog + 1
  | "quit" -> t.quit <- t.quit + 1
  | other -> invalid_arg (Fmt.str "Metrics.record_kind: unknown kind %s" other)

let record_malformed t = t.malformed <- t.malformed + 1

let record_rule_hit t code =
  Hashtbl.replace t.rule_hits code
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.rule_hits code))

let record_testgen_suite t = t.testgen_suites <- t.testgen_suites + 1

let record_testgen_failure t axiom =
  Hashtbl.replace t.testgen_failures axiom
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.testgen_failures axiom))

let testgen_failures t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun axiom n acc -> (axiom, n) :: acc) t.testgen_failures [])

let rule_hits t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun code n acc -> (code, n) :: acc) t.rule_hits [])

let by_kind t =
  [
    ("normalize", t.normalize);
    ("check", t.check);
    ("skeletons", t.skeletons);
    ("lint", t.lint);
    ("testgen", t.testgen);
    ("prove", t.prove);
    ("stats", t.stats);
    ("metrics", t.metrics);
    ("slowlog", t.slowlog);
    ("quit", t.quit);
  ]

let observe_latency t seconds = Obs.Hist.observe t.latency seconds
let observe_fuel t steps = Obs.Hist.observe t.fuel_hist (float_of_int steps)
let latency_total t = Obs.Hist.sum t.latency
let latency_max t = Obs.Hist.max_value t.latency
