type t = {
  lock : Mutex.t;
  mutable requests : int;
  mutable normalize : int;
  mutable check : int;
  mutable skeletons : int;
  mutable prove : int;
  mutable stats : int;
  mutable errors : int;
  mutable fuel_spent : int;
  mutable latency_total : float;
  mutable latency_max : float;
}

let create () =
  {
    lock = Mutex.create ();
    requests = 0;
    normalize = 0;
    check = 0;
    skeletons = 0;
    prove = 0;
    stats = 0;
    errors = 0;
    fuel_spent = 0;
    latency_total = 0.;
    latency_max = 0.;
  }

let locked t f = Mutex.protect t.lock f

let record_kind t = function
  | "normalize" -> t.normalize <- t.normalize + 1
  | "check" -> t.check <- t.check + 1
  | "skeletons" -> t.skeletons <- t.skeletons + 1
  | "prove" -> t.prove <- t.prove + 1
  | "stats" -> t.stats <- t.stats + 1
  | _ -> ()

let observe_latency t seconds =
  t.latency_total <- t.latency_total +. seconds;
  if seconds > t.latency_max then t.latency_max <- seconds
