(* Metrics are striped per domain: each stripe is a full set of counters
   guarded by its own mutex, and recording touches only the stripe of the
   calling domain — the request path never contends with other domains.
   Scrapes rebuild the global view by merging every stripe exactly
   (integers add, histograms merge by the Obs.Hist merge law), so a
   snapshot after quiescence equals what a single global lock would have
   counted. Systhreads within one domain share that domain's stripe; the
   stripe mutex serializes them. *)

type stripe = {
  lock : Mutex.t;
  mutable requests : int;
  mutable normalize : int;
  mutable check : int;
  mutable skeletons : int;
  mutable lint : int;
  mutable testgen : int;
  mutable prove : int;
  mutable stats : int;
  mutable metrics : int;
  mutable slowlog : int;
  mutable session_open : int;
  mutable session_edit : int;
  mutable session_status : int;
  mutable quit : int;
  mutable malformed : int;
  mutable errors : int;
  mutable fuel_spent : int;
  rule_hits : (string, int) Hashtbl.t;
  mutable testgen_suites : int;
  testgen_failures : (string, int) Hashtbl.t;
  latency : Obs.Hist.t;
  fuel_hist : Obs.Hist.t;
}

type t = { stripes : stripe array }

type snapshot = {
  requests : int;
  normalize : int;
  check : int;
  skeletons : int;
  lint : int;
  testgen : int;
  prove : int;
  stats : int;
  metrics : int;
  slowlog : int;
  session_open : int;
  session_edit : int;
  session_status : int;
  quit : int;
  malformed : int;
  errors : int;
  fuel_spent : int;
  rule_hits : (string * int) list;
  testgen_suites : int;
  testgen_failures : (string * int) list;
  latency : Obs.Hist.t;
  fuel_hist : Obs.Hist.t;
}

let make_stripe () =
  {
    lock = Mutex.create ();
    requests = 0;
    normalize = 0;
    check = 0;
    skeletons = 0;
    lint = 0;
    testgen = 0;
    prove = 0;
    stats = 0;
    metrics = 0;
    slowlog = 0;
    session_open = 0;
    session_edit = 0;
    session_status = 0;
    quit = 0;
    malformed = 0;
    errors = 0;
    fuel_spent = 0;
    rule_hits = Hashtbl.create 8;
    testgen_suites = 0;
    testgen_failures = Hashtbl.create 8;
    latency = Obs.Hist.create ~bounds:Obs.Hist.default_latency_bounds;
    fuel_hist = Obs.Hist.create ~bounds:Obs.Hist.default_fuel_bounds;
  }

let default_stripes = min 64 (max 8 (Domain.recommended_domain_count ()))

let create ?(stripes = default_stripes) () =
  if stripes < 1 then invalid_arg "Metrics.create: stripes must be positive";
  { stripes = Array.init stripes (fun _ -> make_stripe ()) }

let stripes t = Array.length t.stripes

(* Domain ids are small, dense integers (the main domain is 0), so modular
   reduction spreads a pool of worker domains evenly over the stripes. *)
let stripe_of t =
  t.stripes.((Domain.self () :> int) mod Array.length t.stripes)

let with_stripe t f =
  let s = stripe_of t in
  Mutex.protect s.lock (fun () -> f s)

(* total over Protocol.kind_name by construction: a new request kind that
   reaches the fallback is a bug, not a statistic to fold away silently
   (malformed lines have their own counter, recorded by the dispatcher) *)
let bump_kind (s : stripe) = function
  | "normalize" -> s.normalize <- s.normalize + 1
  | "check" -> s.check <- s.check + 1
  | "skeletons" -> s.skeletons <- s.skeletons + 1
  | "lint" -> s.lint <- s.lint + 1
  | "testgen" -> s.testgen <- s.testgen + 1
  | "prove" -> s.prove <- s.prove + 1
  | "stats" -> s.stats <- s.stats + 1
  | "metrics" -> s.metrics <- s.metrics + 1
  | "slowlog" -> s.slowlog <- s.slowlog + 1
  | "session-open" -> s.session_open <- s.session_open + 1
  | "session-edit" -> s.session_edit <- s.session_edit + 1
  | "session-status" -> s.session_status <- s.session_status + 1
  | "quit" -> s.quit <- s.quit + 1
  | other -> invalid_arg (Fmt.str "Metrics.record_kind: unknown kind %s" other)

let record_kind t kind = with_stripe t (fun s -> bump_kind s kind)

let record_request t kind =
  with_stripe t (fun s ->
      s.requests <- s.requests + 1;
      bump_kind s kind)

let record_malformed_request t =
  with_stripe t (fun s ->
      s.requests <- s.requests + 1;
      s.malformed <- s.malformed + 1;
      s.errors <- s.errors + 1)

let record_malformed t = with_stripe t (fun s -> s.malformed <- s.malformed + 1)
let add_fuel t steps = with_stripe t (fun s -> s.fuel_spent <- s.fuel_spent + steps)

let bump_table table key =
  Hashtbl.replace table key
    (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let record_rule_hits t codes =
  with_stripe t (fun s -> List.iter (bump_table s.rule_hits) codes)

let record_testgen_run t ~failures =
  with_stripe t (fun s ->
      s.testgen_suites <- s.testgen_suites + 1;
      List.iter (bump_table s.testgen_failures) failures)

let record_outcome t ~latency ?fuel ~error () =
  with_stripe t (fun s ->
      Obs.Hist.observe s.latency latency;
      (match fuel with
      | None -> ()
      | Some steps -> Obs.Hist.observe s.fuel_hist (float_of_int steps));
      if error then s.errors <- s.errors + 1)

(* {1 Snapshots} *)

let assoc_of_table table =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun key n acc -> (key, n) :: acc) table [])

let snapshot_stripe (s : stripe) =
  Mutex.protect s.lock (fun () ->
      {
        requests = s.requests;
        normalize = s.normalize;
        check = s.check;
        skeletons = s.skeletons;
        lint = s.lint;
        testgen = s.testgen;
        prove = s.prove;
        stats = s.stats;
        metrics = s.metrics;
        slowlog = s.slowlog;
        session_open = s.session_open;
        session_edit = s.session_edit;
        session_status = s.session_status;
        quit = s.quit;
        malformed = s.malformed;
        errors = s.errors;
        fuel_spent = s.fuel_spent;
        rule_hits = assoc_of_table s.rule_hits;
        testgen_suites = s.testgen_suites;
        testgen_failures = assoc_of_table s.testgen_failures;
        latency = Obs.Hist.copy s.latency;
        fuel_hist = Obs.Hist.copy s.fuel_hist;
      })

let merge_assoc a b =
  let table = Hashtbl.create 16 in
  List.iter (fun (k, n) -> Hashtbl.replace table k n) a;
  List.iter
    (fun (k, n) ->
      Hashtbl.replace table k (n + Option.value ~default:0 (Hashtbl.find_opt table k)))
    b;
  assoc_of_table table

let merge a b =
  {
    requests = a.requests + b.requests;
    normalize = a.normalize + b.normalize;
    check = a.check + b.check;
    skeletons = a.skeletons + b.skeletons;
    lint = a.lint + b.lint;
    testgen = a.testgen + b.testgen;
    prove = a.prove + b.prove;
    stats = a.stats + b.stats;
    metrics = a.metrics + b.metrics;
    slowlog = a.slowlog + b.slowlog;
    session_open = a.session_open + b.session_open;
    session_edit = a.session_edit + b.session_edit;
    session_status = a.session_status + b.session_status;
    quit = a.quit + b.quit;
    malformed = a.malformed + b.malformed;
    errors = a.errors + b.errors;
    fuel_spent = a.fuel_spent + b.fuel_spent;
    rule_hits = merge_assoc a.rule_hits b.rule_hits;
    testgen_suites = a.testgen_suites + b.testgen_suites;
    testgen_failures = merge_assoc a.testgen_failures b.testgen_failures;
    latency = Obs.Hist.merge a.latency b.latency;
    fuel_hist = Obs.Hist.merge a.fuel_hist b.fuel_hist;
  }

let stripe_snapshots t = Array.to_list (Array.map snapshot_stripe t.stripes)

(* Merged in stripe order, so float sums are deterministic; with a single
   stripe the snapshot is byte-for-byte what the stripe recorded. *)
let snapshot t =
  match stripe_snapshots t with
  | [] -> assert false (* create enforces stripes >= 1 *)
  | first :: rest -> List.fold_left merge first rest

let by_kind snap =
  [
    ("normalize", snap.normalize);
    ("check", snap.check);
    ("skeletons", snap.skeletons);
    ("lint", snap.lint);
    ("testgen", snap.testgen);
    ("prove", snap.prove);
    ("stats", snap.stats);
    ("metrics", snap.metrics);
    ("slowlog", snap.slowlog);
    ("session-open", snap.session_open);
    ("session-edit", snap.session_edit);
    ("session-status", snap.session_status);
    ("quit", snap.quit);
  ]

let latency_total snap = Obs.Hist.sum snap.latency
let latency_max snap = Obs.Hist.max_value snap.latency
