open Adt

(* Each specification gets a stripe of memoizing interpreters, one per
   domain slot, forked lazily from a shared prototype: the compiled rewrite
   system is immutable and shared, while each slot owns its own LRU memo
   behind its own lock, so domains normalize in parallel without convoying
   on one cache mutex. The memos are keyed on hash-consed term ids
   ([Term.id], physical equality) — terms arriving over different
   connections (and different domains) intern to the same node, so every
   slot's probes stay one pointer comparison.

   Slots are created on first use by a given domain slot and published
   through an [Atomic.t], so a single-threaded process only ever has slot 0
   — exactly the pre-striping behavior, cache capacity included. *)

type slot = { interp : Interp.t; lock : Mutex.t }

type entry = {
  spec : Spec.t;
  slots : slot option Atomic.t array;
  slots_lock : Mutex.t;  (* serializes lazy slot creation only *)
}

type t = {
  registry : (string * entry) list;  (* registration order, names unique *)
  limits : Limits.t;
  metrics : Metrics.t;
  slowlog : Obs.Slowlog.t option;
  tracing : bool;
}

let create ?fuel ?timeout ?cache_capacity ?slowlog_ms ?slowlog_capacity
    ?tracing ?stripes specs =
  let limits = Limits.v ?fuel ?timeout () in
  let metrics = Metrics.create ?stripes () in
  let stripes = Metrics.stripes metrics in
  let slowlog =
    Option.map
      (fun ms ->
        Obs.Slowlog.create ?capacity:slowlog_capacity
          ~threshold_s:(ms /. 1000.) ())
      slowlog_ms
  in
  (* the slow-request log needs span breakdowns and trace IDs, so it
     implies tracing; tracing alone (adtc trace) needs no log *)
  let tracing =
    match tracing with Some b -> b | None -> Option.is_some slowlog
  in
  let registry =
    List.fold_left
      (fun registry spec ->
        let name = Spec.name spec in
        let interp =
          Interp.create ~fuel:limits.Limits.fuel ~memo:true
            ?memo_capacity:cache_capacity spec
        in
        let slots = Array.init stripes (fun _ -> Atomic.make None) in
        Atomic.set slots.(0) (Some { interp; lock = Mutex.create () });
        let entry = { spec; slots; slots_lock = Mutex.create () } in
        (* replace an earlier registration of the same name in place *)
        if List.mem_assoc name registry then
          List.map
            (fun (n, e) -> if String.equal n name then (n, entry) else (n, e))
            registry
        else registry @ [ (name, entry) ])
      [] specs
  in
  { registry; limits; metrics; slowlog; tracing }

let entry_spec entry = entry.spec

let with_interp entry f =
  let cell =
    entry.slots.((Domain.self () :> int) mod Array.length entry.slots)
  in
  let slot =
    match Atomic.get cell with
    | Some slot -> slot
    | None ->
      Mutex.protect entry.slots_lock (fun () ->
          match Atomic.get cell with
          | Some slot -> slot (* another thread of this slot won the race *)
          | None ->
            let proto =
              match Atomic.get entry.slots.(0) with
              | Some s -> s.interp
              | None -> assert false (* slot 0 is created eagerly *)
            in
            let slot = { interp = Interp.fork proto; lock = Mutex.create () } in
            Atomic.set cell (Some slot);
            slot)
  in
  Mutex.protect slot.lock (fun () -> f slot.interp)

let find t name = List.assoc_opt name t.registry
let spec_names t = List.map fst t.registry
let limits t = t.limits
let metrics t = t.metrics
let slowlog t = t.slowlog
let tracing t = t.tracing

type cache_totals = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let cache_totals t =
  List.fold_left
    (fun acc (_, entry) ->
      Array.fold_left
        (fun acc cell ->
          match Atomic.get cell with
          | None -> acc
          | Some slot -> (
            match
              Mutex.protect slot.lock (fun () -> Interp.memo_stats slot.interp)
            with
            | None -> acc
            | Some s ->
              {
                hits = acc.hits + s.Interp.hits;
                misses = acc.misses + s.Interp.misses;
                evictions = acc.evictions + s.Interp.evictions;
                entries = acc.entries + s.Interp.entries;
                capacity = acc.capacity + s.Interp.capacity;
              }))
        acc entry.slots)
    { hits = 0; misses = 0; evictions = 0; entries = 0; capacity = 0 }
    t.registry

(* {1 Prometheus exposition} *)

let prometheus t =
  let buf = Buffer.create 2048 in
  let m = Metrics.snapshot t.metrics in
  let f = float_of_int in
  Obs.Export.counter buf ~name:"adtc_requests_total"
    ~help:"Requests received, malformed lines included."
    (f m.Metrics.requests);
  Obs.Export.counter buf ~name:"adtc_requests_kind_total"
    ~help:"Requests by protocol kind."
    ~labelled:
      (List.map
         (fun (kind, n) -> ([ ("kind", kind) ], f n))
         (Metrics.by_kind m))
    0.;
  Obs.Export.counter buf ~name:"adtc_malformed_requests_total"
    ~help:"Lines that failed protocol parsing." (f m.Metrics.malformed);
  Obs.Export.counter buf ~name:"adtc_errors_total"
    ~help:"Error responses sent." (f m.Metrics.errors);
  Obs.Export.counter buf ~name:"adtc_fuel_steps_total"
    ~help:"Rewrite-rule applications across all requests."
    (f m.Metrics.fuel_spent);
  Obs.Export.counter buf ~name:"adtc_lint_findings_total"
    ~help:"Lint findings by ADTxxx rule code, across lint requests."
    ~labelled:
      (List.map
         (fun (code, n) -> ([ ("rule", code) ], f n))
         m.Metrics.rule_hits)
    0.;
  Obs.Export.counter buf ~name:"adtc_testgen_suites_total"
    ~help:"Conformance suites executed by testgen requests."
    (f m.Metrics.testgen_suites);
  Obs.Export.counter buf ~name:"adtc_testgen_failures_total"
    ~help:"Axioms falsified by testgen suites, by axiom name."
    ~labelled:
      (List.map
         (fun (axiom, n) -> ([ ("axiom", axiom) ], f n))
         m.Metrics.testgen_failures)
    0.;
  Obs.Export.histogram buf ~name:"adtc_request_latency_seconds"
    ~help:"Per-request wall-clock latency." m.Metrics.latency;
  Obs.Export.histogram buf ~name:"adtc_request_fuel_steps"
    ~help:"Rewrite steps per fuel-metered request (normalize, prove)."
    m.Metrics.fuel_hist;
  let c = cache_totals t in
  Obs.Export.counter buf ~name:"adtc_cache_hits_total"
    ~help:"Normal-form cache hits, summed over specifications." (f c.hits);
  Obs.Export.counter buf ~name:"adtc_cache_misses_total"
    ~help:"Normal-form cache misses, summed over specifications." (f c.misses);
  Obs.Export.counter buf ~name:"adtc_cache_evictions_total"
    ~help:"LRU evictions, summed over specifications." (f c.evictions);
  Obs.Export.gauge buf ~name:"adtc_cache_entries"
    ~help:"Live normal-form cache entries." (f c.entries);
  Obs.Export.gauge buf ~name:"adtc_cache_capacity"
    ~help:"Normal-form cache capacity, summed over specifications."
    (f c.capacity);
  Obs.Export.gauge buf ~name:"adtc_specs_loaded"
    ~help:"Specifications served by this session."
    (f (List.length t.registry));
  (match t.slowlog with
  | None -> ()
  | Some sl ->
    Obs.Export.gauge buf ~name:"adtc_slowlog_threshold_seconds"
      ~help:"Latency at or above which a request enters the slow log."
      (Obs.Slowlog.threshold_s sl);
    Obs.Export.gauge buf ~name:"adtc_slowlog_entries"
      ~help:"Entries currently held by the slow-request ring log."
      (f (Obs.Slowlog.length sl)));
  Buffer.contents buf
