open Adt

(* Each specification gets one memoizing interpreter guarded by its own
   lock. The memo underneath is a {!Lru} keyed on hash-consed term ids
   ([Term.id], physical equality), so a cache probe costs one pointer
   comparison regardless of term size — terms arriving over different
   connections intern to the same node and share normal forms. *)
type entry = { spec : Spec.t; interp : Interp.t; lock : Mutex.t }

type t = {
  registry : (string * entry) list;  (* registration order, names unique *)
  limits : Limits.t;
  metrics : Metrics.t;
  slowlog : Obs.Slowlog.t option;
  tracing : bool;
}

let create ?fuel ?timeout ?cache_capacity ?slowlog_ms ?slowlog_capacity
    ?tracing specs =
  let limits = Limits.v ?fuel ?timeout () in
  let slowlog =
    Option.map
      (fun ms ->
        Obs.Slowlog.create ?capacity:slowlog_capacity
          ~threshold_s:(ms /. 1000.) ())
      slowlog_ms
  in
  (* the slow-request log needs span breakdowns and trace IDs, so it
     implies tracing; tracing alone (adtc trace) needs no log *)
  let tracing =
    match tracing with Some b -> b | None -> Option.is_some slowlog
  in
  let registry =
    List.fold_left
      (fun registry spec ->
        let name = Spec.name spec in
        let entry =
          {
            spec;
            interp =
              Interp.create ~fuel:limits.Limits.fuel ~memo:true
                ?memo_capacity:cache_capacity spec;
            lock = Mutex.create ();
          }
        in
        (* replace an earlier registration of the same name in place *)
        if List.mem_assoc name registry then
          List.map
            (fun (n, e) -> if String.equal n name then (n, entry) else (n, e))
            registry
        else registry @ [ (name, entry) ])
      [] specs
  in
  { registry; limits; metrics = Metrics.create (); slowlog; tracing }

let find t name = List.assoc_opt name t.registry
let spec_names t = List.map fst t.registry
let limits t = t.limits
let metrics t = t.metrics
let slowlog t = t.slowlog
let tracing t = t.tracing

type cache_totals = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let cache_totals t =
  List.fold_left
    (fun acc (_, entry) ->
      match
        Mutex.protect entry.lock (fun () -> Interp.memo_stats entry.interp)
      with
      | None -> acc
      | Some s ->
        {
          hits = acc.hits + s.Interp.hits;
          misses = acc.misses + s.Interp.misses;
          evictions = acc.evictions + s.Interp.evictions;
          entries = acc.entries + s.Interp.entries;
          capacity = acc.capacity + s.Interp.capacity;
        })
    { hits = 0; misses = 0; evictions = 0; entries = 0; capacity = 0 }
    t.registry

(* {1 Prometheus exposition} *)

let prometheus t =
  let buf = Buffer.create 2048 in
  let m = t.metrics in
  let f = float_of_int in
  Metrics.locked m (fun () ->
      Obs.Export.counter buf ~name:"adtc_requests_total"
        ~help:"Requests received, malformed lines included." (f m.requests);
      Obs.Export.counter buf ~name:"adtc_requests_kind_total"
        ~help:"Requests by protocol kind."
        ~labelled:
          (List.map
             (fun (kind, n) -> ([ ("kind", kind) ], f n))
             (Metrics.by_kind m))
        0.;
      Obs.Export.counter buf ~name:"adtc_malformed_requests_total"
        ~help:"Lines that failed protocol parsing." (f m.malformed);
      Obs.Export.counter buf ~name:"adtc_errors_total"
        ~help:"Error responses sent." (f m.errors);
      Obs.Export.counter buf ~name:"adtc_fuel_steps_total"
        ~help:"Rewrite-rule applications across all requests."
        (f m.fuel_spent);
      Obs.Export.counter buf ~name:"adtc_lint_findings_total"
        ~help:"Lint findings by ADTxxx rule code, across lint requests."
        ~labelled:
          (List.map
             (fun (code, n) -> ([ ("rule", code) ], f n))
             (Metrics.rule_hits m))
        0.;
      Obs.Export.counter buf ~name:"adtc_testgen_suites_total"
        ~help:"Conformance suites executed by testgen requests."
        (f m.testgen_suites);
      Obs.Export.counter buf ~name:"adtc_testgen_failures_total"
        ~help:"Axioms falsified by testgen suites, by axiom name."
        ~labelled:
          (List.map
             (fun (axiom, n) -> ([ ("axiom", axiom) ], f n))
             (Metrics.testgen_failures m))
        0.;
      Obs.Export.histogram buf ~name:"adtc_request_latency_seconds"
        ~help:"Per-request wall-clock latency." m.latency;
      Obs.Export.histogram buf ~name:"adtc_request_fuel_steps"
        ~help:"Rewrite steps per fuel-metered request (normalize, prove)."
        m.fuel_hist);
  let c = cache_totals t in
  Obs.Export.counter buf ~name:"adtc_cache_hits_total"
    ~help:"Normal-form cache hits, summed over specifications." (f c.hits);
  Obs.Export.counter buf ~name:"adtc_cache_misses_total"
    ~help:"Normal-form cache misses, summed over specifications." (f c.misses);
  Obs.Export.counter buf ~name:"adtc_cache_evictions_total"
    ~help:"LRU evictions, summed over specifications." (f c.evictions);
  Obs.Export.gauge buf ~name:"adtc_cache_entries"
    ~help:"Live normal-form cache entries." (f c.entries);
  Obs.Export.gauge buf ~name:"adtc_cache_capacity"
    ~help:"Normal-form cache capacity, summed over specifications."
    (f c.capacity);
  Obs.Export.gauge buf ~name:"adtc_specs_loaded"
    ~help:"Specifications served by this session."
    (f (List.length t.registry));
  (match t.slowlog with
  | None -> ()
  | Some sl ->
    Obs.Export.gauge buf ~name:"adtc_slowlog_threshold_seconds"
      ~help:"Latency at or above which a request enters the slow log."
      (Obs.Slowlog.threshold_s sl);
    Obs.Export.gauge buf ~name:"adtc_slowlog_entries"
      ~help:"Entries currently held by the slow-request ring log."
      (f (Obs.Slowlog.length sl)));
  Buffer.contents buf
