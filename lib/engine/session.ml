open Adt

(* Each specification gets a stripe of memoizing interpreters, one per
   domain slot, forked lazily from a shared prototype: the compiled rewrite
   system is immutable and shared, while each slot owns its own LRU memo
   behind its own lock, so domains normalize in parallel without convoying
   on one cache mutex. The memos are keyed on hash-consed term ids
   ([Term.id], physical equality) — terms arriving over different
   connections (and different domains) intern to the same node, so every
   slot's probes stay one pointer comparison.

   Slots are created on first use by a given domain slot and published
   through an [Atomic.t], so a single-threaded process only ever has slot 0
   — exactly the pre-striping behavior, cache capacity included. *)

type slot = { interp : Interp.t; lock : Mutex.t }

(* One specification's slice of the persistent store: the normal forms
   and meta payloads loaded at boot (the warm start) plus everything this
   process computed since, buffered in [pending] until a flush writes the
   whole entry back atomically. Keyed in memory by [Term.id] — hash-consed
   terms make the probe a pointer hash — and on disk by the canonical
   [Term.to_string] rendering, which survives process restarts. *)
type persist_state = {
  digest : string;  (* Spec_digest.spec — the on-disk entry this feeds *)
  plock : Mutex.t;
  nf : (int, Term.t * int) Hashtbl.t;  (* term id -> normal form, cold steps *)
  meta : (string * string, string) Hashtbl.t;  (* (kind, key) -> payload *)
  mutable pending : Persist.Store.record list;  (* newest first *)
  mutable hits : int;
  mutable misses : int;
  mutable parse_corrupt : int;  (* records that failed re-parsing at load *)
  loaded : int;  (* records served from disk at boot *)
}

type entry = {
  spec : Spec.t;
  slots : slot option Atomic.t array;
  slots_lock : Mutex.t;  (* serializes lazy slot creation only *)
  persist : persist_state option;
}

type t = {
  registry : (string * entry) list;  (* registration order, names unique *)
  limits : Limits.t;
  metrics : Metrics.t;
  slowlog : Obs.Slowlog.t option;
  tracing : bool;
  store : Persist.Store.t option;
  docs : Docsession.Manager.t;
}

(* {1 The persistent normal-form store}

   On-disk record encodings. A normal form is either error-free or [error]
   at the top (strict propagation), so two shapes suffice: [T steps term]
   for constructor/stuck normal forms and [E steps Sort] for errors —
   [error] alone has no parseable rendering, the sort rebuilds it. *)

let nf_record_value value steps =
  match value with
  | Interp.Value nf | Interp.Stuck nf ->
    Some (Fmt.str "T %d %s" steps (Term.to_string nf))
  | Interp.Error_value sort -> Some (Fmt.str "E %d %s" steps (Sort.name sort))
  | Interp.Diverged -> None

let split_word s =
  match String.index_opt s ' ' with
  | Some i when i > 0 && i < String.length s - 1 ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | _ -> None

let parse_nf_value spec value =
  match split_word value with
  | None -> None
  | Some (tag, rest) -> (
    match split_word rest with
    | None -> None
    | Some (steps, payload) -> (
      match (int_of_string_opt steps, tag) with
      | Some steps, "T" when steps >= 0 -> (
        match Parser.parse_term spec payload with
        | Ok nf -> Some (nf, steps)
        | Error _ -> None)
      | Some steps, "E" when steps >= 0 -> Some (Term.err (Sort.v payload), steps)
      | _ -> None))

(* the warm start: every record of the spec's entry re-parses against the
   {e current} signature — a record that no longer parses (hand-edited
   store, renamed operation behind an unchanged digest collision) is
   counted corrupt and skipped, never served *)
let load_persist store spec =
  let digest = Spec_digest.spec spec in
  let nf = Hashtbl.create 256 in
  let meta = Hashtbl.create 16 in
  let parse_corrupt = ref 0 in
  let loaded = ref 0 in
  List.iter
    (fun r ->
      if String.equal r.Persist.Store.kind "nf" then
        match Parser.parse_term spec r.Persist.Store.key with
        | Error _ -> incr parse_corrupt
        | Ok term -> (
          match parse_nf_value spec r.Persist.Store.value with
          | None -> incr parse_corrupt
          | Some cached ->
            Hashtbl.replace nf (Term.id term) cached;
            incr loaded)
      else begin
        Hashtbl.replace meta
          (r.Persist.Store.kind, r.Persist.Store.key)
          r.Persist.Store.value;
        incr loaded
      end)
    (Persist.Store.load store ~digest);
  {
    digest;
    plock = Mutex.create ();
    nf;
    meta;
    pending = [];
    hits = 0;
    misses = 0;
    parse_corrupt = !parse_corrupt;
    loaded = !loaded;
  }

let create ?fuel ?timeout ?cache_capacity ?slowlog_ms ?slowlog_capacity
    ?tracing ?stripes ?store ?env specs =
  let limits = Limits.v ?fuel ?timeout () in
  let metrics = Metrics.create ?stripes () in
  let stripes = Metrics.stripes metrics in
  let slowlog =
    Option.map
      (fun ms ->
        Obs.Slowlog.create ?capacity:slowlog_capacity
          ~threshold_s:(ms /. 1000.) ())
      slowlog_ms
  in
  (* the slow-request log needs span breakdowns and trace IDs, so it
     implies tracing; tracing alone (adtc trace) needs no log *)
  let tracing =
    match tracing with Some b -> b | None -> Option.is_some slowlog
  in
  let registry =
    List.fold_left
      (fun registry spec ->
        let name = Spec.name spec in
        let interp =
          Interp.create ~fuel:limits.Limits.fuel ~memo:true
            ?memo_capacity:cache_capacity spec
        in
        let slots = Array.init stripes (fun _ -> Atomic.make None) in
        Atomic.set slots.(0) (Some { interp; lock = Mutex.create () });
        let persist = Option.map (fun s -> load_persist s spec) store in
        let entry = { spec; slots; slots_lock = Mutex.create (); persist } in
        (* replace an earlier registration of the same name in place *)
        if List.mem_assoc name registry then
          List.map
            (fun (n, e) -> if String.equal n name then (n, entry) else (n, e))
            registry
        else registry @ [ (name, entry) ])
      [] specs
  in
  {
    registry;
    limits;
    metrics;
    slowlog;
    tracing;
    store;
    docs = Docsession.Manager.create ?env ~fuel:limits.Limits.fuel ();
  }

let entry_spec entry = entry.spec

let with_interp entry f =
  let cell =
    entry.slots.((Domain.self () :> int) mod Array.length entry.slots)
  in
  let slot =
    match Atomic.get cell with
    | Some slot -> slot
    | None ->
      Mutex.protect entry.slots_lock (fun () ->
          match Atomic.get cell with
          | Some slot -> slot (* another thread of this slot won the race *)
          | None ->
            let proto =
              match Atomic.get entry.slots.(0) with
              | Some s -> s.interp
              | None -> assert false (* slot 0 is created eagerly *)
            in
            let slot = { interp = Interp.fork proto; lock = Mutex.create () } in
            Atomic.set cell (Some slot);
            slot)
  in
  Mutex.protect slot.lock (fun () -> f slot.interp)

let find t name = List.assoc_opt name t.registry
let spec_names t = List.map fst t.registry
let limits t = t.limits
let metrics t = t.metrics
let slowlog t = t.slowlog
let tracing t = t.tracing
let store t = t.store
let docs t = t.docs

(* {1 Persist probes and recording} *)

let flush_locked store p =
  if p.pending <> [] then begin
    (* oldest first, so a later record for the same (kind, key) wins the
       store's replace-on-merge *)
    Persist.Store.append store ~digest:p.digest (List.rev p.pending);
    p.pending <- []
  end

(* writes amortize: a flush rewrites the whole entry file, so batch them *)
let pending_flush_threshold = 64

let persist_find entry term =
  match entry.persist with
  | None -> None
  | Some p ->
    Mutex.protect p.plock (fun () ->
        match Hashtbl.find_opt p.nf (Term.id term) with
        | Some (nf, steps) ->
          p.hits <- p.hits + 1;
          (* classify exactly as a fresh evaluation would *)
          Some (Interp.classify entry.spec nf, steps)
        | None ->
          p.misses <- p.misses + 1;
          None)

let persist_record t entry term value steps =
  match (t.store, entry.persist, nf_record_value value steps) with
  | Some store, Some p, Some encoded ->
    Mutex.protect p.plock (fun () ->
        if not (Hashtbl.mem p.nf (Term.id term)) then begin
          let nf =
            match value with
            | Interp.Value nf | Interp.Stuck nf -> nf
            | Interp.Error_value sort -> Term.err sort
            | Interp.Diverged -> assert false (* nf_record_value is None *)
          in
          Hashtbl.replace p.nf (Term.id term) (nf, steps);
          p.pending <-
            { Persist.Store.kind = "nf"; key = Term.to_string term;
              value = encoded }
            :: p.pending;
          if List.length p.pending >= pending_flush_threshold then
            flush_locked store p
        end)
  | _ -> ()

let persist_meta_find entry ~kind ~key =
  match entry.persist with
  | None -> None
  | Some p ->
    Mutex.protect p.plock (fun () ->
        match Hashtbl.find_opt p.meta (kind, key) with
        | Some payload ->
          p.hits <- p.hits + 1;
          Some payload
        | None ->
          p.misses <- p.misses + 1;
          None)

let persist_meta_record t entry ~kind ~key payload =
  match (t.store, entry.persist) with
  | Some store, Some p ->
    Mutex.protect p.plock (fun () ->
        if not (Hashtbl.mem p.meta (kind, key)) then begin
          Hashtbl.replace p.meta (kind, key) payload;
          p.pending <-
            { Persist.Store.kind; key; value = payload } :: p.pending;
          if List.length p.pending >= pending_flush_threshold then
            flush_locked store p
        end)
  | _ -> ()

let persist_flush t =
  match t.store with
  | None -> ()
  | Some store ->
    List.iter
      (fun (_, entry) ->
        match entry.persist with
        | None -> ()
        | Some p -> Mutex.protect p.plock (fun () -> flush_locked store p))
      t.registry

type persist_totals = {
  hits : int;
  misses : int;
  corrupt : int;
  loaded : int;
  files : int;
  bytes : int;
  read_only : bool;
}

let persist_totals t =
  match t.store with
  | None -> None
  | Some store ->
    let hits, misses, parse_corrupt, loaded =
      List.fold_left
        (fun (h, m, c, l) (_, entry) ->
          match entry.persist with
          | None -> (h, m, c, l)
          | Some p ->
            Mutex.protect p.plock (fun () ->
                (h + p.hits, m + p.misses, c + p.parse_corrupt, l + p.loaded)))
        (0, 0, 0, 0) t.registry
    in
    let s = Persist.Store.stats store in
    Some
      {
        hits;
        misses;
        corrupt = parse_corrupt + Persist.Store.corrupt_count store;
        loaded;
        files = s.Persist.Store.files;
        bytes = s.Persist.Store.bytes;
        read_only = Persist.Store.mode store = Persist.Store.Read_only;
      }

type cache_totals = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let cache_totals t =
  List.fold_left
    (fun acc (_, entry) ->
      Array.fold_left
        (fun acc cell ->
          match Atomic.get cell with
          | None -> acc
          | Some slot -> (
            match
              Mutex.protect slot.lock (fun () -> Interp.memo_stats slot.interp)
            with
            | None -> acc
            | Some s ->
              {
                hits = acc.hits + s.Interp.hits;
                misses = acc.misses + s.Interp.misses;
                evictions = acc.evictions + s.Interp.evictions;
                entries = acc.entries + s.Interp.entries;
                capacity = acc.capacity + s.Interp.capacity;
              }))
        acc entry.slots)
    { hits = 0; misses = 0; evictions = 0; entries = 0; capacity = 0 }
    t.registry

(* {1 Prometheus exposition} *)

let prometheus t =
  let buf = Buffer.create 2048 in
  let m = Metrics.snapshot t.metrics in
  let f = float_of_int in
  Obs.Export.counter buf ~name:"adtc_requests_total"
    ~help:"Requests received, malformed lines included."
    (f m.Metrics.requests);
  Obs.Export.counter buf ~name:"adtc_requests_kind_total"
    ~help:"Requests by protocol kind."
    ~labelled:
      (List.map
         (fun (kind, n) -> ([ ("kind", kind) ], f n))
         (Metrics.by_kind m))
    0.;
  Obs.Export.counter buf ~name:"adtc_malformed_requests_total"
    ~help:"Lines that failed protocol parsing." (f m.Metrics.malformed);
  Obs.Export.counter buf ~name:"adtc_errors_total"
    ~help:"Error responses sent." (f m.Metrics.errors);
  Obs.Export.counter buf ~name:"adtc_fuel_steps_total"
    ~help:"Rewrite-rule applications across all requests."
    (f m.Metrics.fuel_spent);
  Obs.Export.counter buf ~name:"adtc_lint_findings_total"
    ~help:"Lint findings by ADTxxx rule code, across lint requests."
    ~labelled:
      (List.map
         (fun (code, n) -> ([ ("rule", code) ], f n))
         m.Metrics.rule_hits)
    0.;
  Obs.Export.counter buf ~name:"adtc_testgen_suites_total"
    ~help:"Conformance suites executed by testgen requests."
    (f m.Metrics.testgen_suites);
  Obs.Export.counter buf ~name:"adtc_testgen_failures_total"
    ~help:"Axioms falsified by testgen suites, by axiom name."
    ~labelled:
      (List.map
         (fun (axiom, n) -> ([ ("axiom", axiom) ], f n))
         m.Metrics.testgen_failures)
    0.;
  Obs.Export.histogram buf ~name:"adtc_request_latency_seconds"
    ~help:"Per-request wall-clock latency." m.Metrics.latency;
  Obs.Export.histogram buf ~name:"adtc_request_fuel_steps"
    ~help:"Rewrite steps per fuel-metered request (normalize, prove)."
    m.Metrics.fuel_hist;
  let c = cache_totals t in
  Obs.Export.counter buf ~name:"adtc_cache_hits_total"
    ~help:"Normal-form cache hits, summed over specifications." (f c.hits);
  Obs.Export.counter buf ~name:"adtc_cache_misses_total"
    ~help:"Normal-form cache misses, summed over specifications." (f c.misses);
  Obs.Export.counter buf ~name:"adtc_cache_evictions_total"
    ~help:"LRU evictions, summed over specifications." (f c.evictions);
  Obs.Export.gauge buf ~name:"adtc_cache_entries"
    ~help:"Live normal-form cache entries." (f c.entries);
  Obs.Export.gauge buf ~name:"adtc_cache_capacity"
    ~help:"Normal-form cache capacity, summed over specifications."
    (f c.capacity);
  Obs.Export.gauge buf ~name:"adtc_specs_loaded"
    ~help:"Specifications served by this session."
    (f (List.length t.registry));
  (match t.slowlog with
  | None -> ()
  | Some sl ->
    Obs.Export.gauge buf ~name:"adtc_slowlog_threshold_seconds"
      ~help:"Latency at or above which a request enters the slow log."
      (Obs.Slowlog.threshold_s sl);
    Obs.Export.gauge buf ~name:"adtc_slowlog_entries"
      ~help:"Entries currently held by the slow-request ring log."
      (f (Obs.Slowlog.length sl)));
  (match persist_totals t with
  | None -> ()
  | Some p ->
    Obs.Export.counter buf ~name:"adtc_persist_hits_total"
      ~help:"Requests answered from the persistent on-disk store."
      (f p.hits);
    Obs.Export.counter buf ~name:"adtc_persist_misses_total"
      ~help:"Persistent-store probes that fell through to evaluation."
      (f p.misses);
    Obs.Export.counter buf ~name:"adtc_persist_corrupt_total"
      ~help:
        "Store records rejected by validation (bad header, checksum, \
         version, or unparseable payload) and treated as misses."
      (f p.corrupt);
    Obs.Export.gauge buf ~name:"adtc_persist_warm_entries"
      ~help:"Records loaded from disk when the session started (warm start)."
      (f p.loaded);
    Obs.Export.gauge buf ~name:"adtc_persist_entries"
      ~help:"Entry files currently in the store directory." (f p.files);
    Obs.Export.gauge buf ~name:"adtc_persist_bytes"
      ~help:"Bytes of entry files currently in the store directory."
      (f p.bytes);
    Obs.Export.gauge buf ~name:"adtc_persist_read_only"
      ~help:
        "1 when another live session holds the writer lock and this one \
         fell back to read-only."
      (if p.read_only then 1. else 0.));
  Buffer.contents buf
