open Adt

type entry = { spec : Spec.t; interp : Interp.t; lock : Mutex.t }

type t = {
  registry : (string * entry) list;  (* registration order, names unique *)
  limits : Limits.t;
  metrics : Metrics.t;
}

let create ?fuel ?timeout ?cache_capacity specs =
  let limits = Limits.v ?fuel ?timeout () in
  let registry =
    List.fold_left
      (fun registry spec ->
        let name = Spec.name spec in
        let entry =
          {
            spec;
            interp =
              Interp.create ~fuel:limits.Limits.fuel ~memo:true
                ?memo_capacity:cache_capacity spec;
            lock = Mutex.create ();
          }
        in
        (* replace an earlier registration of the same name in place *)
        if List.mem_assoc name registry then
          List.map
            (fun (n, e) -> if String.equal n name then (n, entry) else (n, e))
            registry
        else registry @ [ (name, entry) ])
      [] specs
  in
  { registry; limits; metrics = Metrics.create () }

let find t name = List.assoc_opt name t.registry
let spec_names t = List.map fst t.registry
let limits t = t.limits
let metrics t = t.metrics

type cache_totals = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let cache_totals t =
  List.fold_left
    (fun acc (_, entry) ->
      match
        Mutex.protect entry.lock (fun () -> Interp.memo_stats entry.interp)
      with
      | None -> acc
      | Some s ->
        {
          hits = acc.hits + s.Interp.hits;
          misses = acc.misses + s.Interp.misses;
          evictions = acc.evictions + s.Interp.evictions;
          entries = acc.entries + s.Interp.entries;
          capacity = acc.capacity + s.Interp.capacity;
        })
    { hits = 0; misses = 0; evictions = 0; entries = 0; capacity = 0 }
    t.registry
