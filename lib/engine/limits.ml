type t = { fuel : int; timeout : float option }

let v ?(fuel = Adt.Rewrite.default_fuel) ?timeout () =
  if fuel < 1 then invalid_arg "Limits.v: fuel must be positive";
  (match timeout with
  | Some s when s <= 0. -> invalid_arg "Limits.v: timeout must be positive"
  | _ -> ());
  { fuel; timeout }

let effective_fuel t = function
  | None -> t.fuel
  | Some requested -> max 1 (min requested t.fuel)

exception Timed_out

(* The stdlib offers no monotonic clock; [Unix.gettimeofday] is what the
   deadline is measured against. A wall-clock step (NTP slew) can lengthen
   or shorten one request's budget, which is acceptable for a coarse
   per-request limit — unlike the SIGALRM scheme this replaces, it can
   never corrupt another thread's request. *)
let now = Unix.gettimeofday

let with_deadline timeout f =
  match timeout with
  | None -> Ok (f None)
  | Some seconds -> (
    let deadline = now () +. seconds in
    let poll () = if now () >= deadline then raise Timed_out in
    match f (Some poll) with
    | result -> Ok result
    | exception Timed_out -> Error `Timeout)
