type t = { fuel : int; timeout : float option }

let v ?(fuel = Adt.Rewrite.default_fuel) ?timeout () =
  if fuel < 1 then invalid_arg "Limits.v: fuel must be positive";
  (match timeout with
  | Some s when s <= 0. -> invalid_arg "Limits.v: timeout must be positive"
  | _ -> ());
  { fuel; timeout }

let effective_fuel t = function
  | None -> t.fuel
  | Some requested -> max 1 (min requested t.fuel)

exception Timed_out

let with_timeout timeout f =
  match timeout with
  | None -> Ok (f ())
  | Some seconds ->
    let old_handler =
      Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
    in
    let disarm () =
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_value = 0.; it_interval = 0. });
      Sys.set_signal Sys.sigalrm old_handler
    in
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_value = seconds; it_interval = 0. });
    (* the handler raises at the next allocation/poll point, which the
       rewriting loop reaches constantly *)
    match f () with
    | result ->
      disarm ();
      Ok result
    | exception Timed_out ->
      disarm ();
      Error `Timeout
    | exception e ->
      disarm ();
      raise e
