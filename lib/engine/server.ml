let serve ?(echo = false) session ic oc =
  let say line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  (* the dispatcher reads session-edit bodies through this, off the same
     transport the request line arrived on *)
  let read_line () =
    match input_line ic with
    | line -> Some line
    | exception End_of_file -> None
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      if echo then say ("> " ^ line);
      match Dispatch.handle_line ~read_line session line with
      | Dispatch.Silent -> loop ()
      | Dispatch.Reply response ->
        say response;
        loop ()
      | Dispatch.Closed -> say "ok bye")
  in
  loop ();
  (* results computed on this connection survive the process: flush the
     session's buffered store records before the transport goes away *)
  Session.persist_flush session

(* {1 The concurrent socket server} *)

let default_max_clients = 64

(* Active connections, so shutdown can drain them: [shutdown SHUTDOWN_RECEIVE]
   forces end-of-file on a worker blocked reading its next request, while a
   worker mid-request finishes and answers before it notices — in-flight work
   drains, idle connections close. The registry is shared by every accept
   domain, so admission control is global across the pool. *)
type registry = {
  lock : Mutex.t;
  done_ : Condition.t;  (** Signalled whenever a worker retires. *)
  active : (int, Unix.file_descr) Hashtbl.t;
  mutable next_id : int;
}

let admit reg ~max_clients client =
  Mutex.protect reg.lock (fun () ->
      if Hashtbl.length reg.active >= max_clients then None
      else begin
        let id = reg.next_id in
        reg.next_id <- id + 1;
        Hashtbl.replace reg.active id client;
        Some id
      end)

let retire reg id =
  Mutex.protect reg.lock (fun () ->
      Hashtbl.remove reg.active id;
      Condition.broadcast reg.done_)

let drain reg =
  Mutex.protect reg.lock (fun () ->
      Hashtbl.iter
        (fun _ fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        reg.active;
      while Hashtbl.length reg.active > 0 do
        Condition.wait reg.done_ reg.lock
      done)

(* Best-effort write of one protocol line. EINTR is retried — a signal
   landing mid-refusal must not kill the accept loop that called us — and
   every other write failure (EPIPE, ECONNRESET, EAGAIN, ...) means the
   client is gone or unwritable: drop it, the caller closes the fd. *)
let send_line fd line =
  let bytes = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let busy_line max_clients =
  Protocol.render
    (Protocol.Error_response
       {
         code = "busy";
         message =
           Fmt.str "server is at capacity (max-clients=%d); retry later"
             max_clients;
       })

(* One client, one worker thread (inside some accept domain). A disconnect —
   mid-response included — must drop this client only: SIGPIPE is ignored
   process-wide ([serve_socket]), so a write into a closed connection
   surfaces as an exception caught here. The caller owns the fd's
   retire/close epilogue. *)
let handle_client session client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  (try serve session ic oc with
  | Sys_error _ | End_of_file
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
    -> ()
  | e ->
    Fmt.epr "adtc engine: client handler died: %s@." (Printexc.to_string e));
  try flush oc with Sys_error _ -> ()

let refuse_non_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ ->
    failwith
      (Fmt.str "%s exists and is not a socket; refusing to replace it" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let serve_socket ?(max_clients = default_max_clients) ?(domains = 1)
    ?(handle_signals = true) ?(stop = ref false) session ~path =
  if max_clients < 1 then
    invalid_arg "Server.serve_socket: max_clients must be positive";
  if domains < 1 then
    invalid_arg "Server.serve_socket: domains must be positive";
  refuse_non_socket path;
  (* without this, a client disconnecting mid-response kills the whole
     engine with SIGPIPE before any exception can be raised *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if handle_signals then
    List.iter
      (fun signal ->
        Sys.set_signal signal (Sys.Signal_handle (fun _ -> stop := true)))
      [ Sys.sigint; Sys.sigterm ];
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock (max 8 max_clients);
  (* every domain of the pool accepts on this one fd; non-blocking, so a
     domain that loses the accept race gets EAGAIN instead of parking on a
     connection another domain already took *)
  Unix.set_nonblock sock;
  Fmt.epr "adtc engine: listening on %s (max %d clients%s)@." path max_clients
    (if domains = 1 then "" else Fmt.str ", %d domains" domains);
  let reg =
    {
      lock = Mutex.create ();
      done_ = Condition.create ();
      active = Hashtbl.create 16;
      next_id = 0;
    }
  in
  (* [stop] is a plain ref for API and signal-handler compatibility; the
     pool reads this atomic mirror instead, which the watcher loop below
     keeps in sync — cross-domain visibility of a non-atomic ref is not
     guaranteed by the memory model *)
  let stopping = Atomic.make false in
  let worker reg id client =
    (* retire strictly before close: drain shuts fds down through the
       registry, and a retired-late fd number could already be recycled
       for a different connection. Fun.protect: a raising handler must
       never leak the admission slot. *)
    Fun.protect
      ~finally:(fun () ->
        retire reg id;
        try Unix.close client with Unix.Unix_error _ -> ())
      (fun () -> handle_client session client)
  in
  let accept_loop () =
    while not (Atomic.get stopping) do
      (* wake at least every 100ms to observe shutdown *)
      match Unix.select [ sock ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept sock with
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
          -> ()
        | client, _ -> (
          (* the listener's non-blocking flag is inherited on some systems;
             workers want plain blocking reads *)
          (try Unix.clear_nonblock client with Unix.Unix_error _ -> ());
          match admit reg ~max_clients client with
          | None ->
            (* backpressure: refuse beyond capacity with a protocol error
               the client can parse, rather than queueing unboundedly *)
            send_line client (busy_line max_clients);
            (try Unix.close client with Unix.Unix_error _ -> ())
          | Some id -> (
            match Thread.create (fun () -> worker reg id client) () with
            | (_ : Thread.t) -> ()
            | exception _ ->
              (* thread exhaustion: treat like a refusal, never leak the
                 admission slot *)
              retire reg id;
              (try Unix.close client with Unix.Unix_error _ -> ()))))
    done
  in
  let pool = List.init domains (fun _ -> Domain.spawn accept_loop) in
  (* the calling thread is the only reader of [stop] (main domain: signal
     handlers run here); it mirrors the flag for the pool *)
  while not !stop do
    match Unix.select [] [] [] 0.05 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Atomic.set stopping true;
  Fmt.epr "adtc engine: shutting down, draining %d client(s)@."
    (Mutex.protect reg.lock (fun () -> Hashtbl.length reg.active));
  (* drain before join: a domain does not terminate until its worker
     threads do, and an idle worker only unblocks once drain forces
     end-of-file on its fd *)
  drain reg;
  List.iter Domain.join pool;
  (* workers flush per-connection, but a drain can cut a connection before
     its epilogue; one final flush makes shutdown durable *)
  Session.persist_flush session
