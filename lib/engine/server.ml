let serve ?(echo = false) session ic oc =
  let say line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      if echo then say ("> " ^ line);
      match Dispatch.handle_line session line with
      | Dispatch.Silent -> loop ()
      | Dispatch.Reply response ->
        say response;
        loop ()
      | Dispatch.Closed -> say "ok bye")
  in
  loop ()

let serve_socket session ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Fmt.epr "adtc engine: listening on %s@." path;
  let rec accept_loop () =
    let client, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr client in
    let oc = Unix.out_channel_of_descr client in
    (* a broken client connection must not take the engine down *)
    (try serve session ic oc with Sys_error _ | End_of_file -> ());
    (try flush oc with Sys_error _ -> ());
    (try Unix.close client with Unix.Unix_error _ -> ());
    accept_loop ()
  in
  accept_loop ()
