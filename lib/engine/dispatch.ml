open Adt

type outcome = Silent | Reply of string | Closed

let error code fmt = Fmt.kstr (fun message -> Protocol.Error_response { code; message }) fmt
let ok fmt = Fmt.kstr (fun payload -> Protocol.Ok_response payload) fmt

(* Everything observed about one request in flight: the span tree being
   built (a no-op tracer when tracing is off) and the rewrite steps the
   request has charged so far — per-request, unlike the session-wide
   [Metrics.fuel_spent], so the slow log and the fuel histogram can
   attribute work to the request that did it. *)
type ctx = { trace : Obs.Trace.t; mutable fuel : int }

let null_ctx () = { trace = Obs.Trace.disabled; fuel = 0 }

let with_spec session name k =
  match Session.find session name with
  | Some entry -> k entry
  | None ->
    error "unknown-spec" "no specification named %s is loaded (have: %s)" name
      (String.concat ", " (Session.spec_names session))

let parse_term ?vars spec src k =
  match Parser.parse_term spec ?vars src with
  | Ok term -> k term
  | Error e -> error "parse" "%s" (Protocol.sanitize (Fmt.str "%a" Parser.pp_error e))

let charge_fuel ctx session steps =
  ctx.fuel <- ctx.fuel + steps;
  Metrics.add_fuel (Session.metrics session) steps

let do_normalize ctx session entry term_src req_fuel poll =
  parse_term (Session.entry_spec entry) term_src @@ fun term ->
  match Session.persist_find entry term with
  | Some (value, _cold_steps) ->
    (* the persistent store already holds this term's normal form under
       this specification digest — answer without evaluating, charging no
       fuel and reporting zero steps (the memo-hit convention) *)
    ok "normalize steps=0 %s"
      (Protocol.sanitize (Fmt.str "%a" Interp.pp_value value))
  | None -> (
    let fuel = Limits.effective_fuel (Session.limits session) req_fuel in
    (* with_interp serializes evaluations on this specification's
       domain-local slot: the memo cache is mutated throughout the rewrite,
       and a poll abort (deadline) must release the slot lock, which
       [Session.with_interp] guarantees *)
    let value, steps =
      Obs.Trace.with_span ctx.trace "rewrite" @@ fun () ->
      Session.with_interp entry (fun interp ->
          Interp.eval_count ~fuel ?poll
            ?on_rule:(Obs.Trace.hook ctx.trace)
            interp term)
    in
    charge_fuel ctx session steps;
    match value with
    | Interp.Diverged ->
      error "fuel" "normalization exceeded %d rewrite steps" fuel
    | value ->
      Session.persist_record session entry term value steps;
      ok "normalize steps=%d %s" steps
        (Protocol.sanitize (Fmt.str "%a" Interp.pp_value value)))

let do_check ctx session entry =
  Obs.Trace.with_span ctx.trace "rewrite" @@ fun () ->
  let spec = Session.entry_spec entry in
  let name = Spec.name spec in
  match Session.persist_meta_find entry ~kind:"check" ~key:name with
  | Some payload -> Protocol.Ok_response payload
  | None ->
    let comp = Completeness.check spec in
    let cons = Consistency.check spec in
    let payload =
      Fmt.str "check %s complete=%b consistent=%b missing=%d critical_pairs=%d"
        name
        (Completeness.is_complete comp)
        (Consistency.is_consistent spec cons)
        (List.length (Completeness.missing comp))
        (List.length cons.Consistency.pairs)
    in
    Session.persist_meta_record session entry ~kind:"check" ~key:name payload;
    Protocol.Ok_response payload

let do_skeletons ctx entry =
  Obs.Trace.with_span ctx.trace "rewrite" @@ fun () ->
  let spec = Session.entry_spec entry in
  let name = Spec.name spec in
  match Heuristics.prompts spec with
  | [] -> ok "skeletons %s missing=0" name
  | prompts ->
    ok "skeletons %s missing=%d: %s" name (List.length prompts)
      (String.concat " ; "
         (List.map
            (fun p ->
              Protocol.sanitize (Fmt.str "%a" Term.pp p.Heuristics.missing_lhs))
            prompts))

(* the lint record kind carries the analysis pass version: a verdict
   persisted by an older rule set (say, before the ADT020-022 verification
   passes existed) lives under a different kind, is never found, and so is
   re-analysed — the stale record counts as an ordinary store miss *)
let lint_kind = Fmt.str "lint/p%d" Analysis.Lint.pass_version

(* like metrics and slowlog, the body is framed by a findings count on the
   first line; each finding is one sanitized diagnostic line *)
let do_lint ctx session entry =
  let name = Spec.name (Session.entry_spec entry) in
  match Session.persist_meta_find entry ~kind:lint_kind ~key:name with
  | Some payload ->
    (* a persisted hit skips the per-rule lint counters: the findings were
       metered by the run that produced the payload (possibly another
       process) — rule totals count lint executions, not replays *)
    Protocol.Ok_response payload
  | None ->
    let diags =
      Obs.Trace.with_span ctx.trace "rewrite" @@ fun () ->
      Analysis.Lint.run (Session.entry_spec entry)
    in
    Metrics.record_rule_hits (Session.metrics session)
      (List.map (fun d -> d.Analysis.Diagnostic.code) diags);
    let header = Fmt.str "lint %s findings=%d" name (List.length diags) in
    let payload =
      String.concat "\n"
        (header
        :: List.map
             (fun d -> Protocol.sanitize (Analysis.Diagnostic.to_line d))
             diags)
    in
    Session.persist_meta_record session entry ~kind:lint_kind ~key:name payload;
    Protocol.Ok_response payload

(* the conformance suite resolves in the builtin implementation registry,
   not the session's loaded specifications: only OCaml implementations
   compiled into the binary can be run against their axioms *)
let do_testgen ctx session ~spec ~impl ~count ~seed =
  let resolved =
    match impl with
    | Some impl_name -> (
      match Testgen.Registry.find ~spec ~impl:impl_name with
      | Some entry -> Ok entry
      | None ->
        let registered =
          Testgen.Registry.for_spec spec
          @ Testgen.Registry.for_spec ~mutants:true spec
        in
        if registered = [] then
          Error
            (error "unknown-spec"
               "no implementation is registered for %s (have: %s)" spec
               (String.concat ", " (Testgen.Registry.spec_names ())))
        else
          Error
            (error "unknown-impl"
               "no implementation named %s is registered for %s (have: %s)"
               impl_name spec
               (String.concat ", " (List.map Testgen.Impl.name registered))))
    | None -> (
      match Testgen.Registry.default_for spec with
      | Some entry -> Ok entry
      | None ->
        Error
          (error "unknown-spec"
             "no implementation is registered for %s (have: %s)" spec
             (String.concat ", " (Testgen.Registry.spec_names ()))))
  in
  match resolved with
  | Error e -> e
  | Ok entry -> (
    let count = Option.value ~default:100 count in
    let seed = Option.value ~default:414243 seed in
    (* the suite is deterministic in (impl, count, seed), so the verdict
       persists under that key — but only when the spec is also loaded in
       the session, whose digest names the store entry *)
    let meta_key =
      Fmt.str "%s|%s|%d|%d" spec (Testgen.Impl.name entry) count seed
    in
    let sentry = Session.find session spec in
    match
      Option.bind sentry (fun e ->
          Session.persist_meta_find e ~kind:"testgen" ~key:meta_key)
    with
    | Some payload -> Protocol.Ok_response payload
    | None ->
    let report =
      Obs.Trace.with_span ctx.trace "testgen" @@ fun () ->
      Testgen.Harness.conformance ~count ~seed entry
    in
    let failures = Testgen.Harness.failures report in
    Metrics.record_testgen_run (Session.metrics session)
      ~failures:(List.map (fun (axiom, _) -> Axiom.name axiom) failures);
    let line ar =
      match ar.Testgen.Harness.failure with
      | None ->
        Fmt.str "axiom %s pass trials=%d" (Axiom.name ar.Testgen.Harness.axiom)
          ar.Testgen.Harness.trials
      | Some f ->
        Protocol.sanitize
          (Fmt.str "axiom %s FAIL seed=%d at %a: %a"
             (Axiom.name ar.Testgen.Harness.axiom)
             f.Testgen.Harness.fail_seed Testgen.Harness.pp_valuation
             f.Testgen.Harness.valuation
             Testgen.Harness.pp_witness f.Testgen.Harness.witness)
    in
    let header =
      Fmt.str "testgen %s impl=%s seed=%d count=%d size=%d failures=%d axioms=%d"
        report.Testgen.Harness.spec_name report.Testgen.Harness.impl_name seed
        count report.Testgen.Harness.gen_size (List.length failures)
        (List.length report.Testgen.Harness.axiom_reports)
    in
    let payload =
      String.concat "\n"
        (header :: List.map line report.Testgen.Harness.axiom_reports)
    in
    (match sentry with
    | Some e ->
      Session.persist_meta_record session e ~kind:"testgen" ~key:meta_key
        payload
    | None -> ());
    Protocol.Ok_response payload)

let do_prove ctx session entry vars lhs_src rhs_src req_fuel poll =
  let spec = Session.entry_spec entry in
  let vars = List.map (fun (name, sort) -> (name, Sort.v sort)) vars in
  parse_term ~vars spec lhs_src @@ fun lhs ->
  parse_term ~vars spec rhs_src @@ fun rhs ->
  (* the Limits contract: a request's fuel=N may lower the session ceiling,
     never raise it — the prover's own default applies when nothing is
     requested, itself capped by the ceiling *)
  let fuel =
    Limits.effective_fuel (Session.limits session)
      (Some (Option.value ~default:Proof.default_fuel req_fuel))
  in
  (* every rule application inside the proof search reaches the poll hook,
     so it both enforces the deadline and meters the fuel actually spent *)
  let steps = ref 0 in
  let counting () =
    incr steps;
    match poll with Some p -> p () | None -> ()
  in
  let config =
    Proof.config ~fuel ~poll:counting ?on_rule:(Obs.Trace.hook ctx.trace) spec
  in
  let name = Spec.name spec in
  (* a proof, once found, stays valid under any fuel budget, so Proved
     replies persist under the canonical goal rendering; Unknown is never
     recorded — a later run with more fuel may still succeed *)
  let meta_key =
    let var ppf (n, s) = Fmt.pf ppf "%s:%s" n (Sort.name s) in
    Fmt.str "%a|%a=%a"
      (Fmt.list ~sep:Fmt.comma var)
      (List.sort compare vars) Term.pp lhs Term.pp rhs
  in
  match Session.persist_meta_find entry ~kind:"proof" ~key:meta_key with
  | Some payload -> Protocol.Ok_response payload
  | None -> (
    let outcome =
      Obs.Trace.with_span ctx.trace "rewrite" @@ fun () ->
      Proof.prove config (lhs, rhs)
    in
    charge_fuel ctx session !steps;
    match outcome with
    | Proof.Proved proof ->
      let payload =
        Fmt.str "prove %s proved size=%d depth=%d" name
          (Proof.proof_size proof) (Proof.proof_depth proof)
      in
      Session.persist_meta_record session entry ~kind:"proof" ~key:meta_key
        payload;
      Protocol.Ok_response payload
    | Proof.Unknown _ -> ok "prove %s unknown" name)

let do_stats session verbose =
  let m = Metrics.snapshot (Session.metrics session) in
  let counters =
    Fmt.str
      "stats requests=%d normalize=%d check=%d skeletons=%d lint=%d \
       testgen=%d prove=%d stats=%d metrics=%d slowlog=%d malformed=%d \
       errors=%d fuel=%d"
      m.Metrics.requests m.Metrics.normalize m.Metrics.check
      m.Metrics.skeletons m.Metrics.lint m.Metrics.testgen m.Metrics.prove
      m.Metrics.stats m.Metrics.metrics m.Metrics.slowlog m.Metrics.malformed
      m.Metrics.errors m.Metrics.fuel_spent
  in
  let c = Session.cache_totals session in
  let base =
    Fmt.str
      "%s cache.hits=%d cache.misses=%d cache.evictions=%d cache.entries=%d \
       cache.capacity=%d"
      counters c.Session.hits c.Session.misses c.Session.evictions
      c.Session.entries c.Session.capacity
  in
  (* persist fields only when a store is attached, so cache-less sessions
     keep their historical stats line byte-for-byte *)
  let base =
    match Session.persist_totals session with
    | None -> base
    | Some p ->
      Fmt.str
        "%s persist.hits=%d persist.misses=%d persist.corrupt=%d \
         persist.loaded=%d persist.files=%d persist.read_only=%b"
        base p.Session.hits p.Session.misses p.Session.corrupt
        p.Session.loaded p.Session.files p.Session.read_only
  in
  (* latency is real time: only printed on demand, so that batch replays
     stay deterministic *)
  if verbose then
    Protocol.Ok_response
      (Fmt.str "%s latency.total_ms=%.3f latency.max_ms=%.3f" base
         (Metrics.latency_total m *. 1000.)
         (Metrics.latency_max m *. 1000.))
  else Protocol.Ok_response base

(* the body is announced by line count on the first line, so line-oriented
   clients can frame the multi-line exposition *)
let do_metrics session =
  let body = Session.prometheus session in
  let lines = String.split_on_char '\n' body in
  (* the exposition is newline-terminated: drop the final empty piece *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  ok "metrics lines=%d\n%s" (List.length lines) (String.concat "\n" lines)

let render_slow_entry e =
  let spans =
    String.concat ";"
      (List.map
         (fun (name, dur_s) -> Fmt.str "%s:%.3f" name (dur_s *. 1000.))
         e.Obs.Slowlog.spans)
  in
  Fmt.str "slow trace=%s kind=%s spec=%s ms=%.3f fuel=%d spans=%s"
    e.Obs.Slowlog.trace_id e.Obs.Slowlog.kind e.Obs.Slowlog.spec
    (e.Obs.Slowlog.latency_s *. 1000.)
    e.Obs.Slowlog.fuel
    (if String.equal spans "" then "-" else spans)

let do_slowlog session =
  match Session.slowlog session with
  | None ->
    error "slowlog"
      "the slow-request log is disabled; start the engine with --slowlog-ms"
  | Some sl ->
    let entries = Obs.Slowlog.entries sl in
    let header =
      Fmt.str "slowlog entries=%d threshold_ms=%g capacity=%d"
        (List.length entries)
        (Obs.Slowlog.threshold_s sl *. 1000.)
        (Obs.Slowlog.capacity sl)
    in
    ok "%s"
      (String.concat "\n" (header :: List.map render_slow_entry entries))

(* {1 The document-session verbs} *)

let summary_line verb name (doc : Docsession.Manager.doc) =
  let s = doc.Docsession.Manager.summary in
  Fmt.str
    "%s %s version=%d axioms=%d sig_changed=%b changed=%d cone=%d checked=%d \
     reused=%d digest=%s"
    verb name s.Docsession.Manager.version s.Docsession.Manager.axioms
    s.Docsession.Manager.sig_changed s.Docsession.Manager.changed
    s.Docsession.Manager.cone s.Docsession.Manager.checked
    s.Docsession.Manager.reused doc.Docsession.Manager.digest

let do_session_open ctx session name =
  (* the document starts from the loaded specification's canonical
     source, so the first edit diffs against exactly what the session
     serves; [uses] are already merged into the elaborated signature *)
  with_spec session name @@ fun entry ->
  let source = Pretty.source_of_spec (Session.entry_spec entry) in
  let result =
    Obs.Trace.with_span ctx.trace "rewrite" @@ fun () ->
    Docsession.Manager.open_doc (Session.docs session) ~name ~source
  in
  match result with
  | Error e -> error "parse" "%s" (Protocol.sanitize e)
  | Ok doc -> ok "%s" (summary_line "session-open" name doc)

let do_session_edit ctx session name body =
  let result =
    Obs.Trace.with_span ctx.trace "rewrite" @@ fun () ->
    Docsession.Manager.edit (Session.docs session) ~name ~source:body
  in
  match result with
  | Error e ->
    let code =
      if String.length e >= 2 && String.equal (String.sub e 0 2) "no" then
        "unknown-spec"
      else "parse"
    in
    error code "%s" (Protocol.sanitize e)
  | Ok doc -> ok "%s" (summary_line "session-edit" name doc)

let do_session_status session name =
  match Docsession.Manager.status (Session.docs session) ~name with
  | None ->
    error "unknown-spec" "no open document named %s (session-open it first)"
      name
  | Some doc ->
    let line (o : Docsession.Manager.oblig) =
      Fmt.str "axiom %s status=%s steps=%d findings=%d source=%s"
        (if String.equal o.Docsession.Manager.axiom_name "" then "-"
         else o.Docsession.Manager.axiom_name)
        (Docsession.Manager.status_name o.Docsession.Manager.status)
        o.Docsession.Manager.steps o.Docsession.Manager.findings
        (if o.Docsession.Manager.reused then "reused" else "checked")
    in
    let obligations = doc.Docsession.Manager.obligations in
    let header =
      Fmt.str "session-status %s version=%d axioms=%d obligations=%d digest=%s"
        name doc.Docsession.Manager.version
        doc.Docsession.Manager.summary.Docsession.Manager.axioms
        (List.length obligations) doc.Docsession.Manager.digest
    in
    ok "%s" (String.concat "\n" (header :: List.map line obligations))

let handle_request ?poll ?ctx ?body session request =
  let ctx = match ctx with Some c -> c | None -> null_ctx () in
  match request with
  | Protocol.Normalize { spec; term; fuel } ->
    with_spec session spec @@ fun entry ->
    do_normalize ctx session entry term fuel poll
  | Protocol.Check { spec } ->
    with_spec session spec @@ fun entry -> do_check ctx session entry
  | Protocol.Skeletons { spec } -> with_spec session spec (do_skeletons ctx)
  | Protocol.Lint { spec } ->
    with_spec session spec @@ fun entry -> do_lint ctx session entry
  | Protocol.Testgen { spec; impl; count; seed } ->
    do_testgen ctx session ~spec ~impl ~count ~seed
  | Protocol.Prove { spec; vars; lhs; rhs; fuel } ->
    with_spec session spec @@ fun entry ->
    do_prove ctx session entry vars lhs rhs fuel poll
  | Protocol.Session_open { spec } -> do_session_open ctx session spec
  | Protocol.Session_edit { spec; lines } -> (
    match body with
    | Some body -> do_session_edit ctx session spec body
    | None ->
      error "protocol"
        "session-edit has no transport to read its %d body lines from \
         (needs a line-oriented connection)"
        lines)
  | Protocol.Session_status { spec } -> do_session_status session spec
  | Protocol.Stats { verbose } -> do_stats session verbose
  | Protocol.Metrics -> do_metrics session
  | Protocol.Slowlog -> do_slowlog session
  | Protocol.Quit -> Protocol.Ok_response "bye"

let feed_slowlog session request ctx elapsed result =
  match (Session.slowlog session, result) with
  | Some sl, Some r ->
    ignore
      (Obs.Slowlog.observe sl
         {
           Obs.Slowlog.trace_id = r.Obs.Trace.id;
           kind = Protocol.kind_name request;
           spec = Option.value ~default:"-" (Protocol.spec_name request);
           latency_s = elapsed;
           fuel = ctx.fuel;
           spans = Obs.Trace.breakdown r.Obs.Trace.root;
         })
  | _ -> ()

let handle_line_obs ?read_line session line =
  let metrics = Session.metrics session in
  let tracing = Session.tracing session in
  (* parse before allocating a tracer, so blank and comment lines consume
     no trace ID; the parse time becomes a pre-measured leaf span *)
  let parse_started = if tracing then Unix.gettimeofday () else 0. in
  let parsed = Protocol.parse line in
  let trace_for_line () =
    if tracing then begin
      let t = Obs.Trace.create "request" in
      Obs.Trace.record_span t "parse"
        (Float.max 0. (Unix.gettimeofday () -. parse_started));
      t
    end
    else Obs.Trace.disabled
  in
  match parsed with
  | Ok None -> (Silent, None)
  | Error message ->
    let trace = trace_for_line () in
    Metrics.record_malformed_request metrics;
    ( Reply (Protocol.render (Protocol.Error_response { code = "protocol"; message })),
      Obs.Trace.finish trace )
  | Ok (Some Protocol.Quit) ->
    let trace = trace_for_line () in
    Metrics.record_request metrics "quit";
    (Closed, Obs.Trace.finish trace)
  | Ok (Some request) ->
    let trace = trace_for_line () in
    Metrics.record_request metrics (Protocol.kind_name request);
    let ctx = { trace; fuel = 0 } in
    let started = Unix.gettimeofday () in
    (* a session-edit body is raw lines read off the same transport,
       before the deadline starts: reading the client's text is not the
       request's computation *)
    let body =
      match request with
      | Protocol.Session_edit { lines; _ } -> (
        match read_line with
        | None -> Ok None
        | Some next ->
          let rec go acc n =
            if n = 0 then Ok (Some (String.concat "\n" (List.rev acc)))
            else
              match next () with
              | Some l -> go (l :: acc) (n - 1)
              | None ->
                Error
                  (error "protocol"
                     "session-edit body truncated (connection closed before \
                      %d lines arrived)"
                     lines)
          in
          go [] lines)
      | _ -> Ok None
    in
    let response =
      Obs.Trace.with_span trace "dispatch" @@ fun () ->
      match body with
      | Error resp -> resp
      | Ok body -> (
        match
          Limits.with_deadline (Session.limits session).Limits.timeout
            (fun poll -> handle_request ?poll ~ctx ?body session request)
        with
        | Ok response -> response
        | Error `Timeout ->
          error "timeout" "request exceeded %gs of wall-clock time"
            (Option.get (Session.limits session).Limits.timeout)
        | exception e ->
          (* error isolation: an internal failure answers this request and
             only this request *)
          error "internal" "%s" (Protocol.sanitize (Printexc.to_string e)))
    in
    let rendered =
      Obs.Trace.with_span trace "respond" (fun () -> Protocol.render response)
    in
    let elapsed = Unix.gettimeofday () -. started in
    let fuel_metered =
      match request with
      | Protocol.Normalize _ | Protocol.Prove _ -> true
      | _ -> false
    in
    Metrics.record_outcome metrics ~latency:elapsed
      ?fuel:(if fuel_metered then Some ctx.fuel else None)
      ~error:
        (match response with
        | Protocol.Error_response _ -> true
        | Protocol.Ok_response _ -> false)
      ();
    let result = Obs.Trace.finish trace in
    feed_slowlog session request ctx elapsed result;
    (Reply rendered, result)

let handle_line ?read_line session line =
  fst (handle_line_obs ?read_line session line)
