open Adt

type outcome = Silent | Reply of string | Closed

let error code fmt = Fmt.kstr (fun message -> Protocol.Error_response { code; message }) fmt
let ok fmt = Fmt.kstr (fun payload -> Protocol.Ok_response payload) fmt

let with_spec session name k =
  match Session.find session name with
  | Some entry -> k entry
  | None ->
    error "unknown-spec" "no specification named %s is loaded (have: %s)" name
      (String.concat ", " (Session.spec_names session))

let parse_term ?vars spec src k =
  match Parser.parse_term spec ?vars src with
  | Ok term -> k term
  | Error e -> error "parse" "%s" (Protocol.sanitize (Fmt.str "%a" Parser.pp_error e))

let charge_fuel session steps =
  let metrics = Session.metrics session in
  Metrics.locked metrics (fun () ->
      metrics.Metrics.fuel_spent <- metrics.Metrics.fuel_spent + steps)

let do_normalize session entry term_src req_fuel poll =
  parse_term entry.Session.spec term_src @@ fun term ->
  let fuel = Limits.effective_fuel (Session.limits session) req_fuel in
  (* the entry lock serializes evaluations on this specification: the
     shared memo cache is mutated throughout the rewrite, and a poll abort
     (deadline) must release the lock, which [Mutex.protect] guarantees *)
  let value, steps =
    Mutex.protect entry.Session.lock (fun () ->
        Interp.eval_count ~fuel ?poll entry.Session.interp term)
  in
  charge_fuel session steps;
  match value with
  | Interp.Diverged -> error "fuel" "normalization exceeded %d rewrite steps" fuel
  | value ->
    ok "normalize steps=%d %s" steps
      (Protocol.sanitize (Fmt.str "%a" Interp.pp_value value))

let do_check entry =
  let comp = Completeness.check entry.Session.spec in
  let cons = Consistency.check entry.Session.spec in
  ok "check %s complete=%b consistent=%b missing=%d critical_pairs=%d"
    (Spec.name entry.Session.spec)
    (Completeness.is_complete comp)
    (Consistency.is_consistent entry.Session.spec cons)
    (List.length (Completeness.missing comp))
    (List.length cons.Consistency.pairs)

let do_skeletons entry =
  let name = Spec.name entry.Session.spec in
  match Heuristics.prompts entry.Session.spec with
  | [] -> ok "skeletons %s missing=0" name
  | prompts ->
    ok "skeletons %s missing=%d: %s" name (List.length prompts)
      (String.concat " ; "
         (List.map
            (fun p ->
              Protocol.sanitize (Fmt.str "%a" Term.pp p.Heuristics.missing_lhs))
            prompts))

let do_prove session entry vars lhs_src rhs_src req_fuel poll =
  let vars = List.map (fun (name, sort) -> (name, Sort.v sort)) vars in
  parse_term ~vars entry.Session.spec lhs_src @@ fun lhs ->
  parse_term ~vars entry.Session.spec rhs_src @@ fun rhs ->
  (* the Limits contract: a request's fuel=N may lower the session ceiling,
     never raise it — the prover's own default applies when nothing is
     requested, itself capped by the ceiling *)
  let fuel =
    Limits.effective_fuel (Session.limits session)
      (Some (Option.value ~default:Proof.default_fuel req_fuel))
  in
  (* every rule application inside the proof search reaches the poll hook,
     so it both enforces the deadline and meters the fuel actually spent *)
  let steps = ref 0 in
  let counting () =
    incr steps;
    match poll with Some p -> p () | None -> ()
  in
  let config = Proof.config ~fuel ~poll:counting entry.Session.spec in
  let name = Spec.name entry.Session.spec in
  let outcome = Proof.prove config (lhs, rhs) in
  charge_fuel session !steps;
  match outcome with
  | Proof.Proved proof ->
    ok "prove %s proved size=%d depth=%d" name (Proof.proof_size proof)
      (Proof.proof_depth proof)
  | Proof.Unknown _ -> ok "prove %s unknown" name

let do_stats session verbose =
  let m = Session.metrics session in
  let snapshot =
    Metrics.locked m (fun () ->
        Fmt.str
          "stats requests=%d normalize=%d check=%d skeletons=%d prove=%d \
           stats=%d errors=%d fuel=%d"
          m.Metrics.requests m.Metrics.normalize m.Metrics.check
          m.Metrics.skeletons m.Metrics.prove m.Metrics.stats m.Metrics.errors
          m.Metrics.fuel_spent)
  in
  let c = Session.cache_totals session in
  let base =
    Fmt.str
      "%s cache.hits=%d cache.misses=%d cache.evictions=%d cache.entries=%d \
       cache.capacity=%d"
      snapshot c.Session.hits c.Session.misses c.Session.evictions
      c.Session.entries c.Session.capacity
  in
  (* latency is real time: only printed on demand, so that batch replays
     stay deterministic *)
  if verbose then
    Protocol.Ok_response
      (Metrics.locked m (fun () ->
           Fmt.str "%s latency.total_ms=%.3f latency.max_ms=%.3f" base
             (m.Metrics.latency_total *. 1000.)
             (m.Metrics.latency_max *. 1000.)))
  else Protocol.Ok_response base

let handle_request ?poll session = function
  | Protocol.Normalize { spec; term; fuel } ->
    with_spec session spec @@ fun entry ->
    do_normalize session entry term fuel poll
  | Protocol.Check { spec } -> with_spec session spec do_check
  | Protocol.Skeletons { spec } -> with_spec session spec do_skeletons
  | Protocol.Prove { spec; vars; lhs; rhs; fuel } ->
    with_spec session spec @@ fun entry ->
    do_prove session entry vars lhs rhs fuel poll
  | Protocol.Stats { verbose } -> do_stats session verbose
  | Protocol.Quit -> Protocol.Ok_response "bye"

let handle_line session line =
  let metrics = Session.metrics session in
  match Protocol.parse line with
  | Ok None -> Silent
  | Error message ->
    Metrics.locked metrics (fun () ->
        metrics.Metrics.requests <- metrics.Metrics.requests + 1;
        metrics.Metrics.errors <- metrics.Metrics.errors + 1);
    Reply (Protocol.render (Protocol.Error_response { code = "protocol"; message }))
  | Ok (Some Protocol.Quit) ->
    Metrics.locked metrics (fun () ->
        metrics.Metrics.requests <- metrics.Metrics.requests + 1);
    Closed
  | Ok (Some request) ->
    Metrics.locked metrics (fun () ->
        metrics.Metrics.requests <- metrics.Metrics.requests + 1;
        Metrics.record_kind metrics (Protocol.kind_name request));
    let started = Unix.gettimeofday () in
    let response =
      match
        Limits.with_deadline (Session.limits session).Limits.timeout
          (fun poll -> handle_request ?poll session request)
      with
      | Ok response -> response
      | Error `Timeout ->
        error "timeout" "request exceeded %gs of wall-clock time"
          (Option.get (Session.limits session).Limits.timeout)
      | exception e ->
        (* error isolation: an internal failure answers this request and
           only this request *)
        error "internal" "%s" (Protocol.sanitize (Printexc.to_string e))
    in
    let elapsed = Unix.gettimeofday () -. started in
    Metrics.locked metrics (fun () ->
        Metrics.observe_latency metrics elapsed;
        match response with
        | Protocol.Error_response _ ->
          metrics.Metrics.errors <- metrics.Metrics.errors + 1
        | Protocol.Ok_response _ -> ());
    Reply (Protocol.render response)
