(** The engine's line-oriented wire protocol.

    One request per line, one response line per request, answered in
    order. Blank lines and lines starting with [#] are ignored (so batch
    scripts can be annotated). Grammar:

    {v
    request    := kind option* arg*
    option     := KEY '=' VALUE            (before the positional args)
    kind       := 'normalize' | 'check' | 'skeletons' | 'prove'
                | 'stats'     | 'quit'

    normalize [fuel=N] SPEC TERM           evaluate TERM against SPEC
    check     SPEC                         completeness + consistency
    skeletons SPEC                         missing-axiom left-hand sides
    prove [fuel=N] SPEC VARS LHS == RHS    equational proof; VARS is '-'
                                           or 'q:Queue,i:Item'
    stats [verbose=true]                   metrics counters; verbose adds
                                           wall-clock latency
    quit                                   close the session
    v}

    Responses:

    {v
    response := 'ok' payload | 'error' CODE message
    CODE     := 'protocol' | 'unknown-spec' | 'parse' | 'fuel'
              | 'timeout'  | 'internal'
    v}

    Payloads are single-line (term renderings are whitespace-squashed by
    {!sanitize}); an error response never kills the session — the next
    request is served normally. *)

type request =
  | Normalize of { spec : string; term : string; fuel : int option }
  | Check of { spec : string }
  | Skeletons of { spec : string }
  | Prove of {
      spec : string;
      vars : (string * string) list;  (** (variable, sort name) pairs. *)
      lhs : string;
      rhs : string;
      fuel : int option;
    }
  | Stats of { verbose : bool }
  | Quit

type response =
  | Ok_response of string  (** The payload, without the leading [ok]. *)
  | Error_response of { code : string; message : string }

val parse : string -> (request option, string) result
(** [Ok None] for blank/comment lines; [Error message] for malformed
    requests (unknown kind, bad arity, bad option). *)

val render : response -> string
(** The response line, newline not included. *)

val kind_name : request -> string
(** The request's kind keyword, for metrics. *)

val sanitize : string -> string
(** Collapses all whitespace runs (newlines included) to single spaces —
    every payload fits one protocol line. *)
