(** The engine's line-oriented wire protocol.

    One request per line, one response line per request, answered in
    order. Blank lines and lines starting with [#] are ignored (so batch
    scripts can be annotated). Grammar:

    {v
    request    := kind option* arg*
    option     := KEY '=' VALUE            (before the positional args)
    kind       := 'normalize' | 'check' | 'skeletons' | 'lint' | 'testgen'
                | 'prove' | 'session-open' | 'session-edit'
                | 'session-status' | 'stats' | 'metrics' | 'slowlog' | 'quit'

    normalize [fuel=N] SPEC TERM           evaluate TERM against SPEC
    check     SPEC                         completeness + consistency
    skeletons SPEC                         missing-axiom left-hand sides
    lint      SPEC                         all lint findings (one per line)
    testgen [impl=NAME] [count=N] [seed=S] SPEC
                                           run the spec's generated
                                           conformance suite against a
                                           registered implementation
    prove [fuel=N] SPEC VARS LHS == RHS    equational proof; VARS is '-'
                                           or 'q:Queue,i:Item'
    session-open SPEC                      open the versioned document for
                                           a loaded spec; full check
    session-edit lines=N SPEC              replace the document source with
                                           the N raw lines that follow;
                                           O(edit) incremental re-check
    session-status SPEC                    version + per-obligation lines
    stats [verbose=true]                   metrics counters; verbose adds
                                           wall-clock latency
    metrics                                Prometheus text exposition
    slowlog                                slow-request ring log entries
    quit                                   close the session
    v}

    Responses:

    {v
    response := 'ok' payload | 'error' CODE message
    CODE     := 'protocol' | 'unknown-spec' | 'unknown-impl' | 'parse'
              | 'fuel' | 'timeout' | 'internal'
    v}

    Payloads are single-line (term renderings are whitespace-squashed by
    {!sanitize}), with three exceptions: [metrics], [slowlog] and [lint]
    answer a first line announcing how many raw lines follow ([ok metrics
    lines=N] / [ok slowlog entries=N ...] / [ok lint SPEC findings=N])
    and then exactly that many further lines, so line-oriented clients
    can frame the body; [testgen] frames identically with [ok testgen
    SPEC impl=NAME seed=S failures=N axioms=K] followed by one line per
    axiom. An error response never kills the session — the next request
    is served normally. *)

type request =
  | Normalize of { spec : string; term : string; fuel : int option }
  | Check of { spec : string }
  | Skeletons of { spec : string }
  | Lint of { spec : string }
      (** Every lint finding for the specification, one {!Analysis}
          diagnostic line per finding. *)
  | Testgen of {
      spec : string;
      impl : string option;  (** Registry name; the spec's default if absent. *)
      count : int option;
      seed : int option;
    }
      (** Run the generated conformance suite for a builtin-registry
          implementation, one verdict line per axiom. *)
  | Prove of {
      spec : string;
      vars : (string * string) list;  (** (variable, sort name) pairs. *)
      lhs : string;
      rhs : string;
      fuel : int option;
    }
  | Session_open of { spec : string }
      (** Open (or reset) the versioned document for a loaded
          specification — checks every obligation. *)
  | Session_edit of { spec : string; lines : int }
      (** Replace the document's source with the [lines] raw body lines
          that follow the request line; only obligations inside the
          edit's invalidation cone are re-checked. *)
  | Session_status of { spec : string }
      (** The document's version and per-obligation verdict lines. *)
  | Stats of { verbose : bool }
  | Metrics  (** Prometheus text-format exposition of the session. *)
  | Slowlog  (** Dump the slow-request ring log. *)
  | Quit

type response =
  | Ok_response of string  (** The payload, without the leading [ok]. *)
  | Error_response of { code : string; message : string }

val parse : string -> (request option, string) result
(** [Ok None] for blank/comment lines; [Error message] for malformed
    requests (unknown kind, bad arity, bad option). *)

val render : response -> string
(** The response line, newline not included. *)

val kind_name : request -> string
(** The request's kind keyword, for metrics. {!Metrics.record_kind} is
    total over this function's range, by construction and by test. *)

val spec_name : request -> string option
(** The specification the request names, when its kind has one — what a
    slow-request log entry records. *)

val sanitize : string -> string
(** Collapses all whitespace runs (newlines included) to single spaces —
    every payload fits one protocol line. *)
