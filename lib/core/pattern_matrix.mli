(** Maranget-style pattern matrices: usefulness and exhaustiveness over
    constructor patterns.

    A {e pattern} here is a term whose applications are constructor
    applications and whose variables are wildcards; a {e row} is one
    pattern per column. The two classic questions over a matrix [P]:

    - {e usefulness} — is there a vector of ground constructor terms that
      matches a query row [q] but no row of [P]? ("would adding [q] below
      [P] ever fire?")
    - {e exhaustiveness} — is the all-wildcard query useless, i.e. does
      every vector of ground constructor terms match some row?

    Both reduce to the same recursion on the first column: specialize the
    matrix by each constructor the column's sort declares, or drop to the
    default matrix when the column's head constructors do not span the
    signature (Maranget, {e Warnings for pattern matching}, JFP 2007).

    The sufficient-completeness verifier (ADT020 in [lib/analysis]) asks
    exhaustiveness of each observer's defining left-hand sides and reports
    the witness; the ROADMAP's decision-tree rule compiler asks usefulness
    to prune unreachable rules. Both share this module.

    Caveats, enforced by construction rather than checks:

    - Rows must be {e left-linear}: a repeated variable is treated as a
      plain wildcard, which over-approximates what the row matches.
      Callers that admit non-linear rows must compensate (the verifier
      excludes them and re-checks witnesses by ground enumeration).
    - Patterns whose head is not a constructor of the matrix's
      specification — an observer application, [error], [if-then-else] —
      never match a ground constructor vector and simply never specialize:
      such rows contribute nothing to coverage.
    - A sort with no declared constructors (a parameter sort such as
      [Item]) behaves as an infinite signature: no head set spans it, so
      only wildcard rows cover it. *)

type t
(** A matrix: column sorts plus rows, against a fixed specification. *)

val create : Spec.t -> sorts:Sort.t list -> rows:Term.t list list -> t
(** Raises [Invalid_argument] when a row's width differs from the number
    of column sorts. *)

val rows : t -> Term.t list list
val sorts : t -> Sort.t list

val useful : t -> Term.t list -> bool
(** [useful m q] — some ground constructor instance of [q] (wildcards
    free) is matched by no row of [m]. Raises [Invalid_argument] on a
    width mismatch. *)

val exhaustive : t -> bool
(** Every vector of ground constructor terms over the column sorts matches
    some row: [not (useful m all-wildcards)]. *)

val uncovered : t -> Term.t list option
(** [None] when the matrix is exhaustive; otherwise a witness vector no
    row matches. Constrained positions carry the missing constructor;
    unconstrained positions are instantiated through
    {!instantiate_wildcards} (first constructor of the sort, recursively,
    or a fresh variable for parameter sorts), so the witness is a concrete
    constructor context like [FRONT(NEW)] rather than [FRONT(_)]. *)

val instantiate_wildcards : Spec.t -> Term.t -> Term.t
(** Replaces each variable of a sort with declared constructors by that
    sort's first constructor, recursively (depth-bounded; positions the
    bound leaves unfilled stay variables). Variables of parameter sorts
    are kept. *)
