type t = {
  signature_changed : bool;
  added : Axiom.t list;
  removed : Axiom.t list;
}

module Digest_set = Set.Make (String)

let digests axs =
  List.fold_left
    (fun s ax -> Digest_set.add (Spec_digest.axiom ax) s)
    Digest_set.empty axs

let signature_equal a b =
  Signature.equal (Spec.signature a) (Spec.signature b)
  && Op.Set.equal (Spec.constructors a) (Spec.constructors b)

let diff ~old_spec ~spec =
  let old_set = digests (Spec.axioms old_spec) in
  let new_set = digests (Spec.axioms spec) in
  {
    signature_changed = not (signature_equal old_spec spec);
    added =
      List.filter
        (fun ax -> not (Digest_set.mem (Spec_digest.axiom ax) old_set))
        (Spec.axioms spec);
    removed =
      List.filter
        (fun ax -> not (Digest_set.mem (Spec_digest.axiom ax) new_set))
        (Spec.axioms old_spec);
  }

let is_unchanged d =
  (not d.signature_changed) && d.added = [] && d.removed = []

let mentions ax = Op.Set.union (Term.ops (Axiom.lhs ax)) (Term.ops (Axiom.rhs ax))

let dirty_ops ~spec d =
  if d.signature_changed then
    List.fold_left
      (fun s op -> Op.Set.add op s)
      (Spec.constructors spec)
      (Signature.ops (Spec.signature spec))
  else begin
    let seed =
      List.fold_left
        (fun s ax -> Op.Set.add (Axiom.head ax) s)
        Op.Set.empty (d.added @ d.removed)
    in
    (* fixed point: an op whose defining axioms mention a dirty op is
       dirty — its behavior routes through changed rules *)
    let rec close dirty =
      let next =
        List.fold_left
          (fun dirty ax ->
            if
              (not (Op.Set.mem (Axiom.head ax) dirty))
              && not (Op.Set.is_empty (Op.Set.inter (mentions ax) dirty))
            then Op.Set.add (Axiom.head ax) dirty
            else dirty)
          dirty (Spec.axioms spec)
      in
      if Op.Set.cardinal next = Op.Set.cardinal dirty then dirty else close next
    in
    close seed
  end

let cone ~spec d =
  if d.signature_changed then Spec.axioms spec
  else
    let dirty = dirty_ops ~spec d in
    List.filter
      (fun ax -> not (Op.Set.is_empty (Op.Set.inter (mentions ax) dirty)))
      (Spec.axioms spec)
