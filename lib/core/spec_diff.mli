(** Elaboration diff and invalidation cone between two specification
    versions.

    The document-session layer re-checks an edited specification in
    O(edit), not O(spec): it diffs the elaborated axiom lists by
    equation digest ({!Spec_digest.axiom}), seeds a {e dirty} set with
    the head operations of every added or removed axiom, closes it
    transitively through the defining-axiom dependency structure (an
    operation is dirty when any axiom defining it mentions a dirty
    operation — the same reachability {!Rewrite.of_spec} compiles and
    the linter's loci report), and declares an obligation invalid
    exactly when its axiom mentions a dirty operation. Everything
    outside that cone kept its reachable rule set byte-identical, so a
    cached verdict for it is still a theorem, not a heuristic.

    A signature change (sorts, operation declarations, constructor set)
    invalidates everything: sort and arity changes can re-type any
    term. *)

type t = {
  signature_changed : bool;
      (** Sorts, operation declarations, or constructors differ. *)
  added : Axiom.t list;  (** Equations in the new version only. *)
  removed : Axiom.t list;  (** Equations in the old version only. *)
}

val diff : old_spec:Spec.t -> spec:Spec.t -> t
(** Axioms are matched by equation digest — renaming an axiom or moving
    whitespace changes nothing; editing either side counts as one
    removal plus one addition. *)

val is_unchanged : t -> bool

val dirty_ops : spec:Spec.t -> t -> Op.Set.t
(** The transitive closure described above, computed against the {e
    new} specification's defining axioms (removed axioms seed their
    heads too — deleting the last rule of an operation changes its
    behavior). When [signature_changed] is set this is every operation
    of the specification. *)

val cone : spec:Spec.t -> t -> Axiom.t list
(** The invalidation cone: the new version's axioms whose equations
    mention a dirty operation (added axioms are always inside). In
    axiom order. *)
