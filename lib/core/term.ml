type t = {
  node : node;
  id : int;
  hash : int;
  size : int;
  ground : bool;
}

and node =
  | Var of string * Sort.t
  | App of Op.t * t list
  | Err of Sort.t
  | Ite of t * t * t

let view t = t.node
let id t = t.id
let hash t = t.hash

exception Ill_sorted of string

let ill_sorted fmt = Fmt.kstr (fun s -> raise (Ill_sorted s)) fmt

let rec sort_of t =
  match t.node with
  | Var (_, s) -> s
  | App (op, _) -> Op.result op
  | Err s -> s
  | Ite (_, t, _) -> sort_of t

(* {2 Interning}

   A weak table holds every live term, striped into independently locked
   shards selected by structural hash. Keys compare shallowly: two nodes
   are equal when their heads agree and their children are physically
   identical — children are already interned, so this is structural
   equality one level deep. The tables are weak so normal forms dropped by
   callers can be collected; [tt]/[ff] below pin the common constants.

   The engine serves a pool of domains, each running many connection
   threads, so interning synchronizes: equal nodes hash equally and
   therefore land in the same shard, whose mutex serializes the
   find-or-insert. Distinct terms usually land in distinct shards, so
   domains intern in parallel instead of convoying on one global lock.
   Ids stay dense and unique because they are drawn from one atomic
   counter, incremented only under a shard lock when a genuinely new node
   is inserted. Construction is the only synchronized operation; reads
   (equal, hash, view, ...) touch immutable fields only. *)

module Node_key = struct
  type nonrec t = t

  let equal a b =
    match (a.node, b.node) with
    | Var (x, s), Var (y, s') -> String.equal x y && Sort.equal s s'
    | Err s, Err s' -> Sort.equal s s'
    | App (f, xs), App (g, ys) ->
      Op.equal f g
      && List.length xs = List.length ys
      && List.for_all2 ( == ) xs ys
    | Ite (c, t, e), Ite (c', t', e') -> c == c' && t == t' && e == e'
    | (Var _ | App _ | Err _ | Ite _), _ -> false

  let hash t = t.hash
end

module H = Weak.Make (Node_key)

let shard_bits = 4
let shard_count = 1 lsl shard_bits

type shard = { lock : Mutex.t; table : H.t }

let shards =
  Array.init shard_count (fun _ ->
      { lock = Mutex.create (); table = H.create 512 })

let counter = Atomic.make 0

(* Test instrumentation: when set, invoked inside the shard critical
   section so exception safety of interning is observable from tests. *)
let intern_fault_hook : (unit -> unit) option ref = ref None

let intern node ~hash ~size ~ground =
  let hash = hash land max_int in
  let candidate = { node; id = 0; hash; size; ground } in
  let shard = shards.(hash land (shard_count - 1)) in
  (* Mutex.protect: an exception here (including an asynchronous one) must
     release the shard lock, or every later construction hashing into this
     shard deadlocks. *)
  Mutex.protect shard.lock (fun () ->
      (match !intern_fault_hook with None -> () | Some f -> f ());
      match H.find_opt shard.table candidate with
      | Some existing -> existing
      | None ->
        let fresh = { candidate with id = Atomic.fetch_and_add counter 1 + 1 } in
        H.add shard.table fresh;
        fresh)

let intern_stats () =
  let live =
    Array.fold_left
      (fun acc shard ->
        acc + Mutex.protect shard.lock (fun () -> H.count shard.table))
      0 shards
  in
  (live, Atomic.get counter)

let intern_shards = shard_count

(* FNV-style mixing of the head tag with child hashes; deterministic across
   runs (never derived from ids). *)
let mix h x = ((h * 0x01000193) lxor x) land max_int

let var name sort =
  let hash = mix (mix 17 (Hashtbl.hash name)) (Hashtbl.hash sort) in
  intern (Var (name, sort)) ~hash ~size:1 ~ground:false

let err s =
  let hash = mix 31 (Hashtbl.hash s) in
  intern (Err s) ~hash ~size:1 ~ground:true

let app_unchecked op args =
  let hash =
    List.fold_left (fun h a -> mix h a.hash) (mix 73 (Hashtbl.hash (Op.name op))) args
  in
  let size = List.fold_left (fun n a -> n + a.size) 1 args in
  let ground = List.for_all (fun a -> a.ground) args in
  intern (App (op, args)) ~hash ~size ~ground

let ite_unchecked c t e =
  let hash = mix (mix (mix 127 c.hash) t.hash) e.hash in
  intern (Ite (c, t, e))
    ~hash
    ~size:(1 + c.size + t.size + e.size)
    ~ground:(c.ground && t.ground && e.ground)

let app op args =
  let expected = Op.args op in
  let n_expected = List.length expected and n_given = List.length args in
  if n_expected <> n_given then
    ill_sorted "%a applied to %d arguments, expects %d" Op.pp op n_given
      n_expected;
  List.iteri
    (fun i (want, arg) ->
      let got = sort_of arg in
      if not (Sort.equal want got) then
        ill_sorted "argument %d of %a has sort %a, expected %a" (i + 1) Op.pp
          op Sort.pp got Sort.pp want)
    (List.combine expected args);
  app_unchecked op args

let const op = app op []

let ite c t e =
  if not (Sort.is_bool (sort_of c)) then
    ill_sorted "if-condition has sort %a, expected Bool" Sort.pp (sort_of c);
  if not (Sort.equal (sort_of t) (sort_of e)) then
    ill_sorted "if-branches have sorts %a and %a" Sort.pp (sort_of t) Sort.pp
      (sort_of e);
  ite_unchecked c t e

(* pinned: module-level references keep the shared constants out of the
   weak table's reach *)
let tt = app_unchecked Signature.true_op []
let ff = app_unchecked Signature.false_op []

let check sg term =
  let rec go t =
    match t.node with
    | Var (_, s) ->
      if Signature.mem_sort s sg then Ok ()
      else Error (Fmt.str "undeclared sort %a" Sort.pp s)
    | Err s ->
      if Signature.mem_sort s sg then Ok ()
      else Error (Fmt.str "undeclared sort %a" Sort.pp s)
    | App (op, args) -> (
      match Signature.find_op (Op.name op) sg with
      | None -> Error (Fmt.str "undeclared operation %a" Op.pp op)
      | Some declared when not (Op.equal declared op) ->
        Error
          (Fmt.str "operation %a used with rank %a but declared as %a" Op.pp
             op Op.pp_decl op Op.pp_decl declared)
      | Some _ -> (
        match app op args with
        | exception Ill_sorted msg -> Error msg
        | _ -> go_all args))
    | Ite (c, t, e) -> (
      match ite c t e with
      | exception Ill_sorted msg -> Error msg
      | _ -> go_all [ c; t; e ])
  and go_all = function
    | [] -> Ok ()
    | t :: ts -> ( match go t with Ok () -> go_all ts | Error _ as e -> e)
  in
  go term

let equal a b = a == b

let rec compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Var (x, s), Var (y, s') ->
      let c = String.compare x y in
      if c <> 0 then c else Sort.compare s s'
    | Var _, _ -> -1
    | _, Var _ -> 1
    | Err s, Err s' -> Sort.compare s s'
    | Err _, _ -> -1
    | _, Err _ -> 1
    | App (f, xs), App (g, ys) ->
      let c = Op.compare f g in
      if c <> 0 then c else List.compare compare xs ys
    | App _, _ -> -1
    | _, App _ -> 1
    | Ite (c1, t1, e1), Ite (c2, t2, e2) ->
      List.compare compare [ c1; t1; e1 ] [ c2; t2; e2 ]

(* deliberately deep — the differential oracle must not rely on the
   hash-consing invariant it is helping to validate *)
let rec structural_equal a b =
  match (a.node, b.node) with
  | Var (x, s), Var (y, s') -> String.equal x y && Sort.equal s s'
  | Err s, Err s' -> Sort.equal s s'
  | App (f, xs), App (g, ys) ->
    Op.equal f g
    && List.length xs = List.length ys
    && List.for_all2 structural_equal xs ys
  | Ite (c, t, e), Ite (c', t', e') ->
    structural_equal c c' && structural_equal t t' && structural_equal e e'
  | (Var _ | App _ | Err _ | Ite _), _ -> false

let size t = t.size

let rec depth t =
  match t.node with
  | Var _ | Err _ -> 1
  | App (_, []) -> 1
  | App (_, args) -> 1 + List.fold_left (fun d t -> max d (depth t)) 0 args
  | Ite (c, t, e) -> 1 + max (depth c) (max (depth t) (depth e))

let rec var_set t acc =
  if t.ground then acc
  else
    match t.node with
    | Var (x, s) -> if List.mem (x, s) acc then acc else (x, s) :: acc
    | Err _ -> acc
    | App (_, args) -> List.fold_left (fun acc t -> var_set t acc) acc args
    | Ite (c, t, e) -> var_set e (var_set t (var_set c acc))

(* first-occurrence order *)
let vars t =
  let rec go acc t =
    if t.ground then acc
    else
      match t.node with
      | Var (x, s) -> if List.mem (x, s) acc then acc else acc @ [ (x, s) ]
      | Err _ -> acc
      | App (_, args) -> List.fold_left go acc args
      | Ite (c, t, e) -> go (go (go acc c) t) e
  in
  go [] t

let is_ground t = t.ground
let is_error t = match t.node with Err _ -> true | _ -> false

let rec ops t =
  match t.node with
  | Var _ | Err _ -> Op.Set.empty
  | App (op, args) ->
    List.fold_left
      (fun acc t -> Op.Set.union acc (ops t))
      (Op.Set.singleton op) args
  | Ite (c, t, e) -> Op.Set.union (ops c) (Op.Set.union (ops t) (ops e))

let rec count_op name t =
  match t.node with
  | Var _ | Err _ -> 0
  | App (op, args) ->
    let here = if String.equal (Op.name op) name then 1 else 0 in
    List.fold_left (fun n t -> n + count_op name t) here args
  | Ite (c, t, e) -> count_op name c + count_op name t + count_op name e

type position = int list

let children t =
  match t.node with
  | Var _ | Err _ -> []
  | App (_, args) -> args
  | Ite (c, t, e) -> [ c; t; e ]

let positions t =
  let rec go t =
    []
    :: List.concat
         (List.mapi (fun i c -> List.map (fun p -> i :: p) (go c)) (children t))
  in
  go t

let rec subterm_at t = function
  | [] -> Some t
  | i :: p -> (
    match List.nth_opt (children t) i with
    | None -> None
    | Some c -> subterm_at c p)

let rec replace_at t pos repl =
  match pos with
  | [] -> Some repl
  | i :: p -> (
    let replace_child args =
      match List.nth_opt args i with
      | None -> None
      | Some c -> (
        match replace_at c p repl with
        | None -> None
        | Some c' -> Some (List.mapi (fun j a -> if j = i then c' else a) args))
    in
    match t.node with
    | Var _ | Err _ -> None
    | App (op, args) -> (
      match replace_child args with
      | None -> None
      | Some args' -> Some (app_unchecked op args'))
    | Ite (c, th, el) -> (
      match replace_child [ c; th; el ] with
      | Some [ c'; th'; el' ] -> Some (ite_unchecked c' th' el')
      | _ -> None))

let rec subterms t = t :: List.concat_map subterms (children t)

let rec fold f acc t =
  let acc = f acc t in
  List.fold_left (fold f) acc (children t)

(* shared children come back physically identical, so both traversals
   return [t] itself whenever nothing below actually changed — ids are
   stable under substitution *)
let rec map_vars f t =
  match t.node with
  | Var (x, s) -> f x s
  | Err _ -> t
  | App (op, args) ->
    let args' = List.map (map_vars f) args in
    if List.for_all2 ( == ) args args' then t else app_unchecked op args'
  | Ite (c, th, e) ->
    let c' = map_vars f c and th' = map_vars f th and e' = map_vars f e in
    if c == c' && th == th' && e == e' then t else ite_unchecked c' th' e'

let rename f t =
  map_vars
    (fun x s ->
      let x' = f x in
      var x' s)
    t

let fresh_wrt ~avoid base sort =
  let taken name = List.exists (fun (x, _) -> String.equal x name) avoid in
  ignore sort;
  if not (taken base) then base
  else
    let rec try_idx i =
      let candidate = Fmt.str "%s%d" base i in
      if taken candidate then try_idx (i + 1) else candidate
    in
    try_idx 1

let rec pp ppf t =
  match t.node with
  | Var (x, _) -> Fmt.string ppf x
  | Err _ -> Fmt.string ppf "error"
  | App (op, []) -> Op.pp ppf op
  | App (op, args) ->
    Fmt.pf ppf "@[<hov 1>%a(%a)@]" Op.pp op Fmt.(list ~sep:comma pp) args
  | Ite (c, t, e) ->
    Fmt.pf ppf "@[<hv>if %a@ then %a@ else %a@]" pp c pp t pp e

(* the canonical rendering is single-line whatever the term size: it keys
   the persist store and is embedded in diagnostic messages, where a
   margin-driven line break would corrupt the framing *)
let to_string t =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1_000_000;
  pp ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
