(** Knuth–Bendix completion.

    Turns a set of equations into a confluent, terminating rewrite system
    when it can: orient each equation under an LPO precedence, then add
    oriented critical-pair consequences until none diverge. Guttag's
    conclusion points at exactly this use ("given suitable restrictions on
    the form that axiomatizations may take, a system in which
    implementations and algebraic specifications of abstract types are
    interchangeable can be constructed") — a canonical system is what makes
    the symbolic interpreter deterministic.

    The implementation is the classic naive loop with bounds on the number
    of rules and on normalization fuel; it reports failure rather than
    diverging. *)

type failure =
  | Unorientable of Term.t * Term.t
      (** An equation (after normalization) that the precedence cannot
          orient; deriving [true = false] shows up here or as
          {!Inconsistent}. *)
  | Inconsistent of Term.t * Term.t
      (** Two distinct value normal forms (constructor terms or [error])
          were equated. *)
  | Bound_exceeded

type outcome = Completed of Rewrite.system | Failed of failure

type stats = {
  iterations : int;
  rules_added : int;
  pairs_considered : int;
}

val complete :
  ?max_rules:int ->
  ?fuel:int ->
  precedence:Ordering.precedence ->
  is_value:(Term.t -> bool) ->
  Axiom.t list ->
  outcome * stats
(** [is_value] classifies terms whose distinct equality is a contradiction
    (use [Spec.is_constructor_term spec] composed with [Term.is_error]);
    pass [fun _ -> false] to disable inconsistency detection. *)

val complete_spec :
  ?max_rules:int -> ?fuel:int -> Spec.t -> outcome * stats
(** Completion of a specification's axioms under its dependency
    precedence. *)

val pp_outcome : outcome Fmt.t
val pp_stats : stats Fmt.t
