(** An equational prover for representation-correctness proofs.

    Section 4 of the paper proves the stack-of-arrays implementation of
    [Symboltable] correct: each abstract axiom, with its operations replaced
    by their implementations, must follow from the axioms of the lower-level
    types. Musser's verifier did this "completely mechanically" in the
    original; this module is that verifier. Its three proof devices are the
    ones the paper names:

    - {b normalization}: rewrite both sides with the available rules (the
      lower-level axioms, the implementation's definitional equations, the
      abstraction function) and compare;
    - {b case analysis} on the Boolean conditions left irreducible by
      normalization (e.g. [SAME?(id, id1)]);
    - {b generator induction} (the paper cites Wegbreit's term): to prove a
      property of all reachable values, prove it for each generator with
      the property assumed for the generator's sub-values.

    Free variables of a generated sort are implicitly quantified over
    {e reachable} values only, so registered single-variable invariant
    lemmas (such as the non-emptiness invariant that embodies the paper's
    Assumption 1) are instantiated for them. Proving the same goal without
    the invariant fails — the prover makes the paper's notion of
    {e conditional correctness} precise and testable. *)

type config = {
  spec : Spec.t;
      (** Axioms become rules; constructors are the default generators. *)
  extra_rules : Rewrite.rule list;
      (** Definitional equations of the implementation, the abstraction
          function, etc. These take priority over the spec's rules. *)
  generators : (Sort.t * Op.t list) list;
      (** Per-sort override of the generator set used by induction (for a
          representation proof: the images [INIT', ENTERBLOCK', ADD'] of
          the abstract constructors, not the raw [NEWSTACK]/[PUSH]). *)
  invariants : Axiom.t list;
      (** Proven single-variable lemmas, instantiated for every free and
          induction variable of matching sort. *)
  fuel : int;
  max_case_depth : int;
  max_induction_depth : int;
  case_candidates : int;
      (** How many distinct conditions to try splitting on per level. *)
  max_goals : int;
      (** Total subgoals the search may visit before giving up with
          [Unknown] — the guarantee that the prover terminates even on
          unprovable goals whose case analysis would otherwise explode. *)
  poll : (unit -> unit) option;
      (** Cooperative deadline hook, threaded into every normalization the
          search performs ({!Rewrite}); whatever it raises aborts the whole
          proof attempt and propagates to the caller. *)
  on_rule : (string -> unit) option;
      (** Per-rule attribution hook ({!Rewrite}), threaded the same way;
          must not raise. *)
}

val default_fuel : int
(** Per-normalization step budget of {!config} when [fuel] is omitted. *)

val config :
  ?extra_rules:Rewrite.rule list ->
  ?generators:(Sort.t * Op.t list) list ->
  ?invariants:Axiom.t list ->
  ?fuel:int ->
  ?max_case_depth:int ->
  ?max_induction_depth:int ->
  ?case_candidates:int ->
  ?max_goals:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  Spec.t ->
  config

type proof =
  | By_normalization of { lhs_nf : Term.t; rhs_nf : Term.t }
      (** Both sides reached the same normal form ([lhs_nf = rhs_nf];
          both are recorded for the report). *)
  | By_cases of { condition : Term.t; if_true : proof; if_false : proof }
  | By_induction of {
      on : string * Sort.t;
      cases : (Op.t * proof) list;  (** One sub-proof per generator. *)
    }

type outcome =
  | Proved of proof
  | Unknown of { lhs_nf : Term.t; rhs_nf : Term.t }
      (** The normal forms of the most advanced stuck subgoal. *)

val prove : config -> Term.t * Term.t -> outcome

val prove_axiom : config -> Axiom.t -> outcome

val prove_lemma : config -> Axiom.t -> (config, outcome) result
(** On success returns the configuration extended with the lemma as an
    invariant (when it has exactly one variable) and as a rewrite rule. *)

val holds : config -> Term.t * Term.t -> bool

val disprove :
  config ->
  universe:Enum.universe ->
  size:int ->
  Term.t * Term.t ->
  (Subst.t * Term.t * Term.t) option
(** Searches bounded-exhaustively for a ground instantiation on which the
    two sides normalize to distinct values — a counterexample, used to tell
    "prover too weak" apart from "goal false". *)

val proof_size : proof -> int
(** Number of nodes in the proof tree. *)

val proof_depth : proof -> int

val pp_proof : proof Fmt.t
val pp_outcome : outcome Fmt.t
