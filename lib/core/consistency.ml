type cp = {
  rule1 : string;
  rule2 : string;
  position : Term.position;
  peak : Term.t;
  left : Term.t;
  right : Term.t;
}

type verdict = Joinable of Term.t | Diverges of Term.t * Term.t | Timeout

type report = {
  spec_name : string;
  pairs : (cp * verdict) list;
  orientable : bool;
}

let label i (r : Rewrite.rule) =
  if String.equal r.Rewrite.rule_name "" then Fmt.str "#%d" i
  else r.Rewrite.rule_name

(* Positions of proper (non-root when same rule) non-variable,
   application-headed subterms of a term. *)
let app_positions term =
  List.filter
    (fun p ->
      match Term.subterm_at term p with
      | Some sub -> (
        match Term.view sub with Term.App _ -> true | _ -> false)
      | None -> false)
    (Term.positions term)

let overlap ~(inner : Rewrite.rule) ~(outer : Rewrite.rule) ~pos =
  match Term.subterm_at outer.Rewrite.lhs pos with
  | Some sub when (match Term.view sub with Term.App _ -> true | _ -> false)
    -> (
    match Subst.unify sub inner.Rewrite.lhs with
    | None -> None
    | Some sigma ->
      let peak = Subst.apply sigma outer.Rewrite.lhs in
      let left = Subst.apply sigma outer.Rewrite.rhs in
      let right =
        match
          Term.replace_at outer.Rewrite.lhs pos inner.Rewrite.rhs
        with
        | Some patched -> Subst.apply sigma patched
        | None -> assert false
      in
      Some (peak, left, right))
  | _ -> None

let critical_pairs rules =
  let indexed = List.mapi (fun i r -> (i, r)) rules in
  List.concat_map
    (fun (i, outer) ->
      let outer_label = label i outer in
      List.concat_map
        (fun (j, inner0) ->
          (* rename the inner rule's variables apart; primes are legal in
             identifiers, so keep extending the suffix until it is fresh
             with respect to the outer rule *)
          let outer_names = List.map fst (Term.vars outer.Rewrite.lhs) in
          let clashes suffix =
            List.exists
              (fun (x, _) -> List.mem (x ^ suffix) outer_names)
              (Term.vars inner0.Rewrite.lhs)
          in
          let rec fresh_suffix suffix =
            if clashes suffix then fresh_suffix (suffix ^ "'") else suffix
          in
          let suffix = fresh_suffix "'" in
          let inner = Rewrite.rule ~name:inner0.Rewrite.rule_name
              ~lhs:(Term.rename (fun x -> x ^ suffix) inner0.Rewrite.lhs)
              ~rhs:(Term.rename (fun x -> x ^ suffix) inner0.Rewrite.rhs)
              ()
          in
          let positions =
            List.filter
              (fun p ->
                (* skip the root overlap of a rule with itself, and take
                   root overlaps of distinct rules once (i < j) *)
                match p with
                | [] -> i < j
                | _ -> true)
              (app_positions outer.Rewrite.lhs)
          in
          List.filter_map
            (fun pos ->
              match overlap ~inner ~outer ~pos with
              | None -> None
              | Some (peak, left, right) ->
                Some
                  {
                    rule1 = outer_label;
                    rule2 = label j inner0;
                    position = pos;
                    peak;
                    left;
                    right;
                  })
            positions)
        indexed)
    indexed

let decide ?fuel sys cp =
  match
    ( Rewrite.normalize_opt ?fuel sys cp.left,
      Rewrite.normalize_opt ?fuel sys cp.right )
  with
  | Some a, Some b -> if Term.equal a b then Joinable a else Diverges (a, b)
  | _ -> Timeout

let check ?fuel spec =
  let sys = Rewrite.of_spec spec in
  let pairs =
    List.map (fun cp -> (cp, decide ?fuel sys cp)) (critical_pairs (Rewrite.rules sys))
  in
  let orientable =
    match Ordering.orients_all (Ordering.dependency spec) (Spec.axioms spec) with
    | Ok () -> true
    | Error _ -> false
  in
  { spec_name = Spec.name spec; pairs; orientable }

let locally_confluent report =
  List.for_all (fun (_, v) -> match v with Joinable _ -> true | _ -> false)
    report.pairs

(* Distinct constructor normal forms denote distinct values in the initial
   algebra, so such a divergence is a genuine contradiction; [error] against
   a constructor term likewise (the error algebra keeps error distinct from
   every proper value). *)
let inconsistencies spec report =
  let value t = Spec.is_constructor_term spec t || Term.is_error t in
  List.filter_map
    (fun (cp, v) ->
      match v with
      | Diverges (a, b) when value a && value b -> Some (cp, a, b)
      | _ -> None)
    report.pairs

let is_consistent spec report = inconsistencies spec report = []

let pp_verdict ppf = function
  | Joinable t -> Fmt.pf ppf "joinable at %a" Term.pp t
  | Diverges (a, b) -> Fmt.pf ppf "DIVERGES: %a vs %a" Term.pp a Term.pp b
  | Timeout -> Fmt.string ppf "timeout"

let pp_pair ppf (cp, v) =
  Fmt.pf ppf "@[<v 2>overlap of %s into %s at %a:@,peak  %a@,left  %a@,right %a@,%a@]"
    cp.rule2 cp.rule1
    Fmt.(brackets (list ~sep:comma int))
    cp.position Term.pp cp.peak Term.pp cp.left Term.pp cp.right pp_verdict v

let ground_strategy_agreement ?fuel universe ~size =
  let spec = Enum.spec universe in
  let sys = Rewrite.of_spec spec in
  let exception Disagree of Term.t in
  let check_term t =
    match
      ( Rewrite.normalize_opt ?fuel ~strategy:Rewrite.Innermost sys t,
        Rewrite.normalize_opt ?fuel ~strategy:Rewrite.Outermost sys t )
    with
    | Some a, Some b when Term.equal a b -> ()
    | Some _, Some _ -> raise (Disagree t)
    | _ -> () (* fuel ran out on one side: no verdict *)
  in
  let checked = ref 0 in
  try
    List.iter
      (fun op ->
        let arg_choices =
          List.map (fun s -> Enum.terms_up_to universe s ~size) (Op.args op)
        in
        let rec product acc = function
          | [] ->
            incr checked;
            check_term (Term.app op (List.rev acc))
          | choices :: rest ->
            List.iter (fun c -> product (c :: acc) rest) choices
        in
        if List.for_all (fun c -> c <> []) arg_choices then
          product [] arg_choices)
      (Spec.observers spec);
    Ok !checked
  with Disagree t -> Error t

let pp_report ppf r =
  match r.pairs with
  | [] ->
    Fmt.pf ppf
      "@[<v>spec %s: no critical pairs (orthogonal system)%s@]" r.spec_name
      (if r.orientable then "; terminating under dependency LPO" else "")
  | pairs ->
    Fmt.pf ppf "@[<v>spec %s: %d critical pair(s)@,%a@]" r.spec_name
      (List.length pairs)
      Fmt.(list ~sep:cut pp_pair)
      pairs
