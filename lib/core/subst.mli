(** Substitutions, matching, and syntactic unification.

    A substitution maps variable names to terms. Sorts are respected: binding
    a variable to a term of a different sort is rejected, which keeps every
    derived term well sorted (the many-sorted discipline of the paper's
    heterogeneous algebras). *)

type t

val empty : t
val is_empty : t -> bool
val singleton : string -> Term.t -> t

val bind : string -> Term.t -> t -> t option
(** [bind x t s] extends [s] with [x -> t]. Returns [None] if [x] is already
    bound to a different term. *)

val find : string -> t -> Term.t option
val mem : string -> t -> bool
val bindings : t -> (string * Term.t) list
val of_bindings : (string * Term.t) list -> t option
(** [None] on duplicate bindings of the same name to different terms. *)

val cardinal : t -> int

val apply : t -> Term.t -> Term.t
(** Simultaneous substitution. Unbound variables are left in place. *)

val compose : t -> t -> t
(** [compose s1 s2] behaves as applying [s1] first, then [s2]:
    [apply (compose s1 s2) t = apply s2 (apply s1 t)]. *)

val restrict : (string * Sort.t) list -> t -> t
(** Keep only bindings of the listed variables. *)

val equal : t -> t -> bool
val pp : t Fmt.t

(** {1 Matching} *)

val match_term : pattern:Term.t -> Term.t -> t option
(** One-way matching: finds [s] with [apply s pattern = term], treating the
    pattern's variables as match variables and the subject as rigid.
    Non-linear patterns are supported (repeated variables must match equal
    subterms). Sort mismatches fail. *)

val matches : pattern:Term.t -> Term.t -> bool

(** {1 Unification} *)

val unify : Term.t -> Term.t -> t option
(** Most general unifier of two terms sharing one variable namespace, with
    occurs check. Returns an idempotent substitution. *)

val variant : Term.t -> Term.t -> bool
(** [variant a b] holds when the two terms are equal up to renaming of
    variables. *)
