(** Ground constructor-term enumeration and random generation.

    The values of an abstract type are the ground terms over its
    constructors (the "generators" of the algebra). Bounded-exhaustive
    enumeration of those terms powers the model checker (verifying that an
    implementation satisfies every axiom over all small values, the finite
    approximation of the paper's generator induction) and the property-based
    tests.

    Sorts with no constructors in the specification (parameter sorts such as
    [Item] or [Identifier]) draw their values from a caller-supplied [atoms]
    function. *)

type universe

val universe : ?atoms:(Sort.t -> Term.t list) -> Spec.t -> universe
(** [atoms] defaults to producing no terms. Atom terms must be ground and
    count as size 1 regardless of their real size. *)

val spec : universe -> Spec.t

val leaves : universe -> Sort.t -> Term.t list
(** Constant constructors of the sort followed by its atoms. *)

val terms_exactly : universe -> Sort.t -> size:int -> Term.t list
(** All ground constructor terms of exactly the given size (number of
    constructor nodes, atoms counting 1). Results are memoized in the
    universe. *)

val terms_up_to : universe -> Sort.t -> size:int -> Term.t list
(** All ground constructor terms of size 1..n, in increasing size order. *)

val count_up_to : universe -> Sort.t -> size:int -> int

val substitutions_up_to :
  universe -> (string * Sort.t) list -> size:int -> Subst.t list
(** Every substitution mapping each listed variable to a ground constructor
    term of size at most [size]. The list is the cartesian product; callers
    should keep variable counts and sizes small. *)

val random_term :
  universe -> Sort.t -> size:int -> Random.State.t -> Term.t option
(** A random ground constructor term of size roughly bounded by [size];
    [None] when the sort has no generators at all. *)

val random_substitution :
  universe ->
  (string * Sort.t) list ->
  size:int ->
  Random.State.t ->
  Subst.t option
