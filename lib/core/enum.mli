(** Ground constructor-term enumeration and random generation.

    The values of an abstract type are the ground terms over its
    constructors (the "generators" of the algebra). Bounded-exhaustive
    enumeration of those terms powers the model checker (verifying that an
    implementation satisfies every axiom over all small values, the finite
    approximation of the paper's generator induction) and the property-based
    tests; the random samplers power the differential rewrite harness
    ([test/test_diff.ml]) and the spec-derived conformance suites of
    [lib/testgen].

    Term {e size} is the number of constructor nodes, atoms counting 1; the
    size bound every entry point takes is the Gaudel/Le Gall {e regularity
    hypothesis} made executable — "correct on every term up to size [k]"
    stands in for "correct on every term".

    Sorts with no constructors in the specification (parameter sorts such as
    [Item] or [Identifier]) draw their values from a caller-supplied [atoms]
    function. *)

type universe
(** A specification together with its atom supply and the memo tables of
    the enumerators below. Enumeration results are cached per universe, so
    repeated queries (and the samplers, which are built on the counts of
    the exhaustive enumeration) cost amortized O(1) per term after the
    first call at a given sort and size. *)

val universe : ?atoms:(Sort.t -> Term.t list) -> Spec.t -> universe
(** [atoms] defaults to producing no terms. Atom terms must be ground and
    count as size 1 regardless of their real size. *)

val spec : universe -> Spec.t
(** The specification the universe enumerates. *)

val leaves : universe -> Sort.t -> Term.t list
(** Constant constructors of the sort followed by its atoms; exactly the
    terms of size 1. *)

val terms_exactly : universe -> Sort.t -> size:int -> Term.t list
(** All ground constructor terms of exactly the given size (number of
    constructor nodes, atoms counting 1). Results are memoized in the
    universe. The order is deterministic: constructors in declaration
    order, argument sizes in lexicographic split order. *)

val terms_up_to : universe -> Sort.t -> size:int -> Term.t list
(** All ground constructor terms of size 1..n, in increasing size order. *)

val count_exactly : universe -> Sort.t -> size:int -> int
(** [List.length (terms_exactly u s ~size)], sharing its memo table. *)

val count_up_to : universe -> Sort.t -> size:int -> int
(** [List.length (terms_up_to u s ~size)]. *)

val substitutions_up_to :
  universe -> (string * Sort.t) list -> size:int -> Subst.t list
(** Every substitution mapping each listed variable to a ground constructor
    term of size at most [size]. The list is the cartesian product; callers
    should keep variable counts and sizes small. *)

val random_term :
  universe -> Sort.t -> size:int -> Random.State.t -> Term.t option
(** A random ground constructor term of size roughly bounded by [size];
    [None] when the sort has no generators at all. The distribution is the
    natural branching process (uniform constructor choice, the budget split
    evenly across arguments), which is strongly biased towards small and
    left-leaning terms — good enough for smoke tests, not for coverage
    arguments. Prefer {!uniform_term} when the distribution matters. *)

val uniform_term :
  universe -> Sort.t -> size:int -> Random.State.t -> Term.t option
(** A ground constructor term drawn {e uniformly} among all terms of the
    sort of size at most [size] ([None] when there are none): every value
    of the bounded universe — the boundary constants as well as the
    maximal-size terms — has exactly probability [1/count_up_to]. This is
    the sampler the conformance harness ([lib/testgen]) rests on: a bug
    reachable at size ≤ [size] is reached with probability proportional to
    how many terms witness it, never hidden by generator bias. Built on
    the memoized exhaustive enumeration, so the first draw at a given size
    pays the enumeration cost and later draws are O(size). *)

val random_substitution :
  universe ->
  (string * Sort.t) list ->
  size:int ->
  Random.State.t ->
  Subst.t option
(** One {!random_term} per listed variable; [None] when any variable's
    sort has no generators. *)

val uniform_substitution :
  universe ->
  (string * Sort.t) list ->
  size:int ->
  Random.State.t ->
  Subst.t option
(** One {!uniform_term} per listed variable, drawn independently; [None]
    when any variable's sort has no generators. *)
