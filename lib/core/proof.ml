type config = {
  spec : Spec.t;
  extra_rules : Rewrite.rule list;
  generators : (Sort.t * Op.t list) list;
  invariants : Axiom.t list;
  fuel : int;
  max_case_depth : int;
  max_induction_depth : int;
  case_candidates : int;
  max_goals : int;
  poll : (unit -> unit) option;
  on_rule : (string -> unit) option;
}

let default_fuel = 50_000

let config ?(extra_rules = []) ?(generators = []) ?(invariants = [])
    ?(fuel = default_fuel) ?(max_case_depth = 8) ?(max_induction_depth = 1)
    ?(case_candidates = 4) ?(max_goals = 2_000) ?poll ?on_rule spec =
  {
    spec;
    extra_rules;
    generators;
    invariants;
    fuel;
    max_case_depth;
    max_induction_depth;
    case_candidates;
    max_goals;
    poll;
    on_rule;
  }

type proof =
  | By_normalization of { lhs_nf : Term.t; rhs_nf : Term.t }
  | By_cases of { condition : Term.t; if_true : proof; if_false : proof }
  | By_induction of { on : string * Sort.t; cases : (Op.t * proof) list }

type outcome =
  | Proved of proof
  | Unknown of { lhs_nf : Term.t; rhs_nf : Term.t }

(* {2 Skolemization}

   Free variables of a goal are universally quantified (over reachable
   values for generated sorts).  They are replaced by fresh constants — a
   rule such as an instantiated invariant [IS_NEWSTACK?($stk) -> false]
   must match exactly that unknown value, never an arbitrary subterm, so it
   cannot be a rule with a variable left-hand side.  The [$] prefix cannot
   be produced by the parser, so skolem constants never collide with
   specification operations. *)

let skolem_prefix = '$'

let is_skolem op =
  Op.is_constant op
  && String.length (Op.name op) > 0
  && (Op.name op).[0] = skolem_prefix

let skolem_name op = String.sub (Op.name op) 1 (String.length (Op.name op) - 1)
let skolem_const base sort = Term.const (Op.v (Fmt.str "%c%s" skolem_prefix base) ~args:[] ~result:sort)

let skolemize (lhs, rhs) =
  let vars = Term.var_set rhs (Term.var_set lhs []) in
  let image x s = skolem_const x s in
  let apply = Term.map_vars (fun x s -> if List.mem (x, s) vars then image x s else Term.var x s) in
  (apply lhs, apply rhs)

let skolem_consts terms =
  let collect acc t =
    Term.fold
      (fun acc sub ->
        match Term.view sub with
        | Term.App (op, []) when is_skolem op ->
          if List.exists (Op.equal op) acc then acc else acc @ [ op ]
        | _ -> acc)
      acc t
  in
  List.fold_left collect [] terms

let rec replace_const const repl t =
  match Term.view t with
  | Term.App (op, []) when Op.equal op const -> repl
  | Term.App (op, args) ->
    Term.app_unchecked op (List.map (replace_const const repl) args)
  | Term.Ite (c, a, b) ->
    Term.ite_unchecked
      (replace_const const repl c)
      (replace_const const repl a)
      (replace_const const repl b)
  | Term.Var _ | Term.Err _ -> t

let fresh_skolem ~taken base sort =
  let exists name =
    List.exists (fun op -> String.equal (Op.name op) name) taken
  in
  let candidate = Fmt.str "%c%s" skolem_prefix base in
  if not (exists candidate) then Op.v candidate ~args:[] ~result:sort
  else
    let rec go i =
      let c = Fmt.str "%c%s%d" skolem_prefix base i in
      if exists c then go (i + 1) else Op.v c ~args:[] ~result:sort
    in
    go 1

(* {2 Configuration helpers} *)

let generators_for cfg sort =
  match List.find_opt (fun (s, _) -> Sort.equal s sort) cfg.generators with
  | Some (_, ops) -> ops
  | None -> Spec.constructors_of_sort sort cfg.spec

let is_generated cfg sort =
  (not (Sort.is_bool sort)) && generators_for cfg sort <> []

(* Instantiate every single-variable invariant lemma at the given skolem
   constants (which stand for reachable values of their sort). *)
let invariant_rules cfg consts =
  List.concat_map
    (fun inv ->
      match Axiom.vars inv with
      | [ (v, sort) ] ->
        List.filter_map
          (fun op ->
            if not (Sort.equal (Op.result op) sort) then None
            else
              let sub = Subst.singleton v (Term.const op) in
              let lhs, rhs = Axiom.instantiate sub inv in
              match
                Rewrite.rule ~name:("inv:" ^ Axiom.name inv) ~lhs ~rhs ()
              with
              | r -> Some r
              | exception Invalid_argument _ -> None)
          consts
      | _ -> [])
    cfg.invariants

(* Boolean conditions worth a case split: irreducible, application-headed,
   Bool-sorted subterms; conditions of residual if-then-else forms first. *)
let case_candidates_of cfg terms =
  let conditions t =
    List.filter_map
      (fun sub ->
        match Term.view sub with
        | Term.Ite (c, _, _) -> (
          match Term.view c with Term.App _ -> Some c | _ -> None)
        | _ -> None)
      (Term.subterms t)
  in
  let bool_apps t =
    List.filter_map
      (fun sub ->
        match Term.view sub with
        | Term.App (op, _)
          when Sort.is_bool (Op.result op)
               && (not (Term.equal sub Term.tt))
               && (not (Term.equal sub Term.ff))
               && not (is_skolem op) ->
          Some sub
        | _ -> None)
      (Term.subterms t)
  in
  let all =
    List.concat_map conditions terms @ List.concat_map bool_apps terms
  in
  let dedup =
    List.fold_left
      (fun acc c -> if List.exists (Term.equal c) acc then acc else acc @ [ c ])
      [] all
  in
  List.filteri (fun i _ -> i < cfg.case_candidates) dedup

(* [minted] accumulates every skolem constant created during this proof
   attempt, goal-wide: assumption rules added to [sys] (case splits,
   induction hypotheses, invariant instances) may mention constants that a
   later normalization step erases from the goal terms, and minting the
   same name again would let a stale per-value assumption fire on a fresh
   "arbitrary" constant — an unsound proof. *)
exception Search_exhausted

let rec prove_goal cfg sys ~minted ~budget ~case_depth ~ind_depth (lhs, rhs) =
  (* unprovable goals can drive the case-split search into exponential
     territory; the budget turns that into a prompt Unknown *)
  if !budget <= 0 then raise Search_exhausted;
  decr budget;
  let normalize t =
    match Rewrite.normalize_opt ~fuel:cfg.fuel ?poll:cfg.poll ?on_rule:cfg.on_rule sys t with
    | Some nf -> nf
    | None -> t
  in
  let lhs_nf = normalize lhs and rhs_nf = normalize rhs in
  if Term.equal lhs_nf rhs_nf then Proved (By_normalization { lhs_nf; rhs_nf })
  else
    let by_cases () =
      if case_depth <= 0 then None
      else
        List.find_map
          (fun condition ->
            let attempt value k =
              let assumption =
                Rewrite.rule ~name:"<case>" ~lhs:condition ~rhs:value ()
              in
              let sys' = Rewrite.add_rules [ assumption ] sys in
              match
                prove_goal cfg sys' ~minted ~budget
                  ~case_depth:(case_depth - 1) ~ind_depth (lhs_nf, rhs_nf)
              with
              | Proved p -> k p
              | Unknown _ -> None
            in
            attempt Term.tt (fun if_true ->
                attempt Term.ff (fun if_false ->
                    Some (Proved (By_cases { condition; if_true; if_false })))))
          (case_candidates_of cfg [ lhs_nf; rhs_nf ])
    in
    let by_induction () =
      if ind_depth <= 0 then None
      else
        let candidates =
          List.filter
            (fun op -> is_generated cfg (Op.result op))
            (skolem_consts [ lhs_nf; rhs_nf ])
        in
        List.find_map
          (fun const ->
            induction_on cfg sys ~minted ~budget ~case_depth ~ind_depth
              (lhs_nf, rhs_nf) const)
          candidates
    in
    match by_cases () with
    | Some proved -> proved
    | None -> (
      match by_induction () with
      | Some proved -> proved
      | None -> Unknown { lhs_nf; rhs_nf })

and induction_on cfg sys ~minted ~budget ~case_depth ~ind_depth (lhs, rhs)
    const =
  let sort = Op.result const in
  let prove_case gen =
    let fresh =
      List.map
        (fun arg_sort ->
          let base = String.lowercase_ascii (Sort.name arg_sort) in
          let op = fresh_skolem ~taken:!minted base arg_sort in
          minted := op :: !minted;
          op)
        (Op.args gen)
    in
    let gen_term = Term.app gen (List.map Term.const fresh) in
    let lhs' = replace_const const gen_term lhs
    and rhs' = replace_const const gen_term rhs in
    (* induction hypotheses: the goal at each sub-value of the induction
       sort, used as a rewrite rule in whichever direction is legal *)
    let hypotheses =
      List.filter_map
        (fun sub_const ->
          if not (Sort.equal (Op.result sub_const) sort) then None
          else
            let hl = replace_const const (Term.const sub_const) lhs
            and hr = replace_const const (Term.const sub_const) rhs in
            match Rewrite.rule ~name:"<ih>" ~lhs:hl ~rhs:hr () with
            | r -> Some r
            | exception Invalid_argument _ -> (
              match Rewrite.rule ~name:"<ih>" ~lhs:hr ~rhs:hl () with
              | r -> Some r
              | exception Invalid_argument _ -> None))
        fresh
    in
    let invariants =
      invariant_rules cfg
        (List.filter (fun op -> is_generated cfg (Op.result op)) fresh)
    in
    let sys' = Rewrite.add_rules (hypotheses @ invariants) sys in
    match
      prove_goal cfg sys' ~minted ~budget ~case_depth
        ~ind_depth:(ind_depth - 1) (lhs', rhs')
    with
    | Proved p -> Some (gen, p)
    | Unknown _ -> None
  in
  let rec all_cases acc = function
    | [] -> Some (List.rev acc)
    | gen :: rest -> (
      match prove_case gen with
      | Some case -> all_cases (case :: acc) rest
      | None -> None)
  in
  match generators_for cfg sort with
  | [] -> None
  | generators -> (
    match all_cases [] generators with
    | Some cases ->
      Some
        (Proved
           (By_induction { on = (skolem_name const, sort); cases }))
    | None -> None)

let base_system cfg =
  Rewrite.add_rules cfg.extra_rules (Rewrite.of_spec cfg.spec)

let prove cfg goal =
  let lhs, rhs = skolemize goal in
  let sys = base_system cfg in
  let consts =
    List.filter
      (fun op -> is_generated cfg (Op.result op))
      (skolem_consts [ lhs; rhs ])
  in
  let sys = Rewrite.add_rules (invariant_rules cfg consts) sys in
  let minted = ref (skolem_consts [ lhs; rhs ]) in
  let budget = ref cfg.max_goals in
  match
    prove_goal cfg sys ~minted ~budget ~case_depth:cfg.max_case_depth
      ~ind_depth:cfg.max_induction_depth (lhs, rhs)
  with
  | outcome -> outcome
  | exception Search_exhausted -> Unknown { lhs_nf = lhs; rhs_nf = rhs }

let prove_axiom cfg ax = prove cfg (Axiom.lhs ax, Axiom.rhs ax)

let prove_lemma cfg ax =
  match prove_axiom cfg ax with
  | Proved _ -> (
    (* A lemma over a generated sort holds for REACHABLE values only, so it
       must never become a universal rewrite rule (it would apply to
       arbitrary subterms such as [POP(s)] or even [NEWSTACK] and shadow
       the specification's own axioms).  Ground lemmas are safe as rules;
       single-variable lemmas become invariants, instantiated only at the
       skolem constants that stand for reachable values. *)
    match Axiom.vars ax with
    | [] ->
      Ok { cfg with extra_rules = cfg.extra_rules @ [ Rewrite.rule_of_axiom ax ] }
    | [ _ ] -> Ok { cfg with invariants = cfg.invariants @ [ ax ] }
    | _ -> Ok cfg)
  | Unknown _ as u -> Error u

let holds cfg goal =
  match prove cfg goal with Proved _ -> true | Unknown _ -> false

let disprove cfg ~universe ~size (lhs, rhs) =
  let sys = base_system cfg in
  let vars = Term.var_set rhs (Term.var_set lhs []) in
  let substs = Enum.substitutions_up_to universe vars ~size in
  List.find_map
    (fun sub ->
      let l = Subst.apply sub lhs and r = Subst.apply sub rhs in
      match
        ( Rewrite.normalize_opt ~fuel:cfg.fuel ?poll:cfg.poll ?on_rule:cfg.on_rule sys l,
          Rewrite.normalize_opt ~fuel:cfg.fuel ?poll:cfg.poll ?on_rule:cfg.on_rule sys r )
      with
      | Some ln, Some rn
        when (not (Term.equal ln rn))
             && (Spec.is_constructor_term cfg.spec ln || Term.is_error ln)
             && (Spec.is_constructor_term cfg.spec rn || Term.is_error rn) ->
        Some (sub, ln, rn)
      | _ -> None)
    substs

let rec proof_size = function
  | By_normalization _ -> 1
  | By_cases { if_true; if_false; _ } ->
    1 + proof_size if_true + proof_size if_false
  | By_induction { cases; _ } ->
    List.fold_left (fun n (_, p) -> n + proof_size p) 1 cases

let rec proof_depth = function
  | By_normalization _ -> 1
  | By_cases { if_true; if_false; _ } ->
    1 + max (proof_depth if_true) (proof_depth if_false)
  | By_induction { cases; _ } ->
    1 + List.fold_left (fun d (_, p) -> max d (proof_depth p)) 0 cases

let rec pp_proof ppf = function
  | By_normalization { lhs_nf; rhs_nf = _ } ->
    Fmt.pf ppf "both sides normalize to %a" Term.pp lhs_nf
  | By_cases { condition; if_true; if_false } ->
    Fmt.pf ppf
      "@[<v 2>case split on %a:@,@[<v 2>true:@,%a@]@,@[<v 2>false:@,%a@]@]"
      Term.pp condition pp_proof if_true pp_proof if_false
  | By_induction { on = x, sort; cases } ->
    let pp_case ppf (gen, p) =
      Fmt.pf ppf "@[<v 2>%s := %a(...):@,%a@]" x Op.pp gen pp_proof p
    in
    Fmt.pf ppf "@[<v 2>generator induction on %s : %a:@,%a@]" x Sort.pp sort
      Fmt.(list ~sep:cut pp_case)
      cases

let pp_outcome ppf = function
  | Proved p -> Fmt.pf ppf "@[<v 2>PROVED:@,%a@]" pp_proof p
  | Unknown { lhs_nf; rhs_nf } ->
    Fmt.pf ppf "@[<v 2>UNKNOWN: stuck at@,left  %a@,right %a@]" Term.pp lhs_nf
      Term.pp rhs_nf
