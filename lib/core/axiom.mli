(** Equational axioms.

    An axiom is one of the paper's "relations": a left-hand side, a
    right-hand side, and an optional name for reporting (the paper numbers
    its axioms 1-20). Both sides must have the same sort and the right-hand
    side may only use variables that appear on the left (so the axiom reads
    as a rewrite rule; this is the restriction that makes Guttag's
    specifications executable by symbolic interpretation, section 5). *)

type t = private { name : string; lhs : Term.t; rhs : Term.t }

val v :
  ?name:string -> ?allow_free_rhs:bool -> lhs:Term.t -> rhs:Term.t -> unit -> t
(** Raises [Invalid_argument] when the two sides have different sorts, when
    the left-hand side is a bare variable or an [error]/[if] form, or when
    the right-hand side mentions a variable absent from the left.

    [allow_free_rhs] (default [false]) suppresses the last check: the axiom
    is then a legal {e equation} but not an executable rewrite rule — the
    parser builds axioms this way so that the static analyzer
    ([lib/analysis], rule ADT011) can diagnose the fault instead of the
    loader rejecting the whole file. {!Rewrite.of_spec} skips such axioms. *)

val name : t -> string
val lhs : t -> Term.t
val rhs : t -> Term.t

val head : t -> Op.t
(** The outermost operation of the left-hand side (the operation the axiom
    defines). *)

val vars : t -> (string * Sort.t) list
(** Variables of the axiom, in first-occurrence order on the left side. *)

val is_left_linear : t -> bool
(** No variable occurs twice in the left-hand side. *)

val free_rhs_vars : t -> (string * Sort.t) list
(** Right-hand-side variables absent from the left-hand side, in
    first-occurrence order; non-empty only for axioms built with
    [allow_free_rhs]. *)

val is_executable : t -> bool
(** The axiom reads as a rewrite rule: {!free_rhs_vars} is empty. *)

val rename : (string -> string) -> t -> t

val freshen : suffix:string -> t -> t
(** Appends [suffix] to every variable name; used to separate variable
    namespaces when overlapping two axioms. *)

val check : Signature.t -> t -> (unit, string) result
(** Both sides well formed in the signature. *)

val instantiate : Subst.t -> t -> Term.t * Term.t

val equal : t -> t -> bool
(** Structural equality up to names being equal too. *)

val same_equation : t -> t -> bool
(** Equality of the equations up to variable renaming, ignoring names. *)

val pp : t Fmt.t
