(** The symbolic interpreter.

    Section 5 of the paper: "In the absence of an implementation, the
    operations of the algebra may be interpreted symbolically. Thus, except
    for a significant loss in efficiency, the lack of an implementation can
    be made completely transparent to the user."

    An interpreter session wraps a specification's rewrite system and
    evaluates ground terms to values: constructor normal forms, [error], or
    — when the axioms are not sufficiently complete — a stuck term, which
    the interpreter reports rather than mis-evaluating. Benchmark E1
    measures this module against the direct implementations to quantify the
    "significant loss". *)

type t

val create : ?fuel:int -> ?memo:bool -> ?memo_capacity:int -> Spec.t -> t
(** [memo] (default false) caches the normal form of every application
    node the session ever normalizes — profitable when a workload
    revisits the same values (see the E1 ablation in the benchmarks).
    [memo_capacity] bounds the cache ({!Rewrite.Memo.default_capacity}
    entries by default); least recently used normal forms are evicted. *)

val fork : t -> t
(** A sibling interpreter sharing the compiled rewrite system and spec but
    owning a fresh, empty memo cache of the same capacity (no memo if the
    original had none). Forking is how the engine gives each domain its own
    interpreter: the compiled system is immutable and safely shared, while
    memo state — the only mutable part — stays domain-local. *)

val spec : t -> Spec.t
val system : t -> Rewrite.system

val fuel : t -> int
(** The session's default step budget. *)

type memo_stats = {
  hits : int;
  misses : int;
  entries : int;  (** Live cache entries; never exceeds [capacity]. *)
  evictions : int;
  capacity : int;
}

val memo_stats : t -> memo_stats option
(** Cache counters when created with [~memo:true], [None] otherwise. *)

type value =
  | Value of Term.t  (** A constructor normal form. *)
  | Error_value of Sort.t
  | Stuck of Term.t  (** Normal form containing non-constructor operations:
                         evidence of insufficient completeness. *)
  | Diverged  (** Fuel exhausted. *)

val classify : Spec.t -> Term.t -> value
(** How {!eval} reads a normal form: [error] terms are {!Error_value},
    constructor-ground terms are {!Value}, anything else is {!Stuck}.
    Exposed so callers holding an already-known normal form (the persist
    cache) classify it exactly as a fresh evaluation would. *)

val eval : ?fuel:int -> t -> Term.t -> value
(** Evaluates a ground term (leftmost-innermost). Raises
    [Invalid_argument] on terms with free variables. [fuel] overrides the
    session's step budget for this call only (per-request limits in the
    evaluation engine). *)

val eval_count :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  t ->
  Term.t ->
  value * int
(** {!eval}, also returning the number of rule applications performed; a
    [Diverged] result reports the whole budget as spent. Cache hits in a
    memoized session cost no steps — a fully cached term reports 0.
    [poll] is the cooperative deadline hook of {!Rewrite}: called once
    per rule application, and whatever it raises propagates out.
    [on_rule] is the per-rule attribution hook ({!Rewrite}), fired at
    the same site with the applied rule's name. *)

val eval_bool : t -> Term.t -> bool option
(** [Some b] when evaluation yields the Boolean constant [b]. *)

val apply : t -> string -> Term.t list -> Term.t
(** [apply t name args] builds the checked application of the named
    operation — the interpreter's "call" syntax. Raises [Not_found] for
    unknown operations and [Term.Ill_sorted] on argument mismatch. *)

val call : t -> string -> Term.t list -> value
(** [apply] then [eval]. *)

val reduce :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  t ->
  Term.t ->
  Term.t
(** Normalization without classification (also accepts open terms). *)

val steps : t -> Term.t -> int
(** Number of rule applications needed to normalize the term. *)

val trace : ?max_events:int -> t -> Term.t -> Term.t * Rewrite.event list

val pp_value : value Fmt.t
