(** Many-sorted terms.

    Terms are the common currency of the whole library: axioms relate terms,
    the rewriting engine normalizes terms, implementations are checked by
    mapping their concrete values to terms through the abstraction function.

    Beyond plain variables and applications, two builtin forms mirror the
    paper's notation:

    - [Err s] is the distinguished [error] value of sort [s]. The paper
      stipulates that "the value of any operation applied to an argument
      list containing error is error"; that strictness rule lives in
      {!Rewrite}, not here.
    - [Ite (c, t, e)] is the [if c then t else e] construct that appears on
      the right-hand sides of axioms. It is lazy in its branches (otherwise
      the strict error rule would poison, e.g., the [else] branch of
      [FRONT (ADD (q, i))] when [q = NEW]). *)

type t =
  | Var of string * Sort.t
  | App of Op.t * t list
  | Err of Sort.t
  | Ite of t * t * t

exception Ill_sorted of string
(** Raised by the smart constructors and {!check} when an application's
    arguments do not match the operation's declared domain. *)

val var : string -> Sort.t -> t

val app : Op.t -> t list -> t
(** Checked application: raises {!Ill_sorted} on arity or sort mismatch. *)

val const : Op.t -> t
(** [const op] is [app op []]. *)

val err : Sort.t -> t
val ite : t -> t -> t -> t
(** Checked: the condition must have sort [Bool] and the branches must have
    equal sorts. Raises {!Ill_sorted} otherwise. *)

val tt : t
(** The Boolean constant [true]. *)

val ff : t
(** The Boolean constant [false]. *)

val sort_of : t -> Sort.t

val check : Signature.t -> t -> (unit, string) result
(** Deep well-formedness check against a signature: every operation used is
    declared (with the same rank) and every application is well sorted. *)

(** {1 Structure} *)

val equal : t -> t -> bool
val compare : t -> t -> int

val size : t -> int
(** Number of nodes (variables, applications, errors, ites). *)

val depth : t -> int

val vars : t -> (string * Sort.t) list
(** Free variables in first-occurrence order, without duplicates. *)

val var_set : t -> (string * Sort.t) list -> (string * Sort.t) list
(** [var_set t acc] accumulates variables of [t] onto [acc] (no duplicates,
    order unspecified); building block for {!vars} over several terms. *)

val is_ground : t -> bool
val is_error : t -> bool

val ops : t -> Op.Set.t
(** All operation symbols occurring in the term. *)

val count_op : string -> t -> int
(** Occurrences of the named operation. *)

(** {1 Positions}

    A position is a path from the root: [[]] is the root, [i :: p] descends
    into child [i] (0-based; for [Ite] child 0 is the condition, 1 the then
    branch, 2 the else branch). *)

type position = int list

val positions : t -> position list
(** All positions, in pre-order. *)

val subterm_at : t -> position -> t option
val replace_at : t -> position -> t -> t option
val subterms : t -> t list
(** All subterms including the term itself, in pre-order. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all subterms. *)

val rename : (string -> string) -> t -> t
(** Renames every variable. *)

val map_vars : (string -> Sort.t -> t) -> t -> t
(** Simultaneous substitution primitive: replaces each variable by the image
    term. The caller is responsible for sort preservation. *)

val fresh_wrt : avoid:(string * Sort.t) list -> string -> Sort.t -> string
(** [fresh_wrt ~avoid base s] is a variable name based on [base] that does
    not occur in [avoid]. *)

val pp : t Fmt.t
(** Paper-style concrete syntax:
    [FRONT(ADD(q, i))], [if IS_EMPTY(q) then i else FRONT(q)], [error]. *)

val to_string : t -> string
