(** Many-sorted terms, hash-consed.

    Terms are the common currency of the whole library: axioms relate terms,
    the rewriting engine normalizes terms, implementations are checked by
    mapping their concrete values to terms through the abstraction function.

    Every term is interned in a global (weak) table, striped into
    independently locked shards selected by structural hash, so two
    structurally equal terms are always the same heap value — even when
    constructed from different domains: {!equal} is physical equality, and
    each term carries a unique {!id} (dense, drawn from one atomic
    counter), a precomputed {!hash} and {!size}, and a ground flag — all
    O(1). Pattern match through {!view}; construct through the smart
    constructors.

    Beyond plain variables and applications, two builtin forms mirror the
    paper's notation:

    - [Err s] is the distinguished [error] value of sort [s]. The paper
      stipulates that "the value of any operation applied to an argument
      list containing error is error"; that strictness rule lives in
      {!Rewrite}, not here.
    - [Ite (c, t, e)] is the [if c then t else e] construct that appears on
      the right-hand sides of axioms. It is lazy in its branches (otherwise
      the strict error rule would poison, e.g., the [else] branch of
      [FRONT (ADD (q, i))] when [q = NEW]). *)

type t = private {
  node : node;  (** the head constructor; prefer {!view} *)
  id : int;  (** unique per distinct term, dense from 1 *)
  hash : int;  (** structural hash, precomputed at construction *)
  size : int;  (** number of nodes, precomputed at construction *)
  ground : bool;  (** [true] iff the term contains no variables *)
}

and node =
  | Var of string * Sort.t
  | App of Op.t * t list
  | Err of Sort.t
  | Ite of t * t * t

val view : t -> node
(** [view t] is [t.node]; the standard way to pattern match a term:
    [match Term.view t with Term.App (op, args) -> ...]. *)

val id : t -> int
(** Unique identifier of the interned term (positive, dense). *)

val hash : t -> int
(** Precomputed structural hash; deterministic across runs. *)

exception Ill_sorted of string
(** Raised by the smart constructors and {!check} when an application's
    arguments do not match the operation's declared domain. *)

val var : string -> Sort.t -> t

val app : Op.t -> t list -> t
(** Checked application: raises {!Ill_sorted} on arity or sort mismatch. *)

val const : Op.t -> t
(** [const op] is [app op []]. *)

val err : Sort.t -> t
val ite : t -> t -> t -> t
(** Checked: the condition must have sort [Bool] and the branches must have
    equal sorts. Raises {!Ill_sorted} otherwise. *)

val app_unchecked : Op.t -> t list -> t
(** Interns [App (op, args)] without the arity/sort checks of {!app}. Only
    for hot paths that preserve well-sortedness by construction (applying a
    well-sorted substitution, replacing a subterm by one of equal sort). *)

val ite_unchecked : t -> t -> t -> t
(** Interns [Ite (c, t, e)] without the checks of {!ite}; same caveat as
    {!app_unchecked}. *)

val tt : t
(** The Boolean constant [true]. *)

val ff : t
(** The Boolean constant [false]. *)

val sort_of : t -> Sort.t

val check : Signature.t -> t -> (unit, string) result
(** Deep well-formedness check against a signature: every operation used is
    declared (with the same rank) and every application is well sorted. *)

(** {1 Structure} *)

val equal : t -> t -> bool
(** Physical equality — constant time. Hash-consing guarantees this
    coincides with structural equality. *)

val structural_equal : t -> t -> bool
(** Deep structural comparison that never consults ids or the intern table.
    Agrees with {!equal} by the hash-consing invariant; kept as an
    independent oracle for the differential test harness. *)

val compare : t -> t -> int
(** Total structural order (shortcuts on physical equality). *)

val size : t -> int
(** Number of nodes (variables, applications, errors, ites) — O(1). *)

val depth : t -> int

val vars : t -> (string * Sort.t) list
(** Free variables in first-occurrence order, without duplicates. *)

val var_set : t -> (string * Sort.t) list -> (string * Sort.t) list
(** [var_set t acc] accumulates variables of [t] onto [acc] (no duplicates,
    order unspecified); building block for {!vars} over several terms. *)

val is_ground : t -> bool
(** O(1): the precomputed ground flag. *)

val is_error : t -> bool

val ops : t -> Op.Set.t
(** All operation symbols occurring in the term. *)

val count_op : string -> t -> int
(** Occurrences of the named operation. *)

(** {1 Positions}

    A position is a path from the root: [[]] is the root, [i :: p] descends
    into child [i] (0-based; for [Ite] child 0 is the condition, 1 the then
    branch, 2 the else branch). *)

type position = int list

val positions : t -> position list
(** All positions, in pre-order. *)

val subterm_at : t -> position -> t option
val replace_at : t -> position -> t -> t option
val subterms : t -> t list
(** All subterms including the term itself, in pre-order. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all subterms. *)

val rename : (string -> string) -> t -> t
(** Renames every variable. *)

val map_vars : (string -> Sort.t -> t) -> t -> t
(** Simultaneous substitution primitive: replaces each variable by the image
    term. The caller is responsible for sort preservation. Subterms whose
    variables are all mapped to themselves are returned physically
    unchanged, so substitution preserves sharing (and ids). *)

val fresh_wrt : avoid:(string * Sort.t) list -> string -> Sort.t -> string
(** [fresh_wrt ~avoid base s] is a variable name based on [base] that does
    not occur in [avoid]. *)

val intern_stats : unit -> int * int
(** [(live, total)]: live entries across all intern-table shards and the
    total number of distinct terms ever created (the current id counter). *)

val intern_shards : int
(** Number of independently locked stripes of the intern table. *)

val intern_fault_hook : (unit -> unit) option ref
(** Test instrumentation only: when set, the hook runs inside the intern
    critical section, so tests can inject a failure there and assert that
    the shard lock is released (exception safety of {!var}/{!app}/...).
    Must be [None] in production use. *)

val pp : t Fmt.t
(** Paper-style concrete syntax:
    [FRONT(ADD(q, i))], [if IS_EMPTY(q) then i else FRONT(q)], [error]. *)

val to_string : t -> string
