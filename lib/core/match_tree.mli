(** Rule sets compiled to matching automata.

    A priority-ordered list of rewrite rules — each a left-hand-side
    pattern with a right-hand-side template — is compiled once into a
    Maranget-style decision tree over {!Term.view}. Matching a subject
    term then walks the tree: every interior node inspects one subterm
    (held in a register) exactly once and switches on its head
    constructor, so common pattern prefixes across rules are tested a
    single time, instead of once per candidate rule as the linear scan
    and the two-level index both do.

    {b Priority.} First-match-wins order is preserved exactly. A rule
    whose pattern has a variable at the inspected position constrains
    nothing there, so its row is carried into {e every} branch of the
    switch in its original position relative to the specialized rows;
    the default branch (taken when the subject's head matches no case)
    keeps only those generic rows. A branch therefore always contains
    every rule that could still match, in declaration order, and failure
    inside a branch never needs to backtrack into the default.

    {b Non-left-linear patterns.} A repeated pattern variable cannot be
    decided by head switching. The first occurrence binds the variable
    to a register; later occurrences compile to deferred equality checks
    attached to the rule's leaf, verified (by {!Term.equal} — pointer
    equality, thanks to hash-consing) only when every structural test
    has already passed. A leaf whose checks fail falls through to the
    compilation of the remaining lower-priority rows.

    {b Right-hand sides.} Each leaf carries a precomputed instantiation
    template: ground subterms of the right-hand side are interned once
    at compile time and returned as-is, variables compile to a register
    fetch, and everything else to a direct construction — firing a rule
    never re-traverses the pattern and never builds a substitution map.

    {b Sorts.} The automaton performs no sort checks at run time. For
    well-sorted patterns and subjects they are redundant: once the head
    operations along a path agree, the sorts at every position below are
    forced equal by the operations' declared ranks. The differential
    harness ([test/test_diff.ml]) validates this against the
    sort-checking engines on every corpus specification. *)

type 'a t
(** A compiled automaton; ['a] is the per-rule payload returned on a
    match. Immutable after construction and safe to share across
    domains. *)

type builder =
  | Ready of Term.t
      (** A ground right-hand-side subterm, interned once at compile
          time. It may still contain redexes — a constant axiom like
          [FRONT(NEW) = error] with a reducible right-hand side stays
          reducible. *)
  | Fetch of int
      (** A right-hand-side variable: fetch the register bound to it.
          Under innermost rewriting the fetched subterm is already in
          normal form. *)
  | Fetch_frozen of int
      (** Like {!Fetch}, but the variable was bound through the
          {e branch} of an if-then-else pattern. Innermost normalization
          freezes the branches of stuck conditionals, so the fetched
          subterm may contain redexes and a fused engine must
          renormalize it. *)
  | Build_app of Op.t * builder list
  | Build_ite of builder * builder * builder
      (** Construct a fresh application / conditional node from
          instantiated children. *)

(** The right-hand-side instantiation template attached to each rule
    leaf. Exposed so the rewriting engine can fuse normalization with
    instantiation: the [Fetch]/[Fetch_frozen] split tells it which
    fetched subterms are guaranteed normal. *)

val compile : ('a * Term.t * Term.t) list -> 'a t
(** [compile rows] compiles [(payload, lhs, rhs)] rows, earlier rows
    taking priority. Left-hand sides must not be bare variables (the
    rewriter dispatches on application heads); rules for {e different}
    head operations may share one automaton — the root switch
    discriminates them, comparing operations with {!Op.equal}, so two
    operations that share a name but not a rank never cross-match. *)

val run : 'a t -> Term.t -> ('a * Term.t) option
(** [run t subject] is [Some (payload, reduct)] for the first row (in
    priority order) whose left-hand side matches [subject], where
    [reduct] is the row's right-hand side instantiated under the
    matching substitution — physically the same term
    [Subst.apply s rhs] would intern. [None] when no row matches. *)

val run_with :
  'a t -> Term.t -> ('a * (string * Term.t) list * Term.t) option
(** {!run}, also returning the matching substitution as an association
    list over the pattern's variables (one entry per variable, in the
    order the automaton resolves them). For the differential tests; the
    rewriting hot path uses {!run}, which never materializes bindings. *)

val run_template : 'a t -> Term.t -> ('a * Term.t array * builder) option
(** Like {!run}, but instead of instantiating the reduct it returns the
    filled register file and the matched rule's template, so the caller
    can interleave instantiation with further rewriting.
    [instantiate regs builder] recovers exactly what {!run} would have
    returned. The array is the automaton's working register file —
    read-only for the caller, and invalidated by the next match. *)

val run_template_app :
  'a t -> Op.t -> Term.t list -> ('a * Term.t array * builder) option
(** [run_template_app t op args] is [run_template t (App (op, args))]
    without constructing (interning) the application. A fused engine
    uses this on candidate redexes it has just assembled: when a rule
    fires, the assembled node is discarded immediately, so interning it
    first would be pure waste. Patterns bind and check only proper
    subterms, so the match never needs the application node itself. *)

val instantiate : Term.t array -> builder -> Term.t
(** Instantiate a template against a register file from
    {!run_template}. *)

type stats = {
  switches : int;  (** Interior (switch) nodes in the tree. *)
  leaves : int;  (** Match leaves, guarded ones included. *)
  guarded : int;
      (** Leaves carrying deferred non-left-linear equality checks. *)
  max_registers : int;
      (** Size of the register file a {!run} allocates. *)
}

val stats : 'a t -> stats
(** Shape of the compiled tree — the prefix-sharing unit tests assert
    that merging rules with common prefixes produces fewer switch nodes
    than compiling them apart. *)
