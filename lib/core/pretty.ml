let builtin_op op =
  Op.equal op Signature.true_op || Op.equal op Signature.false_op

let axiom_vars axioms =
  List.fold_left
    (fun acc ax ->
      List.fold_left
        (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
        acc (Axiom.vars ax))
    [] axioms

let pp_axiom ppf ax =
  if String.equal (Axiom.name ax) "" then
    Fmt.pf ppf "@[<h>%a = %a@]" Term.pp (Axiom.lhs ax) Term.pp (Axiom.rhs ax)
  else
    Fmt.pf ppf "@[<h>[%s] %a = %a@]" (Axiom.name ax) Term.pp (Axiom.lhs ax)
      Term.pp (Axiom.rhs ax)

let pp_axioms ppf axioms =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_axiom) axioms

let pp_spec_source ppf spec =
  let sg = Spec.signature spec in
  let sorts =
    List.filter (fun s -> not (Sort.is_bool s)) (Sort.Set.elements (Signature.sorts sg))
  in
  let ops = List.filter (fun op -> not (builtin_op op)) (Signature.ops sg) in
  let ctors =
    List.filter (fun op -> not (builtin_op op)) (Op.Set.elements (Spec.constructors spec))
  in
  let vars = axiom_vars (Spec.axioms spec) in
  Fmt.pf ppf "@[<v>spec %s@," (Spec.name spec);
  List.iter (fun s -> Fmt.pf ppf "  sort %a@," Sort.pp s) sorts;
  if ops <> [] then begin
    Fmt.pf ppf "  ops@,";
    List.iter (fun op -> Fmt.pf ppf "    %a@," Op.pp_decl op) ops
  end;
  if ctors <> [] then
    Fmt.pf ppf "  constructors %a@," Fmt.(list ~sep:sp Op.pp) ctors;
  if vars <> [] then begin
    Fmt.pf ppf "  vars@,";
    List.iter (fun (x, s) -> Fmt.pf ppf "    %s : %a@," x Sort.pp s) vars
  end;
  if Spec.axioms spec <> [] then begin
    Fmt.pf ppf "  axioms@,";
    List.iter (fun ax -> Fmt.pf ppf "    %a@," pp_axiom ax) (Spec.axioms spec)
  end;
  Fmt.pf ppf "end@]"

let source_of_spec spec = Fmt.str "%a@." pp_spec_source spec
