(** Term rewriting.

    Axioms read left to right are rewrite rules; normalizing a ground term
    against a specification is the paper's "symbolic interpretation" of the
    algebra (section 5). The engine implements the two semantic rules the
    paper builds into its notation:

    - {b strict error propagation}: an operation applied to an argument list
      containing [error] is [error];
    - {b lazy if-then-else}: the condition is evaluated first and selects a
      branch; the unselected branch is never evaluated (so axioms such as
      [FRONT(ADD(q,i)) = if IS_EMPTY?(q) then i else FRONT(q)] do not poison
      themselves through [FRONT(NEW) = error]).

    The reference strategy is leftmost-innermost, which matches the strict
    semantics. The leftmost-outermost strategy is also provided; it may
    normalize terms the innermost strategy sends to [error] (it enforces
    strictness only on arguments in normal form), and is used by the
    completion and proof machinery where laziness is harmless.

    Three matching engines implement the same semantics (see {!engine});
    they are proven observably identical by the differential harness in
    [test/test_diff.ml] and selectable per system. *)

type rule = private { rule_name : string; lhs : Term.t; rhs : Term.t }

val rule : ?name:string -> lhs:Term.t -> rhs:Term.t -> unit -> rule
(** Same validity conditions as {!Axiom.v}, except the left-hand side may be
    any non-variable term. *)

val rule_of_axiom : Axiom.t -> rule
val axiom_of_rule : rule -> Axiom.t
val pp_rule : rule Fmt.t

(** {1 Engine selection}

    How redexes are located (semantics never changes, only speed):

    - [Reference] — the pre-index engine: linear rule scan, deep
      structural equality, no ids or intern-table shortcuts. The
      differential oracle.
    - [Index] — the two-level rule index: head symbol, then
      first-argument constructor fingerprint; surviving candidates are
      re-matched structurally.
    - [Automaton] — rules compiled into a {!Match_tree} matching
      automaton: every subterm inspected once, rule firing through
      precomputed right-hand-side templates. The default.

    A system is pinned to the engine it was compiled with
    ({!engine_of}); every system built without an explicit [?engine]
    uses {!default_engine}, which is initialized from the [ADTC_ENGINE]
    environment variable ([reference] | [index] | [auto], default
    [auto]) and set by the CLI's [--engine] flag. *)

type engine = Reference | Index | Automaton

val engine_name : engine -> string
(** ["reference"], ["index"], ["auto"]. *)

val engine_of_string : string -> engine option
(** Accepts (case-insensitively) ["reference"], ["index"]/["indexed"],
    ["auto"]/["automaton"]. *)

val default_engine : unit -> engine
val set_default_engine : engine -> unit

type system

val of_spec : ?engine:engine -> Spec.t -> system
(** Rules are the specification's {e executable} axioms in order; an axiom
    with free right-hand-side variables ({!Axiom.is_executable} false) is
    skipped — it is an equation the static analyzer reports (ADT011), not a
    rule the rewriter may fire. *)

val of_spec_keyed : ?engine:engine -> key:string -> Spec.t -> system
(** {!of_spec} through a process-wide compiled-system cache: [key] must
    identify the specification's executable-axiom list and priority
    order — {!Spec_digest.spec} is (more than) fine — and equal keys
    (compiled for the same engine) return the {e same} compiled system.
    Sound to share across threads and domains: a system is immutable
    after construction (the forked-interpreter contract, {!Interp.fork}).
    This is what makes reloading an unchanged specification one table
    probe instead of a from-scratch compilation. Cache entries are keyed
    by (key, engine): requesting a cached spec under a different engine
    is a miss and compiles afresh, never a stale hit. *)

type compile_cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  by_engine : (string * int) list;
      (** Live cache entries per engine name, sorted by name. *)
}

val compile_cache_stats : unit -> compile_cache_stats
val compile_cache_clear : unit -> unit

val of_rules : ?engine:engine -> rule list -> system

val add_rules : rule list -> system -> system
(** Added rules take priority over existing ones with the same head. The
    result keeps the host system's engine, not the global default. *)

val add_axioms : Axiom.t list -> system -> system
val rules : system -> rule list
val size : system -> int

val engine_of : system -> engine
(** The engine this system's entry points dispatch to. *)

val with_engine : engine -> system -> system
(** The same rules (all three engines' structures are always compiled),
    re-pinned to another engine. O(1). *)

type strategy = Innermost | Outermost

exception Out_of_fuel of Term.t
(** Raised when the step budget is exhausted; carries the term reached. *)

val default_fuel : int

(** {2 The deadline hook}

    Every fuel-metered normalization entry point accepts an optional
    [poll] callback, invoked once per rule application (at the same
    site where fuel is charged). A caller enforcing a wall-clock budget
    — the evaluation engine's per-request deadline — passes a closure
    that checks a monotonic deadline and raises to abort; the exception
    propagates out of the normalization untouched. Signal-based
    interruption is unsound once the engine serves requests from
    multiple threads, so interruption is cooperative: the rewriting
    loop reaches a poll point constantly, bounded computations between
    polls stay bounded. Omitting [poll] costs nothing.

    [on_rule] is [poll]'s observability sibling, invoked at the same
    site with the name of the rule being applied — per-rule firing
    attribution for the tracing layer ([Obs.Trace]). Omitting it costs
    one option test per application; it must not raise. *)

val normalize :
  ?strategy:strategy ->
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  system ->
  Term.t ->
  Term.t
(** Raises {!Out_of_fuel}. Dispatches to the system's engine
    ({!engine_of}); so do {!normalize_opt}, {!normalize_count},
    {!normalize_memo}, {!step}, {!trace}, and {!normalize_stats}. *)

val normalize_opt :
  ?strategy:strategy ->
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  system ->
  Term.t ->
  Term.t option
(** [None] when the fuel runs out. *)

val normalize_count :
  ?strategy:strategy ->
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  system ->
  Term.t ->
  Term.t * int
(** Also returns the number of rule applications performed (builtin
    error/ite steps are not counted). *)

val joinable :
  ?strategy:strategy -> ?fuel:int -> system -> Term.t -> Term.t -> bool
(** Both terms normalize (within fuel) to equal normal forms. *)

(** {1 The pinned engines}

    Entry points that dispatch to one fixed engine regardless of the
    system's own pin — what the differential harness quantifies over and
    the E18 benchmark compares. [Reference] is the oracle: the rewriting
    algorithm as it was before the compiled rule index and hash-consed
    comparisons — a linear scan over every rule in priority order, with
    a matcher that binds and compares via deep structural equality and
    never consults term ids, precomputed hashes, or the intern table.
    Same strategies, same strict-error and lazy-ite semantics, same fuel
    accounting on all three. *)

module Reference : sig
  val normalize :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t
  (** Raises {!Out_of_fuel}. *)

  val normalize_opt :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t option

  val normalize_count :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t * int
end

(** The two-level rule index (PR 5), pinned. *)
module Index : sig
  val normalize :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t

  val normalize_opt :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t option

  val normalize_count :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t * int
end

(** The matching automaton ({!Match_tree}), pinned. *)
module Automaton : sig
  val normalize :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t

  val normalize_opt :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t option

  val normalize_count :
    ?strategy:strategy ->
    ?fuel:int ->
    ?poll:(unit -> unit) ->
    ?on_rule:(string -> unit) ->
    system ->
    Term.t ->
    Term.t * int
end

val is_normal_form : system -> Term.t -> bool
(** No rule, error step, or if-then-else step applies anywhere. *)

(** {1 Single steps and traces} *)

type event = {
  position : Term.position;
  rule_used : string;
      (** Rule name, or ["<error>"] / ["<if>"] for builtin steps. *)
  before : Term.t;  (** Whole term before the step. *)
  after : Term.t;  (** Whole term after the step. *)
}

val step : system -> Term.t -> event option
(** One leftmost-innermost step, or [None] if the term is in normal form. *)

val trace :
  ?fuel:int -> ?max_events:int -> system -> Term.t -> Term.t * event list
(** Innermost normalization recording every step (up to [max_events], after
    which steps are still performed but not recorded). Raises
    {!Out_of_fuel}. *)

val pp_event : event Fmt.t

(** {1 Memoized normalization}

    An evaluation session (the symbolic interpreter, the model checker)
    normalizes many terms sharing large subterms — e.g. draining a queue
    evaluates [FRONT(q)] and [REMOVE(q)] over the same [q] again and
    again. A memo caches the normal form of every application node it
    sees, bounded by a least-recently-used eviction policy ({!Lru}) so
    that long-lived sessions — the evaluation engine serving a request
    stream — hold their footprint constant. A memo is only sound for the
    system it was created against: results cached under one rule set must
    not be reused under another. *)

module Memo : sig
  type t

  val default_capacity : int

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default {!default_capacity}) bounds the number of cached
      normal forms; raises [Invalid_argument] when [capacity < 1]. *)

  val clear : t -> unit
  (** Drops every entry and resets all counters, evictions included. *)

  val size : t -> int
  (** Never exceeds {!capacity}. *)

  val capacity : t -> int
  val hits : t -> int
  val misses : t -> int
  val evictions : t -> int
end

val normalize_memo :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  memo:Memo.t ->
  system ->
  Term.t ->
  Term.t
(** Leftmost-innermost normalization through the cache. Raises
    {!Out_of_fuel}. An abort raised by [poll] leaves the cache sound:
    every entry added so far is a true normal form. *)

val normalize_memo_count :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?on_rule:(string -> unit) ->
  memo:Memo.t ->
  system ->
  Term.t ->
  Term.t * int
(** {!normalize_memo}, also returning the number of rule applications
    performed (a fully cached term reports 0 — and fires [on_rule] not
    at all: attribution counts real work, not cache hits). *)

(** {1 Statistics} *)

type stats = { applications : (string * int) list; total : int }
(** Rule-name to firing-count, for the benchmark harness. *)

val normalize_stats :
  ?strategy:strategy -> ?fuel:int -> system -> Term.t -> Term.t * stats
