type kind = Boundary | General

type prompt = {
  op : Op.t;
  missing_lhs : Term.t;
  kind : kind;
  question : string;
  suggested_rhs : Term.t option;
}

(* A pattern is a boundary case when every constructor application in it is
   a constant (e.g. FRONT(NEW)); such cases are the ones the paper notes are
   "particularly likely to be overlooked". *)
let classify spec pattern =
  let has_ctor = ref false in
  let constant_ctors_only =
    Term.fold
      (fun acc t ->
        acc
        &&
        match Term.view t with
        | Term.App (op, args) when Spec.is_constructor op spec ->
          has_ctor := true;
          args = []
        | _ -> true)
      true pattern
  in
  (* a pattern with no constructor at all (a fully general case) is not a
     boundary condition — only constant-constructor cases like FRONT(NEW) *)
  if !has_ctor && constant_ctors_only then Boundary else General

let first_split_position spec op =
  let rec find i = function
    | [] -> None
    | sort :: rest ->
      if Spec.has_constructors sort spec then Some i else find (i + 1) rest
  in
  find 0 (Op.args op)

let skeletons spec op =
  let report = Completeness.check_op spec op in
  let from_analysis = List.map (fun c -> c.Completeness.pattern) report.cases in
  let all_var_app t =
    match Term.view t with
    | Term.App (_, args) ->
      List.for_all
        (fun a -> match Term.view a with Term.Var _ -> true | _ -> false)
        args
    | _ -> false
  in
  match from_analysis with
  | [ only ] when all_var_app only -> (
    (* no axiom discriminates yet: propose one split of the first
       constructor-bearing argument *)
    match first_split_position spec op with
    | None -> [ only ]
    | Some i ->
      let sort = List.nth (Op.args op) i in
      let avoid = Term.vars only in
      List.map
        (fun ctor ->
          let taken = ref avoid in
          let fresh s =
            let base = String.lowercase_ascii (Sort.name s) in
            let name = Term.fresh_wrt ~avoid:!taken base s in
            taken := (name, s) :: !taken;
            Term.var name s
          in
          let expansion = Term.app ctor (List.map fresh (Op.args ctor)) in
          match Term.replace_at only [ i ] expansion with
          | Some t -> t
          | None -> only)
        (Spec.constructors_of_sort sort spec))
  | cases -> cases

let forced_rhs spec pattern =
  (* When the result sort has exactly one constant constructor and no other
     constructor, there is only one non-error value to suggest. *)
  let sort = Term.sort_of pattern in
  match Spec.constructors_of_sort sort spec with
  | [ op ] when Op.is_constant op -> Some (Term.const op)
  | _ -> None

let question op pattern kind =
  let flavour =
    match kind with
    | Boundary -> " (boundary condition: easy to overlook!)"
    | General -> ""
  in
  Fmt.str "Please supply an axiom defining %s = ?%s" (Term.to_string pattern)
    flavour
  ^ Fmt.str " [result sort %s]" (Sort.name (Op.result op))

let prompts spec =
  let report = Completeness.check spec in
  let all =
    List.concat_map
      (fun (r : Completeness.op_report) ->
        if r.unconstrained then []
        else
          List.filter_map
            (fun (c : Completeness.case) ->
              if c.covered_by <> [] then None
              else
                let kind = classify spec c.pattern in
                Some
                  {
                    op = r.op;
                    missing_lhs = c.pattern;
                    kind;
                    question = question r.op c.pattern kind;
                    suggested_rhs = forced_rhs spec c.pattern;
                  })
            r.cases)
      report.op_reports
  in
  let boundary, general =
    List.partition (fun p -> p.kind = Boundary) all
  in
  boundary @ general

let stub_axioms ?(prefix = "stub") spec =
  List.mapi
    (fun i p ->
      let rhs =
        match p.suggested_rhs with
        | Some t -> t
        | None -> Term.err (Term.sort_of p.missing_lhs)
      in
      Axiom.v ~name:(Fmt.str "%s_%d" prefix (i + 1)) ~lhs:p.missing_lhs ~rhs ())
    (prompts spec)

let complete_with_stubs spec = Spec.with_axioms (stub_axioms spec) spec

let pp_prompt ppf p =
  let kind = match p.kind with Boundary -> "boundary" | General -> "general" in
  match p.suggested_rhs with
  | None -> Fmt.pf ppf "@[<h>[%s] %s@]" kind p.question
  | Some rhs ->
    Fmt.pf ppf "@[<h>[%s] %s (suggestion: %a)@]" kind p.question Term.pp rhs
