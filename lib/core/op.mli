(** Operation symbols of a many-sorted signature.

    An operation is the syntactic part of Guttag's specification: a name, a
    domain (list of argument sorts) and a range (result sort). For example
    [ADD : Queue x Item -> Queue] is [v "ADD" ~args:[queue; item] ~result:queue].
    Nullary operations ([NEW : -> Queue]) are the constants of the algebra. *)

type t

val v : string -> args:Sort.t list -> result:Sort.t -> t
(** Raises [Invalid_argument] on an empty name. *)

val name : t -> string
val args : t -> Sort.t list
val result : t -> Sort.t

val arity : t -> int
val is_constant : t -> bool

val equal : t -> t -> bool
(** Structural equality: same name, same domain, same range. *)

val compare : t -> t -> int

val pp : t Fmt.t
(** Prints the name only, e.g. [ADD]. *)

val pp_decl : t Fmt.t
(** Prints the full syntactic declaration, e.g.
    [ADD : Queue Item -> Queue]. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
