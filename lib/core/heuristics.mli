(** Axiom-construction heuristics and user prompting.

    Section 3 of the paper describes "heuristics to aid the user in the
    initial presentation of an axiomatic specification" and "a system to
    mechanically verify the sufficient-completeness" that would "prompt the
    user to supply the additional information" needed. This module is that
    system's front half:

    - {!skeletons} computes the left-hand sides a complete specification of
      an operation must cover — each observer applied to each constructor
      pattern — before any axiom is written;
    - {!prompts} diffs the skeleton set against the axioms actually present
      and renders the questions the original system would have asked,
      flagging boundary conditions (the cases "particularly likely to be
      overlooked");
    - {!stub_axioms} materialises the missing cases as [... = error] stubs
      so a specification can be made executable and refined interactively. *)

type kind =
  | Boundary  (** Every constructor argument at the split position is a
                  constant constructor, e.g. [REMOVE(NEW)]. *)
  | General  (** e.g. [REMOVE(ADD(q, i))]. *)

type prompt = {
  op : Op.t;
  missing_lhs : Term.t;
  kind : kind;
  question : string;
      (** English text of the question the system asks the user. *)
  suggested_rhs : Term.t option;
      (** A guess when one is forced (single-constructor result sorts);
          usually [None]. *)
}

val skeletons : Spec.t -> Op.t -> Term.t list
(** The constructor case patterns a sufficiently complete axiomatisation of
    the operation must cover (one split of every constructor-bearing
    argument position that the existing axioms, if any, discriminate on; for
    an operation with no axioms yet, one split of the first
    constructor-bearing argument). *)

val prompts : Spec.t -> prompt list
(** Prompts for every missing case of every observer, boundary cases
    first. *)

val stub_axioms : ?prefix:string -> Spec.t -> Axiom.t list
(** One [lhs = error] axiom per missing case, named [prefix]-[n]. *)

val complete_with_stubs : Spec.t -> Spec.t
(** The specification extended with {!stub_axioms}; sufficiently complete
    by construction. *)

val pp_prompt : prompt Fmt.t
