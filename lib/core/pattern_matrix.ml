type t = { spec : Spec.t; sorts : Sort.t list; rows : Term.t list list }

let create spec ~sorts ~rows =
  let width = List.length sorts in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Fmt.str "Pattern_matrix.create: row %d has %d patterns, expected %d"
             i (List.length row) width))
    rows;
  { spec; sorts; rows }

let rows m = m.rows
let sorts m = m.sorts

(* the head of a pattern, when it is a constructor application of the
   matrix's specification; anything else (wildcard, observer application,
   error, if-then-else) answers None *)
let ctor_head spec p =
  match Term.view p with
  | Term.App (op, args) when Spec.is_constructor op spec -> Some (op, args)
  | _ -> None

let is_wild p = match Term.view p with Term.Var _ -> true | _ -> false
let wild s = Term.var (String.lowercase_ascii (Sort.name s)) s
let wilds op = List.map wild (Op.args op)

let rec take n = function
  | rest when n = 0 -> ([], rest)
  | [] -> invalid_arg "Pattern_matrix.take"
  | x :: rest ->
    let xs, rest = take (n - 1) rest in
    (x :: xs, rest)

(* S(c, P): rows whose first column is compatible with constructor [c],
   the column replaced by c's argument columns *)
let specialize spec c rows =
  List.filter_map
    (fun row ->
      match row with
      | [] -> None
      | p :: rest -> (
        match ctor_head spec p with
        | Some (op, args) when Op.equal op c -> Some (args @ rest)
        | Some _ -> None
        | None -> if is_wild p then Some (wilds c @ rest) else None))
    rows

(* D(P): rows whose first column is a wildcard, the column dropped *)
let default rows =
  List.filter_map
    (fun row ->
      match row with
      | [] -> None
      | p :: rest -> if is_wild p then Some rest else None)
    rows

let first_column_heads spec rows =
  List.filter_map
    (fun row ->
      match row with
      | [] -> None
      | p :: _ -> Option.map fst (ctor_head spec p))
    rows

(* the column's constructors all appear as heads of its rows — the
   "complete signature" test. A sort with no declared constructors (a
   parameter sort) is never complete: it behaves as an infinite
   signature. *)
let heads_complete spec s rows =
  match Spec.constructors_of_sort s spec with
  | [] -> None
  | ctors ->
    let heads = first_column_heads spec rows in
    if List.for_all (fun c -> List.exists (Op.equal c) heads) ctors then
      Some ctors
    else None

(* U(P, q): Maranget's usefulness recursion. Patterns that are neither
   wildcards nor constructor applications are treated as wildcards on the
   query side (over-approximation, documented in the interface). *)
let rec useful_rec spec srts rws q =
  match (srts, q) with
  | [], [] -> rws = []
  | [], _ | _, [] -> invalid_arg "Pattern_matrix.useful: width mismatch"
  | s :: srts', q1 :: q' -> (
    match ctor_head spec q1 with
    | Some (c, args) ->
      useful_rec spec
        (Op.args c @ srts')
        (specialize spec c rws)
        (args @ q')
    | None -> (
      match heads_complete spec s rws with
      | Some ctors ->
        List.exists
          (fun c ->
            useful_rec spec
              (Op.args c @ srts')
              (specialize spec c rws)
              (wilds c @ q'))
          ctors
      | None -> useful_rec spec srts' (default rws) q'))

let useful m q =
  if List.length q <> List.length m.sorts then
    invalid_arg "Pattern_matrix.useful: width mismatch";
  useful_rec m.spec m.sorts m.rows q

let rec first_some f = function
  | [] -> None
  | x :: rest -> ( match f x with Some _ as r -> r | None -> first_some f rest)

(* the witness-producing variant of U(P, wildcards): rebuild the uncovered
   vector on the way out of the recursion. Constrained columns carry the
   constructor the recursion descended through (or the one missing from
   the row heads); unconstrained columns come back as wildcards. *)
let rec witness_rec spec srts rws =
  match srts with
  | [] -> if rws = [] then Some [] else None
  | s :: srts' -> (
    match heads_complete spec s rws with
    | Some ctors ->
      first_some
        (fun c ->
          match witness_rec spec (Op.args c @ srts') (specialize spec c rws) with
          | None -> None
          | Some w ->
            let args, rest = take (Op.arity c) w in
            Some (Term.app c args :: rest))
        ctors
    | None -> (
      match witness_rec spec srts' (default rws) with
      | None -> None
      | Some w ->
        let heads = first_column_heads spec rws in
        let head =
          match
            List.filter
              (fun c -> not (List.exists (Op.equal c) heads))
              (Spec.constructors_of_sort s spec)
          with
          | c :: _ -> Term.app c (wilds c)
          | [] -> wild s
        in
        Some (head :: w)))

let instantiate_wildcards spec t =
  (* prefer a constant constructor so witnesses stay small; bound the
     recursion so a sort whose constructors all recurse (which ADT013
     reports separately) falls back to a variable instead of looping *)
  let rec fill depth s =
    if depth = 0 then None
    else
      match Spec.constructors_of_sort s spec with
      | [] -> None
      | ctors ->
        let pick =
          match List.find_opt Op.is_constant ctors with
          | Some c -> c
          | None -> List.hd ctors
        in
        let args =
          List.map
            (fun s' ->
              match fill (depth - 1) s' with
              | Some t -> t
              | None -> wild s')
            (Op.args pick)
        in
        Some (Term.app pick args)
  in
  Term.map_vars
    (fun x s -> match fill 6 s with Some t -> t | None -> Term.var x s)
    t

let uncovered m =
  match witness_rec m.spec m.sorts m.rows with
  | None -> None
  | Some w -> Some (List.map (fun t -> instantiate_wildcards m.spec t) w)

let exhaustive m = Option.is_none (witness_rec m.spec m.sorts m.rows)
