type key = { sort : Sort.t; size : int }

module Cache = Hashtbl.Make (struct
  type t = key

  let equal a b = Sort.equal a.sort b.sort && a.size = b.size
  let hash k = Hashtbl.hash (Sort.name k.sort, k.size)
end)

type universe = {
  spec : Spec.t;
  atoms : Sort.t -> Term.t list;
  cache : Term.t list Cache.t;
}

let universe ?(atoms = fun _ -> []) spec =
  { spec; atoms; cache = Cache.create 64 }

let spec u = u.spec

let leaves u sort =
  let constants =
    List.filter Op.is_constant (Spec.constructors_of_sort sort u.spec)
  in
  List.map Term.const constants @ u.atoms sort

(* All ways to split [total] into [n] positive parts. *)
let rec splits total n =
  if n = 0 then if total = 0 then [ [] ] else []
  else if total < n then []
  else
    List.concat_map
      (fun first ->
        List.map (fun rest -> first :: rest) (splits (total - first) (n - 1)))
      (List.init (total - n + 1) (fun i -> i + 1))

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let rec terms_exactly u sort ~size =
  if size <= 0 then []
  else
    let k = { sort; size } in
    match Cache.find_opt u.cache k with
    | Some ts -> ts
    | None ->
      let result =
        if size = 1 then leaves u sort
        else
          let compound =
            List.filter
              (fun op -> not (Op.is_constant op))
              (Spec.constructors_of_sort sort u.spec)
          in
          List.concat_map
            (fun op ->
              let arg_sorts = Op.args op in
              let n = List.length arg_sorts in
              List.concat_map
                (fun split ->
                  let choices =
                    List.map2
                      (fun s sz -> terms_exactly u s ~size:sz)
                      arg_sorts split
                  in
                  List.map (Term.app op) (cartesian choices))
                (splits (size - 1) n))
            compound
      in
      Cache.add u.cache k result;
      result

let terms_up_to u sort ~size =
  List.concat (List.init (max size 0) (fun i -> terms_exactly u sort ~size:(i + 1)))

let count_exactly u sort ~size = List.length (terms_exactly u sort ~size)
let count_up_to u sort ~size = List.length (terms_up_to u sort ~size)

let substitutions_up_to u vars ~size =
  let choices =
    List.map (fun (x, s) -> List.map (fun t -> (x, t)) (terms_up_to u s ~size)) vars
  in
  List.filter_map Subst.of_bindings (cartesian choices)

let pick state = function
  | [] -> None
  | xs -> Some (List.nth xs (Random.State.int state (List.length xs)))

let rec random_term u sort ~size state =
  let leaf () = pick state (leaves u sort) in
  if size <= 1 then leaf ()
  else
    let compound =
      List.filter
        (fun op -> not (Op.is_constant op))
        (Spec.constructors_of_sort sort u.spec)
    in
    match pick state compound with
    | None -> leaf ()
    | Some op ->
      let arg_sorts = Op.args op in
      let n = List.length arg_sorts in
      let budget = max 1 ((size - 1) / max n 1) in
      let args =
        List.map (fun s -> random_term u s ~size:budget state) arg_sorts
      in
      if List.for_all Option.is_some args then
        Some (Term.app op (List.map Option.get args))
      else leaf ()

(* uniform over the bounded universe: draw a global index among all terms
   of size <= n, then walk the per-size buckets to find it — the counts
   and buckets are the memoized exhaustive enumeration, so every term is
   equally likely by construction *)
let uniform_term u sort ~size state =
  let total = count_up_to u sort ~size in
  if total = 0 then None
  else
    let rec locate idx sz =
      let here = count_exactly u sort ~size:sz in
      if idx < here then Some (List.nth (terms_exactly u sort ~size:sz) idx)
      else locate (idx - here) (sz + 1)
    in
    locate (Random.State.int state total) 1

let substitution_with sample u vars ~size state =
  let bindings =
    List.map
      (fun (x, s) ->
        match sample u s ~size state with
        | Some t -> Some (x, t)
        | None -> None)
      vars
  in
  if List.for_all Option.is_some bindings then
    Subst.of_bindings (List.map Option.get bindings)
  else None

let random_substitution u vars ~size state =
  substitution_with random_term u vars ~size state

let uniform_substitution u vars ~size state =
  substitution_with uniform_term u vars ~size state
