(** Recursive-descent parser for the specification language.

    A source file contains one or more specifications:

    {v
    spec Queue
      uses Item
      sort Queue
      ops
        NEW : -> Queue
        ADD : Queue Item -> Queue
        FRONT : Queue -> Item
        REMOVE : Queue -> Queue
        IS_EMPTY? : Queue -> Bool
      constructors NEW ADD
      vars
        q : Queue
        i : Item
      axioms
        [1] IS_EMPTY?(NEW) = true
        [2] IS_EMPTY?(ADD(q, i)) = false
        [3] FRONT(NEW) = error
        [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
        [5] REMOVE(NEW) = error
        [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
    end
    v}

    [uses] merges previously defined specifications into this one — the
    paper's hierarchical structuring ("the solution ... is simply to add
    another level", section 4). Names are resolved first among the
    specifications earlier in the same input, then through the [env]
    callback. The keyword [error] denotes the distinguished error value; its
    sort is inferred from context. Every variable occurring in an axiom must
    be declared in the [vars] section. *)

type error = { line : int; col : int; message : string }

val pp_error : error Fmt.t

val parse_specs :
  ?env:(string -> Spec.t option) -> string -> (Spec.t list, error) result
(** All specifications of the input, in order. Each specification's
    signature includes everything it [uses]. *)

val parse_spec :
  ?env:(string -> Spec.t option) -> string -> (Spec.t, error) result
(** Convenience for inputs holding exactly one specification; the last
    specification of the input is returned (with its uses merged), so a
    file may define auxiliary specifications first. *)

val parse_term :
  Spec.t ->
  ?vars:(string * Sort.t) list ->
  ?expected:Sort.t ->
  string ->
  (Term.t, error) result
(** Parses a term against a specification's signature. Identifiers are
    resolved as declared variables first, then operations. [expected]
    (also inferred from operation domains) gives [error] its sort; a bare
    [error] with no context is rejected. *)
