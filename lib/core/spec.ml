type t = {
  name : string;
  signature : Signature.t;
  constructors : Op.Set.t;
  axioms : Axiom.t list;
}

let resolve_constructor sg cname =
  match Signature.find_op cname sg with
  | Some op -> op
  | None ->
    invalid_arg
      (Fmt.str "Spec: constructor %s is not an operation of the signature"
         cname)

let validate_axioms sg axioms =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun ax ->
      (match Axiom.check sg ax with
      | Ok () -> ()
      | Error msg ->
        invalid_arg (Fmt.str "Spec: ill-formed axiom %a: %s" Axiom.pp ax msg));
      let n = Axiom.name ax in
      if not (String.equal n "") then begin
        (match Hashtbl.find_opt seen n with
        | Some other when not (Axiom.same_equation other ax) ->
          invalid_arg (Fmt.str "Spec: duplicate axiom name %s" n)
        | _ -> ());
        Hashtbl.replace seen n ax
      end)
    axioms

let v ~name ~signature ?(constructors = []) ~axioms () =
  validate_axioms signature axioms;
  let constructors =
    List.fold_left
      (fun acc cname -> Op.Set.add (resolve_constructor signature cname) acc)
      (Op.Set.of_list [ Signature.true_op; Signature.false_op ])
      constructors
  in
  { name; signature; constructors; axioms }

let name t = t.name
let signature t = t.signature
let axioms t = t.axioms
let constructors t = t.constructors

let constructors_of_sort sort t =
  List.filter
    (fun op -> Op.Set.mem op t.constructors)
    (Signature.ops_with_result sort t.signature)

let has_constructors sort t = constructors_of_sort sort t <> []
let is_constructor op t = Op.Set.mem op t.constructors

let is_constructor_name cname t =
  match Signature.find_op cname t.signature with
  | Some op -> is_constructor op t
  | None -> false

let observers t =
  List.filter
    (fun op ->
      (not (Op.Set.mem op t.constructors))
      && (not (Op.equal op Signature.true_op))
      && not (Op.equal op Signature.false_op))
    (Signature.ops t.signature)

let find_op opname t = Signature.find_op opname t.signature
let find_op_exn opname t = Signature.find_op_exn opname t.signature
let op_exn t opname = find_op_exn opname t

let axioms_for op t =
  List.filter (fun ax -> Op.equal (Axiom.head ax) op) t.axioms

let find_axiom axname t =
  List.find_opt (fun ax -> String.equal (Axiom.name ax) axname) t.axioms

let sorts_of_interest t =
  let sorts =
    Op.Set.fold
      (fun op acc ->
        let s = Op.result op in
        if List.exists (Sort.equal s) acc then acc else s :: acc)
      t.constructors []
  in
  List.rev sorts

let union ?name:uname a b =
  let signature = Signature.union a.signature b.signature in
  let extra =
    List.filter
      (fun bx ->
        not
          (List.exists
             (fun ax ->
               String.equal (Axiom.name ax) (Axiom.name bx)
               && not (String.equal (Axiom.name ax) "")
               || Axiom.same_equation ax bx)
             a.axioms))
      b.axioms
  in
  List.iter
    (fun bx ->
      let n = Axiom.name bx in
      if not (String.equal n "") then
        match List.find_opt (fun ax -> String.equal (Axiom.name ax) n) a.axioms with
        | Some ax when not (Axiom.same_equation ax bx) ->
          invalid_arg
            (Fmt.str "Spec.union: axiom name %s denotes different equations" n)
        | _ -> ())
    b.axioms;
  let axioms = a.axioms @ extra in
  validate_axioms signature axioms;
  {
    name = (match uname with Some n -> n | None -> a.name ^ "+" ^ b.name);
    signature;
    constructors = Op.Set.union a.constructors b.constructors;
    axioms;
  }

let union_all ~name = function
  | [] -> invalid_arg "Spec.union_all: empty list"
  | first :: rest ->
    let merged = List.fold_left (fun acc s -> union acc s) first rest in
    { merged with name }

let with_axioms extra t =
  validate_axioms t.signature (t.axioms @ extra);
  { t with axioms = t.axioms @ extra }

let without_axiom axname t =
  {
    t with
    axioms = List.filter (fun ax -> not (String.equal (Axiom.name ax) axname)) t.axioms;
  }

let add_constructors names t =
  let constructors =
    List.fold_left
      (fun acc cname -> Op.Set.add (resolve_constructor t.signature cname) acc)
      t.constructors names
  in
  { t with constructors }

let rec is_constructor_term t term =
  match Term.view term with
  | Term.Var _ -> true
  | Term.Err _ -> false
  | Term.App (op, args) ->
    is_constructor op t && List.for_all (is_constructor_term t) args
  | Term.Ite _ -> false

let is_constructor_ground_term t term =
  Term.is_ground term && is_constructor_term t term

let pp ppf t =
  let pp_ctor ppf op = Op.pp ppf op in
  Fmt.pf ppf "@[<v>spec %s@,@[<v 2>ops@,%a@]@,constructors %a@,@[<v 2>axioms@,%a@]@,end@]"
    t.name
    Fmt.(list ~sep:cut Op.pp_decl)
    (List.filter
       (fun op ->
         (not (Op.equal op Signature.true_op))
         && not (Op.equal op Signature.false_op))
       (Signature.ops t.signature))
    Fmt.(list ~sep:sp pp_ctor)
    (Op.Set.elements t.constructors)
    Fmt.(list ~sep:cut Axiom.pp)
    t.axioms
