(** Bounded least-recently-used caches.

    The rewriting memo ({!Rewrite.Memo}) and the evaluation engine's shared
    normal-form cache must survive long-lived sessions: an unbounded table
    keyed by every application node ever normalized grows without limit
    under sustained traffic. This functor provides the replacement policy:
    a hash table paired with an intrusive recency list, O(1) lookup,
    insertion and eviction, with an eviction counter for the metrics
    endpoints.

    Since terms are hash-consed, term-keyed instantiations use physical
    equality and [Term.id] as the hash — a perfect hash, unique per live
    term — so probes never walk term structure.

    Caches are single-threaded mutable values, like [Hashtbl]. *)

module Make (K : Hashtbl.HashedType) : sig
  type 'a t

  val default_capacity : int
  (** 65536 entries. *)

  val create : ?capacity:int -> unit -> 'a t
  (** Raises [Invalid_argument] when [capacity < 1]. *)

  val capacity : 'a t -> int
  val length : 'a t -> int
  (** Never exceeds {!capacity}. *)

  val find : 'a t -> K.t -> 'a option
  (** A hit refreshes the binding's recency. *)

  val peek : 'a t -> K.t -> 'a option
  (** Like {!find} but leaves recency untouched (for tests and
      introspection). *)

  val mem : 'a t -> K.t -> bool
  (** Recency-neutral, like {!peek}. *)

  val add : 'a t -> K.t -> 'a -> unit
  (** Inserts or replaces the binding and makes it the most recently used;
      when the cache is over capacity the least recently used binding is
      evicted. *)

  val evictions : 'a t -> int
  (** Evictions since creation (or the last {!clear}). *)

  val clear : 'a t -> unit
  (** Drops every binding and resets the eviction counter. *)

  val to_list : 'a t -> (K.t * 'a) list
  (** Bindings from most to least recently used. *)
end
