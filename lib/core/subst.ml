module String_map = Map.Make (String)

type t = Term.t String_map.t

let empty = String_map.empty
let is_empty = String_map.is_empty
let singleton x t = String_map.singleton x t

let bind x t s =
  match String_map.find_opt x s with
  | Some existing -> if Term.equal existing t then Some s else None
  | None -> Some (String_map.add x t s)

let find x s = String_map.find_opt x s
let mem x s = String_map.mem x s
let bindings s = String_map.bindings s

let of_bindings bs =
  List.fold_left
    (fun acc (x, t) ->
      match acc with None -> None | Some s -> bind x t s)
    (Some empty) bs

let cardinal = String_map.cardinal

let apply s term =
  Term.map_vars
    (fun x sort ->
      match String_map.find_opt x s with
      | Some t -> t
      | None -> Term.var x sort)
    term

let compose s1 s2 =
  let s1' = String_map.map (apply s2) s1 in
  String_map.union (fun _ t1 _ -> Some t1) s1' s2

let restrict vars s =
  String_map.filter (fun x _ -> List.exists (fun (y, _) -> String.equal x y) vars) s

let equal a b = String_map.equal Term.equal a b

let pp ppf s =
  let pp_binding ppf (x, t) = Fmt.pf ppf "%s -> %a" x Term.pp t in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:semi pp_binding) (bindings s)

let match_term ~pattern term =
  let rec go s pattern term =
    match (Term.view pattern, Term.view term) with
    | Term.Var (x, sort), _ ->
      if Sort.equal sort (Term.sort_of term) then bind x term s else None
    | Term.Err sp, Term.Err st -> if Sort.equal sp st then Some s else None
    | Term.App (f, ps), Term.App (g, ts) when Op.equal f g -> go_list s ps ts
    | Term.Ite (c1, t1, e1), Term.Ite (c2, t2, e2) ->
      go_list s [ c1; t1; e1 ] [ c2; t2; e2 ]
    | _ -> None
  and go_list s ps ts =
    match (ps, ts) with
    | [], [] -> Some s
    | p :: ps, t :: ts -> (
      match go s p t with Some s -> go_list s ps ts | None -> None)
    | _ -> None
  in
  go empty pattern term

let matches ~pattern term = Option.is_some (match_term ~pattern term)

let occurs x term =
  List.exists (fun (y, _) -> String.equal x y) (Term.vars term)

let unify a b =
  (* Martelli-Montanari style on a work list, building an idempotent
     substitution incrementally. *)
  let rec solve s = function
    | [] -> Some s
    | (a, b) :: rest ->
      let a = apply s a and b = apply s b in
      if Term.equal a b then solve s rest
      else begin
        let bind_var x sort t =
          if not (Sort.equal sort (Term.sort_of t)) then None
          else if occurs x t then None
          else
            let binding = singleton x t in
            let s' = String_map.map (apply binding) s in
            solve (String_map.add x t s') rest
        in
        match (Term.view a, Term.view b) with
        | Term.Var (x, sort), _ -> bind_var x sort b
        | _, Term.Var (x, sort) -> bind_var x sort a
        | Term.App (f, xs), Term.App (g, ys) when Op.equal f g ->
          solve s (List.combine xs ys @ rest)
        | Term.Ite (c1, t1, e1), Term.Ite (c2, t2, e2) ->
          solve s ((c1, c2) :: (t1, t2) :: (e1, e2) :: rest)
        | _ -> None
      end
  in
  solve empty [ (a, b) ]

let variant a b =
  let renaming_only s =
    List.for_all
      (fun (_, t) -> match Term.view t with Term.Var _ -> true | _ -> false)
      (bindings s)
  in
  match (match_term ~pattern:a b, match_term ~pattern:b a) with
  | Some s1, Some s2 -> renaming_only s1 && renaming_only s2
  | _ -> false
