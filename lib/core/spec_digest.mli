(** Canonical content digests for specifications.

    The paper's contract for an abstract type is its axiom set, not its
    source text or its representation — which is exactly what makes
    results about a specification (normal forms, lint verdicts, proof
    obligations) cacheable by {e content}: a digest computed from the
    elaborated signature and axiom list identifies the semantics, so it
    is stable under whitespace, comments, reformatting, axiom renaming
    of the {e file}, and even renaming the specification itself — and it
    changes whenever any operation declaration, constructor set, or
    axiom equation changes.

    Digests are MD5 over canonical renderings ([Digest] from the
    standard library), printed as 32 lowercase hex characters. The
    canonical term rendering is {!Term.to_string} — the same rendering
    the parser round-trips — so a digest computed in one process equals
    the digest computed in any other process for the same elaborated
    specification.

    This is the keying layer of the on-disk persist store
    ([lib/persist]) and the identity relation of the document-session
    diff ({!Spec_diff}); [adtc hash] prints it. *)

val term : Term.t -> string
(** Canonical key for a term: its {!Term.to_string} rendering (parseable
    back against the same specification, which is how the persist store
    remaps cached normal forms onto fresh {!Term.id}s at load). *)

val axiom : Axiom.t -> string
(** Digest of the {e equation} alone — the axiom's name is deliberately
    excluded, so relabelling [\[4\]] to [\[5\]] does not invalidate
    anything. *)

val signature_digest : Spec.t -> string
(** Digest of the elaborated signature: sorts (sorted), operation
    declarations (declaration order), and the constructor set. *)

val spec : Spec.t -> string
(** The specification digest: signature digest plus every axiom digest,
    in axiom order (order matters — rules fire by priority). The
    specification's {e name} is excluded: content, not label. *)

val axioms : Spec.t -> (string * string) list
(** [(axiom name, equation digest)] in axiom order — the per-axiom
    breakdown [adtc hash --json] prints and {!Spec_diff} diffs. *)
