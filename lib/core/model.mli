(** Implementations as models of a specification.

    The paper defines a representation of a type [T] as "(i) an
    interpretation of the operations of the type that is a model for the
    axioms of the specification of [T], and (ii) a function [Phi] that maps
    terms in the model domain onto their representatives in the abstract
    domain". This module packages an OCaml implementation as such a model
    and checks the "inherent invariants": every axiom must hold in the model
    under [Phi], for all (bounded-exhaustively enumerated or random)
    assignments of values to the axiom's variables.

    A model carries one representation type ['r] for the implemented sort;
    values of the other sorts involved (parameters such as [Item], results
    such as [Bool]) travel as terms. Implementations signal the
    distinguished error value by raising {!Impl_error}. *)

exception Impl_error of string

type 'r value =
  | Rep of 'r  (** A value of the implemented type. *)
  | Foreign of Term.t  (** A ground constructor term of another sort. *)

type 'r t = {
  model_name : string;
  interp : string -> 'r value list -> 'r value option;
      (** Interpretation of the named operation; [None] means the
          operation is foreign to the implementation and is evaluated
          symbolically instead. Raise {!Impl_error} for error results. *)
  abstraction : 'r -> Term.t;
      (** [Phi]: the representation-to-abstract-value map. It need not be
          injective (the paper's ring-buffer example); it must be total on
          reachable values. *)
}

val eval : Spec.t -> 'r t -> Term.t -> ('r value, Sort.t) result
(** Evaluates a ground term bottom-up in the model: implemented operations
    go through [interp]; foreign applications are normalized symbolically.
    [Error s] results (from strict error propagation or {!Impl_error})
    come back as [Error s]. *)

(** {2 Precompiled evaluation contexts}

    {!eval} compiles the specification's rewrite system on every call. A
    harness evaluating many terms against one model builds a {!ctx} once;
    {!ctx_eval} additionally accepts an [env] giving values to chosen free
    variables, which is how the conformance harness ([lib/testgen])
    evaluates an observation context [C[#]]: the hole variable [#] is
    bound to an already-computed representation value. *)

type 'r ctx

val ctx : Spec.t -> 'r t -> 'r ctx
val ctx_spec : 'r ctx -> Spec.t

val ctx_eval :
  ?env:(string -> 'r value option) ->
  'r ctx ->
  Term.t ->
  ('r value, Sort.t) result
(** Like {!eval} with the precompiled system; a free variable is looked up
    in [env] first and only raises [Invalid_argument] when unbound there. *)

val ctx_denote : 'r ctx -> ('r value, Sort.t) result -> Term.t
(** Like {!to_term} with the precompiled system. *)

val to_term : Spec.t -> 'r t -> ('r value, Sort.t) result -> Term.t
(** The abstract term denoted by an evaluation result: [Phi] of a [Rep],
    the normalized term of a [Foreign], [Term.err] of an error. *)

type counterexample = {
  axiom : Axiom.t;
  valuation : Subst.t;
  lhs_denotes : Term.t;
  rhs_denotes : Term.t;
}

val check_axiom :
  Enum.universe -> 'r t -> size:int -> Axiom.t -> counterexample option
(** Tests one axiom over every substitution of ground constructor terms of
    size at most [size]: both sides are evaluated in the model and their
    denotations (through [Phi], then normalization) compared. *)

val check :
  Enum.universe -> 'r t -> size:int -> (int, counterexample) result
(** All axioms of the universe's specification; [Ok n] reports how many
    (axiom, valuation) instances were verified. This is the
    bounded-exhaustive rendition of the paper's representation-correctness
    proof obligation. *)

val check_random :
  Enum.universe ->
  'r t ->
  count:int ->
  size:int ->
  Random.State.t ->
  (int, counterexample) result

val pp_counterexample : counterexample Fmt.t
