(** Abstract data type specifications.

    A specification packages the two halves of Guttag's method: the
    syntactic specification (a {!Signature.t}) and the set of relations
    ({!Axiom.t} list). It additionally records which operations are
    {e constructors} — the operations whose terms generate every value of
    the type of interest (in the Queue example, [NEW] and [ADD]). The
    constructor set drives sufficient-completeness checking, ground-term
    enumeration, and generator induction.

    Specifications compose: [union] merges a specification with the
    specifications of the types it builds on, mirroring the paper's
    hierarchical step of "simply adding another level" (the Knowlist
    example of section 4). *)

type t

val v :
  name:string ->
  signature:Signature.t ->
  ?constructors:string list ->
  axioms:Axiom.t list ->
  unit ->
  t
(** Builds and validates a specification. Raises [Invalid_argument] when an
    axiom is ill formed in the signature, when a constructor name is not an
    operation of the signature, or when two axioms share a name with a
    different equation. The builtin Boolean constants [true] and [false] are
    always constructors of [Bool], so omitting [constructors] still leaves
    Bool inhabited. *)

val name : t -> string
val signature : t -> Signature.t
val axioms : t -> Axiom.t list
val constructors : t -> Op.Set.t

val constructors_of_sort : Sort.t -> t -> Op.t list
(** Constructors whose range is the given sort, in declaration order. *)

val has_constructors : Sort.t -> t -> bool

val is_constructor : Op.t -> t -> bool
val is_constructor_name : string -> t -> bool

val observers : t -> Op.t list
(** Non-constructor operations, in declaration order (builtin Boolean
    constants excluded). *)

val find_op : string -> t -> Op.t option
val find_op_exn : string -> t -> Op.t
val op_exn : t -> string -> Op.t
(** [op_exn t name] = [find_op_exn name t]; convenient for partial
    application when building terms against a fixed spec. *)

val axioms_for : Op.t -> t -> Axiom.t list
(** Axioms whose left-hand-side head is the given operation. *)

val find_axiom : string -> t -> Axiom.t option

val sorts_of_interest : t -> Sort.t list
(** Sorts for which this specification declares at least one constructor. *)

val union : ?name:string -> t -> t -> t
(** Merge signatures, constructor sets, and axiom lists. Raises
    [Invalid_argument] on operation clashes (from [Signature.union]) or on
    clashing axiom names with different equations. *)

val union_all : name:string -> t list -> t

val with_axioms : Axiom.t list -> t -> t
(** Adds axioms (validated). *)

val without_axiom : string -> t -> t
(** Removes the named axiom; useful to seed incompleteness for testing the
    checker (paper section 3: boundary conditions "are particularly likely
    to be overlooked"). *)

val add_constructors : string list -> t -> t

val is_constructor_term : t -> Term.t -> bool
(** The term is built from constructors and variables only. *)

val is_constructor_ground_term : t -> Term.t -> bool

val pp : t Fmt.t
(** Paper-style rendering of the whole specification. *)
