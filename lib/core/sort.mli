(** Sorts (type names) of a many-sorted signature.

    A sort is the algebraic-specification name for a carrier set: [Queue],
    [Symboltable], [Boolean], ... Following Guttag (CACM 1977, section 2), a
    specification introduces one "type of interest" and refers to previously
    defined sorts; the builtin sort {!bool} is always available because the
    paper's axioms use Boolean-valued observers and [if-then-else]. *)

type t

val v : string -> t
(** [v name] is the sort named [name]. Raises [Invalid_argument] on the empty
    string. *)

val name : t -> string

val bool : t
(** The builtin Boolean sort, spelled ["Bool"]. *)

val is_bool : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
