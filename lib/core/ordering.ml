type precedence = Op.t -> Op.t -> int

let of_ranks ~rank a b =
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c
  else
    let c = String.compare (Op.name a) (Op.name b) in
    if c <> 0 then c else Op.compare a b

let of_list names =
  let position op =
    let rec find i = function
      | [] -> -1
      | n :: rest -> if String.equal n (Op.name op) then i else find (i + 1) rest
    in
    find 0 names
  in
  let rank op =
    let p = position op in
    if p < 0 then 0 else List.length names - p
  in
  of_ranks ~rank

let dependency_table spec =
  let ops = Signature.ops (Spec.signature spec) in
  let n = List.length ops in
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let base op = if Spec.is_constructor op spec then 0 else 1 in
  List.iter (fun op -> Hashtbl.replace tbl (Op.name op) (base op)) ops;
  let rank name = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
  let deps =
    List.map
      (fun ax ->
        let hd = Op.name (Axiom.head ax) in
        let called =
          Op.Set.elements (Term.ops (Axiom.rhs ax))
          |> List.map Op.name
          |> List.filter (fun g -> not (String.equal g hd))
        in
        (hd, called))
      (Spec.axioms spec)
  in
  let cap = n + 1 in
  for _ = 1 to n + 1 do
    List.iter
      (fun (f, called) ->
        List.iter
          (fun g ->
            let wanted = min cap (1 + rank g) in
            if wanted > rank f then Hashtbl.replace tbl f wanted)
          called)
      deps
  done;
  tbl

let dependency spec =
  let tbl = dependency_table spec in
  let rank name = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
  of_ranks ~rank:(fun op -> rank (Op.name op))

type head = Err_h | If_h | Op_h of Op.t

let head_of t =
  match Term.view t with
  | Term.Var _ -> None
  | Term.Err _ -> Some Err_h
  | Term.Ite _ -> Some If_h
  | Term.App (op, _) -> Some (Op_h op)

let compare_head prec a b =
  match (a, b) with
  | Err_h, Err_h -> 0
  | Err_h, _ -> -1
  | _, Err_h -> 1
  | If_h, If_h -> 0
  | If_h, _ -> -1
  | _, If_h -> 1
  | Op_h f, Op_h g -> prec f g

let children t =
  match Term.view t with
  | Term.Var _ | Term.Err _ -> []
  | Term.App (_, args) -> args
  | Term.Ite (c, t, e) -> [ c; t; e ]

let rec lpo_gt prec s t =
  if Term.equal s t then false
  else
    match (Term.view s, Term.view t) with
    | _, Term.Var (x, sx) -> (
      match Term.view s with
      | Term.Var _ -> false
      | _ -> List.mem (x, sx) (Term.vars s))
    | Term.Var _, _ -> false
    | _ ->
      let ss = children s and ts = children t in
      let case1 () =
        List.exists (fun si -> Term.equal si t || lpo_gt prec si t) ss
      in
      let dominates_args () = List.for_all (fun tj -> lpo_gt prec s tj) ts in
      let hs = Option.get (head_of s) and ht = Option.get (head_of t) in
      let hc = compare_head prec hs ht in
      if case1 () then true
      else if hc > 0 then dominates_args ()
      else if hc = 0 then lex_gt prec s ss ts && dominates_args ()
      else false

and lex_gt prec s ss ts =
  match (ss, ts) with
  | [], [] -> false
  | si :: ss', ti :: ts' ->
    if Term.equal si ti then lex_gt prec s ss' ts' else lpo_gt prec si ti
  | _ -> false

let orient prec (a, b) =
  if lpo_gt prec a b then Ok (a, b)
  else if lpo_gt prec b a then Ok (b, a)
  else
    Error
      (Fmt.str "cannot orient %a = %a under the given precedence" Term.pp a
         Term.pp b)

let orients_all prec axioms =
  let rec go = function
    | [] -> Ok ()
    | ax :: rest ->
      if lpo_gt prec (Axiom.lhs ax) (Axiom.rhs ax) then go rest else Error ax
  in
  go axioms

type search_result = {
  ranks : (string * int) list;
  unoriented : Axiom.t list;
}

let search_precedence sr =
  let rank op =
    Option.value ~default:0 (List.assoc_opt (Op.name op) sr.ranks)
  in
  of_ranks ~rank

let oriented sr = sr.unoriented = []

(* Greedy precedence search: start from the call-graph ranks (which orient
   every hierarchical specification already) and, while some executable
   axiom fails to decrease, raise its head's rank just above every
   operation of its right-hand side. Ranks only grow and are capped, so
   the repair loop terminates; it stops with the axioms that still resist
   — precedence bumps cannot help an equation like UNION(a,b) = UNION(b,a),
   whose two sides compare lexicographically under any precedence. Unlike
   [dependency], the search may promote a constructor above another when
   the specification rewrites constructor terms (non-free types such as a
   wrapping counter). *)
let search spec =
  let axioms = List.filter Axiom.is_executable (Spec.axioms spec) in
  let tbl = dependency_table spec in
  let rank_name name = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
  let prec () = of_ranks ~rank:(fun op -> rank_name (Op.name op)) in
  let cap = 2 * (Hashtbl.length tbl + 1) in
  let unoriented p =
    List.filter (fun ax -> not (lpo_gt p (Axiom.lhs ax) (Axiom.rhs ax))) axioms
  in
  let bump ax =
    let hd = Op.name (Axiom.head ax) in
    let wanted =
      Op.Set.fold
        (fun g acc ->
          if String.equal (Op.name g) hd then acc
          else max acc (1 + rank_name (Op.name g)))
        (Term.ops (Axiom.rhs ax))
        (rank_name hd)
    in
    let wanted = min cap wanted in
    if wanted > rank_name hd then begin
      Hashtbl.replace tbl hd wanted;
      true
    end
    else false
  in
  let rec loop () =
    match unoriented (prec ()) with
    | [] -> []
    | failing -> if List.exists bump failing then loop () else failing
  in
  let unoriented = loop () in
  let ranks =
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { ranks; unoriented }
