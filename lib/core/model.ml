exception Impl_error of string

type 'r value = Rep of 'r | Foreign of Term.t

type 'r t = {
  model_name : string;
  interp : string -> 'r value list -> 'r value option;
  abstraction : 'r -> Term.t;
}

let value_to_term model = function
  | Rep r -> model.abstraction r
  | Foreign t -> t

exception Error_at of Sort.t

let no_env : string -> 'a value option = fun _ -> None

let eval_sys ?(env = no_env) sys model term =
  let rec go term =
    match Term.view term with
    | Term.Var (x, _) -> (
      match env x with
      | Some v -> v
      | None ->
        invalid_arg
          (Fmt.str "Model.eval: term %a has free variables" Term.pp term))
    | Term.Err s -> raise (Error_at s)
    | Term.Ite (c, th, el) -> (
      match go c with
      | Foreign t when Term.equal t Term.tt -> go th
      | Foreign t when Term.equal t Term.ff -> go el
      | _ -> raise (Error_at (Term.sort_of th)))
    | Term.App (op, args) -> (
      let vals =
        List.map
          (fun arg ->
            match go arg with
            | v -> v
            | exception Error_at _ -> raise (Error_at (Op.result op)))
          args
      in
      match model.interp (Op.name op) vals with
      | Some v -> v
      | None -> (
        (* foreign operation: evaluate symbolically on the abstract terms *)
        let arg_terms = List.map (value_to_term model) vals in
        match Rewrite.normalize_opt sys (Term.app op arg_terms) with
        | Some nf when Term.is_error nf -> raise (Error_at (Term.sort_of nf))
        | Some nf -> Foreign nf
        | None -> raise (Error_at (Op.result op)))
      | exception Impl_error _ -> raise (Error_at (Op.result op)))
  in
  match go term with v -> Ok v | exception Error_at s -> Error s

let to_term_sys sys model = function
  | Ok v -> (
    let t = value_to_term model v in
    match Rewrite.normalize_opt sys t with Some nf -> nf | None -> t)
  | Error s -> Term.err s

let eval spec model term = eval_sys (Rewrite.of_spec spec) model term
let to_term spec model result = to_term_sys (Rewrite.of_spec spec) model result

(* {2 Precompiled evaluation contexts}

   [eval] recompiles the specification's rewrite system on every call; a
   harness evaluating thousands of terms against one model compiles once
   and reuses the system through a [ctx]. The optional [env] gives values
   to chosen free variables — the conformance harness ([lib/testgen])
   evaluates observation contexts [C[#]] by binding the hole variable [#]
   to an already-computed representation value. *)

type 'r ctx = { ctx_spec : Spec.t; ctx_sys : Rewrite.system; ctx_model : 'r t }

let ctx spec model =
  { ctx_spec = spec; ctx_sys = Rewrite.of_spec spec; ctx_model = model }

let ctx_spec c = c.ctx_spec
let ctx_eval ?env c term = eval_sys ?env c.ctx_sys c.ctx_model term
let ctx_denote c result = to_term_sys c.ctx_sys c.ctx_model result

type counterexample = {
  axiom : Axiom.t;
  valuation : Subst.t;
  lhs_denotes : Term.t;
  rhs_denotes : Term.t;
}

let check_instance sys model axiom valuation =
  let lhs, rhs = Axiom.instantiate valuation axiom in
  let denote side = to_term_sys sys model (eval_sys sys model side) in
  let lhs_denotes = denote lhs and rhs_denotes = denote rhs in
  if Term.equal lhs_denotes rhs_denotes then None
  else Some { axiom; valuation; lhs_denotes; rhs_denotes }

let check_axiom universe model ~size axiom =
  let sys = Rewrite.of_spec (Enum.spec universe) in
  let substs = Enum.substitutions_up_to universe (Axiom.vars axiom) ~size in
  List.find_map (check_instance sys model axiom) substs

let check universe model ~size =
  let spec = Enum.spec universe in
  let sys = Rewrite.of_spec spec in
  let rec go verified = function
    | [] -> Ok verified
    | axiom :: rest -> (
      let substs = Enum.substitutions_up_to universe (Axiom.vars axiom) ~size in
      match List.find_map (check_instance sys model axiom) substs with
      | Some cex -> Error cex
      | None -> go (verified + List.length substs) rest)
  in
  go 0 (Spec.axioms spec)

let check_random universe model ~count ~size state =
  let spec = Enum.spec universe in
  let sys = Rewrite.of_spec spec in
  let axioms = Array.of_list (Spec.axioms spec) in
  if Array.length axioms = 0 then Ok 0
  else
    let rec go verified remaining =
      if remaining = 0 then Ok verified
      else
        let axiom = axioms.(Random.State.int state (Array.length axioms)) in
        match
          Enum.random_substitution universe (Axiom.vars axiom) ~size state
        with
        | None -> go verified (remaining - 1)
        | Some valuation -> (
          match check_instance sys model axiom valuation with
          | Some cex -> Error cex
          | None -> go (verified + 1) (remaining - 1))
    in
    go 0 count

let pp_counterexample ppf c =
  Fmt.pf ppf
    "@[<v 2>axiom %a@,fails at %a:@,left denotes  %a@,right denotes %a@]"
    Axiom.pp c.axiom Subst.pp c.valuation Term.pp c.lhs_denotes Term.pp
    c.rhs_denotes
