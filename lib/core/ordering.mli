(** Term orderings for orienting equations.

    A lexicographic path ordering (LPO) over many-sorted terms, used by
    {!Completion} to orient equations into terminating rewrite rules and by
    callers that want a termination argument for a specification's rules.

    The builtin [if-then-else] is treated as a function symbol just above
    [error] and below every proper operation; with that placement each of
    the paper's axioms orients left to right under the {!dependency}
    precedence (the defined operation dominates the operations its
    right-hand sides call). *)

type precedence = Op.t -> Op.t -> int
(** A total (pre)order on operation symbols; [> 0] means the first operation
    is greater. Equal operations must compare equal. *)

val of_ranks : rank:(Op.t -> int) -> precedence
(** Compare by rank, ties broken by name, then full structural compare. *)

val of_list : string list -> precedence
(** Earlier names are {e greater}; names absent from the list are smaller
    than present ones and ordered alphabetically. *)

val dependency : Spec.t -> precedence
(** Precedence derived from the call graph of the specification: operation
    [f] depends on [g] when [g] occurs on the right-hand side of an axiom
    whose head is [f]. The rank of an operation is the longest dependency
    chain below it (cycles collapse to one rank); constructors rank lowest.
    This orients all axioms of hierarchical specifications in the paper's
    style, including across [Spec.union]. *)

val lpo_gt : precedence -> Term.t -> Term.t -> bool
(** Strict LPO comparison. Variables are minimal: [lpo_gt s (Var x)] holds
    iff [x] occurs in [s] and [s <> Var x]. *)

val orient :
  precedence -> Term.t * Term.t -> (Term.t * Term.t, string) result
(** Orders a pair into (greater, smaller), or explains why it cannot. *)

val orients_all : precedence -> Axiom.t list -> (unit, Axiom.t) result
(** Checks every axiom decreases left to right — a termination certificate
    for the specification's rewrite system. Returns the first offending
    axiom on failure. *)

(** {1 Precedence search}

    The recursive-path-ordering prover behind the ADT021 termination pass:
    rather than fixing one precedence up front, search for one that
    orients every executable axiom. *)

type search_result = {
  ranks : (string * int) list;
      (** The searched precedence as operation-name ranks, sorted by name. *)
  unoriented : Axiom.t list;
      (** Executable axioms no searched precedence bump could orient;
          empty on success. *)
}

val search : Spec.t -> search_result
(** Greedy precedence search seeded from the {!dependency} call-graph
    ranks: while an executable axiom fails to decrease under the current
    LPO, raise its head operation's rank just above every operation of its
    right-hand side, until every axiom orients or no bump makes progress
    (ranks are capped, so the search terminates). [unoriented = []] is a
    termination certificate for the specification's rewrite system under
    {!search_precedence}. *)

val search_precedence : search_result -> precedence
(** The precedence the search settled on ({!of_ranks} over [ranks]). *)

val oriented : search_result -> bool
(** [unoriented = []]. *)
