type rule = { rule_name : string; lhs : Term.t; rhs : Term.t }

let rule ?(name = "") ~lhs ~rhs () =
  (match Term.view lhs with
  | Term.App _ -> ()
  | Term.Var _ | Term.Err _ | Term.Ite _ ->
    (* only application-headed left-hand sides can ever match: the redex
       finder dispatches on the head operation, and error / if-then-else
       reduction is builtin *)
    invalid_arg
      "Rewrite.rule: left-hand side must be an operation application");
  if not (Sort.equal (Term.sort_of lhs) (Term.sort_of rhs)) then
    invalid_arg "Rewrite.rule: sides have different sorts";
  let lvars = Term.vars lhs in
  List.iter
    (fun (x, s) ->
      if not (List.mem (x, s) lvars) then
        invalid_arg
          (Fmt.str "Rewrite.rule: right-hand side variable %s not bound on the left" x))
    (Term.vars rhs);
  { rule_name = name; lhs; rhs }

let rule_of_axiom ax =
  { rule_name = Axiom.name ax; lhs = Axiom.lhs ax; rhs = Axiom.rhs ax }

let axiom_of_rule r = Axiom.v ~name:r.rule_name ~lhs:r.lhs ~rhs:r.rhs ()

let pp_rule ppf r =
  if String.equal r.rule_name "" then
    Fmt.pf ppf "@[<hov 2>%a ->@ %a@]" Term.pp r.lhs Term.pp r.rhs
  else
    Fmt.pf ppf "@[<hov 2>[%s] %a ->@ %a@]" r.rule_name Term.pp r.lhs Term.pp
      r.rhs

module String_map = Map.Make (String)

(* {2 Engine selection}

   Three engines share one [system] value and agree on every observable
   (normal forms, step counts, error strictness, fuel exhaustion —
   [test/test_diff.ml] is the proof):

   - [Reference]: the naive pre-index engine — linear rule scan, deep
     structural equality. The slowest; kept as the differential oracle.
   - [Index]: the two-level index — head symbol, then first-argument
     constructor fingerprint; candidates re-matched structurally.
   - [Automaton]: the compiled matching automaton ([Match_tree]) —
     every subterm inspected once, no substitution maps, rule firing
     through precomputed right-hand-side templates. The default.

   The process-wide default seeds each compiled system's dispatch
   engine; it is initialized from the ADTC_ENGINE environment variable
   ("reference" | "index" | "auto") and settable by the CLI's --engine
   flag. A system remembers its engine, so interpreters forked from it
   (and every domain of the server pool) dispatch identically. *)

type engine = Reference | Index | Automaton

let engine_name = function
  | Reference -> "reference"
  | Index -> "index"
  | Automaton -> "auto"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "reference" -> Some Reference
  | "index" | "indexed" -> Some Index
  | "auto" | "automaton" -> Some Automaton
  | _ -> None

let default_engine_ref =
  ref
    (match Sys.getenv_opt "ADTC_ENGINE" with
    | None | Some "" -> Automaton
    | Some s -> (
      match engine_of_string s with
      | Some e -> e
      | None ->
        Fmt.epr
          "adtc: ignoring ADTC_ENGINE=%S (expected reference|index|auto)@." s;
        Automaton))

let default_engine () = !default_engine_ref
let set_default_engine e = default_engine_ref := e

(* {2 The compiled two-level rule index}

   Rules are grouped by head symbol, then discriminated a second time on
   the shape of the subject's {e first argument} — the argument the corpus
   axioms case-split on (FRONT(NEW) vs FRONT(ADD(q,i)), RETRIEVE'(INIT')
   vs RETRIEVE'(ADD'(...)), ...). A rule whose first-argument pattern is a
   variable matches any subject, so it is {e generic}: it appears in the
   generic list and is merged into every fingerprint bucket. A rule whose
   first-argument pattern opens with constructor [g] can only match a
   subject whose first argument opens with [g], so it appears in bucket
   [g] alone. Each bucket is a filter of the priority-ordered per-head
   list, so relative axiom priority inside a bucket is exactly the
   declaration order — the same order the linear scan tries.

   Soundness of skipping: a pattern headed by [App g] cannot match a
   subject whose first argument is a variable, an [error], an
   if-then-else, or an application of a different head; likewise for
   [Err]/[Ite]-headed patterns. The bucket for a fingerprint therefore
   contains a superset of the rules that can match any subject with that
   fingerprint, and the matcher itself still verifies each candidate. *)

type compiled = {
  head_rules : rule list; (* every rule with this head, priority order *)
  generic : rule list; (* rules whose first-argument pattern is a variable *)
  by_fp : rule list String_map.t;
      (* first-argument fingerprint -> specific + generic rules, merged in
         priority order *)
}

(* fingerprint keys: operation names prefixed to stay disjoint from the
   builtin error / if-then-else shapes *)
let fp_op name = "o:" ^ name
let fp_err = "e"
let fp_ite = "i"

let first_pat r =
  match Term.view r.lhs with
  | Term.App (_, p :: _) -> Some p
  | _ -> None

(* [None] = generic: matches any first argument *)
let fp_of_rule r =
  match first_pat r with
  | None -> None
  | Some p -> (
    match Term.view p with
    | Term.Var _ -> None
    | Term.App (g, _) -> Some (fp_op (Op.name g))
    | Term.Err _ -> Some fp_err
    | Term.Ite _ -> Some fp_ite)

let compile_bucket head_rules =
  let generic = List.filter (fun r -> fp_of_rule r = None) head_rules in
  let fps =
    List.sort_uniq String.compare (List.filter_map fp_of_rule head_rules)
  in
  let by_fp =
    List.fold_left
      (fun m fp ->
        let merged =
          List.filter
            (fun r ->
              match fp_of_rule r with
              | None -> true (* generic: can match any fingerprint *)
              | Some f -> String.equal f fp)
            head_rules
        in
        String_map.add fp merged m)
      String_map.empty fps
  in
  { head_rules; generic; by_fp }

type system = {
  all : rule list; (* priority order: earlier rules tried first *)
  by_head : compiled String_map.t;
  trees : (string, rule Match_tree.t) Hashtbl.t;
      (* the matching automaton, one per head symbol; built once in
         [of_rules] and never mutated after, so sharing it across
         [with_engine] copies and across domains is safe *)
  engine : engine; (* which engine this system's entry points dispatch to *)
}

let head_name r =
  match Term.view r.lhs with
  | Term.App (op, _) -> Op.name op
  | Term.Ite _ -> "<if>"
  | Term.Err _ -> "<error>"
  | Term.Var _ -> assert false

let group_by_head rules =
  List.fold_left
    (fun m r ->
      let key = head_name r in
      let existing = Option.value ~default:[] (String_map.find_opt key m) in
      String_map.add key (existing @ [ r ]) m)
    String_map.empty rules

let index rules = String_map.map compile_bucket (group_by_head rules)

(* one automaton per head-symbol group; the automaton's own root switch
   re-verifies the exact operation ([Op.equal]), so two operations that
   share a name but not a rank never cross-match *)
let compile_trees rules =
  let groups = group_by_head rules in
  let tbl = Hashtbl.create (max 16 (String_map.cardinal groups)) in
  String_map.iter
    (fun head head_rules ->
      Hashtbl.replace tbl head
        (Match_tree.compile
           (List.map (fun r -> (r, r.lhs, r.rhs)) head_rules)))
    groups;
  tbl

let of_rules ?engine all =
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  { all; by_head = index all; trees = compile_trees all; engine }

let of_spec ?engine spec =
  (* an axiom with free right-hand-side variables (parsed leniently so the
     analyzer can flag it as ADT011) is not a rule: firing it would invent
     unbound variables and break groundness, so it is skipped here *)
  of_rules ?engine
    (List.map rule_of_axiom
       (List.filter Axiom.is_executable (Spec.axioms spec)))

(* added rules inherit the host system's engine, not the global default:
   completion grows systems incrementally and must stay self-consistent *)
let add_rules extra sys = of_rules ~engine:sys.engine (extra @ sys.all)
let add_axioms axs sys = add_rules (List.map rule_of_axiom axs) sys
let rules sys = sys.all
let size sys = List.length sys.all
let engine_of sys = sys.engine
let with_engine engine sys = { sys with engine }

type strategy = Innermost | Outermost

exception Out_of_fuel of Term.t

let default_fuel = 200_000

(* {2 The matchers}

   Every engine reduces to one shape: a redex finder
   [Term.t -> (rule * Term.t) option] answering the first matching rule
   (priority order) and the instantiated right-hand side. The generic
   strategy loops below are engine-blind — they only consume finders. *)

(* the naive structural matcher, shared by the [Reference] engine and the
   reference finder: binds and compares with deep structural equality and
   never consults ids, precomputed hashes, or the intern table *)
module Linear = struct
  let rec match_term pattern subject bindings =
    match (Term.view pattern, Term.view subject) with
    | Term.Var (x, sort), _ ->
      if not (Sort.equal sort (Term.sort_of subject)) then None
      else (
        match String_map.find_opt x bindings with
        | Some prev ->
          if Term.structural_equal prev subject then Some bindings else None
        | None -> Some (String_map.add x subject bindings))
    | Term.Err sp, Term.Err st ->
      if Sort.equal sp st then Some bindings else None
    | Term.App (f, ps), Term.App (g, ts) when Op.equal f g ->
      match_list ps ts bindings
    | Term.Ite (c1, t1, e1), Term.Ite (c2, t2, e2) ->
      match_list [ c1; t1; e1 ] [ c2; t2; e2 ] bindings
    | _ -> None

  and match_list ps ts bindings =
    match (ps, ts) with
    | [], [] -> Some bindings
    | p :: ps, t :: ts -> (
      match match_term p t bindings with
      | Some bindings -> match_list ps ts bindings
      | None -> None)
    | _ -> None

  let apply bindings rhs =
    Term.map_vars
      (fun x sort ->
        match String_map.find_opt x bindings with
        | Some t -> t
        | None -> Term.var x sort)
      rhs

  (* linear scan: every rule, in priority order, no dispatch at all *)
  let find_redex sys t =
    match Term.view t with
    | Term.App _ ->
      let rec first = function
        | [] -> None
        | r :: rest -> (
          match match_term r.lhs t String_map.empty with
          | Some s -> Some (r, s)
          | None -> first rest)
      in
      first sys.all
    | _ -> None
end

(* second-level dispatch: pick the bucket for the subject's first
   argument; a fingerprint no rule specializes on falls back to the
   generic rules (the only ones that could match) *)
let candidate_rules sys op args =
  match String_map.find_opt (Op.name op) sys.by_head with
  | None -> []
  | Some c -> (
    match args with
    | [] -> c.head_rules
    | a1 :: _ -> (
      let fp_bucket fp =
        match String_map.find_opt fp c.by_fp with
        | Some rs -> rs
        | None -> c.generic
      in
      match Term.view a1 with
      | Term.Var _ -> c.generic
      | Term.App (g, _) -> fp_bucket (fp_op (Op.name g))
      | Term.Err _ -> fp_bucket fp_err
      | Term.Ite _ -> fp_bucket fp_ite))

let find_index sys t =
  match Term.view t with
  | Term.App (op, args) ->
    let rec first = function
      | [] -> None
      | r :: rest -> (
        match Subst.match_term ~pattern:r.lhs t with
        | Some s -> Some (r, Subst.apply s r.rhs)
        | None -> first rest)
    in
    first (candidate_rules sys op args)
  | _ -> None

let find_automaton sys t =
  match Term.view t with
  | Term.App (op, _) -> (
    match Hashtbl.find_opt sys.trees (Op.name op) with
    | None -> None
    | Some tree -> Match_tree.run tree t)
  | _ -> None

let find_reference sys t =
  match Linear.find_redex sys t with
  | Some (r, s) -> Some (r, Linear.apply s r.rhs)
  | None -> None

let finder sys =
  match sys.engine with
  | Reference -> find_reference sys
  | Index -> find_index sys
  | Automaton -> find_automaton sys

(* Leftmost-innermost normalization.  [on_apply] is called once per rule
   application and may raise to abort. *)
let innermost ~find ~on_apply term =
  let rec norm t =
    match Term.view t with
    | Term.Var _ | Term.Err _ -> t
    | Term.Ite (c, th, el) -> (
      let c' = norm c in
      if Term.equal c' Term.tt then norm th
      else if Term.equal c' Term.ff then norm el
      else
        match Term.view c' with
        | Term.Err _ -> Term.err (Term.sort_of th)
        | _ ->
          (* stuck conditional: branches stay frozen, otherwise recursive
             definitions would unfold without bound under an undecided
             condition (ground conditions always decide, so evaluation is
             unaffected) *)
          Term.ite_unchecked c' th el)
    | Term.App (op, args) -> (
      let args' = List.map norm args in
      if List.exists Term.is_error args' then Term.err (Op.result op)
      else
        let t' =
          if List.for_all2 ( == ) args args' then t
          else Term.app_unchecked op args'
        in
        match find t' with
        | None -> t'
        | Some (r, reduct) ->
          on_apply r;
          norm reduct)
  in
  norm term

(* One leftmost-outermost step, or None. *)
let rec outer_step ~find t =
  match Term.view t with
  | Term.Var _ | Term.Err _ -> None
  | Term.Ite (c, th, el) -> (
    if Term.equal c Term.tt then Some (th, "<if>")
    else if Term.equal c Term.ff then Some (el, "<if>")
    else
      match Term.view c with
      | Term.Err _ -> Some (Term.err (Term.sort_of th), "<error>")
      | _ -> (
        (* branches of a stuck conditional are frozen, as in [innermost] *)
        match outer_step ~find c with
        | Some (c', n) -> Some (Term.ite_unchecked c' th el, n)
        | None -> None))
  | Term.App (op, args) -> (
    if List.exists Term.is_error args then
      Some (Term.err (Op.result op), "<error>")
    else
      match find t with
      | Some (r, reduct) -> Some (reduct, r.rule_name)
      | None ->
        let rec step_child i = function
          | [] -> None
          | a :: rest -> (
            match outer_step ~find a with
            | Some (a', n) ->
              let args' =
                List.mapi (fun j x -> if j = i then a' else x) args
              in
              Some (Term.app_unchecked op args', n)
            | None -> step_child (i + 1) rest)
        in
        step_child 0 args)

let outermost ~find ~on_apply term =
  let rec go t =
    match outer_step ~find t with
    | None -> t
    | Some (t', name) ->
      if not (String.equal name "<if>" || String.equal name "<error>") then
        on_apply { rule_name = name; lhs = t; rhs = t' };
      go t'
  in
  go term

exception Fuel_exhausted

let no_poll () = ()

(* [on_rule] is the observability sibling of [poll]: called with the
   rule's name at every application, it feeds per-rule firing attribution
   (the tracer of lib/obs) through the same site that charges fuel and
   checks the deadline. [None] by default, so uninstrumented callers pay
   only one option test per application. *)
let fire on_rule r =
  match on_rule with None -> () | Some f -> f r.rule_name

let run_with_find ~find ?(strategy = Innermost) ?(fuel = default_fuel)
    ?(poll = no_poll) ?on_rule ~on_apply term =
  let remaining = ref fuel in
  let counted r =
    (* a dedicated exception: a caller-supplied [on_apply] may raise its
       own exceptions (Exit included) to abort, and those must not be
       misreported as fuel exhaustion *)
    if !remaining <= 0 then raise Fuel_exhausted;
    decr remaining;
    poll ();
    fire on_rule r;
    on_apply r
  in
  try
    match strategy with
    | Innermost -> innermost ~find ~on_apply:counted term
    | Outermost -> outermost ~find ~on_apply:counted term
  with Fuel_exhausted -> raise (Out_of_fuel term)

(* {2 The fused automaton loop}

   Innermost normalization interleaved with template instantiation. The
   generic loop above fires a rule by instantiating its full right-hand
   side and re-normalizing the result — which re-walks every fetched
   subterm even though, under innermost rewriting, a subterm bound at a
   non-frozen pattern position is already in normal form (the arguments
   were normalized before matching, and innermost normal forms are
   norm-fixpoints). Here the leaf's {!Match_tree.builder} template is
   normalized directly instead: [Fetch]ed registers are returned without
   a walk, [Fetch_frozen] registers (bound through the branch of an
   if-then-else pattern, where stuck conditionals keep frozen redexes)
   are re-normalized, and constructed nodes are normalized
   bottom-up as the template unfolds. Rule firing order and count are
   exactly the generic loop's: normalizing the instantiated reduct
   leftmost-innermost visits the same redexes in the same order, and
   skipped fetches contribute zero firings either way. The differential
   harness ([test/test_diff.ml]) pins this equivalence — normal form
   {e and} step count — against both oracle engines on every corpus
   specification. *)

let template_of sys t =
  match Term.view t with
  | Term.App (op, _) -> (
    match Hashtbl.find_opt sys.trees (Op.name op) with
    | None -> None
    | Some tree -> Match_tree.run_template tree t)
  | _ -> None

let automaton_innermost ~on_apply sys term =
  let rec norm t =
    match Term.view t with
    | Term.Var _ | Term.Err _ -> t
    | Term.Ite (c, th, el) -> (
      let c' = norm c in
      if Term.equal c' Term.tt then norm th
      else if Term.equal c' Term.ff then norm el
      else
        match Term.view c' with
        | Term.Err _ -> Term.err (Term.sort_of th)
        | _ -> Term.ite_unchecked c' th el)
    | Term.App (op, args) ->
      let args' = List.map norm args in
      if List.exists Term.is_error args' then Term.err (Op.result op)
      else if List.for_all2 ( == ) args args' then reduce t
      else reduce_app op args'
  (* [t'] has normalized arguments: match at the root and, on success,
     normalize the template rather than the instantiated reduct *)
  and reduce t' =
    match template_of sys t' with
    | None -> t'
    | Some (r, regs, builder) ->
      on_apply r;
      build regs builder
  (* the same, for an application not interned yet: a fired redex node is
     discarded immediately, so it is only interned when no rule matches
     and the node is the (normal-form) result *)
  and reduce_app op args' =
    match Hashtbl.find_opt sys.trees (Op.name op) with
    | None -> Term.app_unchecked op args'
    | Some tree -> (
      match Match_tree.run_template_app tree op args' with
      | None -> Term.app_unchecked op args'
      | Some (r, regs, builder) ->
        on_apply r;
        build regs builder)
  (* [build regs b = norm (Match_tree.instantiate regs b)], with the
     walk over already-normal fetched subterms elided *)
  and build regs = function
    | Match_tree.Ready t -> norm t (* ground, but may hold redexes *)
    | Match_tree.Fetch r -> regs.(r)
    | Match_tree.Fetch_frozen r -> norm regs.(r)
    | Match_tree.Build_app (op, bs) ->
      let args' = List.map (build regs) bs in
      if List.exists Term.is_error args' then Term.err (Op.result op)
      else reduce_app op args'
    | Match_tree.Build_ite (c, a, b) -> (
      let c' = build regs c in
      if Term.equal c' Term.tt then build regs a
      else if Term.equal c' Term.ff then build regs b
      else
        match Term.view c' with
        | Term.Err _ -> Term.err (Term.sort_of (Match_tree.instantiate regs a))
        | _ ->
          (* stuck: freeze the branches instantiated but unnormalized,
             exactly as the generic loop leaves them *)
          Term.ite_unchecked c'
            (Match_tree.instantiate regs a)
            (Match_tree.instantiate regs b))
  in
  norm term

let run_fused ?(fuel = default_fuel) ?(poll = no_poll) ?on_rule ~on_apply sys
    term =
  let remaining = ref fuel in
  let counted r =
    if !remaining <= 0 then raise Fuel_exhausted;
    decr remaining;
    poll ();
    fire on_rule r;
    on_apply r
  in
  try automaton_innermost ~on_apply:counted sys term
  with Fuel_exhausted -> raise (Out_of_fuel term)

(* {1 The reference engine}

   A deliberately naive copy of the rewriting algorithm from before the
   index and hash-consing landed: rules are scanned linearly in priority
   order, matching binds and compares with deep structural equality, and
   nothing consults ids, precomputed hashes, or the intern table. It is
   the oracle the differential harness ([test/test_diff.ml]) normalizes
   every random term against — byte-for-byte the same strategy, error
   strictness, if-then-else laziness, and fuel accounting, only slower. *)

module Reference = struct
  let find_redex = Linear.find_redex
  let apply = Linear.apply

  let innermost ~on_apply sys term =
    let rec norm t =
      match Term.view t with
      | Term.Var _ | Term.Err _ -> t
      | Term.Ite (c, th, el) -> (
        let c' = norm c in
        if Term.structural_equal c' Term.tt then norm th
        else if Term.structural_equal c' Term.ff then norm el
        else
          match Term.view c' with
          | Term.Err _ -> Term.err (Term.sort_of th)
          | _ -> Term.ite_unchecked c' th el)
      | Term.App (op, args) -> (
        let args' = List.map norm args in
        if List.exists Term.is_error args' then Term.err (Op.result op)
        else
          let t' = Term.app_unchecked op args' in
          match find_redex sys t' with
          | None -> t'
          | Some (r, s) ->
            on_apply r;
            norm (apply s r.rhs))
    in
    norm term

  let rec outer_step sys t =
    match Term.view t with
    | Term.Var _ | Term.Err _ -> None
    | Term.Ite (c, th, el) -> (
      if Term.structural_equal c Term.tt then Some (th, "<if>")
      else if Term.structural_equal c Term.ff then Some (el, "<if>")
      else
        match Term.view c with
        | Term.Err _ -> Some (Term.err (Term.sort_of th), "<error>")
        | _ -> (
          match outer_step sys c with
          | Some (c', n) -> Some (Term.ite_unchecked c' th el, n)
          | None -> None))
    | Term.App (op, args) -> (
      if List.exists Term.is_error args then
        Some (Term.err (Op.result op), "<error>")
      else
        match find_redex sys t with
        | Some (r, s) -> Some (apply s r.rhs, r.rule_name)
        | None ->
          let rec step_child i = function
            | [] -> None
            | a :: rest -> (
              match outer_step sys a with
              | Some (a', n) ->
                let args' =
                  List.mapi (fun j x -> if j = i then a' else x) args
                in
                Some (Term.app_unchecked op args', n)
              | None -> step_child (i + 1) rest)
          in
          step_child 0 args)

  let outermost ~on_apply sys term =
    let rec go t =
      match outer_step sys t with
      | None -> t
      | Some (t', name) ->
        if not (String.equal name "<if>" || String.equal name "<error>") then
          on_apply { rule_name = name; lhs = t; rhs = t' };
        go t'
    in
    go term

  let run ?(strategy = Innermost) ?(fuel = default_fuel) ?(poll = no_poll)
      ?on_rule ~on_apply sys term =
    let remaining = ref fuel in
    let counted r =
      if !remaining <= 0 then raise Fuel_exhausted;
      decr remaining;
      poll ();
      fire on_rule r;
      on_apply r
    in
    try
      match strategy with
      | Innermost -> innermost ~on_apply:counted sys term
      | Outermost -> outermost ~on_apply:counted sys term
    with Fuel_exhausted -> raise (Out_of_fuel term)

  let normalize ?strategy ?fuel ?poll ?on_rule sys term =
    run ?strategy ?fuel ?poll ?on_rule ~on_apply:(fun _ -> ()) sys term

  let normalize_opt ?strategy ?fuel ?poll ?on_rule sys term =
    match normalize ?strategy ?fuel ?poll ?on_rule sys term with
    | t -> Some t
    | exception Out_of_fuel _ -> None

  let normalize_count ?strategy ?fuel ?poll ?on_rule sys term =
    let n = ref 0 in
    let t =
      run ?strategy ?fuel ?poll ?on_rule ~on_apply:(fun _ -> incr n) sys term
    in
    (t, !n)
end

(* {1 Engine-dispatched entry points}

   [normalize] and friends follow the system's engine. The [Reference]
   engine keeps its historically separate loop (structural equality
   everywhere — the whole point of the oracle); [Index] and [Automaton]
   share the generic loops above, differing only in the redex finder. *)

let run ?(strategy = Innermost) ?fuel ?poll ?on_rule ~on_apply sys term =
  match (sys.engine, strategy) with
  | Reference, _ ->
    Reference.run ~strategy ?fuel ?poll ?on_rule ~on_apply sys term
  | Automaton, Innermost ->
    run_fused ?fuel ?poll ?on_rule ~on_apply sys term
  | (Index | Automaton), _ ->
    run_with_find ~find:(finder sys) ~strategy ?fuel ?poll ?on_rule ~on_apply
      term

let normalize ?strategy ?fuel ?poll ?on_rule sys term =
  run ?strategy ?fuel ?poll ?on_rule ~on_apply:(fun _ -> ()) sys term

let normalize_opt ?strategy ?fuel ?poll ?on_rule sys term =
  match normalize ?strategy ?fuel ?poll ?on_rule sys term with
  | t -> Some t
  | exception Out_of_fuel _ -> None

let normalize_count ?strategy ?fuel ?poll ?on_rule sys term =
  let n = ref 0 in
  let t =
    run ?strategy ?fuel ?poll ?on_rule ~on_apply:(fun _ -> incr n) sys term
  in
  (t, !n)

let joinable ?strategy ?fuel sys a b =
  match
    (normalize_opt ?strategy ?fuel sys a, normalize_opt ?strategy ?fuel sys b)
  with
  | Some na, Some nb -> Term.equal na nb
  | _ -> false

(* pinned-engine entry points: the same system value, dispatched to one
   engine regardless of [engine_of] — what the differential harness and
   the E18 bench quantify over *)

module Index = struct
  let normalize ?strategy ?fuel ?poll ?on_rule sys term =
    run_with_find ~find:(find_index sys) ?strategy ?fuel ?poll ?on_rule
      ~on_apply:(fun _ -> ()) term

  let normalize_opt ?strategy ?fuel ?poll ?on_rule sys term =
    match normalize ?strategy ?fuel ?poll ?on_rule sys term with
    | t -> Some t
    | exception Out_of_fuel _ -> None

  let normalize_count ?strategy ?fuel ?poll ?on_rule sys term =
    let n = ref 0 in
    let t =
      run_with_find ~find:(find_index sys) ?strategy ?fuel ?poll ?on_rule
        ~on_apply:(fun _ -> incr n) term
    in
    (t, !n)
end

module Automaton = struct
  let run_pinned ?(strategy = Innermost) ?fuel ?poll ?on_rule ~on_apply sys
      term =
    match strategy with
    | Innermost -> run_fused ?fuel ?poll ?on_rule ~on_apply sys term
    | Outermost ->
      run_with_find ~find:(find_automaton sys) ~strategy:Outermost ?fuel ?poll
        ?on_rule ~on_apply term

  let normalize ?strategy ?fuel ?poll ?on_rule sys term =
    run_pinned ?strategy ?fuel ?poll ?on_rule ~on_apply:(fun _ -> ()) sys term

  let normalize_opt ?strategy ?fuel ?poll ?on_rule sys term =
    match normalize ?strategy ?fuel ?poll ?on_rule sys term with
    | t -> Some t
    | exception Out_of_fuel _ -> None

  let normalize_count ?strategy ?fuel ?poll ?on_rule sys term =
    let n = ref 0 in
    let t =
      run_pinned ?strategy ?fuel ?poll ?on_rule
        ~on_apply:(fun _ -> incr n)
        sys term
    in
    (t, !n)
end

module Term_lru = Lru.Make (struct
  type t = Term.t

  (* hash-consing makes structural equality physical and gives every term
     a unique id: the memo keys on identity, no structural hashing at all *)
  let equal = Term.equal
  let hash = Term.id
end)

module Memo = struct
  type t = {
    cache : Term.t Term_lru.t;
    mutable hits : int;
    mutable misses : int;
  }

  let default_capacity = Term_lru.default_capacity

  let create ?capacity () =
    { cache = Term_lru.create ?capacity (); hits = 0; misses = 0 }

  let clear m =
    Term_lru.clear m.cache;
    m.hits <- 0;
    m.misses <- 0

  let size m = Term_lru.length m.cache
  let capacity m = Term_lru.capacity m.cache
  let hits m = m.hits
  let misses m = m.misses
  let evictions m = Term_lru.evictions m.cache
end

(* the fused-automaton memo loop: the memo is consulted at application
   nodes of the subject and at nodes the right-hand-side template
   {e constructs}; [Fetch]ed registers are returned without even a probe
   (they are already normal — a probe could only hit). Terms below
   [memo_cutoff] bypass the memo entirely: a cache transaction (probe
   plus insert) costs about as much as re-reducing a tiny term, so
   caching them burns time and capacity to save neither. The cached
   mapping is term-to-normal-form either way, so the memo stays exchange-
   able across engines; only the hit/miss counters differ from the
   generic loop's, because the probe points do. *)
let memo_cutoff = 8

let automaton_memo_count ?(fuel = default_fuel) ?(poll = no_poll) ?on_rule
    ~memo sys term =
  let remaining = ref fuel in
  let rec norm t =
    match Term.view t with
    | Term.Var _ | Term.Err _ -> t
    | Term.Ite (c, th, el) -> (
      let c' = norm c in
      if Term.equal c' Term.tt then norm th
      else if Term.equal c' Term.ff then norm el
      else
        match Term.view c' with
        | Term.Err _ -> Term.err (Term.sort_of th)
        | _ -> Term.ite_unchecked c' th el)
    | Term.App (op, args) when Term.size t >= memo_cutoff -> (
      match Term_lru.find memo.Memo.cache t with
      | Some nf ->
        memo.Memo.hits <- memo.Memo.hits + 1;
        nf
      | None ->
        memo.Memo.misses <- memo.Memo.misses + 1;
        let nf = norm_app t op args in
        Term_lru.add memo.Memo.cache t nf;
        nf)
    | Term.App (op, args) -> norm_app t op args
  and norm_app t op args =
    let args' = List.map norm args in
    if List.exists Term.is_error args' then Term.err (Op.result op)
    else if List.for_all2 ( == ) args args' then fire_at t
    else fire_app op args'
  (* [t'] has normalized arguments: match and normalize the template *)
  and fire_at t' =
    match template_of sys t' with
    | None -> t'
    | Some (r, regs, builder) ->
      if !remaining <= 0 then raise (Out_of_fuel t');
      decr remaining;
      poll ();
      fire on_rule r;
      build regs builder
  (* the same for an application not interned yet: when a rule fires the
     node is discarded immediately, so it is interned only when no rule
     matches and the node is the (normal-form) result *)
  and fire_app op args' =
    match Hashtbl.find_opt sys.trees (Op.name op) with
    | None -> Term.app_unchecked op args'
    | Some tree -> fire_tree tree op args'
  and fire_tree tree op args' =
    match Match_tree.run_template_app tree op args' with
    | None -> Term.app_unchecked op args'
    | Some (r, regs, builder) ->
      if !remaining <= 0 then
        raise (Out_of_fuel (Term.app_unchecked op args'));
      decr remaining;
      poll ();
      fire on_rule r;
      build regs builder
  (* memo-probe the nodes the template constructs before reducing them;
     tiny nodes reduce directly, bypassing the memo *)
  and reduce_memo tree t' =
    match Term_lru.find memo.Memo.cache t' with
    | Some nf ->
      memo.Memo.hits <- memo.Memo.hits + 1;
      nf
    | None ->
      memo.Memo.misses <- memo.Memo.misses + 1;
      let nf =
        match Match_tree.run_template tree t' with
        | None -> t'
        | Some (r, regs, builder) ->
          if !remaining <= 0 then raise (Out_of_fuel t');
          decr remaining;
          poll ();
          fire on_rule r;
          build regs builder
      in
      Term_lru.add memo.Memo.cache t' nf;
      nf
  and build regs = function
    | Match_tree.Ready t -> norm t
    | Match_tree.Fetch r -> regs.(r)
    | Match_tree.Fetch_frozen r -> norm regs.(r)
    | Match_tree.Build_app (op, bs) -> (
      let args' = List.map (build regs) bs in
      if List.exists Term.is_error args' then Term.err (Op.result op)
      else
        (* a rule-less head with normal arguments is already a normal
           form, and a tiny node costs as much to cache as to re-reduce:
           neither touches the memo, and neither ever interns a node
           that a fired rule would discard *)
        match Hashtbl.find_opt sys.trees (Op.name op) with
        | None -> Term.app_unchecked op args'
        | Some tree ->
          let size = List.fold_left (fun n a -> n + Term.size a) 1 args' in
          if size < memo_cutoff then fire_tree tree op args'
          else reduce_memo tree (Term.app_unchecked op args'))
    | Match_tree.Build_ite (c, a, b) -> (
      let c' = build regs c in
      if Term.equal c' Term.tt then build regs a
      else if Term.equal c' Term.ff then build regs b
      else
        match Term.view c' with
        | Term.Err _ -> Term.err (Term.sort_of (Match_tree.instantiate regs a))
        | _ ->
          Term.ite_unchecked c'
            (Match_tree.instantiate regs a)
            (Match_tree.instantiate regs b))
  in
  (* the root is memoized whatever its size: the interpreter and server
     session caches key whole queries through this entry point, and a
     repeated query must hit even when it is tiny *)
  let nf =
    match Term.view term with
    | Term.App (op, args) when Term.size term < memo_cutoff -> (
      match Term_lru.find memo.Memo.cache term with
      | Some nf ->
        memo.Memo.hits <- memo.Memo.hits + 1;
        nf
      | None ->
        memo.Memo.misses <- memo.Memo.misses + 1;
        let nf = norm_app term op args in
        Term_lru.add memo.Memo.cache term nf;
        nf)
    | _ -> norm term
  in
  (nf, fuel - !remaining)

let indexed_memo_count ?(fuel = default_fuel) ?(poll = no_poll) ?on_rule
    ~memo sys term =
  let find = finder sys in
  let remaining = ref fuel in
  let rec norm t =
    match Term.view t with
    | Term.Var _ | Term.Err _ -> t
    | Term.Ite (c, th, el) -> (
      let c' = norm c in
      if Term.equal c' Term.tt then norm th
      else if Term.equal c' Term.ff then norm el
      else
        match Term.view c' with
        | Term.Err _ -> Term.err (Term.sort_of th)
        | _ -> Term.ite_unchecked c' th el)
    | Term.App (op, args) -> (
      match Term_lru.find memo.Memo.cache t with
      | Some nf ->
        memo.Memo.hits <- memo.Memo.hits + 1;
        nf
      | None ->
        memo.Memo.misses <- memo.Memo.misses + 1;
        let args' = List.map norm args in
        let nf =
          if List.exists Term.is_error args' then Term.err (Op.result op)
          else
            let t' =
              if List.for_all2 ( == ) args args' then t
              else Term.app_unchecked op args'
            in
            match find t' with
            | None -> t'
            | Some (r, reduct) ->
              if !remaining <= 0 then raise (Out_of_fuel t);
              decr remaining;
              poll ();
              fire on_rule r;
              norm reduct
        in
        Term_lru.add memo.Memo.cache t nf;
        nf)
  in
  let nf = norm term in
  (nf, fuel - !remaining)

let normalize_memo_count ?fuel ?poll ?on_rule ~memo sys term =
  match sys.engine with
  | Automaton -> automaton_memo_count ?fuel ?poll ?on_rule ~memo sys term
  | Reference | Index -> indexed_memo_count ?fuel ?poll ?on_rule ~memo sys term

let normalize_memo ?fuel ?poll ?on_rule ~memo sys term =
  fst (normalize_memo_count ?fuel ?poll ?on_rule ~memo sys term)

type event = {
  position : Term.position;
  rule_used : string;
  before : Term.t;
  after : Term.t;
}

let pp_event ppf e =
  Fmt.pf ppf "@[<hov 2>%a@ --[%s]-->@ %a@]" Term.pp e.before e.rule_used
    Term.pp e.after

(* One leftmost-innermost step with position reporting: locate the leftmost
   innermost redex (builtin steps included). *)
let step sys term =
  let find = finder sys in
  let rec locate pos t =
    match Term.view t with
    | Term.Var _ | Term.Err _ -> None
    | Term.Ite (c, th, el) -> (
      match locate (pos @ [ 0 ]) c with
      | Some _ as hit -> hit
      | None ->
        if Term.equal c Term.tt then Some (pos, th, "<if>")
        else if Term.equal c Term.ff then Some (pos, el, "<if>")
        else if Term.is_error c then
          Some (pos, Term.err (Term.sort_of th), "<error>")
        else None (* stuck conditional: branches frozen *))
    | Term.App (op, args) -> (
      let rec in_children i = function
        | [] -> None
        | a :: rest -> (
          match locate (pos @ [ i ]) a with
          | Some _ as hit -> hit
          | None -> in_children (i + 1) rest)
      in
      match in_children 0 args with
      | Some _ as hit -> hit
      | None ->
        if List.exists Term.is_error args then
          Some (pos, Term.err (Op.result op), "<error>")
        else (
          match find t with
          | Some (r, reduct) -> Some (pos, reduct, r.rule_name)
          | None -> None))
  in
  match locate [] term with
  | None -> None
  | Some (position, replacement, rule_used) -> (
    match Term.replace_at term position replacement with
    | Some after -> Some { position; rule_used; before = term; after }
    | None -> None)

let is_normal_form sys term = Option.is_none (step sys term)

let trace ?(fuel = default_fuel) ?(max_events = 1_000) sys term =
  let events = ref [] and n_events = ref 0 and remaining = ref fuel in
  let rec go t =
    match step sys t with
    | None -> t
    | Some e ->
      if !remaining <= 0 then raise (Out_of_fuel t);
      decr remaining;
      if !n_events < max_events then begin
        events := e :: !events;
        incr n_events
      end;
      go e.after
  in
  let result = go term in
  (result, List.rev !events)

type stats = { applications : (string * int) list; total : int }

let normalize_stats ?strategy ?fuel sys term =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let total = ref 0 in
  let on_apply r =
    incr total;
    let key = if String.equal r.rule_name "" then "<unnamed>" else r.rule_name in
    Hashtbl.replace counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  in
  let t = run ?strategy ?fuel ~on_apply sys term in
  let applications =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (t, { applications; total = !total })

(* {1 The compiled-system cache}

   Compiling a spec's rule index is pure — the system depends only on the
   executable axioms in order — so systems are interned by the caller's
   content key (Spec_digest.spec in practice). Before this cache, every
   Session spec load and every Interp.create recompiled the two-level
   index from scratch even when the spec was byte-identical; now a reload
   of an unchanged spec is one table probe. Sharing a compiled system
   across interpreters (and domains) is already the forked-interpreter
   contract: the system is immutable after construction. A full cache
   simply resets — compilation is cheap enough that eviction bookkeeping
   would cost more than the occasional cold refill.

   Entries are keyed by (content key, engine): a cached system is pinned
   to the engine it was compiled for, so switching the default engine
   (ADTC_ENGINE, --engine) reads as a miss and recompiles, never as a
   stale hit that would silently keep dispatching to the old engine. *)

let compile_cache : (string * string, system) Hashtbl.t = Hashtbl.create 32
let compile_cache_lock = Mutex.create ()
let compile_cache_capacity = 512
let compile_cache_hits = ref 0
let compile_cache_misses = ref 0

let of_spec_keyed ?engine ~key spec =
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  let cache_key = (key, engine_name engine) in
  let cached =
    Mutex.protect compile_cache_lock (fun () ->
        match Hashtbl.find_opt compile_cache cache_key with
        | Some sys ->
          incr compile_cache_hits;
          Some sys
        | None ->
          incr compile_cache_misses;
          None)
  in
  match cached with
  | Some sys -> sys
  | None ->
    let sys = of_spec ~engine spec in
    Mutex.protect compile_cache_lock (fun () ->
        if Hashtbl.length compile_cache >= compile_cache_capacity then
          Hashtbl.reset compile_cache;
        if not (Hashtbl.mem compile_cache cache_key) then
          Hashtbl.add compile_cache cache_key sys);
    sys

type compile_cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  by_engine : (string * int) list;
}

let compile_cache_stats () =
  Mutex.protect compile_cache_lock (fun () ->
      let by_engine =
        Hashtbl.fold
          (fun (_, engine) _ acc ->
            let n = Option.value ~default:0 (List.assoc_opt engine acc) in
            (engine, n + 1) :: List.remove_assoc engine acc)
          compile_cache []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      {
        hits = !compile_cache_hits;
        misses = !compile_cache_misses;
        entries = Hashtbl.length compile_cache;
        by_engine;
      })

let compile_cache_clear () =
  Mutex.protect compile_cache_lock (fun () ->
      Hashtbl.reset compile_cache;
      compile_cache_hits := 0;
      compile_cache_misses := 0)
