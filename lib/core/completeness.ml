type case = { pattern : Term.t; covered_by : string list }
type op_report = { op : Op.t; cases : case list; unconstrained : bool }

type report = {
  spec_name : string;
  op_reports : op_report list;
  overlaps : (Term.t * string list) list;
}

let axiom_label ax =
  if String.equal (Axiom.name ax) "" then Fmt.str "%a" Axiom.pp ax
  else Axiom.name ax

(* Subsumption: the pattern is an instance of the axiom's left-hand side. *)
let subsumers axioms pattern =
  List.filter (fun ax -> Subst.matches ~pattern:(Axiom.lhs ax) pattern) axioms

(* Find the leftmost-outermost position where [pattern] has a variable of a
   sort with constructors and some axiom's left-hand side has a non-variable
   term: the position where a case split makes progress. *)
let split_position spec axioms pattern =
  let rec zip pos p l =
    match (Term.view p, Term.view l) with
    | Term.Var (_, sort), (Term.App _ | Term.Err _) ->
      if Spec.has_constructors sort spec then Some (pos, sort) else None
    | Term.App (f, ps), Term.App (g, ls) when Op.equal f g ->
      zip_children pos 0 ps ls
    | _ -> None
  and zip_children pos i ps ls =
    match (ps, ls) with
    | [], [] -> None
    | p :: ps', l :: ls' -> (
      match zip (pos @ [ i ]) p l with
      | Some _ as hit -> hit
      | None -> zip_children pos (i + 1) ps' ls')
    | _ -> None
  in
  List.find_map (fun ax -> zip [] pattern (Axiom.lhs ax)) axioms

(* Replace the variable at [pos] in [pattern] by fresh-variable applications
   of each constructor of its sort. *)
let split_cases spec pattern pos sort =
  let avoid = Term.vars pattern in
  let expand op =
    let taken = ref avoid in
    let fresh arg_sort =
      let base = String.lowercase_ascii (Sort.name arg_sort) in
      let name = Term.fresh_wrt ~avoid:!taken base arg_sort in
      taken := (name, arg_sort) :: !taken;
      Term.var name arg_sort
    in
    Term.app op (List.map fresh (Op.args op))
  in
  List.filter_map
    (fun op -> Term.replace_at pattern pos (expand op))
    (Spec.constructors_of_sort sort spec)

(* With no axioms to guide the split, still expand the first
   constructor-bearing argument one level, so the report lists the
   constructor cases a complete axiomatisation must cover (the shape the
   paper's prompting system presents to the user). *)
let unguided_split spec pattern =
  let rec find i = function
    | [] -> None
    | arg :: rest -> (
      match Term.view arg with
      | Term.Var (_, sort) when Spec.has_constructors sort spec ->
        Some ([ i ], sort)
      | _ -> find (i + 1) rest)
  in
  match Term.view pattern with
  | Term.App (_, args) -> find 0 args
  | _ -> None

let check_op spec op =
  let axioms = Spec.axioms_for op spec in
  let general =
    Term.app op
      (List.mapi
         (fun i sort ->
           Term.var
             (Fmt.str "%s%d" (String.lowercase_ascii (Sort.name sort)) (i + 1))
             sort)
         (Op.args op))
  in
  let rec analyse ~unguided pattern =
    match subsumers axioms pattern with
    | _ :: _ as covering ->
      [ { pattern; covered_by = List.map axiom_label covering } ]
    | [] -> (
      match split_position spec axioms pattern with
      | Some (pos, sort) ->
        List.concat_map (analyse ~unguided) (split_cases spec pattern pos sort)
      | None -> (
        match if unguided > 0 then unguided_split spec pattern else None with
        | Some (pos, sort) ->
          List.concat_map
            (analyse ~unguided:(unguided - 1))
            (split_cases spec pattern pos sort)
        | None -> [ { pattern; covered_by = [] } ]))
  in
  let cases = analyse ~unguided:(if axioms = [] then 1 else 0) general in
  let unconstrained =
    axioms = []
    && not
         (List.exists (fun s -> Spec.has_constructors s spec) (Op.args op))
  in
  { op; cases; unconstrained }

(* Two axioms of the same operation whose left-hand sides unify define the
   common instance twice — a consistency hazard surfaced here and settled by
   the critical-pair analysis of {!Consistency}. *)
let axiom_overlaps spec =
  let axioms = Spec.axioms spec in
  let rec pairs acc = function
    | [] -> List.rev acc
    | ax :: rest ->
      let acc =
        List.fold_left
          (fun acc other ->
            if not (Op.equal (Axiom.head ax) (Axiom.head other)) then acc
            else
              (* primes are legal in identifiers: extend the suffix until
                 the renamed variables are disjoint from [ax]'s *)
              let ax_names = List.map fst (Axiom.vars ax) in
              let clashes suffix =
                List.exists
                  (fun (x, _) -> List.mem (x ^ suffix) ax_names)
                  (Axiom.vars other)
              in
              let rec fresh suffix =
                if clashes suffix then fresh (suffix ^ "'") else suffix
              in
              let other' = Axiom.freshen ~suffix:(fresh "'") other in
              match Subst.unify (Axiom.lhs ax) (Axiom.lhs other') with
              | Some mgu ->
                ( Subst.apply mgu (Axiom.lhs ax),
                  [ axiom_label ax; axiom_label other ] )
                :: acc
              | None -> acc)
          acc rest
      in
      pairs acc rest
  in
  pairs [] axioms

let check spec =
  {
    spec_name = Spec.name spec;
    op_reports = List.map (check_op spec) (Spec.observers spec);
    overlaps = axiom_overlaps spec;
  }

let is_complete report =
  List.for_all
    (fun r ->
      r.unconstrained || List.for_all (fun c -> c.covered_by <> []) r.cases)
    report.op_reports

let missing report =
  List.concat_map
    (fun r ->
      if r.unconstrained then []
      else
        List.filter_map
          (fun c -> if c.covered_by = [] then Some c.pattern else None)
          r.cases)
    report.op_reports

let overlapping report =
  report.overlaps
  @ List.concat_map
      (fun r ->
        List.filter_map
          (fun c ->
            if List.length c.covered_by > 1 then Some (c.pattern, c.covered_by)
            else None)
          r.cases)
      report.op_reports

let pp_case ppf c =
  match c.covered_by with
  | [] -> Fmt.pf ppf "@[<h>%a : MISSING@]" Term.pp c.pattern
  | [ a ] -> Fmt.pf ppf "@[<h>%a : covered by %s@]" Term.pp c.pattern a
  | several ->
    Fmt.pf ppf "@[<h>%a : covered by %a (overlap)@]" Term.pp c.pattern
      Fmt.(list ~sep:comma string)
      several

let pp_op_report ppf r =
  if r.unconstrained then
    Fmt.pf ppf "@[<v 2>%a: unconstrained (parameter operation)@]" Op.pp r.op
  else
    Fmt.pf ppf "@[<v 2>%a:@,%a@]" Op.pp r.op
      Fmt.(list ~sep:cut pp_case)
      r.cases

let pp_report ppf report =
  let verdict = if is_complete report then "sufficiently complete" else "NOT sufficiently complete" in
  Fmt.pf ppf "@[<v>spec %s is %s@,%a@]" report.spec_name verdict
    Fmt.(list ~sep:cut pp_op_report)
    report.op_reports;
  match report.overlaps with
  | [] -> ()
  | overlaps ->
    let pp_overlap ppf (t, labels) =
      Fmt.pf ppf "@[<h>%a defined by both %a@]" Term.pp t
        Fmt.(list ~sep:(any " and ") string)
        labels
    in
    Fmt.pf ppf "@,@[<v 2>WARNING: overlapping axioms:@,%a@]"
      Fmt.(list ~sep:cut pp_overlap)
      overlaps
