(** Sufficient-completeness checking.

    Guttag's central methodological device (section 3; the technical notion
    is developed in his thesis, cited as [8, 9]): a specification is
    {e sufficiently complete} when the axioms determine the value of every
    observer applied to every value of the type — equivalently, when every
    ground term of an "old" sort reduces to a term without the new type's
    operations. Incompleteness in practice means an overlooked case, most
    often a boundary condition such as [REMOVE(NEW)].

    The checker performs a constructor case analysis: for each
    non-constructor operation it starts from the fully general application
    [f(x1, ..., xn)] and repeatedly splits variables into constructor cases
    at positions where some axiom discriminates, classifying each resulting
    pattern as covered (some axiom's left-hand side subsumes it) or missing.
    The analysis terminates because splitting is bounded by the constructor
    depth of the axioms' left-hand sides. *)

type case = {
  pattern : Term.t;  (** The analysed left-hand-side shape. *)
  covered_by : string list;
      (** Names (or rendered equations when unnamed) of the axioms that
          subsume the pattern; empty means the case is missing. *)
}

type op_report = {
  op : Op.t;
  cases : case list;  (** Leaf cases of the analysis, in split order. *)
  unconstrained : bool;
      (** True when the operation has no axioms and no argument position
          can be split (a parameter operation such as [SAME?] on an
          abstract [Identifier]); such operations are not counted as
          incomplete. *)
}

type report = {
  spec_name : string;
  op_reports : op_report list;
  overlaps : (Term.t * string list) list;
      (** Common instances of same-operation axiom pairs whose left-hand
          sides unify (reported with the two axiom labels). *)
}

val check : Spec.t -> report
(** Analyses every observer of the specification. *)

val check_op : Spec.t -> Op.t -> op_report

val is_complete : report -> bool
(** No missing case in any operation report. *)

val missing : report -> Term.t list
(** All missing left-hand-side patterns. *)

val overlapping : report -> (Term.t * string list) list
(** Consistency hazards the checker surfaces alongside completeness:
    unifiable same-operation axiom pairs (from [report.overlaps]) and case
    patterns subsumed by more than one axiom. Settled definitively by
    {!Consistency}'s critical pairs. *)

val pp_report : report Fmt.t
val pp_op_report : op_report Fmt.t
