(** Rendering specifications back to concrete syntax.

    [source_of_spec] emits text that {!Parser.parse_spec} accepts and that
    reconstructs the same specification (same signature, constructors and
    axioms) — the round-trip property the test suite pins down. Builtin
    Boolean material is implicit in every specification and is omitted. *)

val source_of_spec : Spec.t -> string

val pp_spec_source : Spec.t Fmt.t

val pp_axioms : Axiom.t list Fmt.t
(** One axiom per line, with labels. *)
