module Make (K : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (K)

  type 'a node = {
    key : K.t;
    mutable value : 'a;
    mutable prev : 'a node option;  (* towards most recently used *)
    mutable next : 'a node option;  (* towards least recently used *)
  }

  type 'a t = {
    table : 'a node Tbl.t;
    capacity : int;
    mutable first : 'a node option;  (* most recently used *)
    mutable last : 'a node option;  (* next eviction victim *)
    mutable evictions : int;
  }

  let default_capacity = 65536

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
    {
      table = Tbl.create (min capacity 1024);
      capacity;
      first = None;
      last = None;
      evictions = 0;
    }

  let capacity t = t.capacity
  let length t = Tbl.length t.table
  let evictions t = t.evictions

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.first <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.last <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.first;
    (match t.first with Some f -> f.prev <- Some node | None -> ());
    t.first <- Some node;
    if Option.is_none t.last then t.last <- Some node

  let touch t node =
    match node.prev with
    | None -> () (* already most recent *)
    | Some _ ->
      unlink t node;
      push_front t node

  let find t k =
    match Tbl.find_opt t.table k with
    | None -> None
    | Some node ->
      touch t node;
      Some node.value

  let peek t k = Option.map (fun n -> n.value) (Tbl.find_opt t.table k)
  let mem t k = Tbl.mem t.table k

  let evict t =
    match t.last with
    | None -> ()
    | Some victim ->
      unlink t victim;
      Tbl.remove t.table victim.key;
      t.evictions <- t.evictions + 1

  let add t k v =
    match Tbl.find_opt t.table k with
    | Some node ->
      node.value <- v;
      touch t node
    | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      Tbl.add t.table k node;
      push_front t node;
      if Tbl.length t.table > t.capacity then evict t

  let clear t =
    Tbl.clear t.table;
    t.first <- None;
    t.last <- None;
    t.evictions <- 0

  let to_list t =
    let rec walk acc = function
      | None -> List.rev acc
      | Some node -> walk ((node.key, node.value) :: acc) node.next
    in
    walk [] t.first
end
