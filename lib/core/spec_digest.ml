(* Digests are computed over canonical renderings of the *elaborated*
   specification, never over source text: two sources that parse and
   elaborate to the same signature and axiom list digest identically, no
   matter how they were spelled. *)

let hex s = Digest.to_hex (Digest.string s)
let term t = Term.to_string t
let equation ax = term (Axiom.lhs ax) ^ " = " ^ term (Axiom.rhs ax)
let axiom ax = hex (equation ax)

let signature_render spec =
  let sg = Spec.signature spec in
  let buf = Buffer.create 256 in
  Sort.Set.iter
    (fun s -> Buffer.add_string buf (Fmt.str "sort %a\n" Sort.pp s))
    (Signature.sorts sg);
  (* declaration order: part of the canonical rendering, like axiom order *)
  List.iter
    (fun op -> Buffer.add_string buf (Fmt.str "op %a\n" Op.pp_decl op))
    (Signature.ops sg);
  Op.Set.iter
    (fun op -> Buffer.add_string buf ("constructor " ^ Op.name op ^ "\n"))
    (Spec.constructors spec);
  Buffer.contents buf

let signature_digest spec = hex (signature_render spec)

let spec s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (signature_digest s);
  List.iter
    (fun ax ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (equation ax))
    (Spec.axioms s);
  hex (Buffer.contents buf)

let axioms s = List.map (fun ax -> (Axiom.name ax, axiom ax)) (Spec.axioms s)
