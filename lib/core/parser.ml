type error = { line : int; col : int; message : string }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.col e.message

exception Fail of error

type state = { tokens : Lexer.located array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let fail_at (tok : Lexer.located) fmt =
  Fmt.kstr
    (fun message -> raise (Fail { line = tok.line; col = tok.col; message }))
    fmt

let expect st token =
  let tok = peek st in
  if tok.token = token then advance st
  else fail_at tok "expected %a, found %a" Lexer.pp_token token Lexer.pp_token tok.token

let expect_ident st what =
  let tok = peek st in
  match tok.token with
  | Lexer.Ident name ->
    advance st;
    name
  | other -> fail_at tok "expected %s, found %a" what Lexer.pp_token other

let accept st token =
  let tok = peek st in
  if tok.token = token then begin
    advance st;
    true
  end
  else false

(* identifiers until the next non-identifier token *)
let ident_list st =
  let rec go acc =
    match (peek st).token with
    | Lexer.Ident name ->
      advance st;
      go (name :: acc)
    | _ -> List.rev acc
  in
  go []

(* {2 Terms} *)

type term_ctx = {
  signature : Signature.t;
  vars : (string * Sort.t) list;
}

let rec term st ctx expected =
  let tok = peek st in
  match tok.token with
  | Lexer.Keyword Lexer.Kif ->
    advance st;
    let c = term st ctx (Some Sort.bool) in
    expect st (Lexer.Keyword Lexer.Kthen);
    let t = term st ctx expected in
    expect st (Lexer.Keyword Lexer.Kelse);
    let e = term st ctx (Some (Term.sort_of t)) in
    (try Term.ite c t e
     with Term.Ill_sorted msg -> fail_at tok "%s" msg)
  | Lexer.Keyword Lexer.Kerror -> (
    advance st;
    match expected with
    | Some sort -> Term.err sort
    | None -> fail_at tok "cannot infer the sort of error here")
  | Lexer.Ident name -> (
    advance st;
    match List.assoc_opt name ctx.vars with
    | Some sort ->
      check_expected tok expected sort;
      Term.var name sort
    | None -> (
      match Signature.find_op name ctx.signature with
      | None -> fail_at tok "unknown operation or variable %s" name
      | Some op ->
        let args =
          if accept st Lexer.Lparen then begin
            let rec args_from i acc =
              let arg_expected = List.nth_opt (Op.args op) i in
              let arg = term st ctx arg_expected in
              if accept st Lexer.Comma then args_from (i + 1) (arg :: acc)
              else begin
                expect st Lexer.Rparen;
                List.rev (arg :: acc)
              end
            in
            if accept st Lexer.Rparen then [] else args_from 0 []
          end
          else []
        in
        let t =
          try Term.app op args
          with Term.Ill_sorted msg -> fail_at tok "%s" msg
        in
        check_expected tok expected (Term.sort_of t);
        t))
  | other -> fail_at tok "expected a term, found %a" Lexer.pp_token other

and check_expected tok expected actual =
  match expected with
  | Some want when not (Sort.equal want actual) ->
    fail_at tok "this term has sort %a, expected %a" Sort.pp actual Sort.pp
      want
  | _ -> ()

(* {2 Specifications} *)

let sort_ref st signature =
  let tok = peek st in
  let name = expect_ident st "a sort name" in
  let sort = Sort.v name in
  if not (Signature.mem_sort sort signature) then
    fail_at tok "undeclared sort %s" name;
  sort

let op_decl st signature =
  let name = expect_ident st "an operation name" in
  expect st Lexer.Colon;
  let rec domain acc =
    match (peek st).token with
    | Lexer.Arrow ->
      advance st;
      List.rev acc
    | _ -> domain (sort_ref st signature :: acc)
  in
  let args = domain [] in
  let result = sort_ref st signature in
  let op = Op.v name ~args ~result in
  let tok = peek st in
  try Signature.add_op op signature
  with Invalid_argument msg -> fail_at tok "%s" msg

let var_decls st signature =
  let rec go acc =
    match ((peek st).token, st.tokens.(min (st.pos + 1) (Array.length st.tokens - 1)).token) with
    | Lexer.Ident _, (Lexer.Colon | Lexer.Comma) ->
      let rec names acc =
        let n = expect_ident st "a variable name" in
        if accept st Lexer.Comma then names (n :: acc) else List.rev (n :: acc)
      in
      let group = names [] in
      expect st Lexer.Colon;
      let sort = sort_ref st signature in
      go (acc @ List.map (fun n -> (n, sort)) group)
    | _ -> acc
  in
  go []

let axiom_decls st ctx =
  let rec go acc =
    match (peek st).token with
    | Lexer.Lbracket | Lexer.Ident _ | Lexer.Keyword Lexer.Kif ->
      let name =
        if accept st Lexer.Lbracket then begin
          let n = expect_ident st "an axiom label" in
          expect st Lexer.Rbracket;
          n
        end
        else ""
      in
      let tok = peek st in
      let lhs = term st ctx None in
      expect st Lexer.Equals;
      let rhs = term st ctx (Some (Term.sort_of lhs)) in
      let ax =
        (* free right-hand-side variables are accepted here and reported by
           the static analyzer (rule ADT011) rather than rejected at load
           time; Rewrite.of_spec never turns such an axiom into a rule *)
        try Axiom.v ~name ~allow_free_rhs:true ~lhs ~rhs ()
        with Invalid_argument msg -> fail_at tok "%s" msg
      in
      go (ax :: acc)
    | _ -> List.rev acc
  in
  go []

let empty_spec =
  Spec.v ~name:"" ~signature:Signature.empty ~axioms:[] ()

let spec_def st ~resolve =
  let start = peek st in
  expect st (Lexer.Keyword Lexer.Kspec);
  let name = expect_ident st "a specification name" in
  let base =
    let rec collect acc =
      if accept st (Lexer.Keyword Lexer.Kuses) then
        collect (acc @ ident_list st)
      else acc
    in
    let used = collect [] in
    List.fold_left
      (fun acc used_name ->
        match resolve used_name with
        | Some s -> Spec.union ~name acc s
        | None -> fail_at start "unknown specification %s in uses" used_name)
      empty_spec used
  in
  let signature =
    let rec sorts acc =
      if accept st (Lexer.Keyword Lexer.Ksort) then
        sorts (Signature.add_sort (Sort.v (expect_ident st "a sort name")) acc)
      else acc
    in
    sorts (Spec.signature base)
  in
  let signature =
    if accept st (Lexer.Keyword Lexer.Kops) then begin
      let rec ops signature =
        match (peek st).token with
        | Lexer.Ident _ -> ops (op_decl st signature)
        | _ -> signature
      in
      ops signature
    end
    else signature
  in
  let ctor_names =
    if accept st (Lexer.Keyword Lexer.Kconstructors) then ident_list st else []
  in
  List.iter
    (fun c ->
      if not (Signature.mem_op c signature) then
        fail_at start "constructor %s is not a declared operation" c)
    ctor_names;
  let vars =
    if accept st (Lexer.Keyword Lexer.Kvars) then var_decls st signature
    else []
  in
  let axioms =
    if accept st (Lexer.Keyword Lexer.Kaxioms) then
      axiom_decls st { signature; vars }
    else []
  in
  expect st (Lexer.Keyword Lexer.Kend);
  let fresh =
    try Spec.v ~name ~signature ~constructors:ctor_names ~axioms ()
    with Invalid_argument msg -> fail_at start "%s" msg
  in
  try Spec.union ~name base fresh
  with Invalid_argument msg -> fail_at start "%s" msg

let run input k =
  match Lexer.tokenize input with
  | Error { Lexer.line; col; message } -> Error { line; col; message }
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    try Ok (k st) with Fail e -> Error e)

let parse_specs ?(env = fun _ -> None) input =
  run input (fun st ->
      let defined = ref [] in
      let resolve name =
        match List.assoc_opt name !defined with
        | Some _ as hit -> hit
        | None -> env name
      in
      let rec go acc =
        match (peek st).token with
        | Lexer.Eof -> List.rev acc
        | _ ->
          let spec = spec_def st ~resolve in
          defined := (Spec.name spec, spec) :: !defined;
          go (spec :: acc)
      in
      go [])

let parse_spec ?env input =
  match parse_specs ?env input with
  | Error _ as e -> e
  | Ok [] -> Error { line = 1; col = 1; message = "no specification found" }
  | Ok specs -> Ok (List.nth specs (List.length specs - 1))

let parse_term spec ?(vars = []) ?expected input =
  run input (fun st ->
      let ctx = { signature = Spec.signature spec; vars } in
      let t = term st ctx expected in
      expect st Lexer.Eof;
      t)
