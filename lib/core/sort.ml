type t = string

let v name =
  if String.equal name "" then invalid_arg "Sort.v: empty sort name";
  name

let name s = s
let bool = "Bool"
let is_bool s = String.equal s bool
let equal = String.equal
let compare = String.compare
let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)
