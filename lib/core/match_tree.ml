(* Rule-set compilation to a first-match decision tree (Maranget's
   pattern-matrix scheme adapted to first-match-wins rewriting).

   The compiler works on a matrix of rows. Each row carries the
   obligations still separating it from a match:

   - [entries]: (register, constructor pattern) pairs — the subterm in
     that register must open with the pattern's head, recursively;
   - [binds]: pattern variables already resolved to the register holding
     their subject subterm (first occurrence);
   - [checks]: register pairs that must hold equal terms — the deferred
     tests of repeated (non-left-linear) pattern variables.

   Registers name subject subterms. Register 0 is the subject itself;
   a switch that matches constructor [c] loads [c]'s arguments into
   consecutive registers allocated at compile time. A register is
   allocated on the unique tree path that introduces the rows referring
   to it, so every reference reads a loaded slot.

   One compilation step inspects the first obligation of the
   highest-priority row and emits a switch on its register. Rows
   constraining that register are specialized into the branch for their
   head key (their entry replaced by entries for the head's arguments);
   rows without an entry there — generic rows, their pattern has a
   variable at that position — are carried into every branch AND the
   default, each time in their original relative order. A branch thus
   holds a superset of the rows that can still match below it, so a
   failed branch never backtracks into the default branch. A row with no
   obligations left is a match: an unconditional leaf when it has no
   equality checks (lower rows are unreachable and are not compiled), a
   guarded leaf falling through to the remaining rows otherwise. *)

type key = Kop of Op.t | Kerr | Kite

type builder =
  | Ready of Term.t (* ground rhs subterm, interned at compile time *)
  | Fetch of int (* rhs variable: the register bound to it *)
  | Fetch_frozen of int
      (* bound through an if-then-else branch pattern: the register may
         hold a frozen (not yet normalized) branch of a stuck conditional,
         so a fused engine must renormalize it *)
  | Build_app of Op.t * builder list
  | Build_ite of builder * builder * builder

type 'a tree =
  | Fail
  | Leaf of 'a leaf
  | Switch of { reg : int; cases : 'a case list; default : 'a tree }

and 'a leaf = {
  checks : (int * int) list;
  binds : (string * int) list;
  builder : builder;
  payload : 'a;
  otherwise : 'a tree; (* tried when a deferred equality check fails *)
}

and 'a case = { key : key; base : int; arity : int; sub : 'a tree }

type 'a t = { tree : 'a tree; nregs : int }

type 'a row = {
  entries : (int * Term.t) list;
  binds : (string * int) list;
  checks : (int * int) list;
  payload : 'a;
  rhs : Term.t;
}

let key_of p =
  match Term.view p with
  | Term.App (g, _) -> Kop g
  | Term.Err _ -> Kerr
  | Term.Ite _ -> Kite
  | Term.Var _ -> assert false

let key_equal a b =
  match (a, b) with
  | Kop f, Kop g -> Op.equal f g
  | Kerr, Kerr | Kite, Kite -> true
  | _ -> false

let key_arity = function Kop g -> Op.arity g | Kerr -> 0 | Kite -> 3

let sub_pats p =
  match Term.view p with
  | Term.App (_, args) -> args
  | Term.Err _ -> []
  | Term.Ite (c, t, e) -> [ c; t; e ]
  | Term.Var _ -> assert false

(* extend a row with fresh (register, pattern) obligations, resolving
   variable patterns immediately: first occurrence binds, repetitions
   become deferred equality checks *)
let extend row pairs =
  List.fold_left
    (fun row (reg, p) ->
      match Term.view p with
      | Term.Var (x, _) -> (
        match List.assoc_opt x row.binds with
        | Some r0 -> { row with checks = row.checks @ [ (r0, reg) ] }
        | None -> { row with binds = row.binds @ [ (x, reg) ] })
      | _ -> { row with entries = row.entries @ [ (reg, p) ] })
    row pairs

module Int_set = Set.Make (Int)

(* the rhs instantiation template: exactly what [Subst.apply s rhs]
   interns, with the substitution replaced by register fetches. An
   unbound rhs variable is kept in place — the same convention as
   [Subst.apply], so even a rule smuggled past the executability filter
   rewrites identically under every engine. [frozen] is the set of
   registers reached through an if-then-else {e branch} position: those
   may hold unnormalized subterms (an innermost-normalized subject
   freezes the branches of stuck conditionals), every other register
   holds a subterm that is already in normal form when the subject's
   arguments are. *)
let rec builder_of frozen binds t =
  if Term.is_ground t then Ready t
  else
    match Term.view t with
    | Term.Var (x, _) -> (
      match List.assoc_opt x binds with
      | Some r -> if Int_set.mem r frozen then Fetch_frozen r else Fetch r
      | None -> Ready t)
    | Term.App (op, args) ->
      Build_app (op, List.map (builder_of frozen binds) args)
    | Term.Ite (c, a, b) ->
      Build_ite
        ( builder_of frozen binds c,
          builder_of frozen binds a,
          builder_of frozen binds b )
    | Term.Err _ -> Ready t

let compile rows =
  List.iter
    (fun (_, lhs, _) ->
      match Term.view lhs with
      | Term.Var _ ->
        invalid_arg "Match_tree.compile: left-hand side is a bare variable"
      | _ -> ())
    rows;
  let max_regs = ref 1 in
  let note n = if n > !max_regs then max_regs := n in
  let rec go next frozen rows =
    note next;
    match rows with
    | [] -> Fail
    | row0 :: rest -> (
      match row0.entries with
      | [] ->
        let leaf otherwise =
          Leaf
            {
              checks = row0.checks;
              binds = row0.binds;
              builder = builder_of frozen row0.binds row0.rhs;
              payload = row0.payload;
              otherwise;
            }
        in
        (* no checks: an unconditional match — lower rows are dead here *)
        if row0.checks = [] then leaf Fail else leaf (go next frozen rest)
      | (r, _) :: _ ->
        let keys =
          List.fold_left
            (fun acc row ->
              match List.assoc_opt r row.entries with
              | Some p ->
                let k = key_of p in
                if List.exists (key_equal k) acc then acc else acc @ [ k ]
              | None -> acc)
            [] rows
        in
        let cases =
          List.map
            (fun k ->
              let arity = key_arity k in
              let base = next in
              (* a child register is frozen when its parent is, or when it
                 holds a branch (not the condition) of a matched
                 if-then-else *)
              let child_frozen =
                List.fold_left
                  (fun acc i ->
                    if
                      Int_set.mem r frozen
                      || (match k with Kite -> i > 0 | Kop _ | Kerr -> false)
                    then Int_set.add (base + i) acc
                    else acc)
                  frozen
                  (List.init arity Fun.id)
              in
              let specialized =
                List.filter_map
                  (fun row ->
                    match List.assoc_opt r row.entries with
                    | None -> Some row (* generic: survives every branch *)
                    | Some p ->
                      if key_equal (key_of p) k then
                        Some
                          (extend
                             {
                               row with
                               entries =
                                 List.filter
                                   (fun (r', _) -> r' <> r)
                                   row.entries;
                             }
                             (List.mapi
                                (fun i p' -> (base + i, p'))
                                (sub_pats p)))
                      else None)
                  rows
              in
              {
                key = k;
                base;
                arity;
                sub = go (next + arity) child_frozen specialized;
              })
            keys
        in
        let generic =
          List.filter (fun row -> not (List.mem_assoc r row.entries)) rows
        in
        Switch { reg = r; cases; default = go next frozen generic })
  in
  let initial =
    List.map
      (fun (payload, lhs, rhs) ->
        extend
          { entries = []; binds = []; checks = []; payload; rhs }
          [ (0, lhs) ])
      rows
  in
  let tree = go 1 Int_set.empty initial in
  { tree; nregs = !max_regs }

let rec instantiate regs = function
  | Ready t -> t
  | Fetch r | Fetch_frozen r -> regs.(r)
  | Build_app (op, bs) ->
    Term.app_unchecked op (List.map (instantiate regs) bs)
  | Build_ite (c, a, b) ->
    Term.ite_unchecked (instantiate regs c) (instantiate regs a)
      (instantiate regs b)

let rec load regs base i = function
  | [] -> ()
  | a :: rest ->
    regs.(base + i) <- a;
    load regs base (i + 1) rest

let load_args regs base = function
  | [] -> ()
  | [ a ] -> regs.(base) <- a
  | [ a; b ] ->
    regs.(base) <- a;
    regs.(base + 1) <- b
  | [ a; b; c ] ->
    regs.(base) <- a;
    regs.(base + 1) <- b;
    regs.(base + 2) <- c
  | args -> load regs base 0 args

let rec exec_tree regs = function
  | Fail -> None
  | Leaf l ->
    if List.for_all (fun (a, b) -> Term.equal regs.(a) regs.(b)) l.checks
    then Some l
    else exec_tree regs l.otherwise
  | Switch { reg; cases; default } -> (
    match Term.view regs.(reg) with
    | Term.Var _ -> exec_tree regs default
    | v ->
      let rec find = function
        | [] -> exec_tree regs default
        | c :: cs -> (
          match (c.key, v) with
          | Kop h, Term.App (g, gargs) when h == g || Op.equal h g ->
            load_args regs c.base gargs;
            exec_tree regs c.sub
          | Kerr, Term.Err _ -> exec_tree regs c.sub
          | Kite, Term.Ite (x, y, z) ->
            regs.(c.base) <- x;
            regs.(c.base + 1) <- y;
            regs.(c.base + 2) <- z;
            exec_tree regs c.sub
          | _ -> find cs)
      in
      find cases)

let exec t subject =
  let regs = Array.make t.nregs subject in
  match exec_tree regs t.tree with None -> None | Some l -> Some (l, regs)

(* match the application [op args] without interning it. The root of a
   compiled tree always switches on register 0 (left-hand sides are
   applications, never bare variables, so every row's first obligation
   sits there), and register 0 is never read back below the root —
   patterns bind and check only proper subterms. The register file can
   therefore be seeded with a placeholder and the root switch driven by
   the uninterned pair directly. *)
let exec_app t op args =
  match t.tree with
  | Switch { reg = 0; cases; default = _ } ->
    let regs =
      Array.make t.nregs (match args with a :: _ -> a | [] -> Term.tt)
    in
    let rec find = function
      | [] -> None
      | c :: cs -> (
        match c.key with
        | Kop h when h == op || Op.equal h op ->
          load_args regs c.base args;
          (match exec_tree regs c.sub with
          | None -> None
          | Some l -> Some (l, regs))
        | _ -> find cs)
    in
    find cases
  | _ -> None

let run t subject =
  match exec t subject with
  | None -> None
  | Some (l, regs) -> Some (l.payload, instantiate regs l.builder)

let run_with t subject =
  match exec t subject with
  | None -> None
  | Some (l, regs) ->
    Some
      ( l.payload,
        List.map (fun (x, r) -> (x, regs.(r))) l.binds,
        instantiate regs l.builder )

let run_template t subject =
  match exec t subject with
  | None -> None
  | Some (l, regs) -> Some (l.payload, regs, l.builder)

let run_template_app t op args =
  match exec_app t op args with
  | None -> None
  | Some (l, regs) -> Some (l.payload, regs, l.builder)

type stats = {
  switches : int;
  leaves : int;
  guarded : int;
  max_registers : int;
}

let stats t =
  let rec walk acc = function
    | Fail -> acc
    | Leaf l ->
      let acc =
        {
          acc with
          leaves = acc.leaves + 1;
          guarded = (acc.guarded + if l.checks = [] then 0 else 1);
        }
      in
      walk acc l.otherwise
    | Switch { cases; default; _ } ->
      let acc = { acc with switches = acc.switches + 1 } in
      walk (List.fold_left (fun acc c -> walk acc c.sub) acc cases) default
  in
  walk
    { switches = 0; leaves = 0; guarded = 0; max_registers = t.nregs }
    t.tree
