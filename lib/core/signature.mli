(** Many-sorted signatures.

    The "syntactic specification" of Guttag's method: the set of sorts and
    the set of operation symbols with their domains and ranges. The formal
    basis is the heterogeneous algebra of Birkhoff and Lipson, which the
    paper cites as the foundation of the algebraic approach.

    A signature is immutable; extension returns a new signature. Operation
    names are unique: overloading is rejected, because the paper's concrete
    syntax selects operations by name alone. *)

type t

val empty : t
(** The signature containing only the builtin sort [Bool] and its constant
    operations [true : -> Bool] and [false : -> Bool]. *)

val add_sort : Sort.t -> t -> t
(** Idempotent. *)

val add_op : Op.t -> t -> t
(** Raises [Invalid_argument] if an operation with the same name but a
    different rank is already present, or if any sort mentioned by the
    operation has not been declared. *)

val true_op : Op.t
val false_op : Op.t

val sorts : t -> Sort.Set.t
val ops : t -> Op.t list
(** In insertion order, builtins first. *)

val mem_sort : Sort.t -> t -> bool
val find_op : string -> t -> Op.t option
val find_op_exn : string -> t -> Op.t
(** Raises [Not_found]. *)

val mem_op : string -> t -> bool

val ops_with_result : Sort.t -> t -> Op.t list
(** All operations whose range is the given sort, in insertion order. *)

val union : t -> t -> t
(** Combines two signatures, as when a specification [uses] another
    (hierarchical specification, paper section 4). Raises [Invalid_argument]
    on a name clash with different ranks. *)

val cardinal : t -> int
(** Number of operations, builtins included. *)

val equal : t -> t -> bool
val pp : t Fmt.t
