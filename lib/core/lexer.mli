(** Lexer for the specification language.

    The concrete syntax follows the paper's notation as closely as ASCII
    allows: operation names may contain [?], [.] and ['] (as in [IS_EMPTY?],
    [IS.NEWSTACK?], [INIT']), axioms are written [LHS = RHS] with
    [if _ then _ else _] right-hand sides, and [--] starts a line comment. *)

type keyword =
  | Kspec
  | Kuses
  | Ksort
  | Kops
  | Kconstructors
  | Kvars
  | Kaxioms
  | Kend
  | Kif
  | Kthen
  | Kelse
  | Kerror

type token =
  | Ident of string
  | Keyword of keyword
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Arrow  (** [->] *)
  | Equals
  | Lbracket
  | Rbracket
  | Eof

type located = { token : token; line : int; col : int }

type error = { line : int; col : int; message : string }

val pp_error : error Fmt.t
val pp_token : token Fmt.t

val tokenize : string -> (located list, error) result
(** The result always ends with an [Eof] token. *)
