(** Consistency checking via critical-pair analysis.

    The paper (section 3) requires an axiomatisation to be {e consistent}:
    no two axioms may contradict. For a specification read as a rewrite
    system, contradictions surface as {e critical pairs} — terms to which
    two axioms apply in overlapping ways — whose two results cannot be
    rewritten back together. This module computes all critical pairs,
    decides joinability by normalization, and flags the unmistakable
    inconsistencies: pairs whose normal forms are distinct constructor
    terms (in the initial algebra, distinct constructor terms denote
    distinct values — deriving [true = false] is the canonical example).

    All of the paper's specifications are orthogonal (left-linear and
    overlap-free), so their reports contain no critical pairs at all; the
    seeded-fault tests exercise the detection paths. *)

type cp = {
  rule1 : string;
  rule2 : string;
  position : Term.position;  (** Overlap position inside rule1's LHS. *)
  peak : Term.t;  (** The common instance both rules rewrite. *)
  left : Term.t;  (** Result of rewriting the peak with rule1 at the root. *)
  right : Term.t;  (** Result of rewriting the peak with rule2 at [position]. *)
}

type verdict =
  | Joinable of Term.t
  | Diverges of Term.t * Term.t  (** Distinct normal forms. *)
  | Timeout

type report = {
  spec_name : string;
  pairs : (cp * verdict) list;
  orientable : bool;
      (** Every axiom decreases under the dependency LPO — the termination
          premise that upgrades local confluence to confluence. *)
}

val critical_pairs : Rewrite.rule list -> cp list
(** All critical pairs between (renamed-apart) rules, including
    root overlaps of distinct rules and proper overlaps of a rule with
    itself. Trivial pairs (syntactically equal sides) are kept and will be
    reported joinable. *)

val check : ?fuel:int -> Spec.t -> report

val locally_confluent : report -> bool
(** Every pair joinable. *)

val is_consistent : Spec.t -> report -> bool
(** No pair whose two normal forms are distinct values (constructor terms or
    [error]). A [true] verdict is relative: divergence between
    non-value terms is reported but not counted as proof of inconsistency. *)

val inconsistencies : Spec.t -> report -> (cp * Term.t * Term.t) list
(** Pairs with distinct value normal forms, with those normal forms. *)

val pp_report : report Fmt.t

(** {1 Ground cross-checks}

    Critical pairs certify local confluence symbolically; these checks
    attack the same property from below, by brute force over the
    enumerated ground universe. They catch strategy-dependence that an
    orthogonal-looking system might still hide (e.g. through the
    non-left-linear interplay of error propagation). *)

val ground_strategy_agreement :
  ?fuel:int -> Enum.universe -> size:int -> (int, Term.t) result
(** Normalizes every observer application over every ground constructor
    term of each sort (arguments up to [size]) with both the innermost and
    the outermost strategy and compares. [Ok n] is the number of terms
    checked; [Error t] is a term on which the strategies disagree. *)
