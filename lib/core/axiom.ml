type t = { name : string; lhs : Term.t; rhs : Term.t }

let v ?(name = "") ?(allow_free_rhs = false) ~lhs ~rhs () =
  if not (Sort.equal (Term.sort_of lhs) (Term.sort_of rhs)) then
    invalid_arg
      (Fmt.str "Axiom.v: %a has sort %a but %a has sort %a" Term.pp lhs
         Sort.pp (Term.sort_of lhs) Term.pp rhs Sort.pp (Term.sort_of rhs));
  (match Term.view lhs with
  | Term.App _ -> ()
  | _ ->
    invalid_arg
      (Fmt.str "Axiom.v: left-hand side %a must be an operation application"
         Term.pp lhs));
  if not allow_free_rhs then begin
    let lvars = Term.vars lhs in
    List.iter
      (fun (x, s) ->
        if not (List.mem (x, s) lvars) then
          invalid_arg
            (Fmt.str "Axiom.v: variable %s of the right-hand side %a is absent from the left-hand side %a"
               x Term.pp rhs Term.pp lhs))
      (Term.vars rhs)
  end;
  { name; lhs; rhs }

let free_rhs_vars a =
  let lvars = Term.vars a.lhs in
  List.filter (fun v -> not (List.mem v lvars)) (Term.vars a.rhs)

let is_executable a = free_rhs_vars a = []

let name a = a.name
let lhs a = a.lhs
let rhs a = a.rhs

let head a =
  match Term.view a.lhs with
  | Term.App (op, _) -> op
  | _ -> assert false (* excluded by [v] *)

let vars a =
  let lvars = Term.vars a.lhs in
  let rvars = Term.vars a.rhs in
  lvars @ List.filter (fun v -> not (List.mem v lvars)) rvars

let is_left_linear a =
  let rec count x t =
    match Term.view t with
    | Term.Var (y, _) -> if String.equal x y then 1 else 0
    | Term.Err _ -> 0
    | Term.App (_, args) -> List.fold_left (fun n t -> n + count x t) 0 args
    | Term.Ite (c, t, e) -> count x c + count x t + count x e
  in
  List.for_all (fun (x, _) -> count x a.lhs <= 1) (Term.vars a.lhs)

let rename f a = { a with lhs = Term.rename f a.lhs; rhs = Term.rename f a.rhs }
let freshen ~suffix a = rename (fun x -> x ^ suffix) a

let check sg a =
  match Term.check sg a.lhs with
  | Error _ as e -> e
  | Ok () -> Term.check sg a.rhs

let instantiate s a = (Subst.apply s a.lhs, Subst.apply s a.rhs)

let equal a b =
  String.equal a.name b.name && Term.equal a.lhs b.lhs && Term.equal b.rhs a.rhs

let same_equation a b =
  let pair ax =
    (* encode the equation as a single term through a throwaway tuple
       operation so variant-checking sees both sides at once *)
    let sort = Term.sort_of ax.lhs in
    let op = Op.v "=" ~args:[ sort; sort ] ~result:Sort.bool in
    Term.app op [ ax.lhs; ax.rhs ]
  in
  Sort.equal (Term.sort_of a.lhs) (Term.sort_of b.lhs)
  && Subst.variant (pair a) (pair b)

let pp ppf a =
  if String.equal a.name "" then
    Fmt.pf ppf "@[<hov 2>%a =@ %a@]" Term.pp a.lhs Term.pp a.rhs
  else
    Fmt.pf ppf "@[<hov 2>[%s] %a =@ %a@]" a.name Term.pp a.lhs Term.pp a.rhs
