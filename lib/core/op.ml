type t = { name : string; args : Sort.t list; result : Sort.t }

let v name ~args ~result =
  if String.equal name "" then invalid_arg "Op.v: empty operation name";
  { name; args; result }

let name op = op.name
let args op = op.args
let result op = op.result
let arity op = List.length op.args
let is_constant op = op.args = []

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c
  else
    let c = List.compare Sort.compare a.args b.args in
    if c <> 0 then c else Sort.compare a.result b.result

let equal a b = compare a b = 0
let pp ppf op = Fmt.string ppf op.name

let pp_decl ppf op =
  match op.args with
  | [] -> Fmt.pf ppf "%s : -> %a" op.name Sort.pp op.result
  | args ->
    Fmt.pf ppf "%s : %a -> %a" op.name
      Fmt.(list ~sep:(any " ") Sort.pp)
      args Sort.pp op.result

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ordered)
module Set = Set.Make (Ordered)
