type t = { by_name : (string * Spec.t) list (* newest first *) }

let empty = { by_name = [] }
let builtin = empty

let add spec t =
  let name = Spec.name spec in
  { by_name = (name, spec) :: List.remove_assoc name t.by_name }

let add_all specs t = List.fold_left (fun t s -> add s t) t specs
let find name t = List.assoc_opt name t.by_name
let mem name t = List.mem_assoc name t.by_name
let names t = List.rev_map fst t.by_name
let specs t = List.rev_map snd t.by_name
let to_env t name = find name t

let load_source t source =
  match Parser.parse_specs ~env:(to_env t) source with
  | Error _ as e -> e
  | Ok specs -> Ok (add_all specs t)

let check_all t =
  List.map
    (fun spec -> (Spec.name spec, Completeness.check spec, Consistency.check spec))
    (specs t)
