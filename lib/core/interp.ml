type t = {
  spec : Spec.t;
  system : Rewrite.system;
  fuel : int;
  memo : Rewrite.Memo.t option;
}

let create ?(fuel = Rewrite.default_fuel) ?(memo = false) ?memo_capacity spec =
  {
    spec;
    (* keyed by content digest: re-creating an interpreter for an
       unchanged spec (server restart, session reload) reuses the
       compiled rule index instead of recompiling it *)
    system = Rewrite.of_spec_keyed ~key:(Spec_digest.spec spec) spec;
    fuel;
    memo =
      (if memo then Some (Rewrite.Memo.create ?capacity:memo_capacity ())
       else None);
  }

(* Shares the compiled rewrite system (immutable after of_spec) but owns a
   fresh memo of the same capacity: each domain forks its own interpreter so
   memo lookups never cross a domain boundary. *)
let fork t =
  {
    t with
    memo =
      Option.map
        (fun m -> Rewrite.Memo.create ~capacity:(Rewrite.Memo.capacity m) ())
        t.memo;
  }

let spec t = t.spec
let system t = t.system
let fuel t = t.fuel

type value =
  | Value of Term.t
  | Error_value of Sort.t
  | Stuck of Term.t
  | Diverged

let classify spec term =
  match Term.view term with
  | Term.Err s -> Error_value s
  | _ ->
    if Spec.is_constructor_ground_term spec term then Value term
    else Stuck term

let eval_count ?fuel ?poll ?on_rule t term =
  if not (Term.is_ground term) then
    invalid_arg
      (Fmt.str "Interp.eval: term %a has free variables" Term.pp term);
  let fuel = Option.value ~default:t.fuel fuel in
  let outcome =
    match t.memo with
    | None -> (
      match Rewrite.normalize_count ~fuel ?poll ?on_rule t.system term with
      | nf, steps -> Some (nf, steps)
      | exception Rewrite.Out_of_fuel _ -> None)
    | Some memo -> (
      match
        Rewrite.normalize_memo_count ~fuel ?poll ?on_rule ~memo t.system term
      with
      | nf, steps -> Some (nf, steps)
      | exception Rewrite.Out_of_fuel _ -> None)
  in
  match outcome with
  | None -> (Diverged, fuel)
  | Some (nf, steps) -> (classify t.spec nf, steps)

let eval ?fuel t term = fst (eval_count ?fuel t term)

let eval_bool t term =
  match eval t term with
  | Value v when Term.equal v Term.tt -> Some true
  | Value v when Term.equal v Term.ff -> Some false
  | _ -> None

let apply t name args =
  let op = Spec.find_op_exn name t.spec in
  Term.app op args

let call t name args = eval t (apply t name args)

let reduce ?fuel ?poll ?on_rule t term =
  let fuel = Option.value ~default:t.fuel fuel in
  match t.memo with
  | None -> Rewrite.normalize ~fuel ?poll ?on_rule t.system term
  | Some memo -> Rewrite.normalize_memo ~fuel ?poll ?on_rule ~memo t.system term

type memo_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  capacity : int;
}

let memo_stats t =
  Option.map
    (fun m ->
      {
        hits = Rewrite.Memo.hits m;
        misses = Rewrite.Memo.misses m;
        entries = Rewrite.Memo.size m;
        evictions = Rewrite.Memo.evictions m;
        capacity = Rewrite.Memo.capacity m;
      })
    t.memo

let steps t term =
  let _, n = Rewrite.normalize_count ~fuel:t.fuel t.system term in
  n

let trace ?max_events t term =
  Rewrite.trace ~fuel:t.fuel ?max_events t.system term

let pp_value ppf = function
  | Value v -> Term.pp ppf v
  | Error_value s -> Fmt.pf ppf "error : %a" Sort.pp s
  | Stuck t -> Fmt.pf ppf "stuck at %a" Term.pp t
  | Diverged -> Fmt.string ppf "diverged (out of fuel)"
