type t = {
  spec : Spec.t;
  system : Rewrite.system;
  fuel : int;
  memo : Rewrite.Memo.t option;
}

let create ?(fuel = Rewrite.default_fuel) ?(memo = false) spec =
  {
    spec;
    system = Rewrite.of_spec spec;
    fuel;
    memo = (if memo then Some (Rewrite.Memo.create ()) else None);
  }

let normalize_opt t term =
  match t.memo with
  | None -> Rewrite.normalize_opt ~fuel:t.fuel t.system term
  | Some memo -> (
    match Rewrite.normalize_memo ~fuel:t.fuel ~memo t.system term with
    | nf -> Some nf
    | exception Rewrite.Out_of_fuel _ -> None)

let spec t = t.spec
let system t = t.system

type value =
  | Value of Term.t
  | Error_value of Sort.t
  | Stuck of Term.t
  | Diverged

let classify spec term =
  match term with
  | Term.Err s -> Error_value s
  | _ ->
    if Spec.is_constructor_ground_term spec term then Value term
    else Stuck term

let eval t term =
  if not (Term.is_ground term) then
    invalid_arg
      (Fmt.str "Interp.eval: term %a has free variables" Term.pp term);
  match normalize_opt t term with
  | None -> Diverged
  | Some nf -> classify t.spec nf

let eval_bool t term =
  match eval t term with
  | Value v when Term.equal v Term.tt -> Some true
  | Value v when Term.equal v Term.ff -> Some false
  | _ -> None

let apply t name args =
  let op = Spec.find_op_exn name t.spec in
  Term.app op args

let call t name args = eval t (apply t name args)

let reduce t term =
  match t.memo with
  | None -> Rewrite.normalize ~fuel:t.fuel t.system term
  | Some memo -> Rewrite.normalize_memo ~fuel:t.fuel ~memo t.system term

let memo_stats t =
  Option.map
    (fun m -> (Rewrite.Memo.hits m, Rewrite.Memo.misses m, Rewrite.Memo.size m))
    t.memo

let steps t term =
  let _, n = Rewrite.normalize_count ~fuel:t.fuel t.system term in
  n

let trace ?max_events t term =
  Rewrite.trace ~fuel:t.fuel ?max_events t.system term

let pp_value ppf = function
  | Value v -> Term.pp ppf v
  | Error_value s -> Fmt.pf ppf "error : %a" Sort.pp s
  | Stuck t -> Fmt.pf ppf "stuck at %a" Term.pp t
  | Diverged -> Fmt.string ppf "diverged (out of fuel)"
