type failure =
  | Unorientable of Term.t * Term.t
  | Inconsistent of Term.t * Term.t
  | Bound_exceeded

type outcome = Completed of Rewrite.system | Failed of failure

type stats = {
  iterations : int;
  rules_added : int;
  pairs_considered : int;
}

let complete ?(max_rules = 256) ?(fuel = 50_000) ~precedence ~is_value axioms =
  let iterations = ref 0 and added = ref 0 and considered = ref 0 in
  let stats () =
    {
      iterations = !iterations;
      rules_added = !added;
      pairs_considered = !considered;
    }
  in
  let exception Stop of failure in
  let normalize sys t =
    match Rewrite.normalize_opt ~fuel sys t with
    | Some t' -> t'
    | None -> raise (Stop Bound_exceeded)
  in
  try
    let queue =
      Queue.of_seq
        (List.to_seq (List.map (fun ax -> (Axiom.lhs ax, Axiom.rhs ax)) axioms))
    in
    let sys = ref (Rewrite.of_rules []) in
    while not (Queue.is_empty queue) do
      incr iterations;
      if !iterations > 10_000 then raise (Stop Bound_exceeded);
      let a, b = Queue.pop queue in
      let a = normalize !sys a and b = normalize !sys b in
      if not (Term.equal a b) then begin
        if is_value a && is_value b then raise (Stop (Inconsistent (a, b)));
        match Ordering.orient precedence (a, b) with
        | Error _ -> raise (Stop (Unorientable (a, b)))
        | Ok (l, r) ->
          let new_rule = Rewrite.rule ~name:(Fmt.str "kb-%d" !added) ~lhs:l ~rhs:r () in
          incr added;
          if !added > max_rules then raise (Stop Bound_exceeded);
          let next = Rewrite.add_rules [ new_rule ] !sys in
          (* critical pairs of the new rule against the whole system *)
          let cps = Consistency.critical_pairs (Rewrite.rules next) in
          let fresh_cps =
            List.filter
              (fun cp ->
                String.equal cp.Consistency.rule1 new_rule.Rewrite.rule_name
                || String.equal cp.Consistency.rule2 new_rule.Rewrite.rule_name)
              cps
          in
          List.iter
            (fun cp ->
              incr considered;
              Queue.push (cp.Consistency.left, cp.Consistency.right) queue)
            fresh_cps;
          sys := next
      end
    done;
    (Completed !sys, stats ())
  with Stop failure -> (Failed failure, stats ())

let complete_spec ?max_rules ?fuel spec =
  let is_value t = Spec.is_constructor_term spec t || Term.is_error t in
  complete ?max_rules ?fuel
    ~precedence:(Ordering.dependency spec)
    ~is_value (Spec.axioms spec)

let pp_outcome ppf = function
  | Completed sys ->
    Fmt.pf ppf "completed: canonical system with %d rules" (Rewrite.size sys)
  | Failed (Unorientable (a, b)) ->
    Fmt.pf ppf "failed: cannot orient %a = %a" Term.pp a Term.pp b
  | Failed (Inconsistent (a, b)) ->
    Fmt.pf ppf "failed: INCONSISTENT, derived %a = %a" Term.pp a Term.pp b
  | Failed Bound_exceeded -> Fmt.string ppf "failed: bounds exceeded"

let pp_stats ppf s =
  Fmt.pf ppf "%d iteration(s), %d rule(s) added, %d critical pair(s) considered"
    s.iterations s.rules_added s.pairs_considered
