(** Named collections of specifications.

    A library is the environment behind [uses]: specifications registered
    by name, so that a hierarchy of `.adt` files can be layered the way
    section 4 layers Symboltable on Identifier and Attributelist, and the
    way the Knowlist exercise "simply adds another level". The CLI loads
    every [--lib] file into one library before checking the target file. *)

type t

val empty : t

val builtin : t
(** {!empty} — the builtin Boolean machinery needs no registration; it is
    part of every signature. Provided as a named starting point. *)

val add : Spec.t -> t -> t
(** Registers (or replaces) the specification under its own name. *)

val add_all : Spec.t list -> t -> t
val find : string -> t -> Spec.t option
val mem : string -> t -> bool
val names : t -> string list
(** In registration order. *)

val specs : t -> Spec.t list

val to_env : t -> string -> Spec.t option
(** The resolver to pass to {!Parser.parse_specs}. *)

val load_source : t -> string -> (t, Parser.error) result
(** Parses every specification of the input (resolving [uses] against the
    library and against earlier specifications of the same input) and
    registers them all. *)

val check_all :
  t -> (string * Completeness.report * Consistency.report) list
(** Completeness and consistency reports for every registered
    specification, in registration order. *)
