type keyword =
  | Kspec
  | Kuses
  | Ksort
  | Kops
  | Kconstructors
  | Kvars
  | Kaxioms
  | Kend
  | Kif
  | Kthen
  | Kelse
  | Kerror

type token =
  | Ident of string
  | Keyword of keyword
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Arrow
  | Equals
  | Lbracket
  | Rbracket
  | Eof

type located = { token : token; line : int; col : int }
type error = { line : int; col : int; message : string }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.col e.message

let keyword_of_string = function
  | "spec" -> Some Kspec
  | "uses" -> Some Kuses
  | "sort" -> Some Ksort
  | "ops" -> Some Kops
  | "constructors" -> Some Kconstructors
  | "vars" -> Some Kvars
  | "axioms" -> Some Kaxioms
  | "end" -> Some Kend
  | "if" -> Some Kif
  | "then" -> Some Kthen
  | "else" -> Some Kelse
  | "error" -> Some Kerror
  | _ -> None

let string_of_keyword = function
  | Kspec -> "spec"
  | Kuses -> "uses"
  | Ksort -> "sort"
  | Kops -> "ops"
  | Kconstructors -> "constructors"
  | Kvars -> "vars"
  | Kaxioms -> "axioms"
  | Kend -> "end"
  | Kif -> "if"
  | Kthen -> "then"
  | Kelse -> "else"
  | Kerror -> "error"

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Keyword k -> Fmt.pf ppf "keyword %s" (string_of_keyword k)
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Comma -> Fmt.string ppf ","
  | Colon -> Fmt.string ppf ":"
  | Arrow -> Fmt.string ppf "->"
  | Equals -> Fmt.string ppf "="
  | Lbracket -> Fmt.string ppf "["
  | Rbracket -> Fmt.string ppf "]"
  | Eof -> Fmt.string ppf "end of input"

(* digits may start an identifier so that bare axiom labels like [1] lex *)
let is_ident_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let is_ident_char c = is_ident_start c || c = '?' || c = '.' || c = '\''

let tokenize input =
  let n = String.length input in
  let line = ref 1 and col = ref 1 in
  let tokens = ref [] in
  let emit token = tokens := { token; line = !line; col = !col } :: !tokens in
  let exception Fail of error in
  let fail message = raise (Fail { line = !line; col = !col; message }) in
  let i = ref 0 in
  let advance k =
    for _ = 1 to k do
      (if !i < n && input.[!i] = '\n' then begin
         incr line;
         col := 0
       end);
      incr col;
      incr i
    done
  in
  try
    while !i < n do
      let c = input.[!i] in
      if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
      else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
        (* line comment *)
        while !i < n && input.[!i] <> '\n' do
          advance 1
        done
      end
      else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then begin
        emit Arrow;
        advance 2
      end
      else if c = '(' then (emit Lparen; advance 1)
      else if c = ')' then (emit Rparen; advance 1)
      else if c = ',' then (emit Comma; advance 1)
      else if c = ':' then (emit Colon; advance 1)
      else if c = '=' then (emit Equals; advance 1)
      else if c = '[' then (emit Lbracket; advance 1)
      else if c = ']' then (emit Rbracket; advance 1)
      else if is_ident_start c then begin
        let start = !i in
        let start_line = !line and start_col = !col in
        while !i < n && is_ident_char input.[!i] do
          advance 1
        done;
        let word = String.sub input start (!i - start) in
        let token =
          match keyword_of_string word with
          | Some k -> Keyword k
          | None -> Ident word
        in
        tokens := { token; line = start_line; col = start_col } :: !tokens
      end
      else fail (Fmt.str "unexpected character %C" c)
    done;
    emit Eof;
    Ok (List.rev !tokens)
  with Fail e -> Error e
