module String_map = Map.Make (String)

type t = {
  sorts : Sort.Set.t;
  by_name : Op.t String_map.t;
  rev_ops : Op.t list; (* reverse insertion order *)
}

let true_op = Op.v "true" ~args:[] ~result:Sort.bool
let false_op = Op.v "false" ~args:[] ~result:Sort.bool

let add_op op t =
  (match String_map.find_opt (Op.name op) t.by_name with
  | Some existing when Op.equal existing op -> ()
  | Some existing ->
    invalid_arg
      (Fmt.str "Signature.add_op: %a clashes with %a" Op.pp_decl op Op.pp_decl
         existing)
  | None -> ());
  let check_sort s =
    if not (Sort.Set.mem s t.sorts) then
      invalid_arg
        (Fmt.str "Signature.add_op: %a uses undeclared sort %a" Op.pp_decl op
           Sort.pp s)
  in
  List.iter check_sort (Op.args op);
  check_sort (Op.result op);
  if String_map.mem (Op.name op) t.by_name then t
  else
    {
      t with
      by_name = String_map.add (Op.name op) op t.by_name;
      rev_ops = op :: t.rev_ops;
    }

let empty =
  let base =
    {
      sorts = Sort.Set.singleton Sort.bool;
      by_name = String_map.empty;
      rev_ops = [];
    }
  in
  add_op false_op (add_op true_op base)

let add_sort s t = { t with sorts = Sort.Set.add s t.sorts }
let sorts t = t.sorts
let ops t = List.rev t.rev_ops
let mem_sort s t = Sort.Set.mem s t.sorts
let find_op name t = String_map.find_opt name t.by_name

let find_op_exn name t =
  match find_op name t with Some op -> op | None -> raise Not_found

let mem_op name t = String_map.mem name t.by_name

let ops_with_result sort t =
  List.filter (fun op -> Sort.equal (Op.result op) sort) (ops t)

let union a b =
  let with_sorts = Sort.Set.fold add_sort (sorts b) a in
  List.fold_left (fun acc op -> add_op op acc) with_sorts (ops b)

let cardinal t = String_map.cardinal t.by_name

let equal a b =
  Sort.Set.equal a.sorts b.sorts
  && String_map.equal Op.equal a.by_name b.by_name

let pp ppf t =
  Fmt.pf ppf "@[<v>sorts %a@,%a@]"
    Fmt.(list ~sep:sp Sort.pp)
    (Sort.Set.elements t.sorts)
    Fmt.(list ~sep:cut Op.pp_decl)
    (ops t)
