type token =
  | Ident of string
  | Number of int
  | Kbegin
  | Kend
  | Kdecl
  | Kknows
  | Kprint
  | Knot
  | Kif
  | Kthen
  | Kelse
  | Kwhile
  | Kdo
  | Kproc
  | Kreturn
  | Ktrue
  | Kfalse
  | Kint
  | Kbool
  | Assign
  | Colon
  | Semi
  | Comma
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Star
  | Less
  | Eqeq
  | Andand
  | Oror
  | Eof

type located = { token : token; line : int; col : int }
type error = { line : int; col : int; message : string }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.col e.message

let keyword = function
  | "begin" -> Some Kbegin
  | "end" -> Some Kend
  | "decl" -> Some Kdecl
  | "knows" -> Some Kknows
  | "print" -> Some Kprint
  | "not" -> Some Knot
  | "if" -> Some Kif
  | "then" -> Some Kthen
  | "else" -> Some Kelse
  | "while" -> Some Kwhile
  | "do" -> Some Kdo
  | "proc" -> Some Kproc
  | "return" -> Some Kreturn
  | "true" -> Some Ktrue
  | "false" -> Some Kfalse
  | "int" -> Some Kint
  | "bool" -> Some Kbool
  | _ -> None

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Number n -> Fmt.pf ppf "number %d" n
  | Kbegin -> Fmt.string ppf "begin"
  | Kend -> Fmt.string ppf "end"
  | Kdecl -> Fmt.string ppf "decl"
  | Kknows -> Fmt.string ppf "knows"
  | Kprint -> Fmt.string ppf "print"
  | Knot -> Fmt.string ppf "not"
  | Kif -> Fmt.string ppf "if"
  | Kthen -> Fmt.string ppf "then"
  | Kelse -> Fmt.string ppf "else"
  | Kwhile -> Fmt.string ppf "while"
  | Kdo -> Fmt.string ppf "do"
  | Kproc -> Fmt.string ppf "proc"
  | Kreturn -> Fmt.string ppf "return"
  | Ktrue -> Fmt.string ppf "true"
  | Kfalse -> Fmt.string ppf "false"
  | Kint -> Fmt.string ppf "int"
  | Kbool -> Fmt.string ppf "bool"
  | Assign -> Fmt.string ppf ":="
  | Colon -> Fmt.string ppf ":"
  | Semi -> Fmt.string ppf ";"
  | Comma -> Fmt.string ppf ","
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Plus -> Fmt.string ppf "+"
  | Minus -> Fmt.string ppf "-"
  | Star -> Fmt.string ppf "*"
  | Less -> Fmt.string ppf "<"
  | Eqeq -> Fmt.string ppf "=="
  | Andand -> Fmt.string ppf "&&"
  | Oror -> Fmt.string ppf "||"
  | Eof -> Fmt.string ppf "end of input"

let is_alpha c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_alpha c || is_digit c

let tokenize input =
  let n = String.length input in
  let line = ref 1 and col = ref 1 and i = ref 0 in
  let tokens = ref [] in
  let exception Fail of error in
  let fail message = raise (Fail { line = !line; col = !col; message }) in
  let advance k =
    for _ = 1 to k do
      (if !i < n && input.[!i] = '\n' then begin
         incr line;
         col := 0
       end);
      incr col;
      incr i
    done
  in
  let emit_at l c token = tokens := { token; line = l; col = c } :: !tokens in
  let emit token =
    emit_at !line !col token;
    advance
      (match token with
      | Assign | Eqeq | Andand | Oror -> 2
      | _ -> 1)
  in
  try
    while !i < n do
      let c = input.[!i] in
      let next = if !i + 1 < n then Some input.[!i + 1] else None in
      if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
      else if c = '-' && next = Some '-' then
        while !i < n && input.[!i] <> '\n' do
          advance 1
        done
      else if c = ':' && next = Some '=' then emit Assign
      else if c = '=' && next = Some '=' then emit Eqeq
      else if c = '&' && next = Some '&' then emit Andand
      else if c = '|' && next = Some '|' then emit Oror
      else if c = ':' then emit Colon
      else if c = ';' then emit Semi
      else if c = ',' then emit Comma
      else if c = '(' then emit Lparen
      else if c = ')' then emit Rparen
      else if c = '+' then emit Plus
      else if c = '-' then emit Minus
      else if c = '*' then emit Star
      else if c = '<' then emit Less
      else if is_digit c then begin
        let start = !i and l = !line and cl = !col in
        while !i < n && is_digit input.[!i] do
          advance 1
        done;
        let text = String.sub input start (!i - start) in
        match int_of_string_opt text with
        | Some v -> emit_at l cl (Number v)
        | None -> fail (Fmt.str "number %s out of range" text)
      end
      else if is_alpha c then begin
        let start = !i and l = !line and cl = !col in
        while !i < n && is_ident_char input.[!i] do
          advance 1
        done;
        let word = String.sub input start (!i - start) in
        emit_at l cl
          (match keyword word with Some k -> k | None -> Ident word)
      end
      else fail (Fmt.str "unexpected character %C" c)
    done;
    emit_at !line !col Eof;
    Ok (List.rev !tokens)
  with Fail e -> Error e
