(** Semantic analysis, functorized over the abstract symbol table.

    The checker performs the duties the paper assigns to the symbol table's
    client: it rejects duplicate declarations in a block (via
    [IS_INBLOCK?]), undeclared or not-visible identifiers (via [RETRIEVE]),
    and type mismatches (via the attributes retrieved); block entry and
    exit map to [ENTERBLOCK]/[LEAVEBLOCK]. On success it produces a
    resolved program in which every identifier occurrence carries its slot
    and type — the input of {!Codegen} and {!Eval}.

    Attributes are stored as [MK_ATTRS(type code, slot)] terms
    ({!Adt_specs.Attributes.mk}), so the same checker runs unchanged over
    the direct and the algebraic backends. *)

type kind =
  | Duplicate_declaration
  | Undeclared_identifier
  | Type_mismatch
  | Knows_unsupported
      (** The program uses knows lists but the backend does not support
          them. *)
  | Toplevel_knows  (** A knows list on the outermost block. *)
  | Not_a_procedure  (** Calling a variable, or using a procedure as one. *)
  | Misplaced_return  (** [return] outside any procedure body. *)

type diagnostic = { line : int; kind : kind; message : string }

val pp_diagnostic : diagnostic Fmt.t

(** {1 Resolved programs} *)

type rexpr = { rdesc : rexpr_desc; rty : Ast.typ }

and rexpr_desc =
  | RInt of int
  | RBool of bool
  | RVar of int  (** slot *)
  | RBinop of Ast.binop * rexpr * rexpr
  | RNot of rexpr
  | RCall of int * rexpr list  (** procedure-table index and arguments *)

type rstmt =
  | RDecl of int * Ast.typ
      (** slot, initialised to the type's default (0 / false) *)
  | RAssign of int * rexpr
  | RPrint of rexpr
  | RBlock of rstmt list
  | RIf of rexpr * rstmt list * rstmt list
  | RWhile of rexpr * rstmt list
  | RReturn of rexpr

type rproc = {
  pname : string;
  param_slots : int list;
  pbody : rstmt list;
  ret : Ast.typ;
}

type rprogram = { body : rstmt list; slot_count : int; procs : rproc list }

module Make (Symtab : Symtab_intf.SYMTAB) : sig
  val backend_name : string

  val check : Ast.program -> (rprogram, diagnostic list) result
  (** [Error] lists every diagnostic found (the checker recovers and keeps
      going after each error). *)

  val diagnostics : Ast.program -> diagnostic list
  (** [[]] iff [check] succeeds. *)
end

module Direct : module type of Make (Symtab_direct)
module Algebraic : module type of Make (Symtab_algebraic)
module Algebraic_knows : module type of Make (Symtab_algebraic_knows)
