(** The algebraic backend for the knows-list language variant, interpreting
    {!Adt_specs.Symboltable_knows_spec} symbolically. A plain block (no
    knows list) is entered with a knows list naming every program
    identifier, which makes it inherit everything — so this backend also
    runs plain programs, with verdicts identical to the other backends. *)

include Symtab_intf.SYMTAB

val term : t -> Adt.Term.t
