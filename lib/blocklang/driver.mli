(** One-call pipeline: parse, check (on a chosen backend), compile, run. *)

type backend = Direct | Algebraic | Algebraic_knows

val backend_of_string : string -> backend option
val backend_name : backend -> string
val all_backends : backend list

type outcome =
  | Parse_error of Parser.error
  | Check_errors of Checker.diagnostic list
  | Ran of Vm.value list
  | Runtime_error of string
      (** The machine trapped: a non-terminating program hit the step
          budget. Unreachable for terminating checked programs. *)

val check_source : backend -> string -> outcome
(** Parse and check only; [Ran []] stands for "no errors" (nothing is
    executed). *)

val run_source : backend -> string -> outcome
(** Parse, check, compile, execute. *)

val pp_outcome : outcome Fmt.t
