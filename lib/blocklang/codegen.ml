(* Code generation: resolved statements to stack code with symbolic labels,
   then a resolution pass to absolute targets.

   Layout: main code, Halt, then one body per procedure. A procedure entry
   stores its arguments (pushed left to right by the caller, so popped in
   reverse) into the parameter slots; a body that falls off its end pushes
   the return type's default and returns. *)

type label = int

type cinstr =
  | Raw of Vm.instr
  | Label of label
  | Jmp_l of label
  | Jz_l of label
  | Call_l of int  (** procedure index, resolved through the entry labels *)

let fresh_label =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let rec expr (e : Checker.rexpr) acc =
  match e.Checker.rdesc with
  | Checker.RInt n -> Raw (Vm.Push_int n) :: acc
  | Checker.RBool b -> Raw (Vm.Push_bool b) :: acc
  | Checker.RVar slot -> Raw (Vm.Load slot) :: acc
  | Checker.RBinop (op, a, b) -> expr a (expr b (Raw (Vm.Prim op) :: acc))
  | Checker.RNot a -> expr a (Raw Vm.Prim_not :: acc)
  | Checker.RCall (index, args) ->
    List.fold_right expr args (Call_l index :: acc)

let default_of = function
  | Ast.Tint -> Vm.Push_int 0
  | Ast.Tbool -> Vm.Push_bool false

let rec stmt (s : Checker.rstmt) acc =
  match s with
  | Checker.RDecl (slot, ty) ->
    (* explicit stores re-initialise locals of blocks that are entered
       repeatedly (loop bodies) *)
    Raw (default_of ty) :: Raw (Vm.Store slot) :: acc
  | Checker.RAssign (slot, e) -> expr e (Raw (Vm.Store slot) :: acc)
  | Checker.RPrint e -> expr e (Raw Vm.Print :: acc)
  | Checker.RBlock stmts -> List.fold_right stmt stmts acc
  | Checker.RIf (c, th, el) ->
    let l_else = fresh_label () and l_end = fresh_label () in
    expr c
      (Jz_l l_else
      :: List.fold_right stmt th
           (Jmp_l l_end :: Label l_else
           :: List.fold_right stmt el (Label l_end :: acc)))
  | Checker.RWhile (c, body) ->
    let l_top = fresh_label () and l_end = fresh_label () in
    Label l_top
    :: expr c
         (Jz_l l_end
         :: List.fold_right stmt body (Jmp_l l_top :: Label l_end :: acc))
  | Checker.RReturn e -> expr e (Raw Vm.Ret :: acc)

let proc_code entry (p : Checker.rproc) acc =
  let prologue =
    (* arguments arrive on the operand stack, last argument on top *)
    List.rev_map (fun slot -> Raw (Vm.Store slot)) p.Checker.param_slots
  in
  (Label entry :: prologue)
  @ List.fold_right stmt p.Checker.pbody
      (Raw (default_of p.Checker.ret) :: Raw Vm.Ret :: acc)

let resolve entries cinstrs =
  let targets = Hashtbl.create 16 in
  let (_ : int) =
    List.fold_left
      (fun pc ci ->
        match ci with
        | Label l ->
          Hashtbl.replace targets l pc;
          pc
        | Raw _ | Jmp_l _ | Jz_l _ | Call_l _ -> pc + 1)
      0 cinstrs
  in
  let target l =
    match Hashtbl.find_opt targets l with
    | Some pc -> pc
    | None -> assert false (* labels are always emitted *)
  in
  List.filter_map
    (function
      | Label _ -> None
      | Raw i -> Some i
      | Jmp_l l -> Some (Vm.Jmp (target l))
      | Jz_l l -> Some (Vm.Jz (target l))
      | Call_l index -> Some (Vm.Call (target entries.(index))))
    cinstrs
  |> Array.of_list

let compile (p : Checker.rprogram) =
  let entries =
    Array.of_list (List.map (fun _ -> fresh_label ()) p.Checker.procs)
  in
  let tail =
    List.fold_right
      (fun (index, proc) acc -> proc_code entries.(index) proc acc)
      (List.mapi (fun i proc -> (i, proc)) p.Checker.procs)
      []
  in
  let code =
    List.fold_right stmt p.Checker.body (Raw Vm.Halt :: tail)
  in
  { Vm.code = resolve entries code; slots = p.Checker.slot_count }
