type scope = {
  bindings : (string * Adt.Term.t) list; (* newest first *)
  knows : string list option; (* None: inherit everything *)
}

(* innermost scope first; never empty *)
type t = scope list

let backend_name = "direct"
let supports_knows = true
let create ~ids:_ = [ { bindings = []; knows = None } ]
let enterblock ?knows scopes = { bindings = []; knows } :: scopes

let leaveblock = function [] | [ _ ] -> None | _ :: rest -> Some rest

let add scopes id attrs =
  match scopes with
  | [] -> assert false
  | top :: rest -> { top with bindings = (id, attrs) :: top.bindings } :: rest

let is_inblock scopes id =
  match scopes with
  | [] -> assert false
  | top :: _ -> List.mem_assoc id top.bindings

let rec retrieve scopes id =
  match scopes with
  | [] -> None
  | top :: rest -> (
    match List.assoc_opt id top.bindings with
    | Some attrs -> Some attrs
    | None -> (
      match top.knows with
      | None -> retrieve rest id
      | Some k -> if List.mem id k then retrieve rest id else None))

let depth = List.length
