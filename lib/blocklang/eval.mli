(** A tree-walking reference interpreter for resolved programs, used for
    differential testing against {!Codegen} + {!Vm}. *)

val run : ?max_steps:int -> Checker.rprogram -> Vm.value list
(** [max_steps] (default 10 million statement executions) guards against
    non-terminating loops; exceeding it raises [Vm.Stuck]. *)
