open Adt
open Adt_specs

type t = { interp : Interp.t; all_ids : string list; state : Term.t }

let backend_name = "algebraic-knows"
let supports_knows = true

let create ~ids =
  let atoms = if ids = [] then [ "_none" ] else ids in
  let identifier = Identifier.spec_with_atoms atoms in
  let knowlist = Knowlist_spec.make ~identifier in
  let spec = Symboltable_knows_spec.make ~identifier ~knowlist in
  let interp = Interp.create spec in
  { interp; all_ids = atoms; state = Interp.apply interp "INIT" [] }

let id_term t name =
  Term.const (Spec.find_op_exn ("ID_" ^ name) (Interp.spec t.interp))

let knowlist_term t ids =
  List.fold_left
    (fun acc id -> Interp.apply t.interp "APPEND" [ acc; id_term t id ])
    (Interp.apply t.interp "CREATE" [])
    ids

let enterblock ?knows t =
  let ids = match knows with Some ids -> ids | None -> t.all_ids in
  {
    t with
    state = Interp.apply t.interp "ENTERBLOCK" [ t.state; knowlist_term t ids ];
  }

let eval_to_state t term =
  match Interp.eval t.interp term with
  | Interp.Value v -> Some { t with state = v }
  | Interp.Error_value _ | Interp.Stuck _ | Interp.Diverged -> None

let leaveblock t =
  eval_to_state t (Interp.apply t.interp "LEAVEBLOCK" [ t.state ])

let add t id attrs =
  { t with state = Interp.apply t.interp "ADD" [ t.state; id_term t id; attrs ] }

let is_inblock t id =
  match
    Interp.eval_bool t.interp
      (Interp.apply t.interp "IS_INBLOCK?" [ t.state; id_term t id ])
  with
  | Some b -> b
  | None -> false

let retrieve t id =
  match
    Interp.eval t.interp
      (Interp.apply t.interp "RETRIEVE" [ t.state; id_term t id ])
  with
  | Interp.Value attrs -> Some attrs
  | Interp.Error_value _ | Interp.Stuck _ | Interp.Diverged -> None

let term t = t.state
