exception Returned of Vm.value

let default_of = function
  | Ast.Tint -> Vm.Vint 0
  | Ast.Tbool -> Vm.Vbool false

let run ?(max_steps = 10_000_000) (p : Checker.rprogram) =
  let store = Array.make (max p.Checker.slot_count 1) (Vm.Vint 0) in
  let output = ref [] in
  let steps = ref 0 in
  let procs = Array.of_list p.Checker.procs in
  let rec expr (e : Checker.rexpr) =
    match e.Checker.rdesc with
    | Checker.RInt n -> Vm.Vint n
    | Checker.RBool b -> Vm.Vbool b
    | Checker.RVar slot -> store.(slot)
    | Checker.RBinop (op, a, b) ->
      let va = expr a in
      let vb = expr b in
      (match (op, va, vb) with
      | Ast.Add, Vm.Vint x, Vm.Vint y -> Vm.Vint (x + y)
      | Ast.Sub, Vm.Vint x, Vm.Vint y -> Vm.Vint (x - y)
      | Ast.Mul, Vm.Vint x, Vm.Vint y -> Vm.Vint (x * y)
      | Ast.Lt, Vm.Vint x, Vm.Vint y -> Vm.Vbool (x < y)
      | Ast.Eq, Vm.Vint x, Vm.Vint y -> Vm.Vbool (x = y)
      | Ast.And, Vm.Vbool x, Vm.Vbool y -> Vm.Vbool (x && y)
      | Ast.Or, Vm.Vbool x, Vm.Vbool y -> Vm.Vbool (x || y)
      | _ -> raise (Vm.Stuck "ill-typed primitive in checked program"))
    | Checker.RNot a -> (
      match expr a with
      | Vm.Vbool b -> Vm.Vbool (not b)
      | _ -> raise (Vm.Stuck "ill-typed not in checked program"))
    | Checker.RCall (index, args) ->
      let values = List.map expr args in
      let proc = procs.(index) in
      List.iter2
        (fun slot v -> store.(slot) <- v)
        proc.Checker.param_slots values;
      (try
         List.iter stmt proc.Checker.pbody;
         default_of proc.Checker.ret
       with Returned v -> v)
  and stmt s =
    incr steps;
    if !steps > max_steps then raise (Vm.Stuck "step budget exceeded");
    match s with
    | Checker.RDecl (slot, ty) -> store.(slot) <- default_of ty
    | Checker.RAssign (slot, e) -> store.(slot) <- expr e
    | Checker.RPrint e ->
      (* force evaluation first: a procedure called inside [e] may print,
         and OCaml would otherwise read [!output] before running [expr e] *)
      let v = expr e in
      output := v :: !output
    | Checker.RBlock stmts -> List.iter stmt stmts
    | Checker.RIf (c, th, el) -> (
      match expr c with
      | Vm.Vbool true -> List.iter stmt th
      | Vm.Vbool false -> List.iter stmt el
      | Vm.Vint _ -> raise (Vm.Stuck "ill-typed condition in checked program"))
    | Checker.RWhile (c, body) as loop -> (
      match expr c with
      | Vm.Vbool true ->
        List.iter stmt body;
        stmt loop
      | Vm.Vbool false -> ()
      | Vm.Vint _ -> raise (Vm.Stuck "ill-typed condition in checked program"))
    | Checker.RReturn e -> raise (Returned (expr e))
  in
  List.iter stmt p.Checker.body;
  List.rev !output
