type instr =
  | Push_int of int
  | Push_bool of bool
  | Load of int
  | Store of int
  | Prim of Ast.binop
  | Prim_not
  | Print
  | Jmp of int
  | Jz of int
  | Call of int
  | Ret
  | Halt

type program = { code : instr array; slots : int }

type value = Vint of int | Vbool of bool

let pp_value ppf = function
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b

let pp_instr ppf = function
  | Push_int n -> Fmt.pf ppf "push %d" n
  | Push_bool b -> Fmt.pf ppf "push %b" b
  | Load s -> Fmt.pf ppf "load %d" s
  | Store s -> Fmt.pf ppf "store %d" s
  | Prim op -> Fmt.pf ppf "prim %s" (Ast.binop_symbol op)
  | Prim_not -> Fmt.string ppf "not"
  | Print -> Fmt.string ppf "print"
  | Jmp target -> Fmt.pf ppf "jmp %d" target
  | Jz target -> Fmt.pf ppf "jz %d" target
  | Call target -> Fmt.pf ppf "call %d" target
  | Ret -> Fmt.string ppf "ret"
  | Halt -> Fmt.string ppf "halt"

let pp_program ppf p =
  Array.iteri (fun i instr -> Fmt.pf ppf "%3d: %a@." i pp_instr instr) p.code

exception Stuck of string

let prim op a b =
  match (op, a, b) with
  | Ast.Add, Vint x, Vint y -> Vint (x + y)
  | Ast.Sub, Vint x, Vint y -> Vint (x - y)
  | Ast.Mul, Vint x, Vint y -> Vint (x * y)
  | Ast.Lt, Vint x, Vint y -> Vbool (x < y)
  | Ast.Eq, Vint x, Vint y -> Vbool (x = y)
  | Ast.And, Vbool x, Vbool y -> Vbool (x && y)
  | Ast.Or, Vbool x, Vbool y -> Vbool (x || y)
  | _ -> raise (Stuck "primitive applied to ill-typed operands")

let run ?(max_steps = 10_000_000) p =
  let store = Array.make (max p.slots 1) (Vint 0) in
  let output = ref [] in
  let len = Array.length p.code in
  let steps = ref 0 in
  let check_target target =
    if target < 0 || target > len then raise (Stuck "jump out of range");
    target
  in
  let rec go pc stack frames =
    if pc = len then
      match (stack, frames) with
      | [], [] -> ()
      | _ -> raise (Stuck "fell off the end inside a call or with operands")
    else begin
      incr steps;
      if !steps > max_steps then raise (Stuck "step budget exceeded");
      if pc < 0 || pc > len then raise (Stuck "program counter out of range");
      match (p.code.(pc), stack) with
      | Push_int n, _ -> go (pc + 1) (Vint n :: stack) frames
      | Push_bool b, _ -> go (pc + 1) (Vbool b :: stack) frames
      | Load s, _ -> go (pc + 1) (store.(s) :: stack) frames
      | Store s, v :: rest ->
        store.(s) <- v;
        go (pc + 1) rest frames
      | Prim op, b :: a :: rest -> go (pc + 1) (prim op a b :: rest) frames
      | Prim_not, Vbool b :: rest -> go (pc + 1) (Vbool (not b) :: rest) frames
      | Print, v :: rest ->
        output := v :: !output;
        go (pc + 1) rest frames
      | Jmp target, _ -> go (check_target target) stack frames
      | Jz target, Vbool b :: rest ->
        if b then go (pc + 1) rest frames
        else go (check_target target) rest frames
      | Call target, _ -> go (check_target target) stack ((pc + 1) :: frames)
      | Ret, _ :: _ -> (
        match frames with
        | return_pc :: rest -> go return_pc stack rest
        | [] -> raise (Stuck "return with no frame"))
      | Halt, _ -> (
        match (stack, frames) with
        | [], [] -> ()
        | _ -> raise (Stuck "halt inside a call or with operands"))
      | (Store _ | Prim _ | Prim_not | Print | Jz _ | Ret), _ ->
        raise (Stuck "operand stack underflow or type confusion")
    end
  in
  go 0 [] [];
  List.rev !output
