(** The abstract symbol-table interface the checker is written against.

    This module boundary is the paper's thesis made code: the semantic
    analyser (see {!Checker}) uses exactly the six operations the paper
    specifies — INIT, ENTERBLOCK, LEAVEBLOCK, ADD, IS_INBLOCK?, RETRIEVE —
    and nothing else, so any implementation satisfying the algebraic
    specification can be substituted ("forced to write and test his module
    with only that information available to him", section 5). Attribute
    values travel as terms of sort [Attributelist].

    Experiment E8 runs the same checker over {!Symtab_direct} and
    {!Symtab_algebraic} and observes identical verdicts. *)

module type SYMTAB = sig
  type t

  val backend_name : string

  val supports_knows : bool
  (** Whether [enterblock] honours knows lists (the section-4 language
      variant). The checker refuses knows-list programs on a backend
      without support rather than silently mis-scoping. *)

  val create : ids:string list -> t
  (** The INIT operation. [ids] lists every identifier of the program
      being compiled — the algebraic backend builds its identifier-atom
      universe from it; direct backends may ignore it. *)

  val enterblock : ?knows:string list -> t -> t

  val leaveblock : t -> t option
  (** [None] when there is no enclosing scope — the paper's mismatched
      "end". *)

  val add : t -> string -> Adt.Term.t -> t
  val is_inblock : t -> string -> bool
  val retrieve : t -> string -> Adt.Term.t option
end
