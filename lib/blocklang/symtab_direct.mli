(** The direct symbol-table backend: a stack of scopes with association
    lists, knows-list aware. This is the production path; its behaviour
    must be indistinguishable from {!Symtab_algebraic} through the
    {!Symtab_intf.SYMTAB} interface. *)

include Symtab_intf.SYMTAB

val depth : t -> int
