type backend = Direct | Algebraic | Algebraic_knows

let backend_of_string = function
  | "direct" -> Some Direct
  | "algebraic" -> Some Algebraic
  | "algebraic-knows" -> Some Algebraic_knows
  | _ -> None

let backend_name = function
  | Direct -> "direct"
  | Algebraic -> "algebraic"
  | Algebraic_knows -> "algebraic-knows"

let all_backends = [ Direct; Algebraic; Algebraic_knows ]

type outcome =
  | Parse_error of Parser.error
  | Check_errors of Checker.diagnostic list
  | Ran of Vm.value list
  | Runtime_error of string
      (** The machine trapped: a non-terminating program hit the step
          budget. Unreachable for terminating checked programs. *)

let check_with backend program =
  match backend with
  | Direct -> Checker.Direct.check program
  | Algebraic -> Checker.Algebraic.check program
  | Algebraic_knows -> Checker.Algebraic_knows.check program

let check_source backend source =
  match Parser.parse source with
  | Error e -> Parse_error e
  | Ok program -> (
    match check_with backend program with
    | Error diags -> Check_errors diags
    | Ok _ -> Ran [])

let run_source backend source =
  match Parser.parse source with
  | Error e -> Parse_error e
  | Ok program -> (
    match check_with backend program with
    | Error diags -> Check_errors diags
    | Ok rp -> (
      match Vm.run (Codegen.compile rp) with
      | values -> Ran values
      | exception Vm.Stuck msg -> Runtime_error msg))

let pp_outcome ppf = function
  | Parse_error e -> Fmt.pf ppf "parse error: %a" Parser.pp_error e
  | Check_errors diags ->
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Checker.pp_diagnostic) diags
  | Ran values ->
    Fmt.pf ppf "@[<h>%a@]" Fmt.(list ~sep:sp Vm.pp_value) values
  | Runtime_error msg -> Fmt.pf ppf "runtime error: %s" msg
