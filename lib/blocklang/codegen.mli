(** Code generation from resolved programs to stack-machine code. *)

val compile : Checker.rprogram -> Vm.program
