type typ = Tint | Tbool

type binop = Add | Sub | Mul | Lt | Eq | And | Or

type expr = { desc : expr_desc; eline : int }

and expr_desc =
  | Int of int
  | Bool of bool
  | Var of string
  | Binop of binop * expr * expr
  | Not of expr
  | Call of string * expr list

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Decl of string * typ
  | Assign of string * expr
  | Print of expr
  | Block of block
  | If of expr * block * block option
  | While of expr * block
  | Proc of string * (string * typ) list * typ * block
  | Return of expr

and block = { knows : string list option; stmts : stmt list }

type program = block

let identifiers program =
  let add acc x = if List.mem x acc then acc else acc @ [ x ] in
  let rec expr acc e =
    match e.desc with
    | Int _ | Bool _ -> acc
    | Var x -> add acc x
    | Binop (_, a, b) -> expr (expr acc a) b
    | Not a -> expr acc a
    | Call (f, args) -> List.fold_left expr (add acc f) args
  in
  let rec stmt acc s =
    match s.sdesc with
    | Decl (x, _) -> add acc x
    | Assign (x, e) -> expr (add acc x) e
    | Print e -> expr acc e
    | Block b -> block acc b
    | If (c, th, el) ->
      let acc = block (expr acc c) th in
      (match el with None -> acc | Some el -> block acc el)
    | While (c, body) -> block (expr acc c) body
    | Proc (f, params, _, body) ->
      let acc = List.fold_left (fun acc (x, _) -> add acc x) (add acc f) params in
      block acc body
    | Return e -> expr acc e
  and block acc b =
    let acc =
      match b.knows with
      | None -> acc
      | Some ids -> List.fold_left add acc ids
    in
    List.fold_left stmt acc b.stmts
  in
  block [] program

let rec sub_blocks s =
  match s.sdesc with
  | Block b -> [ b ]
  | If (_, th, el) -> (th :: Option.to_list el)
  | While (_, body) -> [ body ]
  | Proc (_, _, _, body) -> [ body ]
  | Decl _ | Assign _ | Print _ | Return _ -> []

and block_count b =
  1
  + List.fold_left
      (fun n s -> List.fold_left (fun n b' -> n + block_count b') n (sub_blocks s))
      0 b.stmts

let rec max_depth b =
  1
  + List.fold_left
      (fun d s ->
        List.fold_left (fun d b' -> max d (max_depth b')) d (sub_blocks s))
      0 b.stmts

let pp_typ ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "bool"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Lt -> "<"
  | Eq -> "=="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf e =
  match e.desc with
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Var x -> Fmt.string ppf x
  | Binop (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Not a -> Fmt.pf ppf "(not %a)" pp_expr a
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args

let rec pp_stmt ppf s =
  match s.sdesc with
  | Decl (x, t) -> Fmt.pf ppf "decl %s : %a" x pp_typ t
  | Assign (x, e) -> Fmt.pf ppf "%s := %a" x pp_expr e
  | Print e -> Fmt.pf ppf "print %a" pp_expr e
  | Block b -> pp_block ppf b
  | If (c, th, None) -> Fmt.pf ppf "@[<v>if %a then %a@]" pp_expr c pp_block th
  | If (c, th, Some el) ->
    Fmt.pf ppf "@[<v>if %a then %a else %a@]" pp_expr c pp_block th pp_block el
  | While (c, body) -> Fmt.pf ppf "@[<v>while %a do %a@]" pp_expr c pp_block body
  | Proc (f, params, ret, body) ->
    let pp_param ppf (x, t) = Fmt.pf ppf "%s : %a" x pp_typ t in
    Fmt.pf ppf "@[<v>proc %s(%a) : %a %a@]" f
      Fmt.(list ~sep:comma pp_param)
      params pp_typ ret pp_block body
  | Return e -> Fmt.pf ppf "return %a" pp_expr e

and pp_block ppf b =
  let pp_knows ppf = function
    | None -> ()
    | Some ids -> Fmt.pf ppf " knows %a" Fmt.(list ~sep:comma string) ids
  in
  Fmt.pf ppf "@[<v 2>begin%a@,%a@]@,end" pp_knows b.knows
    Fmt.(list ~sep:(any ";@,") pp_stmt)
    b.stmts

let pp_program = pp_block
