type error = { line : int; col : int; message : string }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.col e.message

exception Fail of error

type state = { tokens : Lexer.located array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let fail_at (tok : Lexer.located) fmt =
  Fmt.kstr
    (fun message -> raise (Fail { line = tok.line; col = tok.col; message }))
    fmt

let expect st token =
  let tok = peek st in
  if tok.token = token then advance st
  else
    fail_at tok "expected %a, found %a" Lexer.pp_token token Lexer.pp_token
      tok.token

let accept st token =
  if (peek st).token = token then begin
    advance st;
    true
  end
  else false

let ident st =
  let tok = peek st in
  match tok.token with
  | Lexer.Ident x ->
    advance st;
    x
  | other -> fail_at tok "expected an identifier, found %a" Lexer.pp_token other

(* {2 Expressions: precedence climbing} *)

let rec expr st = or_expr st

and or_expr st =
  let left = and_expr st in
  if accept st Lexer.Oror then
    let right = or_expr st in
    { Ast.desc = Ast.Binop (Ast.Or, left, right); eline = left.Ast.eline }
  else left

and and_expr st =
  let left = cmp_expr st in
  if accept st Lexer.Andand then
    let right = and_expr st in
    { Ast.desc = Ast.Binop (Ast.And, left, right); eline = left.Ast.eline }
  else left

and cmp_expr st =
  let left = add_expr st in
  if accept st Lexer.Less then
    let right = add_expr st in
    { Ast.desc = Ast.Binop (Ast.Lt, left, right); eline = left.Ast.eline }
  else if accept st Lexer.Eqeq then
    let right = add_expr st in
    { Ast.desc = Ast.Binop (Ast.Eq, left, right); eline = left.Ast.eline }
  else left

and add_expr st =
  let rec loop left =
    if accept st Lexer.Plus then
      let right = mul_expr st in
      loop { Ast.desc = Ast.Binop (Ast.Add, left, right); eline = left.Ast.eline }
    else if accept st Lexer.Minus then
      let right = mul_expr st in
      loop { Ast.desc = Ast.Binop (Ast.Sub, left, right); eline = left.Ast.eline }
    else left
  in
  loop (mul_expr st)

and mul_expr st =
  let rec loop left =
    if accept st Lexer.Star then
      let right = unary st in
      loop { Ast.desc = Ast.Binop (Ast.Mul, left, right); eline = left.Ast.eline }
    else left
  in
  loop (unary st)

and unary st =
  let tok = peek st in
  if accept st Lexer.Knot then
    let inner = unary st in
    { Ast.desc = Ast.Not inner; eline = tok.line }
  else atom st

and atom st =
  let tok = peek st in
  match tok.token with
  | Lexer.Number n ->
    advance st;
    { Ast.desc = Ast.Int n; eline = tok.line }
  | Lexer.Ktrue ->
    advance st;
    { Ast.desc = Ast.Bool true; eline = tok.line }
  | Lexer.Kfalse ->
    advance st;
    { Ast.desc = Ast.Bool false; eline = tok.line }
  | Lexer.Ident x ->
    advance st;
    if accept st Lexer.Lparen then begin
      let rec args acc =
        if accept st Lexer.Rparen then List.rev acc
        else begin
          let a = expr st in
          if accept st Lexer.Comma then args (a :: acc)
          else begin
            expect st Lexer.Rparen;
            List.rev (a :: acc)
          end
        end
      in
      { Ast.desc = Ast.Call (x, args []); eline = tok.line }
    end
    else { Ast.desc = Ast.Var x; eline = tok.line }
  | Lexer.Lparen ->
    advance st;
    let e = expr st in
    expect st Lexer.Rparen;
    e
  | other -> fail_at tok "expected an expression, found %a" Lexer.pp_token other

(* {2 Statements and blocks} *)

let typ st =
  let t = peek st in
  match t.token with
  | Lexer.Kint ->
    advance st;
    Ast.Tint
  | Lexer.Kbool ->
    advance st;
    Ast.Tbool
  | other -> fail_at t "expected int or bool, found %a" Lexer.pp_token other

let rec stmt st =
  let tok = peek st in
  match tok.token with
  | Lexer.Kdecl ->
    advance st;
    let x = ident st in
    expect st Lexer.Colon;
    let ty = typ st in
    { Ast.sdesc = Ast.Decl (x, ty); sline = tok.line }
  | Lexer.Kprint ->
    advance st;
    let e = expr st in
    { Ast.sdesc = Ast.Print e; sline = tok.line }
  | Lexer.Kbegin ->
    let b = block st in
    { Ast.sdesc = Ast.Block b; sline = tok.line }
  | Lexer.Kif ->
    advance st;
    let c = expr st in
    expect st (Lexer.Kthen);
    let th = block st in
    let el =
      if accept st Lexer.Kelse then Some (block st) else None
    in
    { Ast.sdesc = Ast.If (c, th, el); sline = tok.line }
  | Lexer.Kwhile ->
    advance st;
    let c = expr st in
    expect st Lexer.Kdo;
    let body = block st in
    { Ast.sdesc = Ast.While (c, body); sline = tok.line }
  | Lexer.Kproc ->
    advance st;
    let name = ident st in
    expect st Lexer.Lparen;
    let rec params acc =
      if accept st Lexer.Rparen then List.rev acc
      else begin
        let x = ident st in
        expect st Lexer.Colon;
        let ty = typ st in
        if accept st Lexer.Comma then params ((x, ty) :: acc)
        else begin
          expect st Lexer.Rparen;
          List.rev ((x, ty) :: acc)
        end
      end
    in
    let params = params [] in
    expect st Lexer.Colon;
    let ret = typ st in
    let body = block st in
    { Ast.sdesc = Ast.Proc (name, params, ret, body); sline = tok.line }
  | Lexer.Kreturn ->
    advance st;
    let e = expr st in
    { Ast.sdesc = Ast.Return e; sline = tok.line }
  | Lexer.Ident x ->
    advance st;
    expect st Lexer.Assign;
    let e = expr st in
    { Ast.sdesc = Ast.Assign (x, e); sline = tok.line }
  | other -> fail_at tok "expected a statement, found %a" Lexer.pp_token other

and block st =
  expect st Lexer.Kbegin;
  let knows =
    if accept st Lexer.Kknows then begin
      let rec idents acc =
        match (peek st).token with
        | Lexer.Ident x ->
          advance st;
          if accept st Lexer.Comma then idents (acc @ [ x ]) else acc @ [ x ]
        | _ -> acc
      in
      Some (idents [])
    end
    else None
  in
  let rec stmts acc =
    match (peek st).token with
    | Lexer.Kend ->
      advance st;
      acc
    | Lexer.Semi ->
      advance st;
      stmts acc
    | _ ->
      let s = stmt st in
      let acc = acc @ [ s ] in
      if accept st Lexer.Semi then stmts acc
      else begin
        expect st Lexer.Kend;
        acc
      end
  in
  { Ast.knows; stmts = stmts [] }

let parse input =
  match Lexer.tokenize input with
  | Error { Lexer.line; col; message } -> Error { line; col; message }
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    try
      let b = block st in
      expect st Lexer.Eof;
      Ok b
    with Fail e -> Error e)

let parse_exn input =
  match parse input with
  | Ok p -> p
  | Error e -> failwith (Fmt.str "%a" pp_error e)
