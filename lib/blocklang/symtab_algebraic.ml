open Adt
open Adt_specs

type t = { interp : Interp.t; state : Term.t }

let backend_name = "algebraic"
let supports_knows = false

let create ~ids =
  let atoms = if ids = [] then [ "_none" ] else ids in
  let identifier = Identifier.spec_with_atoms atoms in
  let spec = Symboltable_spec.make ~identifier in
  let interp = Interp.create spec in
  { interp; state = Interp.apply interp "INIT" [] }

let id_term t name =
  Term.const (Spec.find_op_exn ("ID_" ^ name) (Interp.spec t.interp))

let enterblock ?knows t =
  match knows with
  | Some _ -> invalid_arg "Symtab_algebraic: knows lists are not supported"
  | None -> { t with state = Interp.apply t.interp "ENTERBLOCK" [ t.state ] }

let eval_to_state t term =
  match Interp.eval t.interp term with
  | Interp.Value v -> Some { t with state = v }
  | Interp.Error_value _ | Interp.Stuck _ | Interp.Diverged -> None

let leaveblock t =
  eval_to_state t (Interp.apply t.interp "LEAVEBLOCK" [ t.state ])

let add t id attrs =
  { t with state = Interp.apply t.interp "ADD" [ t.state; id_term t id; attrs ] }

let is_inblock t id =
  match
    Interp.eval_bool t.interp
      (Interp.apply t.interp "IS_INBLOCK?" [ t.state; id_term t id ])
  with
  | Some b -> b
  | None -> false

let retrieve t id =
  match
    Interp.eval t.interp
      (Interp.apply t.interp "RETRIEVE" [ t.state; id_term t id ])
  with
  | Interp.Value attrs -> Some attrs
  | Interp.Error_value _ | Interp.Stuck _ | Interp.Diverged -> None

let term t = t.state
