type kind =
  | Duplicate_declaration
  | Undeclared_identifier
  | Type_mismatch
  | Knows_unsupported
  | Toplevel_knows
  | Not_a_procedure
  | Misplaced_return

type diagnostic = { line : int; kind : kind; message : string }

let pp_kind ppf = function
  | Duplicate_declaration -> Fmt.string ppf "duplicate declaration"
  | Undeclared_identifier -> Fmt.string ppf "undeclared identifier"
  | Type_mismatch -> Fmt.string ppf "type mismatch"
  | Knows_unsupported -> Fmt.string ppf "knows lists unsupported"
  | Toplevel_knows -> Fmt.string ppf "knows list on outermost block"
  | Not_a_procedure -> Fmt.string ppf "not a procedure"
  | Misplaced_return -> Fmt.string ppf "misplaced return"

let pp_diagnostic ppf d =
  Fmt.pf ppf "line %d: %a: %s" d.line pp_kind d.kind d.message

type rexpr = { rdesc : rexpr_desc; rty : Ast.typ }

and rexpr_desc =
  | RInt of int
  | RBool of bool
  | RVar of int
  | RBinop of Ast.binop * rexpr * rexpr
  | RNot of rexpr
  | RCall of int * rexpr list

type rstmt =
  | RDecl of int * Ast.typ
  | RAssign of int * rexpr
  | RPrint of rexpr
  | RBlock of rstmt list
  | RIf of rexpr * rstmt list * rstmt list
  | RWhile of rexpr * rstmt list
  | RReturn of rexpr

type rproc = {
  pname : string;
  param_slots : int list;
  pbody : rstmt list;
  ret : Ast.typ;
}

type rprogram = { body : rstmt list; slot_count : int; procs : rproc list }

let ty_code = function Ast.Tint -> 0 | Ast.Tbool -> 1
let ty_of_code = function 0 -> Ast.Tint | _ -> Ast.Tbool

let binop_sig = function
  | Ast.Add | Ast.Sub | Ast.Mul -> (Ast.Tint, Ast.Tint)
  | Ast.Lt | Ast.Eq -> (Ast.Tint, Ast.Tbool)
  | Ast.And | Ast.Or -> (Ast.Tbool, Ast.Tbool)

module Make (Symtab : Symtab_intf.SYMTAB) = struct
  let backend_name = Symtab.backend_name

  type env = {
    mutable st : Symtab.t;
    mutable diags : diagnostic list;
    mutable slots : int;
    mutable procs : rproc list; (* reverse order *)
    mutable current_ret : Ast.typ option;
  }

  let report env line kind message = env.diags <- { line; kind; message } :: env.diags

  let fresh_slot env =
    let s = env.slots in
    env.slots <- s + 1;
    s

  (* error recovery: a dummy expression of the wanted type *)
  let dummy ty =
    { rdesc = (match ty with Ast.Tint -> RInt 0 | Ast.Tbool -> RBool false); rty = ty }

  let rec check_expr env (e : Ast.expr) : rexpr =
    match e.Ast.desc with
    | Ast.Int n -> { rdesc = RInt n; rty = Ast.Tint }
    | Ast.Bool b -> { rdesc = RBool b; rty = Ast.Tbool }
    | Ast.Var x -> (
      match Symtab.retrieve env.st x with
      | None ->
        report env e.Ast.eline Undeclared_identifier
          (Fmt.str "%s is not declared or not visible here" x);
        dummy Ast.Tint
      | Some attrs -> (
        match Adt_specs.Attributes.decode attrs with
        | Some (code, slot) -> { rdesc = RVar slot; rty = ty_of_code code }
        | None ->
          report env e.Ast.eline Type_mismatch
            (Fmt.str "%s is a procedure, not a variable" x);
          dummy Ast.Tint))
    | Ast.Call (f, args) -> (
      let rargs = List.map (check_expr env) args in
      match Symtab.retrieve env.st f with
      | None ->
        report env e.Ast.eline Undeclared_identifier
          (Fmt.str "%s is not declared or not visible here" f);
        dummy Ast.Tint
      | Some attrs -> (
        match Adt_specs.Attributes.decode_proc attrs with
        | None ->
          report env e.Ast.eline Not_a_procedure
            (Fmt.str "%s is a variable, not a procedure" f);
          dummy Ast.Tint
        | Some (ret_code, param_codes, index) ->
          let ret_ty = ty_of_code ret_code in
          if List.length param_codes <> List.length rargs then begin
            report env e.Ast.eline Type_mismatch
              (Fmt.str "%s expects %d argument(s), got %d" f
                 (List.length param_codes) (List.length rargs));
            dummy ret_ty
          end
          else begin
            List.iteri
              (fun i (code, (r : rexpr)) ->
                if r.rty <> ty_of_code code then
                  report env e.Ast.eline Type_mismatch
                    (Fmt.str "argument %d of %s has type %a, expected %a"
                       (i + 1) f Ast.pp_typ r.rty Ast.pp_typ
                       (ty_of_code code)))
              (List.combine param_codes rargs);
            { rdesc = RCall (index, rargs); rty = ret_ty }
          end))
    | Ast.Binop (op, a, b) ->
      let want, result = binop_sig op in
      let ra = check_expr env a and rb = check_expr env b in
      let coerce side (r : rexpr) =
        if r.rty = want then r
        else begin
          report env e.Ast.eline Type_mismatch
            (Fmt.str "%s operand of %s has type %a, expected %a" side
               (Ast.binop_symbol op) Ast.pp_typ r.rty Ast.pp_typ want);
          dummy want
        end
      in
      { rdesc = RBinop (op, coerce "left" ra, coerce "right" rb); rty = result }
    | Ast.Not a ->
      let ra = check_expr env a in
      let ra =
        if ra.rty = Ast.Tbool then ra
        else begin
          report env e.Ast.eline Type_mismatch "operand of not must be bool";
          dummy Ast.Tbool
        end
      in
      { rdesc = RNot ra; rty = Ast.Tbool }

  let rec check_stmt env (s : Ast.stmt) : rstmt option =
    match s.Ast.sdesc with
    | Ast.Decl (x, ty) ->
      if Symtab.is_inblock env.st x then begin
        report env s.Ast.sline Duplicate_declaration
          (Fmt.str "%s is already declared in this block" x);
        None
      end
      else begin
        let slot = fresh_slot env in
        let attrs = Adt_specs.Attributes.mk ~ty:(ty_code ty) ~slot in
        env.st <- Symtab.add env.st x attrs;
        Some (RDecl (slot, ty))
      end
    | Ast.Assign (x, e) -> (
      let re = check_expr env e in
      match Symtab.retrieve env.st x with
      | None ->
        report env s.Ast.sline Undeclared_identifier
          (Fmt.str "%s is not declared or not visible here" x);
        None
      | Some attrs -> (
        match Adt_specs.Attributes.decode attrs with
        | Some (code, slot) ->
          let ty = ty_of_code code in
          if re.rty <> ty then begin
            report env s.Ast.sline Type_mismatch
              (Fmt.str "cannot assign %a to %s : %a" Ast.pp_typ re.rty x
                 Ast.pp_typ ty);
            None
          end
          else Some (RAssign (slot, re))
        | None ->
          report env s.Ast.sline Not_a_procedure
            (Fmt.str "%s is a procedure; it cannot be assigned" x);
          None))
    | Ast.Print e -> Some (RPrint (check_expr env e))
    | Ast.Block b -> check_block env b
    | Ast.If (c, th, el) ->
      let rc = check_bool_condition env s.Ast.sline c in
      let rth = check_block_stmts env th in
      let rel =
        match el with None -> Some [] | Some el -> check_block_stmts env el
      in
      (match (rth, rel) with
      | Some rth, Some rel -> Some (RIf (rc, rth, rel))
      | _ -> None)
    | Ast.While (c, body) -> (
      let rc = check_bool_condition env s.Ast.sline c in
      match check_block_stmts env body with
      | Some rbody -> Some (RWhile (rc, rbody))
      | None -> None)
    | Ast.Proc (f, params, ret, body) ->
      if Symtab.is_inblock env.st f then begin
        report env s.Ast.sline Duplicate_declaration
          (Fmt.str "%s is already declared in this block" f);
        None
      end
      else begin
        (* parameters live in a scope wrapped around the body; the body
           block opens its own scope inside it *)
        let saved_ret = env.current_ret in
        env.current_ret <- Some ret;
        env.st <- Symtab.enterblock env.st;
        let param_slots =
          List.map
            (fun (x, ty) ->
              let slot = fresh_slot env in
              if Symtab.is_inblock env.st x then
                report env s.Ast.sline Duplicate_declaration
                  (Fmt.str "duplicate parameter %s of %s" x f)
              else
                env.st <-
                  Symtab.add env.st x
                    (Adt_specs.Attributes.mk ~ty:(ty_code ty) ~slot);
              slot)
            params
        in
        let rbody = check_block_stmts env body in
        (match Symtab.leaveblock env.st with
        | Some st -> env.st <- st
        | None -> assert false);
        env.current_ret <- saved_ret;
        match rbody with
        | None -> None
        | Some pbody ->
          let index = List.length env.procs in
          env.procs <- { pname = f; param_slots; pbody; ret } :: env.procs;
          let attrs =
            Adt_specs.Attributes.mk_proc ~ret:(ty_code ret)
              ~params:(List.map (fun (_, ty) -> ty_code ty) params)
              ~index
          in
          env.st <- Symtab.add env.st f attrs;
          (* the declaration itself emits no code *)
          Some (RBlock [])
      end
    | Ast.Return e -> (
      let re = check_expr env e in
      match env.current_ret with
      | None ->
        report env s.Ast.sline Misplaced_return
          "return outside of any procedure";
        None
      | Some ret ->
        if re.rty <> ret then begin
          report env s.Ast.sline Type_mismatch
            (Fmt.str "return value has type %a, the procedure returns %a"
               Ast.pp_typ re.rty Ast.pp_typ ret);
          None
        end
        else Some (RReturn re))

  and check_bool_condition env line c =
    let rc = check_expr env c in
    if rc.rty = Ast.Tbool then rc
    else begin
      report env line Type_mismatch
        (Fmt.str "condition has type %a, expected bool" Ast.pp_typ rc.rty);
      dummy Ast.Tbool
    end

  (* a control-flow body: check as a block, then unwrap the statement list *)
  and check_block_stmts env b =
    match check_block env b with
    | Some (RBlock stmts) -> Some stmts
    | Some _ -> assert false
    | None -> None

  and check_block env (b : Ast.block) : rstmt option =
    if b.Ast.knows <> None && not Symtab.supports_knows then begin
      report env 0 Knows_unsupported
        (Fmt.str "backend %s cannot check knows-list programs" backend_name);
      None
    end
    else begin
      env.st <- Symtab.enterblock ?knows:b.Ast.knows env.st;
      let stmts = List.filter_map (check_stmt env) b.Ast.stmts in
      (match Symtab.leaveblock env.st with
      | Some st -> env.st <- st
      | None -> assert false (* enterblock above guarantees a scope *));
      Some (RBlock stmts)
    end

  let run (p : Ast.program) =
    let ids = Ast.identifiers p in
    let env =
      {
        st = Symtab.create ~ids;
        diags = [];
        slots = 0;
        procs = [];
        current_ret = None;
      }
    in
    if p.Ast.knows <> None then
      report env 0 Toplevel_knows "the outermost block cannot have a knows list";
    (* the outermost block lives in the scope INIT established: check its
       statements without a further ENTERBLOCK *)
    let stmts = List.filter_map (check_stmt env) p.Ast.stmts in
    (env, { body = stmts; slot_count = env.slots; procs = List.rev env.procs })

  let check p =
    let env, rp = run p in
    match env.diags with [] -> Ok rp | diags -> Error (List.rev diags)

  let diagnostics p =
    let env, _ = run p in
    List.rev env.diags
end

module Direct = Make (Symtab_direct)
module Algebraic = Make (Symtab_algebraic)
module Algebraic_knows = Make (Symtab_algebraic_knows)
