(** Recursive-descent parser for the block-structured language.

    {v
    begin
      decl x : int;
      x := 1 + 2;
      begin
        decl x : int;        -- shadows the outer x
        x := 3;
        print x
      end;
      print x
    end
    v}

    Control flow takes block bodies:
    [if x < 3 then begin ... end else begin ... end] and
    [while x < 3 do begin ... end] — so each branch and each loop
    iteration opens its own scope.

    The knows-list variant opens inner blocks with
    [begin knows x, y ... end]; such blocks see only the listed nonlocal
    identifiers (plus their own declarations). [--] starts a line
    comment. *)

type error = { line : int; col : int; message : string }

val pp_error : error Fmt.t

val parse : string -> (Ast.program, error) result

val parse_exn : string -> Ast.program
(** Raises [Failure] with a rendered error. *)
