(** A small stack-machine target for checked programs.

    Straight-line code plus two jump instructions for the structured
    control flow ([if]/[while]); blocks themselves erase after checking.
    Running compiled code and the tree-walking {!Eval} must agree — a
    differential test of the whole pipeline. *)

type instr =
  | Push_int of int
  | Push_bool of bool
  | Load of int  (** slot -> stack *)
  | Store of int  (** stack -> slot *)
  | Prim of Ast.binop
  | Prim_not
  | Print
  | Jmp of int  (** absolute target *)
  | Jz of int  (** pop a bool; jump when false *)
  | Call of int
      (** absolute procedure entry; pushes the return address on the frame
          stack *)
  | Ret  (** return to the top frame, the return value stays on the stack *)
  | Halt  (** end of the main code, before the procedure bodies *)

type program = { code : instr array; slots : int }

type value = Vint of int | Vbool of bool

val pp_value : value Fmt.t
val pp_instr : instr Fmt.t
val pp_program : program Fmt.t

exception Stuck of string
(** Type-confused, underflowing, or out-of-range code — impossible for
    checker-produced programs. *)

val run : ?max_steps:int -> program -> value list
(** The values printed, in order. [max_steps] (default 10 million) guards
    against non-terminating loops; exceeding it raises {!Stuck}. *)
