(** The algebraic symbol-table backend: no data structure at all.

    Section 5 of the paper: "In the absence of an implementation, the
    operations of the algebra may be interpreted symbolically. Thus, except
    for a significant loss in efficiency, the lack of an implementation can
    be made completely transparent to the user."

    The state is a ground term of sort Symboltable; every operation builds
    the corresponding application and the answers ([IS_INBLOCK?],
    [RETRIEVE]) are obtained by normalizing with the axioms. [create]
    instantiates {!Adt_specs.Symboltable_spec.make} over an identifier-atom
    universe derived from the program's identifiers. *)

include Symtab_intf.SYMTAB

val term : t -> Adt.Term.t
(** The current symbolic symbol-table value (constructor normal form). *)
