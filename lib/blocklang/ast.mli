(** Abstract syntax of the block-structured language.

    A deliberately small language exhibiting exactly the features the
    paper's symbol table serves: nested blocks with local declarations and
    shadowing, optional "knows lists" at block entry (the section-4
    variant), integer and Boolean expressions, assignment and printing. *)

type typ = Tint | Tbool

type binop = Add | Sub | Mul | Lt | Eq | And | Or

type expr = { desc : expr_desc; eline : int }

and expr_desc =
  | Int of int
  | Bool of bool
  | Var of string
  | Binop of binop * expr * expr
  | Not of expr
  | Call of string * expr list
      (** Procedure call, [double(21)]. *)

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Decl of string * typ
  | Assign of string * expr
  | Print of expr
  | Block of block
  | If of expr * block * block option
      (** [if e then begin .. end else begin .. end]; each branch is a
          block and opens its own scope. *)
  | While of expr * block
      (** [while e do begin .. end]; the body opens its own scope on every
          iteration. *)
  | Proc of string * (string * typ) list * typ * block
      (** [proc f(a : int, b : bool) : int begin .. end]. The body sees
          the enclosing scopes (static scoping); the name enters scope
          only after the body, so direct recursion is rejected as an
          undeclared identifier. *)
  | Return of expr
      (** Only legal inside a procedure body. Falling off the end of a
          procedure yields the return type's default (0 / false). *)

and block = {
  knows : string list option;
      (** [None] in the plain language; [Some ids] when the block was
          opened with a knows list (which may be empty). *)
  stmts : stmt list;
}

type program = block

val identifiers : program -> string list
(** Every identifier occurring anywhere (declarations, uses, knows lists),
    without duplicates, in first-occurrence order. *)

val block_count : program -> int
val max_depth : program -> int

val pp_typ : typ Fmt.t
val binop_symbol : binop -> string

val pp_program : program Fmt.t
(** Re-renders parseable source. *)
