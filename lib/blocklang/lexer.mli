(** Lexer for the block-structured language. *)

type token =
  | Ident of string
  | Number of int
  | Kbegin
  | Kend
  | Kdecl
  | Kknows
  | Kprint
  | Knot
  | Kif
  | Kthen
  | Kelse
  | Kwhile
  | Kdo
  | Kproc
  | Kreturn
  | Ktrue
  | Kfalse
  | Kint
  | Kbool
  | Assign  (** [:=] *)
  | Colon
  | Semi
  | Comma
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Star
  | Less
  | Eqeq
  | Andand
  | Oror
  | Eof

type located = { token : token; line : int; col : int }
type error = { line : int; col : int; message : string }

val pp_error : error Fmt.t
val pp_token : token Fmt.t
val tokenize : string -> (located list, error) result
