(** Crash-safe on-disk result store, keyed by content digest.

    One store is a directory; one entry file per specification digest
    ({!Adt.Spec_digest.spec}), holding a flat list of [(kind, key,
    value)] string records — the store is deliberately dumb: the engine
    decides that a record is a normal form keyed by a canonical term
    rendering, a lint payload, or a testgen verdict. Being keyed by
    content means an entry outlives the process (warm restarts) and is
    never served for an edited specification (a different digest is a
    different file).

    {b Crash safety.} Writes build the whole entry file in a temporary
    sibling and [rename] it into place — readers see either the old
    complete entry or the new complete entry, never a torn one. Entry
    files carry a magic header, a format version, the digest they claim
    to serve, and an MD5 checksum of the body; a short read, a flipped
    bit, a foreign file, or a format bump all fail validation and are
    {e counted and treated as a miss — never a crash and never a wrong
    answer} (the differential suite in [test/test_persist.ml] holds the
    engine to that).

    {b Single writer.} The first open of a directory (per machine, via
    [lockf]; per process, via an in-process registry — POSIX record
    locks do not exclude the owning process) gets read-write mode;
    every later open falls back to {!Read_only}, where {!append} is a
    no-op and reads still serve. So a second server pointed at a live
    cache directory degrades instead of corrupting.

    {b Bounded size.} [max_bytes] garbage-collects oldest-first (entry
    mtime) after every append; [gc]/[stats]/[clear] back the
    [adtc cache] commands. *)

type t

type mode = Read_write | Read_only

type record = { kind : string; key : string; value : string }

val magic : string
val format_version : int

val open_ : ?max_bytes:int -> string -> t
(** Opens (creating if needed) the store directory. Raises [Failure]
    when the directory cannot be created; lock contention is not an
    error — it yields a {!Read_only} store. *)

val close : t -> unit
(** Releases the writer lock (idempotent). *)

val mode : t -> mode
val dir : t -> string
val max_bytes : t -> int option

val entry_path : t -> digest:string -> string
(** Where the entry for [digest] lives — exposed for the corruption
    tests. *)

val load : t -> digest:string -> record list
(** The records of the entry, or [[]] when the entry is absent or fails
    validation (the latter bumps {!corrupt_count}). *)

val append : t -> digest:string -> record list -> unit
(** Merges the records into the entry — a new record replaces an
    existing one with the same [(kind, key)] — and atomically replaces
    the entry file. A no-op in {!Read_only} mode. Runs the size-bound
    GC when [max_bytes] was given. *)

val corrupt_count : t -> int
(** Validation failures observed by this handle (monotone). *)

type stats = { files : int; bytes : int }

val stats : t -> stats
(** Entry files only (lock and temporary files excluded). *)

val gc : ?max_bytes:int -> t -> int
(** Deletes oldest entries until the store fits [max_bytes] (default:
    the bound given at {!open_}; no bound means no deletion). Returns
    the number of entries removed. *)

val clear : t -> int
(** Deletes every entry. Returns the number removed. *)
