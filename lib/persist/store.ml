let magic = "ADTCACHE"
let format_version = 1

type mode = Read_write | Read_only

type record = { kind : string; key : string; value : string }

type t = {
  dir : string;
  canon : string;  (* realpath, the in-process lock registry key *)
  mode : mode;
  lock_fd : Unix.file_descr option;
  max_bytes : int option;
  mutable corrupt : int;
  mutable closed : bool;
  corrupt_lock : Mutex.t;
}

(* {1 The writer lock}

   [lockf] excludes other processes but not the owning process (POSIX
   record locks are per-process), so a same-process second open is
   excluded by this registry instead — the read-only fallback behaves
   identically either way. *)

let registry_lock = Mutex.create ()
let locked_dirs : (string, unit) Hashtbl.t = Hashtbl.create 8

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
      failwith
        (Fmt.str "persist: cannot create %s: %s" dir (Unix.error_message e))
  end
  else if not (Sys.is_directory dir) then
    failwith (Fmt.str "persist: %s exists and is not a directory" dir)

let open_ ?max_bytes dir =
  mkdirs dir;
  let canon = try Unix.realpath dir with Unix.Unix_error _ | Sys_error _ -> dir in
  let lock_path = Filename.concat dir "lock" in
  let mode, lock_fd =
    Mutex.protect registry_lock (fun () ->
        if Hashtbl.mem locked_dirs canon then (Read_only, None)
        else
          match
            Unix.openfile lock_path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
          with
          | exception Unix.Unix_error _ -> (Read_only, None)
          | fd -> (
            match Unix.lockf fd Unix.F_TLOCK 0 with
            | () ->
              Hashtbl.replace locked_dirs canon ();
              (Read_write, Some fd)
            | exception Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              (Read_only, None)))
  in
  {
    dir;
    canon;
    mode;
    lock_fd;
    max_bytes;
    corrupt = 0;
    closed = false;
    corrupt_lock = Mutex.create ();
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.lock_fd with
    | None -> ()
    | Some fd ->
      Mutex.protect registry_lock (fun () -> Hashtbl.remove locked_dirs t.canon);
      (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let mode t = t.mode
let dir t = t.dir
let max_bytes t = t.max_bytes

let bump_corrupt t = Mutex.protect t.corrupt_lock (fun () -> t.corrupt <- t.corrupt + 1)
let corrupt_count t = Mutex.protect t.corrupt_lock (fun () -> t.corrupt)

(* {1 The entry format} *)

let suffix = ".adtc"

let check_digest digest =
  let ok =
    String.length digest = 32
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         digest
  in
  if not ok then
    invalid_arg (Fmt.str "persist: %S is not a lowercase hex digest" digest)

let entry_path t ~digest =
  check_digest digest;
  Filename.concat t.dir (digest ^ suffix)

exception Corrupt

(* magic | version u16 | digest (32 hex chars) | MD5(body) (16 raw bytes)
   | body length u32 | body; body = record count u32 then, per record,
   kind (u16-length-prefixed), key and value (u32-length-prefixed) *)
let header_len = 8 + 2 + 32 + 16 + 4

let encode ~digest records =
  let body = Buffer.create 1024 in
  Buffer.add_int32_be body (Int32.of_int (List.length records));
  List.iter
    (fun r ->
      Buffer.add_uint16_be body (String.length r.kind);
      Buffer.add_string body r.kind;
      Buffer.add_int32_be body (Int32.of_int (String.length r.key));
      Buffer.add_string body r.key;
      Buffer.add_int32_be body (Int32.of_int (String.length r.value));
      Buffer.add_string body r.value)
    records;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + header_len) in
  Buffer.add_string out magic;
  Buffer.add_uint16_be out format_version;
  Buffer.add_string out digest;
  Buffer.add_string out (Digest.string body);
  Buffer.add_int32_be out (Int32.of_int (String.length body));
  Buffer.add_string out body;
  Buffer.contents out

let decode ~digest data =
  if String.length data < header_len then raise Corrupt;
  if not (String.equal (String.sub data 0 8) magic) then raise Corrupt;
  if String.get_uint16_be data 8 <> format_version then raise Corrupt;
  if not (String.equal (String.sub data 10 32) digest) then raise Corrupt;
  let sum = String.sub data 42 16 in
  let body_len = Int32.to_int (String.get_int32_be data 58) in
  if body_len < 0 || String.length data <> header_len + body_len then
    raise Corrupt;
  let body = String.sub data header_len body_len in
  if not (String.equal (Digest.string body) sum) then raise Corrupt;
  let pos = ref 0 in
  let need n =
    if n < 0 || !pos + n > body_len then raise Corrupt;
    let p = !pos in
    pos := p + n;
    p
  in
  let u16 () = String.get_uint16_be body (need 2) in
  let u32 () =
    let n = Int32.to_int (String.get_int32_be body (need 4)) in
    if n < 0 then raise Corrupt;
    n
  in
  let str n = String.sub body (need n) n in
  let count = u32 () in
  if count > body_len then raise Corrupt;
  let records = ref [] in
  for _ = 1 to count do
    let kind = str (u16 ()) in
    let key = str (u32 ()) in
    let value = str (u32 ()) in
    records := { kind; key; value } :: !records
  done;
  if !pos <> body_len then raise Corrupt;
  List.rev !records

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load t ~digest =
  let path = entry_path t ~digest in
  match read_file path with
  | exception Sys_error _ -> []
  | data -> (
    (* any validation failure — foreign magic, version bump, digest
       mismatch, torn write, flipped bit, truncated record — is a miss *)
    match decode ~digest data with
    | records -> records
    | exception Corrupt ->
      bump_corrupt t;
      [])

(* {1 Atomic writes} *)

let write_atomic t ~digest data =
  let path = entry_path t ~digest in
  let tmp =
    Filename.concat t.dir
      (Fmt.str ".tmp-%s-%d" digest (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  (match output_string oc data; close_out oc with
  | () -> ()
  | exception Sys_error _ ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ()));
  (* rename is atomic on POSIX: readers see the old entry or the new
     one, never a prefix *)
  try Unix.rename tmp path
  with Unix.Unix_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())

(* {1 Size accounting and GC} *)

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n suffix)
    |> List.filter_map (fun n ->
           let path = Filename.concat t.dir n in
           match Unix.stat path with
           | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
             Some (path, st_size, st_mtime)
           | _ | (exception Unix.Unix_error _) -> None)

type stats = { files : int; bytes : int }

let stats t =
  List.fold_left
    (fun acc (_, size, _) -> { files = acc.files + 1; bytes = acc.bytes + size })
    { files = 0; bytes = 0 } (entries t)

let gc ?max_bytes t =
  match (match max_bytes with Some _ -> max_bytes | None -> t.max_bytes) with
  | None -> 0
  | Some bound ->
    let es = entries t in
    let total = List.fold_left (fun n (_, size, _) -> n + size) 0 es in
    if total <= bound then 0
    else begin
      (* oldest first; mtime ties break on path for determinism *)
      let oldest =
        List.sort
          (fun (pa, _, ma) (pb, _, mb) ->
            match Float.compare ma mb with
            | 0 -> String.compare pa pb
            | c -> c)
          es
      in
      let removed = ref 0 in
      let remaining = ref total in
      List.iter
        (fun (path, size, _) ->
          if !remaining > bound then begin
            match Sys.remove path with
            | () ->
              incr removed;
              remaining := !remaining - size
            | exception Sys_error _ -> ()
          end)
        oldest;
      !removed
    end

let clear t =
  List.fold_left
    (fun n (path, _, _) ->
      match Sys.remove path with () -> n + 1 | exception Sys_error _ -> n)
    0 (entries t)

let append t ~digest records =
  match t.mode with
  | Read_only -> ()
  | Read_write ->
    if records <> [] then begin
      let existing = load t ~digest in
      let replaced =
        List.filter
          (fun old ->
            not
              (List.exists
                 (fun r ->
                   String.equal r.kind old.kind && String.equal r.key old.key)
                 records))
          existing
      in
      write_atomic t ~digest (encode ~digest (replaced @ records));
      ignore (gc t)
    end
