(** A direct implementation of type Queue: the classic two-list functional
    queue (amortised O(1) [ADD]/[REMOVE], versus the symbolic interpreter's
    O(n) rewriting per operation — benchmark E1 measures the gap the paper
    concedes in section 5).

    Items are represented by their terms; the abstraction function [Phi]
    rebuilds the [ADD(...(NEW, i1)..., in)] constructor normal form the
    specification denotes. *)

open Adt

type t

exception Error
(** The distinguished [error] value ([FRONT]/[REMOVE] of the empty
    queue). *)

val empty : t
val add : t -> Term.t -> t
val front : t -> Term.t
(** Raises {!Error} on the empty queue. *)

val remove : t -> t
(** Raises {!Error} on the empty queue. *)

val is_empty : t -> bool
val length : t -> int
val to_list : t -> Term.t list
(** Front first. *)

val abstraction : t -> Term.t
(** [Phi] into {!Queue_spec.spec} constructor terms. *)

val model : t Model.t
(** The packaged model of {!Queue_spec.spec} for {!Model.check}. *)
