open Adt

type t = Term.t list

exception Error

let newstack = []
let push s e = e :: s
let pop = function [] -> raise Error | _ :: rest -> rest
let top = function [] -> raise Error | e :: _ -> e
let is_newstack s = s = []
let replace s e = match s with [] -> raise Error | _ :: rest -> e :: rest
let depth = List.length
let to_list s = s

let abstraction (inst : Stack_spec.t) s =
  List.fold_left inst.Stack_spec.push inst.Stack_spec.newstack (List.rev s)

let model inst =
  let interp name (args : t Model.value list) : t Model.value option =
    match (name, args) with
    | "NEWSTACK", [] -> Some (Model.Rep newstack)
    | "PUSH", [ Model.Rep s; Model.Foreign e ] -> Some (Model.Rep (push s e))
    | "POP", [ Model.Rep s ] -> (
      match pop s with
      | s' -> Some (Model.Rep s')
      | exception Error -> raise (Model.Impl_error "POP of NEWSTACK"))
    | "TOP", [ Model.Rep s ] -> (
      match top s with
      | e -> Some (Model.Foreign e)
      | exception Error -> raise (Model.Impl_error "TOP of NEWSTACK"))
    | "IS_NEWSTACK?", [ Model.Rep s ] ->
      Some (Model.Foreign (if is_newstack s then Term.tt else Term.ff))
    | "REPLACE", [ Model.Rep s; Model.Foreign e ] -> (
      match replace s e with
      | s' -> Some (Model.Rep s')
      | exception Error -> raise (Model.Impl_error "REPLACE of NEWSTACK"))
    | _ -> None
  in
  { Model.model_name = "linked-list stack"; interp; abstraction = abstraction inst }
