(** The implementation of type Symboltable as a stack of arrays — the
    paper's representation (section 4): "treat a value of the type as a
    stack of arrays (with index type Identifier), where each array contains
    the attributes for the identifiers declared in a single block".

    The functor abstracts over the Array implementation, which is exactly
    the flexibility the paper advertises ("the process of deciding which
    axioms must be altered to effect a change is straightforward"):
    {!Hash} uses the paper's hash-table arrays, {!Assoc} the
    association-list alternative. Experiment E6 benchmarks them against
    each other; {!Model.check} verifies both against axioms 1-9. *)

open Adt

module type S = sig
  type t

  exception Error
  (** [LEAVEBLOCK] with no enclosing scope (the paper's mismatched-"end"
      condition), or [RETRIEVE] of an undeclared identifier when using
      {!retrieve_exn}. *)

  val init : unit -> t
  val enterblock : t -> t
  val leaveblock : t -> t
  val add : t -> Term.t -> Term.t -> t
  val is_inblock : t -> Term.t -> bool
  val retrieve : t -> Term.t -> Term.t option
  val retrieve_exn : t -> Term.t -> Term.t
  val depth : t -> int
  (** Number of open scopes (1 after [init]). *)

  val abstraction : t -> Term.t
  (** [Phi] into {!Symboltable_spec.spec} constructor terms, per the
      paper's equations (a)-(d). *)

  val model : t Model.t
end

module Make (_ : Array_intf.ARRAY) : S

module Hash : S
(** Over {!Array_impl_hash} — the paper's representation. *)

module Assoc : S
(** Over {!Array_impl_assoc}. *)
