open Adt

let sort = Sort.v "Symboltable"

let init_op = Op.v "INIT" ~args:[] ~result:sort
let enterblock_op = Op.v "ENTERBLOCK" ~args:[ sort ] ~result:sort
let leaveblock_op = Op.v "LEAVEBLOCK" ~args:[ sort ] ~result:sort

let add_op =
  Op.v "ADD" ~args:[ sort; Identifier.sort; Attributes.sort ] ~result:sort

let is_inblock_op =
  Op.v "IS_INBLOCK?" ~args:[ sort; Identifier.sort ] ~result:Sort.bool

let retrieve_op =
  Op.v "RETRIEVE" ~args:[ sort; Identifier.sort ] ~result:Attributes.sort

let init = Term.const init_op
let enterblock s = Term.app enterblock_op [ s ]
let leaveblock s = Term.app leaveblock_op [ s ]
let add s id attrs = Term.app add_op [ s; id; attrs ]
let is_inblock s id = Term.app is_inblock_op [ s; id ]
let retrieve s id = Term.app retrieve_op [ s; id ]

let constructors = [ "INIT"; "ENTERBLOCK"; "ADD" ]

let make ~identifier =
  let base = Spec.union ~name:"Symboltable" identifier Attributes.spec in
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort sort (Spec.signature base))
      [ init_op; enterblock_op; leaveblock_op; add_op; is_inblock_op; retrieve_op ]
  in
  let symtab = Term.var "symtab" sort
  and id = Term.var "id" Identifier.sort
  and id1 = Term.var "id1" Identifier.sort
  and attrs = Term.var "attrs" Attributes.sort in
  let same a b = Term.app (Spec.op_exn identifier "SAME?") [ a; b ] in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let fresh =
    Spec.v ~name:"Symboltable" ~signature ~constructors
      ~axioms:
        [
          ax "1" (leaveblock init) (Term.err sort);
          ax "2" (leaveblock (enterblock symtab)) symtab;
          ax "3" (leaveblock (add symtab id attrs)) (leaveblock symtab);
          ax "4" (is_inblock init id) Term.ff;
          ax "5" (is_inblock (enterblock symtab) id) Term.ff;
          ax "6"
            (is_inblock (add symtab id attrs) id1)
            (Term.ite (same id id1) Term.tt (is_inblock symtab id1));
          ax "7" (retrieve init id) (Term.err Attributes.sort);
          ax "8" (retrieve (enterblock symtab) id) (retrieve symtab id);
          ax "9"
            (retrieve (add symtab id attrs) id1)
            (Term.ite (same id id1) attrs (retrieve symtab id1));
        ]
      ()
  in
  Spec.union ~name:"Symboltable" base fresh

let spec = make ~identifier:Identifier.spec
