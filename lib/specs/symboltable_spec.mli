(** Type Symboltable — the paper's extended example (section 4, axioms
    1-9).

    The symbol table of a compiler for a block-structured language:
    [INIT], [ENTERBLOCK], [LEAVEBLOCK], [ADD], [IS_INBLOCK?], [RETRIEVE].
    The axioms are exactly the paper's; note the characteristic boundary
    behaviour they pin down: [LEAVEBLOCK(INIT) = error] (an extra "end"),
    [IS_INBLOCK?] looks only at the current scope while [RETRIEVE] searches
    outward through enclosing scopes and yields [error] for undeclared
    identifiers. *)

open Adt

val sort : Sort.t

val spec : Spec.t
(** Uses {!Identifier.spec} and {!Attributes.spec}. *)

val make : identifier:Spec.t -> Spec.t
(** The same specification over a custom identifier universe (any
    specification built with {!Identifier.spec_with_atoms}); the algebraic
    symbol-table backend of the block-language compiler instantiates this
    with the identifiers of the program being compiled. *)

(** {1 Term builders} *)

val init : Term.t
val enterblock : Term.t -> Term.t
val leaveblock : Term.t -> Term.t

val add : Term.t -> Term.t -> Term.t -> Term.t
(** [add symtab id attrs]. *)

val is_inblock : Term.t -> Term.t -> Term.t
val retrieve : Term.t -> Term.t -> Term.t

val constructors : string list
(** [INIT], [ENTERBLOCK], [ADD] — the generator set of the type (the
    operations whose terms denote every reachable symbol table). *)
