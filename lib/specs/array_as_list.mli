(** A second representation proof, by the same method as {!Refinement}:
    type Array (the paper's axioms 17-20) implemented as a list of
    (Identifier, Attributelist) pairs.

    The paper argues (section 5) that algebraic specifications let the
    designer delay the choice between "a hash table" and "a linear list";
    {!Refinement} verifies nothing about the Array representation itself,
    and the OCaml implementations are checked by testing ({!Model.check}).
    Here the list representation is verified {e deductively}: primed
    operations [EMPTY'], [ASSIGN'], [READ'], [IS_UNDEFINED?'] over
    {!Pairlist_spec}, an abstraction function [PHI_A], and one proof
    obligation per Array axiom. Unlike the Symboltable proof, no
    reachability invariant is needed — every list denotes an array — so
    this instance is unconditional. *)

open Adt

val combined : Spec.t

val empty' : Term.t
val assign' : Term.t -> Term.t -> Term.t -> Term.t
val read' : Term.t -> Term.t -> Term.t
val is_undefined' : Term.t -> Term.t -> Term.t
val phi : Term.t -> Term.t

val generators : Op.t list
(** [EMPTY'; ASSIGN'] — the images of the abstract constructors. *)

val obligation : Axiom.t -> Term.t * Term.t

type result = {
  axiom_name : string;
  goal : Term.t * Term.t;
  outcome : Proof.outcome;
}

val verify : unit -> result list
(** One result per Array axiom 17-20. *)

val all_proved : result list -> bool
val pp_results : result list Fmt.t
