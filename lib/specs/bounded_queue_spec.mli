(** Type Bounded Queue (maximum length three) — the representation
    discussion of section 4.

    The paper introduces this type to show that the abstraction function
    [Phi] "may not have a proper inverse": a ring-buffer representation
    reaches distinct concrete states that denote the same abstract value.
    The abstract specification is the Queue specification extended with
    observers [SIZE_Q] and [IS_FULL?]; the length bound is a constraint on
    clients ([ADD_Q] on a full queue is an error in the implementation), in
    the same "conditional correctness" sense as the paper's Assumption 1 —
    see {!Bounded_queue_impl}. *)

open Adt

val bound : int
(** 3, as in the paper. *)

val sort : Sort.t
val spec : Spec.t

val empty_q : Term.t
val add_q : Term.t -> Term.t -> Term.t
val front_q : Term.t -> Term.t
val remove_q : Term.t -> Term.t
val is_empty_q : Term.t -> Term.t
val size_q : Term.t -> Term.t
val is_full : Term.t -> Term.t

val of_items : Term.t list -> Term.t
