open Adt

let buckets = 64

type t = {
  table : (Term.t * Term.t) list array;
  mutable log : (Term.t * Term.t) list; (* newest first *)
}

let impl_name = "hash-table array"
let empty () = { table = Array.make buckets []; log = [] }
(* identifiers are atom constants, so hashing the operation name suffices
   and stays O(1); other key shapes fall back to the rendered term *)
let slot k =
  let key =
    match Term.view k with
    | Term.App (op, []) -> Op.name op
    | _ -> Term.to_string k
  in
  Hashtbl.hash key mod buckets

let assign arr k v =
  let i = slot k in
  arr.table.(i) <- (k, v) :: arr.table.(i);
  arr.log <- (k, v) :: arr.log;
  arr

let read arr k =
  List.find_map
    (fun (k', v) -> if Term.equal k k' then Some v else None)
    arr.table.(slot k)

let is_undefined arr k = Option.is_none (read arr k)
let bindings arr = List.rev arr.log
