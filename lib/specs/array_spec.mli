(** Type Array — the paper's axioms 17-20 (section 4).

    An applicative array (finite map) from an index type to a value type:
    [EMPTY], [ASSIGN], [READ], [IS_UNDEFINED?]. The paper instantiates it
    as Array (of Attributelists) indexed by Identifier; the constructor is
    parameterised accordingly. The index specification must supply a
    [SAME?] equality operation (as the paper's Identifier does). *)

open Adt

type t = {
  spec : Spec.t;
  sort : Sort.t;
  index_sort : Sort.t;
  value_sort : Sort.t;
  empty : Term.t;
  assign : Term.t -> Term.t -> Term.t -> Term.t;
      (** [assign arr index value]. *)
  read : Term.t -> Term.t -> Term.t;
  is_undefined : Term.t -> Term.t -> Term.t;
}

val make :
  ?sort_name:string ->
  index:Spec.t ->
  index_sort:Sort.t ->
  same:string ->
  value:Spec.t ->
  value_sort:Sort.t ->
  unit ->
  t
(** [same] names the index equality operation (["SAME?"] for
    {!Identifier.spec}). Raises [Invalid_argument] when the index
    specification lacks it. *)

val default : t
(** Array (of Attributelists) indexed by Identifier — the paper's
    instance. *)

val of_bindings : t -> (Term.t * Term.t) list -> Term.t
(** Later bindings shadow earlier ones, as iterated [ASSIGN]. *)
