open Adt

let bool_sort = Sort.bool

let not_op = Op.v "NOT" ~args:[ bool_sort ] ~result:bool_sort
let and_op = Op.v "AND" ~args:[ bool_sort; bool_sort ] ~result:bool_sort
let or_op = Op.v "OR" ~args:[ bool_sort; bool_sort ] ~result:bool_sort

let not_ a = Term.app not_op [ a ]
let and_ a b = Term.app and_op [ a; b ]
let or_ a b = Term.app or_op [ a; b ]

let bool_spec =
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      Signature.empty
      [ not_op; and_op; or_op ]
  in
  let b = Term.var "b" bool_sort in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  Spec.v ~name:"Bool" ~signature
    ~axioms:
      [
        ax "not_t" (not_ Term.tt) Term.ff;
        ax "not_f" (not_ Term.ff) Term.tt;
        ax "and_t" (and_ Term.tt b) b;
        ax "and_f" (and_ Term.ff b) Term.ff;
        ax "or_t" (or_ Term.tt b) Term.tt;
        ax "or_f" (or_ Term.ff b) b;
      ]
    ()

let nat_sort = Sort.v "Nat"

let zero_op = Op.v "ZERO" ~args:[] ~result:nat_sort
let succ_op = Op.v "SUCC" ~args:[ nat_sort ] ~result:nat_sort
let plus_op = Op.v "PLUS" ~args:[ nat_sort; nat_sort ] ~result:nat_sort
let eq_nat_op = Op.v "EQ_NAT?" ~args:[ nat_sort; nat_sort ] ~result:bool_sort

let zero = Term.const zero_op
let succ n = Term.app succ_op [ n ]

let rec nat_of_int i =
  if i < 0 then invalid_arg "Builtins.nat_of_int: negative"
  else if i = 0 then zero
  else succ (nat_of_int (i - 1))

let rec int_of_nat t =
  match Term.view t with
  | Term.App (op, []) when Op.equal op zero_op -> Some 0
  | Term.App (op, [ n ]) when Op.equal op succ_op ->
    Option.map (fun i -> i + 1) (int_of_nat n)
  | _ -> None

let plus a b = Term.app plus_op [ a; b ]
let eq_nat a b = Term.app eq_nat_op [ a; b ]

let nat_spec =
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort nat_sort Signature.empty)
      [ zero_op; succ_op; plus_op; eq_nat_op ]
  in
  let m = Term.var "m" nat_sort and n = Term.var "n" nat_sort in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  Spec.v ~name:"Nat" ~signature
    ~constructors:[ "ZERO"; "SUCC" ]
    ~axioms:
      [
        ax "plus_z" (plus zero n) n;
        ax "plus_s" (plus (succ m) n) (succ (plus m n));
        ax "eq_zz" (eq_nat zero zero) Term.tt;
        ax "eq_zs" (eq_nat zero (succ n)) Term.ff;
        ax "eq_sz" (eq_nat (succ m) zero) Term.ff;
        ax "eq_ss" (eq_nat (succ m) (succ n)) (eq_nat m n);
      ]
    ()

let item_sort = Sort.v "Item"

let item_count = 4

let item_op i = Op.v (Fmt.str "ITEM%d" i) ~args:[] ~result:item_sort

let item i =
  if i < 1 || i > item_count then
    invalid_arg (Fmt.str "Builtins.item: %d out of range 1..%d" i item_count)
  else Term.const (item_op i)

let items = List.init item_count (fun i -> item (i + 1))

let item_spec =
  let signature =
    List.fold_left
      (fun sg i -> Signature.add_op (item_op i) sg)
      (Signature.add_sort item_sort Signature.empty)
      (List.init item_count (fun i -> i + 1))
  in
  Spec.v ~name:"Item" ~signature
    ~constructors:(List.init item_count (fun i -> Fmt.str "ITEM%d" (i + 1)))
    ~axioms:[] ()
