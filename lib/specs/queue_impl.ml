open Adt

type t = { front_part : Term.t list; back_part : Term.t list }

exception Error

let empty = { front_part = []; back_part = [] }

let is_empty q = q.front_part = [] && q.back_part = []

let add q item =
  if is_empty q then { front_part = [ item ]; back_part = [] }
  else { q with back_part = item :: q.back_part }

let norm q =
  match q.front_part with
  | [] -> { front_part = List.rev q.back_part; back_part = [] }
  | _ -> q

let front q =
  match (norm q).front_part with [] -> raise Error | i :: _ -> i

let remove q =
  let q = norm q in
  match q.front_part with
  | [] -> raise Error
  | _ :: rest -> norm { front_part = rest; back_part = q.back_part }

let to_list q = q.front_part @ List.rev q.back_part
let length q = List.length q.front_part + List.length q.back_part
let abstraction q = Queue_spec.of_items (to_list q)

let model =
  let interp name (args : t Model.value list) : t Model.value option =
    match (name, args) with
    | "NEW", [] -> Some (Model.Rep empty)
    | "ADD", [ Model.Rep q; Model.Foreign i ] -> Some (Model.Rep (add q i))
    | "FRONT", [ Model.Rep q ] -> (
      match front q with
      | i -> Some (Model.Foreign i)
      | exception Error -> raise (Model.Impl_error "FRONT of empty queue"))
    | "REMOVE", [ Model.Rep q ] -> (
      match remove q with
      | q' -> Some (Model.Rep q')
      | exception Error -> raise (Model.Impl_error "REMOVE of empty queue"))
    | "IS_EMPTY?", [ Model.Rep q ] ->
      Some (Model.Foreign (if is_empty q then Term.tt else Term.ff))
    | _ -> None
  in
  { Model.model_name = "two-list queue"; interp; abstraction }
