(** The abstract type [Attributelist].

    The paper leaves [Attributelist] entirely abstract (it is the payload
    the symbol table stores). Two kinds of values make the enclosing
    specifications executable: a few opaque atoms ([ATTRS1] ...) for tests
    and enumeration, and a structured constructor
    [MK_ATTRS : Nat x Nat -> Attributelist] carrying a (type code, slot)
    pair — what the block-language compiler actually stores for a declared
    variable. [EQ_ATTRS?] decides equality for both kinds. *)

open Adt

val sort : Sort.t
val spec : Spec.t

val attrs : int -> Term.t
(** [attrs i] for [i] in 1..{!count} — the opaque atoms. *)

val count : int
val all : Term.t list
(** The atoms. *)

val mk : ty:int -> slot:int -> Term.t
(** [MK_ATTRS(ty, slot)] with both numbers as [Nat] numerals. *)

val decode : Term.t -> (int * int) option
(** Inverse of {!mk} on constructor normal forms. *)

val mk_proc : ret:int -> params:int list -> index:int -> Term.t
(** [MK_PROC(ret, params, index)]: the attributes of a declared procedure —
    return-type code, parameter-type codes (encoded as one [Nat] numeral in
    base 3: digit 1 = int, 2 = bool, most significant first), and the
    procedure's index in the program's procedure table. *)

val decode_proc : Term.t -> (int * int list * int) option
(** Inverse of {!mk_proc} on constructor normal forms. *)

val eq : Term.t -> Term.t -> Term.t
