(** The abstract type [Identifier].

    The paper treats [Identifier] as an independently defined type whose
    specification supplies [IS_SAME?] (footnote to axiom 6) and [HASH]
    (used by the hash-table implementation of [Array]; "assumed to be
    defined in the type Identifier specification"). Here the type is made
    concrete with a finite atom universe so that symbol-table
    specifications are executable, enumerable, and provable by case
    analysis. [SAME?] is axiomatised by the complete atom-pair table and
    [HASH] maps each atom to a [Nat] bucket index. *)

open Adt

val sort : Sort.t

val default_atoms : string list
(** ["X"; "Y"; "Z"; "W"]. *)

val spec : Spec.t
(** The specification over {!default_atoms}; uses [Nat] for [HASH] with
    {!default_buckets} buckets. *)

val spec_with_atoms : ?buckets:int -> string list -> Spec.t
(** A specification with the given atom names (each becomes a constant
    constructor [ID_<name>]); [SAME?] gets the n^2 axiom table and [HASH]
    one axiom per atom ([index mod buckets]). *)

val default_buckets : int

val id : string -> Term.t
(** [id "X"] is the atom term [ID_X] (over {!default_atoms} naming scheme;
    works for any [spec_with_atoms] instance that includes the name). *)

val atom_terms : Spec.t -> Term.t list
(** All identifier atoms of a specification built by this module. *)

val same : Spec.t -> Term.t -> Term.t -> Term.t
(** The [SAME?] application, resolved in the given specification. *)

val hash : Spec.t -> Term.t -> Term.t
