(** The hash-table implementation of type Array — the paper's PL/I code:
    an array of [n] bucket pointers, [ASSIGN] allocating a new entry at the
    head of the bucket selected by [HASH], [READ]/[IS_UNDEF?] scanning that
    bucket.

    Imperative, like the original: [assign] mutates in place and returns
    the same table, so values must be used linearly (which every client in
    this repository — the model checker's per-occurrence evaluation, the
    symbol-table workloads — does). An insertion log is kept so the
    abstraction function can reconstruct the assignment order. *)

include Array_intf.ARRAY

val buckets : int
(** The fixed table width [n]. *)
