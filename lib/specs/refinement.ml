open Adt

let array = Array_spec.default

let stack =
  Stack_spec.make ~elem:array.Array_spec.spec ~elem_sort:array.Array_spec.sort
    ()

let stack_sort = stack.Stack_spec.sort
let sym_sort = Symboltable_spec.sort

(* primed operations over the representation *)
let init_op' = Op.v "INIT'" ~args:[] ~result:stack_sort
let enterblock_op' = Op.v "ENTERBLOCK'" ~args:[ stack_sort ] ~result:stack_sort
let leaveblock_op' = Op.v "LEAVEBLOCK'" ~args:[ stack_sort ] ~result:stack_sort

let add_op' =
  Op.v "ADD'"
    ~args:[ stack_sort; Identifier.sort; Attributes.sort ]
    ~result:stack_sort

let is_inblock_op' =
  Op.v "IS_INBLOCK?'" ~args:[ stack_sort; Identifier.sort ] ~result:Sort.bool

let retrieve_op' =
  Op.v "RETRIEVE'"
    ~args:[ stack_sort; Identifier.sort ]
    ~result:Attributes.sort

let phi_op = Op.v "PHI" ~args:[ stack_sort ] ~result:sym_sort

let init' = Term.const init_op'
let enterblock' s = Term.app enterblock_op' [ s ]
let leaveblock' s = Term.app leaveblock_op' [ s ]
let add' s id a = Term.app add_op' [ s; id; a ]
let is_inblock' s id = Term.app is_inblock_op' [ s; id ]
let retrieve' s id = Term.app retrieve_op' [ s; id ]
let phi s = Term.app phi_op [ s ]

let generators = [ init_op'; enterblock_op'; add_op' ]

let combined =
  let base =
    Spec.union ~name:"Symboltable_as_Stack" stack.Stack_spec.spec
      Builtins.bool_spec
  in
  (* abstract constructors, for the range of PHI *)
  let abstract_ops =
    List.map
      (fun n -> Spec.op_exn Symboltable_spec.spec n)
      Symboltable_spec.constructors
  in
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort sym_sort (Spec.signature base))
      (abstract_ops
      @ [
          init_op';
          enterblock_op';
          leaveblock_op';
          add_op';
          is_inblock_op';
          retrieve_op';
          phi_op;
        ])
  in
  let stk = Term.var "stk" stack_sort
  and arr = Term.var "arr" array.Array_spec.sort
  and id = Term.var "id" Identifier.sort
  and attrs = Term.var "attrs" Attributes.sort in
  let s = stack in
  let pop t = s.Stack_spec.pop t
  and push a b = s.Stack_spec.push a b
  and top t = s.Stack_spec.top t
  and is_newstack t = s.Stack_spec.is_newstack t
  and replace a b = s.Stack_spec.replace a b
  and newstack = s.Stack_spec.newstack in
  let assign a i v = array.Array_spec.assign a i v
  and read a i = array.Array_spec.read a i
  and is_undefined a i = array.Array_spec.is_undefined a i
  and empty_arr = array.Array_spec.empty in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let defs =
    [
      ax "def_init" init' (push newstack empty_arr);
      ax "def_enter" (enterblock' stk) (push stk empty_arr);
      ax "def_leave" (leaveblock' stk)
        (Term.ite (is_newstack (pop stk)) (Term.err stack_sort) (pop stk));
      ax "def_add" (add' stk id attrs)
        (replace stk (assign (top stk) id attrs));
      ax "def_inblock" (is_inblock' stk id)
        (Term.ite (is_newstack stk) (Term.err Sort.bool)
           (Builtins.not_ (is_undefined (top stk) id)));
      ax "def_retrieve" (retrieve' stk id)
        (Term.ite (is_newstack stk)
           (Term.err Attributes.sort)
           (Term.ite
              (is_undefined (top stk) id)
              (retrieve' (pop stk) id)
              (read (top stk) id)));
      ax "phi_newstack" (phi newstack) (Term.err sym_sort);
      ax "phi_enter"
        (phi (push stk empty_arr))
        (Term.ite (is_newstack stk) Symboltable_spec.init
           (Symboltable_spec.enterblock (phi stk)));
      ax "phi_add"
        (phi (push stk (assign arr id attrs)))
        (Symboltable_spec.add (phi (push stk arr)) id attrs);
    ]
  in
  let fresh =
    Spec.v ~name:"Symboltable_as_Stack" ~signature
      ~constructors:Symboltable_spec.constructors ~axioms:defs ()
  in
  Spec.union ~name:"Symboltable_as_Stack" base fresh

let nonempty_lemma =
  Axiom.v ~name:"nonempty"
    ~lhs:(stack.Stack_spec.is_newstack (Term.var "stk" stack_sort))
    ~rhs:Term.ff ()

let base_config () =
  Proof.config ~generators:[ (stack_sort, generators) ] ~max_case_depth:6
    ~fuel:5_000 ~max_goals:150
    combined

let verified_config () = Proof.prove_lemma (base_config ()) nonempty_lemma

(* Translate an abstract Symboltable axiom into its proof obligation over
   the representation. *)
let primed_name = function
  | "INIT" -> Some init_op'
  | "ENTERBLOCK" -> Some enterblock_op'
  | "LEAVEBLOCK" -> Some leaveblock_op'
  | "ADD" -> Some add_op'
  | "IS_INBLOCK?" -> Some is_inblock_op'
  | "RETRIEVE" -> Some retrieve_op'
  | _ -> None

let rec translate term =
  match Term.view term with
  | Term.Var (x, s) when Sort.equal s sym_sort -> Term.var x stack_sort
  | Term.Var _ -> term
  | Term.Err s when Sort.equal s sym_sort -> Term.err stack_sort
  | Term.Err _ -> term
  | Term.App (op, args) -> (
    let args = List.map translate args in
    match primed_name (Op.name op) with
    | Some op' -> Term.app op' args
    | None -> Term.app op args)
  | Term.Ite (c, a, b) -> Term.ite (translate c) (translate a) (translate b)

let obligation axiom =
  let lhs = translate (Axiom.lhs axiom) and rhs = translate (Axiom.rhs axiom) in
  if Sort.equal (Term.sort_of lhs) stack_sort then (phi lhs, phi rhs)
  else (lhs, rhs)

type result = {
  axiom_name : string;
  goal : Term.t * Term.t;
  outcome : Proof.outcome;
}

let abstract_axioms () =
  List.filter
    (fun ax ->
      match int_of_string_opt (Axiom.name ax) with
      | Some n -> n >= 1 && n <= 9
      | None -> false)
    (Spec.axioms Symboltable_spec.spec)

let verify () =
  let cfg0 = base_config () in
  match Proof.prove_axiom cfg0 nonempty_lemma with
  | Proof.Unknown _ as lemma_outcome -> (lemma_outcome, [])
  | Proof.Proved _ as lemma_outcome ->
    let cfg =
      match Proof.prove_lemma cfg0 nonempty_lemma with
      | Ok cfg -> cfg
      | Error _ -> cfg0 (* unreachable: just proved *)
    in
    let results =
      List.map
        (fun ax ->
          let goal = obligation ax in
          { axiom_name = Axiom.name ax; goal; outcome = Proof.prove cfg goal })
        (abstract_axioms ())
    in
    (lemma_outcome, results)

let all_proved (lemma, results) =
  (match lemma with Proof.Proved _ -> true | Proof.Unknown _ -> false)
  && results <> []
  && List.for_all
       (fun r ->
         match r.outcome with Proof.Proved _ -> true | Proof.Unknown _ -> false)
       results

let assumption_violation () =
  let id = Identifier.id "X" and a = Term.const (Spec.op_exn combined "ATTRS1") in
  let term = retrieve' (add' stack.Stack_spec.newstack id a) id in
  let sys = Rewrite.of_spec combined in
  let got = Rewrite.normalize sys term in
  (term, got, a)

let pp_results ppf (lemma, results) =
  Fmt.pf ppf "@[<v>lemma nonempty: %a@,%a@]" Proof.pp_outcome lemma
    Fmt.(
      list ~sep:cut (fun ppf r ->
          let verdict =
            match r.outcome with
            | Proof.Proved p ->
              Fmt.str "proved (%d step(s), depth %d)" (Proof.proof_size p)
                (Proof.proof_depth p)
            | Proof.Unknown _ -> "UNKNOWN"
          in
          Fmt.pf ppf "axiom %s: %s" r.axiom_name verdict))
    results
