(** A substrate for the second representation exercise: lists of
    (Identifier, Attributelist) pairs.

    The paper implements its Array with a hash table; this module supplies
    the algebraic substrate for the *other* natural representation — the
    linear list the designer might have started with — so that
    {!Array_as_list} can replay the section-4 refinement method on a second
    example. [Pair] carries projections [FST]/[SND]; [PList] is a cons list
    with [HEAD]/[TAIL]/[IS_NIL?]. *)

open Adt

val pair_sort : Sort.t
val list_sort : Sort.t

val spec : Spec.t
(** Uses {!Identifier.spec} and {!Attributes.spec}. *)

val pair : Term.t -> Term.t -> Term.t
(** [pair id attrs]. *)

val fst_ : Term.t -> Term.t
val snd_ : Term.t -> Term.t
val nil : Term.t
val cons : Term.t -> Term.t -> Term.t
val head : Term.t -> Term.t
val tail : Term.t -> Term.t
val is_nil : Term.t -> Term.t

val of_bindings : (Term.t * Term.t) list -> Term.t
(** Most recent binding first, as iterated [CONS]. *)
