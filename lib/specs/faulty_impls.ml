open Adt

(* Queue mutants: representation is the item list, front first. *)

let queue_interp ~front ~remove name (args : Term.t list Model.value list) :
    Term.t list Model.value option =
  match (name, args) with
  | "NEW", [] -> Some (Model.Rep [])
  | "ADD", [ Model.Rep q; Model.Foreign i ] -> Some (Model.Rep (q @ [ i ]))
  | "FRONT", [ Model.Rep q ] -> (
    match front q with
    | Some i -> Some (Model.Foreign i)
    | None -> raise (Model.Impl_error "FRONT of empty queue"))
  | "REMOVE", [ Model.Rep q ] -> (
    match remove q with
    | Some q' -> Some (Model.Rep q')
    | None -> raise (Model.Impl_error "REMOVE of empty queue"))
  | "IS_EMPTY?", [ Model.Rep q ] ->
    Some (Model.Foreign (if q = [] then Term.tt else Term.ff))
  | _ -> None

let queue_model name ~front ~remove =
  {
    Model.model_name = name;
    interp = queue_interp ~front ~remove;
    abstraction = Queue_spec.of_items;
  }

let rec drop_last = function
  | [] -> None
  | [ _ ] -> Some []
  | x :: rest -> Option.map (fun r -> x :: r) (drop_last rest)

let last q = match List.rev q with [] -> None | i :: _ -> Some i
let hd = function [] -> None | i :: _ -> Some i
let tl = function [] -> None | _ :: rest -> Some rest

let queue_remove_back = queue_model "queue remove-back" ~front:hd ~remove:drop_last
let queue_lifo_front = queue_model "queue lifo-front" ~front:last ~remove:tl

(* Bounded-queue mutants: item list, front first, bound from the spec. *)

let bound = Bounded_queue_spec.bound

let bq_interp ~capacity ~remove name (args : Term.t list Model.value list) :
    Term.t list Model.value option =
  match (name, args) with
  | "EMPTY_Q", [] -> Some (Model.Rep [])
  | "ADD_Q", [ Model.Rep q; Model.Foreign i ] ->
    if List.length q >= capacity then
      raise (Model.Impl_error "ADD_Q of full queue")
    else Some (Model.Rep (q @ [ i ]))
  | "FRONT_Q", [ Model.Rep q ] -> (
    match q with
    | i :: _ -> Some (Model.Foreign i)
    | [] -> raise (Model.Impl_error "FRONT_Q of empty queue"))
  | "REMOVE_Q", [ Model.Rep q ] -> (
    match remove q with
    | Some q' -> Some (Model.Rep q')
    | None -> raise (Model.Impl_error "REMOVE_Q of empty queue"))
  | "IS_EMPTY_Q?", [ Model.Rep q ] ->
    Some (Model.Foreign (if q = [] then Term.tt else Term.ff))
  | "IS_FULL?", [ Model.Rep q ] ->
    Some (Model.Foreign (if List.length q >= capacity then Term.tt else Term.ff))
  | "SIZE_Q", [ Model.Rep q ] ->
    Some (Model.Foreign (Builtins.nat_of_int (List.length q)))
  | _ -> None

let bq_model name ~capacity ~remove =
  {
    Model.model_name = name;
    interp = bq_interp ~capacity ~remove;
    abstraction = Bounded_queue_spec.of_items;
  }

let bq_premature_full =
  bq_model "bounded-queue premature-full" ~capacity:(bound - 1) ~remove:tl

let bq_remove_back =
  bq_model "bounded-queue remove-back" ~capacity:bound ~remove:drop_last

(* Array mutant: READ answers from the oldest assignment to the key. *)

module Stale_array : Array_intf.ARRAY = struct
  type t = (Term.t * Term.t) list (* assignment log, earliest first *)

  let impl_name = "stale-read array"
  let empty () = []
  let assign arr k v = arr @ [ (k, v) ]

  let read arr k =
    List.find_map (fun (k', v) -> if Term.equal k k' then Some v else None) arr

  let is_undefined arr k = Option.is_none (read arr k)
  let bindings arr = arr
end

let array_stale_read =
  let m = Array_intf.model (module Stale_array) Array_spec.default in
  { m with Model.model_name = "array stale-read" }

(* The same fault propagated one level up the hierarchy: a symbol table
   whose per-block arrays answer stale reads. *)

module Stale_symboltable = Symboltable_impl.Make (Stale_array)

let symboltable_stale_read =
  { Stale_symboltable.model with Model.model_name = "symboltable stale-read" }

(* Stack mutant: REPLACE pushes instead of replacing the top. The empty
   stack still errors like the clean implementation, so no direct
   observation sees the fault — TOP answers the new item either way — and
   only a nested context (POP first) can kill it. *)

let stack_replace_pushes =
  let clean = Stack_impl.model Stack_spec.default in
  {
    clean with
    Model.model_name = "stack replace-pushes";
    interp =
      (fun name args ->
        match (name, args) with
        | "REPLACE", [ Model.Rep s; Model.Foreign e ]
          when not (Stack_impl.is_newstack s) ->
          Some (Model.Rep (Stack_impl.push s e))
        | _ -> clean.Model.interp name args);
  }
