(** The Symboltable variant for a language with "knows lists" (section 4).

    "Assume that the language permits the inheritance of global variables
    only if they appear in a knows list ... The only difference visible to
    parts of the compiler other than the symbol table module would be in
    the ENTERBLOCK operation"; within the specification "all relations, and
    only those relations, that explicitly deal with the ENTERBLOCK
    operation would have to be altered". {!changed_axioms} verifies that
    claim mechanically (experiment E7). *)

open Adt

val sort : Sort.t

val spec : Spec.t
(** Uses {!Knowlist_spec.spec}; [ENTERBLOCK : Symboltable x Knowlist ->
    Symboltable]. *)

val make : identifier:Spec.t -> knowlist:Spec.t -> Spec.t
(** The same specification over custom identifier and knows-list
    universes. *)

val init : Term.t
val enterblock : Term.t -> Term.t -> Term.t
(** [enterblock symtab klist]. *)

val leaveblock : Term.t -> Term.t
val add : Term.t -> Term.t -> Term.t -> Term.t
val is_inblock : Term.t -> Term.t -> Term.t
val retrieve : Term.t -> Term.t -> Term.t

val changed_axioms : unit -> Axiom.t list * Axiom.t list
(** [(changed, kept)]: the axioms of this specification that have no
    equal-up-to-renaming counterpart in {!Symboltable_spec.spec}, and those
    that do. The paper's claim is that every member of [changed] mentions
    ENTERBLOCK. *)
