(** Builtin auxiliary specifications: Boolean connectives, natural numbers,
    and a small parameter type of items.

    The paper's axioms use Boolean observers and the refinement proof needs
    [NOT]; [Nat] backs [SIZE]/[HASH]-style operations; [Item] is the
    parameter type of the Queue examples ("in effect Item is a parameter of
    type Queue", section 3) made concrete with a few atoms so that
    specifications are executable and enumerable. *)

open Adt

val bool_sort : Sort.t

val bool_spec : Spec.t
(** [NOT], [AND], [OR] over the builtin constants. *)

val not_ : Term.t -> Term.t
val and_ : Term.t -> Term.t -> Term.t
val or_ : Term.t -> Term.t -> Term.t

val nat_sort : Sort.t

val nat_spec : Spec.t
(** Constructors [ZERO], [SUCC]; observers [PLUS], [EQ_NAT?]. *)

val zero : Term.t
val succ : Term.t -> Term.t

val nat_of_int : int -> Term.t
(** Raises [Invalid_argument] on negatives. *)

val int_of_nat : Term.t -> int option
(** [None] when the term is not a numeral. *)

val plus : Term.t -> Term.t -> Term.t
val eq_nat : Term.t -> Term.t -> Term.t

val item_sort : Sort.t

val item_spec : Spec.t
(** Atoms [ITEM1] ... [ITEM4]. *)

val item : int -> Term.t
(** [item i] for [i] in 1..4. Raises [Invalid_argument] otherwise. *)

val items : Term.t list
