(** Type Stack — the paper's axioms 10-16 (section 4).

    The paper instantiates Stack at element type Array to represent the
    symbol table; the constructor here is parameterised by the element
    specification so the same seven operations and axioms serve Stack (of
    Arrays), Stack (of Items), or any other instance. [REPLACE] is the
    derived operation of axiom 16: [REPLACE(stk, arr) =
    if IS_NEWSTACK?(stk) then error else PUSH(POP(stk), arr)]. *)

open Adt

type t = {
  spec : Spec.t;
  sort : Sort.t;
  elem_sort : Sort.t;
  newstack : Term.t;
  push : Term.t -> Term.t -> Term.t;
  pop : Term.t -> Term.t;
  top : Term.t -> Term.t;
  is_newstack : Term.t -> Term.t;
  replace : Term.t -> Term.t -> Term.t;
}

val make : ?sort_name:string -> elem:Spec.t -> elem_sort:Sort.t -> unit -> t
(** [make ~elem ~elem_sort ()] is the Stack specification over the element
    specification; [sort_name] defaults to ["Stack"]. Operation names carry
    no suffix, so two instances cannot be unioned into one system unless
    given distinct [sort_name]s and distinct operation names — the paper
    needs only one instance at a time. *)

val of_items : t -> Term.t list -> Term.t
(** [of_items s [a; b]] pushes [a] then [b] ([b] on top). *)

val default : t
(** Stack (of Items), the instance used by the standalone tests. *)
