(** A direct implementation of type Stack: a linked list, mirroring the
    paper's PL/I scheme of a pointer to [stack_elem] structures with [val]
    and [prev] fields ([NEWSTACK' :: null]). *)

open Adt

type t
(** A stack of element terms, top first. *)

exception Error
(** [POP]/[TOP]/[REPLACE] of the empty stack. *)

val newstack : t
val push : t -> Term.t -> t
val pop : t -> t
val top : t -> Term.t
val is_newstack : t -> bool
val replace : t -> Term.t -> t
val depth : t -> int
val to_list : t -> Term.t list

val abstraction : Stack_spec.t -> t -> Term.t
(** [Phi] for the given Stack instance: the paper's
    [Phi(symtab) :: if symtab = null then NEWSTACK else
    PUSH(Phi(symtab->prev), symtab->val)]. *)

val model : Stack_spec.t -> t Model.t
