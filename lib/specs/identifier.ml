open Adt

let sort = Sort.v "Identifier"
let default_atoms = [ "X"; "Y"; "Z"; "W" ]
let default_buckets = 3

let atom_op name = Op.v ("ID_" ^ name) ~args:[] ~result:sort
let id name = Term.const (atom_op name)

let same_op = Op.v "SAME?" ~args:[ sort; sort ] ~result:Sort.bool
let hash_op = Op.v "HASH" ~args:[ sort ] ~result:Builtins.nat_sort

let spec_with_atoms ?(buckets = default_buckets) atoms =
  if atoms = [] then invalid_arg "Identifier.spec_with_atoms: no atoms";
  let base =
    Spec.union ~name:"Identifier" Builtins.nat_spec
      (Spec.v ~name:"" ~signature:Signature.empty ~axioms:[] ())
  in
  let signature =
    List.fold_left
      (fun sg a -> Signature.add_op (atom_op a) sg)
      (Signature.add_sort sort (Spec.signature base))
      atoms
  in
  let signature = Signature.add_op same_op signature in
  let signature = Signature.add_op hash_op signature in
  let same_axioms =
    List.concat_map
      (fun a ->
        List.map
          (fun b ->
            Axiom.v
              ~name:(Fmt.str "same_%s_%s" a b)
              ~lhs:(Term.app same_op [ id a; id b ])
              ~rhs:(if String.equal a b then Term.tt else Term.ff)
              ())
          atoms)
      atoms
  in
  let hash_axioms =
    List.mapi
      (fun i a ->
        Axiom.v
          ~name:(Fmt.str "hash_%s" a)
          ~lhs:(Term.app hash_op [ id a ])
          ~rhs:(Builtins.nat_of_int (i mod buckets))
          ())
      atoms
  in
  let fresh =
    Spec.v ~name:"Identifier" ~signature
      ~constructors:(List.map (fun a -> "ID_" ^ a) atoms)
      ~axioms:(same_axioms @ hash_axioms)
      ()
  in
  Spec.union ~name:"Identifier" base fresh

let spec = spec_with_atoms default_atoms

let atom_terms s =
  List.filter_map
    (fun op ->
      let n = Op.name op in
      if String.length n > 3 && String.sub n 0 3 = "ID_" && Op.is_constant op
      then Some (Term.const op)
      else None)
    (Signature.ops (Spec.signature s))

let same s a b = Term.app (Spec.op_exn s "SAME?") [ a; b ]
let hash s a = Term.app (Spec.op_exn s "HASH") [ a ]
