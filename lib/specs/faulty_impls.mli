(** The mutation corpus: seeded-bug variants of the direct implementations,
    mirroring [specs/faulty/] one level down the refinement.

    Each value is a {!Model.t} that differs from a clean implementation by
    one planted fault. They exist to be {e killed}: the conformance suites
    [lib/testgen] compiles from the specifications must report a
    counterexample against every one of them (asserted in
    [test/test_testgen.ml] and gated in CI), which is the evidence that the
    generated suites actually bite. None of these models satisfies its
    specification; do not use them for anything but testing the testers. *)

open Adt

val queue_remove_back : Term.t list Model.t
(** [REMOVE] drops the most recently added item instead of the front. *)

val queue_lifo_front : Term.t list Model.t
(** [FRONT] answers the most recently added item — a LIFO impostor. *)

val bq_premature_full : Term.t list Model.t
(** Off-by-one capacity: the queue refuses its [bound]-th item. *)

val bq_remove_back : Term.t list Model.t
(** [REMOVE_Q] drops the back of the ring instead of advancing the head. *)

module Stale_array : Array_intf.ARRAY
(** The faulty [ARRAY]: assignments are logged correctly but [READ]
    scans oldest-first. *)

val array_stale_read : Stale_array.t Model.t
(** [READ] answers the {e oldest} assignment to the key, so shadowing
    writes are invisible. Only observational testing can see this: the
    abstraction function still reproduces the full assignment log. *)

module Stale_symboltable : Symboltable_impl.S

val symboltable_stale_read : Stale_symboltable.t Model.t
(** {!array_stale_read}'s fault propagated up the hierarchy: a symbol
    table over stale-reading block arrays, where re-declaring an
    identifier in the same block keeps its old attributes. *)

val stack_replace_pushes : Stack_impl.t Model.t
(** [REPLACE] pushes instead of replacing the top. Invisible to every
    depth-0 observation ([TOP] answers the same item either way); killed
    only through nested observation contexts such as
    [IS_NEWSTACK?(POP(#))]. *)
