open Adt

let sort = Sort.v "Queue"

let new_op = Op.v "NEW" ~args:[] ~result:sort
let add_op = Op.v "ADD" ~args:[ sort; Builtins.item_sort ] ~result:sort
let front_op = Op.v "FRONT" ~args:[ sort ] ~result:Builtins.item_sort
let remove_op = Op.v "REMOVE" ~args:[ sort ] ~result:sort
let is_empty_op = Op.v "IS_EMPTY?" ~args:[ sort ] ~result:Sort.bool

let new_ = Term.const new_op
let add q i = Term.app add_op [ q; i ]
let front q = Term.app front_op [ q ]
let remove q = Term.app remove_op [ q ]
let is_empty q = Term.app is_empty_op [ q ]

let spec =
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort sort (Spec.signature Builtins.item_spec))
      [ new_op; add_op; front_op; remove_op; is_empty_op ]
  in
  let q = Term.var "q" sort and i = Term.var "i" Builtins.item_sort in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let fresh =
    Spec.v ~name:"Queue" ~signature
      ~constructors:[ "NEW"; "ADD" ]
      ~axioms:
        [
          ax "1" (is_empty new_) Term.tt;
          ax "2" (is_empty (add q i)) Term.ff;
          ax "3" (front new_) (Term.err Builtins.item_sort);
          ax "4" (front (add q i)) (Term.ite (is_empty q) i (front q));
          ax "5" (remove new_) (Term.err sort);
          ax "6" (remove (add q i)) (Term.ite (is_empty q) new_ (add (remove q) i));
        ]
      ()
  in
  Spec.union ~name:"Queue" Builtins.item_spec fresh

let of_items items = List.fold_left add new_ items

let to_items term =
  let rec go acc t =
    match Term.view t with
    | Term.App (op, []) when Op.equal op new_op -> Some acc
    | Term.App (op, [ q; i ]) when Op.equal op add_op -> go (i :: acc) q
    | _ -> None
  in
  go [] term
