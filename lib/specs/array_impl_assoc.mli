(** The association-list implementation of type Array.

    The simple persistent representation a designer might start with; the
    paper's point about algebraic specifications is precisely that this
    choice can be delayed and later swapped for the hash table without
    touching clients (experiment E6 benchmarks the two). Reads are O(n) in
    the number of assignments. *)

include Array_intf.ARRAY
