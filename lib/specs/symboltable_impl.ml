open Adt

module type S = sig
  type t

  exception Error

  val init : unit -> t
  val enterblock : t -> t
  val leaveblock : t -> t
  val add : t -> Term.t -> Term.t -> t
  val is_inblock : t -> Term.t -> bool
  val retrieve : t -> Term.t -> Term.t option
  val retrieve_exn : t -> Term.t -> Term.t
  val depth : t -> int
  val abstraction : t -> Term.t
  val model : t Model.t
end

module Make (A : Array_intf.ARRAY) : S = struct
  (* scopes, innermost first; never empty *)
  type t = A.t list

  exception Error

  let init () = [ A.empty () ]
  let enterblock scopes = A.empty () :: scopes

  let leaveblock = function
    | [ _ ] | [] -> raise Error
    | _ :: rest -> rest

  let add scopes id attrs =
    match scopes with
    | [] -> raise Error
    | top :: rest -> A.assign top id attrs :: rest

  let is_inblock scopes id =
    match scopes with
    | [] -> raise Error
    | top :: _ -> not (A.is_undefined top id)

  let retrieve scopes id =
    List.find_map (fun scope -> A.read scope id) scopes

  let retrieve_exn scopes id =
    match retrieve scopes id with Some v -> v | None -> raise Error

  let depth = List.length

  let abstraction scopes =
    let add_bindings base scope =
      List.fold_left
        (fun acc (id, attrs) -> Symboltable_spec.add acc id attrs)
        base (A.bindings scope)
    in
    let rec build = function
      | [] -> assert false (* the scope list is never empty *)
      | [ bottom ] -> add_bindings Symboltable_spec.init bottom
      | top :: rest -> add_bindings (Symboltable_spec.enterblock (build rest)) top
    in
    build scopes

  let model =
    let interp name (args : t Model.value list) : t Model.value option =
      match (name, args) with
      | "INIT", [] -> Some (Model.Rep (init ()))
      | "ENTERBLOCK", [ Model.Rep s ] -> Some (Model.Rep (enterblock s))
      | "LEAVEBLOCK", [ Model.Rep s ] -> (
        match leaveblock s with
        | s' -> Some (Model.Rep s')
        | exception Error ->
          raise (Model.Impl_error "LEAVEBLOCK of the outermost scope"))
      | "ADD", [ Model.Rep s; Model.Foreign id; Model.Foreign attrs ] ->
        Some (Model.Rep (add s id attrs))
      | "IS_INBLOCK?", [ Model.Rep s; Model.Foreign id ] ->
        Some (Model.Foreign (if is_inblock s id then Term.tt else Term.ff))
      | "RETRIEVE", [ Model.Rep s; Model.Foreign id ] -> (
        match retrieve s id with
        | Some attrs -> Some (Model.Foreign attrs)
        | None -> raise (Model.Impl_error "RETRIEVE of undeclared identifier"))
      | _ -> None
    in
    {
      Model.model_name = "stack-of-" ^ A.impl_name;
      interp;
      abstraction;
    }
end

module Hash = Make (Array_impl_hash)
module Assoc = Make (Array_impl_assoc)
