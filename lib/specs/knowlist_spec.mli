(** Type Knowlist — the paper's language-change exercise (end of section
    4): a "knows list" names, at block entry, the nonlocal variables a
    block may use. Operations [CREATE], [APPEND], [IS_IN?] with the
    paper's axioms. *)

open Adt

val sort : Sort.t
val spec : Spec.t

val make : identifier:Spec.t -> Spec.t
(** The same specification over a custom identifier universe. *)

val create : Term.t
val append : Term.t -> Term.t -> Term.t
val is_in : Term.t -> Term.t -> Term.t

val of_ids : Term.t list -> Term.t
