open Adt

let pair_sort = Sort.v "IdAttrPair"
let list_sort = Sort.v "PList"

let pair_op =
  Op.v "PAIR" ~args:[ Identifier.sort; Attributes.sort ] ~result:pair_sort

let fst_op = Op.v "FST" ~args:[ pair_sort ] ~result:Identifier.sort
let snd_op = Op.v "SND" ~args:[ pair_sort ] ~result:Attributes.sort
let nil_op = Op.v "NIL" ~args:[] ~result:list_sort
let cons_op = Op.v "CONS" ~args:[ pair_sort; list_sort ] ~result:list_sort
let head_op = Op.v "HEAD" ~args:[ list_sort ] ~result:pair_sort
let tail_op = Op.v "TAIL" ~args:[ list_sort ] ~result:list_sort
let is_nil_op = Op.v "IS_NIL?" ~args:[ list_sort ] ~result:Sort.bool

let pair id attrs = Term.app pair_op [ id; attrs ]
let fst_ p = Term.app fst_op [ p ]
let snd_ p = Term.app snd_op [ p ]
let nil = Term.const nil_op
let cons p l = Term.app cons_op [ p; l ]
let head l = Term.app head_op [ l ]
let tail l = Term.app tail_op [ l ]
let is_nil l = Term.app is_nil_op [ l ]

let spec =
  let base = Spec.union ~name:"PairList" Identifier.spec Attributes.spec in
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort list_sort
         (Signature.add_sort pair_sort (Spec.signature base)))
      [ pair_op; fst_op; snd_op; nil_op; cons_op; head_op; tail_op; is_nil_op ]
  in
  let id = Term.var "id" Identifier.sort
  and attrs = Term.var "attrs" Attributes.sort
  and p = Term.var "p" pair_sort
  and l = Term.var "l" list_sort in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let fresh =
    Spec.v ~name:"PairList" ~signature
      ~constructors:[ "PAIR"; "NIL"; "CONS" ]
      ~axioms:
        [
          ax "fst" (fst_ (pair id attrs)) id;
          ax "snd" (snd_ (pair id attrs)) attrs;
          ax "isnil_nil" (is_nil nil) Term.tt;
          ax "isnil_cons" (is_nil (cons p l)) Term.ff;
          ax "head_nil" (head nil) (Term.err pair_sort);
          ax "head_cons" (head (cons p l)) p;
          ax "tail_nil" (tail nil) (Term.err list_sort);
          ax "tail_cons" (tail (cons p l)) l;
        ]
      ()
  in
  Spec.union ~name:"PairList" base fresh

(* bindings arrive in assignment order; the most recent ends at the head *)
let of_bindings bindings =
  List.fold_left (fun l (id, attrs) -> cons (pair id attrs) l) nil bindings
