(** The common interface of the Array implementations.

    Keys and values are terms; key equality is structural term equality,
    which coincides with the specification's [SAME?] on identifier atoms.
    [bindings] reports the full assignment log in order (earliest first,
    shadowed entries included) — the information the abstraction function
    [Phi] needs to rebuild the iterated-[ASSIGN] constructor term. *)

open Adt

module type ARRAY = sig
  type t

  val impl_name : string

  val empty : unit -> t

  val assign : t -> Term.t -> Term.t -> t
  (** May mutate its argument (the hash implementation is imperative like
      the paper's PL/I original); use values linearly. *)

  val read : t -> Term.t -> Term.t option
  (** The value of the {e most recent} assignment to the key; [None] when
      undefined (the specification's [error]). *)

  val is_undefined : t -> Term.t -> bool
  val bindings : t -> (Term.t * Term.t) list
end

(** The model adapter, shared by every ARRAY implementation. *)
let model (type a) (module A : ARRAY with type t = a) (inst : Array_spec.t) :
    a Model.t =
  let abstraction arr = Array_spec.of_bindings inst (A.bindings arr) in
  let interp name (args : a Model.value list) : a Model.value option =
    match (name, args) with
    | "EMPTY", [] -> Some (Model.Rep (A.empty ()))
    | "ASSIGN", [ Model.Rep arr; Model.Foreign k; Model.Foreign v ] ->
      Some (Model.Rep (A.assign arr k v))
    | "READ", [ Model.Rep arr; Model.Foreign k ] -> (
      match A.read arr k with
      | Some v -> Some (Model.Foreign v)
      | None -> raise (Model.Impl_error "READ of undefined index"))
    | "IS_UNDEFINED?", [ Model.Rep arr; Model.Foreign k ] ->
      Some (Model.Foreign (if A.is_undefined arr k then Term.tt else Term.ff))
    | _ -> None
  in
  { Model.model_name = A.impl_name; interp; abstraction }
