(** The ring-buffer implementation of the Bounded Queue — the paper's
    figures: a circular buffer of {!Bounded_queue_spec.bound} slots and a
    pointer. Removed elements are left stale in their slots, so distinct
    internal states can denote the same abstract value: the abstraction
    function [Phi] is many-to-one, which is the point the paper makes with
    this type ("the mapping from values to representations, [Phi^-1], may
    be one-to-many").

    [add] on a full queue raises {!Error} — the bound is a client
    obligation, the same conditional-correctness shape as the paper's
    Assumption 1. *)

open Adt

type t

exception Error

val empty : t
val add : t -> Term.t -> t
val front : t -> Term.t
val remove : t -> t
val is_empty : t -> bool
val is_full : t -> bool
val size : t -> int

val slots : t -> Term.t option array
(** A copy of the raw slot contents, stale entries included. *)

val head : t -> int

val state_equal : t -> t -> bool
(** Equality of the {e internal} states (slots, head pointer, length) —
    deliberately finer than abstract equality. *)

val abstraction : t -> Term.t
(** [Phi] into {!Bounded_queue_spec.spec} constructor terms. *)

val model : t Model.t

val pp_state : t Fmt.t
(** Renders the ring and pointer, like the paper's diagrams. *)
