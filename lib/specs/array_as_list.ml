open Adt

let array = Array_spec.default
let array_sort = array.Array_spec.sort
let list_sort = Pairlist_spec.list_sort

let empty_op' = Op.v "EMPTY'" ~args:[] ~result:list_sort

let assign_op' =
  Op.v "ASSIGN'"
    ~args:[ list_sort; Identifier.sort; Attributes.sort ]
    ~result:list_sort

let read_op' =
  Op.v "READ'" ~args:[ list_sort; Identifier.sort ] ~result:Attributes.sort

let is_undefined_op' =
  Op.v "IS_UNDEFINED?'" ~args:[ list_sort; Identifier.sort ] ~result:Sort.bool

let phi_op = Op.v "PHI_A" ~args:[ list_sort ] ~result:array_sort

let empty' = Term.const empty_op'
let assign' l id a = Term.app assign_op' [ l; id; a ]
let read' l id = Term.app read_op' [ l; id ]
let is_undefined' l id = Term.app is_undefined_op' [ l; id ]
let phi l = Term.app phi_op [ l ]

let generators = [ empty_op'; assign_op' ]

let combined =
  let base = Spec.union ~name:"Array_as_List" Pairlist_spec.spec Builtins.bool_spec in
  (* the abstract Array constructors, the range of PHI_A *)
  let abstract_ops =
    [
      Spec.op_exn array.Array_spec.spec "EMPTY";
      Spec.op_exn array.Array_spec.spec "ASSIGN";
    ]
  in
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort array_sort (Spec.signature base))
      (abstract_ops
      @ [ empty_op'; assign_op'; read_op'; is_undefined_op'; phi_op ])
  in
  let l = Term.var "l" list_sort
  and id = Term.var "id" Identifier.sort
  and attrs = Term.var "attrs" Attributes.sort in
  let same a b = Term.app (Spec.op_exn Identifier.spec "SAME?") [ a; b ] in
  let open Pairlist_spec in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let defs =
    [
      ax "def_empty" empty' nil;
      ax "def_assign" (assign' l id attrs) (cons (pair id attrs) l);
      ax "def_read" (read' l id)
        (Term.ite (is_nil l)
           (Term.err Attributes.sort)
           (Term.ite
              (same (fst_ (head l)) id)
              (snd_ (head l))
              (read' (tail l) id)));
      ax "def_undef" (is_undefined' l id)
        (Term.ite (is_nil l) Term.tt
           (Term.ite (same (fst_ (head l)) id) Term.ff
              (is_undefined' (tail l) id)));
      ax "phi_nil" (phi nil) array.Array_spec.empty;
      ax "phi_cons"
        (phi (cons (Term.var "p" Pairlist_spec.pair_sort) l))
        (array.Array_spec.assign (phi l)
           (fst_ (Term.var "p" Pairlist_spec.pair_sort))
           (snd_ (Term.var "p" Pairlist_spec.pair_sort)));
    ]
  in
  let fresh =
    Spec.v ~name:"Array_as_List" ~signature
      ~constructors:[ "EMPTY"; "ASSIGN" ]
      ~axioms:defs ()
  in
  Spec.union ~name:"Array_as_List" base fresh

let primed_name = function
  | "EMPTY" -> Some empty_op'
  | "ASSIGN" -> Some assign_op'
  | "READ" -> Some read_op'
  | "IS_UNDEFINED?" -> Some is_undefined_op'
  | _ -> None

let rec translate term =
  match Term.view term with
  | Term.Var (x, s) when Sort.equal s array_sort -> Term.var x list_sort
  | Term.Var _ -> term
  | Term.Err s when Sort.equal s array_sort -> Term.err list_sort
  | Term.Err _ -> term
  | Term.App (op, args) -> (
    let args = List.map translate args in
    match primed_name (Op.name op) with
    | Some op' -> Term.app op' args
    | None -> Term.app op args)
  | Term.Ite (c, a, b) -> Term.ite (translate c) (translate a) (translate b)

let obligation axiom =
  let lhs = translate (Axiom.lhs axiom) and rhs = translate (Axiom.rhs axiom) in
  if Sort.equal (Term.sort_of lhs) list_sort then (phi lhs, phi rhs)
  else (lhs, rhs)

type result = {
  axiom_name : string;
  goal : Term.t * Term.t;
  outcome : Proof.outcome;
}

let array_axioms () =
  List.filter
    (fun ax ->
      match int_of_string_opt (Axiom.name ax) with
      | Some n -> n >= 17 && n <= 20
      | None -> false)
    (Spec.axioms array.Array_spec.spec)

let verify () =
  (* unlike the Symboltable proof, no reachability invariant is needed:
     every list value denotes an array *)
  let cfg =
    Proof.config ~generators:[ (list_sort, generators) ] ~max_case_depth:6
      ~fuel:5_000 ~max_goals:150
      combined
  in
  List.map
    (fun ax ->
      let goal = obligation ax in
      { axiom_name = Axiom.name ax; goal; outcome = Proof.prove cfg goal })
    (array_axioms ())

let all_proved results =
  results <> []
  && List.for_all
       (fun r ->
         match r.outcome with Proof.Proved _ -> true | Proof.Unknown _ -> false)
       results

let pp_results ppf results =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf r ->
          let verdict =
            match r.outcome with
            | Proof.Proved p ->
              Fmt.str "proved (%d step(s), depth %d)" (Proof.proof_size p)
                (Proof.proof_depth p)
            | Proof.Unknown _ -> "UNKNOWN"
          in
          Fmt.pf ppf "axiom %s: %s" r.axiom_name verdict))
    results
