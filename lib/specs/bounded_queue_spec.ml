open Adt

let bound = 3
let sort = Sort.v "BQueue"

let empty_op = Op.v "EMPTY_Q" ~args:[] ~result:sort
let add_op = Op.v "ADD_Q" ~args:[ sort; Builtins.item_sort ] ~result:sort
let front_op = Op.v "FRONT_Q" ~args:[ sort ] ~result:Builtins.item_sort
let remove_op = Op.v "REMOVE_Q" ~args:[ sort ] ~result:sort
let is_empty_op = Op.v "IS_EMPTY_Q?" ~args:[ sort ] ~result:Sort.bool
let size_op = Op.v "SIZE_Q" ~args:[ sort ] ~result:Builtins.nat_sort
let is_full_op = Op.v "IS_FULL?" ~args:[ sort ] ~result:Sort.bool

let empty_q = Term.const empty_op
let add_q q i = Term.app add_op [ q; i ]
let front_q q = Term.app front_op [ q ]
let remove_q q = Term.app remove_op [ q ]
let is_empty_q q = Term.app is_empty_op [ q ]
let size_q q = Term.app size_op [ q ]
let is_full q = Term.app is_full_op [ q ]

let spec =
  let base =
    Spec.union ~name:"BoundedQueue" Builtins.item_spec Builtins.nat_spec
  in
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort sort (Spec.signature base))
      [ empty_op; add_op; front_op; remove_op; is_empty_op; size_op; is_full_op ]
  in
  let q = Term.var "q" sort and i = Term.var "i" Builtins.item_sort in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let fresh =
    Spec.v ~name:"BoundedQueue" ~signature
      ~constructors:[ "EMPTY_Q"; "ADD_Q" ]
      ~axioms:
        [
          ax "b1" (is_empty_q empty_q) Term.tt;
          ax "b2" (is_empty_q (add_q q i)) Term.ff;
          ax "b3" (front_q empty_q) (Term.err Builtins.item_sort);
          ax "b4" (front_q (add_q q i))
            (Term.ite (is_empty_q q) i (front_q q));
          ax "b5" (remove_q empty_q) (Term.err sort);
          ax "b6" (remove_q (add_q q i))
            (Term.ite (is_empty_q q) empty_q (add_q (remove_q q) i));
          ax "b7" (size_q empty_q) Builtins.zero;
          ax "b8" (size_q (add_q q i)) (Builtins.succ (size_q q));
          ax "b9" (is_full q)
            (Builtins.eq_nat (size_q q) (Builtins.nat_of_int bound));
        ]
      ()
  in
  Spec.union ~name:"BoundedQueue" base fresh

let of_items items = List.fold_left add_q empty_q items
