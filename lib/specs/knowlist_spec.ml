open Adt

let sort = Sort.v "Knowlist"

let create_op = Op.v "CREATE" ~args:[] ~result:sort
let append_op = Op.v "APPEND" ~args:[ sort; Identifier.sort ] ~result:sort
let is_in_op = Op.v "IS_IN?" ~args:[ sort; Identifier.sort ] ~result:Sort.bool

let create = Term.const create_op
let append k id = Term.app append_op [ k; id ]
let is_in k id = Term.app is_in_op [ k; id ]

let make ~identifier =
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort sort (Spec.signature identifier))
      [ create_op; append_op; is_in_op ]
  in
  let klist = Term.var "klist" sort
  and id = Term.var "id" Identifier.sort
  and id1 = Term.var "id1" Identifier.sort in
  let same a b = Term.app (Spec.op_exn identifier "SAME?") [ a; b ] in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let fresh =
    Spec.v ~name:"Knowlist" ~signature
      ~constructors:[ "CREATE"; "APPEND" ]
      ~axioms:
        [
          ax "k1" (is_in create id) Term.ff;
          ax "k2"
            (is_in (append klist id) id1)
            (Term.ite (same id id1) Term.tt (is_in klist id1));
        ]
      ()
  in
  Spec.union ~name:"Knowlist" identifier fresh

let spec = make ~identifier:Identifier.spec

let of_ids ids = List.fold_left append create ids
