open Adt

type t = {
  spec : Spec.t;
  sort : Sort.t;
  index_sort : Sort.t;
  value_sort : Sort.t;
  empty : Term.t;
  assign : Term.t -> Term.t -> Term.t -> Term.t;
  read : Term.t -> Term.t -> Term.t;
  is_undefined : Term.t -> Term.t -> Term.t;
}

let make ?(sort_name = "Array") ~index ~index_sort ~same ~value ~value_sort ()
    =
  let same_op =
    match Spec.find_op same index with
    | Some op -> op
    | None ->
      invalid_arg
        (Fmt.str "Array_spec.make: index specification has no %s operation"
           same)
  in
  let sort = Sort.v sort_name in
  let empty_op = Op.v "EMPTY" ~args:[] ~result:sort in
  let assign_op =
    Op.v "ASSIGN" ~args:[ sort; index_sort; value_sort ] ~result:sort
  in
  let read_op = Op.v "READ" ~args:[ sort; index_sort ] ~result:value_sort in
  let is_undefined_op =
    Op.v "IS_UNDEFINED?" ~args:[ sort; index_sort ] ~result:Sort.bool
  in
  let empty = Term.const empty_op in
  let assign a i v = Term.app assign_op [ a; i; v ] in
  let read a i = Term.app read_op [ a; i ] in
  let is_undefined a i = Term.app is_undefined_op [ a; i ] in
  let same a b = Term.app same_op [ a; b ] in
  let base = Spec.union ~name:sort_name index value in
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort sort (Spec.signature base))
      [ empty_op; assign_op; read_op; is_undefined_op ]
  in
  let arr = Term.var "arr" sort
  and idx = Term.var "id" index_sort
  and idx' = Term.var "id1" index_sort
  and v = Term.var "attrs" value_sort in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let fresh =
    Spec.v ~name:sort_name ~signature
      ~constructors:[ "EMPTY"; "ASSIGN" ]
      ~axioms:
        [
          ax "17" (is_undefined empty idx) Term.tt;
          ax "18"
            (is_undefined (assign arr idx v) idx')
            (Term.ite (same idx idx') Term.ff (is_undefined arr idx'));
          ax "19" (read empty idx) (Term.err value_sort);
          ax "20"
            (read (assign arr idx v) idx')
            (Term.ite (same idx idx') v (read arr idx'));
        ]
      ()
  in
  let spec = Spec.union ~name:sort_name base fresh in
  { spec; sort; index_sort; value_sort; empty; assign; read; is_undefined }

let default =
  make ~index:Identifier.spec ~index_sort:Identifier.sort ~same:"SAME?"
    ~value:Attributes.spec ~value_sort:Attributes.sort ()

let of_bindings t bindings =
  List.fold_left (fun arr (i, v) -> t.assign arr i v) t.empty bindings
