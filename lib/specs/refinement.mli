(** The Symboltable refinement and its correctness proof (section 4).

    The paper represents a symbol table as a Stack (of Arrays): for each
    abstract operation [f] a concrete [f'] is defined over the stack, and
    an abstraction function [Phi] maps stack terms to abstract symbol-table
    values. Correctness means every abstract axiom holds under the
    translation: for axioms whose range is Symboltable the obligation is
    [Phi(lhs') = Phi(rhs')], otherwise [lhs' = rhs'] — the exact conditions
    (a)/(b) of the paper.

    The original proof was done mechanically by Musser's verifier;
    {!verify} reproduces it with {!Proof}: first the representation
    invariant {!nonempty_lemma} — reachable stacks are never the bare
    [NEWSTACK]; this is the formal content of the paper's Assumption 1 —
    is proved by generator induction over [INIT'], [ENTERBLOCK'], [ADD'],
    then each of axioms 1-9 follows by normalization and case analysis.
    {!assumption_violation} exhibits why the assumption is necessary:
    applied to the raw empty stack, [ADD'] breaks axiom 9. *)

open Adt

val array : Array_spec.t
(** Array (of Attributelists) indexed by Identifier. *)

val stack : Stack_spec.t
(** Stack (of Arrays). *)

val stack_sort : Sort.t

val combined : Spec.t
(** Stack, Array, Identifier, Attributelist, Boolean connectives, the
    abstract Symboltable constructors, the primed operations with their
    definitional axioms, and [PHI]. *)

(** {1 The implementation's operations} *)

val init' : Term.t
val enterblock' : Term.t -> Term.t
val leaveblock' : Term.t -> Term.t
val add' : Term.t -> Term.t -> Term.t -> Term.t
val is_inblock' : Term.t -> Term.t -> Term.t
val retrieve' : Term.t -> Term.t -> Term.t
val phi : Term.t -> Term.t

val generators : Op.t list
(** [INIT'; ENTERBLOCK'; ADD'] — the images of the abstract constructors,
    used as the generator set of sort Stack in induction. *)

val nonempty_lemma : Axiom.t
(** [IS_NEWSTACK?(stk) = false] for reachable [stk]. *)

(** {1 Proof harness} *)

val base_config : unit -> Proof.config
(** Prover over {!combined} with the generator override, {e without} the
    invariant lemma. *)

val verified_config : unit -> (Proof.config, Proof.outcome) result
(** [base_config] extended by proving {!nonempty_lemma}. *)

val obligation : Axiom.t -> Term.t * Term.t
(** The proof obligation for one abstract Symboltable axiom: operations
    primed, Symboltable-sorted sides wrapped in [PHI]. *)

type result = { axiom_name : string; goal : Term.t * Term.t; outcome : Proof.outcome }

val verify : unit -> Proof.outcome * result list
(** The lemma's outcome and one result per abstract axiom 1-9. *)

val all_proved : Proof.outcome * result list -> bool

val assumption_violation : unit -> Term.t * Term.t * Term.t
(** [(term, got, expected)]: a ground instance of axiom 9 with [ADD']
    applied to the bare [NEWSTACK], its actual normal form ([error]), and
    the value axiom 9 demands. *)

val pp_results : (Proof.outcome * result list) Fmt.t
