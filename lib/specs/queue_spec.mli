(** Type Queue (of Items) — the paper's short example, section 3.

    Operations [NEW], [ADD], [FRONT], [REMOVE], [IS_EMPTY?] with axioms 1-6
    exactly as printed; "the distinguishing characteristic of a queue is
    that it is a first in - first out storage device" and the axioms assert
    "that and only that characteristic". *)

open Adt

val sort : Sort.t

val spec : Spec.t
(** Uses {!Builtins.item_spec} as the parameter type. *)

(** {1 Term builders} *)

val new_ : Term.t
val add : Term.t -> Term.t -> Term.t
val front : Term.t -> Term.t
val remove : Term.t -> Term.t
val is_empty : Term.t -> Term.t

val of_items : Term.t list -> Term.t
(** [of_items [a; b; c]] is [ADD(ADD(ADD(NEW, a), b), c)] — the queue with
    [a] at the front. *)

val to_items : Term.t -> Term.t list option
(** Inverse of {!of_items} on constructor normal forms. *)
