(** The whole builtin paper corpus as one list.

    Every specification the library defines in OCaml — the paper's types
    (Queue, Stack, Array, Symboltable, Knowlist, the ring-buffer
    Boundedqueue, the Pairlist of the second representation proof) plus
    the auxiliary builtins they use — in dependency order. This is what
    [adtc lint --all] sweeps and what the corpus-wide analyses (bench
    E12, the linter's silent-on-clean-corpus test) iterate. *)

open Adt

val all : Spec.t list
(** In dependency order: auxiliaries first. *)

val library : Library.t
(** {!all} registered under their own names. *)
