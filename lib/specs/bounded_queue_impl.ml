open Adt

let bound = Bounded_queue_spec.bound

type t = { slots : Term.t option array; head : int; len : int }

exception Error

let empty = { slots = Array.make bound None; head = 0; len = 0 }
let is_empty q = q.len = 0
let is_full q = q.len = bound
let size q = q.len

let add q item =
  if is_full q then raise Error
  else begin
    let slots = Array.copy q.slots in
    slots.((q.head + q.len) mod bound) <- Some item;
    { q with slots; len = q.len + 1 }
  end

let front q =
  if is_empty q then raise Error
  else match q.slots.(q.head) with Some i -> i | None -> raise Error

let remove q =
  if is_empty q then raise Error
  else { q with head = (q.head + 1) mod bound; len = q.len - 1 }

let slots q = Array.copy q.slots
let head q = q.head

let state_equal a b =
  a.head = b.head && a.len = b.len
  && Array.for_all2 (Option.equal Term.equal) a.slots b.slots

let to_list q =
  List.init q.len (fun i ->
      match q.slots.((q.head + i) mod bound) with
      | Some item -> item
      | None -> raise Error)

let abstraction q = Bounded_queue_spec.of_items (to_list q)

let model =
  let interp name (args : t Model.value list) : t Model.value option =
    match (name, args) with
    | "EMPTY_Q", [] -> Some (Model.Rep empty)
    | "ADD_Q", [ Model.Rep q; Model.Foreign i ] -> (
      match add q i with
      | q' -> Some (Model.Rep q')
      | exception Error -> raise (Model.Impl_error "ADD_Q of full queue"))
    | "FRONT_Q", [ Model.Rep q ] -> (
      match front q with
      | i -> Some (Model.Foreign i)
      | exception Error -> raise (Model.Impl_error "FRONT_Q of empty queue"))
    | "REMOVE_Q", [ Model.Rep q ] -> (
      match remove q with
      | q' -> Some (Model.Rep q')
      | exception Error -> raise (Model.Impl_error "REMOVE_Q of empty queue"))
    | "IS_EMPTY_Q?", [ Model.Rep q ] ->
      Some (Model.Foreign (if is_empty q then Term.tt else Term.ff))
    | "IS_FULL?", [ Model.Rep q ] ->
      Some (Model.Foreign (if is_full q then Term.tt else Term.ff))
    | "SIZE_Q", [ Model.Rep q ] ->
      Some (Model.Foreign (Builtins.nat_of_int (size q)))
    | _ -> None
  in
  { Model.model_name = "ring-buffer bounded queue"; interp; abstraction }

let pp_state ppf q =
  let slot ppf = function
    | None -> Fmt.string ppf "."
    | Some item -> Term.pp ppf item
  in
  Fmt.pf ppf "@[<h>[%a] head=%d len=%d@]"
    Fmt.(array ~sep:sp slot)
    q.slots q.head q.len
