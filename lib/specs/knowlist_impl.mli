(** The list implementation of type Knowlist ("trivial", as the paper
    says). *)

open Adt

type t

val create : t
val append : t -> Term.t -> t
val is_in : t -> Term.t -> bool
val of_ids : Term.t list -> t
val abstraction : t -> Term.t
val model : t Model.t
