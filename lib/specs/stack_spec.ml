open Adt

type t = {
  spec : Spec.t;
  sort : Sort.t;
  elem_sort : Sort.t;
  newstack : Term.t;
  push : Term.t -> Term.t -> Term.t;
  pop : Term.t -> Term.t;
  top : Term.t -> Term.t;
  is_newstack : Term.t -> Term.t;
  replace : Term.t -> Term.t -> Term.t;
}

let make ?(sort_name = "Stack") ~elem ~elem_sort () =
  let sort = Sort.v sort_name in
  let newstack_op = Op.v "NEWSTACK" ~args:[] ~result:sort in
  let push_op = Op.v "PUSH" ~args:[ sort; elem_sort ] ~result:sort in
  let pop_op = Op.v "POP" ~args:[ sort ] ~result:sort in
  let top_op = Op.v "TOP" ~args:[ sort ] ~result:elem_sort in
  let is_newstack_op = Op.v "IS_NEWSTACK?" ~args:[ sort ] ~result:Sort.bool in
  let replace_op = Op.v "REPLACE" ~args:[ sort; elem_sort ] ~result:sort in
  let newstack = Term.const newstack_op in
  let push s e = Term.app push_op [ s; e ] in
  let pop s = Term.app pop_op [ s ] in
  let top s = Term.app top_op [ s ] in
  let is_newstack s = Term.app is_newstack_op [ s ] in
  let replace s e = Term.app replace_op [ s; e ] in
  let signature =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort sort (Spec.signature elem))
      [ newstack_op; push_op; pop_op; top_op; is_newstack_op; replace_op ]
  in
  let stk = Term.var "stk" sort and arr = Term.var "arr" elem_sort in
  let ax name lhs rhs = Axiom.v ~name ~lhs ~rhs () in
  let fresh =
    Spec.v ~name:sort_name ~signature
      ~constructors:[ "NEWSTACK"; "PUSH" ]
      ~axioms:
        [
          ax "10" (is_newstack newstack) Term.tt;
          ax "11" (is_newstack (push stk arr)) Term.ff;
          ax "12" (pop newstack) (Term.err sort);
          ax "13" (pop (push stk arr)) stk;
          ax "14" (top newstack) (Term.err elem_sort);
          ax "15" (top (push stk arr)) arr;
          ax "16" (replace stk arr)
            (Term.ite (is_newstack stk) (Term.err sort) (push (pop stk) arr));
        ]
      ()
  in
  let spec = Spec.union ~name:sort_name elem fresh in
  {
    spec;
    sort;
    elem_sort;
    newstack;
    push;
    pop;
    top;
    is_newstack;
    replace;
  }

let of_items t items = List.fold_left t.push t.newstack items

let default =
  make ~elem:Builtins.item_spec ~elem_sort:Builtins.item_sort ()
