open Adt

let all =
  [
    Builtins.bool_spec;
    Builtins.nat_spec;
    Builtins.item_spec;
    Identifier.spec;
    Attributes.spec;
    Queue_spec.spec;
    Stack_spec.default.Stack_spec.spec;
    Array_spec.default.Array_spec.spec;
    Symboltable_spec.spec;
    Knowlist_spec.spec;
    Symboltable_knows_spec.spec;
    Bounded_queue_spec.spec;
    Pairlist_spec.spec;
  ]

let library = Library.add_all all Library.empty
