open Adt

let sort = Sort.v "Attributelist"
let count = 3

let attr_op i = Op.v (Fmt.str "ATTRS%d" i) ~args:[] ~result:sort

let attrs i =
  if i < 1 || i > count then
    invalid_arg (Fmt.str "Attributes.attrs: %d out of range 1..%d" i count)
  else Term.const (attr_op i)

let all = List.init count (fun i -> attrs (i + 1))

let mk_op =
  Op.v "MK_ATTRS" ~args:[ Builtins.nat_sort; Builtins.nat_sort ] ~result:sort

let mk ~ty ~slot =
  Term.app mk_op [ Builtins.nat_of_int ty; Builtins.nat_of_int slot ]

let decode t =
  match Term.view t with
  | Term.App (op, [ ty; slot ]) when Op.equal op mk_op -> (
    match (Builtins.int_of_nat ty, Builtins.int_of_nat slot) with
    | Some t, Some s -> Some (t, s)
    | _ -> None)
  | _ -> None

let mk_proc_op =
  Op.v "MK_PROC"
    ~args:[ Builtins.nat_sort; Builtins.nat_sort; Builtins.nat_sort ]
    ~result:sort

(* parameter-type lists ride inside one Nat numeral, base 3, most
   significant digit first; 1 = int, 2 = bool, and the empty list is 0 *)
let encode_params params =
  List.fold_left (fun acc code -> (acc * 3) + code + 1) 0 params

let decode_params n =
  let rec go acc n =
    if n = 0 then acc else go (((n mod 3) - 1) :: acc) (n / 3)
  in
  go [] n

let mk_proc ~ret ~params ~index =
  Term.app mk_proc_op
    [
      Builtins.nat_of_int ret;
      Builtins.nat_of_int (encode_params params);
      Builtins.nat_of_int index;
    ]

let decode_proc t =
  match Term.view t with
  | Term.App (op, [ ret; params; index ]) when Op.equal op mk_proc_op -> (
    match
      ( Builtins.int_of_nat ret,
        Builtins.int_of_nat params,
        Builtins.int_of_nat index )
    with
    | Some r, Some p, Some i -> Some (r, decode_params p, i)
    | _ -> None)
  | _ -> None

let eq_op = Op.v "EQ_ATTRS?" ~args:[ sort; sort ] ~result:Sort.bool
let eq a b = Term.app eq_op [ a; b ]

let spec =
  let ids = List.init count (fun i -> i + 1) in
  let base =
    Spec.union ~name:"Attributelist" Builtins.nat_spec Builtins.bool_spec
  in
  let signature =
    List.fold_left
      (fun sg i -> Signature.add_op (attr_op i) sg)
      (Signature.add_sort sort (Spec.signature base))
      ids
  in
  let signature = Signature.add_op mk_op signature in
  let signature = Signature.add_op mk_proc_op signature in
  let signature = Signature.add_op eq_op signature in
  let m = Term.var "m" Builtins.nat_sort
  and n = Term.var "n" Builtins.nat_sort
  and m1 = Term.var "m1" Builtins.nat_sort
  and n1 = Term.var "n1" Builtins.nat_sort
  and p = Term.var "p" Builtins.nat_sort
  and p1 = Term.var "p1" Builtins.nat_sort in
  let mk_term a b = Term.app mk_op [ a; b ] in
  let mk_proc_term a b c = Term.app mk_proc_op [ a; b; c ] in
  let atom_axioms =
    List.concat_map
      (fun i ->
        List.map
          (fun j ->
            Axiom.v
              ~name:(Fmt.str "eq_attrs_%d_%d" i j)
              ~lhs:(eq (attrs i) (attrs j))
              ~rhs:(if i = j then Term.tt else Term.ff)
              ())
          ids)
      ids
  in
  let mixed_axioms =
    List.concat_map
      (fun i ->
        [
          Axiom.v
            ~name:(Fmt.str "eq_attrs_%d_mk" i)
            ~lhs:(eq (attrs i) (mk_term m n))
            ~rhs:Term.ff ();
          Axiom.v
            ~name:(Fmt.str "eq_attrs_mk_%d" i)
            ~lhs:(eq (mk_term m n) (attrs i))
            ~rhs:Term.ff ();
        ])
      ids
  in
  let mk_axiom =
    Axiom.v ~name:"eq_attrs_mk_mk"
      ~lhs:(eq (mk_term m n) (mk_term m1 n1))
      ~rhs:(Builtins.and_ (Builtins.eq_nat m m1) (Builtins.eq_nat n n1))
      ()
  in
  let proc_axioms =
    List.concat_map
      (fun i ->
        [
          Axiom.v
            ~name:(Fmt.str "eq_attrs_%d_proc" i)
            ~lhs:(eq (attrs i) (mk_proc_term m n p))
            ~rhs:Term.ff ();
          Axiom.v
            ~name:(Fmt.str "eq_attrs_proc_%d" i)
            ~lhs:(eq (mk_proc_term m n p) (attrs i))
            ~rhs:Term.ff ();
        ])
      ids
    @ [
        Axiom.v ~name:"eq_attrs_mk_proc"
          ~lhs:(eq (mk_term m n) (mk_proc_term m1 n1 p))
          ~rhs:Term.ff ();
        Axiom.v ~name:"eq_attrs_proc_mk"
          ~lhs:(eq (mk_proc_term m n p) (mk_term m1 n1))
          ~rhs:Term.ff ();
        Axiom.v ~name:"eq_attrs_proc_proc"
          ~lhs:(eq (mk_proc_term m n p) (mk_proc_term m1 n1 p1))
          ~rhs:
            (Builtins.and_ (Builtins.eq_nat m m1)
               (Builtins.and_ (Builtins.eq_nat n n1) (Builtins.eq_nat p p1)))
          ();
      ]
  in
  let fresh =
    Spec.v ~name:"Attributelist" ~signature
      ~constructors:
        ("MK_ATTRS" :: "MK_PROC" :: List.map (fun i -> Fmt.str "ATTRS%d" i) ids)
      ~axioms:(atom_axioms @ mixed_axioms @ [ mk_axiom ] @ proc_axioms)
      ()
  in
  Spec.union ~name:"Attributelist" base fresh
