open Adt

(* appended identifiers, oldest first *)
type t = Term.t list

let create = []
let append k id = k @ [ id ]
let is_in k id = List.exists (Term.equal id) k
let of_ids ids = ids
let abstraction k = Knowlist_spec.of_ids k

let model =
  let interp name (args : t Model.value list) : t Model.value option =
    match (name, args) with
    | "CREATE", [] -> Some (Model.Rep create)
    | "APPEND", [ Model.Rep k; Model.Foreign id ] ->
      Some (Model.Rep (append k id))
    | "IS_IN?", [ Model.Rep k; Model.Foreign id ] ->
      Some (Model.Foreign (if is_in k id then Term.tt else Term.ff))
    | _ -> None
  in
  { Model.model_name = "list knowlist"; interp; abstraction }
