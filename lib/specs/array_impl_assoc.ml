open Adt

(* newest assignment first *)
type t = (Term.t * Term.t) list

let impl_name = "assoc-list array"
let empty () = []
let assign arr k v = (k, v) :: arr

let read arr k =
  List.find_map
    (fun (k', v) -> if Term.equal k k' then Some v else None)
    arr

let is_undefined arr k = Option.is_none (read arr k)
let bindings arr = List.rev arr
