(** The builtin implementation registry.

    Every direct implementation the library ships, packaged for the
    conformance harness: the clean implementations (expected to pass their
    generated suites) and the mutation corpus of [Faulty_impls] (expected
    to be killed by them). [adtc testgen] resolves [SPEC]/[--impl] names
    here; name matching is case-insensitive. *)

val clean : Impl.t list
(** In corpus order: Queue, Bounded Queue, Stack, the two Arrays, the two
    Symboltables, Knowlist. *)

val mutants : Impl.t list
(** The seeded-bug corpus; every entry has {!Impl.mutant_of} set. *)

val all : Impl.t list

val for_spec : ?mutants:bool -> string -> Impl.t list
(** Implementations registered for the named specification —
    clean ones by default, the mutation corpus with [~mutants:true]. *)

val find : spec:string -> impl:string -> Impl.t option
val default_for : string -> Impl.t option
(** The first clean implementation of the named specification. *)

val spec_names : unit -> string list
(** Specification names with at least one registered implementation, in
    registration order, without duplicates. *)
