open Adt

let hole_name = "#"
let observations = 8
let max_context_depth = 2
let filler_size = 3
let shrink_budget = 20_000

type witness =
  | Denotation of { lhs : Term.t; rhs : Term.t }
  | Observation of { context : Term.t; lhs : Term.t; rhs : Term.t }
  | Crash of { message : string }

type failure = {
  fail_seed : int;
  valuation : Subst.t;
  witness : witness;
  shrunk : bool;
}

type axiom_report = {
  axiom : Axiom.t;
  trials : int;
  discards : int;
  failure : failure option;
}

type report = {
  impl_name : string;
  spec_name : string;
  mutant_of : string option;
  seed : int;
  count : int;
  gen_size : int;
  axiom_reports : axiom_report list;
}

type compiled =
  | Compiled : {
      mctx : 'r Model.ctx;
      universe : Enum.universe;
      rep_sort : Sort.t;
      transformers : (Op.t * int) list;
      observers : (Op.t * int) list;
    }
      -> compiled

type t = { impl : Impl.t; compiled : compiled }

let impl t = t.impl

(* All operations able to carry an observation: [transformers] map the
   representation sort to itself (they extend a context downwards),
   [observers] map it out of the representation sort (they close a
   context on top). The hole goes to the operation's first
   representation-sorted argument. *)
let context_ops spec rep_sort =
  let ops =
    Op.Set.elements (Spec.constructors spec) @ Spec.observers spec
  in
  let with_hole_position acc op =
    let rec position i = function
      | [] -> None
      | s :: _ when Sort.equal s rep_sort -> Some i
      | _ :: rest -> position (i + 1) rest
    in
    match position 0 (Op.args op) with
    | None -> acc
    | Some i -> (op, i) :: acc
  in
  let carriers = List.fold_left with_hole_position [] ops in
  let transformers, observers =
    List.partition (fun (op, _) -> Sort.equal (Op.result op) rep_sort) carriers
  in
  (List.rev transformers, List.rev observers)

let compile (Impl.Packed (module I) as impl) =
  let transformers, observers = context_ops I.spec I.rep_sort in
  let compiled =
    Compiled
      {
        mctx = Model.ctx I.spec I.model;
        universe = Enum.universe I.spec;
        rep_sort = I.rep_sort;
        transformers;
        observers;
      }
  in
  { impl; compiled }

let pick state = function
  | [] -> None
  | xs -> Some (List.nth xs (Random.State.int state (List.length xs)))

(* One observation context: a term of non-representation sort whose only
   variable is the hole. Drawn bottom-up — 0..max_context_depth
   transformer wraps, then an observer on top — with the remaining
   argument positions filled by uniformly drawn ground terms. *)
let gen_context (Compiled c) state =
  let fill_args (op, hole_pos) inner =
    let args =
      List.mapi
        (fun i s ->
          if i = hole_pos then Some inner
          else Enum.uniform_term c.universe s ~size:filler_size state)
        (Op.args op)
    in
    if List.for_all Option.is_some args then
      Some (Term.app op (List.map Option.get args))
    else None
  in
  let rec wrap depth t =
    if depth = 0 then t
    else
      match pick state c.transformers with
      | None -> t
      | Some tr -> (
        match fill_args tr t with None -> t | Some t' -> wrap (depth - 1) t')
  in
  match pick state c.observers with
  | None -> None
  | Some obs ->
    let depth = Random.State.int state (max_context_depth + 1) in
    fill_args obs (wrap depth (Term.var hole_name c.rep_sort))

let plug context side =
  match Subst.of_bindings [ (hole_name, side) ] with
  | Some s -> Subst.apply s context
  | None -> assert false

(* Evaluate one ground term and denote the result as an abstract term
   (through Phi and normalization); [Term.err] for error results. *)
let denote (Compiled c) term = Model.ctx_denote c.mctx (Model.ctx_eval c.mctx term)

(* Test one valuation of one axiom. [None] means the implementation
   agrees with itself on both sides under every comparison performed;
   [Some w] is the disagreement found. Representation-sorted results are
   compared observationally: the instantiated sides are re-plugged into
   each context and re-evaluated from scratch, so imperative
   implementations (the hash Array mutates in place) keep seeing each
   value used linearly. *)
let test_valuation { compiled = Compiled c as compiled; _ } axiom valuation
    state =
  let lhs, rhs = Axiom.instantiate valuation axiom in
  match
    let l = Model.ctx_eval c.mctx lhs and r = Model.ctx_eval c.mctx rhs in
    match (l, r) with
    | Error _, Error _ -> None
    | Ok (Model.Rep _), Ok (Model.Rep _) ->
      let rec observe i =
        if i >= observations then None
        else
          match gen_context compiled state with
          | None ->
            (* no observer in the signature: fall back to Phi *)
            let dl = Model.ctx_denote c.mctx l
            and dr = Model.ctx_denote c.mctx r in
            if Term.equal dl dr then None
            else Some (Denotation { lhs = dl; rhs = dr })
          | Some context ->
            let ol = denote compiled (plug context lhs)
            and our = denote compiled (plug context rhs) in
            if Term.equal ol our then observe (i + 1)
            else Some (Observation { context; lhs = ol; rhs = our })
      in
      observe 0
    | l, r ->
      let dl = Model.ctx_denote c.mctx l and dr = Model.ctx_denote c.mctx r in
      if Term.equal dl dr then None else Some (Denotation { lhs = dl; rhs = dr })
  with
  | verdict -> verdict
  | exception e -> Some (Crash { message = Printexc.to_string e })

(* Deterministic shrinking: retest the axiom against every substitution
   of the bounded universe in increasing size order (each candidate with
   contexts reseeded from the failing trial's seed) and keep the first —
   hence smallest — that still fails. *)
let shrink ({ impl; compiled = Compiled c; _ } as t) axiom ~trial_seed fallback
    =
  let vars = Axiom.vars axiom in
  let rec at_size size budget =
    if size > Impl.gen_size impl || budget <= 0 then None
    else
      let candidates = Enum.substitutions_up_to c.universe vars ~size in
      let rec try_candidates budget = function
        | [] -> at_size (size + 1) budget
        | _ when budget <= 0 -> None
        | valuation :: rest -> (
          match
            test_valuation t axiom valuation
              (Random.State.make [| trial_seed |])
          with
          | Some witness -> Some { fallback with valuation; witness; shrunk = true }
          | None -> try_candidates (budget - 1) rest)
      in
      try_candidates budget candidates
  in
  match at_size 1 shrink_budget with Some f -> f | None -> fallback

let check_axiom ({ impl; compiled = Compiled c; _ } as t) ~count ~seed axiom =
  let vars = Axiom.vars axiom in
  let count = if vars = [] then min count 1 else count in
  let rec trial i trials discards =
    if i >= count then { axiom; trials; discards; failure = None }
    else
      let trial_seed = seed + i in
      let state = Random.State.make [| trial_seed |] in
      match
        Enum.uniform_substitution c.universe vars
          ~size:(Impl.gen_size impl) state
      with
      | None -> trial (i + 1) trials (discards + 1)
      | Some valuation -> (
        match test_valuation t axiom valuation state with
        | None -> trial (i + 1) (trials + 1) discards
        | Some witness ->
          let fallback =
            { fail_seed = trial_seed; valuation; witness; shrunk = false }
          in
          {
            axiom;
            trials = trials + 1;
            discards;
            failure = Some (shrink t axiom ~trial_seed fallback);
          })
  in
  trial 0 0 0

let run ?(count = 100) ~seed t =
  let spec = Impl.spec t.impl in
  {
    impl_name = Impl.name t.impl;
    spec_name = Impl.spec_name t.impl;
    mutant_of = Impl.mutant_of t.impl;
    seed;
    count;
    gen_size = Impl.gen_size t.impl;
    axiom_reports =
      List.map (check_axiom t ~count ~seed) (Spec.axioms spec);
  }

let conformance ?count ~seed impl = run ?count ~seed (compile impl)

let failures report =
  List.filter_map
    (fun ar -> Option.map (fun f -> (ar.axiom, f)) ar.failure)
    report.axiom_reports

let passed report = failures report = []

let killed report = not (passed report)

let pp_witness ppf = function
  | Denotation { lhs; rhs } ->
    Fmt.pf ppf "@[<v>left denotes  %a@,right denotes %a@]" Term.pp lhs Term.pp
      rhs
  | Observation { context; lhs; rhs } ->
    Fmt.pf ppf "@[<v>observation %a@,left observes  %a@,right observes %a@]"
      Term.pp context Term.pp lhs Term.pp rhs
  | Crash { message } -> Fmt.pf ppf "implementation raised: %s" message

(* one line, whatever the margin: counterexamples are short by
   construction (shrinking) and line-oriented consumers grep them *)
let pp_valuation ppf v =
  Fmt.pf ppf "{%s}"
    (String.concat "; "
       (List.map
          (fun (x, t) -> x ^ " -> " ^ Term.to_string t)
          (Subst.bindings v)))

let pp_failure ppf f =
  Fmt.pf ppf "@[<v 2>counterexample (seed %d)%s:@,at %a@,%a@]" f.fail_seed
    (if f.shrunk then ", minimized" else "")
    pp_valuation f.valuation pp_witness f.witness

let pp_axiom_report ppf ar =
  match ar.failure with
  | None ->
    Fmt.pf ppf "axiom %-4s pass  (%d trials)" (Axiom.name ar.axiom) ar.trials
  | Some f ->
    Fmt.pf ppf "@[<v 2>axiom %-4s FAIL@,%a@]" (Axiom.name ar.axiom) pp_failure f

let pp_report ppf r =
  let verdict =
    if passed r then "PASS"
    else if r.mutant_of <> None then "KILLED"
    else "FAIL"
  in
  Fmt.pf ppf "@[<v>%s/%s: %s  (seed %d, count %d, size %d)@,%a@]" r.spec_name
    r.impl_name verdict r.seed r.count r.gen_size
    (Fmt.list pp_axiom_report) r.axiom_reports
