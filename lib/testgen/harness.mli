(** The harness compiler: axioms to executable conformance suites.

    Following Gaudel & Le Gall's scheme, each axiom of an implementation's
    specification becomes a property over random well-sorted ground terms:
    instantiate both sides with a {e uniformly} drawn substitution
    ({!Enum.uniform_substitution}), evaluate each through the
    implementation, and compare the results {e observationally} — two
    representation values count as equal exactly when every generated
    observation context [C[#]] (built from the specification's own
    operations) evaluates to the same visible value on both. Constructor
    or [Phi]-image equality would be both too strong (the hash Array's
    abstraction replays its full assignment log, distinguishing
    observationally equal tables) and beside the point (the abstraction
    function is part of the implementation under test). See DESIGN.md.

    Verdicts hold up to the implementation's {!Impl.gen_size} — the
    regularity hypothesis. Every trial is seeded independently
    ([seed + trial_index]), so a reported failure seed replayed with
    [--seed] regenerates the identical counterexample as trial 0. *)

open Adt

type witness =
  | Denotation of { lhs : Term.t; rhs : Term.t }
      (** The sides differ already as denoted abstract terms (one errored,
          or they evaluate to different visible values). *)
  | Observation of { context : Term.t; lhs : Term.t; rhs : Term.t }
      (** The distinguishing observation: plugging each side into
          [context] (at the hole variable [#]) observes different
          values. *)
  | Crash of { message : string }
      (** The implementation raised something other than its declared
          error. *)

type failure = {
  fail_seed : int;
      (** Replay seed: [run ~seed:fail_seed] hits this failure at
          trial 0. *)
  valuation : Subst.t;
  witness : witness;
  shrunk : bool;
      (** The valuation is minimal: deterministic re-search of the
          bounded substitution universe in increasing size order. *)
}

type axiom_report = {
  axiom : Axiom.t;
  trials : int;
  discards : int;  (** Trials where a variable's sort had no terms. *)
  failure : failure option;
}

type report = {
  impl_name : string;
  spec_name : string;
  mutant_of : string option;
  seed : int;
  count : int;
  gen_size : int;
  axiom_reports : axiom_report list;
}

type t
(** A compiled suite: the precompiled rewrite system, the memoized term
    universe, and the observation-context operation tables. Compile once,
    run many times (bench E14 measures the two phases separately). *)

val compile : Impl.t -> t
val impl : t -> Impl.t

val run : ?count:int -> seed:int -> t -> report
(** [count] (default 100) trials per axiom; axioms without variables run
    once. Each axiom stops at its first failure, which is then shrunk. *)

val conformance : ?count:int -> seed:int -> Impl.t -> report
(** [compile] then [run]. *)

val passed : report -> bool

val killed : report -> bool
(** [not (passed r)] — the reading intended for mutation-corpus runs. *)

val failures : report -> (Axiom.t * failure) list

val pp_valuation : Subst.t Fmt.t
(** The failing valuation on a single line ([{x -> t; ...}]), whatever
    the formatter margin — counterexample lines are made for grepping. *)

val pp_witness : witness Fmt.t
val pp_failure : failure Fmt.t
val pp_axiom_report : axiom_report Fmt.t
val pp_report : report Fmt.t
