(** Implementations under conformance test.

    The paper's §5 program factors correctness: once an implementation is
    shown to satisfy the axioms, every client is correct relative to the
    specification. An {!t} packages one such candidate — a {!Model.t} (the
    interpretation plus the abstraction function [Phi]) together with the
    specification it claims to satisfy and the generation parameters the
    harness needs — behind a first-class module, so implementations with
    different representation types live in one registry. *)

open Adt

module type S = sig
  type rep
  (** The implementation's representation type. *)

  val impl_name : string
  (** Short name used on the CLI ([--impl NAME]); unique per spec. *)

  val mutant_of : string option
  (** [Some clean_name] marks a seeded-bug variant of the named clean
      implementation — part of the mutation corpus, expected to {e fail}. *)

  val spec : Spec.t
  val rep_sort : Sort.t

  val gen_size : int
  (** Size bound for generated ground terms — the regularity hypothesis
      under which the suite's verdict holds. Per-implementation because it
      is a semantic boundary: the ring-buffer Bounded Queue, for example,
      raises on its fourth [ADD_Q] while the specification (which has no
      add-on-full axiom) does not, so its generation size must keep axiom
      instances within the bound. *)

  val model : rep Model.t
end

type t = Packed : (module S with type rep = 'r) -> t

val v :
  impl_name:string ->
  ?mutant_of:string ->
  spec:Spec.t ->
  rep_sort:Sort.t ->
  ?gen_size:int ->
  'r Model.t ->
  t
(** Packs a model as a registrable implementation. [gen_size] defaults
    to 7. Raises [Invalid_argument] when [rep_sort] has no constructors in
    [spec] (nothing could be generated). *)

val name : t -> string
val spec : t -> Spec.t
val spec_name : t -> string
val rep_sort : t -> Sort.t
val gen_size : t -> int
val mutant_of : t -> string option
val is_mutant : t -> bool
val pp : t Fmt.t
