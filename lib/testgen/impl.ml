open Adt

module type S = sig
  type rep

  val impl_name : string
  val mutant_of : string option
  val spec : Spec.t
  val rep_sort : Sort.t
  val gen_size : int
  val model : rep Model.t
end

type t = Packed : (module S with type rep = 'r) -> t

let v (type r) ~impl_name ?mutant_of ~spec ~rep_sort ?(gen_size = 7)
    (model : r Model.t) : t =
  if not (Spec.has_constructors rep_sort spec) then
    invalid_arg
      (Fmt.str "Testgen.Impl.v: sort %a has no constructors in %s" Sort.pp
         rep_sort (Spec.name spec));
  Packed
    (module struct
      type rep = r

      let impl_name = impl_name
      let mutant_of = mutant_of
      let spec = spec
      let rep_sort = rep_sort
      let gen_size = gen_size
      let model = model
    end)

let name (Packed (module I)) = I.impl_name
let spec (Packed (module I)) = I.spec
let spec_name (Packed (module I)) = Spec.name I.spec
let rep_sort (Packed (module I)) = I.rep_sort
let gen_size (Packed (module I)) = I.gen_size
let mutant_of (Packed (module I)) = I.mutant_of
let is_mutant t = Option.is_some (mutant_of t)

let pp ppf t =
  match mutant_of t with
  | None -> Fmt.pf ppf "%s/%s" (spec_name t) (name t)
  | Some clean -> Fmt.pf ppf "%s/%s (mutant of %s)" (spec_name t) (name t) clean
