open Adt_specs

(* Generation sizes are semantic boundaries, not tuning knobs: the
   Bounded Queue's 5 keeps every axiom instance within the ring's
   capacity (the specification has no add-on-full axiom, so a fourth
   ADD_Q is a legal spec value the clean implementation refuses); the
   Symboltable's 6 keeps the enumerated universe small enough that
   uniform sampling stays cheap. *)

let clean =
  [
    Impl.v ~impl_name:"two-list" ~spec:Queue_spec.spec ~rep_sort:Queue_spec.sort
      ~gen_size:7 Queue_impl.model;
    Impl.v ~impl_name:"ring-buffer" ~spec:Bounded_queue_spec.spec
      ~rep_sort:Bounded_queue_spec.sort ~gen_size:5 Bounded_queue_impl.model;
    Impl.v ~impl_name:"linked-list"
      ~spec:Stack_spec.default.Stack_spec.spec
      ~rep_sort:Stack_spec.default.Stack_spec.sort ~gen_size:7
      (Stack_impl.model Stack_spec.default);
    Impl.v ~impl_name:"hash" ~spec:Array_spec.default.Array_spec.spec
      ~rep_sort:Array_spec.default.Array_spec.sort ~gen_size:7
      (Array_intf.model
         (module Array_impl_hash : Array_intf.ARRAY
           with type t = Array_impl_hash.t)
         Array_spec.default);
    Impl.v ~impl_name:"assoc" ~spec:Array_spec.default.Array_spec.spec
      ~rep_sort:Array_spec.default.Array_spec.sort ~gen_size:7
      (Array_intf.model
         (module Array_impl_assoc : Array_intf.ARRAY
           with type t = Array_impl_assoc.t)
         Array_spec.default);
    Impl.v ~impl_name:"stack-of-hash" ~spec:Symboltable_spec.spec
      ~rep_sort:Symboltable_spec.sort ~gen_size:6 Symboltable_impl.Hash.model;
    Impl.v ~impl_name:"stack-of-assoc" ~spec:Symboltable_spec.spec
      ~rep_sort:Symboltable_spec.sort ~gen_size:6 Symboltable_impl.Assoc.model;
    Impl.v ~impl_name:"list" ~spec:Knowlist_spec.spec
      ~rep_sort:Knowlist_spec.sort ~gen_size:7 Knowlist_impl.model;
  ]

let mutants =
  [
    Impl.v ~impl_name:"mutant-remove-back" ~mutant_of:"two-list"
      ~spec:Queue_spec.spec ~rep_sort:Queue_spec.sort ~gen_size:7
      Faulty_impls.queue_remove_back;
    Impl.v ~impl_name:"mutant-lifo-front" ~mutant_of:"two-list"
      ~spec:Queue_spec.spec ~rep_sort:Queue_spec.sort ~gen_size:7
      Faulty_impls.queue_lifo_front;
    Impl.v ~impl_name:"mutant-premature-full" ~mutant_of:"ring-buffer"
      ~spec:Bounded_queue_spec.spec ~rep_sort:Bounded_queue_spec.sort
      ~gen_size:5 Faulty_impls.bq_premature_full;
    Impl.v ~impl_name:"mutant-remove-back" ~mutant_of:"ring-buffer"
      ~spec:Bounded_queue_spec.spec ~rep_sort:Bounded_queue_spec.sort
      ~gen_size:5 Faulty_impls.bq_remove_back;
    Impl.v ~impl_name:"mutant-stale-read" ~mutant_of:"hash"
      ~spec:Array_spec.default.Array_spec.spec
      ~rep_sort:Array_spec.default.Array_spec.sort ~gen_size:7
      Faulty_impls.array_stale_read;
    Impl.v ~impl_name:"mutant-stale-scope" ~mutant_of:"stack-of-hash"
      ~spec:Symboltable_spec.spec ~rep_sort:Symboltable_spec.sort ~gen_size:6
      Faulty_impls.symboltable_stale_read;
    Impl.v ~impl_name:"mutant-replace-pushes" ~mutant_of:"linked-list"
      ~spec:Stack_spec.default.Stack_spec.spec
      ~rep_sort:Stack_spec.default.Stack_spec.sort ~gen_size:7
      Faulty_impls.stack_replace_pushes;
  ]

let all = clean @ mutants

let norm s = String.lowercase_ascii s
let same_name a b = String.equal (norm a) (norm b)

let for_spec ?(mutants = false) spec_name =
  List.filter
    (fun e ->
      same_name (Impl.spec_name e) spec_name && Impl.is_mutant e = mutants)
    all

let find ~spec ~impl =
  List.find_opt
    (fun e ->
      same_name (Impl.spec_name e) spec && same_name (Impl.name e) impl)
    all

let default_for spec_name =
  match for_spec spec_name with e :: _ -> Some e | [] -> None

let spec_names () =
  List.fold_left
    (fun acc e ->
      let n = Impl.spec_name e in
      if List.exists (same_name n) acc then acc else acc @ [ n ])
    [] all
