(** Versioned specification documents with O(edit) rechecking.

    The PIDE-style session layer the roadmap asks for: the server holds
    one {e document} per opened specification; each edit replaces the
    document's source, and instead of rechecking the world, the manager
    diffs the freshly elaborated specification against the previous
    version ({!Adt.Spec_diff}), computes the invalidation cone through
    the defining-axiom dependency structure, and re-runs only the
    obligations inside the cone — everything outside it carries its
    verdict over, because its reachable rule set is byte-identical.

    An {e obligation} is per-axiom: normalize both sides of the
    equation under the document's compiled rewrite system (bounded by
    the manager's fuel) and record whether they join — the axiom's
    normal-form consistency, whose outcome depends exactly on the rules
    reachable from the operations the axiom mentions, which is what
    makes cone-scoped reuse sound rather than heuristic. The cheap
    whole-spec static lint ({!Analysis.Lint.static}) is re-run on every
    version — some static rules are global (dead axioms, reachability),
    so their findings are never carried over — and its findings are
    attributed to obligations by locus.

    Thread-safe: one lock around the document table; obligations run
    outside any per-document interpreter state (the compiled system is
    immutable and shared via {!Adt.Rewrite.of_spec_keyed}). *)

type status = [ `Ok | `Diverged | `Unjoinable ]

val status_name : status -> string

type oblig = {
  axiom_name : string;  (** May be [""] for unnamed axioms. *)
  axiom_digest : string;  (** {!Adt.Spec_digest.axiom}. *)
  status : status;
  steps : int;  (** Rewrite steps both sides cost when checked. *)
  findings : int;  (** Static lint findings at this axiom's locus. *)
  reused : bool;  (** Carried over from the previous version. *)
}

type summary = {
  version : int;
  axioms : int;
  sig_changed : bool;
  changed : int;  (** Added plus removed equations in the last edit. *)
  cone : int;  (** Axioms inside the last edit's invalidation cone. *)
  checked : int;  (** Obligations actually re-run for this version. *)
  reused : int;  (** Obligations served from the previous version. *)
}

type doc = {
  name : string;  (** The session key, not necessarily the spec name. *)
  version : int;
  source : string;
  spec : Adt.Spec.t;
  digest : string;  (** {!Adt.Spec_digest.spec} of [spec]. *)
  obligations : oblig list;  (** In axiom order. *)
  summary : summary;
}

type t

val create : ?env:(string -> Adt.Spec.t option) -> ?fuel:int -> unit -> t
(** [env] resolves [uses] clauses in edited sources (a session library,
    {!Adt.Library.to_env}); [fuel] bounds each obligation's rewriting
    (default {!Adt.Rewrite.default_fuel}). *)

val open_doc : t -> name:string -> source:string -> (doc, string) result
(** Parses [source] (the last specification of the input, [uses]
    merged) and checks {e every} obligation — version 1, the full
    recheck an edit is measured against. Reopening a name resets it. *)

val edit : t -> name:string -> source:string -> (doc, string) result
(** Replaces the document's source: diff, cone, recheck inside the
    cone, reuse outside it, version+1. Errors when the document was
    never opened or the source does not parse. An edit that elaborates
    to an unchanged specification rechecks nothing. *)

val status : t -> name:string -> doc option
val names : t -> string list
(** Open documents, sorted. *)
