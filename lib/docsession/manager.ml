open Adt

type status = [ `Ok | `Diverged | `Unjoinable ]

let status_name = function
  | `Ok -> "ok"
  | `Diverged -> "diverged"
  | `Unjoinable -> "unjoinable"

type oblig = {
  axiom_name : string;
  axiom_digest : string;
  status : status;
  steps : int;
  findings : int;
  reused : bool;
}

type summary = {
  version : int;
  axioms : int;
  sig_changed : bool;
  changed : int;
  cone : int;
  checked : int;
  reused : int;
}

type doc = {
  name : string;
  version : int;
  source : string;
  spec : Spec.t;
  digest : string;
  obligations : oblig list;
  summary : summary;
}

type t = {
  env : (string -> Spec.t option) option;
  fuel : int;
  lock : Mutex.t;
  docs : (string, doc) Hashtbl.t;
}

let create ?env ?(fuel = Rewrite.default_fuel) () =
  { env; fuel; lock = Mutex.create (); docs = Hashtbl.create 8 }

(* static findings bucketed by axiom label; findings without an axiom
   locus (per-op, per-spec) do not belong to any one obligation *)
let static_findings spec =
  let table = Hashtbl.create 16 in
  List.iter
    (fun d ->
      match d.Analysis.Diagnostic.locus.Analysis.Diagnostic.axiom with
      | None -> ()
      | Some label ->
        Hashtbl.replace table label
          (1 + Option.value ~default:0 (Hashtbl.find_opt table label)))
    (Analysis.Lint.static spec);
  fun ax ->
    Option.value ~default:0 (Hashtbl.find_opt table (Axiom.name ax))

let nf_count ~fuel sys term =
  match Rewrite.normalize_count ~fuel sys term with
  | nf, steps -> Some (nf, steps)
  | exception Rewrite.Out_of_fuel _ -> None

(* the per-axiom obligation: both sides of the equation reach equal
   normal forms within fuel — its outcome depends only on the rules
   reachable from the ops the axiom mentions, so a cached verdict
   survives any edit outside that reachable set *)
let check_obligation ~fuel sys findings_of ax =
  let status, steps =
    match
      (nf_count ~fuel sys (Axiom.lhs ax), nf_count ~fuel sys (Axiom.rhs ax))
    with
    | Some (l, nl), Some (r, nr) ->
      ((if Term.equal l r then `Ok else `Unjoinable), nl + nr)
    | _ -> (`Diverged, 2 * fuel)
  in
  {
    axiom_name = Axiom.name ax;
    axiom_digest = Spec_digest.axiom ax;
    status;
    steps;
    findings = findings_of ax;
    reused = false;
  }

let parse_last t source =
  match Parser.parse_spec ?env:t.env source with
  | Ok spec -> Ok spec
  | Error e -> Error (Fmt.str "%a" Parser.pp_error e)

let open_doc t ~name ~source =
  match parse_last t source with
  | Error e -> Error e
  | Ok spec ->
    let digest = Spec_digest.spec spec in
    let sys = Rewrite.of_spec_keyed ~key:digest spec in
    let findings_of = static_findings spec in
    let obligations =
      List.map (check_obligation ~fuel:t.fuel sys findings_of) (Spec.axioms spec)
    in
    let n = List.length obligations in
    let doc =
      {
        name;
        version = 1;
        source;
        spec;
        digest;
        obligations;
        summary =
          {
            version = 1;
            axioms = n;
            sig_changed = false;
            changed = n;
            cone = n;
            checked = n;
            reused = 0;
          };
      }
    in
    Mutex.protect t.lock (fun () -> Hashtbl.replace t.docs name doc);
    Ok doc

let edit t ~name ~source =
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.docs name) with
  | None -> Error (Fmt.str "no open document named %s (session-open it first)" name)
  | Some prev -> (
    match parse_last t source with
    | Error e -> Error e
    | Ok spec ->
      let digest = Spec_digest.spec spec in
      let d = Spec_diff.diff ~old_spec:prev.spec ~spec in
      let cone = Spec_diff.cone ~spec d in
      let in_cone =
        List.fold_left
          (fun s ax -> Spec_digest.axiom ax :: s)
          [] cone
      in
      let previous = Hashtbl.create 16 in
      List.iter
        (fun o ->
          if not (Hashtbl.mem previous o.axiom_digest) then
            Hashtbl.add previous o.axiom_digest o)
        prev.obligations;
      let sys = Rewrite.of_spec_keyed ~key:digest spec in
      let findings_of = static_findings spec in
      let obligations =
        List.map
          (fun ax ->
            let adigest = Spec_digest.axiom ax in
            let reusable =
              (not d.Spec_diff.signature_changed)
              && (not (List.mem adigest in_cone))
              && Hashtbl.mem previous adigest
            in
            if reusable then
              let o = Hashtbl.find previous adigest in
              {
                o with
                axiom_name = Axiom.name ax;
                (* global static rules may move findings without moving
                   the cone: findings are always fresh *)
                findings = findings_of ax;
                reused = true;
              }
            else check_obligation ~fuel:t.fuel sys findings_of ax)
          (Spec.axioms spec)
      in
      let total = List.length obligations in
      let reused_n =
        List.length (List.filter (fun (o : oblig) -> o.reused) obligations)
      in
      let version = prev.version + 1 in
      let doc =
        {
          name;
          version;
          source;
          spec;
          digest;
          obligations;
          summary =
            {
              version;
              axioms = total;
              sig_changed = d.Spec_diff.signature_changed;
              changed =
                List.length d.Spec_diff.added + List.length d.Spec_diff.removed;
              cone = List.length cone;
              checked = total - reused_n;
              reused = reused_n;
            };
        }
      in
      Mutex.protect t.lock (fun () -> Hashtbl.replace t.docs name doc);
      Ok doc)

let status t ~name =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.docs name)

let names t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.docs []
      |> List.sort String.compare)
