(** The verification passes: sufficient completeness (ADT020), termination
    (ADT021), and confluence (ADT022).

    Where ADT001 adapts the {e heuristic} prompting system of
    {!Adt.Heuristics} (section 3's engineering reading of the paper), these
    three passes {e decide} the properties the paper's method rests on:

    - {b ADT020} — each observer's defining left-hand sides, read as a
      pattern matrix over the observer's argument sorts, must be exhaustive
      ({!Adt.Pattern_matrix}); the uncovered witness is a concrete ground
      constructor context such as [FRONT(NEW)]. Non-left-linear axioms are
      excluded from the matrix (it would over-approximate their coverage);
      a candidate hole is then confirmed by ground enumeration over a small
      universe, or demoted to an undecided warning when no ground
      counterexample surfaces.
    - {b ADT021} — a recursive-path-ordering prover with greedy precedence
      search ({!Adt.Ordering.search}) orients every executable axiom or
      reports the non-orientable set.
    - {b ADT022} — full critical-pair computation (proper subterm overlaps
      included, via {!Adt.Consistency}) with fueled joinability. All pairs
      joinable + ADT021's termination certificate concludes confluence by
      Newman's lemma; a left-linear overlap-free system is confluent by
      orthogonality even without termination; otherwise the verdict demotes
      to "locally confluent only".

    ADT002 (critical-pair divergence, per pair) is routed through the same
    {!analysis} value as ADT022, so the two rules can never disagree about
    which pairs exist or whether they join. *)

(** {1 Sufficient completeness (ADT020)} *)

type hole = {
  hole_op : Adt.Op.t;
  witness : Adt.Term.t;
      (** A constructor context no executable axiom matches at the root —
          ground except at parameter-sort positions. *)
  decided : bool;
      (** [false] when excluded non-left-linear axioms might cover the
          witness and ground enumeration found no counterexample. *)
}

type completeness_report = { c_spec : string; holes : hole list }

val completeness : Adt.Spec.t -> completeness_report
val sufficiently_complete : completeness_report -> bool

(** {1 Termination + confluence (ADT021, ADT022, shared with ADT002)} *)

type status =
  | Confluent_newman  (** Locally confluent and terminating. *)
  | Confluent_orthogonal
      (** Left-linear with no critical pairs; confluent regardless of
          termination. *)
  | Locally_confluent_only
      (** All pairs joinable, but no termination certificate and not
          orthogonal: Newman's lemma does not apply. *)
  | Not_locally_confluent  (** Some critical pair diverges. *)
  | Undecided  (** Some joinability search ran out of fuel. *)

type analysis = {
  a_spec : Adt.Spec.t;
  report : Adt.Consistency.report;
      (** Every critical pair with its joinability verdict — the single
          computation both ADT002 and ADT022 consume. *)
  search : Adt.Ordering.search_result;  (** The ADT021 verdict. *)
  status : status;
}

val analyze : ?fuel:int -> Adt.Spec.t -> analysis

(** {1 Findings} *)

val adt020 : Adt.Spec.t -> Diagnostic.t list
(** One finding per {!hole}: error with the witness when decided, warning
    when non-left-linear axioms leave it open. *)

val adt021 : analysis -> Diagnostic.t list
(** One error per non-orientable executable axiom. *)

val adt022 : analysis -> Diagnostic.t list
(** The system-level confluence verdict: an error naming the first
    divergent pair when local confluence fails, an info when the verdict
    demotes ("locally confluent only" or fuel ran out), nothing when
    confluence is established. *)

val adt002 : analysis -> Diagnostic.t list
(** The historical per-pair rule, now fed from the same {!analysis}:
    distinct value normal forms are errors (inconsistency), other
    divergence warnings, joinability timeouts infos. *)

(** {1 The check-command summary} *)

type summary = {
  s_spec : string;
  s_holes : hole list;
  s_unoriented : Adt.Axiom.t list;
  s_status : status;
  s_pairs : int;
}

val summarize : ?fuel:int -> Adt.Spec.t -> summary
(** Runs all three passes; [adtc check] prints this one-line verdict per
    specification. *)

val verified : summary -> bool
(** Sufficiently complete, terminating, and confluent. *)

val pp_summary : summary Fmt.t
