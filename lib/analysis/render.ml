(* JSON is assembled by hand: the findings are flat records and pulling in a
   JSON library for them would be the only use in the whole repository. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jopt = function None -> "null" | Some s -> jstr s

let flatten groups =
  List.concat_map
    (fun (file, diags) -> List.map (fun d -> (file, d)) diags)
    groups

let severity_counts diags =
  let count s =
    List.length (List.filter (fun d -> d.Diagnostic.severity = s) diags)
  in
  (count Diagnostic.Error, count Diagnostic.Warning, count Diagnostic.Info)

let text groups =
  let pairs = flatten groups in
  let lines =
    List.map
      (fun (file, d) -> Printf.sprintf "%s: %s" file (Diagnostic.to_line d))
      pairs
  in
  let errors, warnings, infos = severity_counts (List.map snd pairs) in
  let summary =
    Printf.sprintf "%d finding%s (%d error%s, %d warning%s, %d info)"
      (List.length pairs)
      (if List.length pairs = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
      infos
  in
  String.concat "\n" (lines @ [ summary ])

let json_of_finding file (d : Diagnostic.t) =
  Printf.sprintf
    "{\"file\":%s,\"code\":%s,\"slug\":%s,\"severity\":%s,\"spec\":%s,\"op\":%s,\"axiom\":%s,\"message\":%s,\"suggestion\":%s}"
    (jstr file) (jstr d.code)
    (jstr (Diagnostic.slug_of_code d.code))
    (jstr (Diagnostic.severity_name d.severity))
    (jstr d.locus.Diagnostic.spec)
    (jopt d.locus.Diagnostic.op)
    (jopt d.locus.Diagnostic.axiom)
    (jstr d.message) (jopt d.suggestion)

let json_lines groups =
  String.concat "\n"
    (List.map (fun (file, d) -> json_of_finding file d) (flatten groups))

let sarif_level = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let sarif_rule (r : Diagnostic.rule_info) =
  Printf.sprintf
    "{\"id\":%s,\"name\":%s,\"shortDescription\":{\"text\":%s},\"defaultConfiguration\":{\"level\":%s}}"
    (jstr r.rule_code) (jstr r.slug) (jstr r.summary)
    (jstr (sarif_level r.default_severity))

let sarif_result file (d : Diagnostic.t) =
  let logical =
    match d.locus.Diagnostic.op with
    | None -> ""
    | Some op ->
      Printf.sprintf ",\"logicalLocations\":[{\"name\":%s,\"kind\":\"function\"}]"
        (jstr op)
  in
  let message =
    match d.suggestion with
    | None -> d.message
    | Some s -> d.message ^ " (suggest: " ^ s ^ ")"
  in
  Printf.sprintf
    "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s}}%s}]}"
    (jstr d.code)
    (jstr (sarif_level d.severity))
    (jstr message) (jstr file) logical

let sarif groups =
  let rules = String.concat "," (List.map sarif_rule Diagnostic.rules) in
  let results =
    String.concat ","
      (List.map (fun (file, d) -> sarif_result file d) (flatten groups))
  in
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"adtc lint\",\"informationUri\":\"https://dl.acm.org/doi/10.1145/359605.359618\",\"rules\":[%s]}},\"results\":[%s]}]}"
    rules results
