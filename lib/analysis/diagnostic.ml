type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let rank = function Error -> 2 | Warning -> 1 | Info -> 0
let severity_at_least s ~threshold = rank s >= rank threshold

type locus = { spec : string; op : string option; axiom : string option }

type t = {
  code : string;
  severity : severity;
  locus : locus;
  message : string;
  suggestion : string option;
}

type rule_info = {
  rule_code : string;
  slug : string;
  default_severity : severity;
  summary : string;
}

let rules =
  [
    {
      rule_code = "ADT001";
      slug = "missing-case";
      default_severity = Error;
      summary =
        "An observer applied to a constructor case no axiom covers: the \
         specification is not sufficiently complete (boundary conditions \
         are particularly likely to be overlooked).";
    };
    {
      rule_code = "ADT002";
      slug = "critical-pair-divergence";
      default_severity = Error;
      summary =
        "Two axioms rewrite a common instance to different normal forms; \
         distinct value normal forms prove the axiomatisation inconsistent.";
    };
    {
      rule_code = "ADT010";
      slug = "non-left-linear";
      default_severity = Warning;
      summary =
        "A variable occurs twice in an axiom's left-hand side; non-left-\
         linear rules weaken confluence analysis and match by syntactic \
         equality only.";
    };
    {
      rule_code = "ADT011";
      slug = "free-rhs-variable";
      default_severity = Error;
      summary =
        "The right-hand side uses a variable the left-hand side does not \
         bind: the axiom is not executable as a rewrite rule and is \
         ignored by the symbolic interpreter.";
    };
    {
      rule_code = "ADT012";
      slug = "dead-axiom";
      default_severity = Warning;
      summary =
        "An earlier axiom of the same operation subsumes this one's \
         left-hand side, so this axiom can never fire.";
    };
    {
      rule_code = "ADT013";
      slug = "unreachable-sort";
      default_severity = Error;
      summary =
        "A sort with declared constructors admits no ground constructor \
         term: the type of interest is uninhabited.";
    };
    {
      rule_code = "ADT014";
      slug = "non-strict-error";
      default_severity = Warning;
      summary =
        "An axiom pattern-matches on the error value; strict error \
         propagation is builtin and rewrites the argument first, so the \
         axiom can never fire.";
    };
    {
      rule_code = "ADT020";
      slug = "sufficient-completeness";
      default_severity = Error;
      summary =
        "A pattern-matrix usefulness check found a ground constructor \
         context no executable axiom matches at the root: the \
         specification is decided not sufficiently complete, and the \
         uncovered context is reported as the witness.";
    };
    {
      rule_code = "ADT021";
      slug = "termination";
      default_severity = Error;
      summary =
        "No recursive path ordering found by greedy precedence search \
         orients every executable axiom: termination of the rewrite \
         system is unproven, and the non-orientable axioms are reported.";
    };
    {
      rule_code = "ADT022";
      slug = "confluence";
      default_severity = Error;
      summary =
        "Critical-pair analysis over proper subterm overlaps with fueled \
         joinability could not establish confluence: either a pair \
         diverges (not locally confluent), or local confluence holds but \
         termination is unproven so Newman's lemma does not apply.";
    };
  ]

let codes = List.map (fun r -> r.rule_code) rules
let info code = List.find (fun r -> String.equal r.rule_code code) rules
let slug_of_code code = (info code).slug

let v ~code ~severity ~spec ?op ?axiom ?suggestion message =
  if not (List.mem code codes) then
    invalid_arg (Fmt.str "Diagnostic.v: unpublished rule code %s" code);
  { code; severity; locus = { spec; op; axiom }; message; suggestion }

let pp ppf d =
  Fmt.pf ppf "%s %s %s %s" d.code (slug_of_code d.code)
    (severity_name d.severity) d.locus.spec;
  Option.iter (Fmt.pf ppf ", op %s") d.locus.op;
  Option.iter (Fmt.pf ppf ", axiom [%s]") d.locus.axiom;
  Fmt.pf ppf ": %s" d.message;
  Option.iter (Fmt.pf ppf " (suggest: %s)") d.suggestion

let to_line d = Fmt.str "%a" pp d
