(** ADT010 [non-left-linear]: axioms whose left-hand side repeats a
    variable. All of the paper's specifications are left-linear; a repeated
    variable matches by syntactic equality only and weakens the critical-
    pair analysis ({!Adt.Consistency}), so it is worth flagging. *)

val check : Adt.Spec.t -> Diagnostic.t list
