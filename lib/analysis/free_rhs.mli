(** ADT011 [free-rhs-variable]: axioms whose right-hand side uses a
    variable the left-hand side does not bind. Such an equation cannot be
    read as a rewrite rule (Guttag's restriction that makes specifications
    executable, section 5); the loader accepts it leniently and
    {!Adt.Rewrite.of_spec} skips it, so without this diagnostic the axiom
    would be silently ignored. *)

val check : Adt.Spec.t -> Diagnostic.t list
