open Adt

(* Inhabitation fixpoint. A sort is inhabited when

   - it declares no constructors in this specification (it is an abstract
     parameter, e.g. Item in the Queue spec), or
   - some constructor of the sort has all argument sorts inhabited.

   Bool is always inhabited via the builtin constants. Iterate to a fixed
   point, then flag every sort of interest left uninhabited. *)

let check spec =
  let interest = Spec.sorts_of_interest spec in
  let inhabited = Hashtbl.create 8 in
  let is_inhabited s =
    Sort.is_bool s
    || (not (Spec.has_constructors s spec))
    || Hashtbl.mem inhabited (Sort.name s)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        if not (is_inhabited s) then
          let ok =
            List.exists
              (fun c -> List.for_all is_inhabited (Op.args c))
              (Spec.constructors_of_sort s spec)
          in
          if ok then begin
            Hashtbl.add inhabited (Sort.name s) ();
            changed := true
          end)
      interest
  done;
  List.filter_map
    (fun s ->
      if is_inhabited s then None
      else
        let ctors =
          String.concat ", "
            (List.map Op.name (Spec.constructors_of_sort s spec))
        in
        Some
          (Diagnostic.v ~code:"ADT013" ~severity:Diagnostic.Error
             ~spec:(Spec.name spec)
             ~suggestion:
               (Fmt.str
                  "add a base constructor of sort %s that takes no argument \
                   of sort %s"
                  (Sort.name s) (Sort.name s))
             (Fmt.str
                "sort %s has no ground constructor term: every constructor \
                 (%s) needs a value of an uninhabited sort; the carrier is \
                 empty"
                (Sort.name s) ctors)))
    interest
