(** ADT013 [unreachable-sort]: a sort that declares constructors but admits
    no ground constructor term, i.e. the type of interest has an empty
    carrier. Sorts with no declared constructors are treated as abstract
    parameters (assumed inhabited), matching the generator-induction and
    enumeration conventions elsewhere in the library. *)

val check : Adt.Spec.t -> Diagnostic.t list
