(** ADT012 [dead-axiom]: an axiom whose left-hand side is an instance of an
    earlier axiom's left-hand side for the same operation. The innermost
    strategy tries axioms in declaration order, so the later axiom can never
    fire — usually a sign of an accidental overlap or a refactoring
    leftover. *)

val check : Adt.Spec.t -> Diagnostic.t list
