open Adt

let axiom_label ax = if Axiom.name ax = "" then None else Some (Axiom.name ax)

let has_proper_err lhs =
  match Term.view lhs with
  | Term.App (_, args) ->
    List.exists
      (fun arg -> Term.fold (fun found t -> found || Term.is_error t) false arg)
      args
  | _ -> false

let check spec =
  List.concat_map
    (fun ax ->
      if has_proper_err (Axiom.lhs ax) then
        [
          Diagnostic.v ~code:"ADT014" ~severity:Diagnostic.Warning
            ~spec:(Spec.name spec)
            ~op:(Op.name (Axiom.head ax))
            ?axiom:(axiom_label ax)
            ~suggestion:
              "drop the axiom: strict propagation already maps error \
               arguments to error"
            (Fmt.str
               "left-hand side %a matches on error; strict error propagation \
                rewrites the application to error before axioms apply, so \
                the axiom never fires"
               Term.pp (Axiom.lhs ax));
        ]
      else [])
    (Spec.axioms spec)
