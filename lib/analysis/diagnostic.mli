(** Lint diagnostics with stable rule codes.

    Guttag's section 3 calls for a {e mechanical} procedure that examines an
    axiomatisation and tells the user what is wrong with it. The repo's two
    deep checkers ({!Adt.Completeness}, {!Adt.Consistency}) and the five
    cheap well-formedness passes of this library all report through this one
    currency: a diagnostic with a stable [ADTxxx] code, a severity, a locus
    (specification, and optionally the operation or axiom concerned), a
    human message, and — when the analyzer can compute one — a concrete fix
    suggestion (fed by {!Adt.Heuristics.stub_axioms} for missing cases).

    Codes are append-only: a code, once published, never changes meaning. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_of_string : string -> severity option

val severity_at_least : severity -> threshold:severity -> bool
(** [severity_at_least s ~threshold] — [Error] outranks [Warning] outranks
    [Info]. *)

type locus = {
  spec : string;  (** Specification name; always present. *)
  op : string option;  (** Operation concerned, when one is. *)
  axiom : string option;  (** Axiom label, when one is. *)
}

type t = {
  code : string;  (** Stable rule code, e.g. ["ADT001"]. *)
  severity : severity;
  locus : locus;
  message : string;
  suggestion : string option;  (** A concrete fix, e.g. a stub axiom. *)
}

val v :
  code:string ->
  severity:severity ->
  spec:string ->
  ?op:string ->
  ?axiom:string ->
  ?suggestion:string ->
  string ->
  t
(** Raises [Invalid_argument] on a code not in {!rules}. *)

(** {1 The rule table} *)

type rule_info = {
  rule_code : string;
  slug : string;  (** Short kebab-case name, e.g. ["missing-case"]. *)
  default_severity : severity;
  summary : string;  (** One-line description for SARIF rule metadata. *)
}

val rules : rule_info list
(** Every published rule, in code order:

    - [ADT001 missing-case] (error) — sufficient-completeness hole
    - [ADT002 critical-pair-divergence] (error) — unjoinable critical pair
    - [ADT010 non-left-linear] (warning) — repeated left-hand-side variable
    - [ADT011 free-rhs-variable] (error) — non-executable axiom
    - [ADT012 dead-axiom] (warning) — axiom shadowed by an earlier one
    - [ADT013 unreachable-sort] (error) — constructed sort with no ground term
    - [ADT014 non-strict-error] (warning) — axiom pattern-matches on [error]
    - [ADT020 sufficient-completeness] (error) — uncovered constructor
      context decided by pattern-matrix usefulness
    - [ADT021 termination] (error) — axiom no searched recursive path
      ordering orients
    - [ADT022 confluence] (error) — confluence refuted or not established
      by critical pairs + Newman *)

val codes : string list
(** The codes of {!rules}, in order. *)

val info : string -> rule_info
(** Raises [Not_found] on an unpublished code. *)

val slug_of_code : string -> string

val pp : t Fmt.t
(** One line:
    [CODE slug severity SPEC(, op OP)(, axiom \[N\]): message (suggest: ...)]. *)

val to_line : t -> string
