open Adt

let axiom_label ax = if Axiom.name ax = "" then None else Some (Axiom.name ax)

let repeated_vars ax =
  let lhs = Axiom.lhs ax in
  let count x =
    Term.fold
      (fun n t ->
        match Term.view t with
        | Term.Var (y, _) when String.equal x y -> n + 1
        | _ -> n)
      0 lhs
  in
  List.filter (fun (x, _) -> count x > 1) (Term.vars lhs)

let check spec =
  List.concat_map
    (fun ax ->
      match repeated_vars ax with
      | [] -> []
      | repeated ->
        let names = String.concat ", " (List.map fst repeated) in
        [
          Diagnostic.v ~code:"ADT010" ~severity:Diagnostic.Warning
            ~spec:(Spec.name spec)
            ~op:(Op.name (Axiom.head ax))
            ?axiom:(axiom_label ax)
            ~suggestion:
              (Fmt.str
                 "split the repeated variable into distinct variables and \
                  discriminate with an equality observer")
            (Fmt.str
               "left-hand side %a is not left-linear (variable%s %s occur%s \
                more than once)"
               Term.pp (Axiom.lhs ax)
               (if List.length repeated > 1 then "s" else "")
               names
               (if List.length repeated > 1 then "" else "s"));
        ])
    (Spec.axioms spec)
