open Adt

let axiom_label ax = if Axiom.name ax = "" then None else Some (Axiom.name ax)

let check spec =
  List.concat_map
    (fun ax ->
      match Axiom.free_rhs_vars ax with
      | [] -> []
      | free ->
        let names = String.concat ", " (List.map fst free) in
        [
          Diagnostic.v ~code:"ADT011" ~severity:Diagnostic.Error
            ~spec:(Spec.name spec)
            ~op:(Op.name (Axiom.head ax))
            ?axiom:(axiom_label ax)
            ~suggestion:
              (Fmt.str
                 "bind %s on the left-hand side or replace it with a ground \
                  term"
                 names)
            (Fmt.str
               "right-hand side %a uses variable%s %s not bound by the \
                left-hand side %a; the axiom is not executable and the \
                interpreter ignores it"
               Term.pp (Axiom.rhs ax)
               (if List.length free > 1 then "s" else "")
               names Term.pp (Axiom.lhs ax));
        ])
    (Spec.axioms spec)
