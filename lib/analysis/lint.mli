(** The lint driver: one entry point that runs every published rule over a
    specification and returns the findings as {!Diagnostic.t} values.

    Two rules adapt existing semantic analyses — ADT001 wraps
    {!Adt.Heuristics.prompts} (sufficient completeness) and ADT002 wraps
    {!Adt.Consistency.check} (critical pairs) — while the ADT01x rules are
    purely syntactic passes over the axiom list. [static] runs only the
    syntactic passes; [adtc check] uses it to avoid re-reporting
    completeness and consistency results it already prints itself. *)

type config = {
  only : string list option;
      (** Restrict to these rule codes; [None] runs every rule. Unknown
          codes raise [Invalid_argument] in {!run}. *)
  fuel : int option;
      (** Fuel for the ADT002 joinability search ([None] = the
          {!Adt.Consistency.check} default). *)
}

val default_config : config

val run : ?config:config -> Adt.Spec.t -> Diagnostic.t list
(** All findings, grouped by rule code in the order of
    {!Diagnostic.rules}. *)

val static_codes : string list
(** The purely syntactic rules: ADT010, ADT011, ADT012, ADT013, ADT014. *)

val static : Adt.Spec.t -> Diagnostic.t list
(** [run] restricted to {!static_codes}. *)

val counts_by_rule : Diagnostic.t list -> (string * int) list
(** Findings per rule code, every published code present (zero included),
    in {!Diagnostic.rules} order. *)

val max_severity : Diagnostic.t list -> Diagnostic.severity option
(** The most severe finding, [None] on a clean report. *)
