(** The lint driver: one entry point that runs every published rule over a
    specification and returns the findings as {!Diagnostic.t} values.

    Two rules adapt existing semantic analyses — ADT001 wraps
    {!Adt.Heuristics.prompts} (sufficient completeness) and ADT002 wraps
    the critical-pair analysis — the ADT01x rules are purely syntactic
    passes over the axiom list, and the ADT02x rules are the {!Verify}
    decision passes (pattern-matrix completeness, RPO termination,
    critical-pair confluence). ADT002, ADT021 and ADT022 share one
    {!Verify.analyze} computation per run, so their verdicts can never
    disagree. [static] runs only the syntactic passes and [verify] only
    the decision passes; [adtc check] uses both alongside the completeness
    and consistency reports it prints itself. *)

type config = {
  only : string list option;
      (** Restrict to these rule codes; [None] runs every rule. Unknown
          codes raise [Invalid_argument] in {!run}. *)
  fuel : int option;
      (** Fuel for the ADT002/ADT022 joinability search ([None] = the
          {!Adt.Consistency.check} default). *)
}

val default_config : config

val run : ?config:config -> Adt.Spec.t -> Diagnostic.t list
(** All findings, grouped by rule code in the order of
    {!Diagnostic.rules}. *)

val static_codes : string list
(** The purely syntactic rules: ADT010, ADT011, ADT012, ADT013, ADT014. *)

val static : Adt.Spec.t -> Diagnostic.t list
(** [run] restricted to {!static_codes}. *)

val verify_codes : string list
(** The decision passes: ADT020, ADT021, ADT022. *)

val verify : Adt.Spec.t -> Diagnostic.t list
(** [run] restricted to {!verify_codes}. *)

val pass_version : int
(** Version of the analysis pass set, baked into the engine's persisted
    lint record kind: a cached lint verdict produced under a different
    pass version is invalidated (a counted store miss) rather than served
    stale. Bumped whenever the rule set or a rule's semantics changes. *)

val counts_by_rule : Diagnostic.t list -> (string * int) list
(** Findings per rule code, every published code present (zero included),
    in {!Diagnostic.rules} order. *)

val max_severity : Diagnostic.t list -> Diagnostic.severity option
(** The most severe finding, [None] on a clean report. *)
