open Adt

let axiom_label ax = if Axiom.name ax = "" then None else Some (Axiom.name ax)

let subsumes earlier ax =
  Op.equal (Axiom.head earlier) (Axiom.head ax)
  && Subst.match_term ~pattern:(Axiom.lhs earlier) (Axiom.lhs ax) <> None

let check spec =
  let rec walk seen = function
    | [] -> []
    | ax :: rest ->
      let here =
        match List.find_opt (fun earlier -> subsumes earlier ax) seen with
        | None -> []
        | Some earlier ->
          let earlier_ref =
            if Axiom.name earlier = "" then
              Fmt.str "an earlier axiom (%a = ...)" Term.pp (Axiom.lhs earlier)
            else Fmt.str "axiom [%s]" (Axiom.name earlier)
          in
          [
            Diagnostic.v ~code:"ADT012" ~severity:Diagnostic.Warning
              ~spec:(Spec.name spec)
              ~op:(Op.name (Axiom.head ax))
              ?axiom:(axiom_label ax)
              ~suggestion:
                (Fmt.str
                   "delete the axiom or reorder it before %s if it is meant \
                    to be a special case"
                   earlier_ref)
              (Fmt.str
                 "left-hand side %a is an instance of %s, which matches \
                  first; this axiom can never fire"
                 Term.pp (Axiom.lhs ax) earlier_ref);
          ]
      in
      here @ walk (seen @ [ ax ]) rest
  in
  walk [] (Spec.axioms spec)
