open Adt

type config = { only : string list option; fuel : int option }

let default_config = { only = None; fuel = None }

(* ADT001: adapt the heuristic prompting system. Each missing constructor
   case becomes one finding; the suggestion is the forced right-hand side
   when the heuristics found one, otherwise the [lhs = error] stub that
   {!Heuristics.stub_axioms} would generate. *)
let missing_cases spec =
  List.map
    (fun (p : Heuristics.prompt) ->
      let kind =
        match p.kind with
        | Heuristics.Boundary -> "boundary case"
        | Heuristics.General -> "general case"
      in
      let suggestion =
        match p.suggested_rhs with
        | Some rhs -> Fmt.str "add the axiom %a = %a" Term.pp p.missing_lhs Term.pp rhs
        | None -> Fmt.str "stub with %a = error and refine" Term.pp p.missing_lhs
      in
      Diagnostic.v ~code:"ADT001" ~severity:Diagnostic.Error
        ~spec:(Spec.name spec) ~op:(Op.name p.op) ~suggestion
        (Fmt.str "no axiom covers %s %a; %s" kind Term.pp p.missing_lhs
           p.question))
    (Heuristics.prompts spec)

(* the analysis pass-version, persisted into the engine's lint record kind:
   bumping it invalidates every cached lint verdict produced by an older
   pass set (counted as store misses, never served stale). Bump on any
   change to the rule set or to a rule's semantics. Version 2 added the
   verification passes ADT020-ADT022. *)
let pass_version = 2

let static_codes = [ "ADT010"; "ADT011"; "ADT012"; "ADT013"; "ADT014" ]
let verify_codes = [ "ADT020"; "ADT021"; "ADT022" ]

let pass_of_code = function
  | "ADT010" -> Left_linear.check
  | "ADT011" -> Free_rhs.check
  | "ADT012" -> Dead_axiom.check
  | "ADT013" -> Reachability.check
  | "ADT014" -> Strict_error.check
  | code -> invalid_arg (Fmt.str "Lint.pass_of_code: %s" code)

let run ?(config = default_config) spec =
  let wanted code =
    match config.only with
    | None -> true
    | Some codes ->
      List.iter
        (fun c ->
          if not (List.mem c Diagnostic.codes) then
            invalid_arg (Fmt.str "Lint.run: unknown rule code %s" c))
        codes;
      List.mem code codes
  in
  (* ADT002, ADT021 and ADT022 all consume the same critical-pair and
     precedence-search analysis, computed once per run — the rules cannot
     disagree about which pairs exist, whether they join, or whether the
     system terminates *)
  let analysis = lazy (Verify.analyze ?fuel:config.fuel spec) in
  List.concat_map
    (fun (r : Diagnostic.rule_info) ->
      if not (wanted r.Diagnostic.rule_code) then []
      else
        match r.Diagnostic.rule_code with
        | "ADT001" -> missing_cases spec
        | "ADT002" -> Verify.adt002 (Lazy.force analysis)
        | "ADT020" -> Verify.adt020 spec
        | "ADT021" -> Verify.adt021 (Lazy.force analysis)
        | "ADT022" -> Verify.adt022 (Lazy.force analysis)
        | code -> pass_of_code code spec)
    Diagnostic.rules

let static spec = run ~config:{ only = Some static_codes; fuel = None } spec
let verify spec = run ~config:{ only = Some verify_codes; fuel = None } spec

let counts_by_rule diags =
  List.map
    (fun code ->
      ( code,
        List.length (List.filter (fun d -> String.equal d.Diagnostic.code code) diags)
      ))
    Diagnostic.codes

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.Diagnostic.severity
      | Some s ->
        if Diagnostic.severity_at_least d.Diagnostic.severity ~threshold:s then
          Some d.Diagnostic.severity
        else acc)
    None diags
