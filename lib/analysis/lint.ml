open Adt

type config = { only : string list option; fuel : int option }

let default_config = { only = None; fuel = None }

(* ADT001: adapt the heuristic prompting system. Each missing constructor
   case becomes one finding; the suggestion is the forced right-hand side
   when the heuristics found one, otherwise the [lhs = error] stub that
   {!Heuristics.stub_axioms} would generate. *)
let missing_cases spec =
  List.map
    (fun (p : Heuristics.prompt) ->
      let kind =
        match p.kind with
        | Heuristics.Boundary -> "boundary case"
        | Heuristics.General -> "general case"
      in
      let suggestion =
        match p.suggested_rhs with
        | Some rhs -> Fmt.str "add the axiom %a = %a" Term.pp p.missing_lhs Term.pp rhs
        | None -> Fmt.str "stub with %a = error and refine" Term.pp p.missing_lhs
      in
      Diagnostic.v ~code:"ADT001" ~severity:Diagnostic.Error
        ~spec:(Spec.name spec) ~op:(Op.name p.op) ~suggestion
        (Fmt.str "no axiom covers %s %a; %s" kind Term.pp p.missing_lhs
           p.question))
    (Heuristics.prompts spec)

(* ADT002: adapt the critical-pair analysis. Distinct value normal forms
   prove inconsistency (error); divergence between non-value terms is a
   warning; a joinability-search timeout is informational. *)
let critical_pairs ?fuel spec =
  let report = Consistency.check ?fuel spec in
  let is_value t = Spec.is_constructor_ground_term spec t || Term.is_error t in
  let op_of_peak t =
    match Term.view t with Term.App (op, _) -> Some (Op.name op) | _ -> None
  in
  List.filter_map
    (fun ((cp : Consistency.cp), verdict) ->
      let mk severity message suggestion =
        Some
          (Diagnostic.v ~code:"ADT002" ~severity ~spec:(Spec.name spec)
             ?op:(op_of_peak cp.Consistency.peak)
             ~axiom:cp.Consistency.rule1 ~suggestion message)
      in
      match verdict with
      | Consistency.Joinable _ -> None
      | Consistency.Diverges (l, r) when is_value l && is_value r ->
        mk Diagnostic.Error
          (Fmt.str
             "axioms [%s] and [%s] rewrite %a to distinct values %a and %a: \
              the axiomatisation is inconsistent"
             cp.Consistency.rule1 cp.Consistency.rule2 Term.pp
             cp.Consistency.peak Term.pp l Term.pp r)
          (Fmt.str "reconcile the overlapping axioms [%s] and [%s]"
             cp.Consistency.rule1 cp.Consistency.rule2)
      | Consistency.Diverges (l, r) ->
        mk Diagnostic.Warning
          (Fmt.str
             "axioms [%s] and [%s] rewrite %a to distinct normal forms %a \
              and %a; local confluence fails"
             cp.Consistency.rule1 cp.Consistency.rule2 Term.pp
             cp.Consistency.peak Term.pp l Term.pp r)
          (Fmt.str "add an axiom joining %a and %a" Term.pp l Term.pp r)
      | Consistency.Timeout ->
        mk Diagnostic.Info
          (Fmt.str
             "joinability of the critical pair of [%s] and [%s] at %a was \
              not decided within the fuel budget"
             cp.Consistency.rule1 cp.Consistency.rule2 Term.pp
             cp.Consistency.peak)
          "re-run with a larger fuel budget")
    report.Consistency.pairs

let static_codes = [ "ADT010"; "ADT011"; "ADT012"; "ADT013"; "ADT014" ]

let pass_of_code = function
  | "ADT010" -> Left_linear.check
  | "ADT011" -> Free_rhs.check
  | "ADT012" -> Dead_axiom.check
  | "ADT013" -> Reachability.check
  | "ADT014" -> Strict_error.check
  | code -> invalid_arg (Fmt.str "Lint.pass_of_code: %s" code)

let run ?(config = default_config) spec =
  let wanted code =
    match config.only with
    | None -> true
    | Some codes ->
      List.iter
        (fun c ->
          if not (List.mem c Diagnostic.codes) then
            invalid_arg (Fmt.str "Lint.run: unknown rule code %s" c))
        codes;
      List.mem code codes
  in
  List.concat_map
    (fun (r : Diagnostic.rule_info) ->
      if not (wanted r.Diagnostic.rule_code) then []
      else
        match r.Diagnostic.rule_code with
        | "ADT001" -> missing_cases spec
        | "ADT002" -> critical_pairs ?fuel:config.fuel spec
        | code -> pass_of_code code spec)
    Diagnostic.rules

let static spec = run ~config:{ only = Some static_codes; fuel = None } spec

let counts_by_rule diags =
  List.map
    (fun code ->
      ( code,
        List.length (List.filter (fun d -> String.equal d.Diagnostic.code code) diags)
      ))
    Diagnostic.codes

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.Diagnostic.severity
      | Some s ->
        if Diagnostic.severity_at_least d.Diagnostic.severity ~threshold:s then
          Some d.Diagnostic.severity
        else acc)
    None diags
