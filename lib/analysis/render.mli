(** Renderers for lint findings. Each takes the findings grouped per input
    file — [(file, diagnostics)] pairs, where [file] is the path that was
    linted (or a [builtin/<Spec>] pseudo-path for the bundled library) —
    and returns the complete output as a string (no trailing newline). *)

val text : (string * Diagnostic.t list) list -> string
(** Human-readable: one [file: CODE slug severity ...] line per finding,
    followed by a one-line summary with per-severity counts. *)

val json_lines : (string * Diagnostic.t list) list -> string
(** One JSON object per finding per line, with fields [file], [code],
    [slug], [severity], [spec], [op], [axiom], [message], [suggestion]
    ([op], [axiom], [suggestion] are [null] when absent). *)

val sarif : (string * Diagnostic.t list) list -> string
(** A complete SARIF 2.1.0 log: a single run whose tool driver publishes
    every rule of {!Diagnostic.rules} and whose results carry the file as
    the physical location and the operation as a logical location.
    Severity maps to SARIF levels as error/warning and [Info] to [note]. *)
