(** ADT014 [non-strict-error]: an axiom whose left-hand side pattern-matches
    on the [error] value. The paper's strictness rule ("the value of any
    operation applied to an argument list containing error is error") is
    builtin in {!Adt.Rewrite}, so the enclosing application collapses to
    [error] before the axiom is ever consulted — the axiom is unreachable
    and usually signals a misunderstanding of error propagation. *)

val check : Adt.Spec.t -> Diagnostic.t list
