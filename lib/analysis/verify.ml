open Adt

(* {1 Sufficient completeness (ADT020)} *)

type hole = { hole_op : Op.t; witness : Term.t; decided : bool }
type completeness_report = { c_spec : string; holes : hole list }

let lhs_args ax =
  match Term.view (Axiom.lhs ax) with Term.App (_, args) -> args | _ -> []

(* a row joins the matrix only when its patterns are constructor contexts:
   an argument pattern headed by an observer, [error] or [if-then-else]
   never matches a ground constructor term, so such an axiom contributes
   nothing to coverage (ADT014 reports the error case separately) *)
let admissible spec ax =
  List.for_all (Spec.is_constructor_term spec) (lhs_args ax)

(* brute-force confirmation used when non-left-linear axioms are in play:
   a tuple of ground constructor arguments no executable left-hand side
   matches at the root, if one exists within the size bound *)
let ground_witness spec op patterns ~size =
  let u = Enum.universe spec in
  let arg_sorts = Op.args op in
  let choices = List.map (fun s -> Enum.terms_up_to u s ~size) arg_sorts in
  if List.exists (fun c -> c = []) choices then None
  else begin
    let exception Found of Term.t in
    let check args =
      let t = Term.app op args in
      if not (List.exists (fun p -> Subst.matches ~pattern:p t) patterns) then
        raise (Found t)
    in
    let rec product acc = function
      | [] -> check (List.rev acc)
      | cs :: rest -> List.iter (fun c -> product (c :: acc) rest) cs
    in
    try
      product [] choices;
      None
    with Found t -> Some t
  end

let completeness spec =
  let holes =
    List.filter_map
      (fun op ->
        let axs =
          List.filter Axiom.is_executable (Spec.axioms_for op spec)
          |> List.filter (admissible spec)
        in
        let linear, nonlinear = List.partition Axiom.is_left_linear axs in
        let m =
          Pattern_matrix.create spec ~sorts:(Op.args op)
            ~rows:(List.map lhs_args linear)
        in
        match Pattern_matrix.uncovered m with
        | None -> None
        | Some args -> (
          let candidate = Term.app op args in
          if nonlinear = [] then
            Some { hole_op = op; witness = candidate; decided = true }
          else
            (* the excluded non-left-linear rows may cover the candidate;
               decide by ground enumeration over a small universe *)
            match
              ground_witness spec op (List.map Axiom.lhs axs) ~size:4
            with
            | Some w -> Some { hole_op = op; witness = w; decided = true }
            | None ->
              Some { hole_op = op; witness = candidate; decided = false }))
      (Spec.observers spec)
  in
  { c_spec = Spec.name spec; holes }

let sufficiently_complete r = r.holes = []

(* {1 Termination + confluence analysis (ADT021/ADT022, shared with ADT002)} *)

type status =
  | Confluent_newman
  | Confluent_orthogonal
  | Locally_confluent_only
  | Not_locally_confluent
  | Undecided

type analysis = {
  a_spec : Spec.t;
  report : Consistency.report;
  search : Ordering.search_result;
  status : status;
}

let analyze ?fuel spec =
  let report = Consistency.check ?fuel spec in
  let search = Ordering.search spec in
  let diverging =
    List.exists
      (fun (_, v) -> match v with Consistency.Diverges _ -> true | _ -> false)
      report.Consistency.pairs
  in
  let timed_out =
    List.exists
      (fun (_, v) -> match v with Consistency.Timeout -> true | _ -> false)
      report.Consistency.pairs
  in
  let left_linear =
    List.for_all Axiom.is_left_linear
      (List.filter Axiom.is_executable (Spec.axioms spec))
  in
  let status =
    if diverging then Not_locally_confluent
    else if timed_out then Undecided
    else if Ordering.oriented search then Confluent_newman
    else if left_linear && report.Consistency.pairs = [] then
      Confluent_orthogonal
    else Locally_confluent_only
  in
  { a_spec = spec; report; search; status }

(* {1 Findings} *)

let adt020 spec =
  let r = completeness spec in
  List.map
    (fun h ->
      let op = Op.name h.hole_op in
      if h.decided then
        Diagnostic.v ~code:"ADT020" ~severity:Diagnostic.Error ~spec:r.c_spec
          ~op
          ~suggestion:
            (Fmt.str "add an axiom with left-hand side %s"
               (Term.to_string h.witness))
          (Fmt.str
             "the ground constructor context %s is matched by no executable \
              axiom: the specification is not sufficiently complete"
             (Term.to_string h.witness))
      else
        Diagnostic.v ~code:"ADT020" ~severity:Diagnostic.Warning ~spec:r.c_spec
          ~op
          ~suggestion:"replace the non-left-linear axioms by linear case splits"
          (Fmt.str
             "the pattern matrix leaves %s uncovered, but non-left-linear \
              axioms keep the verdict open (no ground counterexample up to \
              size 4)"
             (Term.to_string h.witness)))
    r.holes

let adt021 a =
  let spec_name = Spec.name a.a_spec in
  List.map
    (fun ax ->
      Diagnostic.v ~code:"ADT021" ~severity:Diagnostic.Error ~spec:spec_name
        ~op:(Op.name (Axiom.head ax))
        ~axiom:(Axiom.name ax)
        ~suggestion:
          "make the right-hand side smaller in the path order, or split the \
           equation into oriented rules"
        (Fmt.str
           "no recursive path ordering orients %s = %s (greedy precedence \
            search exhausted); termination of the rewrite system is unproven"
           (Term.to_string (Axiom.lhs ax))
           (Term.to_string (Axiom.rhs ax))))
    a.search.Ordering.unoriented

let op_of_peak t =
  match Term.view t with Term.App (op, _) -> Some (Op.name op) | _ -> None

let adt022 a =
  let spec_name = Spec.name a.a_spec in
  let pairs = a.report.Consistency.pairs in
  let divergent =
    List.filter_map
      (fun ((cp : Consistency.cp), v) ->
        match v with
        | Consistency.Diverges (l, r) -> Some (cp, l, r)
        | _ -> None)
      pairs
  in
  match a.status with
  | Confluent_newman | Confluent_orthogonal -> []
  | Not_locally_confluent ->
    let (cp : Consistency.cp), l, r = List.hd divergent in
    [
      Diagnostic.v ~code:"ADT022" ~severity:Diagnostic.Error ~spec:spec_name
        ?op:(op_of_peak cp.Consistency.peak)
        ~axiom:cp.Consistency.rule1
        ~suggestion:"add axioms joining the divergent normal forms"
        (Fmt.str
           "not locally confluent: the critical pair of [%s] and [%s] at \
            peak %s rewrites to %s and %s (%d divergent pair(s) in all), so \
            the system is not confluent"
           cp.Consistency.rule1 cp.Consistency.rule2
           (Term.to_string cp.Consistency.peak) (Term.to_string l)
           (Term.to_string r) (List.length divergent));
    ]
  | Undecided ->
    [
      Diagnostic.v ~code:"ADT022" ~severity:Diagnostic.Info ~spec:spec_name
        ~suggestion:"re-run with a larger fuel budget"
        (Fmt.str
           "joinability of %d critical pair(s) was not decided within the \
            fuel budget; confluence is not established"
           (List.length
              (List.filter
                 (fun (_, v) -> match v with Consistency.Timeout -> true | _ -> false)
                 pairs)));
    ]
  | Locally_confluent_only ->
    [
      Diagnostic.v ~code:"ADT022" ~severity:Diagnostic.Info ~spec:spec_name
        ~suggestion:
          "prove termination (see ADT021) to conclude confluence by Newman's \
           lemma"
        (Fmt.str
           "locally confluent only: all %d critical pair(s) join, but \
            termination is unproven, so Newman's lemma does not apply"
           (List.length pairs));
    ]

(* ADT002, the historical per-pair rule, fed from the same analysis so the
   two codes cannot disagree. Distinct value normal forms prove
   inconsistency (error); divergence between non-value terms is a warning;
   a joinability-search timeout is informational. *)
let adt002 a =
  let spec = a.a_spec in
  let is_value t = Spec.is_constructor_ground_term spec t || Term.is_error t in
  List.filter_map
    (fun ((cp : Consistency.cp), verdict) ->
      let mk severity message suggestion =
        Some
          (Diagnostic.v ~code:"ADT002" ~severity ~spec:(Spec.name spec)
             ?op:(op_of_peak cp.Consistency.peak)
             ~axiom:cp.Consistency.rule1 ~suggestion message)
      in
      match verdict with
      | Consistency.Joinable _ -> None
      | Consistency.Diverges (l, r) when is_value l && is_value r ->
        mk Diagnostic.Error
          (Fmt.str
             "axioms [%s] and [%s] rewrite %s to distinct values %s and %s: \
              the axiomatisation is inconsistent"
             cp.Consistency.rule1 cp.Consistency.rule2
             (Term.to_string cp.Consistency.peak) (Term.to_string l)
             (Term.to_string r))
          (Fmt.str "reconcile the overlapping axioms [%s] and [%s]"
             cp.Consistency.rule1 cp.Consistency.rule2)
      | Consistency.Diverges (l, r) ->
        mk Diagnostic.Warning
          (Fmt.str
             "axioms [%s] and [%s] rewrite %s to distinct normal forms %s \
              and %s; local confluence fails"
             cp.Consistency.rule1 cp.Consistency.rule2
             (Term.to_string cp.Consistency.peak) (Term.to_string l)
             (Term.to_string r))
          (Fmt.str "add an axiom joining %s and %s" (Term.to_string l)
             (Term.to_string r))
      | Consistency.Timeout ->
        mk Diagnostic.Info
          (Fmt.str
             "joinability of the critical pair of [%s] and [%s] at %s was \
              not decided within the fuel budget"
             cp.Consistency.rule1 cp.Consistency.rule2
             (Term.to_string cp.Consistency.peak))
          "re-run with a larger fuel budget")
    a.report.Consistency.pairs

(* {1 The check-command summary} *)

type summary = {
  s_spec : string;
  s_holes : hole list;
  s_unoriented : Axiom.t list;
  s_status : status;
  s_pairs : int;
}

let summarize ?fuel spec =
  let c = completeness spec in
  let a = analyze ?fuel spec in
  {
    s_spec = Spec.name spec;
    s_holes = c.holes;
    s_unoriented = a.search.Ordering.unoriented;
    s_status = a.status;
    s_pairs = List.length a.report.Consistency.pairs;
  }

let verified s =
  s.s_holes = []
  && s.s_unoriented = []
  && match s.s_status with
     | Confluent_newman | Confluent_orthogonal -> true
     | _ -> false

let pp_summary ppf s =
  let completeness ppf () =
    match s.s_holes with
    | [] -> Fmt.string ppf "sufficiently complete"
    | holes ->
      if List.for_all (fun h -> not h.decided) holes then
        Fmt.pf ppf "completeness undecided (%d open context(s))"
          (List.length holes)
      else
        Fmt.pf ppf "NOT sufficiently complete (%d uncovered context(s))"
          (List.length holes)
  in
  let termination ppf () =
    match s.s_unoriented with
    | [] -> Fmt.string ppf "terminating (recursive path ordering)"
    | axs ->
      Fmt.pf ppf "termination unproven (%d non-orientable axiom(s))"
        (List.length axs)
  in
  let confluence ppf () =
    match s.s_status with
    | Confluent_newman ->
      if s.s_pairs = 0 then
        Fmt.string ppf "confluent (no critical pairs; terminating)"
      else
        Fmt.pf ppf "confluent (Newman: %d critical pair(s) joinable, \
                    terminating)"
          s.s_pairs
    | Confluent_orthogonal ->
      Fmt.string ppf "confluent (orthogonal: left-linear, no critical pairs)"
    | Locally_confluent_only ->
      Fmt.string ppf "locally confluent only (termination unproven)"
    | Not_locally_confluent -> Fmt.string ppf "NOT locally confluent"
    | Undecided -> Fmt.string ppf "confluence undecided (joinability timeout)"
  in
  Fmt.pf ppf "verify %s: %a; %a; %a" s.s_spec completeness () termination ()
    confluence ()
