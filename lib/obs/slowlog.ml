type entry = {
  trace_id : string;
  kind : string;
  spec : string;
  latency_s : float;
  fuel : int;
  spans : (string * float) list;
}

type t = {
  lock : Mutex.t;
  threshold_s : float;
  ring : entry option array;
  mutable next : int; (* write cursor *)
  mutable length : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) ~threshold_s () =
  if capacity < 1 then invalid_arg "Slowlog.create: capacity must be positive";
  if threshold_s < 0. then
    invalid_arg "Slowlog.create: threshold must be non-negative";
  {
    lock = Mutex.create ();
    threshold_s;
    ring = Array.make capacity None;
    next = 0;
    length = 0;
  }

let threshold_s t = t.threshold_s
let capacity t = Array.length t.ring
let length t = Mutex.protect t.lock (fun () -> t.length)

let observe t e =
  if e.latency_s < t.threshold_s then false
  else begin
    Mutex.protect t.lock (fun () ->
        t.ring.(t.next) <- Some e;
        t.next <- (t.next + 1) mod Array.length t.ring;
        if t.length < Array.length t.ring then t.length <- t.length + 1);
    true
  end

let entries t =
  Mutex.protect t.lock (fun () ->
      let cap = Array.length t.ring in
      (* oldest first: when full the write cursor points at the oldest *)
      let start = if t.length < cap then 0 else t.next in
      List.init t.length (fun i ->
          match t.ring.((start + i) mod cap) with
          | Some e -> e
          | None -> assert false))
