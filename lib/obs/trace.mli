(** Span-based request tracing.

    A tracer follows one request through the engine: a root span opened at
    creation, child spans for each phase (parse → dispatch → rewrite →
    respond), and per-rule firing counts fed by the rewriting loop through
    the same hook plumbing as the cooperative deadline
    ({!Adt.Rewrite} [?on_rule]). Each tracer carries a process-unique
    trace ID drawn from an atomic counter, so concurrent connection
    threads can trace simultaneously and slow-request log entries remain
    attributable.

    The whole module is built around {!disabled}, a tracer that does
    nothing: every operation on it is a constant-time no-op and {!hook}
    returns [None] so the rewriting loop does not even test a closure —
    tracing costs ~nothing when off (benchmark E11 quantifies this).

    A tracer is owned by the single thread serving its request; it is not
    itself thread-safe (the ID counter is). *)

type span = {
  span_name : string;
  dur_s : float;  (** Wall-clock duration, seconds. *)
  steps : int;  (** Rule applications attributed to this span itself,
                    children not included. *)
  children : span list;  (** In opening order. *)
}

type result = {
  id : string;  (** The trace ID, e.g. [t0042]. *)
  root : span;
  rules : (string * int) list;
      (** Rule name to firing count, sorted by name; builtin steps are
          not attributed. *)
  total_steps : int;  (** Sum over all spans = all firings. *)
}

type t

val disabled : t
(** The no-op tracer: [enabled] is false, [hook] is [None], [finish] is
    [None], span operations run their thunk and record nothing. *)

val create : ?clock:(unit -> float) -> string -> t
(** [create name] starts an enabled tracer whose root span is [name] and
    assigns the next trace ID. [clock] (default [Unix.gettimeofday])
    exists so tests can pin durations. *)

val enabled : t -> bool

val id : t -> string option

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a fresh child span of the innermost open span.
    The span is closed (and its duration fixed) even when the thunk
    raises. On {!disabled}, just runs the thunk. *)

val record_span : t -> string -> float -> unit
(** Adds an already-measured leaf span (no steps, no children) to the
    innermost open span. *)

val rule : t -> string -> unit
(** Attributes one rule firing to the innermost open span and to the
    per-rule totals. *)

val hook : t -> (string -> unit) option
(** [Some (rule t)] when enabled, [None] when disabled — pass directly as
    the [?on_rule] argument of the rewriting entry points, so a disabled
    tracer installs no closure at all. *)

val finish : t -> result option
(** Closes every span still open (root included) and returns the
    assembled result; [None] on {!disabled}. Call once. *)

val breakdown : span -> (string * float) list
(** The root's direct children as [(name, dur_s)] pairs, in order — the
    per-phase breakdown a slow-request log entry stores. *)

val result_to_json : ?meta:(string * string) list -> result -> string
(** A single-line JSON rendering: trace id, [meta] key/value string
    fields verbatim in order, total steps, per-rule counts, and the
    recursive span tree (durations in milliseconds). *)
