type t = {
  bounds : float array; (* strictly increasing inclusive upper bounds *)
  counts : int array; (* length bounds + 1; last is the overflow bucket *)
  mutable count : int;
  mutable sum : float;
  mutable max : float;
}

let create ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Hist.create: bounds must be nonempty";
  for i = 1 to n - 1 do
    if bounds.(i - 1) >= bounds.(i) then
      invalid_arg "Hist.create: bounds must be strictly increasing"
  done;
  {
    bounds = Array.copy bounds;
    counts = Array.make (n + 1) 0;
    count = 0;
    sum = 0.;
    max = 0.;
  }

let observe t v =
  let n = Array.length t.bounds in
  (* bounds arrays are small (~16); a linear scan beats the constant of a
     binary search and never allocates *)
  let rec bucket i = if i >= n || v <= t.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let max_value t = t.max
let bounds t = Array.copy t.bounds
let bucket_counts t = Array.copy t.counts

let cumulative t =
  let acc = ref 0 in
  Array.to_list
    (Array.mapi
       (fun i b ->
         acc := !acc + t.counts.(i);
         (b, !acc))
       t.bounds)

let copy t =
  {
    bounds = Array.copy t.bounds;
    counts = Array.copy t.counts;
    count = t.count;
    sum = t.sum;
    max = t.max;
  }

let merge a b =
  if Array.length a.bounds <> Array.length b.bounds
     || not (Array.for_all2 Float.equal a.bounds b.bounds)
  then invalid_arg "Hist.merge: histograms have different bounds";
  let m = create ~bounds:a.bounds in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.count <- a.count + b.count;
  m.sum <- a.sum +. b.sum;
  m.max <- Float.max a.max b.max;
  m

let default_latency_bounds =
  [|
    0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1;
    0.25; 0.5; 1.; 2.5; 5.; 10.;
  |]

let default_fuel_bounds =
  [| 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 5000.; 25000.; 100000. |]
