(** The slow-request ring log.

    A bounded ring of the most recent requests whose wall-clock latency
    met a threshold, each entry carrying its trace ID, request kind,
    specification, fuel spent, and per-phase span breakdown — enough to
    answer "where did the time go" for a production incident without
    replaying anything. The ring overwrites oldest-first and the log is
    mutex-protected: every connection thread of the engine feeds one
    shared log, and the [slowlog] protocol verb reads it. *)

type entry = {
  trace_id : string;
  kind : string;  (** Request kind ({!Engine.Protocol.kind_name}). *)
  spec : string;  (** Specification name, ["-"] when the kind has none. *)
  latency_s : float;
  fuel : int;  (** Rewrite steps this request spent. *)
  spans : (string * float) list;
      (** Per-phase breakdown [(name, seconds)] ({!Trace.breakdown}). *)
}

type t

val default_capacity : int
(** 64. *)

val create : ?capacity:int -> threshold_s:float -> unit -> t
(** Raises [Invalid_argument] when [capacity < 1] or [threshold_s] is
    negative. *)

val threshold_s : t -> float
val capacity : t -> int

val length : t -> int
(** Entries currently held; at most [capacity]. *)

val observe : t -> entry -> bool
(** Records the entry iff [entry.latency_s >= threshold_s t], evicting
    the oldest entry when full; returns whether it was recorded. *)

val entries : t -> entry list
(** Oldest first. *)
