(** Prometheus text-format exposition (version 0.0.4).

    Building blocks for rendering counters, gauges, and {!Hist}
    histograms as the plain-text format every Prometheus-compatible
    scraper ingests: a [# HELP]/[# TYPE] header per metric family, one
    sample per line, label values escaped, histograms expanded into the
    cumulative [_bucket{le="..."}] series plus [_sum] and [_count]. The
    engine assembles its full exposition in {!Engine.Session}; this
    module knows nothing about what is being measured. *)

type kind = Counter | Gauge | Histogram

val header : Buffer.t -> name:string -> help:string -> kind -> unit
(** The [# HELP name help] and [# TYPE name kind] lines. Newlines in
    [help] are escaped. *)

val sample :
  Buffer.t -> ?labels:(string * string) list -> string -> float -> unit
(** One sample line: [name{labels} value]. Label values are escaped;
    the value renders in Prometheus syntax ([+Inf], [-Inf], [NaN]
    included). *)

val counter :
  Buffer.t ->
  name:string ->
  help:string ->
  ?labelled:((string * string) list * float) list ->
  float ->
  unit
(** Header plus the unlabelled sample; with [labelled], header plus one
    sample per labelled value instead. *)

val gauge : Buffer.t -> name:string -> help:string -> float -> unit

val histogram : Buffer.t -> name:string -> help:string -> Hist.t -> unit
(** The full family: one [name_bucket{le="b"}] line per bound, the
    [le="+Inf"] line, then [name_sum] and [name_count]. *)

val number : float -> string
(** A float in Prometheus sample syntax. *)
