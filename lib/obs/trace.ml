type span = {
  span_name : string;
  dur_s : float;
  steps : int;
  children : span list;
}

type result = {
  id : string;
  root : span;
  rules : (string * int) list;
  total_steps : int;
}

(* an open span: children accumulate reversed until the frame closes *)
type frame = {
  fname : string;
  started : float;
  mutable fsteps : int;
  mutable rev_children : span list;
}

type state = {
  trace_id : string;
  clock : unit -> float;
  mutable stack : frame list; (* innermost first; the root is last *)
  rule_counts : (string, int) Hashtbl.t;
  mutable total_steps : int;
}

type t = Disabled | Enabled of state

let disabled = Disabled

(* process-wide: concurrent connection threads each create tracers, and
   slow-request log entries must stay attributable across all of them *)
let next_id = Atomic.make 0

let create ?(clock = Unix.gettimeofday) name =
  let n = Atomic.fetch_and_add next_id 1 + 1 in
  Enabled
    {
      trace_id = Fmt.str "t%04d" n;
      clock;
      stack = [ { fname = name; started = clock (); fsteps = 0; rev_children = [] } ];
      rule_counts = Hashtbl.create 8;
      total_steps = 0;
    }

let enabled = function Disabled -> false | Enabled _ -> true
let id = function Disabled -> None | Enabled s -> Some s.trace_id

let close_frame s frame =
  {
    span_name = frame.fname;
    dur_s = Float.max 0. (s.clock () -. frame.started);
    steps = frame.fsteps;
    children = List.rev frame.rev_children;
  }

let push_child s span =
  match s.stack with
  | frame :: _ -> frame.rev_children <- span :: frame.rev_children
  | [] -> () (* finished tracer: late spans are dropped, not an error *)

let with_span t name f =
  match t with
  | Disabled -> f ()
  | Enabled s ->
    let frame =
      { fname = name; started = s.clock (); fsteps = 0; rev_children = [] }
    in
    s.stack <- frame :: s.stack;
    Fun.protect
      ~finally:(fun () ->
        (match s.stack with
        | top :: rest when top == frame -> s.stack <- rest
        | _ ->
          (* a child span leaked past its parent's close; drop down to it *)
          s.stack <-
            (let rec drop = function
               | top :: rest when top == frame -> rest
               | _ :: rest -> drop rest
               | [] -> []
             in
             drop s.stack));
        push_child s (close_frame s frame))
      f

let record_span t name dur_s =
  match t with
  | Disabled -> ()
  | Enabled s ->
    push_child s { span_name = name; dur_s; steps = 0; children = [] }

let rule t name =
  match t with
  | Disabled -> ()
  | Enabled s ->
    s.total_steps <- s.total_steps + 1;
    (match s.stack with frame :: _ -> frame.fsteps <- frame.fsteps + 1 | [] -> ());
    Hashtbl.replace s.rule_counts name
      (1 + Option.value ~default:0 (Hashtbl.find_opt s.rule_counts name))

let hook t = match t with Disabled -> None | Enabled _ -> Some (rule t)

let finish t =
  match t with
  | Disabled -> None
  | Enabled s ->
    (* close any span left open (the root always is) from the inside out *)
    let rec unwind () =
      match s.stack with
      | [] -> assert false
      | [ root ] ->
        s.stack <- [];
        close_frame s root
      | frame :: rest ->
        s.stack <- rest;
        push_child s (close_frame s frame);
        unwind ()
    in
    let root = unwind () in
    let rules =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.rule_counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Some { id = s.trace_id; root; rules; total_steps = s.total_steps }

let breakdown span =
  List.map (fun c -> (c.span_name, c.dur_s)) span.children

(* {1 JSON rendering} *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add_span buf s =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf s.span_name;
  Buffer.add_string buf (Fmt.str ",\"dur_ms\":%.3f" (s.dur_s *. 1000.));
  Buffer.add_string buf (Fmt.str ",\"steps\":%d" s.steps);
  Buffer.add_string buf ",\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      add_span buf c)
    s.children;
  Buffer.add_string buf "]}"

let result_to_json ?(meta = []) r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"trace_id\":";
  add_json_string buf r.id;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_json_string buf v)
    meta;
  Buffer.add_string buf (Fmt.str ",\"steps\":%d" r.total_steps);
  Buffer.add_string buf ",\"rules\":[";
  List.iteri
    (fun i (name, count) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"rule\":";
      add_json_string buf name;
      Buffer.add_string buf (Fmt.str ",\"count\":%d}" count))
    r.rules;
  Buffer.add_string buf "],\"span\":";
  add_span buf r.root;
  Buffer.add_char buf '}';
  Buffer.contents buf
