type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* HELP text: the exposition format escapes backslash and newline *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* label values additionally escape the double quote *)
let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Fmt.str "%.0f" v
  else
    match Float.classify_float v with
    | Float.FP_infinite -> if v > 0. then "+Inf" else "-Inf"
    | _ -> Fmt.str "%.9g" v

let header buf ~name ~help kind =
  Buffer.add_string buf (Fmt.str "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Fmt.str "# TYPE %s %s\n" name (kind_name kind))

let sample buf ?(labels = []) name v =
  Buffer.add_string buf name;
  (match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Fmt.str "%s=\"%s\"" k (escape_label value)))
      labels;
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (number v);
  Buffer.add_char buf '\n'

let counter buf ~name ~help ?labelled v =
  header buf ~name ~help Counter;
  match labelled with
  | None -> sample buf name v
  | Some rows -> List.iter (fun (labels, v) -> sample buf ~labels name v) rows

let gauge buf ~name ~help v =
  header buf ~name ~help Gauge;
  sample buf name v

let histogram buf ~name ~help h =
  header buf ~name ~help Histogram;
  List.iter
    (fun (le, n) ->
      sample buf
        ~labels:[ ("le", number le) ]
        (name ^ "_bucket") (float_of_int n))
    (Hist.cumulative h);
  sample buf ~labels:[ ("le", "+Inf") ] (name ^ "_bucket")
    (float_of_int (Hist.count h));
  sample buf (name ^ "_sum") (Hist.sum h);
  sample buf (name ^ "_count") (float_of_int (Hist.count h))
