(** Fixed-bucket histograms.

    The engine's latency and fuel distributions are summarized as
    Prometheus-style cumulative histograms: a fixed, strictly increasing
    array of upper bounds chosen at creation time, one counter per bucket
    plus an overflow bucket, and running [count]/[sum]/[max]. Fixed
    buckets make observation O(buckets) with no allocation, make
    histograms mergeable exactly (bucket counts add), and render directly
    as the [_bucket{le="..."}] series of the text exposition
    ({!Export.histogram}).

    A histogram is a plain mutable value with no internal lock: the
    engine keeps one per metrics stripe and updates it under that
    stripe's lock, merging stripes exactly on scrape; single-threaded
    users need nothing. *)

type t

val create : bounds:float array -> t
(** [bounds] are the buckets' inclusive upper bounds ([v <= b], the
    Prometheus [le] convention); an implicit overflow bucket catches
    everything above the last bound. Raises [Invalid_argument] unless
    the bounds are nonempty and strictly increasing. *)

val observe : t -> float -> unit

val count : t -> int
(** Observations so far. *)

val sum : t -> float
val max_value : t -> float
(** Largest observation; [0.] before any observation. *)

val bounds : t -> float array
(** A copy of the creation bounds. *)

val bucket_counts : t -> int array
(** Per-bucket (non-cumulative) counts; the extra final entry is the
    overflow bucket. A copy. *)

val cumulative : t -> (float * int) list
(** [(upper_bound, observations <= upper_bound)] per bound, in order —
    the [_bucket] series without the trailing [+Inf] entry (which is
    {!count}). *)

val copy : t -> t
(** An independent snapshot: later observations on either histogram do
    not affect the other. *)

val merge : t -> t -> t
(** A fresh histogram combining both operands' observations exactly
    (counts and sums add, max is the larger). Raises [Invalid_argument]
    when the bounds differ. *)

val default_latency_bounds : float array
(** Request latency buckets, in seconds: 100µs … 10s. *)

val default_fuel_bounds : float array
(** Per-request rewrite-step buckets: 1 … 100_000. *)
