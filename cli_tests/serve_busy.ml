(* Drives a real [adtc serve --socket --max-clients 1] subprocess through
   its busy-backpressure and graceful-shutdown paths, printing a
   deterministic transcript for the expect test:

   - client A takes the single slot and is served;
   - client B is refused with [error busy] and closed;
   - A quits, freeing the slot, and a later client C is served from the
     same session (the shared cache is already warm: steps=0);
   - SIGTERM shuts the server down gracefully and removes its socket. *)

let die fmt =
  Fmt.kstr
    (fun message ->
      prerr_endline ("serve_busy: " ^ message);
      exit 1)
    fmt

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      (* a stuck server must fail the test, not hang the build *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then
        die "server socket never came up";
      ignore (Unix.select [] [] [] 0.01);
      go ()
  in
  go ()

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c =
  match input_line c.ic with
  | line -> line
  | exception End_of_file -> "<eof>"

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let () =
  if Array.length Sys.argv <> 3 then die "usage: serve_busy ADTC SPEC";
  let adtc = Sys.argv.(1) and spec = Sys.argv.(2) in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "adtc-busy-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let pid =
    Unix.create_process adtc
      [| adtc; "serve"; spec; "--socket"; path; "--max-clients"; "1" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let a = connect path in
  send a "normalize Queue IS_EMPTY?(NEW)";
  print_endline ("A: " ^ recv a);
  (* the single slot is taken: the next connection is refused, not queued *)
  let b = connect path in
  print_endline ("B: " ^ recv b);
  print_endline ("B: " ^ recv b);
  close b;
  send a "quit";
  print_endline ("A: " ^ recv a);
  close a;
  (* the slot frees when A's worker retires; retry until admitted. The
     session survives across connections: C hits the warm shared cache. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec served () =
    let c = connect path in
    send c "normalize Queue IS_EMPTY?(NEW)";
    let r = recv c in
    close c;
    if String.length r >= 10 && String.equal (String.sub r 0 10) "error busy"
    then begin
      if Unix.gettimeofday () > deadline then die "slot never freed";
      ignore (Unix.select [] [] [] 0.01);
      served ()
    end
    else r
  in
  print_endline ("C: " ^ served ());
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> Fmt.pr "server exit: %d@." code
  | _, Unix.WSIGNALED signal -> Fmt.pr "server killed by signal %d@." signal
  | _, Unix.WSTOPPED _ -> die "server stopped unexpectedly");
  Fmt.pr "socket removed: %b@." (not (Sys.file_exists path))
