(* Normalizes the nondeterministic pieces of engine output so the
   observability transcripts can be pinned by expect tests: wall-clock
   numbers (span durations, latency sums, latency bucket counts) become
   [*]; every structural field — counters, fuel, trace IDs, span names,
   bucket bounds — passes through untouched. *)

let latency_bucket =
  Str.regexp {|^\(adtc_request_latency_seconds_bucket{le="[^"]*"}\) .*$|}

let latency_sum = Str.regexp {|^\(adtc_request_latency_seconds_sum\) .*$|}
let dur_ms = Str.regexp {|"dur_ms":[0-9.]+|}
let slow_ms = Str.regexp {| ms=[0-9.]+|}
let span_pair = Str.regexp {|:[0-9.]+|}
let latency_field = Str.regexp {|latency\.\(total\|max\)_ms=[0-9.]+|}

let scrub line =
  if String.length line >= 5 && String.equal (String.sub line 0 5) "slow " then
    (* a slow-log entry: latency and every span duration are wall-clock *)
    line
    |> Str.global_replace slow_ms " ms=*"
    |> Str.global_replace span_pair ":*"
  else
    line
    |> Str.replace_first latency_bucket {|\1 *|}
    |> Str.replace_first latency_sum {|\1 *|}
    |> Str.global_replace dur_ms {|"dur_ms":*|}
    |> Str.global_replace latency_field {|latency.\1_ms=*|}

let () =
  try
    while true do
      print_endline (scrub (input_line stdin))
    done
  with End_of_file -> ()
