(* adtc — command-line front end for the algebraic specification toolkit.

   Subcommands:
     check       parse a .adt file, report sufficient-completeness,
                 consistency and the verification verdict (completeness /
                 termination / confluence)
     lint        run every ADTxxx lint rule; text, JSON-lines or SARIF
     testgen     run a spec's generated conformance suite against a
                 registered OCaml implementation (or the mutation corpus)
     skeletons   print the missing-axiom prompts (the paper's interactive
                 system)
     normalize   evaluate a term symbolically against a specification
     complete    run Knuth-Bendix completion on a specification
     compile     check a block-language program on a chosen symbol-table
                 backend
     run         compile and execute a block-language program
     verify-symboltable
                 replay the paper's representation-correctness proof
     serve       long-lived evaluation engine over stdio or a Unix socket
     batch       replay an engine request script deterministically
     trace       run one engine request and print its JSON span tree
     stats       engine metrics as a stats line or Prometheus exposition *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_library paths =
  List.fold_left
    (fun lib path ->
      match Adt.Library.load_source lib (read_file path) with
      | Ok lib -> lib
      | Error e ->
        Fmt.epr "%s:%a@." path Adt.Parser.pp_error e;
        exit 2)
    Adt.Library.builtin paths

let load_specs ?(lib = Adt.Library.builtin) path =
  let source = read_file path in
  match Adt.Parser.parse_specs ~env:(Adt.Library.to_env lib) source with
  | Ok [] ->
    Fmt.epr "%s: no specification found@." path;
    exit 2
  | Ok specs -> specs
  | Error e ->
    Fmt.epr "%s:%a@." path Adt.Parser.pp_error e;
    exit 2

let last_spec ?lib path = List.rev (load_specs ?lib path) |> List.hd

open Cmdliner

let lib_arg =
  Arg.(
    value & opt_all file []
    & info [ "lib" ] ~docv:"FILE"
        ~doc:
          "Load the specifications of $(docv) first; the target file's \
           $(b,uses) clauses may refer to them. Repeatable.")

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Specification file (.adt).")

let fuel_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N" ~doc:"Rewrite-step budget for this run.")

(* exit-code contract shared by check, lint and testgen, documented in
   their man pages: 0 clean, 1 findings, 2 parse error, plus cmdliner's
   defaults (124 command-line error, 125 internal error) *)
let analysis_exits =
  [
    Cmd.Exit.info 0
      ~doc:
        "on a clean result: sufficiently complete and consistent (check), \
         free of findings at or above the failure threshold (lint), every \
         suite passed — or, with $(b,--mutants), every mutant was killed \
         (testgen).";
    Cmd.Exit.info 1
      ~doc:
        "when findings were reported: check/lint findings, a failed \
         conformance suite, or a surviving mutant.";
    Cmd.Exit.info 2 ~doc:"on a parse error in a specification file.";
    Cmd.Exit.info Cmd.Exit.cli_error ~doc:"on command-line parsing errors.";
    Cmd.Exit.info Cmd.Exit.internal_error
      ~doc:"on unexpected internal errors (bugs).";
  ]

let check_cmd =
  let run libs file =
    let specs = load_specs ~lib:(load_library libs) file in
    let failures =
      List.fold_left
        (fun failures spec ->
          Fmt.pr "=== %s ===@." (Adt.Spec.name spec);
          let comp = Adt.Completeness.check spec in
          Fmt.pr "%a@." Adt.Completeness.pp_report comp;
          let cons = Adt.Consistency.check spec in
          Fmt.pr "%a@." Adt.Consistency.pp_report cons;
          (* the verification verdict: pattern-matrix sufficient
             completeness, RPO termination, critical-pair confluence *)
          let summary = Analysis.Verify.summarize spec in
          Fmt.pr "%s@." (Fmt.str "%a" Analysis.Verify.pp_summary summary);
          (* the static lint rules (ADT010..ADT014) and the verification
             rules (ADT020..ADT022) catch defects the two semantic reports
             above cannot: a full lint run is `adtc lint` *)
          let findings =
            Analysis.Lint.static spec @ Analysis.Lint.verify spec
          in
          List.iter
            (fun d -> Fmt.pr "%s@." (Analysis.Diagnostic.to_line d))
            findings;
          let lint_ok =
            not
              (List.exists
                 (fun d ->
                   d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
                 findings)
          in
          let ok =
            Adt.Completeness.is_complete comp
            && Adt.Consistency.is_consistent spec cons
            && lint_ok
          in
          Fmt.pr "@.";
          if ok then failures else failures + 1)
        0 specs
    in
    if failures > 0 then 1 else 0
  in
  let doc =
    "Check sufficient-completeness and consistency of specifications, with \
     a verification verdict (pattern-matrix completeness, RPO termination, \
     critical-pair confluence) plus the static ADTxxx lint rules; \
     error-severity findings fail the check."
  in
  Cmd.v
    (Cmd.info "check" ~doc ~exits:analysis_exits)
    Term.(const run $ lib_arg $ file_arg)

let lint_cmd =
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Lint every specification of the builtin library (the paper's \
             corpus) instead of files.")
  in
  let files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Specification files (.adt) to lint.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,text) (one human-readable line per finding \
             plus a summary), $(b,json) (one JSON object per finding per \
             line), or $(b,sarif) (a SARIF 2.1.0 log).")
  in
  let deny_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("error", Analysis.Diagnostic.Error);
               ("warning", Analysis.Diagnostic.Warning);
               ("info", Analysis.Diagnostic.Info);
             ])
          Analysis.Diagnostic.Error
      & info [ "deny" ] ~docv:"SEVERITY"
          ~doc:
            "Fail (exit 1) when a finding of at least this severity is \
             reported; $(b,error) by default, so warnings are advisory \
             unless $(b,--deny warning) is given.")
  in
  let rule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rule" ] ~docv:"CODE[,CODE]"
          ~doc:
            "Run only these comma-separated rule codes (e.g. \
             $(b,ADT001,ADT010)); all rules by default.")
  in
  let run libs all files format deny rules fuel =
    let only = Option.map (String.split_on_char ',') rules in
    let bad_codes =
      match only with
      | None -> []
      | Some codes ->
        List.filter
          (fun c -> not (List.mem c Analysis.Diagnostic.codes))
          codes
    in
    if bad_codes <> [] then begin
      Fmt.epr "adtc lint: unknown rule code%s %s (published: %s)@."
        (if List.length bad_codes > 1 then "s" else "")
        (String.concat ", " bad_codes)
        (String.concat ", " Analysis.Diagnostic.codes);
      Cmd.Exit.cli_error
    end
    else if (not all) && files = [] then begin
      Fmt.epr "adtc lint: expected --all or at least one FILE@.";
      Cmd.Exit.cli_error
    end
    else begin
      let config = { Analysis.Lint.only; fuel } in
      let groups =
        if all then
          List.map
            (fun spec ->
              ( "builtin/" ^ Adt.Spec.name spec,
                Analysis.Lint.run ~config spec ))
            Adt_specs.Corpus.all
        else
          let lib = load_library libs in
          List.concat_map
            (fun file ->
              List.map
                (fun spec -> (file, Analysis.Lint.run ~config spec))
                (load_specs ~lib file))
            files
      in
      (match format with
      | `Text -> print_endline (Analysis.Render.text groups)
      | `Json ->
        let body = Analysis.Render.json_lines groups in
        if not (String.equal body "") then print_endline body
      | `Sarif -> print_endline (Analysis.Render.sarif groups));
      let failing =
        List.exists
          (fun (_, diags) ->
            List.exists
              (fun d ->
                Analysis.Diagnostic.severity_at_least
                  d.Analysis.Diagnostic.severity ~threshold:deny)
              diags)
          groups
      in
      if failing then 1 else 0
    end
  in
  let doc =
    "Run every ADTxxx lint rule over specifications: the sufficient-\
     completeness and critical-pair analyses (ADT001, ADT002), the static \
     rules (non-left-linear axioms, free right-hand-side variables, dead \
     axioms, unreachable sorts, error-matching axioms), and the \
     verification passes (ADT020 pattern-matrix completeness, ADT021 RPO \
     termination, ADT022 critical-pair confluence)."
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~exits:analysis_exits)
    Term.(
      const run $ lib_arg $ all_flag $ files_arg $ format_arg $ deny_arg
      $ rule_arg $ fuel_opt)

(* minimal JSON rendering for --json output; mirrors the lint JSON-lines
   shape (one object per report per line) *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let testgen_cmd =
  let spec_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "Specification whose suite to run (e.g. $(b,Queue)); required \
             unless $(b,--all) or $(b,--list) is given.")
  in
  let impl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "impl" ] ~docv:"NAME"
          ~doc:
            "Registered implementation to test; the specification's first \
             clean implementation by default. $(b,--list) shows the \
             registry.")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Run the suites of every registered implementation.")
  in
  let mutants_flag =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:
            "Select the mutation corpus (seeded-bug variants) instead of \
             the clean implementations: the run succeeds only when every \
             selected mutant is $(i,killed) by its suite.")
  in
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the implementation registry and exit.")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Random trials per axiom.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Base random seed. Trial $(i,i) of every axiom derives its \
             state from $(docv)+$(i,i), so replaying a reported failure \
             seed regenerates the identical counterexample as trial 0. \
             Self-initialized (and printed) when absent.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"One JSON object per implementation report.")
  in
  let report_json r =
    let open Testgen.Harness in
    let witness_json = function
      | Denotation { lhs; rhs } ->
        Fmt.str "{\"kind\":\"denotation\",\"lhs\":%s,\"rhs\":%s}"
          (json_str (Adt.Term.to_string lhs))
          (json_str (Adt.Term.to_string rhs))
      | Observation { context; lhs; rhs } ->
        Fmt.str
          "{\"kind\":\"observation\",\"context\":%s,\"lhs\":%s,\"rhs\":%s}"
          (json_str (Adt.Term.to_string context))
          (json_str (Adt.Term.to_string lhs))
          (json_str (Adt.Term.to_string rhs))
      | Crash { message } ->
        Fmt.str "{\"kind\":\"crash\",\"message\":%s}" (json_str message)
    in
    let axiom_json ar =
      let failure =
        match ar.failure with
        | None -> "null"
        | Some f ->
          Fmt.str
            "{\"seed\":%d,\"shrunk\":%b,\"valuation\":%s,\"witness\":%s}"
            f.fail_seed f.shrunk
            (json_str
               (String.concat "; "
                  (List.map
                     (fun (x, t) ->
                       Fmt.str "%s -> %s" x (Adt.Term.to_string t))
                     (Adt.Subst.bindings f.valuation))))
            (witness_json f.witness)
      in
      Fmt.str
        "{\"axiom\":%s,\"trials\":%d,\"discards\":%d,\"failure\":%s}"
        (json_str (Adt.Axiom.name ar.axiom))
        ar.trials ar.discards failure
    in
    Fmt.str
      "{\"spec\":%s,\"impl\":%s,\"mutant_of\":%s,\"seed\":%d,\"count\":%d,\
       \"gen_size\":%d,\"passed\":%b,\"axioms\":[%s]}"
      (json_str r.spec_name) (json_str r.impl_name)
      (match r.mutant_of with None -> "null" | Some c -> json_str c)
      r.seed r.count r.gen_size (passed r)
      (String.concat "," (List.map axiom_json r.axiom_reports))
  in
  let run spec impl all mutants list count seed json =
    let registry_line e =
      Fmt.str "%-14s %-22s %s" (Testgen.Impl.spec_name e) (Testgen.Impl.name e)
        (match Testgen.Impl.mutant_of e with
        | None -> "clean"
        | Some c -> "mutant of " ^ c)
    in
    if list then begin
      List.iter
        (fun e -> print_endline (registry_line e))
        (Testgen.Registry.clean @ Testgen.Registry.mutants);
      0
    end
    else
      let selection =
        match (spec, impl, all) with
        | None, _, false ->
          Fmt.epr "adtc testgen: expected a SPEC name, --all or --list@.";
          Error Cmd.Exit.cli_error
        | Some _, Some _, true ->
          Fmt.epr "adtc testgen: --all conflicts with --impl@.";
          Error Cmd.Exit.cli_error
        | None, _, true | Some _, None, true ->
          Ok (if mutants then Testgen.Registry.mutants else Testgen.Registry.clean)
        | Some s, None, false -> (
          match Testgen.Registry.for_spec ~mutants s with
          | [] ->
            Fmt.epr
              "adtc testgen: no%s implementation is registered for %s \
               (have: %s)@."
              (if mutants then " mutant" else "")
              s
              (String.concat ", " (Testgen.Registry.spec_names ()));
            Error Cmd.Exit.cli_error
          | entries -> Ok (if mutants then entries else [ List.hd entries ]))
        | Some s, Some i, false -> (
          match Testgen.Registry.find ~spec:s ~impl:i with
          | Some e -> Ok [ e ]
          | None ->
            Fmt.epr
              "adtc testgen: no implementation named %s is registered for \
               %s (have: %s)@."
              i s
              (String.concat ", "
                 (List.map Testgen.Impl.name
                    (Testgen.Registry.for_spec s
                    @ Testgen.Registry.for_spec ~mutants:true s)));
            Error Cmd.Exit.cli_error)
      in
      match selection with
      | Error code -> code
      | Ok entries ->
        let seed =
          match seed with
          | Some s -> s
          | None ->
            Random.self_init ();
            let s = Random.bits () in
            if not json then
              Fmt.pr "(seed %d; pass --seed %d to reproduce this run)@." s s;
            s
        in
        let failed =
          List.fold_left
            (fun failed entry ->
              let report = Testgen.Harness.conformance ~count ~seed entry in
              if json then print_endline (report_json report)
              else Fmt.pr "%a@." Testgen.Harness.pp_report report;
              let expected =
                if Testgen.Impl.is_mutant entry then
                  Testgen.Harness.killed report
                else Testgen.Harness.passed report
              in
              if expected then failed else failed + 1)
            0 entries
        in
        if failed = 0 then 0 else 1
  in
  let doc =
    "Compile a specification's axioms into a conformance suite and run it \
     against a registered OCaml implementation: random well-sorted ground \
     terms instantiate each axiom, both sides are evaluated through the \
     implementation, and the results are compared observationally through \
     the specification's own operations (Gaudel-Le Gall style). Reported \
     failures carry a reproducing seed and a minimized counterexample; \
     with $(b,--mutants), success means every seeded-bug variant was \
     killed."
  in
  Cmd.v
    (Cmd.info "testgen" ~doc ~exits:analysis_exits)
    Term.(
      const run $ spec_arg $ impl_arg $ all_flag $ mutants_flag $ list_flag
      $ count_arg $ seed_arg $ json_flag)

let skeletons_cmd =
  let run libs file =
    let specs = load_specs ~lib:(load_library libs) file in
    List.iter
      (fun spec ->
        match Adt.Heuristics.prompts spec with
        | [] ->
          Fmt.pr "%s: no missing cases; the axiomatization is sufficiently complete.@."
            (Adt.Spec.name spec)
        | prompts ->
          Fmt.pr "=== %s: %d missing case(s) ===@." (Adt.Spec.name spec)
            (List.length prompts);
          List.iter (fun p -> Fmt.pr "%a@." Adt.Heuristics.pp_prompt p) prompts)
      specs;
    0
  in
  let doc = "Prompt for the axioms a sufficiently complete specification still needs." in
  Cmd.v (Cmd.info "skeletons" ~doc) Term.(const run $ lib_arg $ file_arg)

let term_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"TERM" ~doc:"Term to evaluate, in specification syntax.")

let trace_flag =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print every rewrite step.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print rewrite statistics (steps, fuel, cache counters when \
           memoized) after the normal form.")

let memo_flag =
  Arg.(
    value & flag
    & info [ "memo" ]
        ~doc:"Normalize through a bounded LRU normal-form cache.")

let engine_arg =
  let engines =
    Arg.enum
      [
        ("auto", Adt.Rewrite.Automaton);
        ("index", Adt.Rewrite.Index);
        ("reference", Adt.Rewrite.Reference);
      ]
  in
  Arg.(
    value
    & opt (some engines) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Matching engine: $(b,auto) (the compiled matching automaton, \
           the default), $(b,index) (the two-level rule index), or \
           $(b,reference) (the naive linear-scan oracle). All three \
           produce identical answers; also settable through the \
           $(b,ADTC_ENGINE) environment variable (the flag wins).")

let set_engine engine = Option.iter Adt.Rewrite.set_default_engine engine

let normalize_cmd =
  let run libs file term_src trace stats memo fuel engine =
    set_engine engine;
    let spec = last_spec ~lib:(load_library libs) file in
    match Adt.Parser.parse_term spec term_src with
    | Error e ->
      Fmt.epr "term:%a@." Adt.Parser.pp_error e;
      2
    | Ok term -> (
      let interp = Adt.Interp.create ?fuel ~memo spec in
      let print_stats steps =
        Fmt.pr "engine: %s@."
          (Adt.Rewrite.engine_name
             (Adt.Rewrite.engine_of (Adt.Interp.system interp)));
        Fmt.pr "steps: %d@." steps;
        Fmt.pr "fuel:  %d/%d used@." steps (Adt.Interp.fuel interp);
        match Adt.Interp.memo_stats interp with
        | None -> ()
        | Some s ->
          Fmt.pr "cache: hits=%d misses=%d entries=%d evictions=%d capacity=%d@."
            s.Adt.Interp.hits s.Adt.Interp.misses s.Adt.Interp.entries
            s.Adt.Interp.evictions s.Adt.Interp.capacity
      in
      try
        if trace then begin
          let nf, events = Adt.Interp.trace interp term in
          List.iter (fun e -> Fmt.pr "%a@." Adt.Rewrite.pp_event e) events;
          Fmt.pr "normal form: %a@." Adt.Term.pp nf;
          if stats then print_stats (List.length events)
        end
        else if Adt.Term.is_ground term then begin
          let value, steps = Adt.Interp.eval_count interp term in
          Fmt.pr "%a@." Adt.Interp.pp_value value;
          if stats then print_stats steps
        end
        else Fmt.pr "%a@." Adt.Term.pp (Adt.Interp.reduce interp term);
        0
      with Adt.Rewrite.Out_of_fuel partial ->
        Fmt.epr "diverged (out of fuel); last term: %a@." Adt.Term.pp partial;
        1)
  in
  let doc = "Evaluate a ground term symbolically (the paper's section-5 interpreter)." in
  Cmd.v
    (Cmd.info "normalize" ~doc)
    Term.(
      const run $ lib_arg $ file_arg $ term_arg $ trace_flag $ stats_flag
      $ memo_flag $ fuel_opt $ engine_arg)

let complete_cmd =
  let run libs file =
    let spec = last_spec ~lib:(load_library libs) file in
    let outcome, stats = Adt.Completion.complete_spec spec in
    Fmt.pr "%a@.%a@." Adt.Completion.pp_outcome outcome Adt.Completion.pp_stats
      stats;
    match outcome with
    | Adt.Completion.Completed sys ->
      List.iter
        (fun r -> Fmt.pr "  %a@." Adt.Rewrite.pp_rule r)
        (Adt.Rewrite.rules sys);
      0
    | Adt.Completion.Failed _ -> 1
  in
  let doc = "Run Knuth-Bendix completion on a specification's axioms." in
  Cmd.v (Cmd.info "complete" ~doc) Term.(const run $ lib_arg $ file_arg)

let prove_cmd =
  let vars_arg =
    Arg.(
      value & opt_all string []
      & info [ "var" ] ~docv:"NAME:SORT"
          ~doc:"Declare a universally quantified variable, e.g. --var q:Queue.")
  in
  let lhs_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"LHS" ~doc:"Left-hand side of the goal.")
  in
  let rhs_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"RHS" ~doc:"Right-hand side of the goal.")
  in
  let run libs file vars lhs_src rhs_src =
    let spec = last_spec ~lib:(load_library libs) file in
    let parse_var entry =
      match String.index_opt entry ':' with
      | Some i ->
        let name = String.sub entry 0 i in
        let sort = String.sub entry (i + 1) (String.length entry - i - 1) in
        (name, Adt.Sort.v sort)
      | None ->
        Fmt.epr "--var expects NAME:SORT, got %s@." entry;
        exit 2
    in
    let vars = List.map parse_var vars in
    let parse what src =
      match Adt.Parser.parse_term spec ~vars src with
      | Ok t -> t
      | Error e ->
        Fmt.epr "%s:%a@." what Adt.Parser.pp_error e;
        exit 2
    in
    let lhs = parse "lhs" lhs_src in
    let rhs = parse "rhs" rhs_src in
    let cfg = Adt.Proof.config spec in
    match Adt.Proof.prove cfg (lhs, rhs) with
    | Adt.Proof.Proved p ->
      Fmt.pr "PROVED:@.%a@." Adt.Proof.pp_proof p;
      0
    | Adt.Proof.Unknown _ as outcome ->
      Fmt.pr "%a@." Adt.Proof.pp_outcome outcome;
      (* try to settle it the other way: a small counterexample search *)
      let universe = Adt.Enum.universe spec in
      (match Adt.Proof.disprove cfg ~universe ~size:6 (lhs, rhs) with
      | Some (sub, got, expected) ->
        Fmt.pr "REFUTED at %a:@.  left ~> %a, right ~> %a@." Adt.Subst.pp sub
          Adt.Term.pp got Adt.Term.pp expected
      | None -> Fmt.pr "(no small counterexample found either)@.");
      1
  in
  let doc =
    "Prove an equation from a specification (normalization, case analysis, \
     generator induction); on failure, search for a counterexample."
  in
  Cmd.v
    (Cmd.info "prove" ~doc)
    Term.(const run $ lib_arg $ file_arg $ vars_arg $ lhs_arg $ rhs_arg)

let backend_conv =
  Arg.conv
    ( (fun s ->
        match Blocklang.Driver.backend_of_string s with
        | Some b -> Ok b
        | None -> Error (`Msg (Fmt.str "unknown backend %s" s))),
      fun ppf b -> Fmt.string ppf (Blocklang.Driver.backend_name b) )

let backend_arg =
  Arg.(
    value
    & opt backend_conv Blocklang.Driver.Direct
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"Symbol-table backend: direct, algebraic, or algebraic-knows.")

let program_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROGRAM" ~doc:"Block-language source file (.bl).")

let report_outcome outcome =
  Fmt.pr "%a@." Blocklang.Driver.pp_outcome outcome;
  match outcome with
  | Blocklang.Driver.Ran _ -> 0
  | Blocklang.Driver.Parse_error _ -> 2
  | Blocklang.Driver.Check_errors _ | Blocklang.Driver.Runtime_error _ -> 1

let compile_cmd =
  let run backend file =
    report_outcome (Blocklang.Driver.check_source backend (read_file file))
  in
  let doc = "Parse and check a block-language program." in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ backend_arg $ program_arg)

let run_cmd =
  let run backend file =
    report_outcome (Blocklang.Driver.run_source backend (read_file file))
  in
  let doc = "Check, compile, and execute a block-language program." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ backend_arg $ program_arg)

let verify_cmd =
  let proofs_flag =
    Arg.(
      value & flag
      & info [ "proofs" ] ~doc:"Print the full proof tree of every axiom.")
  in
  let run proofs =
    let term, got, expected = Adt_specs.Refinement.assumption_violation () in
    Fmt.pr
      "Assumption 1 (ADD' never sees the bare NEWSTACK) is necessary:@.  %a ~> %a, but axiom 9 expects %a@.@."
      Adt.Term.pp term Adt.Term.pp got Adt.Term.pp expected;
    let ((_, details) as results) = Adt_specs.Refinement.verify () in
    Fmt.pr "%a@." Adt_specs.Refinement.pp_results results;
    if proofs then
      List.iter
        (fun r ->
          let lhs, rhs = r.Adt_specs.Refinement.goal in
          Fmt.pr "@.axiom %s: %a = %a@.%a@." r.Adt_specs.Refinement.axiom_name
            Adt.Term.pp lhs Adt.Term.pp rhs Adt.Proof.pp_outcome
            r.Adt_specs.Refinement.outcome)
        details;
    if Adt_specs.Refinement.all_proved results then 0 else 1
  in
  let doc =
    "Mechanically verify the stack-of-arrays representation of Symboltable \
     (the paper's section-4 proof)."
  in
  Cmd.v (Cmd.info "verify-symboltable" ~doc) Term.(const run $ proofs_flag)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent on-disk result store: normal forms, check/lint \
           payloads and testgen verdicts are keyed by specification \
           content digest, loaded when the session starts (the warm \
           restart) and written back as the session runs. A second live \
           session on the same directory falls back to read-only.")

let cache_max_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Bound the cache directory: after each write, the oldest entry \
           files are deleted until the total size fits $(docv).")

let open_store ?max_bytes dir =
  match Persist.Store.open_ ?max_bytes dir with
  | store -> store
  | exception Failure message ->
    Fmt.epr "adtc: %s@." message;
    exit 2

let hash_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "One JSON object per specification, with the signature digest \
             and per-axiom equation digests.")
  in
  let run libs file json =
    let specs = load_specs ~lib:(load_library libs) file in
    List.iter
      (fun spec ->
        if json then
          Fmt.pr "{\"spec\":%s,\"digest\":%s,\"signature\":%s,\"axioms\":[%s]}@."
            (json_str (Adt.Spec.name spec))
            (json_str (Adt.Spec_digest.spec spec))
            (json_str (Adt.Spec_digest.signature_digest spec))
            (String.concat ","
               (List.map
                  (fun (name, digest) ->
                    Fmt.str "{\"axiom\":%s,\"digest\":%s}" (json_str name)
                      (json_str digest))
                  (Adt.Spec_digest.axioms spec)))
        else Fmt.pr "%s  %s@." (Adt.Spec_digest.spec spec) (Adt.Spec.name spec))
      specs;
    0
  in
  let doc =
    "Print each specification's canonical content digest — the key the \
     persistent result store files entries under. The digest covers the \
     elaborated signature and axioms, so whitespace, comments and axiom \
     names (or an equivalent $(b,uses) refactoring) do not change it, \
     while any semantic edit does."
  in
  Cmd.v (Cmd.info "hash" ~doc) Term.(const run $ lib_arg $ file_arg $ json_flag)

let cache_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0
          (some (enum [ ("stats", `Stats); ("gc", `Gc); ("clear", `Clear) ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,stats) reports entry count and bytes; $(b,gc) deletes \
             oldest entries until the store fits $(b,--cache-max-bytes); \
             $(b,clear) deletes every entry.")
  in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"The store directory.")
  in
  let run action dir max_bytes =
    let store = open_store ?max_bytes dir in
    Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
    match action with
    | `Stats ->
      let s = Persist.Store.stats store in
      Fmt.pr "dir=%s files=%d bytes=%d corrupt=%d mode=%s@."
        (Persist.Store.dir store) s.Persist.Store.files s.Persist.Store.bytes
        (Persist.Store.corrupt_count store)
        (match Persist.Store.mode store with
        | Persist.Store.Read_write -> "read-write"
        | Persist.Store.Read_only -> "read-only");
      0
    | `Gc -> (
      match max_bytes with
      | None ->
        Fmt.epr "adtc cache gc: --cache-max-bytes is required@.";
        Cmd.Exit.cli_error
      | Some _ ->
        let removed = Persist.Store.gc store in
        let s = Persist.Store.stats store in
        Fmt.pr "removed=%d files=%d bytes=%d@." removed s.Persist.Store.files
          s.Persist.Store.bytes;
        0)
    | `Clear ->
      let removed = Persist.Store.clear store in
      Fmt.pr "removed=%d@." removed;
      0
  in
  let doc =
    "Administer a persistent result store directory ($(b,--cache-dir)): \
     report its size, garbage-collect it down to a byte bound, or empty \
     it. Entries are self-validating, so deleting any of them is always \
     safe — the next session just recomputes."
  in
  Cmd.v
    (Cmd.info "cache" ~doc)
    Term.(const run $ action_arg $ dir_arg $ cache_max_bytes_arg)

let session_cmd =
  let edits_arg =
    Arg.(
      value & opt_all file []
      & info [ "edit" ] ~docv:"FILE"
          ~doc:
            "Apply $(docv)'s source as the next version of the document; \
             repeatable, applied in order.")
  in
  let obligations_flag =
    Arg.(
      value & flag
      & info [ "obligations" ]
          ~doc:"Print one verdict line per axiom obligation after each step.")
  in
  let run libs file edits obligations fuel =
    let lib = load_library libs in
    let env = Adt.Library.to_env lib in
    let mgr = Docsession.Manager.create ~env ?fuel () in
    let print_doc verb (doc : Docsession.Manager.doc) =
      let s = doc.Docsession.Manager.summary in
      Fmt.pr
        "%s %s version=%d axioms=%d sig_changed=%b changed=%d cone=%d \
         checked=%d reused=%d digest=%s@."
        verb doc.Docsession.Manager.name s.Docsession.Manager.version
        s.Docsession.Manager.axioms s.Docsession.Manager.sig_changed
        s.Docsession.Manager.changed s.Docsession.Manager.cone
        s.Docsession.Manager.checked s.Docsession.Manager.reused
        doc.Docsession.Manager.digest;
      if obligations then
        List.iter
          (fun (o : Docsession.Manager.oblig) ->
            Fmt.pr "  axiom %s status=%s steps=%d findings=%d source=%s@."
              (if String.equal o.Docsession.Manager.axiom_name "" then "-"
               else o.Docsession.Manager.axiom_name)
              (Docsession.Manager.status_name o.Docsession.Manager.status)
              o.Docsession.Manager.steps o.Docsession.Manager.findings
              (if o.Docsession.Manager.reused then "reused" else "checked"))
          doc.Docsession.Manager.obligations
    in
    let source = read_file file in
    match Adt.Parser.parse_spec ~env source with
    | Error e ->
      Fmt.epr "%s:%a@." file Adt.Parser.pp_error e;
      2
    | Ok spec -> (
      let name = Adt.Spec.name spec in
      match Docsession.Manager.open_doc mgr ~name ~source with
      | Error e ->
        Fmt.epr "adtc session: %s@." e;
        2
      | Ok doc ->
        print_doc "open" doc;
        let rec apply = function
          | [] -> 0
          | edit :: rest -> (
            match Docsession.Manager.edit mgr ~name ~source:(read_file edit) with
            | Error e ->
              Fmt.epr "adtc session (%s): %s@." edit e;
              1
            | Ok doc ->
              print_doc "edit" doc;
              apply rest)
        in
        apply edits)
  in
  let doc =
    "Replay a document session offline: open the specification, then apply \
     each $(b,--edit) in order, printing how much of the obligation set \
     each edit actually re-checked — the O(edit) incremental story of the \
     engine's $(b,session-open)/$(b,session-edit) verbs, without a server."
  in
  Cmd.v
    (Cmd.info "session" ~doc)
    Term.(
      const run $ lib_arg $ file_arg $ edits_arg $ obligations_flag $ fuel_opt)

(* {1 The evaluation engine: serve and batch} *)

let spec_files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Specification files (.adt) to load into the engine's library. \
           Every specification of every file is served by name.")

let engine_fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Per-request rewrite-step ceiling (a request's own fuel=N option \
           may lower it, never raise it).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Per-request wall-clock budget; unlimited when absent.")

let cache_capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "Capacity of each specification's shared LRU normal-form cache \
           (least recently used normal forms are evicted).")

let slowlog_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slowlog-ms" ] ~docv:"MS"
        ~doc:
          "Record requests at least $(docv) milliseconds slow into a \
           bounded ring log (query it with the $(b,slowlog) verb); also \
           switches request tracing on, so entries carry a span \
           breakdown. 0 records everything.")

let slowlog_capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "slowlog-capacity" ] ~docv:"N"
        ~doc:
          "Ring capacity of the slow-request log; the oldest entry is \
           overwritten first.")

let make_session ?tracing ?slowlog_ms ?slowlog_capacity ?cache_dir
    ?cache_max_bytes libs files ~fuel ~timeout ~cache_capacity =
  let lib = load_library (libs @ files) in
  let store =
    Option.map (fun dir -> open_store ?max_bytes:cache_max_bytes dir) cache_dir
  in
  Engine.Session.create ?fuel ?timeout ?cache_capacity ?slowlog_ms
    ?slowlog_capacity ?tracing ?store
    ~env:(Adt.Library.to_env lib)
    (Adt.Library.specs lib)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket instead of serving the \
             stdio pipe; each connection is served by its own thread and \
             all connections share one session (one cache, one set of \
             metrics).")
  in
  let max_clients_arg =
    Arg.(
      value
      & opt int Engine.Server.default_max_clients
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "Maximum concurrent socket connections; a connection beyond \
             the cap is answered $(b,error busy) and closed (only \
             meaningful with $(b,--socket)).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Size of the accept/worker domain pool (default: one per \
             core). Each domain runs its own accept loop and worker \
             threads; admission control and drain stay global (only \
             meaningful with $(b,--socket)).")
  in
  let run libs files fuel timeout cache_capacity slowlog_ms slowlog_capacity
      cache_dir cache_max_bytes socket max_clients domains engine =
    set_engine engine;
    let session =
      make_session ?slowlog_ms ?slowlog_capacity ?cache_dir ?cache_max_bytes
        libs files ~fuel ~timeout ~cache_capacity
    in
    match socket with
    | Some path -> (
      let domains =
        Option.value ~default:(Domain.recommended_domain_count ()) domains
      in
      try
        Engine.Server.serve_socket ~max_clients ~domains session ~path;
        0
      with Failure message | Invalid_argument message ->
        Fmt.epr "adtc serve: %s@." message;
        2)
    | None ->
      Engine.Server.serve session stdin stdout;
      0
  in
  let doc =
    "Serve normalize/check/skeletons/prove/stats/metrics/slowlog requests \
     over a line-oriented protocol, with a shared bounded normal-form \
     cache, per-request limits, optional tracing and slow-request \
     logging ($(b,--slowlog-ms)), and (over a socket) a domain pool \
     ($(b,--domains), one per core by default) each accepting and serving \
     its own connections, graceful SIGINT/SIGTERM drain, and busy \
     backpressure beyond $(b,--max-clients)."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ lib_arg $ spec_files_arg $ engine_fuel_arg $ timeout_arg
      $ cache_capacity_arg $ slowlog_ms_arg $ slowlog_capacity_arg
      $ cache_dir_arg $ cache_max_bytes_arg $ socket_arg $ max_clients_arg
      $ domains_arg $ engine_arg)

let batch_cmd =
  let requests_arg =
    Arg.(
      value & opt string "-"
      & info [ "requests" ] ~docv:"FILE"
          ~doc:"Request script to replay; $(b,-) (the default) is stdin.")
  in
  let run libs files fuel timeout cache_capacity slowlog_ms slowlog_capacity
      cache_dir cache_max_bytes requests engine =
    set_engine engine;
    let session =
      make_session ?slowlog_ms ?slowlog_capacity ?cache_dir ?cache_max_bytes
        libs files ~fuel ~timeout ~cache_capacity
    in
    let ic = if String.equal requests "-" then stdin else open_in requests in
    Fun.protect
      ~finally:(fun () -> if not (String.equal requests "-") then close_in_noerr ic)
      (fun () -> Engine.Server.serve ~echo:true session ic stdout);
    0
  in
  let doc =
    "Replay an engine request script deterministically, echoing each \
     request above its response (the expect-test front end of the engine)."
  in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(
      const run $ lib_arg $ spec_files_arg $ engine_fuel_arg $ timeout_arg
      $ cache_capacity_arg $ slowlog_ms_arg $ slowlog_capacity_arg
      $ cache_dir_arg $ cache_max_bytes_arg $ requests_arg $ engine_arg)

let replay_requests session path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          ignore (Engine.Dispatch.handle_line session (input_line ic))
        done
      with End_of_file -> ())

let engine_trace_cmd =
  let request_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "request" ] ~docv:"LINE"
          ~doc:
            "The protocol request line to trace, e.g. $(b,normalize Queue \
             FRONT(ADDQ(NEWQ,A))).")
  in
  let run libs files fuel timeout cache_capacity request =
    let session =
      make_session ~tracing:true libs files ~fuel ~timeout ~cache_capacity
    in
    let outcome, result = Engine.Dispatch.handle_line_obs session request in
    match outcome with
    | Engine.Dispatch.Silent ->
      Fmt.epr "adtc trace: nothing to trace in a blank or comment line@.";
      2
    | Engine.Dispatch.Reply _ | Engine.Dispatch.Closed ->
      (match outcome with
      | Engine.Dispatch.Reply line -> print_endline line
      | _ -> print_endline "ok bye");
      (match result with
      | Some r ->
        print_endline
          (Obs.Trace.result_to_json ~meta:[ ("request", request) ] r)
      | None -> ());
      0
  in
  let doc =
    "Trace one engine request: print its response line, then a JSON span \
     tree (parse/dispatch/rewrite/respond timings, per-rule rewrite-step \
     attribution). The tree's step total equals the fuel the request \
     charged."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run $ lib_arg $ spec_files_arg $ engine_fuel_arg $ timeout_arg
      $ cache_capacity_arg $ request_arg)

let engine_stats_cmd =
  let prometheus_flag =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "Print the full Prometheus text exposition (counters, latency \
             and fuel histograms, cache gauges) instead of the one-line \
             stats payload.")
  in
  let requests_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "requests" ] ~docv:"FILE"
          ~doc:
            "Replay this request script first (responses discarded), so \
             the report covers real traffic rather than an idle session.")
  in
  let run libs files fuel timeout cache_capacity slowlog_ms slowlog_capacity
      cache_dir cache_max_bytes requests prometheus =
    let session =
      make_session ?slowlog_ms ?slowlog_capacity ?cache_dir ?cache_max_bytes
        libs files ~fuel ~timeout ~cache_capacity
    in
    Option.iter (replay_requests session) requests;
    (* stats is often the whole process: make the replay's results durable *)
    Engine.Session.persist_flush session;
    if prometheus then begin
      print_string (Engine.Session.prometheus session);
      0
    end
    else
      match
        Engine.Dispatch.handle_request session
          (Engine.Protocol.Stats { verbose = false })
      with
      | Engine.Protocol.Ok_response payload ->
        print_endline payload;
        0
      | Engine.Protocol.Error_response { code; message } ->
        Fmt.epr "adtc stats: %s %s@." code message;
        1
  in
  let doc =
    "Report an engine session's metrics — optionally after replaying a \
     request script — as the stats payload or a Prometheus text \
     exposition ($(b,--prometheus))."
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(
      const run $ lib_arg $ spec_files_arg $ engine_fuel_arg $ timeout_arg
      $ cache_capacity_arg $ slowlog_ms_arg $ slowlog_capacity_arg
      $ cache_dir_arg $ cache_max_bytes_arg $ requests_arg $ prometheus_flag)

let main =
  let doc = "algebraic specification of abstract data types (Guttag, CACM 1977)" in
  Cmd.group
    (Cmd.info "adtc" ~version:"1.0.0" ~doc)
    [
      check_cmd;
      lint_cmd;
      testgen_cmd;
      skeletons_cmd;
      normalize_cmd;
      complete_cmd;
      prove_cmd;
      compile_cmd;
      run_cmd;
      verify_cmd;
      hash_cmd;
      cache_cmd;
      session_cmd;
      serve_cmd;
      batch_cmd;
      engine_trace_cmd;
      engine_stats_cmd;
    ]

let () = exit (Cmd.eval' main)
