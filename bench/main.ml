(* Benchmark harness: one section per experiment of DESIGN.md / EXPERIMENTS.md.

   The paper (Guttag, CACM 1977) has no quantitative tables; its measurable
   claims and exhibited artifacts are reproduced here as experiments E1-E18.
   Sections print the artifact reproductions (the ring-buffer figures, the
   mechanical proof, the prompting transcript, the axiom diff) and time the
   claims that are about cost (symbolic interpretation overhead,
   representation trade-offs, checker scaling, engine cache warmth).

     dune exec bench/main.exe                          # human-readable
     dune exec bench/main.exe -- --json results.json   # + machine-readable *)

open Bechamel
open Toolkit
open Adt
open Adt_specs

let item = Builtins.item

(* {1 Harness} *)

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]

let instance = Instance.monotonic_clock

let run_tests ?(stabilize = false) tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ~stabilize ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" tests) in
  Analyze.all ols instance raw

let pretty_ns ns =
  if ns >= 1e9 then Fmt.str "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Fmt.str "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Fmt.str "%8.2f us" (ns /. 1e3)
  else Fmt.str "%8.2f ns" ns

(* accumulated rows for --json: (bench name, ns/op), in report order *)
let json_rows : (string * float) list ref = ref []

let report_group ?stabilize title tests =
  Fmt.pr "@.--- %s ---@." title;
  let results = run_tests ?stabilize tests in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, estimate) :: acc)
      results []
  in
  let clean name =
    if String.length name > 0 && name.[0] = '/' then
      String.sub name 1 (String.length name - 1)
    else name
  in
  let rows =
    List.map (fun (name, ns) -> (clean name, ns))
      (List.sort (fun (a, _) (b, _) -> compare a b) rows)
  in
  json_rows := !json_rows @ rows;
  List.iter
    (fun (name, ns) -> Fmt.pr "  %-46s %s/op@." name (pretty_ns ns))
    rows

(* machine-readable results, so the perf trajectory can be tracked across
   revisions: [{"experiment": "e1", "name": "...", "ns_per_op": 123.4}] *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let experiment_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> name

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc
            "  {\"experiment\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %.2f}%s\n"
            (json_escape (experiment_of name))
            (json_escape name)
            (if Float.is_nan ns then -1. else ns)
            (if i = List.length !json_rows - 1 then "" else ","))
        !json_rows;
      output_string oc "]\n");
  Fmt.pr "wrote %d results to %s@." (List.length !json_rows) path

let t name f = Test.make ~name (Staged.stage f)

let seconds f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* {1 E1 - the cost of symbolic interpretation (section 5)} *)

let queue_interp = Interp.create Queue_spec.spec

let symbolic_queue_workload_on interp n () =
  let q = Queue_spec.of_items (List.init n (fun i -> item ((i mod 4) + 1))) in
  let rec drain q k acc =
    if k = 0 then acc
    else
      let f = Interp.eval interp (Queue_spec.front q) in
      let q' =
        match Interp.eval interp (Queue_spec.remove q) with
        | Interp.Value t -> t
        | _ -> assert false
      in
      drain q' (k - 1) (match f with Interp.Value _ -> acc + 1 | _ -> acc)
  in
  drain q n 0

let symbolic_queue_workload n () = symbolic_queue_workload_on queue_interp n ()

(* ablation: the same workload through a memoizing interpreter session
   (each run gets a fresh memo so runs stay independent) *)
let memo_queue_workload n () =
  let interp = Interp.create ~memo:true Queue_spec.spec in
  symbolic_queue_workload_on interp n ()

let direct_queue_workload n () =
  let q = List.fold_left Queue_impl.add Queue_impl.empty
      (List.init n (fun i -> item ((i mod 4) + 1)))
  in
  let rec drain q k acc =
    if k = 0 then acc
    else
      let _ = Queue_impl.front q in
      drain (Queue_impl.remove q) (k - 1) (acc + 1)
  in
  drain q n 0

let symtab_ids = [ "X"; "Y"; "Z"; "W" ]

let symbolic_symtab_workload depth () =
  let interp = Interp.create Symboltable_spec.spec in
  let rec build t d =
    if d = 0 then t
    else
      let t =
        List.fold_left
          (fun t name ->
            Symboltable_spec.add t (Identifier.id name) (Attributes.attrs 1))
          (Symboltable_spec.enterblock t) symtab_ids
      in
      build t (d - 1)
  in
  let table = build Symboltable_spec.init depth in
  List.fold_left
    (fun acc name ->
      match
        Interp.eval interp
          (Symboltable_spec.retrieve table (Identifier.id name))
      with
      | Interp.Value _ -> acc + 1
      | _ -> acc)
    0 symtab_ids

let direct_symtab_workload depth () =
  let module I = Symboltable_impl.Hash in
  let rec build t d =
    if d = 0 then t
    else
      let t =
        List.fold_left
          (fun t name -> I.add t (Identifier.id name) (Attributes.attrs 1))
          (I.enterblock t) symtab_ids
      in
      build t (d - 1)
  in
  let table = build (I.init ()) depth in
  List.fold_left
    (fun acc name ->
      match I.retrieve table (Identifier.id name) with
      | Some _ -> acc + 1
      | None -> acc)
    0 symtab_ids

(* reuse-heavy workload for the memo ablation: many repeated queries
   against one fixed symbol table *)
let repeated_retrieves_workload ~memo () =
  let interp = Interp.create ~memo Symboltable_spec.spec in
  let table =
    let rec build t d =
      if d = 0 then t
      else
        build
          (List.fold_left
             (fun t name ->
               Symboltable_spec.add t (Identifier.id name) (Attributes.attrs 1))
             (Symboltable_spec.enterblock t) symtab_ids)
          (d - 1)
    in
    build Symboltable_spec.init 6
  in
  let hits = ref 0 in
  for _ = 1 to 25 do
    List.iter
      (fun name ->
        match
          Interp.eval interp
            (Symboltable_spec.retrieve table (Identifier.id name))
        with
        | Interp.Value _ -> incr hits
        | _ -> ())
      symtab_ids
  done;
  !hits

let e1 () =
  Fmt.pr "@.=== E1: symbolic interpretation vs direct implementation ===@.";
  Fmt.pr "(the paper concedes a 'significant loss in efficiency'; measure it)@.";
  report_group "Queue: fill n, then drain n (FIFO traversal)"
    [
      t "e1/queue/symbolic/n=04" (symbolic_queue_workload 4);
      t "e1/queue/direct___/n=04" (direct_queue_workload 4);
      t "e1/queue/symbolic/n=16" (symbolic_queue_workload 16);
      t "e1/queue/direct___/n=16" (direct_queue_workload 16);
      t "e1/queue/symbolic/n=48" (symbolic_queue_workload 48);
      t "e1/queue/direct___/n=48" (direct_queue_workload 48);
      t "e1/queue/memoized_/n=16" (memo_queue_workload 16);
      t "e1/queue/memoized_/n=48" (memo_queue_workload 48);
    ];
  report_group "Symboltable: d nested blocks of 4 declarations, 4 retrieves"
    [
      t "e1/symtab/symbolic/depth=2" (symbolic_symtab_workload 2);
      t "e1/symtab/direct___/depth=2" (direct_symtab_workload 2);
      t "e1/symtab/symbolic/depth=6" (symbolic_symtab_workload 6);
      t "e1/symtab/direct___/depth=6" (direct_symtab_workload 6);
    ];
  report_group
    "ablation: memoized rewriting (25 repeated retrieve rounds, one table)"
    [
      t "e1/retrieves/plain___" (repeated_retrieves_workload ~memo:false);
      t "e1/retrieves/memoized" (repeated_retrieves_workload ~memo:true);
    ]

(* {1 E2 - the ring-buffer figures: Phi is many-to-one (section 4)} *)

let e2 () =
  Fmt.pr "@.=== E2: the bounded-queue figures (Phi has no proper inverse) ===@.";
  let x1 =
    Bounded_queue_impl.(
      empty |> Fun.flip add (item 1) |> Fun.flip add (item 2)
      |> Fun.flip add (item 3) |> remove |> Fun.flip add (item 4))
  in
  let x2 =
    Bounded_queue_impl.(
      empty |> Fun.flip add (item 2) |> Fun.flip add (item 3)
      |> Fun.flip add (item 4))
  in
  Fmt.pr "figure 1 state (ADD A,B,C; REMOVE; ADD D): %a@."
    Bounded_queue_impl.pp_state x1;
  Fmt.pr "figure 2 state (ADD B,C,D):                %a@."
    Bounded_queue_impl.pp_state x2;
  Fmt.pr "states equal: %b; Phi images equal: %b (%a)@."
    (Bounded_queue_impl.state_equal x1 x2)
    (Term.equal
       (Bounded_queue_impl.abstraction x1)
       (Bounded_queue_impl.abstraction x2))
    Term.pp
    (Bounded_queue_impl.abstraction x1);
  let interp = Interp.create Bounded_queue_spec.spec in
  let seg1 =
    Bounded_queue_spec.(add_q (remove_q (of_items [ item 1; item 2; item 3 ])) (item 4))
  in
  report_group "cost of Phi and of symbolic evaluation"
    [
      t "e2/phi/ring-buffer" (fun () -> Bounded_queue_impl.abstraction x1);
      t "e2/symbolic/segment-1" (fun () -> Interp.eval interp seg1);
      t "e2/direct__/segment-1" (fun () ->
          Bounded_queue_impl.(
            empty |> Fun.flip add (item 1) |> Fun.flip add (item 2)
            |> Fun.flip add (item 3) |> remove |> Fun.flip add (item 4)));
    ]

(* {1 E3 - the mechanical representation proof (section 4)} *)

let e3 () =
  Fmt.pr "@.=== E3: Symboltable-as-Stack-of-Arrays, verified mechanically ===@.";
  let term, got, expected = Refinement.assumption_violation () in
  Fmt.pr "Assumption 1 is necessary: %a ~> %a (axiom 9 expects %a)@." Term.pp
    term Term.pp got Term.pp expected;
  let results, elapsed = seconds Refinement.verify in
  Fmt.pr "%a@." Refinement.pp_results results;
  Fmt.pr "all proved: %b in %.1f ms@."
    (Refinement.all_proved results)
    (elapsed *. 1000.);
  Fmt.pr "@.second representation, same method (Array as a pair list):@.";
  let list_results = Array_as_list.verify () in
  Fmt.pr "%a@.all proved: %b (no reachability invariant needed)@."
    Array_as_list.pp_results list_results
    (Array_as_list.all_proved list_results);
  report_group "proof costs"
    [
      t "e3/lemma-nonempty" (fun () ->
          Proof.prove_axiom (Refinement.base_config ()) Refinement.nonempty_lemma);
      t "e3/verify-all-nine-axioms" (fun () -> Refinement.verify ());
      t "e3/verify-array-as-list" (fun () -> Array_as_list.verify ());
    ]

(* {1 E4 - sufficient-completeness checking (section 3)} *)

let e4 () =
  Fmt.pr "@.=== E4: sufficient-completeness checking and prompting ===@.";
  let broken =
    Spec.without_axiom "3" (Spec.without_axiom "5" Queue_spec.spec)
  in
  Fmt.pr "transcript on a Queue missing its boundary axioms:@.";
  List.iter
    (fun p -> Fmt.pr "  %a@." Heuristics.pp_prompt p)
    (Heuristics.prompts broken);
  let scaled n = Identifier.spec_with_atoms (List.init n (fun i -> Fmt.str "A%d" i)) in
  let scaled8 = scaled 8 and scaled16 = scaled 16 and scaled32 = scaled 32 in
  report_group "checker cost vs specification size"
    [
      t "e4/check/queue-6-axioms" (fun () -> Completeness.check Queue_spec.spec);
      t "e4/check/symboltable" (fun () ->
          Completeness.check Symboltable_spec.spec);
      t "e4/check/refinement" (fun () ->
          Completeness.check Refinement.combined);
      t "e4/check/identifier-08-atoms" (fun () -> Completeness.check scaled8);
      t "e4/check/identifier-16-atoms" (fun () -> Completeness.check scaled16);
      t "e4/check/identifier-32-atoms" (fun () -> Completeness.check scaled32);
    ]

(* {1 E5 - consistency: critical pairs and completion (section 3)} *)

let e5 () =
  Fmt.pr "@.=== E5: consistency checking and Knuth-Bendix completion ===@.";
  let report = Consistency.check Queue_spec.spec in
  Fmt.pr "Queue: %d critical pair(s); locally confluent: %b; consistent: %b@."
    (List.length report.Consistency.pairs)
    (Consistency.locally_confluent report)
    (Consistency.is_consistent Queue_spec.spec report);
  let q = Term.var "q" Queue_spec.sort
  and i = Term.var "i" Builtins.item_sort in
  let evil =
    Axiom.v ~name:"evil"
      ~lhs:(Queue_spec.is_empty (Queue_spec.add q i))
      ~rhs:Term.tt ()
  in
  let bad = Spec.with_axioms [ evil ] Queue_spec.spec in
  let bad_report = Consistency.check bad in
  (match Consistency.inconsistencies bad bad_report with
  | (_, a, b) :: _ ->
    Fmt.pr "seeded contradiction detected: derived %a = %a@." Term.pp a Term.pp b
  | [] -> Fmt.pr "seeded contradiction NOT detected (bug!)@.");
  report_group "critical pairs and completion"
    [
      t "e5/critical-pairs/queue" (fun () -> Consistency.check Queue_spec.spec);
      t "e5/critical-pairs/symboltable" (fun () ->
          Consistency.check Symboltable_spec.spec);
      t "e5/completion/queue" (fun () -> Completion.complete_spec Queue_spec.spec);
      t "e5/completion/symboltable" (fun () ->
          Completion.complete_spec Symboltable_spec.spec);
    ]

(* {1 E6 - delaying the representation choice (section 5)} *)

let e6_workload (module I : Symboltable_impl.S) ids () =
  let table =
    List.fold_left
      (fun (t, k) id ->
        let t = if k mod 8 = 0 then I.enterblock t else t in
        (I.add t id (Attributes.attrs 1), k + 1))
      (I.init (), 1)
      ids
    |> fst
  in
  List.fold_left
    (fun acc id -> match I.retrieve table id with Some _ -> acc + 1 | None -> acc)
    0 ids

let e6 () =
  Fmt.pr "@.=== E6: hash-table vs association-list arrays ===@.";
  let ids n =
    let identifier = Identifier.spec_with_atoms (List.init n (fun i -> Fmt.str "V%d" i)) in
    Identifier.atom_terms identifier
  in
  let small = ids 8 and medium = ids 64 and large = ids 256 in
  report_group "declare n identifiers (blocks of 8), retrieve all n"
    [
      t "e6/assoc/n=008" (e6_workload (module Symboltable_impl.Assoc) small);
      t "e6/hash_/n=008" (e6_workload (module Symboltable_impl.Hash) small);
      t "e6/assoc/n=064" (e6_workload (module Symboltable_impl.Assoc) medium);
      t "e6/hash_/n=064" (e6_workload (module Symboltable_impl.Hash) medium);
      t "e6/assoc/n=256" (e6_workload (module Symboltable_impl.Assoc) large);
      t "e6/hash_/n=256" (e6_workload (module Symboltable_impl.Hash) large);
    ]

(* {1 E7 - the knows-list change (section 4)} *)

let e7 () =
  Fmt.pr "@.=== E7: the knows-list language change ===@.";
  let changed, kept = Symboltable_knows_spec.changed_axioms () in
  let head_is_symboltable ax =
    let head = Axiom.head ax in
    List.exists
      (Sort.equal Symboltable_spec.sort)
      (Op.result head :: Op.args head)
  in
  let changed_st = List.filter head_is_symboltable changed in
  Fmt.pr "Symboltable axioms changed (%d):@." (List.length changed_st);
  List.iter (fun ax -> Fmt.pr "  %a@." Axiom.pp ax) changed_st;
  Fmt.pr "Symboltable axioms kept verbatim: %d@."
    (List.length (List.filter head_is_symboltable kept));
  let mentions_enterblock ax =
    Term.count_op "ENTERBLOCK" (Axiom.lhs ax)
    + Term.count_op "ENTERBLOCK" (Axiom.rhs ax)
    > 0
  in
  Fmt.pr "every changed axiom mentions ENTERBLOCK: %b (the paper's claim)@."
    (List.for_all mentions_enterblock changed_st)

(* {1 E8 - interchangeable symbol tables in the compiler (section 5)} *)

let block_program n =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "begin\n  decl g : int;\n  g := 1;\n";
  for i = 1 to n do
    Buffer.add_string buf
      (Fmt.str
         "begin decl a%d : int; decl b%d : int; a%d := g + %d; b%d := a%d * 2; print b%d;\n"
         i i i i i i i)
  done;
  for _ = 1 to n do
    Buffer.add_string buf "end;\n"
  done;
  Buffer.add_string buf "  print g\nend\n";
  Buffer.contents buf

let e8 () =
  Fmt.pr "@.=== E8: one checker, interchangeable symbol-table backends ===@.";
  let program = block_program 3 in
  List.iter
    (fun backend ->
      Fmt.pr "backend %-16s: %a@."
        (Blocklang.Driver.backend_name backend)
        Blocklang.Driver.pp_outcome
        (Blocklang.Driver.run_source backend program))
    Blocklang.Driver.all_backends;
  let p4 = block_program 4 and p12 = block_program 12 in
  report_group "checker cost per backend (n nested blocks)"
    [
      t "e8/direct/n=04" (fun () ->
          Blocklang.Driver.check_source Blocklang.Driver.Direct p4);
      t "e8/algebraic/n=04" (fun () ->
          Blocklang.Driver.check_source Blocklang.Driver.Algebraic p4);
      t "e8/algebraic-knows/n=04" (fun () ->
          Blocklang.Driver.check_source Blocklang.Driver.Algebraic_knows p4);
      t "e8/direct/n=12" (fun () ->
          Blocklang.Driver.check_source Blocklang.Driver.Direct p12);
      t "e8/algebraic/n=12" (fun () ->
          Blocklang.Driver.check_source Blocklang.Driver.Algebraic p12);
    ]

(* {1 E9 - engine: warm shared cache vs cold per-session normalization} *)

let e9_requests =
  (* a work mix with heavy overlap, as a long-lived service would see *)
  [
    "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))";
    "normalize Queue IS_EMPTY?(REMOVE(ADD(NEW, ITEM1)))";
    "normalize Queue FRONT(ADD(ADD(ADD(NEW, ITEM1), ITEM2), ITEM3))";
    "normalize Queue FRONT(REMOVE(REMOVE(ADD(ADD(ADD(NEW, ITEM1), ITEM2), ITEM3))))";
    "normalize Queue IS_EMPTY?(NEW)";
    "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))";
    "normalize Queue FRONT(ADD(ADD(ADD(NEW, ITEM1), ITEM2), ITEM3))";
    "normalize Queue IS_EMPTY?(REMOVE(ADD(NEW, ITEM1)))";
  ]

let e9_replay session =
  List.iter
    (fun line -> ignore (Engine.Dispatch.handle_line session line))
    e9_requests

let e9 () =
  Fmt.pr "@.=== E9: evaluation engine, shared-cache warmth ===@.";
  let warm = Engine.Session.create [ Queue_spec.spec ] in
  e9_replay warm;
  (* one representative request, repeated against a warm session *)
  let hot = "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))" in
  report_group "normalize throughput, batch of 8 requests"
    [
      t "e9/cold-session/batch" (fun () ->
          e9_replay (Engine.Session.create [ Queue_spec.spec ]));
      t "e9/warm-session/batch" (fun () -> e9_replay warm);
      t "e9/warm-session/single" (fun () ->
          ignore (Engine.Dispatch.handle_line warm hot));
    ];
  let totals = Engine.Session.cache_totals warm in
  Fmt.pr "  warm session after run: hits=%d misses=%d entries=%d@."
    totals.Engine.Session.hits totals.Engine.Session.misses
    totals.Engine.Session.entries

(* {1 E10 - engine: multi-client serving over the socket} *)

let e10_connect path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then failwith "e10: no server";
      Thread.delay 0.01;
      go ()
  in
  go ()

let e10_client path requests =
  let fd = e10_connect path in
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      ignore (input_line ic))
    requests;
  Unix.close fd

let e10 () =
  Fmt.pr "@.=== E10: multi-client serving over the socket ===@.";
  Fmt.pr
    "(the same warm request mix split over k connections; OCaml systhreads \
     interleave@.";
  Fmt.pr
    " rather than parallelize, so this measures per-connection overhead and \
     locking cost)@.";
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "adtc-bench-%d.sock" (Unix.getpid ()))
  in
  let session = Engine.Session.create [ Queue_spec.spec ] in
  let stop = ref false in
  let server =
    Thread.create
      (fun () ->
        Engine.Server.serve_socket ~handle_signals:false ~stop session ~path)
      ()
  in
  let total = 400 in
  let n_mix = List.length e9_requests in
  let script n = List.init n (fun i -> List.nth e9_requests (i mod n_mix)) in
  let run_clients k =
    let per = total / k in
    let clients =
      List.init k (fun _ -> Thread.create (fun () -> e10_client path (script per)) ())
    in
    List.iter Thread.join clients
  in
  (* one warm-up pass so every shape replays against the same warm cache *)
  run_clients 1;
  let rows =
    List.map
      (fun k ->
        let (), elapsed = seconds (fun () -> run_clients k) in
        (Fmt.str "e10/serve/clients=%d" k, elapsed *. 1e9 /. float_of_int total))
      [ 1; 2; 4; 8 ]
  in
  stop := true;
  Thread.join server;
  json_rows := !json_rows @ rows;
  List.iter
    (fun (name, ns) -> Fmt.pr "  %-46s %s/op@." name (pretty_ns ns))
    rows;
  let totals = Engine.Session.cache_totals session in
  Fmt.pr "  shared session after run: hits=%d misses=%d entries=%d@."
    totals.Engine.Session.hits totals.Engine.Session.misses
    totals.Engine.Session.entries

(* {1 E11 - observability: the cost of tracing, off and on} *)

let e11 () =
  Fmt.pr "@.=== E11: tracing overhead on the normalize hot path ===@.";
  Fmt.pr
    "(tracing=off is the default dispatcher path — the [?on_rule] hook is \
     [None], so the@.";
  Fmt.pr
    " per-step cost is one option test; tracing=on builds a span tree and \
     counts per rule;@.";
  Fmt.pr " +slowlog also records every request into the ring log)@.";
  let plain = Engine.Session.create [ Queue_spec.spec ] in
  let traced = Engine.Session.create ~tracing:true [ Queue_spec.spec ] in
  let logged =
    (* threshold 0: every request enters the ring, the worst case *)
    Engine.Session.create ~slowlog_ms:0. [ Queue_spec.spec ]
  in
  e9_replay plain;
  e9_replay traced;
  e9_replay logged;
  report_group "warm normalize batch of 8 requests, by observability level"
    [
      t "e11/tracing=off/batch" (fun () -> e9_replay plain);
      t "e11/tracing=on/batch" (fun () -> e9_replay traced);
      t "e11/tracing=on+slowlog/batch" (fun () -> e9_replay logged);
    ]

(* {1 E12 - lint wall-clock over the builtin library and a seeded fault} *)

let e12 () =
  Fmt.pr "@.=== E12: lint cost ===@.";
  let specs = Corpus.all in
  Fmt.pr
    "(full lint = ADT001 completeness prompts + ADT002 critical pairs + the \
     static ADT01x@.";
  Fmt.pr
    " passes; static-only is what `adtc check` adds on top of its own \
     reports)@.";
  let findings =
    List.fold_left
      (fun n spec -> n + List.length (Analysis.Lint.run spec))
      0 specs
  in
  Fmt.pr "  builtin library: %d specification(s), %d finding(s)@."
    (List.length specs) findings;
  report_group "lint wall-clock"
    [
      t "e12/lint/builtin-library" (fun () ->
          List.iter (fun spec -> ignore (Analysis.Lint.run spec)) specs);
      t "e12/lint-static/builtin-library" (fun () ->
          List.iter (fun spec -> ignore (Analysis.Lint.static spec)) specs);
      t "e12/lint/queue" (fun () ->
          ignore (Analysis.Lint.run Queue_spec.spec));
    ]

(* {1 E13 - hash-consed terms and the compiled rule index} *)

(* The Symboltable refinement is the largest rule system in the repo
   (symbol tables represented as stacks of arrays, five specifications
   merged), so rule dispatch dominates: the naive engine scans every rule
   at every redex candidate, the indexed engine jumps through
   head-symbol x first-argument-fingerprint buckets over interned terms. *)

(* pinned to the two-level index: E13 measures hash-consing + the index
   against the reference scan, whatever the process default engine is
   (E18 below is the three-engine comparison) *)
let e13_sys =
  Rewrite.with_engine Rewrite.Index (Rewrite.of_spec Refinement.combined)

let e13_queries depth =
  let ids = List.map Identifier.id [ "X"; "Y"; "Z"; "W" ] in
  let rec build t d =
    if d = 0 then t
    else
      build
        (List.fold_left
           (fun t id -> Refinement.add' t id (Attributes.attrs 1))
           (Refinement.enterblock' t) ids)
        (d - 1)
  in
  let table = build Refinement.init' depth in
  List.map (Refinement.retrieve' table) ids

let e13_workload normalize queries () =
  List.fold_left (fun acc q -> acc + Term.size (normalize e13_sys q)) 0 queries

(* memoized normalization dispatches on the system's pinned engine, so the
   system is a parameter: E13 passes the index-pinned system, E18 sweeps
   all three engines *)
let memo_workload sys memo queries () =
  let memo = match memo with Some m -> m | None -> Rewrite.Memo.create () in
  List.fold_left
    (fun acc q -> acc + Term.size (Rewrite.normalize_memo ~memo sys q))
    0 queries

let e13_memo_workload memo queries = memo_workload e13_sys memo queries

let e13 () =
  Fmt.pr "@.=== E13: hash-consed terms + compiled rule index ===@.";
  Fmt.pr
    "(same innermost strategy, same rule priority; reference = linear rule \
     scan with@.";
  Fmt.pr
    " structural equality, indexed = fingerprint dispatch over interned \
     terms)@.";
  let q3 = e13_queries 3 and q6 = e13_queries 6 in
  let warm = Rewrite.Memo.create () in
  ignore (e13_memo_workload (Some warm) q6 ());
  report_group "Symboltable refinement: retrieve through d nested blocks"
    [
      t "e13/reference/depth=3" (e13_workload Rewrite.Reference.normalize q3);
      t "e13/indexed__/depth=3" (e13_workload Rewrite.normalize q3);
      t "e13/reference/depth=6" (e13_workload Rewrite.Reference.normalize q6);
      t "e13/indexed__/depth=6" (e13_workload Rewrite.normalize q6);
      t "e13/memo-cold/depth=6" (e13_memo_workload None q6);
      t "e13/memo-warm/depth=6" (e13_memo_workload (Some warm) q6);
    ];
  let find name = List.assoc_opt name !json_rows in
  List.iter
    (fun d ->
      match
        ( find (Fmt.str "e13/reference/depth=%d" d),
          find (Fmt.str "e13/indexed__/depth=%d" d) )
      with
      | Some r, Some i when i > 0. ->
        Fmt.pr "  indexed speedup over reference (depth=%d): %.2fx@." d (r /. i)
      | _ -> ())
    [ 3; 6 ];
  let hits = Rewrite.Memo.hits warm and misses = Rewrite.Memo.misses warm in
  Fmt.pr "  warm memo after run: hits=%d misses=%d entries=%d (id-keyed)@."
    hits misses (Rewrite.Memo.size warm)

(* {1 E15 - engine: saturation across the domain pool} *)

(* The E10 socket workload swept client counts against a single-threaded
   accept loop; E15 sweeps the full grid of server domains x concurrent
   clients. With d > 1 the domain pool serves requests in parallel (each
   domain has its own interpreter slot and metrics stripe), so on a
   multi-core machine throughput scales with d until the cores — or the
   clients — saturate. On a single core the curve is flat: the grid is
   still exercised end to end, the speedup just reads ~1x. *)

type e15_cell = {
  e15_domains : int;
  e15_clients : int;
  e15_requests : int;
  e15_seconds : float;
}

let e15_cells : e15_cell list ref = ref []

let e15 () =
  Fmt.pr "@.=== E15: saturation across the domain pool ===@.";
  Fmt.pr
    "(the E10 request mix over a grid of server domains x concurrent \
     clients;@.";
  Fmt.pr
    " cores available here: %d — scaling beyond that count is visible only \
     on@."
    (Domain.recommended_domain_count ());
  Fmt.pr " a machine with that many cores)@.";
  let total = 400 in
  let n_mix = List.length e9_requests in
  let script n = List.init n (fun i -> List.nth e9_requests (i mod n_mix)) in
  let cell domains clients =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "adtc-bench-e15-%d-%d-%d.sock" (Unix.getpid ()) domains clients)
    in
    let session = Engine.Session.create [ Queue_spec.spec ] in
    let stop = ref false in
    let server =
      Thread.create
        (fun () ->
          Engine.Server.serve_socket ~max_clients:64 ~domains
            ~handle_signals:false ~stop session ~path)
        ()
    in
    let run () =
      let per = total / clients in
      let threads =
        List.init clients (fun _ ->
            Thread.create (fun () -> e10_client path (script per)) ())
      in
      List.iter Thread.join threads
    in
    (* warm every domain's interpreter slot before the timed pass *)
    run ();
    let (), elapsed = seconds run in
    stop := true;
    Thread.join server;
    e15_cells :=
      !e15_cells
      @ [
          {
            e15_domains = domains;
            e15_clients = clients;
            e15_requests = total;
            e15_seconds = elapsed;
          };
        ];
    (Fmt.str "e15/serve/domains=%d/clients=%d" domains clients,
     elapsed *. 1e9 /. float_of_int total)
  in
  let rows =
    List.concat_map
      (fun d -> List.map (fun k -> cell d k) [ 1; 4; 16 ])
      [ 1; 2; 4; 8 ]
  in
  json_rows := !json_rows @ rows;
  List.iter
    (fun (name, ns) -> Fmt.pr "  %-46s %s/op@." name (pretty_ns ns))
    rows;
  let find name = List.assoc_opt name !json_rows in
  (match
     ( find "e15/serve/domains=1/clients=16",
       find "e15/serve/domains=8/clients=16" )
   with
  | Some one, Some eight when eight > 0. ->
    Fmt.pr "  throughput at 8 domains vs 1 (16 clients): %.2fx@." (one /. eight)
  | _ -> ())

(* the saturation curve as its own artifact: one object per grid cell,
   with absolute throughput, for tracking across revisions *)
let write_saturation path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "[\n";
      let n = List.length !e15_cells in
      List.iteri
        (fun i c ->
          Printf.fprintf oc
            "  {\"domains\": %d, \"clients\": %d, \"requests\": %d, \
             \"seconds\": %.6f, \"rps\": %.1f}%s\n"
            c.e15_domains c.e15_clients c.e15_requests c.e15_seconds
            (float_of_int c.e15_requests /. c.e15_seconds)
            (if i = n - 1 then "" else ","))
        !e15_cells;
      output_string oc "]\n");
  Fmt.pr "wrote %d saturation cells to %s@." (List.length !e15_cells) path

(* {1 E14 - spec-derived conformance suites: compile and run cost} *)

let e14_entry spec impl =
  match Testgen.Registry.find ~spec ~impl with
  | Some e -> e
  | None -> failwith (Fmt.str "e14: %s/%s not registered" spec impl)

let e14 () =
  Fmt.pr "@.=== E14: spec-derived conformance suites (testgen) ===@.";
  Fmt.pr
    "(compile = partition context operations + precompile the rewrite \
     system;@.";
  Fmt.pr
    " run = per axiom, N uniform valuations, both sides evaluated through \
     the@.";
  Fmt.pr
    " implementation and compared through random observation contexts)@.";
  let queue = e14_entry "Queue" "two-list" in
  let array = e14_entry "Array" "hash" in
  let symtab = e14_entry "Symboltable" "stack-of-hash" in
  report_group "Suite compile + run (seed pinned, count per axiom)"
    [
      t "e14/compile/queue" (fun () ->
          ignore (Testgen.Harness.compile queue));
      t "e14/run=20/queue/two-list" (fun () ->
          ignore (Testgen.Harness.conformance ~count:20 ~seed:414243 queue));
      t "e14/run=20/array/hash" (fun () ->
          ignore (Testgen.Harness.conformance ~count:20 ~seed:414243 array));
      t "e14/run=20/symboltable/hash" (fun () ->
          ignore (Testgen.Harness.conformance ~count:20 ~seed:414243 symtab));
    ];
  (* the corpus, replayed at the CI count: every mutant must die *)
  let reports =
    List.map
      (fun entry -> Testgen.Harness.conformance ~count:200 ~seed:414243 entry)
      Testgen.Registry.mutants
  in
  let killed =
    List.length (List.filter Testgen.Harness.killed reports)
  in
  Fmt.pr "  mutation corpus at count=200 seed=414243: %d/%d killed@." killed
    (List.length reports);
  if killed < List.length reports then failwith "e14: surviving mutants"

(* {1 E16 - persist + docsession: warm restarts and O(edit) sessions} *)

(* Two halves of the same claim — results keyed by content digest
   survive both a process restart and an edit. The restart half replays
   the E13 retrieve workload (the heaviest rewriting in the repo) into a
   store-backed session, then "restarts": a second session over the same
   directory must answer every query from disk, byte-identically modulo
   the steps= field (a persistent hit reports steps=0 by convention).
   The edit half opens a Queue document, re-labels it (nothing may be
   re-checked), then changes one FRONT axiom (exactly the FRONT cone may
   be re-checked). *)

type e16_report = {
  e16_cold_seconds : float;
  e16_warm_seconds : float;
  e16_hit_rate : float;
  e16_open_checked : int;
  e16_edit_checked : int;
  e16_edit_reused : int;
  e16_nf_identical : bool;
}

let e16_report : e16_report option ref = ref None

let e16_requests =
  let name = Spec.name Refinement.combined in
  List.concat_map
    (fun depth ->
      List.map
        (fun q -> Fmt.str "normalize %s %s" name (Term.to_string q))
        (e13_queries depth))
    [ 1; 2; 3; 4; 5 ]

(* a persistent hit answers steps=0 where the cold run reported real
   work; mask the field so the comparison is about normal forms *)
let e16_mask line =
  String.concat " "
    (List.map
       (fun w ->
         if String.length w >= 6 && String.sub w 0 6 = "steps=" then "steps=_"
         else w)
       (String.split_on_char ' ' line))

let e16_replay session =
  List.map
    (fun line ->
      match Engine.Dispatch.handle_line session line with
      | Engine.Dispatch.Reply r -> e16_mask r
      | Engine.Dispatch.Silent | Engine.Dispatch.Closed -> "")
    e16_requests

let e16_queue_source axiom4 =
  Fmt.str
    {|spec Item
  sort Item
  ops
    ITEM1 : -> Item
    ITEM2 : -> Item
    ITEM3 : -> Item
  constructors ITEM1 ITEM2 ITEM3
end

spec Queue
  uses Item
  sort Queue
  ops
    NEW : -> Queue
    ADD : Queue Item -> Queue
    FRONT : Queue -> Item
    REMOVE : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW ADD
  vars
    q : Queue
    i : Item
  axioms
    [1] IS_EMPTY?(NEW) = true
    [2] IS_EMPTY?(ADD(q, i)) = false
    [3] FRONT(NEW) = error
    [4] %s
    [5] REMOVE(NEW) = error
    [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end|}
    axiom4

let e16 () =
  Fmt.pr "@.=== E16: on-disk store warm restart + O(edit) sessions ===@.";
  Fmt.pr
    "(cold = compute the E13 retrieve workload and record it; warm = a fresh \
     session@.";
  Fmt.pr
    " over the same cache directory, every normal form answered from disk; \
     then a@.";
  Fmt.pr
    " document session where a one-axiom edit re-checks only its \
     invalidation cone)@.";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "adtc-bench-e16-%d" (Unix.getpid ()))
  in
  let rm_dir () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  rm_dir ();
  Fun.protect ~finally:rm_dir @@ fun () ->
  (* cold process: compute, record, flush, exit *)
  let store1 = Persist.Store.open_ dir in
  let cold = Engine.Session.create ~store:store1 [ Refinement.combined ] in
  let cold_replies, cold_seconds = seconds (fun () -> e16_replay cold) in
  Engine.Session.persist_flush cold;
  Persist.Store.close store1;
  (* warm process: same directory, nothing computed yet *)
  let store2 = Persist.Store.open_ dir in
  let warm = Engine.Session.create ~store:store2 [ Refinement.combined ] in
  let warm_replies, warm_seconds = seconds (fun () -> e16_replay warm) in
  let hits, misses =
    match Engine.Session.persist_totals warm with
    | Some t -> (t.Engine.Session.hits, t.Engine.Session.misses)
    | None -> (0, 0)
  in
  Persist.Store.close store2;
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let nf_identical = cold_replies = warm_replies in
  let n = List.length e16_requests in
  Fmt.pr "  %d requests: cold %.3fs, warm %.3fs (%.2fx), hit-rate %.0f%%@." n
    cold_seconds warm_seconds
    (if warm_seconds > 0. then cold_seconds /. warm_seconds else 0.)
    (100. *. hit_rate);
  Fmt.pr "  normal forms identical modulo steps=: %b@." nf_identical;
  json_rows :=
    !json_rows
    @ [
        ("e16/restart/cold", cold_seconds *. 1e9 /. float_of_int n);
        ("e16/restart/warm", warm_seconds *. 1e9 /. float_of_int n);
      ];
  (* the session half *)
  let mgr = Docsession.Manager.create () in
  let doc_exn = function
    | Ok (doc : Docsession.Manager.doc) -> doc
    | Error e -> failwith (Fmt.str "e16 session: %s" e)
  in
  let base =
    e16_queue_source
      "FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)"
  in
  let relabelled =
    (* same equations, different labels: the empty cone *)
    String.concat ""
      (List.map
         (fun line ->
           String.concat "0]" (String.split_on_char ']' line) ^ "\n")
         (String.split_on_char '\n' base))
  in
  let edited = e16_queue_source "FRONT(ADD(q, i)) = i" in
  let v1 = doc_exn (Docsession.Manager.open_doc mgr ~name:"queue" ~source:base) in
  let v2 =
    doc_exn (Docsession.Manager.edit mgr ~name:"queue" ~source:relabelled)
  in
  let v3 = doc_exn (Docsession.Manager.edit mgr ~name:"queue" ~source:edited) in
  let s1 = v1.Docsession.Manager.summary
  and s2 = v2.Docsession.Manager.summary
  and s3 = v3.Docsession.Manager.summary in
  Fmt.pr "  session-open: %d obligations checked@." s1.Docsession.Manager.checked;
  Fmt.pr "  relabel edit: %d checked, %d reused@." s2.Docsession.Manager.checked
    s2.Docsession.Manager.reused;
  Fmt.pr "  one-axiom edit: %d checked, %d reused (cone=%d of %d axioms)@."
    s3.Docsession.Manager.checked s3.Docsession.Manager.reused
    s3.Docsession.Manager.cone s3.Docsession.Manager.axioms;
  e16_report :=
    Some
      {
        e16_cold_seconds = cold_seconds;
        e16_warm_seconds = warm_seconds;
        e16_hit_rate = hit_rate;
        e16_open_checked = s1.Docsession.Manager.checked;
        e16_edit_checked = s3.Docsession.Manager.checked;
        e16_edit_reused = s3.Docsession.Manager.reused;
        e16_nf_identical = nf_identical;
      };
  (* the acceptance gates, enforced where CI can see them *)
  if not nf_identical then failwith "e16: warm normal forms differ from cold";
  if hit_rate < 0.9 then
    failwith (Fmt.str "e16: warm hit-rate %.2f below 0.9" hit_rate);
  if s2.Docsession.Manager.checked <> 0 then
    failwith "e16: a relabelling re-checked obligations";
  if s3.Docsession.Manager.checked >= s1.Docsession.Manager.checked then
    failwith "e16: a one-axiom edit did not re-check strictly fewer obligations"

(* the restart artifact: one object, for tracking across revisions *)
let write_e16 path =
  match !e16_report with
  | None -> ()
  | Some r ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc
          "{\"cold_seconds\": %.6f, \"warm_seconds\": %.6f, \"hit_rate\": \
           %.4f,\n\
          \ \"open_checked\": %d, \"edit_checked\": %d, \"edit_reused\": %d,\n\
          \ \"nf_identical\": %b}\n"
          r.e16_cold_seconds r.e16_warm_seconds r.e16_hit_rate
          r.e16_open_checked r.e16_edit_checked r.e16_edit_reused
          r.e16_nf_identical);
    Fmt.pr "wrote the e16 restart report to %s@." path

(* {1 E17 - verification wall-clock: ADT020/021/022 per corpus spec} *)

(* One [Verify.summarize] per specification: the Maranget usefulness
   matrix behind sufficient completeness, the greedy RPO precedence
   search behind termination, and the critical-pair joinability check
   behind confluence. `adtc check` and the ADT02x lint rules pay exactly
   this on every run, so the per-spec cost is the interactive latency
   floor for the decision passes. *)

let e17 () =
  Fmt.pr "@.=== E17: verification cost (completeness + termination + confluence) ===@.";
  Fmt.pr
    "(one Verify.summarize per specification = the Maranget matrix + the RPO@.";
  Fmt.pr
    " precedence search + critical-pair joinability; adtc check/lint pay this@.";
  Fmt.pr " on every run)@.";
  let specs = Corpus.all in
  let summaries = List.map Analysis.Verify.summarize specs in
  let verified = List.filter Analysis.Verify.verified summaries in
  Fmt.pr "  builtin library: %d specification(s), %d fully verified@."
    (List.length specs) (List.length verified);
  let reps = 25 in
  let rows =
    List.map
      (fun spec ->
        let (), elapsed =
          seconds (fun () ->
              for _ = 1 to reps do
                ignore (Analysis.Verify.summarize spec)
              done)
        in
        ( Fmt.str "e17/verify/%s" (String.lowercase_ascii (Spec.name spec)),
          elapsed *. 1e9 /. float_of_int reps ))
      specs
  in
  let (), library_elapsed =
    seconds (fun () ->
        for _ = 1 to reps do
          List.iter (fun s -> ignore (Analysis.Verify.summarize s)) specs
        done)
  in
  let rows =
    rows
    @ [ ("e17/verify/builtin-library", library_elapsed *. 1e9 /. float_of_int reps) ]
  in
  json_rows := !json_rows @ rows;
  List.iter
    (fun (name, ns) -> Fmt.pr "  %-46s %s/op@." name (pretty_ns ns))
    rows;
  (* the acceptance gate: the shipped library must decide clean *)
  if List.length verified <> List.length specs then
    failwith
      (Fmt.str "e17: %d corpus specification(s) failed verification"
         (List.length specs - List.length verified))

(* {1 E18 - rule matching engines: reference vs index vs automaton} *)

(* Same Symboltable refinement workload as E13, quantified over all three
   matching engines through their pinned entry points — the matrix the CI
   artifact tracks. The direct rows isolate redex matching; the memo rows
   show how much of the matching cost the normal-form cache can hide
   (cold: matching still dominates; warm: the engines converge, because a
   cache hit never reaches the matcher). *)

let e18 () =
  Fmt.pr "@.=== E18: rule matching engines (reference vs index vs automaton) ===@.";
  Fmt.pr
    "(identical semantics — test/test_diff.ml is the proof; reference = \
     linear scan,@.";
  Fmt.pr
    " index = two-level fingerprint dispatch, automaton = compiled matching \
     automaton)@.";
  let q6 = e13_queries 6 in
  (* the engine comparison must not inherit heap fragmentation from the
     seventeen experiments before it *)
  Gc.compact ();
  let engines =
    [
      ("reference", Rewrite.with_engine Rewrite.Reference e13_sys);
      ("index____", Rewrite.with_engine Rewrite.Index e13_sys);
      ("automaton", Rewrite.with_engine Rewrite.Automaton e13_sys);
    ]
  in
  let direct =
    [
      t "e18/reference/depth=6" (e13_workload Rewrite.Reference.normalize q6);
      t "e18/index____/depth=6" (e13_workload Rewrite.Index.normalize q6);
      t "e18/automaton/depth=6" (e13_workload Rewrite.Automaton.normalize q6);
    ]
  in
  (* cold rows are measured before any warm memo exists, and with GC
     stabilization, so no engine's run pays for another's live heap *)
  let cold_rows =
    List.map
      (fun (name, sys) ->
        t (Fmt.str "e18/%s/memo-cold" name) (memo_workload sys None q6))
      engines
  in
  let warm_rows =
    List.map
      (fun (name, sys) ->
        let warm = Rewrite.Memo.create () in
        ignore (memo_workload sys (Some warm) q6 ());
        t (Fmt.str "e18/%s/memo-warm" name) (memo_workload sys (Some warm) q6))
      engines
  in
  report_group ~stabilize:true
    "Symboltable refinement workload (depth=6), by engine"
    (direct @ cold_rows);
  report_group ~stabilize:true
    "Symboltable refinement workload (depth=6), warm memo"
    warm_rows;
  let find name = List.assoc_opt name !json_rows in
  (match
     ( find "e18/reference/depth=6",
       find "e18/index____/depth=6",
       find "e18/automaton/depth=6" )
   with
  | Some r, Some i, Some a when a > 0. ->
    Fmt.pr "  automaton speedup over index     (depth=6): %.2fx@." (i /. a);
    Fmt.pr "  automaton speedup over reference (depth=6): %.2fx@." (r /. a)
  | _ -> ());
  match (find "e18/index____/memo-cold", find "e18/automaton/memo-cold") with
  | Some i, Some a when a > 0. ->
    Fmt.pr "  automaton speedup over index (cold memo):   %.2fx@." (i /. a)
  | _ -> ()

let write_e18 path =
  let rows =
    List.filter
      (fun (name, _) -> String.equal (experiment_of name) "e18")
      !json_rows
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc
            "  {\"experiment\": \"e18\", \"name\": \"%s\", \"ns_per_op\": %.2f}%s\n"
            (json_escape name)
            (if Float.is_nan ns then -1. else ns)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "]\n");
  Fmt.pr "wrote %d engine results to %s@." (List.length rows) path

let () =
  Fmt.pr "Reproduction benches for Guttag, 'Abstract Data Types and the Development of Data Structures' (CACM 1977)@.";
  let json_path = ref None in
  let saturation_path = ref None in
  let e16_path = ref None in
  let e18_path = ref None in
  let only = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--only" :: name :: rest ->
      only := Some (String.lowercase_ascii name);
      parse_args rest
    | "--only" :: [] -> failwith "--only requires an experiment name (e.g. e18)"
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse_args rest
    | "--json" :: [] -> failwith "--json requires a file argument"
    | "--saturation" :: path :: rest ->
      saturation_path := Some path;
      parse_args rest
    | "--saturation" :: [] -> failwith "--saturation requires a file argument"
    | "--e16" :: path :: rest ->
      e16_path := Some path;
      parse_args rest
    | "--e16" :: [] -> failwith "--e16 requires a file argument"
    | "--e18" :: path :: rest ->
      e18_path := Some path;
      parse_args rest
    | "--e18" :: [] -> failwith "--e18 requires a file argument"
    | "--engine" :: name :: rest ->
      (match Rewrite.engine_of_string name with
      | Some e -> Rewrite.set_default_engine e
      | None ->
        failwith
          (Fmt.str "--engine %s: expected reference, index, or auto" name));
      parse_args rest
    | "--engine" :: [] -> failwith "--engine requires an engine name"
    | arg :: _ -> failwith (Fmt.str "unknown argument %s" arg)
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* --only runs one experiment in an otherwise pristine process: the
     engine matrix (E18) in particular is sensitive to the live heaps the
     seventeen other experiments' module-level workloads leave behind *)
  let experiments =
    [
      ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
      ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
      ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
      ("e17", e17); ("e18", e18);
    ]
  in
  (match !only with
  | None -> List.iter (fun (_, run) -> run ()) experiments
  | Some name -> (
    match List.assoc_opt name experiments with
    | Some run -> run ()
    | None -> failwith (Fmt.str "--only %s: no such experiment" name)));
  Option.iter write_json !json_path;
  Option.iter write_saturation !saturation_path;
  Option.iter write_e16 !e16_path;
  Option.iter write_e18 !e18_path;
  Fmt.pr "@.done.@."
