open Adt
open Helpers
open Adt_specs

let interp = Interp.create Array_as_list.combined
let idx = Identifier.id
let attrs = Attributes.attrs

let test_substrate_spec_checks () =
  Alcotest.(check bool) "PairList complete" true
    (Completeness.is_complete (Completeness.check Pairlist_spec.spec));
  let report = Consistency.check Pairlist_spec.spec in
  Alcotest.(check bool) "PairList consistent" true
    (Consistency.is_consistent Pairlist_spec.spec report);
  Alcotest.(check bool) "combined complete" true
    (Completeness.is_complete (Completeness.check Array_as_list.combined))

let test_pairlist_behaviour () =
  let pinterp = Interp.create Pairlist_spec.spec in
  let l = Pairlist_spec.of_bindings [ (idx "X", attrs 1); (idx "Y", attrs 2) ] in
  (match Interp.eval pinterp (Pairlist_spec.head l) with
  | Interp.Value p ->
    check_term "most recent first" (Pairlist_spec.pair (idx "Y") (attrs 2)) p
  | other -> Alcotest.failf "head: %a" Interp.pp_value other);
  match Interp.eval pinterp (Pairlist_spec.fst_ (Pairlist_spec.head l)) with
  | Interp.Value id -> check_term "projection" (idx "Y") id
  | other -> Alcotest.failf "fst: %a" Interp.pp_value other

let test_primed_operations_behave () =
  let open Array_as_list in
  let arr = assign' (assign' empty' (idx "X") (attrs 1)) (idx "X") (attrs 2) in
  (match Interp.eval interp (read' arr (idx "X")) with
  | Interp.Value v -> check_term "latest wins" (attrs 2) v
  | other -> Alcotest.failf "read': %a" Interp.pp_value other);
  (match Interp.eval interp (read' arr (idx "Y")) with
  | Interp.Error_value _ -> ()
  | other -> Alcotest.failf "undefined read: %a" Interp.pp_value other);
  Alcotest.(check (option bool)) "undefined" (Some true)
    (Interp.eval_bool interp (is_undefined' empty' (idx "X")));
  Alcotest.(check (option bool)) "defined" (Some false)
    (Interp.eval_bool interp (is_undefined' arr (idx "X")))

let test_phi_builds_assign_chains () =
  let open Array_as_list in
  let arr = assign' (assign' empty' (idx "X") (attrs 1)) (idx "Y") (attrs 2) in
  match Interp.eval interp (phi arr) with
  | Interp.Value v ->
    let a = Array_spec.default in
    check_term "abstract image"
      (a.Array_spec.assign
         (a.Array_spec.assign a.Array_spec.empty (idx "X") (attrs 1))
         (idx "Y") (attrs 2))
      v
  | other -> Alcotest.failf "phi: %a" Interp.pp_value other

let test_all_four_axioms_verified () =
  let results = Array_as_list.verify () in
  Alcotest.(check int) "four obligations" 4 (List.length results);
  Alcotest.(check bool) "all proved" true (Array_as_list.all_proved results);
  Alcotest.(check (list string)) "axioms 17-20"
    [ "17"; "18"; "19"; "20" ]
    (List.map (fun r -> r.Array_as_list.axiom_name) results)

let test_faulty_definition_caught () =
  (* sanity check that the harness can fail: axiom 18's obligation is NOT
     provable if IS_UNDEFINED?' forgets to recurse (returns true on a miss
     in the head pair) *)
  let l = Term.var "l" Pairlist_spec.list_sort
  and id = Term.var "id" Identifier.sort in
  let same a b = Term.app (Spec.op_exn Identifier.spec "SAME?") [ a; b ] in
  let open Pairlist_spec in
  let bad_def =
    Rewrite.rule ~name:"bad_undef"
      ~lhs:(Array_as_list.is_undefined' l id)
      ~rhs:
        (Term.ite (is_nil l) Term.tt
           (Term.ite (same (fst_ (head l)) id) Term.ff Term.tt))
      ()
  in
  let spec_without =
    Spec.v ~name:"broken"
      ~signature:(Spec.signature Array_as_list.combined)
      ~axioms:
        (List.filter
           (fun ax -> Axiom.name ax <> "def_undef")
           (Spec.axioms Array_as_list.combined))
      ()
  in
  let cfg = Proof.config ~extra_rules:[ bad_def ] ~max_case_depth:10 spec_without in
  let ax18 =
    Option.get (Spec.find_axiom "18" Array_spec.default.Array_spec.spec)
  in
  Alcotest.(check bool) "broken definition unprovable" false
    (Proof.holds cfg (Array_as_list.obligation ax18))

let test_ground_agreement () =
  (* bounded-exhaustive: primed evaluation equals abstract evaluation *)
  let ainterp = Interp.create Array_spec.default.Array_spec.spec in
  let u = Enum.universe Array_spec.default.Array_spec.spec in
  let arrays =
    Enum.terms_up_to u Array_spec.default.Array_spec.sort ~size:7
  in
  let rec to_primed t =
    match Term.view t with
    | Term.App (op, args) -> (
      let args = List.map to_primed args in
      match Op.name op with
      | "EMPTY" -> Array_as_list.empty'
      | "ASSIGN" ->
        Array_as_list.assign' (List.nth args 0) (List.nth args 1)
          (List.nth args 2)
      | _ -> Term.app op args)
    | _ -> t
  in
  List.iter
    (fun arr ->
      List.iter
        (fun id ->
          let abstractly =
            match
              Interp.eval ainterp
                (Array_spec.default.Array_spec.read arr id)
            with
            | Interp.Value v -> Some v
            | _ -> None
          in
          let concretely =
            match
              Interp.eval interp (Array_as_list.read' (to_primed arr) id)
            with
            | Interp.Value v -> Some v
            | _ -> None
          in
          Alcotest.(check (option term_testable)) "read agrees" abstractly
            concretely)
        [ idx "X"; idx "Y" ])
    arrays

let suite =
  [
    case "substrate specifications check" test_substrate_spec_checks;
    case "pair-list behaviour" test_pairlist_behaviour;
    case "primed operations compute correctly" test_primed_operations_behave;
    case "PHI_A builds ASSIGN chains" test_phi_builds_assign_chains;
    case "axioms 17-20 verified mechanically" test_all_four_axioms_verified;
    case "a faulty definition fails the proof" test_faulty_definition_caught;
    case "ground agreement with the abstract Array" test_ground_agreement;
  ]
