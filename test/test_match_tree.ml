(* The matching automaton ([Match_tree]): compilation shape, first-match
   priority, non-left-linear deferred equality, and right-hand-side
   template instantiation — plus qcheck properties that automaton matches
   agree with the linear scan ([Subst.match_term] in declaration order)
   on random corpus terms, and that single [Rewrite.step]s (rule fired,
   position, result) agree across all three engines. *)

open Adt
open Helpers
open Adt_specs

let m = v "m"
let n = v "n"

(* nat rules as (name, lhs, rhs) rows for [Match_tree.compile] *)
let p0 = ("p0", plus z n, n)
let ps = ("ps", plus (s m) n, s (plus m n))
let iz = ("iz", isz z, Term.tt)
let is_row = ("is", isz (s m), Term.ff)

let run_name tree t =
  Option.map (fun (name, _) -> name) (Match_tree.run tree t)

let check_match tree t expected_name expected_reduct =
  match Match_tree.run tree t with
  | None -> Alcotest.failf "no match on %a" Term.pp t
  | Some (name, reduct) ->
    Alcotest.(check string) "rule fired" expected_name name;
    check_term "reduct" expected_reduct reduct

let test_prefix_sharing () =
  let rows = [ p0; ps; iz; is_row ] in
  let combined = (Match_tree.stats (Match_tree.compile rows)).Match_tree.switches in
  let separate =
    List.fold_left
      (fun acc row ->
        acc + (Match_tree.stats (Match_tree.compile [ row ])).Match_tree.switches)
      0 rows
  in
  (* plus(z,n) and plus(s m,n) share the root test on plus, and both isz
     rules share theirs: one root switch + one argument switch per head *)
  Alcotest.(check int) "combined switches" 3 combined;
  Alcotest.(check bool)
    "sharing beats separate compiles" true (combined < separate)

let test_first_match_priority () =
  (* a specific and a fully generic rule for the same head: whichever is
     declared first wins, and a subject escaping the specific case falls
     through to the generic row carried into the default branch *)
  let specific = ("zero", isz z, Term.tt) in
  let generic = ("any", isz (v "x"), Term.ff) in
  let specific_first = Match_tree.compile [ specific; generic ] in
  check_match specific_first (isz z) "zero" Term.tt;
  check_match specific_first (isz (s z)) "any" Term.ff;
  let generic_first = Match_tree.compile [ generic; specific ] in
  (* the generic row shadows the specific one everywhere *)
  check_match generic_first (isz z) "any" Term.ff;
  check_match generic_first (isz (s z)) "any" Term.ff

let test_non_left_linear () =
  let rows =
    [
      ("eq", plus (v "x") (v "x"), v "x"); ("ne", plus (v "x") (v "y"), v "y");
    ]
  in
  let tree = Match_tree.compile rows in
  let two = church 2 in
  (* the repeated variable becomes a deferred check at the leaf... *)
  Alcotest.(check int) "one guarded leaf" 1
    (Match_tree.stats tree).Match_tree.guarded;
  (* ...that passes on equal subterms and falls through otherwise *)
  check_match tree (plus two (church 2)) "eq" two;
  check_match tree (plus (church 1) two) "ne" two;
  Alcotest.(check (option string))
    "no match on isz" None
    (run_name tree (isz z))

let test_rhs_template () =
  let tree = Match_tree.compile [ p0; ps; iz; is_row ] in
  let a = church 2 and b = church 3 in
  (* built rhs: s(plus(m,n)) instantiated exactly as Subst.apply would *)
  (match Subst.match_term ~pattern:(plus (s m) n) (plus (s a) b) with
  | None -> Alcotest.fail "pattern should match"
  | Some su ->
    check_match tree (plus (s a) b) "ps" (Subst.apply su (s (plus m n))));
  (* variable rhs: the subject's own subterm comes back *)
  check_match tree (plus z b) "p0" b;
  (* ground rhs: the compile-time interned constant, physically *)
  (match Match_tree.run tree (isz z) with
  | Some (_, reduct) ->
    Alcotest.(check bool) "physically tt" true (reduct == Term.tt)
  | None -> Alcotest.fail "isz z should match")

let test_run_with_bindings () =
  let tree = Match_tree.compile [ p0; ps ] in
  let a = church 1 and b = church 2 in
  match Match_tree.run_with tree (plus (s a) b) with
  | None -> Alcotest.fail "should match"
  | Some (name, binds, reduct) ->
    Alcotest.(check string) "rule" "ps" name;
    check_term "m bound" a (List.assoc "m" binds);
    check_term "n bound" b (List.assoc "n" binds);
    Alcotest.(check int) "one entry per variable" 2 (List.length binds);
    check_term "reduct" (s (plus a b)) reduct

(* {1 Differential properties against the linear scan} *)

let corpus_systems =
  lazy
    (List.map
       (fun spec -> (Corpus_gen.ctx_of spec, Rewrite.of_spec spec))
       Corpus.all)

(* one automaton over ALL of the spec's rules (the root switch
   discriminates the heads), against the scan the automaton must refine *)
let tree_of sys =
  Match_tree.compile
    (List.map (fun r -> (r, r.Rewrite.lhs, r.Rewrite.rhs)) (Rewrite.rules sys))

let linear_match rules t =
  let rec first = function
    | [] -> None
    | r :: rest -> (
      match Subst.match_term ~pattern:r.Rewrite.lhs t with
      | Some su -> Some (r, su)
      | None -> first rest)
  in
  first rules

(* a random (system, subject) pair drawn from the corpus *)
let pair_gen =
  QCheck2.Gen.map
    (fun (which, seed) ->
      let systems = Lazy.force corpus_systems in
      let ctx, sys = List.nth systems (which mod List.length systems) in
      let st = Random.State.make [| seed; 0x51ef3a |] in
      let sort = Corpus_gen.pick st (Corpus_gen.root_sorts ctx) in
      let t =
        Corpus_gen.gen_term ctx sort ~budget:(8 + Random.State.int st 32) st
      in
      (sys, t))
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 0 max_int))

(* the automaton's match (rule fired, substitution, reduct) is exactly the
   first-match linear scan's, at the root of every generated subterm *)
let match_agrees (sys, t) =
  let tree = tree_of sys in
  let rules = Rewrite.rules sys in
  let agree_at t =
    match (Match_tree.run_with tree t, linear_match rules t) with
    | None, None -> true
    | Some (r_a, binds, reduct), Some (r_l, su) ->
      r_a == r_l
      && (match Subst.of_bindings binds with
         | Some su' -> Subst.equal su su'
         | None -> false)
      && Term.equal reduct (Subst.apply su r_l.Rewrite.rhs)
    | _ -> false
  in
  let rec all_subterms t =
    agree_at t
    &&
    match Term.view t with
    | Term.Var _ | Term.Err _ -> true
    | Term.App (_, args) -> List.for_all all_subterms args
    | Term.Ite (c, a, b) -> List.for_all all_subterms [ c; a; b ]
  in
  all_subterms t

(* single steps agree across all three engines: same redex position, same
   rule name, same resulting term *)
let step_agrees (sys, t) =
  let step engine = Rewrite.step (Rewrite.with_engine engine sys) t in
  match
    (step Rewrite.Reference, step Rewrite.Index, step Rewrite.Automaton)
  with
  | None, None, None -> true
  | Some a, Some b, Some c ->
    let same (x : Rewrite.event) (y : Rewrite.event) =
      x.Rewrite.position = y.Rewrite.position
      && String.equal x.Rewrite.rule_used y.Rewrite.rule_used
      && Term.equal x.Rewrite.after y.Rewrite.after
    in
    same a b && same a c
  | _ -> false

(* {1 The compile cache is engine-keyed} *)

(* switching the default engine must read as a miss (and a fresh
   compilation), never as a stale hit that keeps the old engine *)
let test_cache_engine_switch () =
  let saved = Rewrite.default_engine () in
  Fun.protect
    ~finally:(fun () -> Rewrite.set_default_engine saved)
    (fun () ->
      Rewrite.compile_cache_clear ();
      let key = "test-match-tree/engine-switch" in
      Rewrite.set_default_engine Rewrite.Index;
      let sys_index = Rewrite.of_spec_keyed ~key nat_spec in
      Rewrite.set_default_engine Rewrite.Automaton;
      let sys_auto = Rewrite.of_spec_keyed ~key nat_spec in
      let stats = Rewrite.compile_cache_stats () in
      Alcotest.(check int) "both compilations miss" 2 stats.Rewrite.misses;
      Alcotest.(check int) "no stale hit" 0 stats.Rewrite.hits;
      Alcotest.(check bool)
        "index system kept its engine" true
        (Rewrite.engine_of sys_index = Rewrite.Index);
      Alcotest.(check bool)
        "automaton system got the new engine" true
        (Rewrite.engine_of sys_auto = Rewrite.Automaton);
      (* same key, same engine: now it hits, and returns the same system *)
      let sys_auto' = Rewrite.of_spec_keyed ~key nat_spec in
      let stats = Rewrite.compile_cache_stats () in
      Alcotest.(check int) "re-request hits" 1 stats.Rewrite.hits;
      Alcotest.(check bool) "same compiled system" true (sys_auto' == sys_auto);
      Alcotest.(check (list (pair string int)))
        "entries attributed per engine"
        [ ("auto", 1); ("index", 1) ]
        stats.Rewrite.by_engine)

let suite =
  [
    case "prefix sharing across rules" test_prefix_sharing;
    case "first-match priority and generic fall-through"
      test_first_match_priority;
    case "non-left-linear deferred equality" test_non_left_linear;
    case "rhs template instantiation" test_rhs_template;
    case "run_with reports the substitution" test_run_with_bindings;
    case "compile cache is engine-keyed" test_cache_engine_switch;
    qcheck ~count:300 "automaton match = linear scan (corpus)" pair_gen
      match_agrees;
    qcheck ~count:300 "step position/rule/result agree (corpus)" pair_gen
      step_agrees;
  ]
