open Adt
open Helpers
open Adt_specs

let cfg = Proof.config nat_spec

let proved outcome = match outcome with Proof.Proved _ -> true | Proof.Unknown _ -> false

let test_by_normalization () =
  Alcotest.(check bool) "ground equality" true
    (Proof.holds cfg (plus (church 1) (church 1), church 2));
  Alcotest.(check bool) "open normalization" true
    (Proof.holds cfg (plus z (v "n"), v "n"))

let test_unequal_rejected () =
  Alcotest.(check bool) "1 <> 2" false (Proof.holds cfg (church 1, church 2));
  Alcotest.(check bool) "true <> false" false (Proof.holds cfg (Term.tt, Term.ff))

let test_by_induction () =
  (* plus(n, z) = n needs induction on n *)
  let goal = (plus (v "n") z, v "n") in
  match Proof.prove cfg goal with
  | Proof.Proved (Proof.By_induction { on = (name, sort); cases }) ->
    Alcotest.(check string) "on n" "n" name;
    Alcotest.check sort_testable "at sort N" nat sort;
    Alcotest.(check int) "two generator cases" 2 (List.length cases)
  | Proof.Proved p -> Alcotest.failf "unexpected proof shape: %a" Proof.pp_proof p
  | Proof.Unknown _ as u -> Alcotest.failf "%a" Proof.pp_outcome u

let test_induction_uses_hypothesis () =
  (* plus(n, s(m)) = s(plus(n, m)) requires the IH in the s-case *)
  let goal = (plus (v "n") (s (v "m")), s (plus (v "n") (v "m"))) in
  Alcotest.(check bool) "proved" true (Proof.holds cfg goal)

let test_false_universal_rejected () =
  Alcotest.(check bool) "isz(n) = true is not provable" false
    (Proof.holds cfg (isz (v "n"), Term.tt));
  Alcotest.(check bool) "plus(n,n) = n is not provable" false
    (Proof.holds cfg (plus (v "n") (v "n"), v "n"))

let test_case_split () =
  let qcfg = Proof.config Queue_spec.spec in
  let q = Term.var "q" Queue_spec.sort and i = Term.var "i" Builtins.item_sort in
  let goal =
    (Queue_spec.is_empty (Queue_spec.remove (Queue_spec.add q i)), Queue_spec.is_empty q)
  in
  match Proof.prove qcfg goal with
  | Proof.Proved (Proof.By_cases { condition; _ }) ->
    Alcotest.(check string) "split on emptiness" "IS_EMPTY?($q)"
      (Term.to_string condition)
  | Proof.Proved p -> Alcotest.failf "unexpected shape: %a" Proof.pp_proof p
  | Proof.Unknown _ as u -> Alcotest.failf "%a" Proof.pp_outcome u

let test_depth_limits_respected () =
  let shallow =
    Proof.config ~max_case_depth:0 ~max_induction_depth:0 Queue_spec.spec
  in
  let q = Term.var "q" Queue_spec.sort and i = Term.var "i" Builtins.item_sort in
  let goal =
    (Queue_spec.is_empty (Queue_spec.remove (Queue_spec.add q i)), Queue_spec.is_empty q)
  in
  Alcotest.(check bool) "needs case analysis or induction" false
    (Proof.holds shallow goal);
  let no_induction = Proof.config ~max_induction_depth:0 nat_spec in
  Alcotest.(check bool) "needs induction" false
    (Proof.holds no_induction (plus (v "n") z, v "n"))

let test_prove_lemma_pipeline () =
  (* prove plus(n, z) = n as a lemma, then use it *)
  match
    Proof.prove_lemma cfg (Axiom.v ~name:"plus-z-right" ~lhs:(plus (v "n") z) ~rhs:(v "n") ())
  with
  | Error u -> Alcotest.failf "lemma failed: %a" Proof.pp_outcome u
  | Ok cfg' ->
    Alcotest.(check int) "registered as invariant" 1
      (List.length cfg'.Proof.invariants);
    (* the invariant is usable at top-level variables of sort N *)
    Alcotest.(check bool) "consequence" true
      (Proof.holds cfg' (isz (plus (v "n") z), isz (v "n")))

let test_ground_lemma_becomes_rule () =
  match Proof.prove_lemma cfg (Axiom.v ~name:"g" ~lhs:(plus z z) ~rhs:z ()) with
  | Ok cfg' -> Alcotest.(check int) "extra rule" 1 (List.length cfg'.Proof.extra_rules)
  | Error _ -> Alcotest.fail "trivial lemma failed"

let test_unsound_lemma_unprovable () =
  match Proof.prove_lemma cfg (Axiom.v ~name:"bad" ~lhs:(isz (v "n")) ~rhs:Term.tt ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "false lemma proved"

let test_invariants_not_universal () =
  (* an invariant registered for reachable values must not rewrite
     arbitrary subterms (soundness regression test) *)
  let stack = Refinement.stack in
  match Refinement.verified_config () with
  | Error u -> Alcotest.failf "lemma: %a" Proof.pp_outcome u
  | Ok cfg ->
    Alcotest.(check bool) "IS_NEWSTACK?(NEWSTACK) = false NOT provable" false
      (Proof.holds cfg (stack.Stack_spec.is_newstack stack.Stack_spec.newstack, Term.ff));
    Alcotest.(check bool) "its negation still provable" true
      (Proof.holds cfg (stack.Stack_spec.is_newstack stack.Stack_spec.newstack, Term.tt))

let test_generator_override () =
  (* generators define the quantification domain: if every "reachable"
     value is a successor, isz(n) = false becomes provable by generator
     induction — while with the default constructors (z included) it is
     rightly rejected. This is the mechanism behind the paper's
     Assumption 1. *)
  let only_succ = Proof.config ~generators:[ (nat, [ succ_op ]) ] nat_spec in
  Alcotest.(check bool) "provable over successor-generated values" true
    (Proof.holds only_succ (isz (v "n"), Term.ff));
  Alcotest.(check bool) "not provable over all naturals" false
    (Proof.holds cfg (isz (v "n"), Term.ff))

let test_disprove () =
  let u = Enum.universe nat_spec in
  (match Proof.disprove cfg ~universe:u ~size:4 (isz (v "n"), Term.tt) with
  | Some (sub, got, expected) ->
    Alcotest.(check bool) "counterexample binds n" true (Subst.mem "n" sub);
    Alcotest.(check bool) "distinct values" false (Term.equal got expected)
  | None -> Alcotest.fail "no counterexample found");
  Alcotest.(check bool) "true statements survive" true
    (Proof.disprove cfg ~universe:u ~size:4 (plus (v "n") z, v "n") = None)

let test_proof_metrics () =
  match Proof.prove cfg (plus (v "n") z, v "n") with
  | Proof.Proved p ->
    Alcotest.(check bool) "size" true (Proof.proof_size p >= 3);
    Alcotest.(check bool) "depth" true (Proof.proof_depth p >= 2)
  | Proof.Unknown _ -> Alcotest.fail "unproved"

let test_skolems_do_not_leak () =
  (* skolem constants are internal: they never appear in reported normal
     forms of a [By_normalization] on ground goals *)
  match Proof.prove cfg (plus (church 2) (church 2), church 4) with
  | Proof.Proved (Proof.By_normalization { lhs_nf; _ }) ->
    check_term "clean" (church 4) lhs_nf
  | _ -> Alcotest.fail "unexpected"

let suite =
  [
    case "proof by normalization" test_by_normalization;
    case "unequal sides rejected" test_unequal_rejected;
    case "proof by structural induction" test_by_induction;
    case "induction hypotheses are used" test_induction_uses_hypothesis;
    case "false universals rejected" test_false_universal_rejected;
    case "proof by case analysis" test_case_split;
    case "depth limits respected" test_depth_limits_respected;
    case "lemmas become invariants" test_prove_lemma_pipeline;
    case "ground lemmas become rules" test_ground_lemma_becomes_rule;
    case "false lemmas rejected" test_unsound_lemma_unprovable;
    case "invariants are not universal rules (soundness)"
      test_invariants_not_universal;
    case "generator overrides change the domain" test_generator_override;
    case "disproof by bounded search" test_disprove;
    case "proof metrics" test_proof_metrics;
    case "skolem constants stay internal" test_skolems_do_not_leak;
  ]
