open Adt
open Helpers
open Adt_specs

let interp = Interp.create Queue_spec.spec
let item = Builtins.item

let test_eval_values () =
  (match Interp.eval interp (Queue_spec.of_items [ item 1 ]) with
  | Interp.Value t -> check_term "already normal" (Queue_spec.of_items [ item 1 ]) t
  | other -> Alcotest.failf "expected value, got %a" Interp.pp_value other);
  match Interp.eval interp (Queue_spec.front (Queue_spec.of_items [ item 1; item 2 ])) with
  | Interp.Value t -> check_term "FIFO front" (item 1) t
  | other -> Alcotest.failf "expected ITEM1, got %a" Interp.pp_value other

let test_fifo_order () =
  (* drain a queue symbolically and observe FIFO order *)
  let rec drain acc q n =
    if n = 0 then List.rev acc
    else
      let front =
        match Interp.eval interp (Queue_spec.front q) with
        | Interp.Value t -> t
        | other -> Alcotest.failf "front: %a" Interp.pp_value other
      in
      let rest =
        match Interp.eval interp (Queue_spec.remove q) with
        | Interp.Value t -> t
        | other -> Alcotest.failf "remove: %a" Interp.pp_value other
      in
      drain (front :: acc) rest (n - 1)
  in
  let q = Queue_spec.of_items [ item 1; item 2; item 3; item 4 ] in
  check_terms "FIFO" [ item 1; item 2; item 3; item 4 ] (drain [] q 4)

let test_eval_errors () =
  (match Interp.eval interp (Queue_spec.front Queue_spec.new_) with
  | Interp.Error_value s -> Alcotest.check sort_testable "item error" Builtins.item_sort s
  | other -> Alcotest.failf "expected error, got %a" Interp.pp_value other);
  (* strict propagation through enclosing operations *)
  match
    Interp.eval interp
      (Queue_spec.is_empty (Queue_spec.add (Queue_spec.remove Queue_spec.new_) (item 1)))
  with
  | Interp.Error_value s -> Alcotest.check sort_testable "bool error" Sort.bool s
  | other -> Alcotest.failf "expected error, got %a" Interp.pp_value other

let test_eval_bool () =
  Alcotest.(check (option bool)) "empty" (Some true)
    (Interp.eval_bool interp (Queue_spec.is_empty Queue_spec.new_));
  Alcotest.(check (option bool)) "nonempty" (Some false)
    (Interp.eval_bool interp (Queue_spec.is_empty (Queue_spec.of_items [ item 1 ])));
  Alcotest.(check (option bool)) "error is not a boolean" None
    (Interp.eval_bool interp (Queue_spec.is_empty (Queue_spec.remove Queue_spec.new_)))

let test_eval_rejects_open_terms () =
  match Interp.eval interp (Queue_spec.is_empty (Term.var "q" Queue_spec.sort)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "open term accepted"

let test_stuck_detection () =
  (* remove an axiom: evaluation reports the stuck term instead of lying *)
  let broken = Interp.create (Spec.without_axiom "4" Queue_spec.spec) in
  match Interp.eval broken (Queue_spec.front (Queue_spec.of_items [ item 1; item 2 ])) with
  | Interp.Stuck t ->
    Alcotest.(check bool) "FRONT survives in the residual" true
      (Term.count_op "FRONT" t > 0)
  | other -> Alcotest.failf "expected stuck, got %a" Interp.pp_value other

let test_apply_and_call () =
  let q = Interp.apply interp "ADD" [ Interp.apply interp "NEW" []; item 2 ] in
  (match Interp.call interp "FRONT" [ q ] with
  | Interp.Value t -> check_term "call" (item 2) t
  | other -> Alcotest.failf "unexpected %a" Interp.pp_value other);
  (match Interp.apply interp "MISSING" [] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown op accepted");
  match Interp.apply interp "ADD" [ item 1; item 2 ] with
  | exception Term.Ill_sorted _ -> ()
  | _ -> Alcotest.fail "ill-sorted call accepted"

let test_reduce_open_terms () =
  let q = Term.var "q" Queue_spec.sort and i = Term.var "i" Builtins.item_sort in
  check_term "axiom 2 as computation" Term.ff
    (Interp.reduce interp (Queue_spec.is_empty (Queue_spec.add q i)))

let test_steps_grow_with_input () =
  let steps n = Interp.steps interp (Queue_spec.remove (Queue_spec.of_items (List.init n (fun _ -> item 1)))) in
  Alcotest.(check bool) "monotone cost" true (steps 8 > steps 2)

let test_diverged () =
  let loop =
    Spec.v ~name:"L" ~signature:base_signature ~constructors:[ "z"; "s" ]
      ~axioms:[ Axiom.v ~name:"w" ~lhs:(isz (v "x")) ~rhs:(isz (s (v "x"))) () ]
      ()
  in
  let i = Interp.create ~fuel:50 loop in
  match Interp.eval i (isz z) with
  | Interp.Diverged -> ()
  | other -> Alcotest.failf "expected divergence, got %a" Interp.pp_value other

let test_trace_length_matches_steps () =
  let t = Queue_spec.front (Queue_spec.of_items [ item 1; item 2; item 3 ]) in
  let nf, _events = Interp.trace interp t in
  check_term "trace result" (item 1) nf

let suite =
  [
    case "values evaluate to constructor normal forms" test_eval_values;
    case "FIFO order falls out of the axioms" test_fifo_order;
    case "error values and strict propagation" test_eval_errors;
    case "boolean observations" test_eval_bool;
    case "open terms are rejected by eval" test_eval_rejects_open_terms;
    case "incomplete specs yield Stuck, not wrong answers" test_stuck_detection;
    case "apply and call" test_apply_and_call;
    case "reduce handles open terms" test_reduce_open_terms;
    case "cost grows with input size" test_steps_grow_with_input;
    case "fuel exhaustion reported as divergence" test_diverged;
    case "tracing reaches the same result" test_trace_length_matches_steps;
  ]
