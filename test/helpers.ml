(* Shared fixtures and Alcotest testables for the whole suite. *)

open Adt

let term_testable = Alcotest.testable Term.pp Term.equal
let sort_testable = Alcotest.testable Sort.pp Sort.equal
let op_testable = Alcotest.testable Op.pp Op.equal

let subst_testable = Alcotest.testable Subst.pp Subst.equal

let check_term = Alcotest.check term_testable
let check_terms = Alcotest.check (Alcotest.list term_testable)

(* a tiny free signature over one sort, used by the structural tests *)
let nat = Sort.v "N"
let zero_op = Op.v "z" ~args:[] ~result:nat
let succ_op = Op.v "s" ~args:[ nat ] ~result:nat
let plus_op = Op.v "plus" ~args:[ nat; nat ] ~result:nat
let isz_op = Op.v "isz" ~args:[ nat ] ~result:Sort.bool

let base_signature =
  List.fold_left
    (fun sg op -> Signature.add_op op sg)
    (Signature.add_sort nat Signature.empty)
    [ zero_op; succ_op; plus_op; isz_op ]

let z = Term.const zero_op
let s t = Term.app succ_op [ t ]
let plus a b = Term.app plus_op [ a; b ]
let isz t = Term.app isz_op [ t ]
let v name = Term.var name nat

let rec church n = if n = 0 then z else s (church (n - 1))

let nat_axioms =
  let m = v "m" and n' = v "n" in
  [
    Axiom.v ~name:"p0" ~lhs:(plus z n') ~rhs:n' ();
    Axiom.v ~name:"ps" ~lhs:(plus (s m) n') ~rhs:(s (plus m n')) ();
    Axiom.v ~name:"iz" ~lhs:(isz z) ~rhs:Term.tt ();
    Axiom.v ~name:"is" ~lhs:(isz (s m)) ~rhs:Term.ff ();
  ]

let nat_spec =
  Spec.v ~name:"N" ~signature:base_signature ~constructors:[ "z"; "s" ]
    ~axioms:nat_axioms ()

let nat_system = Rewrite.of_spec nat_spec

(* parse helpers over an arbitrary spec *)
let parse_term_exn ?vars ?expected spec src =
  match Parser.parse_term spec ?vars ?expected src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse_term %S: %a" src Parser.pp_error e

let parse_spec_exn ?env src =
  match Parser.parse_spec ?env src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse_spec: %a" Parser.pp_error e

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* {1 Random well-sorted corpus terms}

   The generator behind the differential suites ([test_diff], the
   automaton tests): random well-sorted terms over the FULL signature of
   a corpus specification — defined operations, constructor subterms via
   [Enum], occasional variables, [error], and if-then-else — so they
   exercise rule dispatch, strict error propagation, lazy conditionals,
   and stuck terms alike. *)

module Corpus_gen = struct
  (* atoms for the corpus's parameter sorts, so [Enum] can populate them *)
  let atoms sort =
    match Sort.name sort with
    | "Item" -> List.init 3 (fun i -> Adt_specs.Builtins.item (i + 1))
    | "Identifier" -> List.map Adt_specs.Identifier.id [ "X"; "Y"; "Z" ]
    | _ -> []

  type ctx = { spec : Spec.t; universe : Enum.universe; has_bool : bool }

  let ctx_of spec =
    {
      spec;
      universe = Enum.universe ~atoms spec;
      has_bool = Signature.mem_sort Sort.bool (Spec.signature spec);
    }

  let pick st l = List.nth l (Random.State.int st (List.length l))

  (* a small leaf: usually a ground constructor term, sometimes a variable,
     [error] when the sort has no generators at all *)
  let leaf ctx sort st =
    if Random.State.int st 10 = 0 then Term.var (pick st [ "x"; "y" ]) sort
    else
      match Enum.random_term ctx.universe sort ~size:5 st with
      | Some t -> t
      | None -> Term.err sort

  (* a random well-sorted term of the given sort over the full signature;
     [budget] bounds the recursion *)
  let rec gen_term ctx sort ~budget st =
    if budget <= 0 then leaf ctx sort st
    else
      let roll = Random.State.int st 100 in
      if roll < 6 then leaf ctx sort st
      else if roll < 9 then Term.err sort
      else if roll < 22 && ctx.has_bool then
        let sub = budget / 3 in
        Term.ite
          (gen_term ctx Sort.bool ~budget:sub st)
          (gen_term ctx sort ~budget:sub st)
          (gen_term ctx sort ~budget:sub st)
      else
        match Signature.ops_with_result sort (Spec.signature ctx.spec) with
        | [] -> leaf ctx sort st
        | ops ->
          (* prefer non-nullary operations while budget remains, otherwise
             the branching process dies out and terms stay trivially small *)
          let heavy = List.filter (fun o -> Op.args o <> []) ops in
          let op = pick st (if heavy = [] then ops else heavy) in
          let arity = List.length (Op.args op) in
          let sub = if arity = 0 then 0 else (budget - 1) / arity in
          Term.app op
            (List.map (fun s -> gen_term ctx s ~budget:sub st) (Op.args op))

  let root_sorts ctx =
    Sort.Set.elements (Signature.sorts (Spec.signature ctx.spec))

  (* the generator draws one integer from QCheck2 (so QCHECK_SEED pins the
     whole run) and derives everything else from a private PRNG state *)
  let term_gen ctx =
    QCheck2.Gen.map
      (fun seed ->
        let st = Random.State.make [| seed; 0x9e3779 |] in
        let sort = pick st (root_sorts ctx) in
        gen_term ctx sort ~budget:(16 + Random.State.int st 48) st)
      QCheck2.Gen.(int_range 0 max_int)
end
