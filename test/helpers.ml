(* Shared fixtures and Alcotest testables for the whole suite. *)

open Adt

let term_testable = Alcotest.testable Term.pp Term.equal
let sort_testable = Alcotest.testable Sort.pp Sort.equal
let op_testable = Alcotest.testable Op.pp Op.equal

let subst_testable = Alcotest.testable Subst.pp Subst.equal

let check_term = Alcotest.check term_testable
let check_terms = Alcotest.check (Alcotest.list term_testable)

(* a tiny free signature over one sort, used by the structural tests *)
let nat = Sort.v "N"
let zero_op = Op.v "z" ~args:[] ~result:nat
let succ_op = Op.v "s" ~args:[ nat ] ~result:nat
let plus_op = Op.v "plus" ~args:[ nat; nat ] ~result:nat
let isz_op = Op.v "isz" ~args:[ nat ] ~result:Sort.bool

let base_signature =
  List.fold_left
    (fun sg op -> Signature.add_op op sg)
    (Signature.add_sort nat Signature.empty)
    [ zero_op; succ_op; plus_op; isz_op ]

let z = Term.const zero_op
let s t = Term.app succ_op [ t ]
let plus a b = Term.app plus_op [ a; b ]
let isz t = Term.app isz_op [ t ]
let v name = Term.var name nat

let rec church n = if n = 0 then z else s (church (n - 1))

let nat_axioms =
  let m = v "m" and n' = v "n" in
  [
    Axiom.v ~name:"p0" ~lhs:(plus z n') ~rhs:n' ();
    Axiom.v ~name:"ps" ~lhs:(plus (s m) n') ~rhs:(s (plus m n')) ();
    Axiom.v ~name:"iz" ~lhs:(isz z) ~rhs:Term.tt ();
    Axiom.v ~name:"is" ~lhs:(isz (s m)) ~rhs:Term.ff ();
  ]

let nat_spec =
  Spec.v ~name:"N" ~signature:base_signature ~constructors:[ "z"; "s" ]
    ~axioms:nat_axioms ()

let nat_system = Rewrite.of_spec nat_spec

(* parse helpers over an arbitrary spec *)
let parse_term_exn ?vars ?expected spec src =
  match Parser.parse_term spec ?vars ?expected src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse_term %S: %a" src Parser.pp_error e

let parse_spec_exn ?env src =
  match Parser.parse_spec ?env src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse_spec: %a" Parser.pp_error e

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
