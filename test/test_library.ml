open Adt
open Helpers

let base_source =
  {|
spec Item
  sort Item
  ops
    I1 : -> Item
    I2 : -> Item
  constructors I1 I2
end
|}

let queue_source =
  {|
spec Queue
  uses Item
  sort Queue
  ops
    NEW : -> Queue
    ADD : Queue Item -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW ADD
  vars
    q : Queue
    i : Item
  axioms
    [1] IS_EMPTY?(NEW) = true
    [2] IS_EMPTY?(ADD(q, i)) = false
end
|}

let load_exn lib src =
  match Library.load_source lib src with
  | Ok lib -> lib
  | Error e -> Alcotest.failf "load: %a" Parser.pp_error e

let test_registration () =
  let lib = Library.add nat_spec Library.empty in
  Alcotest.(check bool) "mem" true (Library.mem "N" lib);
  Alcotest.(check bool) "find" true (Library.find "N" lib <> None);
  Alcotest.(check bool) "absent" true (Library.find "Ghost" lib = None);
  Alcotest.(check (list string)) "names" [ "N" ] (Library.names lib)

let test_replacement () =
  let lib = Library.add nat_spec Library.empty in
  let smaller = Spec.without_axiom "p0" nat_spec in
  let lib = Library.add smaller lib in
  Alcotest.(check int) "replaced, not duplicated" 1
    (List.length (Library.names lib));
  match Library.find "N" lib with
  | Some found ->
    Alcotest.(check int) "newest wins" 3 (List.length (Spec.axioms found))
  | None -> Alcotest.fail "lost"

let test_cross_file_uses () =
  let lib = load_exn Library.builtin base_source in
  let lib = load_exn lib queue_source in
  Alcotest.(check (list string)) "both registered" [ "Item"; "Queue" ]
    (Library.names lib);
  match Library.find "Queue" lib with
  | Some queue ->
    Alcotest.(check bool) "Item ops visible" true
      (Spec.find_op "I1" queue <> None)
  | None -> Alcotest.fail "Queue missing"

let test_unresolved_uses_fails () =
  match Library.load_source Library.builtin queue_source with
  | Error e ->
    Alcotest.(check bool) "mentions Item" true
      (Astring_contains.contains e.Parser.message "Item")
  | Ok _ -> Alcotest.fail "unresolved uses accepted"

let test_check_all () =
  let lib = load_exn Library.builtin base_source in
  let lib = load_exn lib queue_source in
  let reports = Library.check_all lib in
  Alcotest.(check int) "one report per spec" 2 (List.length reports);
  List.iter
    (fun (name, comp, cons) ->
      Alcotest.(check bool) (name ^ " complete") true
        (Completeness.is_complete comp);
      Alcotest.(check bool) (name ^ " confluent") true
        (Consistency.locally_confluent cons))
    reports

let suite =
  [
    case "registration and lookup" test_registration;
    case "re-registration replaces" test_replacement;
    case "uses resolves across files" test_cross_file_uses;
    case "unresolved uses is an error" test_unresolved_uses_fails;
    case "check_all covers every registered spec" test_check_all;
  ]
