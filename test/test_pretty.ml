open Adt
open Helpers

let test_source_has_sections () =
  let src = Pretty.source_of_spec nat_spec in
  List.iter
    (fun needle ->
      if not (Astring_contains.contains src needle) then
        Alcotest.failf "missing %S in:@.%s" needle src)
    [ "spec N"; "sort N"; "ops"; "constructors"; "vars"; "axioms"; "end" ]

let test_builtins_omitted () =
  let src = Pretty.source_of_spec nat_spec in
  Alcotest.(check bool) "no true decl" false
    (Astring_contains.contains src "true : -> Bool");
  Alcotest.(check bool) "no Bool sort decl" false
    (Astring_contains.contains src "sort Bool")

let test_axiom_labels_printed () =
  let src = Pretty.source_of_spec nat_spec in
  Alcotest.(check bool) "label" true (Astring_contains.contains src "[p0]")

let test_spec_without_axioms () =
  let src = Pretty.source_of_spec Adt_specs.Builtins.item_spec in
  match Parser.parse_spec src with
  | Ok s ->
    Alcotest.(check int) "no axioms" 0 (List.length (Spec.axioms s));
    Alcotest.(check bool) "constructors kept" true
      (Spec.is_constructor_name "ITEM1" s)
  | Error e -> Alcotest.failf "%a@.%s" Parser.pp_error e src

let test_union_round_trip () =
  (* the knows-variant spec is the most heterogeneous union in the corpus *)
  let spec = Adt_specs.Symboltable_knows_spec.spec in
  let src = Pretty.source_of_spec spec in
  match Parser.parse_spec src with
  | Ok s ->
    Alcotest.(check bool) "signature" true
      (Signature.equal (Spec.signature spec) (Spec.signature s));
    Alcotest.(check int) "axioms" (List.length (Spec.axioms spec))
      (List.length (Spec.axioms s))
  | Error e -> Alcotest.failf "%a@.%s" Parser.pp_error e src

let test_refinement_round_trip () =
  (* primed operation names (INIT', IS_INBLOCK?') survive the round trip *)
  let spec = Adt_specs.Refinement.combined in
  let src = Pretty.source_of_spec spec in
  match Parser.parse_spec src with
  | Ok s ->
    Alcotest.(check bool) "signature" true
      (Signature.equal (Spec.signature spec) (Spec.signature s))
  | Error e -> Alcotest.failf "%a@.%s" Parser.pp_error e src

let test_pp_axioms () =
  let text = Fmt.str "%a" Pretty.pp_axioms nat_axioms in
  Alcotest.(check bool) "one per line" true
    (List.length (String.split_on_char '\n' text) >= 4);
  Alcotest.(check bool) "labelled" true (Astring_contains.contains text "[ps]")

let suite =
  [
    case "rendered source has every section" test_source_has_sections;
    case "builtin Boolean material is implicit" test_builtins_omitted;
    case "axiom labels are printed" test_axiom_labels_printed;
    case "axiom-free specifications round trip" test_spec_without_axioms;
    case "heterogeneous unions round trip" test_union_round_trip;
    case "the refinement system round trips" test_refinement_round_trip;
    case "pp_axioms" test_pp_axioms;
  ]
