(* The lint subsystem: one test block per ADTxxx rule (each against the
   shape seeded in specs/faulty/), the driver's filtering and counting,
   the renderers, and the engine's lint verb. The CLI transcripts are
   pinned by cli_tests; these tests exercise the pieces directly. *)

open Adt
open Analysis

let contains = Astring_contains.contains

let parse src =
  match Parser.parse_spec src with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "parse: %a" Parser.pp_error e

(* the same seeded faults as specs/faulty/*.adt, one string per file, so
   the unit tests need no filesystem access *)

let missing_case_src =
  {|
spec Elem
  sort Elem
  ops
    E1 : -> Elem
    E2 : -> Elem
  constructors E1 E2
end
spec LeakyQueue
  uses Elem
  sort LeakyQueue
  ops
    NEWQ : -> LeakyQueue
    PUSH : LeakyQueue Elem -> LeakyQueue
    POP : LeakyQueue -> LeakyQueue
    PEEK : LeakyQueue -> Elem
  constructors NEWQ PUSH
  vars
    q : LeakyQueue
    e : Elem
  axioms
    [pop_push] POP(PUSH(q, e)) = q
    [peek_push] PEEK(PUSH(q, e)) = e
end
|}

let divergent_src =
  {|
spec Toggle
  sort Toggle
  ops
    ON : -> Toggle
    OFF : -> Toggle
    FLIP : Toggle -> Toggle
    LIT? : Toggle -> Bool
  constructors ON OFF
  vars
    t : Toggle
  axioms
    [flip_on] FLIP(ON) = OFF
    [flip_off] FLIP(OFF) = ON
    [lit_on] LIT?(ON) = true
    [lit_off] LIT?(OFF) = false
    [flip_lit] LIT?(FLIP(t)) = LIT?(t)
end
|}

let nonlinear_src =
  {|
spec Sym
  sort Sym
  ops
    A : -> Sym
    B : -> Sym
    SAME? : Sym Sym -> Bool
  constructors A B
  vars
    s : Sym
  axioms
    [eq] SAME?(s, s) = true
end
|}

let free_rhs_src =
  {|
spec Counter
  sort Counter
  ops
    ZERO : -> Counter
    INC : Counter -> Counter
    SEED : -> Counter
  constructors ZERO INC
  vars
    c : Counter
  axioms
    [seed] SEED = INC(c)
end
|}

let dead_axiom_src =
  {|
spec Blip
  sort Blip
  ops
    INIT : -> Blip
    STATUS : Blip -> Bool
  constructors INIT
  vars
    b : Blip
  axioms
    [status_any] STATUS(b) = true
    [status_init] STATUS(INIT) = false
end
|}

let unreachable_src =
  {|
spec Loop
  sort Loop
  ops
    SPIN : Loop -> Loop
    DONE? : Loop -> Bool
  constructors SPIN
  vars
    l : Loop
  axioms
    [spin] DONE?(SPIN(l)) = false
end
|}

let strict_error_src =
  {|
spec Widget
  sort Widget
  ops
    W1 : -> Widget
    W2 : -> Widget
  constructors W1 W2
end
spec Sink
  uses Widget
  sort Sink
  ops
    NEWS : -> Sink
    PUT : Sink Widget -> Sink
    GET : Sink -> Widget
  constructors NEWS PUT
  vars
    s : Sink
    w : Widget
  axioms
    [get_err] GET(error) = W1
    [get_put] GET(PUT(s, w)) = w
end
|}

let blend_incomplete_src =
  {|
spec Light
  sort Light
  ops
    RED : -> Light
    GREEN : -> Light
    BLEND : Light Light -> Light
  constructors RED GREEN
  vars
    l : Light
  axioms
    [rr] BLEND(RED, RED) = RED
    [rg] BLEND(RED, GREEN) = GREEN
    [gr] BLEND(GREEN, RED) = GREEN
end
|}

let unorientable_src =
  {|
spec Flow
  sort Flow
  ops
    SRC : -> Flow
    PIPE : Flow -> Flow
    MERGE : Flow Flow -> Flow
  constructors SRC PIPE
  vars
    a : Flow
    b : Flow
  axioms
    [comm] MERGE(a, b) = MERGE(b, a)
end
|}

let nonconfluent_src =
  {|
spec Tally
  sort Tally
  ops
    Z : -> Tally
    S : Tally -> Tally
  constructors Z S
  vars
    x : Tally
  axioms
    [wrap3] S(S(S(x))) = Z
    [drop2] S(S(x)) = x
end
|}

let codes_of diags = List.map (fun d -> d.Diagnostic.code) diags

let count code diags =
  List.length (List.filter (fun d -> String.equal d.Diagnostic.code code) diags)

(* {1 Diagnostic} *)

let test_diagnostic_rejects_unpublished_code () =
  Alcotest.check_raises "unpublished code"
    (Invalid_argument "Diagnostic.v: unpublished rule code ADT999") (fun () ->
      ignore
        (Diagnostic.v ~code:"ADT999" ~severity:Diagnostic.Error ~spec:"X" "m"))

let test_severity_order () =
  Alcotest.(check bool) "error >= warning" true
    (Diagnostic.severity_at_least Diagnostic.Error
       ~threshold:Diagnostic.Warning);
  Alcotest.(check bool) "info < warning" false
    (Diagnostic.severity_at_least Diagnostic.Info ~threshold:Diagnostic.Warning);
  Alcotest.(check (option string))
    "round trip" (Some "warning")
    (Option.map Diagnostic.severity_name
       (Diagnostic.severity_of_string "warning"))

let test_rule_table () =
  Alcotest.(check (list string))
    "published codes"
    [
      "ADT001"; "ADT002"; "ADT010"; "ADT011"; "ADT012"; "ADT013"; "ADT014";
      "ADT020"; "ADT021"; "ADT022";
    ]
    Diagnostic.codes;
  Alcotest.(check string) "slug" "dead-axiom" (Diagnostic.slug_of_code "ADT012")

let test_to_line_format () =
  let d =
    Diagnostic.v ~code:"ADT010" ~severity:Diagnostic.Warning ~spec:"Sym"
      ~op:"SAME?" ~axiom:"eq" ~suggestion:"split it" "not left-linear"
  in
  Alcotest.(check string)
    "line"
    "ADT010 non-left-linear warning Sym, op SAME?, axiom [eq]: not \
     left-linear (suggest: split it)"
    (Diagnostic.to_line d)

(* {1 The passes, one faulty input each} *)

let test_left_linear () =
  match Left_linear.check (parse nonlinear_src) with
  | [ d ] ->
    Alcotest.(check string) "code" "ADT010" d.Diagnostic.code;
    Alcotest.(check bool) "warning" true
      (d.Diagnostic.severity = Diagnostic.Warning);
    Alcotest.(check (option string)) "op" (Some "SAME?") d.Diagnostic.locus.Diagnostic.op;
    Alcotest.(check (option string))
      "axiom" (Some "eq") d.Diagnostic.locus.Diagnostic.axiom
  | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other)

let test_free_rhs () =
  match Free_rhs.check (parse free_rhs_src) with
  | [ d ] ->
    Alcotest.(check string) "code" "ADT011" d.Diagnostic.code;
    Alcotest.(check bool) "error" true (d.Diagnostic.severity = Diagnostic.Error);
    Alcotest.(check bool) "names the variable" true
      (contains d.Diagnostic.message "variable c")
  | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other)

let test_dead_axiom () =
  match Dead_axiom.check (parse dead_axiom_src) with
  | [ d ] ->
    Alcotest.(check string) "code" "ADT012" d.Diagnostic.code;
    Alcotest.(check (option string))
      "the dead one" (Some "status_init") d.Diagnostic.locus.Diagnostic.axiom;
    Alcotest.(check bool) "names the subsumer" true
      (contains d.Diagnostic.message "status_any")
  | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other)

let test_dead_axiom_order_sensitivity () =
  (* the specific case first is the idiomatic order and is not dead *)
  let reordered =
    parse
      {|
spec Blip
  sort Blip
  ops
    INIT : -> Blip
    STATUS : Blip -> Bool
  constructors INIT
  vars
    b : Blip
  axioms
    [status_init] STATUS(INIT) = false
    [status_any] STATUS(b) = true
end
|}
  in
  Alcotest.(check int) "specific-first is live" 0
    (List.length (Dead_axiom.check reordered))

let test_reachability () =
  match Reachability.check (parse unreachable_src) with
  | [ d ] ->
    Alcotest.(check string) "code" "ADT013" d.Diagnostic.code;
    Alcotest.(check bool) "error" true (d.Diagnostic.severity = Diagnostic.Error);
    Alcotest.(check bool) "names the sort" true
      (contains d.Diagnostic.message "sort Loop")
  | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other)

let test_reachability_fixpoint_through_layers () =
  (* inhabitation must propagate: Box is inhabited only via Base, which a
     one-round check would miss if it visited Box first *)
  let layered =
    parse
      {|
spec Layered
  sort Base
  sort Box
  ops
    B0 : -> Base
    WRAP : Base -> Box
    UNWRAP : Box -> Base
  constructors B0 WRAP
  vars
    x : Box
  axioms
    [u] UNWRAP(x) = B0
end
|}
  in
  Alcotest.(check int) "both sorts inhabited" 0
    (List.length (Reachability.check layered))

let test_strict_error () =
  match Strict_error.check (parse strict_error_src) with
  | [ d ] ->
    Alcotest.(check string) "code" "ADT014" d.Diagnostic.code;
    Alcotest.(check (option string))
      "axiom" (Some "get_err") d.Diagnostic.locus.Diagnostic.axiom
  | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other)

(* {1 The adapted rules} *)

let test_missing_case_adapter () =
  let diags = Lint.run (parse missing_case_src) in
  Alcotest.(check int) "two missing boundary cases" 2 (count "ADT001" diags);
  List.iter
    (fun d ->
      Alcotest.(check bool) "suggests an error stub" true
        (match d.Diagnostic.suggestion with
        | Some s -> contains s "error"
        | None -> false))
    (List.filter (fun d -> String.equal d.Diagnostic.code "ADT001") diags)

let test_critical_pair_adapter () =
  let diags = Lint.run (parse divergent_src) in
  Alcotest.(check int) "two divergent pairs" 2 (count "ADT002" diags);
  List.iter
    (fun d ->
      Alcotest.(check bool) "inconsistency is error severity" true
        (d.Diagnostic.severity = Diagnostic.Error))
    (List.filter (fun d -> String.equal d.Diagnostic.code "ADT002") diags)

(* {1 The driver} *)

let test_every_rule_fires_on_its_faulty_input () =
  List.iter
    (fun (src, code) ->
      let diags = Lint.run (parse src) in
      Alcotest.(check bool)
        (Fmt.str "%s fires" code)
        true
        (List.mem code (codes_of diags)))
    [
      (missing_case_src, "ADT001");
      (divergent_src, "ADT002");
      (nonlinear_src, "ADT010");
      (free_rhs_src, "ADT011");
      (dead_axiom_src, "ADT012");
      (unreachable_src, "ADT013");
      (strict_error_src, "ADT014");
      (blend_incomplete_src, "ADT020");
      (unorientable_src, "ADT021");
      (nonconfluent_src, "ADT022");
    ]

let test_silent_on_the_paper_corpus () =
  Alcotest.(check bool)
    "corpus is non-empty" true
    (List.length Adt_specs.Corpus.all >= 10);
  List.iter
    (fun spec ->
      Alcotest.(check (list string))
        (Fmt.str "%s is clean" (Spec.name spec))
        []
        (codes_of (Lint.run spec)))
    Adt_specs.Corpus.all

let test_rule_filter () =
  let config = { Lint.only = Some [ "ADT010" ]; fuel = None } in
  let diags = Lint.run ~config (parse nonlinear_src) in
  Alcotest.(check (list string)) "only ADT010" [ "ADT010" ] (codes_of diags);
  Alcotest.check_raises "unknown code"
    (Invalid_argument "Lint.run: unknown rule code ADT9") (fun () ->
      ignore
        (Lint.run ~config:{ Lint.only = Some [ "ADT9" ]; fuel = None }
           (parse nonlinear_src)))

let test_static_subset () =
  let diags = Lint.static (parse strict_error_src) in
  (* ADT001 would fire on a full run; static must leave it out *)
  Alcotest.(check (list string)) "static only" [ "ADT014" ] (codes_of diags)

let test_counts_by_rule () =
  let diags = Lint.run (parse nonlinear_src) in
  let counts = Lint.counts_by_rule diags in
  Alcotest.(check int) "every code listed" (List.length Diagnostic.codes)
    (List.length counts);
  Alcotest.(check (option int)) "ADT010" (Some 1)
    (List.assoc_opt "ADT010" counts);
  Alcotest.(check (option int)) "ADT012 zero" (Some 0)
    (List.assoc_opt "ADT012" counts);
  Alcotest.(check int) "counts sum to findings" (List.length diags)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 counts)

let test_max_severity () =
  Alcotest.(check bool) "clean spec has no severity" true
    (Lint.max_severity (Lint.run (parse {|
spec T
  sort T
  ops
    MK : -> T
  constructors MK
end
|})) = None);
  Alcotest.(check bool) "nonlinear peaks at error (ADT001)" true
    (Lint.max_severity (Lint.run (parse nonlinear_src))
    = Some Diagnostic.Error)

(* {1 Renderers} *)

let test_text_render () =
  let groups = [ ("f.adt", Lint.run (parse nonlinear_src)) ] in
  let out = Render.text groups in
  Alcotest.(check bool) "file prefix" true (contains out "f.adt: ADT");
  (* ADT001 + ADT020 (errors) and ADT010 (warning) on the nonlinear seed *)
  Alcotest.(check bool) "summary" true
    (contains out "3 findings (2 errors, 1 warning, 0 info)")

let test_json_render_escapes () =
  let d =
    Diagnostic.v ~code:"ADT001" ~severity:Diagnostic.Info ~spec:"S"
      "a \"quoted\"\nmessage"
  in
  let line = Render.json_lines [ ("f.adt", [ d ]) ] in
  Alcotest.(check bool) "escaped quote" true (contains line {|a \"quoted\"|});
  Alcotest.(check bool) "escaped newline" true (contains line {|\nmessage|});
  Alcotest.(check bool) "null op" true (contains line {|"op":null|})

let test_json_render_one_object_per_finding () =
  let diags = Lint.run (parse divergent_src) in
  let out = Render.json_lines [ ("d.adt", diags) ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "one line per finding" (List.length diags)
    (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "looks like an object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let test_sarif_render () =
  let infod = Diagnostic.v ~code:"ADT002" ~severity:Diagnostic.Info ~spec:"S" "t" in
  let out =
    Render.sarif
      [
        ("d.adt", Lint.run (parse divergent_src));
        ("i.adt", [ infod ]);
      ]
  in
  Alcotest.(check bool) "version" true (contains out {|"version":"2.1.0"|});
  Alcotest.(check bool) "schema" true (contains out "sarif-2.1.0.json");
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Fmt.str "rule %s published" code)
        true
        (contains out (Fmt.str {|"id":"%s"|} code)))
    Diagnostic.codes;
  Alcotest.(check bool) "error level" true (contains out {|"level":"error"|});
  Alcotest.(check bool) "info maps to note" true
    (contains out {|"level":"note"|});
  Alcotest.(check bool) "physical location" true
    (contains out {|"artifactLocation":{"uri":"d.adt"}|})

(* {1 Heuristics on the faulty corpus (the ADT001 feeder)} *)

let test_prompts_boundary_classification_on_faulty () =
  match Heuristics.prompts (parse missing_case_src) with
  | [ p1; p2 ] ->
    List.iter
      (fun (p : Heuristics.prompt) ->
        Alcotest.(check bool) "boundary kind" true
          (p.Heuristics.kind = Heuristics.Boundary);
        Alcotest.(check bool) "boundary wording" true
          (contains p.Heuristics.question "boundary"))
      [ p1; p2 ]
  | other -> Alcotest.failf "expected 2 prompts, got %d" (List.length other)

let test_prompts_general_classification_on_faulty () =
  match Heuristics.prompts (parse nonlinear_src) with
  | [ p ] ->
    Alcotest.(check bool) "general kind" true
      (p.Heuristics.kind = Heuristics.General)
  | other -> Alcotest.failf "expected 1 prompt, got %d" (List.length other)

let test_stub_axioms_on_faulty () =
  let spec = parse missing_case_src in
  let stubs = Heuristics.stub_axioms spec in
  Alcotest.(check int) "one stub per missing case" 2 (List.length stubs);
  List.iter
    (fun ax ->
      Alcotest.(check bool) "stub rhs is error" true
        (Term.is_error (Axiom.rhs ax)))
    stubs;
  let completed = Heuristics.complete_with_stubs spec in
  Alcotest.(check int) "stubs silence ADT001" 0
    (count "ADT001" (Lint.run completed))

(* {1 The engine's lint verb} *)

let faulty_session () =
  match Parser.parse_specs divergent_src with
  | Ok specs -> Engine.Session.create specs
  | Error e -> Alcotest.failf "parse: %a" Parser.pp_error e

let reply session line =
  match Engine.Dispatch.handle_line session line with
  | Engine.Dispatch.Reply r -> r
  | _ -> Alcotest.failf "expected a reply for %S" line

let test_lint_verb_frames_findings () =
  let session = faulty_session () in
  let r = reply session "lint Toggle" in
  let lines = String.split_on_char '\n' r in
  (* Toggle: two divergent critical pairs (ADT002) plus the confluence
     verdict they refute (ADT022) *)
  (match lines with
  | header :: body ->
    Alcotest.(check string) "header" "ok lint Toggle findings=3" header;
    Alcotest.(check int) "framed body" 3 (List.length body);
    List.iter
      (fun l ->
        Alcotest.(check bool) "body lines are diagnostics" true
          (contains l "ADT0"))
      body
  | [] -> Alcotest.fail "empty reply");
  let m = Engine.Metrics.snapshot (Engine.Session.metrics session) in
  Alcotest.(check (option int))
    "rule hit counter" (Some 2)
    (List.assoc_opt "ADT002" m.Engine.Metrics.rule_hits);
  Alcotest.(check (option int))
    "confluence rule hit counter" (Some 1)
    (List.assoc_opt "ADT022" m.Engine.Metrics.rule_hits);
  Alcotest.(check int) "lint kind counted" 1 m.Engine.Metrics.lint

let test_lint_verb_unknown_spec () =
  let session = faulty_session () in
  let r = reply session "lint Nope" in
  Alcotest.(check bool) "unknown-spec error" true
    (contains r "error unknown-spec")

let test_lint_verb_agrees_with_direct_run () =
  let spec = parse divergent_src in
  let direct = List.length (Lint.run spec) in
  let session = faulty_session () in
  let r = reply session "lint Toggle" in
  Alcotest.(check bool)
    "findings count matches Lint.run" true
    (contains r (Fmt.str "findings=%d" direct))

let suite =
  [
    Alcotest.test_case "diagnostic: unpublished code" `Quick
      test_diagnostic_rejects_unpublished_code;
    Alcotest.test_case "diagnostic: severity order" `Quick test_severity_order;
    Alcotest.test_case "diagnostic: rule table" `Quick test_rule_table;
    Alcotest.test_case "diagnostic: to_line" `Quick test_to_line_format;
    Alcotest.test_case "ADT010 non-left-linear" `Quick test_left_linear;
    Alcotest.test_case "ADT011 free-rhs-variable" `Quick test_free_rhs;
    Alcotest.test_case "ADT012 dead-axiom" `Quick test_dead_axiom;
    Alcotest.test_case "ADT012 order sensitivity" `Quick
      test_dead_axiom_order_sensitivity;
    Alcotest.test_case "ADT013 unreachable-sort" `Quick test_reachability;
    Alcotest.test_case "ADT013 fixpoint through layers" `Quick
      test_reachability_fixpoint_through_layers;
    Alcotest.test_case "ADT014 non-strict-error" `Quick test_strict_error;
    Alcotest.test_case "ADT001 adapter" `Quick test_missing_case_adapter;
    Alcotest.test_case "ADT002 adapter" `Quick test_critical_pair_adapter;
    Alcotest.test_case "every rule fires on its faulty input" `Quick
      test_every_rule_fires_on_its_faulty_input;
    Alcotest.test_case "silent on the paper corpus" `Quick
      test_silent_on_the_paper_corpus;
    Alcotest.test_case "driver: rule filter" `Quick test_rule_filter;
    Alcotest.test_case "driver: static subset" `Quick test_static_subset;
    Alcotest.test_case "driver: counts by rule" `Quick test_counts_by_rule;
    Alcotest.test_case "driver: max severity" `Quick test_max_severity;
    Alcotest.test_case "render: text" `Quick test_text_render;
    Alcotest.test_case "render: json escaping" `Quick test_json_render_escapes;
    Alcotest.test_case "render: json one object per finding" `Quick
      test_json_render_one_object_per_finding;
    Alcotest.test_case "render: sarif" `Quick test_sarif_render;
    Alcotest.test_case "heuristics: boundary prompts on faulty corpus" `Quick
      test_prompts_boundary_classification_on_faulty;
    Alcotest.test_case "heuristics: general prompts on faulty corpus" `Quick
      test_prompts_general_classification_on_faulty;
    Alcotest.test_case "heuristics: stub axioms on faulty corpus" `Quick
      test_stub_axioms_on_faulty;
    Alcotest.test_case "engine: lint verb framing and metrics" `Quick
      test_lint_verb_frames_findings;
    Alcotest.test_case "engine: lint verb unknown spec" `Quick
      test_lint_verb_unknown_spec;
    Alcotest.test_case "engine: lint verb agrees with Lint.run" `Quick
      test_lint_verb_agrees_with_direct_run;
  ]
