open Adt
open Helpers
open Adt_specs

let interp = Interp.create Refinement.combined
let idx = Identifier.id
let attrs = Attributes.attrs

(* {2 The primed operations compute correctly} *)

let test_primed_operations_behave () =
  let open Refinement in
  let table = add' (enterblock' (add' init' (idx "X") (attrs 1))) (idx "X") (attrs 2) in
  (match Interp.eval interp (retrieve' table (idx "X")) with
  | Interp.Value v -> check_term "inner shadows" (attrs 2) v
  | other -> Alcotest.failf "retrieve': %a" Interp.pp_value other);
  (match Interp.eval interp (retrieve' (leaveblock' table) (idx "X")) with
  | Interp.Value v -> check_term "outer restored" (attrs 1) v
  | other -> Alcotest.failf "retrieve' after leave: %a" Interp.pp_value other);
  (match Interp.eval interp (leaveblock' init') with
  | Interp.Error_value _ -> ()
  | other -> Alcotest.failf "extra end: %a" Interp.pp_value other);
  Alcotest.(check (option bool)) "is_inblock' local" (Some true)
    (Interp.eval_bool interp (is_inblock' table (idx "X")));
  let fresh_scope = enterblock' table in
  Alcotest.(check (option bool)) "is_inblock' fresh scope" (Some false)
    (Interp.eval_bool interp (is_inblock' fresh_scope (idx "X")))

let test_phi_maps_to_abstract_values () =
  let open Refinement in
  let table = add' (enterblock' init') (idx "Y") (attrs 2) in
  match Interp.eval interp (phi table) with
  | Interp.Value v ->
    check_term "abstract image"
      Symboltable_spec.(add (enterblock init) (idx "Y") (attrs 2))
      v
  | other -> Alcotest.failf "phi: %a" Interp.pp_value other

let test_phi_of_raw_newstack_is_error () =
  match Interp.eval interp (Refinement.phi Refinement.stack.Stack_spec.newstack) with
  | Interp.Error_value _ -> ()
  | other -> Alcotest.failf "phi(NEWSTACK): %a" Interp.pp_value other

(* {2 The obligations} *)

let test_obligation_translation () =
  let ax2 = Option.get (Spec.find_axiom "2" Symboltable_spec.spec) in
  let lhs, rhs = Refinement.obligation ax2 in
  Alcotest.(check string) "lhs primed and wrapped"
    "PHI(LEAVEBLOCK'(ENTERBLOCK'(symtab)))" (Term.to_string lhs);
  Alcotest.(check string) "rhs wrapped" "PHI(symtab)" (Term.to_string rhs);
  (* observer axioms are not wrapped *)
  let ax4 = Option.get (Spec.find_axiom "4" Symboltable_spec.spec) in
  let lhs4, _ = Refinement.obligation ax4 in
  Alcotest.(check string) "observer unwrapped" "IS_INBLOCK?'(INIT', id)"
    (Term.to_string lhs4)

let test_lemma_proved_by_generator_induction () =
  let cfg = Refinement.base_config () in
  match Proof.prove_axiom cfg Refinement.nonempty_lemma with
  | Proof.Proved (Proof.By_induction { cases; _ }) ->
    Alcotest.(check (list string)) "the three generators"
      [ "INIT'"; "ENTERBLOCK'"; "ADD'" ]
      (List.map (fun (g, _) -> Op.name g) cases)
  | Proof.Proved p -> Alcotest.failf "unexpected shape: %a" Proof.pp_proof p
  | Proof.Unknown _ as u -> Alcotest.failf "%a" Proof.pp_outcome u

let test_all_nine_axioms_verified () =
  let lemma, results = Refinement.verify () in
  Alcotest.(check bool) "lemma" true
    (match lemma with Proof.Proved _ -> true | _ -> false);
  Alcotest.(check int) "nine obligations" 9 (List.length results);
  List.iter
    (fun r ->
      match r.Refinement.outcome with
      | Proof.Proved _ -> ()
      | Proof.Unknown _ -> Alcotest.failf "axiom %s unproved" r.Refinement.axiom_name)
    results;
  Alcotest.(check bool) "all_proved" true (Refinement.all_proved (lemma, results))

let test_axiom9_needs_assumption1 () =
  let ax9 = Option.get (Spec.find_axiom "9" Symboltable_spec.spec) in
  let goal = Refinement.obligation ax9 in
  (* without the invariant: unprovable *)
  Alcotest.(check bool) "without Assumption 1" false
    (Proof.holds (Refinement.base_config ()) goal);
  (* with it: provable *)
  match Refinement.verified_config () with
  | Ok cfg -> Alcotest.(check bool) "with Assumption 1" true (Proof.holds cfg goal)
  | Error u -> Alcotest.failf "lemma: %a" Proof.pp_outcome u

let test_assumption_violation_is_real () =
  let term, got, expected = Refinement.assumption_violation () in
  Alcotest.(check bool) "evaluates to error" true (Term.is_error got);
  Alcotest.(check bool) "axiom 9 expected a value" false (Term.is_error expected);
  Alcotest.(check bool) "the term applies ADD' to NEWSTACK" true
    (Term.count_op "ADD'" term > 0 && Term.count_op "NEWSTACK" term > 0)

let test_combined_spec_is_complete_and_consistent () =
  (* the definitional extension keeps the good properties *)
  Alcotest.(check bool) "complete" true
    (Completeness.is_complete (Completeness.check Refinement.combined));
  let report = Consistency.check Refinement.combined in
  Alcotest.(check bool) "consistent" true
    (Consistency.is_consistent Refinement.combined report)

let test_ground_agreement_with_abstract_spec () =
  (* for every small ground symbol table built from abstract constructors,
     evaluating RETRIEVE abstractly and through the primed implementation
     agrees *)
  let ainterp = Interp.create Symboltable_spec.spec in
  let u = Enum.universe Symboltable_spec.spec in
  let tables = Enum.terms_up_to u Symboltable_spec.sort ~size:7 in
  let rec to_primed t =
    match Term.view t with
    | Term.App (op, args) -> (
      let args = List.map to_primed args in
      match Op.name op with
      | "INIT" -> Refinement.init'
      | "ENTERBLOCK" -> Refinement.enterblock' (List.nth args 0)
      | "ADD" ->
        Refinement.add' (List.nth args 0) (List.nth args 1) (List.nth args 2)
      | _ -> Term.app op args)
    | _ -> t
  in
  List.iter
    (fun table ->
      List.iter
        (fun id ->
          let abstractly =
            match Interp.eval ainterp (Symboltable_spec.retrieve table id) with
            | Interp.Value v -> Some v
            | _ -> None
          in
          let concretely =
            match Interp.eval interp (Refinement.retrieve' (to_primed table) id) with
            | Interp.Value v -> Some v
            | _ -> None
          in
          Alcotest.(check (option term_testable)) "retrieve agrees" abstractly concretely)
        [ idx "X"; idx "Y" ])
    tables

let suite =
  [
    case "primed operations compute the right answers" test_primed_operations_behave;
    case "PHI maps representations to abstract values" test_phi_maps_to_abstract_values;
    case "PHI of the bare NEWSTACK is error" test_phi_of_raw_newstack_is_error;
    case "obligation translation (priming and wrapping)" test_obligation_translation;
    case "the invariant lemma is proved by generator induction"
      test_lemma_proved_by_generator_induction;
    case "all nine axioms verified (Musser's proof, replayed)"
      test_all_nine_axioms_verified;
    case "axiom 9 requires Assumption 1" test_axiom9_needs_assumption1;
    case "the Assumption 1 violation is concrete" test_assumption_violation_is_real;
    case "the combined system is complete and consistent"
      test_combined_spec_is_complete_and_consistent;
    case "ground agreement between abstract and primed evaluation"
      test_ground_agreement_with_abstract_spec;
  ]
