(* The evaluation engine: protocol parsing, dispatch, error isolation,
   limits, and metrics. The end-to-end batch transcript is pinned by the
   cli_tests expect test; these tests exercise the pieces directly. *)

open Adt_specs
open Engine

let reply session line =
  match Dispatch.handle_line session line with
  | Dispatch.Reply r -> r
  | Dispatch.Silent -> Alcotest.failf "unexpected Silent for %S" line
  | Dispatch.Closed -> Alcotest.failf "unexpected Closed for %S" line

let contains = Astring_contains.contains

let check_prefix what prefix got =
  Alcotest.(check bool)
    (Fmt.str "%s: %S starts with %S" what got prefix)
    true
    (String.length got >= String.length prefix
    && String.equal (String.sub got 0 (String.length prefix)) prefix)

let queue_session ?fuel ?timeout ?cache_capacity () =
  Session.create ?fuel ?timeout ?cache_capacity [ Queue_spec.spec ]

(* {1 Protocol} *)

let test_parse_blank_and_comment () =
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Ok None -> ()
      | _ -> Alcotest.failf "%S should be silent" line)
    [ ""; "   "; "# a comment"; "  # indented comment" ]

let test_parse_normalize () =
  match Protocol.parse "normalize fuel=7 Queue FRONT(ADD(NEW, ITEM1))" with
  | Ok (Some (Protocol.Normalize { spec; term; fuel })) ->
    Alcotest.(check string) "spec" "Queue" spec;
    Alcotest.(check string) "term" "FRONT(ADD(NEW, ITEM1))" term;
    Alcotest.(check (option int)) "fuel" (Some 7) fuel
  | _ -> Alcotest.fail "normalize did not parse"

let test_parse_prove () =
  match
    Protocol.parse "prove Queue q:Queue,i:Item IS_EMPTY?(ADD(q, i)) == false"
  with
  | Ok (Some (Protocol.Prove { spec; vars; lhs; rhs; fuel = None })) ->
    Alcotest.(check string) "spec" "Queue" spec;
    Alcotest.(check (list (pair string string)))
      "vars"
      [ ("q", "Queue"); ("i", "Item") ]
      vars;
    Alcotest.(check string) "lhs" "IS_EMPTY?(ADD(q, i))" lhs;
    Alcotest.(check string) "rhs" "false" rhs
  | _ -> Alcotest.fail "prove did not parse"

let test_parse_errors () =
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Error _ -> ()
      | _ -> Alcotest.failf "%S should be rejected" line)
    [
      "frobnicate Queue";
      "normalize Queue";
      "normalize fuel=zero Queue NEW";
      "normalize volume=11 Queue NEW";
      "check";
      "check Queue Extra";
      "prove Queue q:Queue IS_EMPTY?(q)";
      "prove Queue q IS_EMPTY?(q) == true";
      "stats Queue";
      "quit now";
    ]

let test_sanitize () =
  Alcotest.(check string)
    "squashed" "a b c"
    (Protocol.sanitize "  a\n\tb \r\n  c  ")

(* {1 Dispatch} *)

let test_cross_request_cache () =
  let session = queue_session () in
  let first = reply session "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))" in
  check_prefix "first" "ok normalize steps=" first;
  Alcotest.(check bool) "first run rewrites" false
    (contains first "steps=0");
  let second = reply session "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))" in
  Alcotest.(check string) "cached answer is free" "ok normalize steps=0 ITEM2"
    second;
  let totals = Session.cache_totals session in
  Alcotest.(check bool) "cache hits recorded" true (totals.Session.hits > 0)

let test_error_isolation () =
  let session = queue_session () in
  check_prefix "protocol error" "error protocol" (reply session "frobnicate x");
  check_prefix "unknown spec" "error unknown-spec"
    (reply session "normalize Nope NEW");
  check_prefix "parse error" "error parse" (reply session "normalize Queue FRONT(");
  (* the session is still fully functional *)
  Alcotest.(check string) "still serving" "ok normalize steps=1 true"
    (reply session "normalize Queue IS_EMPTY?(NEW)");
  let m = Metrics.snapshot (Session.metrics session) in
  Alcotest.(check int) "errors counted" 3 m.Metrics.errors;
  Alcotest.(check int) "requests counted" 4 m.Metrics.requests

let test_fuel_limit () =
  let session = queue_session () in
  let r = reply session
      "normalize fuel=2 Queue FRONT(REMOVE(ADD(ADD(ADD(NEW, ITEM1), ITEM2), ITEM3)))"
  in
  Alcotest.(check string) "fuel error" "error fuel normalization exceeded 2 rewrite steps" r;
  (* rejected request charged its budget, session survives *)
  check_prefix "survives" "ok normalize" (reply session "normalize Queue IS_EMPTY?(NEW)")

let test_session_fuel_ceiling () =
  (* a request may lower the session ceiling but never raise it *)
  let session = queue_session ~fuel:2 () in
  let r = reply session
      "normalize fuel=1000000 Queue FRONT(REMOVE(ADD(ADD(ADD(NEW, ITEM1), ITEM2), ITEM3)))"
  in
  Alcotest.(check string) "capped" "error fuel normalization exceeded 2 rewrite steps" r

let test_stats_counters () =
  let session = queue_session () in
  ignore (reply session "normalize Queue IS_EMPTY?(NEW)");
  ignore (reply session "check Queue");
  ignore (reply session "skeletons Queue");
  ignore (reply session "nonsense");
  let r = reply session "stats" in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Fmt.str "stats has %S" fragment) true
        (contains r fragment))
    [
      "requests=5"; "normalize=1"; "check=1"; "skeletons=1"; "stats=1";
      "errors=1"; "cache.evictions=0"; "cache.capacity=";
    ]

let test_prove_request () =
  let session = queue_session () in
  check_prefix "proved" "ok prove Queue proved"
    (reply session "prove Queue q:Queue,i:Item IS_EMPTY?(REMOVE(ADD(q, i))) == IS_EMPTY?(q)");
  check_prefix "unprovable goal answers unknown" "ok prove Queue unknown"
    (reply session "prove Queue q:Queue IS_EMPTY?(q) == true")

let test_quit_and_silent () =
  let session = queue_session () in
  (match Dispatch.handle_line session "# just a comment" with
  | Dispatch.Silent -> ()
  | _ -> Alcotest.fail "comment should be silent");
  match Dispatch.handle_line session "quit" with
  | Dispatch.Closed -> ()
  | _ -> Alcotest.fail "quit should close"

let test_bounded_session_cache () =
  let session = queue_session ~cache_capacity:4 () in
  (* more distinct roots than the cache holds: every query's root term is
     memoized under every engine, so six distinct queries must evict *)
  ignore (reply session "normalize Queue FRONT(REMOVE(ADD(ADD(ADD(NEW, ITEM1), ITEM2), ITEM3)))");
  ignore (reply session "normalize Queue FRONT(ADD(ADD(NEW, ITEM2), ITEM3))");
  ignore (reply session "normalize Queue FRONT(ADD(NEW, ITEM1))");
  ignore (reply session "normalize Queue FRONT(ADD(ADD(NEW, ITEM1), ITEM2))");
  ignore (reply session "normalize Queue FRONT(ADD(ADD(NEW, ITEM3), ITEM1))");
  ignore (reply session "normalize Queue FRONT(ADD(ADD(NEW, ITEM1), ITEM3))");
  let totals = Session.cache_totals session in
  Alcotest.(check bool) "entries bounded" true (totals.Session.entries <= 4);
  Alcotest.(check bool) "evictions counted" true (totals.Session.evictions > 0)

(* {1 Limits} *)

let test_with_deadline () =
  (match
     Limits.with_deadline None (fun poll ->
         Alcotest.(check bool) "no deadline, no poll" true (Option.is_none poll);
         42)
   with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "no-limit run changed its answer");
  (match Limits.with_deadline (Some 5.0) (fun _ -> "fast") with
  | Ok "fast" -> ()
  | _ -> Alcotest.fail "fast run within budget failed");
  (* the old SIGALRM disarm race, pinned as semantics: work that finishes
     without polling is returned as its result even when it overran the
     deadline — a timeout can only ever interrupt a poll point, so no stray
     exception escapes after the fact to be misreported as error internal *)
  (match
     Limits.with_deadline (Some 0.005) (fun _ ->
         Unix.sleepf 0.02;
         "late but done")
   with
  | Ok "late but done" -> ()
  | _ -> Alcotest.fail "finished work was misclassified");
  match
    Limits.with_deadline (Some 0.02) (fun poll ->
        let poll = Option.get poll in
        while true do
          poll ()
        done)
  with
  | Error `Timeout -> ()
  | Ok _ -> Alcotest.fail "endless polling loop terminated"

(* a queue term expensive enough to normalize that a millisecond deadline
   fires long before fuel or completion: a modest ADD chain wrapped in a
   stack of REMOVEs multiplies the rewrite work (every REMOVE walks the
   whole chain) while the source term itself stays small and cheap to
   parse *)
let expensive_queue_term ~adds ~removes =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "FRONT(";
  for _ = 1 to removes do
    Buffer.add_string buf "REMOVE("
  done;
  for _ = 1 to adds do
    Buffer.add_string buf "ADD("
  done;
  Buffer.add_string buf "NEW";
  for i = 1 to adds do
    Buffer.add_string buf (Fmt.str ", ITEM%d)" ((i mod 3) + 1))
  done;
  for _ = 1 to removes do
    Buffer.add_char buf ')'
  done;
  Buffer.add_char buf ')';
  Buffer.contents buf

let test_timeout_classification () =
  let session = queue_session ~timeout:0.001 () in
  let term = expensive_queue_term ~adds:300 ~removes:250 in
  let r = reply session ("normalize Queue " ^ term) in
  check_prefix "deadline answers error timeout, never internal" "error timeout" r;
  (* the session and its cache survive the interrupted request *)
  Alcotest.(check string) "still serving" "ok normalize steps=1 true"
    (reply session "normalize Queue IS_EMPTY?(NEW)")

let test_prove_fuel_clamp () =
  let goal =
    "prove fuel=1000000 Queue q:Queue,i:Item IS_EMPTY?(REMOVE(ADD(q, i))) == \
     IS_EMPTY?(q)"
  in
  (* with room the goal is provable... *)
  let roomy = queue_session () in
  check_prefix "provable with room" "ok prove Queue proved" (reply roomy goal);
  (* ...but fuel=1000000 must not raise a tiny session ceiling: clamped to
     1 step per normalization, the proof search comes back empty-handed *)
  let tight = queue_session ~fuel:1 () in
  check_prefix "request fuel clamped to the ceiling" "ok prove Queue unknown"
    (reply tight goal);
  (* prove charges its rewrite steps to the session metrics like normalize *)
  let spent session =
    (Metrics.snapshot (Session.metrics session)).Metrics.fuel_spent
  in
  Alcotest.(check bool) "prove charges fuel" true (spent roomy > 0);
  Alcotest.(check bool) "clamped prove still meters" true (spent tight > 0)

let test_effective_fuel () =
  let limits = Limits.v ~fuel:100 () in
  Alcotest.(check int) "default" 100 (Limits.effective_fuel limits None);
  Alcotest.(check int) "lowered" 10 (Limits.effective_fuel limits (Some 10));
  Alcotest.(check int) "capped" 100 (Limits.effective_fuel limits (Some 1000))

let suite =
  [
    Helpers.case "blank and comment lines are silent" test_parse_blank_and_comment;
    Helpers.case "normalize requests parse" test_parse_normalize;
    Helpers.case "prove requests parse" test_parse_prove;
    Helpers.case "malformed requests are rejected" test_parse_errors;
    Helpers.case "payload sanitization" test_sanitize;
    Helpers.case "repeated requests hit the shared cache" test_cross_request_cache;
    Helpers.case "errors never kill the session" test_error_isolation;
    Helpers.case "per-request fuel limits" test_fuel_limit;
    Helpers.case "session fuel is a ceiling" test_session_fuel_ceiling;
    Helpers.case "stats reports every counter" test_stats_counters;
    Helpers.case "prove requests" test_prove_request;
    Helpers.case "quit closes, comments are silent" test_quit_and_silent;
    Helpers.case "session cache stays bounded" test_bounded_session_cache;
    Helpers.case "deadlines interrupt polling work, never finished work"
      test_with_deadline;
    Helpers.case "timeouts answer error timeout" test_timeout_classification;
    Helpers.case "prove fuel is clamped and metered" test_prove_fuel_clamp;
    Helpers.case "effective fuel caps at the session ceiling" test_effective_fuel;
  ]
