open Adt
open Helpers
open Adt_specs

let item = Builtins.item
let interp = Interp.create Queue_spec.spec

(* reference semantics: a plain OCaml list, front first *)
let rec reference_eval t : (Term.t list, unit) result =
  match Term.view t with
  | Term.App (op, []) when Op.name op = "NEW" -> Ok []
  | Term.App (op, [ q; i ]) when Op.name op = "ADD" ->
    Result.map (fun l -> l @ [ i ]) (reference_eval q)
  | Term.App (op, [ q ]) when Op.name op = "REMOVE" -> (
    match reference_eval q with
    | Ok (_ :: rest) -> Ok rest
    | Ok [] | Error () -> Error ())
  | _ -> Error ()

let test_axioms_against_reference () =
  (* every queue term up to size 9 evaluates consistently with lists *)
  let u = Enum.universe Queue_spec.spec in
  let queues = Enum.terms_up_to u Queue_spec.sort ~size:9 in
  List.iter
    (fun q ->
      let expected = reference_eval q in
      (match (Interp.eval interp (Queue_spec.is_empty q), expected) with
      | Interp.Value b, Ok l ->
        Alcotest.(check bool) "emptiness" (l = []) (Term.equal b Term.tt)
      | other, _ -> Alcotest.failf "is_empty: %a" Interp.pp_value other);
      match (Interp.eval interp (Queue_spec.front q), expected) with
      | Interp.Value f, Ok (x :: _) -> check_term "front" x f
      | Interp.Error_value _, Ok [] -> ()
      | got, Ok l ->
        Alcotest.failf "front of %a (len %d): %a" Term.pp q (List.length l)
          Interp.pp_value got
      | _, Error () -> Alcotest.fail "reference failed on enumerated term")
    queues

let test_remove_is_list_tail () =
  let q = Queue_spec.of_items [ item 1; item 2; item 3 ] in
  match Interp.eval interp (Queue_spec.remove q) with
  | Interp.Value t ->
    Alcotest.(check (option (list term_testable))) "tail"
      (Some [ item 2; item 3 ])
      (Queue_spec.to_items t)
  | other -> Alcotest.failf "remove: %a" Interp.pp_value other

let test_of_to_items () =
  let items = [ item 1; item 2; item 3 ] in
  Alcotest.(check (option (list term_testable))) "round trip" (Some items)
    (Queue_spec.to_items (Queue_spec.of_items items));
  Alcotest.(check bool) "non-value" true
    (Queue_spec.to_items (Queue_spec.remove Queue_spec.new_) = None)

(* {2 The two-list implementation} *)

let test_impl_fifo () =
  let q =
    List.fold_left Queue_impl.add Queue_impl.empty [ item 1; item 2; item 3 ]
  in
  check_term "front" (item 1) (Queue_impl.front q);
  let q = Queue_impl.remove q in
  check_term "second" (item 2) (Queue_impl.front q);
  Alcotest.(check int) "length" 2 (Queue_impl.length q);
  check_terms "to_list" [ item 2; item 3 ] (Queue_impl.to_list q)

let test_impl_errors () =
  (match Queue_impl.front Queue_impl.empty with
  | exception Queue_impl.Error -> ()
  | _ -> Alcotest.fail "front of empty");
  match Queue_impl.remove Queue_impl.empty with
  | exception Queue_impl.Error -> ()
  | _ -> Alcotest.fail "remove of empty"

let test_impl_persistence () =
  let q1 = Queue_impl.add Queue_impl.empty (item 1) in
  let q2 = Queue_impl.add q1 (item 2) in
  let _ = Queue_impl.remove q2 in
  (* q1 and q2 unchanged *)
  check_terms "q1" [ item 1 ] (Queue_impl.to_list q1);
  check_terms "q2" [ item 1; item 2 ] (Queue_impl.to_list q2)

let test_phi_homomorphism () =
  (* Phi(add(q, i)) = ADD(Phi(q), i); Phi(remove q) = REMOVE(Phi(q))
     normalized — spot-checked over random operation sequences *)
  let state = Random.State.make [| 3 |] in
  for _ = 1 to 100 do
    let rec build q n =
      if n = 0 then q
      else
        let q' =
          match Random.State.int state 3 with
          | 0 -> Queue_impl.add q (item (1 + Random.State.int state 4))
          | 1 -> ( match Queue_impl.remove q with q' -> q' | exception Queue_impl.Error -> q)
          | _ -> q
        in
        build q' (n - 1)
    in
    let q = build Queue_impl.empty (Random.State.int state 12) in
    let i = item (1 + Random.State.int state 4) in
    (* ADD commutes with Phi *)
    let lhs = Queue_impl.abstraction (Queue_impl.add q i) in
    let rhs = Queue_spec.add (Queue_impl.abstraction q) i in
    check_term "Phi-add" lhs (Interp.reduce interp rhs);
    (* REMOVE commutes with Phi on nonempty queues *)
    if not (Queue_impl.is_empty q) then begin
      let lhs = Queue_impl.abstraction (Queue_impl.remove q) in
      let rhs = Interp.reduce interp (Queue_spec.remove (Queue_impl.abstraction q)) in
      check_term "Phi-remove" lhs rhs
    end
  done

let suite =
  [
    case "axioms agree with list semantics (bounded-exhaustive)"
      test_axioms_against_reference;
    case "REMOVE behaves as list tail" test_remove_is_list_tail;
    case "of_items / to_items" test_of_to_items;
    case "implementation: FIFO order" test_impl_fifo;
    case "implementation: error cases" test_impl_errors;
    case "implementation: persistence" test_impl_persistence;
    case "Phi is a homomorphism on random workloads" test_phi_homomorphism;
  ]
