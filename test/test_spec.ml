open Adt
open Helpers

(* {2 Signature} *)

let test_signature_builtins () =
  Alcotest.(check bool) "bool sort" true
    (Signature.mem_sort Sort.bool Signature.empty);
  Alcotest.check op_testable "true" Signature.true_op
    (Signature.find_op_exn "true" Signature.empty);
  Alcotest.check op_testable "false" Signature.false_op
    (Signature.find_op_exn "false" Signature.empty)

let test_signature_add () =
  Alcotest.(check bool) "mem_op" true (Signature.mem_op "plus" base_signature);
  Alcotest.(check bool) "not mem" false (Signature.mem_op "minus" base_signature);
  (* idempotent on identical op *)
  Alcotest.(check int) "idempotent" (Signature.cardinal base_signature)
    (Signature.cardinal (Signature.add_op plus_op base_signature));
  (* clash on same name, different rank *)
  (match Signature.add_op (Op.v "plus" ~args:[ nat ] ~result:nat) base_signature with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clash accepted");
  (* undeclared sort *)
  match Signature.add_op (Op.v "f" ~args:[ Sort.v "Mystery" ] ~result:nat) base_signature with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared sort accepted"

let test_signature_queries () =
  Alcotest.(check int) "ops_with_result" 3
    (List.length (Signature.ops_with_result nat base_signature));
  (* insertion order: builtins first, then declaration order *)
  let names = List.map Op.name (Signature.ops base_signature) in
  Alcotest.(check (list string)) "order"
    [ "true"; "false"; "z"; "s"; "plus"; "isz" ]
    names

let test_signature_union () =
  let other =
    Signature.add_op
      (Op.v "len" ~args:[ Sort.v "L" ] ~result:nat)
      (Signature.add_sort (Sort.v "L") (Signature.add_sort nat Signature.empty))
  in
  let u = Signature.union base_signature other in
  Alcotest.(check bool) "both present" true
    (Signature.mem_op "len" u && Signature.mem_op "plus" u);
  Alcotest.(check bool) "self union" true
    (Signature.equal base_signature (Signature.union base_signature base_signature))

(* {2 Axiom} *)

let test_axiom_validation () =
  (match Axiom.v ~lhs:(v "x") ~rhs:z () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "variable lhs accepted");
  (match Axiom.v ~lhs:(plus z z) ~rhs:(isz z) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sort mismatch accepted");
  match Axiom.v ~lhs:(s z) ~rhs:(v "ghost") () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbound rhs variable accepted"

let test_axiom_accessors () =
  let ax = Axiom.v ~name:"p0" ~lhs:(plus z (v "n")) ~rhs:(v "n") () in
  Alcotest.(check string) "name" "p0" (Axiom.name ax);
  Alcotest.check op_testable "head" plus_op (Axiom.head ax);
  Alcotest.(check (list (pair string sort_testable))) "vars"
    [ ("n", nat) ]
    (Axiom.vars ax);
  Alcotest.(check bool) "left-linear" true (Axiom.is_left_linear ax);
  let nl = Axiom.v ~lhs:(plus (v "n") (v "n")) ~rhs:(v "n") () in
  Alcotest.(check bool) "non-left-linear" false (Axiom.is_left_linear nl)

let test_axiom_same_equation () =
  let a = Axiom.v ~name:"a" ~lhs:(plus z (v "n")) ~rhs:(v "n") () in
  let b = Axiom.v ~name:"b" ~lhs:(plus z (v "k")) ~rhs:(v "k") () in
  let c = Axiom.v ~name:"c" ~lhs:(plus z (v "n")) ~rhs:z () in
  Alcotest.(check bool) "variant" true (Axiom.same_equation a b);
  Alcotest.(check bool) "different" false (Axiom.same_equation a c)

let test_axiom_instantiate () =
  let ax = Axiom.v ~lhs:(plus z (v "n")) ~rhs:(v "n") () in
  let lhs, rhs = Axiom.instantiate (Subst.singleton "n" (church 2)) ax in
  check_term "lhs" (plus z (church 2)) lhs;
  check_term "rhs" (church 2) rhs

(* {2 Spec} *)

let test_spec_constructors () =
  Alcotest.(check bool) "z is ctor" true (Spec.is_constructor_name "z" nat_spec);
  Alcotest.(check bool) "plus is not" false
    (Spec.is_constructor_name "plus" nat_spec);
  Alcotest.(check bool) "builtins are Bool ctors" true
    (Spec.is_constructor Signature.true_op nat_spec);
  Alcotest.(check (list string)) "ctors of N" [ "z"; "s" ]
    (List.map Op.name (Spec.constructors_of_sort nat nat_spec));
  Alcotest.(check bool) "has ctors" true (Spec.has_constructors nat nat_spec);
  Alcotest.(check bool) "no ctors for unknown" false
    (Spec.has_constructors (Sort.v "Ghost") nat_spec)

let test_spec_observers () =
  Alcotest.(check (list string)) "observers" [ "plus"; "isz" ]
    (List.map Op.name (Spec.observers nat_spec))

let test_spec_axioms_for () =
  Alcotest.(check int) "plus axioms" 2
    (List.length (Spec.axioms_for plus_op nat_spec));
  Alcotest.(check bool) "find by name" true
    (Spec.find_axiom "p0" nat_spec <> None);
  Alcotest.(check bool) "absent" true (Spec.find_axiom "nope" nat_spec = None)

let test_spec_without_axiom () =
  let broken = Spec.without_axiom "iz" nat_spec in
  Alcotest.(check int) "one fewer" 3 (List.length (Spec.axioms broken));
  Alcotest.(check int) "original untouched" 4 (List.length (Spec.axioms nat_spec))

let test_spec_duplicate_name_rejected () =
  let clash = Axiom.v ~name:"p0" ~lhs:(plus z z) ~rhs:z () in
  match Spec.with_axioms [ clash ] nat_spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate axiom name accepted"

let test_spec_union () =
  let u = Spec.union ~name:"U" nat_spec nat_spec in
  Alcotest.(check int) "no duplicated axioms" 4 (List.length (Spec.axioms u));
  Alcotest.(check string) "name" "U" (Spec.name u)

let test_spec_constructor_terms () =
  Alcotest.(check bool) "ctor term" true
    (Spec.is_constructor_term nat_spec (s (s (v "x"))));
  Alcotest.(check bool) "ground ctor term" true
    (Spec.is_constructor_ground_term nat_spec (church 3));
  Alcotest.(check bool) "observer inside" false
    (Spec.is_constructor_term nat_spec (s (plus z z)));
  Alcotest.(check bool) "error is no value" false
    (Spec.is_constructor_term nat_spec (Term.err nat));
  Alcotest.(check bool) "open term not ground" false
    (Spec.is_constructor_ground_term nat_spec (s (v "x")))

let test_sorts_of_interest () =
  Alcotest.(check bool) "N is of interest" true
    (List.exists (Sort.equal nat) (Spec.sorts_of_interest nat_spec))

let test_spec_invalid_constructor () =
  match
    Spec.v ~name:"broken" ~signature:base_signature
      ~constructors:[ "does-not-exist" ] ~axioms:[] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown constructor accepted"

let suite =
  [
    case "signature: builtins" test_signature_builtins;
    case "signature: add and clash" test_signature_add;
    case "signature: queries and order" test_signature_queries;
    case "signature: union" test_signature_union;
    case "axiom: validation" test_axiom_validation;
    case "axiom: accessors" test_axiom_accessors;
    case "axiom: equality up to renaming" test_axiom_same_equation;
    case "axiom: instantiation" test_axiom_instantiate;
    case "spec: constructor classification" test_spec_constructors;
    case "spec: observers" test_spec_observers;
    case "spec: axiom lookup" test_spec_axioms_for;
    case "spec: axiom removal" test_spec_without_axiom;
    case "spec: duplicate names rejected" test_spec_duplicate_name_rejected;
    case "spec: union deduplicates" test_spec_union;
    case "spec: constructor terms" test_spec_constructor_terms;
    case "spec: sorts of interest" test_sorts_of_interest;
    case "spec: unknown constructor rejected" test_spec_invalid_constructor;
  ]
