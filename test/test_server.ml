(* The concurrent socket server: simultaneous clients with interleaved
   requests each get their own correct responses; a client disconnecting
   mid-response drops that client only; connections beyond the cap are
   refused with [error busy]; shutdown drains gracefully; and the server
   refuses to unlink a non-socket at its path. *)

open Adt_specs
open Engine

let socket_counter = ref 0

let socket_path () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Fmt.str "adtc-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

let start_server ?(max_clients = 8) session =
  let path = socket_path () in
  let stop = ref false in
  let thread =
    Thread.create
      (fun () ->
        Server.serve_socket ~max_clients ~handle_signals:false ~stop session
          ~path)
      ()
  in
  (path, stop, thread)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      (* a stuck server must fail the test, not hang the suite *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server socket never came up";
      Thread.delay 0.01;
      go ()
  in
  go ()

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c =
  match input_line c.ic with
  | line -> line
  | exception End_of_file -> "<eof>"

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let check_prefix what prefix got =
  Alcotest.(check bool)
    (Fmt.str "%s: %S starts with %S" what got prefix)
    true
    (String.length got >= String.length prefix
    && String.equal (String.sub got 0 (String.length prefix)) prefix)

let queue_session () = Session.create [ Queue_spec.spec ]

let test_concurrent_clients () =
  let session = queue_session () in
  let path, stop, server = start_server session in
  let n = 5 in
  let clients = List.init n (fun _ -> connect path) in
  let item_of i = (i mod 3) + 1 in
  let round () =
    (* every client sends before any reads: the requests are in flight
       together, and each answer must come back on its own connection *)
    List.iteri
      (fun i c ->
        send c (Fmt.str "normalize Queue FRONT(ADD(NEW, ITEM%d))" (item_of i)))
      clients;
    List.iteri
      (fun i c ->
        let r = recv c in
        check_prefix (Fmt.str "client %d" i) "ok normalize" r;
        Alcotest.(check bool)
          (Fmt.str "client %d got its own answer: %S" i r)
          true
          (Astring_contains.contains r (Fmt.str "ITEM%d" (item_of i))))
      clients
  in
  round ();
  (* a client that pipelines a pile of requests and vanishes without
     reading: the server's writes into the dead connection must drop this
     client only *)
  let rude = connect path in
  for _ = 1 to 100 do
    send rude "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))"
  done;
  close rude;
  (* everyone else is still being served, repeatedly *)
  round ();
  round ();
  (* graceful shutdown: drains the still-connected idle clients *)
  stop := true;
  Thread.join server;
  List.iter close clients;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists path)

let test_busy_backpressure () =
  let session = queue_session () in
  let path, stop, server = start_server ~max_clients:1 session in
  let a = connect path in
  send a "normalize Queue IS_EMPTY?(NEW)";
  check_prefix "first client is served" "ok normalize" (recv a);
  (* the slot is taken: the next connection is refused, not queued *)
  let b = connect path in
  Alcotest.(check string) "busy reply"
    "error busy server is at capacity (max-clients=1); retry later" (recv b);
  Alcotest.(check string) "refused connection is closed" "<eof>" (recv b);
  close b;
  (* the first client releases its slot; a later client gets served, and
     the session it sees is the same one (its cache is already warm) *)
  send a "quit";
  Alcotest.(check string) "quit" "ok bye" (recv a);
  close a;
  let deadline = Unix.gettimeofday () +. 10. in
  let rec served () =
    let c = connect path in
    send c "normalize Queue IS_EMPTY?(NEW)";
    let r = recv c in
    close c;
    if String.length r >= 10 && String.sub r 0 10 = "error busy" then begin
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "slot never freed after quit";
      Thread.delay 0.01;
      served ()
    end
    else r
  in
  Alcotest.(check string) "warm cache across connections"
    "ok normalize steps=0 true" (served ());
  stop := true;
  Thread.join server

let test_concurrent_tracing () =
  (* threshold 0: every request enters the slow-request ring, so the log
     is a complete record of what the concurrent clients did *)
  let session = Session.create ~slowlog_ms:0. [ Queue_spec.spec ] in
  let path, stop, server = start_server session in
  let n_clients = 4 and rounds = 5 in
  let clients = List.init n_clients (fun _ -> connect path) in
  for _ = 1 to rounds do
    List.iter
      (fun c -> send c "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))")
      clients;
    List.iter (fun c -> check_prefix "answered" "ok normalize" (recv c)) clients
  done;
  (* read the ring over the wire: a first line announcing the entry
     count, then one line per entry *)
  let reader = List.hd clients in
  send reader "slowlog";
  let header = recv reader in
  let announced =
    try Scanf.sscanf header "ok slowlog entries=%d" Fun.id
    with Scanf.Scan_failure _ | End_of_file ->
      Alcotest.failf "unexpected slowlog header %S" header
  in
  Alcotest.(check int) "every request was logged" (n_clients * rounds) announced;
  let entries = List.init announced (fun _ -> recv reader) in
  stop := true;
  List.iter close clients;
  Thread.join server;
  let trace_ids =
    List.map
      (fun line ->
        check_prefix "entry" "slow trace=" line;
        (* trace IDs are process-unique even under concurrency, and every
           entry carries the nested per-phase span breakdown *)
        List.iter
          (fun fragment ->
            Alcotest.(check bool)
              (Fmt.str "%S has %S" line fragment)
              true
              (Astring_contains.contains line fragment))
          [ "kind=normalize"; "spec=Queue"; "spans=parse:"; "dispatch:"; "respond:" ];
        Scanf.sscanf line "slow trace=%s@ " Fun.id)
      entries
  in
  Alcotest.(check int) "concurrent trace ids are distinct" announced
    (List.length (List.sort_uniq String.compare trace_ids))

let test_refuses_non_socket () =
  let path = Filename.temp_file "adtc-not-a-socket" ".txt" in
  let oc = open_out path in
  output_string oc "precious data\n";
  close_out oc;
  let session = queue_session () in
  (match Server.serve_socket ~handle_signals:false session ~path with
  | () -> Alcotest.fail "serve_socket bound over a regular file"
  | exception Failure message ->
    Alcotest.(check bool)
      (Fmt.str "refusal names the problem: %S" message)
      true
      (Astring_contains.contains message "refusing"));
  (* and the file is untouched *)
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file survived" "precious data" line

let suite =
  [
    Helpers.case "concurrent clients get isolated responses, disconnects survive"
      test_concurrent_clients;
    Helpers.case "busy backpressure beyond max-clients" test_busy_backpressure;
    Helpers.case "concurrent tracing: distinct ids, nested spans in the slowlog"
      test_concurrent_tracing;
    Helpers.case "refuses to unlink a non-socket path" test_refuses_non_socket;
  ]
