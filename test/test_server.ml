(* The concurrent socket server: simultaneous clients with interleaved
   requests each get their own correct responses; a client disconnecting
   mid-response drops that client only; connections beyond the cap are
   refused with [error busy]; shutdown drains gracefully; and the server
   refuses to unlink a non-socket at its path. *)

open Adt_specs
open Engine

let socket_counter = ref 0

let socket_path () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Fmt.str "adtc-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

(* CI runs the whole suite at 1 and N domains (ADTC_TEST_DOMAINS): every
   server test below exercises the domain pool without a separate matrix
   of tests *)
let default_domains =
  match Sys.getenv_opt "ADTC_TEST_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let start_server ?(max_clients = 8) ?(domains = default_domains) session =
  let path = socket_path () in
  let stop = ref false in
  let thread =
    Thread.create
      (fun () ->
        Server.serve_socket ~max_clients ~domains ~handle_signals:false ~stop
          session ~path)
      ()
  in
  (path, stop, thread)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      (* a stuck server must fail the test, not hang the suite *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server socket never came up";
      Thread.delay 0.01;
      go ()
  in
  go ()

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c =
  match input_line c.ic with
  | line -> line
  | exception End_of_file -> "<eof>"

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let check_prefix what prefix got =
  Alcotest.(check bool)
    (Fmt.str "%s: %S starts with %S" what got prefix)
    true
    (String.length got >= String.length prefix
    && String.equal (String.sub got 0 (String.length prefix)) prefix)

let queue_session () = Session.create [ Queue_spec.spec ]

let test_concurrent_clients () =
  let session = queue_session () in
  let path, stop, server = start_server session in
  let n = 5 in
  let clients = List.init n (fun _ -> connect path) in
  let item_of i = (i mod 3) + 1 in
  let round () =
    (* every client sends before any reads: the requests are in flight
       together, and each answer must come back on its own connection *)
    List.iteri
      (fun i c ->
        send c (Fmt.str "normalize Queue FRONT(ADD(NEW, ITEM%d))" (item_of i)))
      clients;
    List.iteri
      (fun i c ->
        let r = recv c in
        check_prefix (Fmt.str "client %d" i) "ok normalize" r;
        Alcotest.(check bool)
          (Fmt.str "client %d got its own answer: %S" i r)
          true
          (Astring_contains.contains r (Fmt.str "ITEM%d" (item_of i))))
      clients
  in
  round ();
  (* a client that pipelines a pile of requests and vanishes without
     reading: the server's writes into the dead connection must drop this
     client only *)
  let rude = connect path in
  for _ = 1 to 100 do
    send rude "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))"
  done;
  close rude;
  (* everyone else is still being served, repeatedly *)
  round ();
  round ();
  (* graceful shutdown: drains the still-connected idle clients *)
  stop := true;
  Thread.join server;
  List.iter close clients;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists path)

let test_busy_backpressure () =
  let session = queue_session () in
  let path, stop, server = start_server ~max_clients:1 session in
  let a = connect path in
  send a "normalize Queue IS_EMPTY?(NEW)";
  check_prefix "first client is served" "ok normalize" (recv a);
  (* the slot is taken: the next connection is refused, not queued *)
  let b = connect path in
  Alcotest.(check string) "busy reply"
    "error busy server is at capacity (max-clients=1); retry later" (recv b);
  Alcotest.(check string) "refused connection is closed" "<eof>" (recv b);
  close b;
  (* the first client releases its slot; a later client gets served, and
     the session it sees is the same one (its cache is already warm) *)
  send a "quit";
  Alcotest.(check string) "quit" "ok bye" (recv a);
  close a;
  let deadline = Unix.gettimeofday () +. 10. in
  let rec served () =
    let c = connect path in
    send c "normalize Queue IS_EMPTY?(NEW)";
    let r = recv c in
    close c;
    if String.length r >= 10 && String.sub r 0 10 = "error busy" then begin
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "slot never freed after quit";
      Thread.delay 0.01;
      served ()
    end
    else r
  in
  (* interpreter memos are per-domain slots: a warm hit (steps=0) is only
     guaranteed when one domain serves both connections *)
  if default_domains = 1 then
    Alcotest.(check string) "warm cache across connections"
      "ok normalize steps=0 true" (served ())
  else check_prefix "served across connections" "ok normalize" (served ());
  stop := true;
  Thread.join server

let test_concurrent_tracing () =
  (* threshold 0: every request enters the slow-request ring, so the log
     is a complete record of what the concurrent clients did *)
  let session = Session.create ~slowlog_ms:0. [ Queue_spec.spec ] in
  let path, stop, server = start_server session in
  let n_clients = 4 and rounds = 5 in
  let clients = List.init n_clients (fun _ -> connect path) in
  for _ = 1 to rounds do
    List.iter
      (fun c -> send c "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))")
      clients;
    List.iter (fun c -> check_prefix "answered" "ok normalize" (recv c)) clients
  done;
  (* read the ring over the wire: a first line announcing the entry
     count, then one line per entry *)
  let reader = List.hd clients in
  send reader "slowlog";
  let header = recv reader in
  let announced =
    try Scanf.sscanf header "ok slowlog entries=%d" Fun.id
    with Scanf.Scan_failure _ | End_of_file ->
      Alcotest.failf "unexpected slowlog header %S" header
  in
  Alcotest.(check int) "every request was logged" (n_clients * rounds) announced;
  let entries = List.init announced (fun _ -> recv reader) in
  stop := true;
  List.iter close clients;
  Thread.join server;
  let trace_ids =
    List.map
      (fun line ->
        check_prefix "entry" "slow trace=" line;
        (* trace IDs are process-unique even under concurrency, and every
           entry carries the nested per-phase span breakdown *)
        List.iter
          (fun fragment ->
            Alcotest.(check bool)
              (Fmt.str "%S has %S" line fragment)
              true
              (Astring_contains.contains line fragment))
          [ "kind=normalize"; "spec=Queue"; "spans=parse:"; "dispatch:"; "respond:" ];
        Scanf.sscanf line "slow trace=%s@ " Fun.id)
      entries
  in
  Alcotest.(check int) "concurrent trace ids are distinct" announced
    (List.length (List.sort_uniq String.compare trace_ids))

(* Regression (PR 7): send_line only caught EPIPE/ECONNRESET, so an
   EINTR/EAGAIN while refusing a busy client propagated into the accept
   loop and killed the server. It must swallow every write failure and
   retry EINTR. *)
let test_send_line_errors () =
  (* serve_socket installs this process-wide; this test may run first *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* a vanished client: the peer is closed, the write raises EPIPE or
     ECONNRESET — send_line must return, not raise *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  Server.send_line a "error busy server is at capacity";
  Server.send_line a "error busy server is at capacity";
  Unix.close a;
  (* an unwritable client: the send buffer is full and the fd non-blocking,
     the write raises EAGAIN — dropped client, not a dead server *)
  let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock c;
  let junk = Bytes.make 65536 'x' in
  (try
     while true do
       ignore (Unix.write c junk 0 (Bytes.length junk))
     done
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  Server.send_line c "error busy server is at capacity";
  Unix.close c;
  Unix.close d

(* Regression (PR 7): the busy-refusal write happens on the accept path;
   a signal storm landing EINTR mid-refusal must not kill the server. *)
let test_busy_refusal_under_signal_pressure () =
  let previous = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigusr1 previous)
  @@ fun () ->
  let session = queue_session () in
  let path, stop, server = start_server ~max_clients:1 session in
  let a = connect path in
  send a "normalize Queue IS_EMPTY?(NEW)";
  check_prefix "slot holder served" "ok normalize" (recv a);
  let pid = Unix.getpid () in
  let storming = Atomic.make true in
  let pounder =
    Thread.create
      (fun () ->
        while Atomic.get storming do
          Unix.kill pid Sys.sigusr1;
          Thread.delay 0.0005
        done)
      ()
  in
  (* every refusal happens while signals fly; each must be a clean busy
     line + close, and the server must survive all of them *)
  for i = 1 to 30 do
    let b = connect path in
    (match recv b with
    | r -> check_prefix (Fmt.str "refusal %d" i) "error busy" r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    close b
  done;
  Atomic.set storming false;
  Thread.join pounder;
  (* the accept loop is alive: the slot frees and a new client is served *)
  send a "quit";
  Alcotest.(check string) "quit" "ok bye" (recv a);
  close a;
  let deadline = Unix.gettimeofday () +. 10. in
  let rec served () =
    let c = connect path in
    send c "normalize Queue IS_EMPTY?(NEW)";
    let r = recv c in
    close c;
    if String.length r >= 10 && String.sub r 0 10 = "error busy" then begin
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server died under signal pressure";
      Thread.delay 0.01;
      served ()
    end
    else r
  in
  check_prefix "served after the storm" "ok normalize" (served ());
  stop := true;
  Thread.join server

(* Regression (PR 7): workers closed the client fd before retiring it from
   the registry, so a drain racing a disconnect could shutdown a recycled
   descriptor owned by a different connection. Under load, stop mid-traffic:
   every client must end with a complete answer or a clean EOF, and the
   server must drain and join. *)
let test_drain_retire_race_under_load () =
  let session = queue_session () in
  let path, stop, server = start_server ~max_clients:16 session in
  let n = 8 in
  let anomalies = Array.make n "" in
  let clients =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            (* churn: short-lived connections so fd numbers recycle while
               drain may be walking the registry *)
            try
              while not !stop do
                let c = connect path in
                (match send c "normalize Queue FRONT(ADD(NEW, ITEM1))" with
                | () -> (
                  match recv c with
                  | "<eof>" -> () (* drained before the answer was read *)
                  | r
                    when String.length r >= 10
                         && String.equal (String.sub r 0 10) "error busy" ->
                    (* closed connections linger in the registry until their
                       worker retires them, so churn can transiently hit the
                       cap: busy is backpressure, not an anomaly *)
                    ()
                  | r -> check_prefix "mid-load answer" "ok normalize" r
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
                | exception Sys_error _ ->
                  () (* drain closed the connection under our write *));
                close c
              done
            with
            | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
              () (* the listener is already gone: clean shutdown *)
            | e -> anomalies.(i) <- Printexc.to_string e)
          ())
  in
  Thread.delay 0.3;
  stop := true;
  (* the server must drain every in-flight worker and join its domains *)
  Thread.join server;
  Array.iter Thread.join clients;
  Array.iteri
    (fun i a ->
      if not (String.equal a "") then
        Alcotest.failf "client %d saw an anomaly during drain: %s" i a)
    anomalies;
  Alcotest.(check bool) "socket removed after drain" false
    (Sys.file_exists path)

(* The merge-law acceptance: after a concurrent multi-domain run, the
   scraped Prometheus counters equal the exact sum of what the clients
   did — nothing lost to striping, nothing double-counted. *)
let test_multi_domain_exact_metrics () =
  let session = Session.create ~stripes:4 [ Queue_spec.spec ] in
  let path, stop, server = start_server ~domains:4 ~max_clients:32 session in
  let k = 6 and per = 25 in
  let workers =
    List.init k (fun i ->
        Thread.create
          (fun () ->
            let c = connect path in
            for _ = 1 to per do
              send c
                (Fmt.str "normalize Queue FRONT(ADD(NEW, ITEM%d))"
                   ((i mod 3) + 1));
              check_prefix "answered" "ok normalize" (recv c)
            done;
            close c)
          ())
  in
  List.iter Thread.join workers;
  let scraper = connect path in
  send scraper "metrics";
  let header = recv scraper in
  let lines =
    try Scanf.sscanf header "ok metrics lines=%d" Fun.id
    with Scanf.Scan_failure _ | End_of_file ->
      Alcotest.failf "unexpected metrics header %S" header
  in
  let body = List.init lines (fun _ -> recv scraper) in
  close scraper;
  stop := true;
  Thread.join server;
  let value_of name =
    let prefix = name ^ " " in
    match
      List.find_opt
        (fun l ->
          String.length l > String.length prefix
          && String.equal (String.sub l 0 (String.length prefix)) prefix)
        body
    with
    | None -> Alcotest.failf "series %s not scraped" name
    | Some l ->
      float_of_string
        (String.sub l (String.length prefix)
           (String.length l - String.length prefix))
  in
  (* k*per normalizes + the metrics request itself, counted before its
     own snapshot *)
  Alcotest.(check (float 0.0))
    "requests_total is the exact sum across stripes"
    (float_of_int ((k * per) + 1))
    (value_of "adtc_requests_total");
  Alcotest.(check (float 0.0))
    "per-kind normalize counter is exact"
    (float_of_int (k * per))
    (value_of "adtc_requests_kind_total{kind=\"normalize\"}");
  (* the scrape's own latency is observed only after its response was
     rendered, so the histogram holds exactly the k*per normalizes *)
  Alcotest.(check (float 0.0))
    "latency histogram lost no observation"
    (float_of_int (k * per))
    (value_of "adtc_request_latency_seconds_count");
  Alcotest.(check (float 0.0))
    "no errors under concurrency" 0.
    (value_of "adtc_errors_total")

let test_refuses_non_socket () =
  let path = Filename.temp_file "adtc-not-a-socket" ".txt" in
  let oc = open_out path in
  output_string oc "precious data\n";
  close_out oc;
  let session = queue_session () in
  (match Server.serve_socket ~handle_signals:false session ~path with
  | () -> Alcotest.fail "serve_socket bound over a regular file"
  | exception Failure message ->
    Alcotest.(check bool)
      (Fmt.str "refusal names the problem: %S" message)
      true
      (Astring_contains.contains message "refusing"));
  (* and the file is untouched *)
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file survived" "precious data" line

let suite =
  [
    Helpers.case "concurrent clients get isolated responses, disconnects survive"
      test_concurrent_clients;
    Helpers.case "busy backpressure beyond max-clients" test_busy_backpressure;
    Helpers.case "concurrent tracing: distinct ids, nested spans in the slowlog"
      test_concurrent_tracing;
    Helpers.case "send_line swallows EPIPE/EAGAIN and survives" test_send_line_errors;
    Helpers.case "busy refusal survives signal pressure"
      test_busy_refusal_under_signal_pressure;
    Helpers.case "drain vs retire: no fd race under churn"
      test_drain_retire_race_under_load;
    Helpers.case "multi-domain metrics merge exactly on scrape"
      test_multi_domain_exact_metrics;
    Helpers.case "refuses to unlink a non-socket path" test_refuses_non_socket;
  ]
