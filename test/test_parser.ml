open Adt
open Helpers

let queue_src =
  {|
spec Item
  sort Item
  ops
    I1 : -> Item
    I2 : -> Item
  constructors I1 I2
end

spec Queue
  uses Item
  sort Queue
  ops
    NEW : -> Queue
    ADD : Queue Item -> Queue
    FRONT : Queue -> Item
    IS_EMPTY? : Queue -> Bool
  constructors NEW ADD
  vars
    q : Queue
    i : Item
  axioms
    [1] IS_EMPTY?(NEW) = true
    [2] IS_EMPTY?(ADD(q, i)) = false
    [3] FRONT(NEW) = error
    [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
end
|}

let queue () = parse_spec_exn queue_src

let test_parse_spec_shape () =
  let spec = queue () in
  Alcotest.(check string) "name" "Queue" (Spec.name spec);
  Alcotest.(check int) "axioms (uses included)" 4 (List.length (Spec.axioms spec));
  Alcotest.(check bool) "sorts" true
    (Signature.mem_sort (Sort.v "Queue") (Spec.signature spec)
    && Signature.mem_sort (Sort.v "Item") (Spec.signature spec));
  Alcotest.(check bool) "constructors merged" true
    (Spec.is_constructor_name "NEW" spec && Spec.is_constructor_name "I1" spec)

let test_parse_specs_list () =
  match Parser.parse_specs queue_src with
  | Ok [ item; queue ] ->
    Alcotest.(check string) "first" "Item" (Spec.name item);
    Alcotest.(check string) "second" "Queue" (Spec.name queue)
  | Ok other -> Alcotest.failf "expected 2 specs, got %d" (List.length other)
  | Error e -> Alcotest.failf "%a" Parser.pp_error e

let test_axiom_labels () =
  let spec = queue () in
  Alcotest.(check bool) "label 4 present" true (Spec.find_axiom "4" spec <> None)

let test_env_resolution () =
  let env name =
    if name = "Item" then Some Adt_specs.Builtins.item_spec else None
  in
  let src =
    {|
spec Box
  uses Item
  sort Box
  ops
    WRAP : Item -> Box
  constructors WRAP
end
|}
  in
  let spec =
    match Parser.parse_spec ~env src with
    | Ok s -> s
    | Error e -> Alcotest.failf "%a" Parser.pp_error e
  in
  Alcotest.(check bool) "imported op" true (Spec.find_op "ITEM1" spec <> None)

let test_unknown_uses () =
  match Parser.parse_spec "spec A uses Nothing sort A end" with
  | Error e ->
    Alcotest.(check bool) "mentions the name" true
      (Astring_contains.contains e.Parser.message "Nothing")
  | Ok _ -> Alcotest.fail "unknown uses accepted"

let test_error_positions () =
  match Parser.parse_spec "spec A\n  sort A\n  ops\n    F : A -> Mystery\nend" with
  | Error e -> Alcotest.(check int) "line" 4 e.Parser.line
  | Ok _ -> Alcotest.fail "undeclared sort accepted"

let test_duplicate_op_rejected () =
  let src = "spec A sort A ops F : -> A F : A -> A end" in
  match Parser.parse_spec src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflicting redeclaration accepted"

let test_unknown_variable_in_axiom () =
  let src =
    "spec A sort A ops C : -> A F : A -> A constructors C axioms F(ghost) = C end"
  in
  match Parser.parse_spec src with
  | Error e ->
    Alcotest.(check bool) "mentions ghost" true
      (Astring_contains.contains e.Parser.message "ghost")
  | Ok _ -> Alcotest.fail "undeclared variable accepted"

let test_rhs_sort_checked () =
  let src =
    "spec A sort A ops C : -> A IS? : A -> Bool constructors C axioms IS?(C) = C end"
  in
  match Parser.parse_spec src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ill-sorted axiom accepted"

let test_error_needs_context () =
  (* a bare error with no expected sort cannot be typed *)
  let spec = queue () in
  match Parser.parse_term spec "error" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare error accepted"

let test_parse_term_forms () =
  let spec = queue () in
  let item = Sort.v "Item" and qsort = Sort.v "Queue" in
  check_term "constant" (Term.const (Spec.op_exn spec "NEW"))
    (parse_term_exn spec "NEW");
  check_term "constant with parens" (Term.const (Spec.op_exn spec "NEW"))
    (parse_term_exn spec "NEW()");
  let t = parse_term_exn spec "FRONT(ADD(NEW, I1))" in
  Alcotest.check sort_testable "sort" item (Term.sort_of t);
  let open_term = parse_term_exn spec ~vars:[ ("q", qsort) ] "IS_EMPTY?(q)" in
  Alcotest.(check (list (pair string sort_testable))) "vars"
    [ ("q", qsort) ]
    (Term.vars open_term);
  (* if-then-else with error branch gets its sort from context *)
  let ite =
    parse_term_exn spec ~vars:[ ("q", qsort) ]
      "if IS_EMPTY?(q) then FRONT(q) else error"
  in
  Alcotest.check sort_testable "ite sort" item (Term.sort_of ite)

let test_parse_term_arity_errors () =
  let spec = queue () in
  (match Parser.parse_term spec "ADD(NEW)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing argument accepted");
  (match Parser.parse_term spec "NEW(NEW)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "extra argument accepted");
  match Parser.parse_term spec "FRONT(I1)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong sort accepted"

let test_comments_and_whitespace () =
  let src = "-- leading comment\nspec A -- trailing\n  sort A\nend\n-- done" in
  match Parser.parse_spec src with
  | Ok s -> Alcotest.(check string) "name" "A" (Spec.name s)
  | Error e -> Alcotest.failf "%a" Parser.pp_error e

let test_lexer_tokens () =
  match Lexer.tokenize "F(x) -> [1] = -- c\nY?" with
  | Ok tokens ->
    let kinds = List.map (fun t -> t.Lexer.token) tokens in
    Alcotest.(check bool) "arrow lexed" true (List.mem Lexer.Arrow kinds);
    Alcotest.(check bool) "brackets lexed" true (List.mem Lexer.Lbracket kinds)
  | Error _ -> Alcotest.fail "lexer failed"

let test_lexer_identifier_charset () =
  (* ?, ., ' as in the paper's names *)
  match Lexer.tokenize "IS.NEWSTACK? INIT' X_1" with
  | Ok tokens ->
    let idents =
      List.filter_map
        (function { Lexer.token = Lexer.Ident s; _ } -> Some s | _ -> None)
        tokens
    in
    Alcotest.(check (list string)) "idents"
      [ "IS.NEWSTACK?"; "INIT'"; "X_1" ]
      idents
  | Error _ -> Alcotest.fail "lexer failed"

let test_lexer_bad_char () =
  match Lexer.tokenize "spec @" with
  | Error e -> Alcotest.(check int) "column" 6 e.Lexer.col
  | Ok _ -> Alcotest.fail "@ accepted"

let test_round_trip_corpus () =
  List.iter
    (fun spec ->
      let src = Pretty.source_of_spec spec in
      match Parser.parse_spec src with
      | Error e -> Alcotest.failf "%s does not re-parse: %a@.%s" (Spec.name spec) Parser.pp_error e src
      | Ok spec' ->
        Alcotest.(check bool)
          (Spec.name spec ^ " signature survives")
          true
          (Signature.equal (Spec.signature spec) (Spec.signature spec'));
        Alcotest.(check int)
          (Spec.name spec ^ " axiom count survives")
          (List.length (Spec.axioms spec))
          (List.length (Spec.axioms spec'));
        List.iter2
          (fun a b ->
            if not (Axiom.same_equation a b) then
              Alcotest.failf "axiom drift: %a vs %a" Axiom.pp a Axiom.pp b)
          (Spec.axioms spec) (Spec.axioms spec'))
    [
      nat_spec;
      Adt_specs.Queue_spec.spec;
      Adt_specs.Stack_spec.default.Adt_specs.Stack_spec.spec;
      Adt_specs.Array_spec.default.Adt_specs.Array_spec.spec;
      Adt_specs.Symboltable_spec.spec;
      Adt_specs.Knowlist_spec.spec;
      Adt_specs.Bounded_queue_spec.spec;
    ]

(* ---- term-level round trip: parse (to_string t) = t ------------------ *)

(* [Test_diff]'s generator occasionally reuses a variable name at two
   different sorts (harmless for rewriting, unrepresentable in a [vars]
   declaration); such terms are skipped rather than generated around *)
let vars_consistent t =
  let tbl = Hashtbl.create 8 in
  Term.fold
    (fun ok sub ->
      ok
      &&
      match Term.view sub with
      | Term.Var (x, s) -> (
        match Hashtbl.find_opt tbl x with
        | Some s' -> Sort.equal s s'
        | None ->
          Hashtbl.add tbl x s;
          true)
      | _ -> true)
    true t

let term_round_trip_cases =
  List.map
    (fun spec ->
      let ctx = Helpers.Corpus_gen.ctx_of spec in
      qcheck ~count:200
        (Fmt.str "parse (pretty t) = t over %s" (Spec.name spec))
        (Helpers.Corpus_gen.term_gen ctx)
        (fun t ->
          (not (vars_consistent t))
          ||
          match
            Parser.parse_term spec ~vars:(Term.vars t)
              ~expected:(Term.sort_of t) (Term.to_string t)
          with
          | Ok t' -> Term.equal t t'
          | Error _ -> false))
    Adt_specs.Corpus.all

(* ---- regression: every shipped .adt file parses and round-trips ------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".adt")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

(* cwd is test/ under [dune runtest] but the project root under
   [dune exec test/test_main.exe] *)
let specs_root =
  lazy
    (match List.find_opt Sys.file_exists [ "../specs"; "specs" ] with
    | Some dir -> dir
    | None -> Alcotest.fail "specs directory not found")

(* symboltable_only.adt expects the base_types prelude in scope *)
let base_env =
  lazy
    (match
       Parser.parse_specs
         (read_file (Filename.concat (Lazy.force specs_root) "base_types.adt"))
     with
    | Ok specs ->
      fun name -> List.find_opt (fun s -> Spec.name s = name) specs
    | Error e -> Alcotest.failf "base_types.adt: %a" Parser.pp_error e)

let check_spec_round_trip path spec =
  match Parser.parse_spec (Pretty.source_of_spec spec) with
  | Error e ->
    Alcotest.failf "%s: %s does not re-parse: %a" path (Spec.name spec)
      Parser.pp_error e
  | Ok spec' ->
    Alcotest.(check bool)
      (Fmt.str "%s: %s signature survives" path (Spec.name spec))
      true
      (Signature.equal (Spec.signature spec) (Spec.signature spec'));
    List.iter2
      (fun a b ->
        if not (Axiom.same_equation a b) then
          Alcotest.failf "%s: axiom drift: %a vs %a" path Axiom.pp a
            Axiom.pp b)
      (Spec.axioms spec) (Spec.axioms spec')

let test_shipped_files_round_trip () =
  let root = Lazy.force specs_root in
  let files =
    spec_files root @ spec_files (Filename.concat root "faulty")
  in
  Alcotest.(check bool) "files found" true (List.length files >= 14);
  List.iter
    (fun path ->
      match Parser.parse_specs ~env:(Lazy.force base_env) (read_file path) with
      | Error e -> Alcotest.failf "%s: %a" path Parser.pp_error e
      | Ok specs ->
        Alcotest.(check bool) (path ^ " nonempty") true (specs <> []);
        List.iter (check_spec_round_trip path) specs)
    files

let suite =
  [
    case "specification shape" test_parse_spec_shape;
    case "multiple specifications per file" test_parse_specs_list;
    case "axiom labels" test_axiom_labels;
    case "uses resolved through the environment" test_env_resolution;
    case "unknown uses rejected" test_unknown_uses;
    case "error positions point at the problem" test_error_positions;
    case "conflicting redeclarations rejected" test_duplicate_op_rejected;
    case "undeclared axiom variables rejected" test_unknown_variable_in_axiom;
    case "axiom sides must agree in sort" test_rhs_sort_checked;
    case "bare error needs sort context" test_error_needs_context;
    case "term forms" test_parse_term_forms;
    case "term arity and sort errors" test_parse_term_arity_errors;
    case "comments and whitespace" test_comments_and_whitespace;
    case "lexer token coverage" test_lexer_tokens;
    case "lexer accepts the paper's identifier charset"
      test_lexer_identifier_charset;
    case "lexer reports bad characters" test_lexer_bad_char;
    case "pretty-printed corpus re-parses (round trip)" test_round_trip_corpus;
    case "every shipped .adt file parses and round-trips"
      test_shipped_files_round_trip;
  ]
  @ term_round_trip_cases
