(* Differential testing of the rewrite engine.

   The indexed, hash-consed engine ([Rewrite.normalize] and friends) must
   agree with [Rewrite.Reference] — the naive linear-scan, structural-
   equality engine — on every term, under both strategies, including the
   fuel-exhaustion boundary and error strictness. Random well-sorted terms
   are generated over the FULL signature of each corpus specification
   (defined operations, constructor subterms via [Enum], occasional
   variables, [error], and if-then-else), so the tests exercise rule
   dispatch, strict error propagation, lazy conditionals, and stuck terms
   alike.

   The default run checks 1,000 terms per corpus spec; set
   [TEST_DIFF_LONG=1] (the weekly CI fuzz job does) to check 5,000. *)

open Adt
open Helpers
open Adt_specs

let long_mode =
  match Sys.getenv_opt "TEST_DIFF_LONG" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let count_per_spec = if long_mode then 5_000 else 1_000
let fuel = 3_000
let tight_fuel = 12

(* atoms for the corpus's parameter sorts, so [Enum] can populate them *)
let atoms sort =
  match Sort.name sort with
  | "Item" -> List.init 3 (fun i -> Builtins.item (i + 1))
  | "Identifier" -> List.map Identifier.id [ "X"; "Y"; "Z" ]
  | _ -> []

type ctx = { spec : Spec.t; universe : Enum.universe; has_bool : bool }

let ctx_of spec =
  {
    spec;
    universe = Enum.universe ~atoms spec;
    has_bool = Signature.mem_sort Sort.bool (Spec.signature spec);
  }

let pick st l = List.nth l (Random.State.int st (List.length l))

(* a small leaf: usually a ground constructor term, sometimes a variable,
   [error] when the sort has no generators at all *)
let leaf ctx sort st =
  if Random.State.int st 10 = 0 then
    Term.var (pick st [ "x"; "y" ]) sort
  else
    match Enum.random_term ctx.universe sort ~size:5 st with
    | Some t -> t
    | None -> Term.err sort

(* a random well-sorted term of the given sort over the full signature;
   [budget] bounds the recursion *)
let rec gen_term ctx sort ~budget st =
  if budget <= 0 then leaf ctx sort st
  else
    let roll = Random.State.int st 100 in
    if roll < 6 then leaf ctx sort st
    else if roll < 9 then Term.err sort
    else if roll < 22 && ctx.has_bool then
      let sub = budget / 3 in
      Term.ite
        (gen_term ctx Sort.bool ~budget:sub st)
        (gen_term ctx sort ~budget:sub st)
        (gen_term ctx sort ~budget:sub st)
    else
      match Signature.ops_with_result sort (Spec.signature ctx.spec) with
      | [] -> leaf ctx sort st
      | ops ->
        (* prefer non-nullary operations while budget remains, otherwise
           the branching process dies out and terms stay trivially small *)
        let heavy = List.filter (fun o -> Op.args o <> []) ops in
        let op = pick st (if heavy = [] then ops else heavy) in
        let arity = List.length (Op.args op) in
        let sub = if arity = 0 then 0 else (budget - 1) / arity in
        Term.app op
          (List.map (fun s -> gen_term ctx s ~budget:sub st) (Op.args op))

let root_sorts ctx =
  Sort.Set.elements (Signature.sorts (Spec.signature ctx.spec))

(* the generator draws one integer from QCheck2 (so QCHECK_SEED pins the
   whole run) and derives everything else from a private PRNG state *)
let term_gen ctx =
  QCheck2.Gen.map
    (fun seed ->
      let st = Random.State.make [| seed; 0x9e3779 |] in
      let sort = pick st (root_sorts ctx) in
      gen_term ctx sort ~budget:(16 + Random.State.int st 48) st)
    QCheck2.Gen.(int_range 0 max_int)

let catch_fuel f =
  match f () with
  | nf, steps -> Some (nf, steps)
  | exception Rewrite.Out_of_fuel _ -> None

(* the agreement relation the whole PR rests on: same normal form (both
   physically and — independently — structurally), same step count, same
   error-ness, and fuel exhaustion on one side iff on the other *)
let agree sys strategy ~fuel t =
  let reference =
    catch_fuel (fun () ->
        Rewrite.Reference.normalize_count ~strategy ~fuel sys t)
  in
  let indexed =
    catch_fuel (fun () -> Rewrite.normalize_count ~strategy ~fuel sys t)
  in
  match (reference, indexed) with
  | None, None -> true
  | Some (nf_r, n_r), Some (nf_i, n_i) ->
    Term.equal nf_r nf_i
    && Term.structural_equal nf_r nf_i
    && n_r = n_i
    && Bool.equal (Term.is_error nf_r) (Term.is_error nf_i)
  | _ -> false

(* the memoized path may take fewer steps (cache hits) but must reach the
   same normal form whenever the plain path completes *)
let memo_agrees sys t =
  match
    catch_fuel (fun () ->
        Rewrite.normalize_count ~strategy:Rewrite.Innermost ~fuel sys t)
  with
  | None -> true
  | Some (nf, _) -> (
    let memo = Rewrite.Memo.create () in
    match Rewrite.normalize_memo ~fuel ~memo sys t with
    | nf' -> Term.equal nf nf'
    | exception Rewrite.Out_of_fuel _ -> false)

let diff_case spec =
  let ctx = ctx_of spec in
  let sys = Rewrite.of_spec spec in
  qcheck ~count:count_per_spec
    (Fmt.str "indexed = reference on %s" (Spec.name spec))
    (term_gen ctx)
    (fun t ->
      agree sys Rewrite.Innermost ~fuel t
      && agree sys Rewrite.Outermost ~fuel t
      (* a deliberately tight budget, so both engines routinely hit the
         fuel wall and must agree on exactly WHEN they hit it *)
      && agree sys Rewrite.Innermost ~fuel:tight_fuel t
      && memo_agrees sys t)

let suite = List.map diff_case Corpus.all
