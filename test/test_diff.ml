(* Differential testing of the rewrite engines.

   All three matching engines must be observably identical on every term:

   - [Rewrite.Reference] — naive linear rule scan, deep structural
     equality (the pre-index oracle);
   - [Rewrite.Index] — the two-level rule index over hash-consed terms;
   - [Rewrite.Automaton] — rules compiled into a matching automaton
     ([Match_tree]), the default engine.

   Random well-sorted terms are generated over the FULL signature of each
   corpus specification ([Helpers.Corpus_gen]), so the tests exercise rule
   dispatch, strict error propagation, lazy conditionals, and stuck terms
   alike. Every engine must produce the same normal form (physically and —
   independently — structurally), the same step count, the same error-ness,
   and exhaust fuel on exactly the same terms; the memoized path must agree
   under every engine as well.

   The default run checks 1,000 terms per corpus spec; set
   [TEST_DIFF_LONG=1] (the weekly CI fuzz job does) to check 5,000. *)

open Adt
open Helpers
open Adt_specs

let long_mode =
  match Sys.getenv_opt "TEST_DIFF_LONG" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let count_per_spec = if long_mode then 5_000 else 1_000
let fuel = 3_000
let tight_fuel = 12

(* the pinned entry points: each normalizes with one fixed engine no
   matter how the system itself is pinned *)
let engines =
  [
    ( "reference",
      fun ~strategy ~fuel sys t ->
        Rewrite.Reference.normalize_count ~strategy ~fuel sys t );
    ( "index",
      fun ~strategy ~fuel sys t ->
        Rewrite.Index.normalize_count ~strategy ~fuel sys t );
    ( "automaton",
      fun ~strategy ~fuel sys t ->
        Rewrite.Automaton.normalize_count ~strategy ~fuel sys t );
  ]

let catch_fuel f =
  match f () with
  | nf, steps -> Some (nf, steps)
  | exception Rewrite.Out_of_fuel _ -> None

(* the agreement relation the whole harness rests on: same normal form
   (both physically and — independently — structurally), same step count,
   same error-ness, and fuel exhaustion on one engine iff on every
   other *)
let agree sys strategy ~fuel t =
  let outcomes =
    List.map
      (fun (_, normalize) ->
        catch_fuel (fun () -> normalize ~strategy ~fuel sys t))
      engines
  in
  match outcomes with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun outcome ->
        match (first, outcome) with
        | None, None -> true
        | Some (nf0, n0), Some (nf, n) ->
          Term.equal nf0 nf
          && Term.structural_equal nf0 nf
          && n0 = n
          && Bool.equal (Term.is_error nf0) (Term.is_error nf)
        | _ -> false)
      rest

(* the memoized path may take fewer steps (cache hits) but must reach the
   same normal form whenever the plain path completes — under every
   engine, since [normalize_memo] dispatches on the system's pin *)
let memo_agrees sys t =
  match
    catch_fuel (fun () ->
        Rewrite.Index.normalize_count ~strategy:Rewrite.Innermost ~fuel sys t)
  with
  | None -> true
  | Some (nf, _) ->
    List.for_all
      (fun engine ->
        let sys = Rewrite.with_engine engine sys in
        let memo = Rewrite.Memo.create () in
        match Rewrite.normalize_memo ~fuel ~memo sys t with
        | nf' -> Term.equal nf nf'
        | exception Rewrite.Out_of_fuel _ -> false)
      [ Rewrite.Reference; Rewrite.Index; Rewrite.Automaton ]

let diff_case spec =
  let ctx = Corpus_gen.ctx_of spec in
  let sys = Rewrite.of_spec spec in
  qcheck ~count:count_per_spec
    (Fmt.str "reference = index = automaton on %s" (Spec.name spec))
    (Corpus_gen.term_gen ctx)
    (fun t ->
      agree sys Rewrite.Innermost ~fuel t
      && agree sys Rewrite.Outermost ~fuel t
      (* a deliberately tight budget, so every engine routinely hits the
         fuel wall and all must agree on exactly WHEN they hit it *)
      && agree sys Rewrite.Innermost ~fuel:tight_fuel t
      && memo_agrees sys t)

let suite = List.map diff_case Corpus.all
