open Adt
open Helpers
open Adt_specs

let interp = Interp.create Symboltable_spec.spec
let idx = Identifier.id
let attrs = Attributes.attrs

let eval_attrs t =
  match Interp.eval interp t with
  | Interp.Value v -> Some v
  | Interp.Error_value _ -> None
  | other -> Alcotest.failf "unexpected %a" Interp.pp_value other

let eval_bool t = Option.get (Interp.eval_bool interp t)

(* the paper's scenario: nested scopes with shadowing *)
let nested =
  let open Symboltable_spec in
  add
    (add
       (enterblock (add (add init (idx "X") (attrs 1)) (idx "Y") (attrs 2)))
       (idx "X") (attrs 3))
    (idx "Z") (attrs 3)

let test_retrieve_innermost () =
  check_term "shadowed X" (attrs 3)
    (Option.get (eval_attrs (Symboltable_spec.retrieve nested (idx "X"))))

let test_retrieve_outer () =
  check_term "outer Y" (attrs 2)
    (Option.get (eval_attrs (Symboltable_spec.retrieve nested (idx "Y"))))

let test_retrieve_undeclared () =
  Alcotest.(check bool) "W undeclared" true
    (eval_attrs (Symboltable_spec.retrieve nested (idx "W")) = None)

let test_is_inblock_local_only () =
  Alcotest.(check bool) "X in current block" true
    (eval_bool (Symboltable_spec.is_inblock nested (idx "X")));
  Alcotest.(check bool) "Y only in outer block" false
    (eval_bool (Symboltable_spec.is_inblock nested (idx "Y")))

let test_leaveblock_restores () =
  let restored = Symboltable_spec.leaveblock nested in
  check_term "X back to outer" (attrs 1)
    (Option.get (eval_attrs (Symboltable_spec.retrieve restored (idx "X"))));
  Alcotest.(check bool) "Z gone" true
    (eval_attrs (Symboltable_spec.retrieve restored (idx "Z")) = None)

let test_leaveblock_of_init_errors () =
  match Interp.eval interp (Symboltable_spec.leaveblock Symboltable_spec.init) with
  | Interp.Error_value _ -> ()
  | other -> Alcotest.failf "extra end: %a" Interp.pp_value other

let test_retrieve_init_errors () =
  Alcotest.(check bool) "error" true
    (eval_attrs (Symboltable_spec.retrieve Symboltable_spec.init (idx "X")) = None)

(* reference semantics: list of scopes, each an assoc list *)
let rec reference t : (Term.t * Term.t) list list option =
  match Term.view t with
  | Term.App (op, []) when Op.name op = "INIT" -> Some [ [] ]
  | Term.App (op, [ s ]) when Op.name op = "ENTERBLOCK" ->
    Option.map (fun scopes -> [] :: scopes) (reference s)
  | Term.App (op, [ s; id; a ]) when Op.name op = "ADD" -> (
    match reference s with
    | Some (top :: rest) -> Some (((id, a) :: top) :: rest)
    | _ -> None)
  | _ -> None

let reference_retrieve scopes id =
  List.find_map
    (fun scope ->
      List.find_map (fun (k, v) -> if Term.equal k id then Some v else None) scope)
    scopes

let test_bounded_exhaustive_vs_reference () =
  (* compare the algebra against the reference on every symbol table built
     from at most 3 operations over 2 identifiers and 1 attribute *)
  let u = Enum.universe Symboltable_spec.spec in
  let tables = Enum.terms_up_to u Symboltable_spec.sort ~size:9 in
  Alcotest.(check bool) "enough cases" true (List.length tables > 50);
  List.iter
    (fun table ->
      match reference table with
      | None -> Alcotest.failf "reference failed on %a" Term.pp table
      | Some scopes ->
        List.iter
          (fun id ->
            let expected = reference_retrieve scopes id in
            let got = eval_attrs (Symboltable_spec.retrieve table id) in
            Alcotest.(check (option term_testable))
              (Fmt.str "retrieve %a from %a" Term.pp id Term.pp table)
              expected got;
            let expected_in =
              match scopes with
              | top :: _ -> List.exists (fun (k, _) -> Term.equal k id) top
              | [] -> false
            in
            Alcotest.(check bool) "is_inblock" expected_in
              (eval_bool (Symboltable_spec.is_inblock table id)))
          [ idx "X"; idx "Y" ])
    tables

let impl_models : (string * (module Symboltable_impl.S)) list =
  [ ("hash", (module Symboltable_impl.Hash)); ("assoc", (module Symboltable_impl.Assoc)) ]

let test_impls_are_models () =
  List.iter
    (fun (name, impl) ->
      let module I = (val impl : Symboltable_impl.S) in
      let u = Enum.universe Symboltable_spec.spec in
      match Model.check u I.model ~size:5 with
      | Ok n -> Alcotest.(check bool) (name ^ " ran") true (n > 100)
      | Error cex -> Alcotest.failf "%s: %a" name Model.pp_counterexample cex)
    impl_models

let test_impl_operations () =
  List.iter
    (fun (name, impl) ->
      let module I = (val impl : Symboltable_impl.S) in
      let st = I.init () in
      let st = I.add st (idx "X") (attrs 1) in
      let st = I.enterblock st in
      let st = I.add st (idx "X") (attrs 2) in
      Alcotest.(check int) (name ^ " depth") 2 (I.depth st);
      check_term (name ^ " inner X") (attrs 2) (I.retrieve_exn st (idx "X"));
      Alcotest.(check bool) (name ^ " inblock") true (I.is_inblock st (idx "X"));
      let st = I.leaveblock st in
      check_term (name ^ " outer X") (attrs 1) (I.retrieve_exn st (idx "X"));
      Alcotest.(check bool) (name ^ " undeclared") true
        (I.retrieve st (idx "W") = None);
      match I.leaveblock st with
      | exception I.Error -> ()
      | _ -> Alcotest.fail (name ^ " left the outermost scope"))
    impl_models

let test_impl_abstraction () =
  let module I = Symboltable_impl.Assoc in
  let st = I.add (I.enterblock (I.add (I.init ()) (idx "X") (attrs 1))) (idx "Y") (attrs 2) in
  check_term "Phi"
    Symboltable_spec.(
      add (enterblock (add init (idx "X") (attrs 1))) (idx "Y") (attrs 2))
    (I.abstraction st)

let test_algebra_and_impl_agree_on_random_workloads () =
  let module I = Symboltable_impl.Hash in
  let state = Random.State.make [| 23 |] in
  let ids = [| idx "X"; idx "Y"; idx "Z"; idx "W" |] in
  for _ = 1 to 60 do
    (* build the same random op sequence on both sides *)
    let rec build (term, st, depth) n =
      if n = 0 then (term, st)
      else
        let choice = Random.State.int state 4 in
        let id = ids.(Random.State.int state 4) in
        let a = attrs (1 + Random.State.int state 3) in
        let next =
          match choice with
          | 0 -> (Symboltable_spec.add term id a, I.add st id a, depth)
          | 1 -> (Symboltable_spec.enterblock term, I.enterblock st, depth + 1)
          | 2 when depth > 1 ->
            (Symboltable_spec.leaveblock term, I.leaveblock st, depth - 1)
          | _ -> (term, st, depth)
        in
        build next (n - 1)
    in
    let term, st = build (Symboltable_spec.init, I.init (), 1) 15 in
    Array.iter
      (fun id ->
        let symbolic = eval_attrs (Symboltable_spec.retrieve term id) in
        Alcotest.(check (option term_testable)) "retrieve agrees" symbolic
          (I.retrieve st id);
        let symbolic_in = eval_bool (Symboltable_spec.is_inblock term id) in
        Alcotest.(check bool) "is_inblock agrees" symbolic_in (I.is_inblock st id))
      ids
  done

let suite =
  [
    case "RETRIEVE finds the innermost declaration" test_retrieve_innermost;
    case "RETRIEVE searches enclosing scopes" test_retrieve_outer;
    case "RETRIEVE of undeclared identifiers errors" test_retrieve_undeclared;
    case "IS_INBLOCK? sees only the current scope" test_is_inblock_local_only;
    case "LEAVEBLOCK restores the enclosing scope" test_leaveblock_restores;
    case "LEAVEBLOCK of INIT errors (extra end)" test_leaveblock_of_init_errors;
    case "RETRIEVE from INIT errors" test_retrieve_init_errors;
    case "bounded-exhaustive agreement with scoped-map semantics"
      test_bounded_exhaustive_vs_reference;
    case "both implementations are models of axioms 1-9" test_impls_are_models;
    case "implementation operations" test_impl_operations;
    case "implementation abstraction function" test_impl_abstraction;
    case "algebra and implementation agree on random workloads"
      test_algebra_and_impl_agree_on_random_workloads;
  ]
