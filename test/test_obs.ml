(* lib/obs: fixed-bucket histograms, span tracing, the slow-request ring,
   and Prometheus export — plus their integration with the engine: kind
   counters stay total over the protocol, the exposition carries real
   histogram series, and a traced request's step total is exactly the
   fuel the stats counter charged for it. *)

open Adt_specs
open Engine

let contains = Astring_contains.contains

(* {1 Hist} *)

let test_hist_boundaries () =
  let h = Obs.Hist.create ~bounds:[| 1.; 2.; 5. |] in
  (* le is inclusive: a value exactly on a bound lands in that bucket *)
  List.iter (Obs.Hist.observe h) [ 1.0; 1.5; 5.0; 5.1 ];
  Alcotest.(check (array int))
    "per-bucket counts, overflow last"
    [| 1; 1; 1; 1 |]
    (Obs.Hist.bucket_counts h);
  Alcotest.(check (list (pair (float 0.) int)))
    "cumulative series"
    [ (1., 1); (2., 2); (5., 3) ]
    (Obs.Hist.cumulative h);
  Alcotest.(check int) "count" 4 (Obs.Hist.count h);
  Alcotest.(check (float 1e-9)) "sum" 12.6 (Obs.Hist.sum h);
  Alcotest.(check (float 0.)) "max" 5.1 (Obs.Hist.max_value h)

let test_hist_validation () =
  List.iter
    (fun bounds ->
      match Obs.Hist.create ~bounds with
      | _ -> Alcotest.fail "invalid bounds accepted"
      | exception Invalid_argument _ -> ())
    [ [||]; [| 1.; 1. |]; [| 2.; 1. |] ];
  let a = Obs.Hist.create ~bounds:[| 1.; 2. |] in
  let b = Obs.Hist.create ~bounds:[| 1.; 3. |] in
  match Obs.Hist.merge a b with
  | _ -> Alcotest.fail "merge across different bounds accepted"
  | exception Invalid_argument _ -> ()

(* merging two histograms is exactly observing the concatenation: integer
   values keep the float sums exact, so equality is checkable verbatim *)
let test_hist_merge_is_concat =
  let bounds = [| 1.; 2.; 4.; 8. |] in
  let of_ints xs =
    let h = Obs.Hist.create ~bounds in
    List.iter (fun n -> Obs.Hist.observe h (float_of_int n)) xs;
    h
  in
  Helpers.qcheck "hist: merge xs ys = observe (xs @ ys)"
    QCheck2.Gen.(pair (small_list (int_bound 12)) (small_list (int_bound 12)))
    (fun (xs, ys) ->
      let merged = Obs.Hist.merge (of_ints xs) (of_ints ys) in
      let whole = of_ints (xs @ ys) in
      Obs.Hist.bucket_counts merged = Obs.Hist.bucket_counts whole
      && Obs.Hist.count merged = Obs.Hist.count whole
      && Float.equal (Obs.Hist.sum merged) (Obs.Hist.sum whole)
      && Float.equal (Obs.Hist.max_value merged) (Obs.Hist.max_value whole))

(* {1 Slowlog} *)

let entry ?(trace = "t0000") latency_s =
  {
    Obs.Slowlog.trace_id = trace;
    kind = "normalize";
    spec = "Queue";
    latency_s;
    fuel = 1;
    spans = [ ("dispatch", latency_s) ];
  }

let test_slowlog_threshold () =
  let sl = Obs.Slowlog.create ~threshold_s:0.5 () in
  Alcotest.(check bool) "below threshold skipped" false
    (Obs.Slowlog.observe sl (entry 0.4));
  Alcotest.(check bool) "at threshold recorded" true
    (Obs.Slowlog.observe sl (entry 0.5));
  Alcotest.(check int) "one entry held" 1 (Obs.Slowlog.length sl)

let test_slowlog_ring_eviction () =
  let sl = Obs.Slowlog.create ~capacity:3 ~threshold_s:0. () in
  List.iter
    (fun i ->
      ignore
        (Obs.Slowlog.observe sl (entry ~trace:(Fmt.str "t%04d" i) 0.01)))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "full ring" 3 (Obs.Slowlog.length sl);
  Alcotest.(check (list string))
    "oldest evicted first, survivors oldest-first"
    [ "t0003"; "t0004"; "t0005" ]
    (List.map
       (fun e -> e.Obs.Slowlog.trace_id)
       (Obs.Slowlog.entries sl))

let test_slowlog_validation () =
  List.iter
    (fun mk ->
      match mk () with
      | _ -> Alcotest.fail "invalid slowlog accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Obs.Slowlog.create ~capacity:0 ~threshold_s:0. ());
      (fun () -> Obs.Slowlog.create ~threshold_s:(-1.) ());
    ]

(* {1 Trace} *)

let test_trace_spans_nest () =
  let now = ref 0. in
  let clock () = !now in
  let t = Obs.Trace.create ~clock "request" in
  Alcotest.(check bool) "enabled" true (Obs.Trace.enabled t);
  Obs.Trace.with_span t "parse" (fun () -> now := !now +. 0.001);
  Obs.Trace.with_span t "dispatch" (fun () ->
      Obs.Trace.with_span t "rewrite" (fun () ->
          Obs.Trace.rule t "a1";
          Obs.Trace.rule t "a1";
          Obs.Trace.rule t "a2";
          now := !now +. 0.004);
      now := !now +. 0.001);
  Obs.Trace.rule t "a3";
  let r = Option.get (Obs.Trace.finish t) in
  Alcotest.(check int) "total steps" 4 r.Obs.Trace.total_steps;
  Alcotest.(check (list (pair string int)))
    "per-rule counts, sorted"
    [ ("a1", 2); ("a2", 1); ("a3", 1) ]
    r.Obs.Trace.rules;
  let root = r.Obs.Trace.root in
  Alcotest.(check (list string))
    "children in opening order" [ "parse"; "dispatch" ]
    (List.map (fun s -> s.Obs.Trace.span_name) root.Obs.Trace.children);
  let dispatch = List.nth root.Obs.Trace.children 1 in
  let rewrite = List.hd dispatch.Obs.Trace.children in
  Alcotest.(check string) "nested span" "rewrite" rewrite.Obs.Trace.span_name;
  Alcotest.(check int) "steps land on the innermost span" 3
    rewrite.Obs.Trace.steps;
  Alcotest.(check int) "late rule lands on the root" 1 root.Obs.Trace.steps;
  Alcotest.(check (float 1e-9)) "rewrite duration" 0.004 rewrite.Obs.Trace.dur_s;
  Alcotest.(check (float 1e-9)) "dispatch includes its child" 0.005
    dispatch.Obs.Trace.dur_s;
  Alcotest.(check (list (pair string (float 1e-9))))
    "breakdown lists the direct children"
    [ ("parse", 0.001); ("dispatch", 0.005) ]
    (Obs.Trace.breakdown root);
  let json = Obs.Trace.result_to_json ~meta:[ ("request", "demo") ] r in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Fmt.str "json has %S" fragment) true
        (contains json fragment))
    [
      "\"trace_id\":";
      "\"request\":\"demo\"";
      "\"steps\":4";
      "{\"rule\":\"a1\",\"count\":2}";
      "\"name\":\"rewrite\"";
    ]

let test_trace_disabled_is_inert () =
  let t = Obs.Trace.disabled in
  Alcotest.(check bool) "disabled" false (Obs.Trace.enabled t);
  Alcotest.(check bool) "no id" true (Option.is_none (Obs.Trace.id t));
  Alcotest.(check bool) "no hook closure" true
    (Option.is_none (Obs.Trace.hook t));
  Alcotest.(check int) "with_span still runs the thunk" 7
    (Obs.Trace.with_span t "x" (fun () -> 7));
  Obs.Trace.rule t "a";
  Alcotest.(check bool) "nothing to finish" true
    (Option.is_none (Obs.Trace.finish t))

let test_trace_ids_unique_concurrently () =
  let per_thread = 50 and threads = 8 in
  let results = Array.make threads [] in
  let worker i =
    results.(i) <-
      List.init per_thread (fun _ ->
          Option.get (Obs.Trace.id (Obs.Trace.create "request")))
  in
  let ts = List.init threads (fun i -> Thread.create worker i) in
  List.iter Thread.join ts;
  let all = List.concat (Array.to_list results) in
  let distinct = List.sort_uniq String.compare all in
  Alcotest.(check int) "every concurrent tracer got its own id"
    (threads * per_thread) (List.length distinct)

(* {1 Export} *)

let test_export_rendering () =
  let h = Obs.Hist.create ~bounds:[| 0.1; 1. |] in
  List.iter (Obs.Hist.observe h) [ 0.05; 0.5; 2. ];
  let buf = Buffer.create 256 in
  Obs.Export.counter buf ~name:"x_total" ~help:"Total x." 3.;
  Obs.Export.gauge buf ~name:"x_live" ~help:"Live x." 2.;
  Obs.Export.counter buf ~name:"x_kind_total" ~help:"By kind."
    ~labelled:[ ([ ("kind", "a\"b") ], 1.) ]
    0.;
  Obs.Export.histogram buf ~name:"x_seconds" ~help:"X latency." h;
  Alcotest.(check string) "exact exposition"
    "# HELP x_total Total x.\n\
     # TYPE x_total counter\n\
     x_total 3\n\
     # HELP x_live Live x.\n\
     # TYPE x_live gauge\n\
     x_live 2\n\
     # HELP x_kind_total By kind.\n\
     # TYPE x_kind_total counter\n\
     x_kind_total{kind=\"a\\\"b\"} 1\n\
     # HELP x_seconds X latency.\n\
     # TYPE x_seconds histogram\n\
     x_seconds_bucket{le=\"0.1\"} 1\n\
     x_seconds_bucket{le=\"1\"} 2\n\
     x_seconds_bucket{le=\"+Inf\"} 3\n\
     x_seconds_sum 2.55\n\
     x_seconds_count 3\n"
    (Buffer.contents buf)

(* {1 Engine integration} *)

let queue_session ?slowlog_ms ?tracing () =
  Session.create ?slowlog_ms ?tracing [ Queue_spec.spec ]

let reply session line =
  match Dispatch.handle_line session line with
  | Dispatch.Reply r -> r
  | _ -> Alcotest.failf "expected a reply for %S" line

(* one request of every protocol kind: compiled pattern-matching makes
   this list fall out of date loudly if a constructor is added *)
let one_of_each =
  [
    Protocol.Normalize { spec = "Queue"; term = "NEW"; fuel = None };
    Protocol.Check { spec = "Queue" };
    Protocol.Skeletons { spec = "Queue" };
    Protocol.Lint { spec = "Queue" };
    Protocol.Testgen { spec = "Queue"; impl = None; count = None; seed = None };
    Protocol.Prove
      { spec = "Queue"; vars = []; lhs = "NEW"; rhs = "NEW"; fuel = None };
    Protocol.Session_open { spec = "Queue" };
    Protocol.Session_edit { spec = "Queue"; lines = 1 };
    Protocol.Session_status { spec = "Queue" };
    Protocol.Stats { verbose = false };
    Protocol.Metrics;
    Protocol.Slowlog;
    Protocol.Quit;
  ]

let test_record_kind_total () =
  let m = Metrics.create () in
  (* total: every kind the protocol can name has a counter *)
  List.iter
    (fun r -> Metrics.record_kind m (Protocol.kind_name r))
    one_of_each;
  let by_kind = Metrics.by_kind (Metrics.snapshot m) in
  Alcotest.(check int) "by_kind covers every kind" (List.length one_of_each)
    (List.length by_kind);
  List.iter
    (fun r ->
      let kind = Protocol.kind_name r in
      Alcotest.(check (option int))
        (Fmt.str "kind %s counted once" kind)
        (Some 1)
        (List.assoc_opt kind by_kind))
    one_of_each;
  (* and nothing else: an unknown kind is a bug, not a silent fold *)
  match Metrics.record_kind m "frobnicate" with
  | () -> Alcotest.fail "unknown kind accepted"
  | exception Invalid_argument _ -> ()

let test_malformed_counter () =
  let session = queue_session () in
  ignore (reply session "frobnicate Queue NEW");
  ignore (reply session "normalize Queue FRONT(");
  let m = Metrics.snapshot (Session.metrics session) in
  Alcotest.(check int) "malformed lines counted" 1 m.Metrics.malformed;
  Alcotest.(check int) "malformed also errors" 2 m.Metrics.errors;
  Alcotest.(check int) "malformed also requests" 2 m.Metrics.requests;
  Alcotest.(check bool) "stats line reports malformed" true
    (contains (reply session "stats") "malformed=1")

(* the memoized step count for FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))
   is engine-specific: the automaton's fused memo loop re-derives
   sub-cutoff redexes (the second IS_EMPTY?(NEW)) instead of probing the
   cache for them, so it charges 6 steps where the generic memo loop of
   the oracle engines charges 5 (the tiny redex is a hit there) *)
let memoized_steps () =
  match Adt.Rewrite.default_engine () with
  | Adt.Rewrite.Automaton -> 6
  | Adt.Rewrite.Index | Adt.Rewrite.Reference -> 5

let test_prometheus_exposition () =
  let session = queue_session () in
  ignore (reply session "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))");
  let body = Session.prometheus session in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Fmt.str "exposition has %S" fragment) true
        (contains body fragment))
    [
      "# TYPE adtc_request_latency_seconds histogram";
      "adtc_request_latency_seconds_bucket{le=\"";
      "adtc_request_latency_seconds_bucket{le=\"+Inf\"} 1";
      "adtc_request_latency_seconds_count 1";
      Fmt.str "adtc_request_fuel_steps_sum %d" (memoized_steps ());
      "adtc_requests_kind_total{kind=\"normalize\"} 1";
      Fmt.str "adtc_fuel_steps_total %d" (memoized_steps ());
      "adtc_malformed_requests_total 0";
      "adtc_cache_misses_total";
      "adtc_specs_loaded 1";
    ];
  (* the metrics verb frames the same body for line-oriented clients *)
  let framed = reply session "metrics" in
  (match String.index_opt framed '\n' with
  | None -> Alcotest.fail "metrics response is not multi-line"
  | Some i ->
    let first = String.sub framed 0 i in
    let rest = String.sub framed (i + 1) (String.length framed - i - 1) in
    let announced = Scanf.sscanf first "ok metrics lines=%d" Fun.id in
    Alcotest.(check int) "announced line count frames the body" announced
      (List.length (String.split_on_char '\n' rest)))

let test_slowlog_verb () =
  let off = queue_session () in
  Alcotest.(check bool) "disabled log answers an error" true
    (contains (reply off "slowlog") "error slowlog");
  let on = queue_session ~slowlog_ms:0. () in
  ignore (reply on "normalize Queue IS_EMPTY?(NEW)");
  let r = reply on "slowlog" in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Fmt.str "slowlog has %S" fragment) true
        (contains r fragment))
    [
      "ok slowlog entries=1 threshold_ms=0 capacity=64";
      "kind=normalize";
      "spec=Queue";
      "spans=parse:";
    ]

let test_trace_steps_match_fuel () =
  let session = queue_session ~tracing:true () in
  let line = "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))" in
  let outcome, result = Dispatch.handle_line_obs session line in
  (match outcome with
  | Dispatch.Reply r ->
    Alcotest.(check string) "answered"
      (Fmt.str "ok normalize steps=%d ITEM2" (memoized_steps ()))
      r
  | _ -> Alcotest.fail "expected a reply");
  let r = Option.get result in
  let m = Session.metrics session in
  let fuel = (Metrics.snapshot m).Metrics.fuel_spent in
  Alcotest.(check int) "trace step total is the stats fuel counter" fuel
    r.Obs.Trace.total_steps;
  Alcotest.(check int) "which is the response's step count"
    (memoized_steps ()) r.Obs.Trace.total_steps;
  Alcotest.(check int) "every firing is attributed to a rule"
    (memoized_steps ())
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Obs.Trace.rules);
  (* prove requests meter through the same hook *)
  let _, proved =
    Dispatch.handle_line_obs session
      "prove Queue q:Queue,i:Item IS_EMPTY?(REMOVE(ADD(q, i))) == IS_EMPTY?(q)"
  in
  let p = Option.get proved in
  let fuel' = (Metrics.snapshot m).Metrics.fuel_spent in
  Alcotest.(check int) "prove trace steps are its fuel charge"
    (fuel' - fuel) p.Obs.Trace.total_steps;
  Alcotest.(check bool) "the proof search did rewrite" true
    (p.Obs.Trace.total_steps > 0)

let suite =
  [
    Helpers.case "histogram bucket boundaries are inclusive" test_hist_boundaries;
    Helpers.case "histogram and merge validation" test_hist_validation;
    test_hist_merge_is_concat;
    Helpers.case "slowlog records at or above the threshold" test_slowlog_threshold;
    Helpers.case "slowlog ring evicts oldest-first" test_slowlog_ring_eviction;
    Helpers.case "slowlog validation" test_slowlog_validation;
    Helpers.case "trace spans nest and attribute steps" test_trace_spans_nest;
    Helpers.case "disabled tracer is inert" test_trace_disabled_is_inert;
    Helpers.case "concurrent tracers get distinct ids"
      test_trace_ids_unique_concurrently;
    Helpers.case "Prometheus text rendering, exactly" test_export_rendering;
    Helpers.case "record_kind is total over the protocol" test_record_kind_total;
    Helpers.case "malformed lines have their own counter" test_malformed_counter;
    Helpers.case "the exposition carries real histograms" test_prometheus_exposition;
    Helpers.case "the slowlog verb dumps the ring" test_slowlog_verb;
    Helpers.case "a traced request's steps equal its fuel charge"
      test_trace_steps_match_fuel;
  ]
