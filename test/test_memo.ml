open Adt
open Helpers
open Adt_specs

let test_memo_agrees_with_plain () =
  let memo = Rewrite.Memo.create () in
  (* the whole enumerated queue universe: front, remove, is_empty *)
  let u = Enum.universe Queue_spec.spec in
  let sys = Rewrite.of_spec Queue_spec.spec in
  List.iter
    (fun q ->
      List.iter
        (fun t ->
          check_term
            (Fmt.str "agree on %a" Term.pp t)
            (Rewrite.normalize sys t)
            (Rewrite.normalize_memo ~memo sys t))
        [ Queue_spec.front q; Queue_spec.remove q; Queue_spec.is_empty q ])
    (Enum.terms_up_to u Queue_spec.sort ~size:9)

let test_memo_hits_on_repetition () =
  let memo = Rewrite.Memo.create () in
  let sys = Rewrite.of_spec Queue_spec.spec in
  let q = Queue_spec.of_items [ Builtins.item 1; Builtins.item 2; Builtins.item 3 ] in
  let (_ : Term.t) = Rewrite.normalize_memo ~memo sys (Queue_spec.front q) in
  let before = Rewrite.Memo.hits memo in
  let (_ : Term.t) = Rewrite.normalize_memo ~memo sys (Queue_spec.front q) in
  Alcotest.(check bool) "second run hits" true (Rewrite.Memo.hits memo > before);
  Alcotest.(check bool) "entries cached" true (Rewrite.Memo.size memo > 0);
  Rewrite.Memo.clear memo;
  Alcotest.(check int) "cleared" 0 (Rewrite.Memo.size memo)

let test_memo_interp () =
  let plain = Interp.create Queue_spec.spec in
  let memoized = Interp.create ~memo:true Queue_spec.spec in
  Alcotest.(check bool) "plain has no stats" true (Interp.memo_stats plain = None);
  let q = Queue_spec.of_items [ Builtins.item 2; Builtins.item 1 ] in
  List.iter
    (fun t ->
      let a = Fmt.str "%a" Interp.pp_value (Interp.eval plain t) in
      let b = Fmt.str "%a" Interp.pp_value (Interp.eval memoized t) in
      Alcotest.(check string) "same value" a b)
    [
      Queue_spec.front q;
      Queue_spec.remove q;
      Queue_spec.front (Queue_spec.remove q);
      Queue_spec.front Queue_spec.new_;
    ];
  match Interp.memo_stats memoized with
  | Some s ->
    Alcotest.(check bool) "worked" true
      (s.Interp.misses > 0 && s.Interp.entries > 0);
    Alcotest.(check int) "no evictions yet" 0 s.Interp.evictions;
    Alcotest.(check int) "default capacity" Rewrite.Memo.default_capacity
      s.Interp.capacity
  | None -> Alcotest.fail "memoized session lost its memo"

let test_memo_error_propagation () =
  let memo = Rewrite.Memo.create () in
  let sys = Rewrite.of_spec Queue_spec.spec in
  let t = Queue_spec.is_empty (Queue_spec.remove Queue_spec.new_) in
  Alcotest.(check bool) "error" true
    (Term.is_error (Rewrite.normalize_memo ~memo sys t));
  (* and again, from the cache *)
  Alcotest.(check bool) "error (cached)" true
    (Term.is_error (Rewrite.normalize_memo ~memo sys t))

let test_memo_open_terms () =
  let memo = Rewrite.Memo.create () in
  check_term "open term"
    (v "n")
    (Rewrite.normalize_memo ~memo nat_system (plus z (v "n")));
  (* cached result for the open term is still correct *)
  check_term "open term again"
    (v "n")
    (Rewrite.normalize_memo ~memo nat_system (plus z (v "n")))

let test_memo_fuel () =
  let loop = Rewrite.rule ~name:"loop" ~lhs:(isz (v "x")) ~rhs:(isz (s (v "x"))) () in
  let sys = Rewrite.of_rules [ loop ] in
  let memo = Rewrite.Memo.create () in
  match Rewrite.normalize_memo ~fuel:50 ~memo sys (isz z) with
  | exception Rewrite.Out_of_fuel _ -> ()
  | t -> Alcotest.failf "terminated at %a" Term.pp t

(* the memo is now a bounded LRU: a tiny capacity forces evictions, and
   eviction must never change any answer *)
let test_memo_bounded_agrees () =
  let memo = Rewrite.Memo.create ~capacity:8 () in
  let u = Enum.universe Queue_spec.spec in
  let sys = Rewrite.of_spec Queue_spec.spec in
  List.iter
    (fun q ->
      List.iter
        (fun t ->
          check_term
            (Fmt.str "agree under eviction on %a" Term.pp t)
            (Rewrite.normalize sys t)
            (Rewrite.normalize_memo ~memo sys t);
          Alcotest.(check bool) "size bounded" true (Rewrite.Memo.size memo <= 8))
        [ Queue_spec.front q; Queue_spec.remove q; Queue_spec.is_empty q ])
    (Enum.terms_up_to u Queue_spec.sort ~size:9);
  Alcotest.(check bool) "evictions happened" true
    (Rewrite.Memo.evictions memo > 0);
  Alcotest.(check int) "capacity reported" 8 (Rewrite.Memo.capacity memo);
  Rewrite.Memo.clear memo;
  Alcotest.(check int) "clear resets evictions" 0 (Rewrite.Memo.evictions memo)

let test_memo_count () =
  let memo = Rewrite.Memo.create () in
  let sys = Rewrite.of_spec Queue_spec.spec in
  let q = Queue_spec.of_items [ Builtins.item 1; Builtins.item 2 ] in
  let nf1, steps1 = Rewrite.normalize_memo_count ~memo sys (Queue_spec.front q) in
  Alcotest.(check bool) "first run rewrites" true (steps1 > 0);
  let nf2, steps2 = Rewrite.normalize_memo_count ~memo sys (Queue_spec.front q) in
  check_term "same normal form" nf1 nf2;
  Alcotest.(check int) "cached run is free" 0 steps2

let test_memo_invalid_capacity () =
  match Rewrite.Memo.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

let suite =
  [
    case "memoized normalization agrees with plain" test_memo_agrees_with_plain;
    case "repeated terms hit the cache" test_memo_hits_on_repetition;
    case "memoized interpreter sessions" test_memo_interp;
    case "error propagation through the cache" test_memo_error_propagation;
    case "open terms are cached correctly" test_memo_open_terms;
    case "fuel still bounds memoized runs" test_memo_fuel;
    case "eviction never changes answers" test_memo_bounded_agrees;
    case "normalize_memo_count counts applications" test_memo_count;
    case "non-positive capacity rejected" test_memo_invalid_capacity;
  ]
