open Adt
open Helpers
open Adt_specs

let test_memo_agrees_with_plain () =
  let memo = Rewrite.Memo.create () in
  (* the whole enumerated queue universe: front, remove, is_empty *)
  let u = Enum.universe Queue_spec.spec in
  let sys = Rewrite.of_spec Queue_spec.spec in
  List.iter
    (fun q ->
      List.iter
        (fun t ->
          check_term
            (Fmt.str "agree on %a" Term.pp t)
            (Rewrite.normalize sys t)
            (Rewrite.normalize_memo ~memo sys t))
        [ Queue_spec.front q; Queue_spec.remove q; Queue_spec.is_empty q ])
    (Enum.terms_up_to u Queue_spec.sort ~size:9)

let test_memo_hits_on_repetition () =
  let memo = Rewrite.Memo.create () in
  let sys = Rewrite.of_spec Queue_spec.spec in
  let q = Queue_spec.of_items [ Builtins.item 1; Builtins.item 2; Builtins.item 3 ] in
  let (_ : Term.t) = Rewrite.normalize_memo ~memo sys (Queue_spec.front q) in
  let before = Rewrite.Memo.hits memo in
  let (_ : Term.t) = Rewrite.normalize_memo ~memo sys (Queue_spec.front q) in
  Alcotest.(check bool) "second run hits" true (Rewrite.Memo.hits memo > before);
  Alcotest.(check bool) "entries cached" true (Rewrite.Memo.size memo > 0);
  Rewrite.Memo.clear memo;
  Alcotest.(check int) "cleared" 0 (Rewrite.Memo.size memo)

let test_memo_interp () =
  let plain = Interp.create Queue_spec.spec in
  let memoized = Interp.create ~memo:true Queue_spec.spec in
  Alcotest.(check bool) "plain has no stats" true (Interp.memo_stats plain = None);
  let q = Queue_spec.of_items [ Builtins.item 2; Builtins.item 1 ] in
  List.iter
    (fun t ->
      let a = Fmt.str "%a" Interp.pp_value (Interp.eval plain t) in
      let b = Fmt.str "%a" Interp.pp_value (Interp.eval memoized t) in
      Alcotest.(check string) "same value" a b)
    [
      Queue_spec.front q;
      Queue_spec.remove q;
      Queue_spec.front (Queue_spec.remove q);
      Queue_spec.front Queue_spec.new_;
    ];
  match Interp.memo_stats memoized with
  | Some (_, misses, entries) ->
    Alcotest.(check bool) "worked" true (misses > 0 && entries > 0)
  | None -> Alcotest.fail "memoized session lost its memo"

let test_memo_error_propagation () =
  let memo = Rewrite.Memo.create () in
  let sys = Rewrite.of_spec Queue_spec.spec in
  let t = Queue_spec.is_empty (Queue_spec.remove Queue_spec.new_) in
  Alcotest.(check bool) "error" true
    (Term.is_error (Rewrite.normalize_memo ~memo sys t));
  (* and again, from the cache *)
  Alcotest.(check bool) "error (cached)" true
    (Term.is_error (Rewrite.normalize_memo ~memo sys t))

let test_memo_open_terms () =
  let memo = Rewrite.Memo.create () in
  check_term "open term"
    (v "n")
    (Rewrite.normalize_memo ~memo nat_system (plus z (v "n")));
  (* cached result for the open term is still correct *)
  check_term "open term again"
    (v "n")
    (Rewrite.normalize_memo ~memo nat_system (plus z (v "n")))

let test_memo_fuel () =
  let loop = Rewrite.rule ~name:"loop" ~lhs:(isz (v "x")) ~rhs:(isz (s (v "x"))) () in
  let sys = Rewrite.of_rules [ loop ] in
  let memo = Rewrite.Memo.create () in
  match Rewrite.normalize_memo ~fuel:50 ~memo sys (isz z) with
  | exception Rewrite.Out_of_fuel _ -> ()
  | t -> Alcotest.failf "terminated at %a" Term.pp t

let suite =
  [
    case "memoized normalization agrees with plain" test_memo_agrees_with_plain;
    case "repeated terms hit the cache" test_memo_hits_on_repetition;
    case "memoized interpreter sessions" test_memo_interp;
    case "error propagation through the cache" test_memo_error_propagation;
    case "open terms are cached correctly" test_memo_open_terms;
    case "fuel still bounds memoized runs" test_memo_fuel;
  ]
