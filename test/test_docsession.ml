(* Digest stability under meaning-preserving edits, the invalidation
   cone of a one-axiom edit, and the document manager's reuse
   accounting: what gets re-checked is exactly the cone, and what is
   carried over matches what a from-scratch check would have said. *)

open Adt

let parse source =
  match Parser.parse_spec source with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "test source: %a" Parser.pp_error e

let item_prelude =
  {|spec Item
  sort Item
  ops
    ITEM1 : -> Item
    ITEM2 : -> Item
    ITEM3 : -> Item
  constructors ITEM1 ITEM2 ITEM3
end

|}

let queue_body ~axiom4 ~extra_op =
  item_prelude
  ^ Fmt.str
      {|spec Queue
  uses Item
  sort Queue
  ops
    NEW : -> Queue
    ADD : Queue Item -> Queue
    FRONT : Queue -> Item
    REMOVE : Queue -> Queue
    IS_EMPTY? : Queue -> Bool%s
  constructors NEW ADD
  vars
    q : Queue
    i : Item
  axioms
    [1] IS_EMPTY?(NEW) = true
    [2] IS_EMPTY?(ADD(q, i)) = false
    [3] FRONT(NEW) = error
    [4] %s
    [5] REMOVE(NEW) = error
    [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end|}
      extra_op axiom4

let base =
  queue_body ~axiom4:"FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)"
    ~extra_op:""

(* same elaborated content: comments, whitespace, relabelled axioms *)
let cosmetic =
  item_prelude
  ^ {|-- a queue, reformatted beyond recognition
spec Queue
  uses Item
  sort Queue
  ops
    NEW : -> Queue
    ADD :   Queue Item -> Queue
    FRONT : Queue -> Item
    REMOVE : Queue   -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW ADD
  vars
    q : Queue
    i : Item
  axioms
    -- emptiness
    [10] IS_EMPTY?(NEW) = true
    [20] IS_EMPTY?(ADD(q,i)) = false
    -- observation
    [30] FRONT(NEW) = error
    [40] FRONT(ADD(q,   i)) = if IS_EMPTY?(q) then i else FRONT(q)
    [50] REMOVE(NEW) = error
    [60] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end|}

(* one semantic edit: FRONT now reads the newest item *)
let edited = queue_body ~axiom4:"FRONT(ADD(q, i)) = i" ~extra_op:""

(* a declaration change re-types the world *)
let widened =
  queue_body ~axiom4:"FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)"
    ~extra_op:"\n    BACK : Queue -> Item"

(* {1 Content digests} *)

let test_digest_stability () =
  let a = parse base and b = parse cosmetic in
  Alcotest.(check string) "spec digest survives cosmetic edits"
    (Spec_digest.spec a) (Spec_digest.spec b);
  Alcotest.(check string) "signature digest too"
    (Spec_digest.signature_digest a)
    (Spec_digest.signature_digest b);
  Alcotest.(check (list string)) "per-axiom digests align despite relabelling"
    (List.map snd (Spec_digest.axioms a))
    (List.map snd (Spec_digest.axioms b))

let test_digest_sensitivity () =
  let a = parse base and e = parse edited and w = parse widened in
  Alcotest.(check bool) "an axiom edit moves the spec digest" false
    (String.equal (Spec_digest.spec a) (Spec_digest.spec e));
  Alcotest.(check string) "but not the signature digest"
    (Spec_digest.signature_digest a)
    (Spec_digest.signature_digest e);
  Alcotest.(check bool) "a declaration moves the signature digest" false
    (String.equal
       (Spec_digest.signature_digest a)
       (Spec_digest.signature_digest w))

(* {1 The diff and its cone} *)

let test_diff_self () =
  let a = parse base in
  let d = Spec_diff.diff ~old_spec:a ~spec:(parse cosmetic) in
  Alcotest.(check bool) "cosmetic edit elaborates unchanged" true
    (Spec_diff.is_unchanged d)

let test_diff_one_axiom () =
  let a = parse base and e = parse edited in
  let d = Spec_diff.diff ~old_spec:a ~spec:e in
  Alcotest.(check bool) "no signature change" false d.Spec_diff.signature_changed;
  Alcotest.(check int) "one equation added" 1 (List.length d.Spec_diff.added);
  Alcotest.(check int) "one equation removed" 1 (List.length d.Spec_diff.removed);
  let dirty = Spec_diff.dirty_ops ~spec:e d in
  Alcotest.(check (list string)) "only FRONT is dirty" [ "FRONT" ]
    (List.map Op.name (Op.Set.elements dirty) |> List.sort String.compare);
  (* the cone is every axiom mentioning FRONT: [3] and the edited [4] *)
  let cone = Spec_diff.cone ~spec:e d in
  Alcotest.(check int) "two axioms in the cone" 2 (List.length cone)

let test_diff_signature_change () =
  let a = parse base and w = parse widened in
  let d = Spec_diff.diff ~old_spec:a ~spec:w in
  Alcotest.(check bool) "signature changed" true d.Spec_diff.signature_changed;
  Alcotest.(check int) "everything is dirty"
    (List.length (Signature.ops (Spec.signature w)))
    (Op.Set.cardinal (Spec_diff.dirty_ops ~spec:w d));
  Alcotest.(check int) "the cone is every axiom"
    (List.length (Spec.axioms w))
    (List.length (Spec_diff.cone ~spec:w d))

(* {1 The document manager} *)

let open_exn mgr ~name ~source =
  match Docsession.Manager.open_doc mgr ~name ~source with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "open %s: %s" name e

let edit_exn mgr ~name ~source =
  match Docsession.Manager.edit mgr ~name ~source with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "edit %s: %s" name e

let verdicts doc =
  List.map
    (fun (o : Docsession.Manager.oblig) ->
      (o.axiom_digest, Docsession.Manager.status_name o.status))
    doc.Docsession.Manager.obligations

let test_open_checks_everything () =
  let mgr = Docsession.Manager.create () in
  let doc = open_exn mgr ~name:"q" ~source:base in
  let s = doc.Docsession.Manager.summary in
  Alcotest.(check int) "version 1" 1 s.Docsession.Manager.version;
  Alcotest.(check int) "six axioms" 6 s.Docsession.Manager.axioms;
  Alcotest.(check int) "all checked" 6 s.Docsession.Manager.checked;
  Alcotest.(check int) "none reused" 0 s.Docsession.Manager.reused;
  Alcotest.(check bool) "no obligation claims reuse" false
    (List.exists
       (fun (o : Docsession.Manager.oblig) -> o.reused)
       doc.Docsession.Manager.obligations);
  Alcotest.(check string) "digest is the content digest"
    (Spec_digest.spec (parse base))
    doc.Docsession.Manager.digest

let test_cosmetic_edit_reuses_everything () =
  let mgr = Docsession.Manager.create () in
  let v1 = open_exn mgr ~name:"q" ~source:base in
  let v2 = edit_exn mgr ~name:"q" ~source:cosmetic in
  let s = v2.Docsession.Manager.summary in
  Alcotest.(check int) "version 2" 2 s.Docsession.Manager.version;
  Alcotest.(check int) "nothing changed" 0 s.Docsession.Manager.changed;
  Alcotest.(check int) "empty cone" 0 s.Docsession.Manager.cone;
  Alcotest.(check int) "nothing re-checked" 0 s.Docsession.Manager.checked;
  Alcotest.(check int) "all six carried over" 6 s.Docsession.Manager.reused;
  Alcotest.(check string) "digest unchanged" v1.Docsession.Manager.digest
    v2.Docsession.Manager.digest;
  Alcotest.(check (list (pair string string))) "verdicts carried verbatim"
    (verdicts v1) (verdicts v2)

let test_one_axiom_edit_rechecks_cone_only () =
  let mgr = Docsession.Manager.create () in
  let (_ : Docsession.Manager.doc) = open_exn mgr ~name:"q" ~source:base in
  let v2 = edit_exn mgr ~name:"q" ~source:edited in
  let s = v2.Docsession.Manager.summary in
  Alcotest.(check int) "one removal plus one addition" 2
    s.Docsession.Manager.changed;
  Alcotest.(check int) "the FRONT cone" 2 s.Docsession.Manager.cone;
  Alcotest.(check int) "only the cone re-checked" 2 s.Docsession.Manager.checked;
  Alcotest.(check bool) "strictly fewer than a full recheck" true
    (s.Docsession.Manager.checked < s.Docsession.Manager.axioms);
  Alcotest.(check int) "the rest carried over" 4 s.Docsession.Manager.reused;
  (* the re-checked obligations are exactly the diff's cone *)
  let cone_digests =
    Spec_diff.cone ~spec:(parse edited)
      (Spec_diff.diff ~old_spec:(parse base) ~spec:(parse edited))
    |> List.map Spec_digest.axiom
    |> List.sort String.compare
  in
  let rechecked =
    List.filter_map
      (fun (o : Docsession.Manager.oblig) ->
        if o.reused then None else Some o.axiom_digest)
      v2.Docsession.Manager.obligations
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "re-checked = cone" cone_digests rechecked;
  (* soundness: the incremental verdicts equal a from-scratch check *)
  let fresh =
    open_exn (Docsession.Manager.create ()) ~name:"q" ~source:edited
  in
  Alcotest.(check (list (pair string string)))
    "incremental verdicts = full recheck" (verdicts fresh) (verdicts v2)

let test_signature_edit_rechecks_everything () =
  let mgr = Docsession.Manager.create () in
  let (_ : Docsession.Manager.doc) = open_exn mgr ~name:"q" ~source:base in
  let v2 = edit_exn mgr ~name:"q" ~source:widened in
  let s = v2.Docsession.Manager.summary in
  Alcotest.(check bool) "flagged" true s.Docsession.Manager.sig_changed;
  Alcotest.(check int) "nothing reused" 0 s.Docsession.Manager.reused;
  Alcotest.(check int) "full recheck" s.Docsession.Manager.axioms
    s.Docsession.Manager.checked

let test_manager_errors () =
  let mgr = Docsession.Manager.create () in
  (match Docsession.Manager.edit mgr ~name:"ghost" ~source:base with
  | Ok _ -> Alcotest.fail "edit of an unopened document succeeded"
  | Error _ -> ());
  (match Docsession.Manager.open_doc mgr ~name:"bad" ~source:"spec Broken" with
  | Ok _ -> Alcotest.fail "parse error not reported"
  | Error _ -> ());
  Alcotest.(check (list string)) "a failed open leaves no document" []
    (Docsession.Manager.names mgr)

let test_status_and_names () =
  let mgr = Docsession.Manager.create () in
  let (_ : Docsession.Manager.doc) = open_exn mgr ~name:"b" ~source:base in
  let (_ : Docsession.Manager.doc) = open_exn mgr ~name:"a" ~source:base in
  Alcotest.(check (list string)) "names sorted" [ "a"; "b" ]
    (Docsession.Manager.names mgr);
  (match Docsession.Manager.status mgr ~name:"a" with
  | Some doc ->
    Alcotest.(check int) "status returns the live version" 1
      doc.Docsession.Manager.version
  | None -> Alcotest.fail "opened document has status");
  Alcotest.(check bool) "unknown name has none" true
    (Docsession.Manager.status mgr ~name:"zzz" = None)

let suite =
  [
    Alcotest.test_case "digests survive cosmetic edits" `Quick
      test_digest_stability;
    Alcotest.test_case "digests track semantic edits" `Quick
      test_digest_sensitivity;
    Alcotest.test_case "cosmetic diff is empty" `Quick test_diff_self;
    Alcotest.test_case "one-axiom diff dirties only its cone" `Quick
      test_diff_one_axiom;
    Alcotest.test_case "signature diff dirties everything" `Quick
      test_diff_signature_change;
    Alcotest.test_case "open checks every obligation" `Quick
      test_open_checks_everything;
    Alcotest.test_case "cosmetic edit reuses everything" `Quick
      test_cosmetic_edit_reuses_everything;
    Alcotest.test_case "one-axiom edit rechecks the cone only" `Quick
      test_one_axiom_edit_rechecks_cone_only;
    Alcotest.test_case "signature edit rechecks everything" `Quick
      test_signature_edit_rechecks_everything;
    Alcotest.test_case "manager errors" `Quick test_manager_errors;
    Alcotest.test_case "status and names" `Quick test_status_and_names;
  ]
