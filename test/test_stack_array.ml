open Adt
open Helpers
open Adt_specs

let stack = Stack_spec.default
let sinterp = Interp.create stack.Stack_spec.spec
let item = Builtins.item

(* {2 Stack: axioms 10-16} *)

let test_stack_axioms_behaviour () =
  let s2 = Stack_spec.of_items stack [ item 1; item 2 ] in
  (match Interp.eval sinterp (stack.Stack_spec.top s2) with
  | Interp.Value t -> check_term "top is last pushed" (item 2) t
  | other -> Alcotest.failf "top: %a" Interp.pp_value other);
  (match Interp.eval sinterp (stack.Stack_spec.pop s2) with
  | Interp.Value t -> check_term "pop" (Stack_spec.of_items stack [ item 1 ]) t
  | other -> Alcotest.failf "pop: %a" Interp.pp_value other);
  Alcotest.(check (option bool)) "empty" (Some true)
    (Interp.eval_bool sinterp (stack.Stack_spec.is_newstack stack.Stack_spec.newstack));
  Alcotest.(check (option bool)) "nonempty" (Some false)
    (Interp.eval_bool sinterp (stack.Stack_spec.is_newstack s2))

let test_stack_boundary_errors () =
  List.iter
    (fun t ->
      match Interp.eval sinterp t with
      | Interp.Error_value _ -> ()
      | other -> Alcotest.failf "%a: %a" Term.pp t Interp.pp_value other)
    [
      stack.Stack_spec.pop stack.Stack_spec.newstack;
      stack.Stack_spec.top stack.Stack_spec.newstack;
      stack.Stack_spec.replace stack.Stack_spec.newstack (item 1);
    ]

let test_replace_is_derived () =
  (* axiom 16: REPLACE(stk, arr) = PUSH(POP(stk), arr) off the empty stack *)
  let s = Stack_spec.of_items stack [ item 1; item 2 ] in
  match Interp.eval sinterp (stack.Stack_spec.replace s (item 3)) with
  | Interp.Value t ->
    check_term "replaced top" (Stack_spec.of_items stack [ item 1; item 3 ]) t
  | other -> Alcotest.failf "replace: %a" Interp.pp_value other

let test_stack_impl_model () =
  let u = Enum.universe stack.Stack_spec.spec in
  match Model.check u (Stack_impl.model stack) ~size:5 with
  | Ok n -> Alcotest.(check bool) "instances" true (n > 20)
  | Error cex -> Alcotest.failf "%a" Model.pp_counterexample cex

let test_stack_impl_ops () =
  let s = Stack_impl.push (Stack_impl.push Stack_impl.newstack (item 1)) (item 2) in
  check_term "top" (item 2) (Stack_impl.top s);
  Alcotest.(check int) "depth" 2 (Stack_impl.depth s);
  check_terms "to_list" [ item 2; item 1 ] (Stack_impl.to_list s);
  let s' = Stack_impl.replace s (item 3) in
  check_term "replace" (item 3) (Stack_impl.top s');
  Alcotest.(check bool) "pop to base" true
    (Stack_impl.is_newstack (Stack_impl.pop (Stack_impl.pop s)));
  match Stack_impl.pop Stack_impl.newstack with
  | exception Stack_impl.Error -> ()
  | _ -> Alcotest.fail "pop of newstack"

let test_stack_impl_phi () =
  let s = Stack_impl.push (Stack_impl.push Stack_impl.newstack (item 1)) (item 2) in
  check_term "Phi"
    (Stack_spec.of_items stack [ item 1; item 2 ])
    (Stack_impl.abstraction stack s)

(* {2 Array: axioms 17-20} *)

let array = Array_spec.default
let ainterp = Interp.create array.Array_spec.spec
let idx = Identifier.id
let attrs = Attributes.attrs

let test_array_read_last_assignment () =
  let arr =
    Array_spec.of_bindings array
      [ (idx "X", attrs 1); (idx "Y", attrs 2); (idx "X", attrs 3) ]
  in
  (match Interp.eval ainterp (array.Array_spec.read arr (idx "X")) with
  | Interp.Value t -> check_term "shadowed" (attrs 3) t
  | other -> Alcotest.failf "read: %a" Interp.pp_value other);
  match Interp.eval ainterp (array.Array_spec.read arr (idx "Y")) with
  | Interp.Value t -> check_term "other key" (attrs 2) t
  | other -> Alcotest.failf "read: %a" Interp.pp_value other

let test_array_undefined () =
  let arr = Array_spec.of_bindings array [ (idx "X", attrs 1) ] in
  Alcotest.(check (option bool)) "defined" (Some false)
    (Interp.eval_bool ainterp (array.Array_spec.is_undefined arr (idx "X")));
  Alcotest.(check (option bool)) "undefined" (Some true)
    (Interp.eval_bool ainterp (array.Array_spec.is_undefined arr (idx "Z")));
  match Interp.eval ainterp (array.Array_spec.read arr (idx "Z")) with
  | Interp.Error_value _ -> ()
  | other -> Alcotest.failf "read undefined: %a" Interp.pp_value other

let check_array_model (type a) name (impl : (module Array_intf.ARRAY with type t = a)) =
  let u = Enum.universe array.Array_spec.spec in
  match Model.check u (Array_intf.model impl array) ~size:4 with
  | Ok n -> Alcotest.(check bool) (name ^ " instances") true (n > 20)
  | Error cex -> Alcotest.failf "%s: %a" name Model.pp_counterexample cex

let test_array_impls_model () =
  check_array_model "assoc" (module Array_impl_assoc);
  check_array_model "hash" (module Array_impl_hash)

let test_array_impls_agree () =
  (* differential test: both implementations answer identically on random
     workloads *)
  let state = Random.State.make [| 5 |] in
  let ids = [| idx "X"; idx "Y"; idx "Z"; idx "W" |] in
  for _ = 1 to 100 do
    let n = Random.State.int state 20 in
    let ops =
      List.init n (fun _ ->
          ( ids.(Random.State.int state 4),
            attrs (1 + Random.State.int state 3) ))
    in
    let assoc =
      List.fold_left
        (fun a (k, v) -> Array_impl_assoc.assign a k v)
        (Array_impl_assoc.empty ()) ops
    in
    let hash =
      List.fold_left
        (fun a (k, v) -> Array_impl_hash.assign a k v)
        (Array_impl_hash.empty ()) ops
    in
    Array.iter
      (fun k ->
        Alcotest.(check (option term_testable))
          "read agrees"
          (Array_impl_assoc.read assoc k)
          (Array_impl_hash.read hash k);
        Alcotest.(check bool)
          "undefined agrees"
          (Array_impl_assoc.is_undefined assoc k)
          (Array_impl_hash.is_undefined hash k))
      ids;
    Alcotest.(check (list (pair term_testable term_testable)))
      "bindings agree"
      (Array_impl_assoc.bindings assoc)
      (Array_impl_hash.bindings hash)
  done

let test_hash_distributes () =
  (* different identifiers may share buckets but reads stay correct even
     with many keys (bucket-scan path) *)
  let names = List.init 40 (fun i -> Fmt.str "K%d" i) in
  let identifier = Identifier.spec_with_atoms names in
  let arr =
    List.fold_left
      (fun a name ->
        Array_impl_hash.assign a
          (Term.const (Spec.op_exn identifier ("ID_" ^ name)))
          (attrs 1))
      (Array_impl_hash.empty ())
      names
  in
  List.iter
    (fun name ->
      let k = Term.const (Spec.op_exn identifier ("ID_" ^ name)) in
      Alcotest.(check bool) "found" false (Array_impl_hash.is_undefined arr k))
    names

let suite =
  [
    case "stack axioms: LIFO behaviour" test_stack_axioms_behaviour;
    case "stack axioms: boundary errors" test_stack_boundary_errors;
    case "REPLACE as derived operation" test_replace_is_derived;
    case "linked-list stack models the axioms" test_stack_impl_model;
    case "linked-list stack operations" test_stack_impl_ops;
    case "stack abstraction function" test_stack_impl_phi;
    case "array reads return the latest assignment" test_array_read_last_assignment;
    case "array undefined behaviour" test_array_undefined;
    case "both array implementations model the axioms" test_array_impls_model;
    case "hash and assoc arrays agree (differential)" test_array_impls_agree;
    case "hash array handles many keys" test_hash_distributes;
  ]
