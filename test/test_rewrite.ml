open Adt
open Helpers

let norm ?strategy t = Rewrite.normalize ?strategy nat_system t

let test_normalize_ground () =
  check_term "0+0" z (norm (plus z z));
  check_term "2+3" (church 5) (norm (plus (church 2) (church 3)));
  check_term "nested" (church 4) (norm (plus (plus (church 1) (church 1)) (church 2)))

let test_normalize_open () =
  check_term "0+n" (v "n") (norm (plus z (v "n")));
  check_term "s under plus" (s (plus (v "m") (v "n")))
    (norm (plus (s (v "m")) (v "n")));
  check_term "irreducible" (plus (v "m") (v "n")) (norm (plus (v "m") (v "n")))

let test_outermost_agrees_here () =
  let t = plus (church 2) (plus (church 1) (church 1)) in
  check_term "same result" (norm t) (norm ~strategy:Rewrite.Outermost t)

let test_error_propagation () =
  check_term "strict op" (Term.err nat) (norm (s (Term.err nat)));
  check_term "deep" (Term.err nat) (norm (plus (church 2) (s (Term.err nat))));
  Alcotest.(check bool) "bool result too" true
    (Term.is_error (norm (isz (Term.err nat))))

let test_ite_semantics () =
  check_term "true branch" z (norm (Term.ite (isz z) z (s z)));
  check_term "false branch" (s z) (norm (Term.ite (isz (s z)) z (s z)));
  check_term "error condition" (Term.err nat)
    (norm (Term.ite (isz (Term.err nat)) z (s z)))

let test_ite_lazy () =
  (* the unselected branch may be erroneous without poisoning the result *)
  check_term "lazy else" z (norm (Term.ite (isz z) z (Term.err nat)));
  check_term "lazy then" z (norm (Term.ite (isz (s z)) (Term.err nat) z))

let test_stuck_ite_frozen () =
  (* an undecided condition freezes the branches *)
  let t = Term.ite (isz (v "x")) (plus z z) (plus z (s z)) in
  let nf = norm t in
  check_term "frozen" t nf;
  Alcotest.(check bool) "normal form" true (Rewrite.is_normal_form nat_system nf)

let test_rule_priority () =
  (* an added rule with the same head takes priority *)
  let override = Rewrite.rule ~name:"ov" ~lhs:(isz z) ~rhs:Term.ff () in
  let sys = Rewrite.add_rules [ override ] nat_system in
  check_term "override wins" Term.ff (Rewrite.normalize sys (isz z))

let test_out_of_fuel () =
  let loop = Rewrite.rule ~name:"loop" ~lhs:(isz (v "x")) ~rhs:(isz (s (v "x"))) () in
  let sys = Rewrite.of_rules [ loop ] in
  Alcotest.(check bool) "opt is None" true
    (Rewrite.normalize_opt ~fuel:100 sys (isz z) = None);
  match Rewrite.normalize ~fuel:100 sys (isz z) with
  | exception Rewrite.Out_of_fuel _ -> ()
  | t -> Alcotest.failf "terminated at %a" Term.pp t

let test_normalize_count () =
  let _, n = Rewrite.normalize_count nat_system (plus (church 3) z) in
  (* ps fires 3 times, then p0 once *)
  Alcotest.(check int) "rule applications" 4 n;
  let _, n0 = Rewrite.normalize_count nat_system z in
  Alcotest.(check int) "already normal" 0 n0

let test_joinable () =
  Alcotest.(check bool) "joinable" true
    (Rewrite.joinable nat_system (plus (church 1) (church 1)) (church 2));
  Alcotest.(check bool) "not joinable" false
    (Rewrite.joinable nat_system (church 1) (church 2))

let test_step_and_trace () =
  let t = plus (church 1) z in
  (match Rewrite.step nat_system t with
  | Some e ->
    Alcotest.(check string) "first rule" "ps" e.Rewrite.rule_used;
    check_term "before" t e.Rewrite.before
  | None -> Alcotest.fail "no step");
  let nf, events = Rewrite.trace nat_system t in
  check_term "trace reaches nf" (church 1) nf;
  Alcotest.(check int) "two proper steps" 2 (List.length events);
  (* the trace is connected: each after equals the next before *)
  let rec connected = function
    | a :: (b :: _ as rest) ->
      Term.equal a.Rewrite.after b.Rewrite.before && connected rest
    | _ -> true
  in
  Alcotest.(check bool) "connected" true (connected events)

let test_trace_includes_builtin_steps () =
  let t = Term.ite (isz z) z (s z) in
  let nf, events = Rewrite.trace nat_system t in
  check_term "nf" z nf;
  Alcotest.(check bool) "has <if> step" true
    (List.exists (fun e -> e.Rewrite.rule_used = "<if>") events)

let test_is_normal_form () =
  Alcotest.(check bool) "value" true (Rewrite.is_normal_form nat_system (church 2));
  Alcotest.(check bool) "redex" false
    (Rewrite.is_normal_form nat_system (plus z z));
  Alcotest.(check bool) "inner redex" false
    (Rewrite.is_normal_form nat_system (s (plus z z)))

let test_stats () =
  let _, stats = Rewrite.normalize_stats nat_system (plus (church 2) (church 2)) in
  Alcotest.(check int) "total" 3 stats.Rewrite.total;
  Alcotest.(check (list (pair string int)))
    "per rule"
    [ ("p0", 1); ("ps", 2) ]
    stats.Rewrite.applications

let test_rule_validation () =
  (match Rewrite.rule ~lhs:(v "x") ~rhs:z () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "variable lhs accepted");
  match Rewrite.rule ~lhs:(s z) ~rhs:(v "y") () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbound rhs variable accepted"

let test_system_building () =
  Alcotest.(check int) "of_spec size" 4 (Rewrite.size nat_system);
  let extra = Rewrite.rule ~name:"x" ~lhs:(isz z) ~rhs:Term.tt () in
  Alcotest.(check int) "add_rules" 5
    (Rewrite.size (Rewrite.add_rules [ extra ] nat_system));
  let axiom = Axiom.v ~name:"a" ~lhs:(isz z) ~rhs:Term.tt () in
  Alcotest.(check int) "add_axioms" 5
    (Rewrite.size (Rewrite.add_axioms [ axiom ] nat_system))

let suite =
  [
    case "ground normalization" test_normalize_ground;
    case "open-term normalization" test_normalize_open;
    case "outermost agrees on a confluent system" test_outermost_agrees_here;
    case "strict error propagation" test_error_propagation;
    case "if-then-else selection" test_ite_semantics;
    case "if-then-else is lazy in branches" test_ite_lazy;
    case "stuck conditionals freeze their branches" test_stuck_ite_frozen;
    case "added rules take priority" test_rule_priority;
    case "fuel exhaustion" test_out_of_fuel;
    case "rule application counting" test_normalize_count;
    case "joinability" test_joinable;
    case "single steps and traces" test_step_and_trace;
    case "traces record builtin steps" test_trace_includes_builtin_steps;
    case "normal-form recognition" test_is_normal_form;
    case "firing statistics" test_stats;
    case "rule validation" test_rule_validation;
    case "system construction" test_system_building;
  ]
