open Adt
open Helpers

let test_bind_and_find () =
  let s = Subst.singleton "x" z in
  Alcotest.(check bool) "mem" true (Subst.mem "x" s);
  check_term "find" z (Option.get (Subst.find "x" s));
  Alcotest.(check bool) "rebind same" true (Subst.bind "x" z s <> None);
  Alcotest.(check bool) "rebind different" true
    (Subst.bind "x" (Helpers.s z) s = None)

let test_of_bindings () =
  Alcotest.(check bool) "consistent" true
    (Subst.of_bindings [ ("x", z); ("y", s z) ] <> None);
  Alcotest.(check bool) "duplicate same" true
    (Subst.of_bindings [ ("x", z); ("x", z) ] <> None);
  Alcotest.(check bool) "duplicate different" true
    (Subst.of_bindings [ ("x", z); ("x", s z) ] = None)

let test_apply () =
  let sub = Option.get (Subst.of_bindings [ ("x", s z); ("y", z) ]) in
  check_term "simultaneous"
    (plus (s z) z)
    (Subst.apply sub (plus (v "x") (v "y")));
  check_term "unbound left alone" (v "w") (Subst.apply sub (v "w"));
  (* simultaneity: x -> y, y -> z applied to (x, y) gives (y, z), not (z, z) *)
  let swap = Option.get (Subst.of_bindings [ ("x", v "y"); ("y", z) ]) in
  check_term "no chaining" (plus (v "y") z)
    (Subst.apply swap (plus (v "x") (v "y")))

let test_compose () =
  let s1 = Subst.singleton "x" (s (v "y")) in
  let s2 = Subst.singleton "y" z in
  let t = plus (v "x") (v "y") in
  check_term "compose = apply-then-apply"
    (Subst.apply s2 (Subst.apply s1 t))
    (Subst.apply (Subst.compose s1 s2) t)

let test_restrict () =
  let sub = Option.get (Subst.of_bindings [ ("x", z); ("y", s z) ]) in
  let r = Subst.restrict [ ("x", nat) ] sub in
  Alcotest.(check bool) "kept" true (Subst.mem "x" r);
  Alcotest.(check bool) "dropped" false (Subst.mem "y" r)

let test_match_basic () =
  let pattern = plus (v "a") (v "b") in
  let subject = plus (s z) z in
  let sub = Option.get (Subst.match_term ~pattern subject) in
  check_term "a" (s z) (Option.get (Subst.find "a" sub));
  check_term "b" z (Option.get (Subst.find "b" sub));
  check_term "reconstructs" subject (Subst.apply sub pattern)

let test_match_nonlinear () =
  let pattern = plus (v "a") (v "a") in
  Alcotest.(check bool) "same" true
    (Subst.matches ~pattern (plus (s z) (s z)));
  Alcotest.(check bool) "different" false
    (Subst.matches ~pattern (plus (s z) z))

let test_match_rigid () =
  (* subject variables are rigid: x does not match z *)
  Alcotest.(check bool) "var vs const" false
    (Subst.matches ~pattern:(s z) (s (v "x")));
  Alcotest.(check bool) "var pattern matches var" true
    (Subst.matches ~pattern:(v "p") (v "x"))

let test_match_sort_mismatch () =
  let bool_var = Term.var "c" Sort.bool in
  Alcotest.(check bool) "sort mismatch fails" false
    (Subst.matches ~pattern:bool_var z)

let test_match_error_and_ite () =
  Alcotest.(check bool) "error matches error" true
    (Subst.matches ~pattern:(Term.err nat) (Term.err nat));
  Alcotest.(check bool) "error sort respected" false
    (Subst.matches ~pattern:(Term.err nat) (Term.err Sort.bool));
  let pat = Term.ite (Term.var "c" Sort.bool) (v "a") (v "b") in
  let subj = Term.ite Term.tt z (s z) in
  Alcotest.(check bool) "ite matches" true (Subst.matches ~pattern:pat subj)

let test_unify_basic () =
  let a = plus (v "x") z in
  let b = plus (s z) (v "y") in
  let mgu = Option.get (Subst.unify a b) in
  check_term "unified" (Subst.apply mgu a) (Subst.apply mgu b);
  check_term "x" (s z) (Option.get (Subst.find "x" mgu));
  check_term "y" z (Option.get (Subst.find "y" mgu))

let test_unify_occurs () =
  Alcotest.(check bool) "occurs check" true
    (Subst.unify (v "x") (s (v "x")) = None)

let test_unify_clash () =
  Alcotest.(check bool) "constructor clash" true
    (Subst.unify z (s (v "x")) = None)

let test_unify_var_var () =
  let mgu = Option.get (Subst.unify (v "x") (v "y")) in
  check_term "joined" (Subst.apply mgu (v "x")) (Subst.apply mgu (v "y"))

let test_unify_idempotent () =
  let a = plus (v "x") (s (v "x")) in
  let b = plus (v "y") (v "z") in
  let mgu = Option.get (Subst.unify a b) in
  let once = Subst.apply mgu a in
  check_term "idempotent" once (Subst.apply mgu once)

let test_unify_deep () =
  let a = plus (s (s (v "x"))) (v "x") in
  let b = plus (v "y") (s z) in
  let mgu = Option.get (Subst.unify a b) in
  check_term "agree" (Subst.apply mgu a) (Subst.apply mgu b);
  check_term "y value" (s (s (s z))) (Option.get (Subst.find "y" mgu))

let test_variant () =
  Alcotest.(check bool) "renaming" true
    (Subst.variant (plus (v "x") (v "y")) (plus (v "a") (v "b")));
  Alcotest.(check bool) "not a renaming" false
    (Subst.variant (plus (v "x") (v "y")) (plus (v "a") (v "a")));
  Alcotest.(check bool) "instance is not variant" false
    (Subst.variant (plus (v "x") (v "y")) (plus z (v "b")))

let suite =
  [
    case "bind and find" test_bind_and_find;
    case "of_bindings" test_of_bindings;
    case "apply is simultaneous" test_apply;
    case "compose" test_compose;
    case "restrict" test_restrict;
    case "matching binds pattern variables" test_match_basic;
    case "non-linear patterns" test_match_nonlinear;
    case "subject variables are rigid" test_match_rigid;
    case "matching respects sorts" test_match_sort_mismatch;
    case "matching error and if forms" test_match_error_and_ite;
    case "unification: basic" test_unify_basic;
    case "unification: occurs check" test_unify_occurs;
    case "unification: clash" test_unify_clash;
    case "unification: var-var" test_unify_var_var;
    case "unification: idempotent mgu" test_unify_idempotent;
    case "unification: deep" test_unify_deep;
    case "variant check" test_variant;
  ]
