(* The persistent result store: entry round-trips, every corruption mode
   (truncation, bit flips, foreign magic, version bumps) degrading to a
   counted miss, single-writer fallback, the GC bound, and the
   differential guarantee — a session answering from the store is
   byte-identical (steps aside) to one that computes everything. *)

open Adt
open Engine

let unique =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "adtc-test-persist-%d-%d" (Unix.getpid ()) !n)

let rm_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_dir f =
  let dir = unique () in
  Fun.protect ~finally:(fun () -> rm_dir dir) (fun () -> f dir)

let digest_of s = Digest.to_hex (Digest.string s)

let record kind key value = { Persist.Store.kind; key; value }

let records_t =
  Alcotest.testable
    (fun ppf rs ->
      Fmt.pf ppf "[%s]"
        (String.concat "; "
           (List.map
              (fun r ->
                Fmt.str "(%s,%s,%s)" r.Persist.Store.kind r.Persist.Store.key
                  r.Persist.Store.value)
              rs)))
    (fun a b ->
      List.length a = List.length b
      && List.for_all2
           (fun x y ->
             String.equal x.Persist.Store.kind y.Persist.Store.kind
             && String.equal x.Persist.Store.key y.Persist.Store.key
             && String.equal x.Persist.Store.value y.Persist.Store.value)
           a b)

(* {1 Round trips} *)

let test_roundtrip () =
  with_dir @@ fun dir ->
  let store = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
  let digest = digest_of "roundtrip" in
  Alcotest.check records_t "missing entry loads empty" []
    (Persist.Store.load store ~digest);
  let rs =
    [ record "nf" "FRONT(NEW)" "E 1 Item"; record "lint" "Queue" "findings=0" ]
  in
  Persist.Store.append store ~digest rs;
  Alcotest.check records_t "round trip" rs (Persist.Store.load store ~digest);
  Alcotest.(check int) "no corruption" 0 (Persist.Store.corrupt_count store)

let test_merge_replaces () =
  with_dir @@ fun dir ->
  let store = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
  let digest = digest_of "merge" in
  Persist.Store.append store ~digest [ record "nf" "k" "old"; record "m" "k" "x" ];
  Persist.Store.append store ~digest [ record "nf" "k" "new" ];
  Alcotest.check records_t "same (kind,key) replaced, others kept"
    [ record "m" "k" "x"; record "nf" "k" "new" ]
    (Persist.Store.load store ~digest)

let test_bad_digest_rejected () =
  with_dir @@ fun dir ->
  let store = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
  List.iter
    (fun digest ->
      match Persist.Store.entry_path store ~digest with
      | (_ : string) -> Alcotest.failf "digest %S accepted" digest
      | exception Invalid_argument _ -> ())
    [ "short"; String.make 32 'G'; "../../../../../../etc/passwd"; "" ]

(* {1 Corruption: always a counted miss, never a crash} *)

let entry_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let corruption_case mutate =
  with_dir @@ fun dir ->
  let store = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
  let digest = digest_of "victim" in
  Persist.Store.append store ~digest
    [ record "nf" "some key" "some value"; record "check" "k" "v" ];
  let path = Persist.Store.entry_path store ~digest in
  write_bytes path (mutate (entry_bytes path));
  let before = Persist.Store.corrupt_count store in
  Alcotest.check records_t "corrupt entry is a miss" []
    (Persist.Store.load store ~digest);
  Alcotest.(check int) "and is counted" (before + 1)
    (Persist.Store.corrupt_count store)

let test_truncated () =
  corruption_case (fun data -> String.sub data 0 (String.length data - 3));
  (* truncated into the header, too *)
  corruption_case (fun data -> String.sub data 0 5)

let test_bit_flip () =
  corruption_case (fun data ->
      let b = Bytes.of_string data in
      let i = Bytes.length b - 4 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      Bytes.to_string b)

let test_wrong_magic () =
  corruption_case (fun data -> "NOTCACHE" ^ String.sub data 8 (String.length data - 8))

let test_version_bump () =
  corruption_case (fun data ->
      let b = Bytes.of_string data in
      Bytes.set_uint16_be b 8 (Persist.Store.format_version + 1);
      Bytes.to_string b)

let test_wrong_digest_claim () =
  (* an entry renamed onto another digest's path must not be served *)
  with_dir @@ fun dir ->
  let store = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
  let d1 = digest_of "one" and d2 = digest_of "two" in
  Persist.Store.append store ~digest:d1 [ record "nf" "k" "v" ];
  Sys.rename
    (Persist.Store.entry_path store ~digest:d1)
    (Persist.Store.entry_path store ~digest:d2);
  Alcotest.check records_t "foreign entry is a miss" []
    (Persist.Store.load store ~digest:d2);
  Alcotest.(check int) "counted" 1 (Persist.Store.corrupt_count store)

(* {1 Single writer} *)

let test_second_open_read_only () =
  with_dir @@ fun dir ->
  let first = Persist.Store.open_ dir in
  let second = Persist.Store.open_ dir in
  Alcotest.(check bool) "first open writes" true
    (Persist.Store.mode first = Persist.Store.Read_write);
  Alcotest.(check bool) "second open degrades to read-only" true
    (Persist.Store.mode second = Persist.Store.Read_only);
  let digest = digest_of "writer" in
  Persist.Store.append second ~digest [ record "nf" "k" "v" ];
  Alcotest.check records_t "read-only append is a no-op" []
    (Persist.Store.load second ~digest);
  Persist.Store.append first ~digest [ record "nf" "k" "v" ];
  Alcotest.check records_t "read-only handle still reads"
    [ record "nf" "k" "v" ]
    (Persist.Store.load second ~digest);
  Persist.Store.close second;
  Persist.Store.close first;
  (* the lock is released on close: a fresh open writes again *)
  let third = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close third) @@ fun () ->
  Alcotest.(check bool) "lock released on close" true
    (Persist.Store.mode third = Persist.Store.Read_write)

(* {1 The size bound} *)

let test_gc_bound () =
  with_dir @@ fun dir ->
  let store = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
  let payload = String.make 200 'x' in
  List.iteri
    (fun i digest ->
      Persist.Store.append store ~digest [ record "nf" "k" payload ];
      (* distinct mtimes, so "oldest" is well-defined on coarse clocks *)
      let path = Persist.Store.entry_path store ~digest in
      let t = Unix.time () -. float_of_int (100 - i) in
      Unix.utimes path t t)
    [ digest_of "a"; digest_of "b"; digest_of "c"; digest_of "d" ];
  let before = Persist.Store.stats store in
  Alcotest.(check int) "four entries" 4 before.Persist.Store.files;
  let bound = (before.Persist.Store.bytes / 4 * 2) + 1 in
  let removed = Persist.Store.gc ~max_bytes:bound store in
  let after = Persist.Store.stats store in
  Alcotest.(check int) "oldest two collected" 2 removed;
  Alcotest.(check bool)
    (Fmt.str "bytes %d fit the bound %d" after.Persist.Store.bytes bound)
    true
    (after.Persist.Store.bytes <= bound);
  (* the newest entries survived *)
  Alcotest.check records_t "newest survives"
    [ record "nf" "k" payload ]
    (Persist.Store.load store ~digest:(digest_of "d"));
  Alcotest.check records_t "oldest gone" []
    (Persist.Store.load store ~digest:(digest_of "a"));
  Alcotest.(check int) "a GC'd entry is a miss, not corruption" 0
    (Persist.Store.corrupt_count store)

let test_clear () =
  with_dir @@ fun dir ->
  let store = Persist.Store.open_ dir in
  Fun.protect ~finally:(fun () -> Persist.Store.close store) @@ fun () ->
  Persist.Store.append store ~digest:(digest_of "a") [ record "nf" "k" "v" ];
  Persist.Store.append store ~digest:(digest_of "b") [ record "nf" "k" "v" ];
  Alcotest.(check int) "clear removes every entry" 2 (Persist.Store.clear store);
  Alcotest.(check int) "empty after clear" 0
    (Persist.Store.stats store).Persist.Store.files

(* {1 The differential guarantee}

   A session with a store — cold, warm-restarted, or re-keyed by an edit —
   answers normalize requests with the same normal forms as a storeless
   session. Steps differ by design (a persistent hit reports 0), so the
   comparison masks them. *)

let mask_steps line =
  String.concat " "
    (List.map
       (fun w ->
         if String.length w >= 6 && String.equal (String.sub w 0 6) "steps=" then
           "steps=_"
         else w)
       (String.split_on_char ' ' line))

let reply session line =
  match Dispatch.handle_line session line with
  | Dispatch.Reply r -> r
  | Dispatch.Silent | Dispatch.Closed -> Alcotest.failf "no reply for %S" line

let queue_requests =
  (* random constructor queues under each observer, plus repeats so the
     warm run exercises genuine hits *)
  let spec = Adt_specs.Queue_spec.spec in
  let universe = Enum.universe spec in
  let rng = Random.State.make [| 0x5eed |] in
  let qs =
    List.init 12 (fun i ->
        match
          Enum.random_term universe (Sort.v "Queue") ~size:(2 + (i mod 5)) rng
        with
        | Some q -> q
        | None -> Alcotest.fail "Queue has generators")
  in
  List.concat_map
    (fun q ->
      List.map
        (fun op -> Fmt.str "normalize Queue %s(%s)" op (Term.to_string q))
        [ "FRONT"; "REMOVE"; "IS_EMPTY?" ])
    qs

let test_differential_cold_warm () =
  with_dir @@ fun dir ->
  let specs = [ Adt_specs.Queue_spec.spec ] in
  let bare = Session.create specs in
  let expected = List.map (fun r -> mask_steps (reply bare r)) queue_requests in
  (* cold: computes and records *)
  let store1 = Persist.Store.open_ dir in
  let cold = Session.create ~store:store1 specs in
  let cold_got = List.map (fun r -> mask_steps (reply cold r)) queue_requests in
  Alcotest.(check (list string)) "cold = uncached" expected cold_got;
  Session.persist_flush cold;
  Persist.Store.close store1;
  (* warm: a new process would start exactly here *)
  let store2 = Persist.Store.open_ dir in
  let warm = Session.create ~store:store2 specs in
  let warm_got = List.map (fun r -> mask_steps (reply warm r)) queue_requests in
  Alcotest.(check (list string)) "warm = uncached" expected warm_got;
  (match Session.persist_totals warm with
  | None -> Alcotest.fail "warm session has a store"
  | Some t ->
    Alcotest.(check bool)
      (Fmt.str "warm run hits (%d hits, %d misses)" t.Session.hits
         t.Session.misses)
      true
      (t.Session.hits > 0 && t.Session.misses = 0);
    Alcotest.(check int) "nothing corrupt" 0 t.Session.corrupt;
    Alcotest.(check bool) "warm entries loaded" true (t.Session.loaded > 0));
  Persist.Store.close store2

let edited_queue_source =
  {|spec Item
  sort Item
  ops
    ITEM1 : -> Item
    ITEM2 : -> Item
    ITEM3 : -> Item
  constructors ITEM1 ITEM2 ITEM3
end

spec Queue
  uses Item
  sort Queue
  ops
    NEW : -> Queue
    ADD : Queue Item -> Queue
    FRONT : Queue -> Item
    REMOVE : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW ADD
  vars
    q : Queue
    i : Item
  axioms
    [1] IS_EMPTY?(NEW) = true
    [2] IS_EMPTY?(ADD(q, i)) = false
    [3] FRONT(NEW) = error
    [4] FRONT(ADD(q, i)) = i
    [5] REMOVE(NEW) = error
    [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end|}

let test_differential_post_edit () =
  (* a semantic edit changes the digest: a store warmed by the original
     specification must never serve its normal forms to the edited one
     (FRONT now reads the back of the queue) *)
  with_dir @@ fun dir ->
  let edited =
    match Parser.parse_spec edited_queue_source with
    | Ok spec -> spec
    | Error e -> Alcotest.failf "edited source: %a" Parser.pp_error e
  in
  let store1 = Persist.Store.open_ dir in
  let cold = Session.create ~store:store1 [ Adt_specs.Queue_spec.spec ] in
  List.iter (fun r -> ignore (reply cold r)) queue_requests;
  Session.persist_flush cold;
  Persist.Store.close store1;
  let bare = Session.create [ edited ] in
  let expected = List.map (fun r -> mask_steps (reply bare r)) queue_requests in
  let store2 = Persist.Store.open_ dir in
  let after = Session.create ~store:store2 [ edited ] in
  let got = List.map (fun r -> mask_steps (reply after r)) queue_requests in
  Alcotest.(check (list string)) "post-edit = uncached on the edit" expected
    got;
  (match Session.persist_totals after with
  | None -> Alcotest.fail "edited session has a store"
  | Some t ->
    Alcotest.(check int) "no stale hits across the edit" 0 t.Session.hits);
  Persist.Store.close store2

(* {1 Proof and lint persistence} *)

let contains = Astring_contains.contains

let test_proof_persists_warm () =
  with_dir @@ fun dir ->
  let specs = [ Adt_specs.Queue_spec.spec ] in
  let goal =
    "prove Queue q:Queue,i:Item IS_EMPTY?(REMOVE(ADD(q, i))) == IS_EMPTY?(q)"
  in
  let open_goal = "prove Queue q:Queue IS_EMPTY?(q) == true" in
  let store1 = Persist.Store.open_ dir in
  let cold = Session.create ~store:store1 specs in
  let cold_reply = reply cold goal in
  Alcotest.(check bool) "cold run proves the goal" true
    (contains cold_reply "proved");
  Alcotest.(check bool) "open goal stays unknown" true
    (contains (reply cold open_goal) "unknown");
  Session.persist_flush cold;
  Persist.Store.close store1;
  let store2 = Persist.Store.open_ dir in
  let warm = Session.create ~store:store2 specs in
  Alcotest.(check string) "warm reply byte-identical" cold_reply
    (reply warm goal);
  (match Session.persist_totals warm with
  | None -> Alcotest.fail "warm session has a store"
  | Some t ->
    Alcotest.(check int) "the proof answered from the store" 1 t.Session.hits);
  (* Unknown is never recorded — a bigger fuel budget might still prove
     the goal, so the warm retry recomputes (a counted miss) *)
  Alcotest.(check bool) "unknown recomputed warm" true
    (contains (reply warm open_goal) "unknown");
  (match Session.persist_totals warm with
  | None -> Alcotest.fail "warm session has a store"
  | Some t -> Alcotest.(check bool) "miss counted" true (t.Session.misses > 0));
  Persist.Store.close store2

let test_lint_pass_version_invalidates () =
  with_dir @@ fun dir ->
  let spec = Adt_specs.Queue_spec.spec in
  let digest = Spec_digest.spec spec in
  (* a verdict persisted by the previous analysis pass set lives under its
     own versioned kind; the current engine must re-analyse, not replay *)
  let stale_kind = Fmt.str "lint/p%d" (Analysis.Lint.pass_version - 1) in
  let store1 = Persist.Store.open_ dir in
  Persist.Store.append store1 ~digest
    [ record stale_kind "Queue" "lint Queue findings=999" ];
  Persist.Store.close store1;
  let store2 = Persist.Store.open_ dir in
  let session = Session.create ~store:store2 [ spec ] in
  let r = reply session "lint Queue" in
  Alcotest.(check bool) "stale verdict not served" false
    (contains r "findings=999");
  Alcotest.(check bool) "re-analysed clean" true (contains r "findings=0");
  (match Session.persist_totals session with
  | None -> Alcotest.fail "session has a store"
  | Some t ->
    Alcotest.(check int) "no hit from the old pass version" 0 t.Session.hits;
    Alcotest.(check bool) "the stale record is a counted miss" true
      (t.Session.misses > 0));
  Session.persist_flush session;
  Persist.Store.close store2;
  (* the fresh verdict persisted under the current pass kind serves warm *)
  let store3 = Persist.Store.open_ dir in
  let warm = Session.create ~store:store3 [ spec ] in
  Alcotest.(check string) "current kind serves warm" r
    (reply warm "lint Queue");
  (match Session.persist_totals warm with
  | None -> Alcotest.fail "warm session has a store"
  | Some t -> Alcotest.(check int) "warm hit" 1 t.Session.hits);
  Persist.Store.close store3

let suite =
  [
    Alcotest.test_case "entry round trip" `Quick test_roundtrip;
    Alcotest.test_case "merge replaces same (kind,key)" `Quick test_merge_replaces;
    Alcotest.test_case "digest validation" `Quick test_bad_digest_rejected;
    Alcotest.test_case "truncated entry is a counted miss" `Quick test_truncated;
    Alcotest.test_case "bit flip is a counted miss" `Quick test_bit_flip;
    Alcotest.test_case "foreign magic is a counted miss" `Quick test_wrong_magic;
    Alcotest.test_case "version bump is a counted miss" `Quick test_version_bump;
    Alcotest.test_case "renamed entry is a counted miss" `Quick
      test_wrong_digest_claim;
    Alcotest.test_case "second open falls back to read-only" `Quick
      test_second_open_read_only;
    Alcotest.test_case "gc enforces the byte bound oldest-first" `Quick
      test_gc_bound;
    Alcotest.test_case "clear empties the store" `Quick test_clear;
    Alcotest.test_case "differential: cold and warm match uncached" `Quick
      test_differential_cold_warm;
    Alcotest.test_case "differential: an edit never sees stale entries" `Quick
      test_differential_post_edit;
    Alcotest.test_case "proved goals persist; unknown never does" `Quick
      test_proof_persists_warm;
    Alcotest.test_case "a lint pass-version bump invalidates cached verdicts"
      `Quick test_lint_pass_version_invalidates;
  ]
