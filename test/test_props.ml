(* Property-based tests (QCheck2, registered as Alcotest cases).

   Generators produce random ground constructor terms and random operation
   sequences; properties pin down the core invariants: substitution laws,
   unification soundness, normalization idempotence and value-ness,
   LPO strictness, Phi homomorphisms, and spec-vs-implementation agreement
   on arbitrary workloads. *)

open Adt
open Helpers
open Adt_specs

let item_gen = QCheck2.Gen.map Builtins.item (QCheck2.Gen.int_range 1 4)

(* random ground Nat terms (constructor terms of the helper spec) *)
let nat_term_gen =
  QCheck2.Gen.map church (QCheck2.Gen.int_range 0 12)

(* random open terms over the helper Nat signature *)
let open_term_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof [ return z; map v (oneofl [ "x"; "y"; "z" ]) ]
      else
        frequency
          [
            (1, return z);
            (1, map v (oneofl [ "x"; "y"; "z" ]));
            (2, map s (self (n - 1)));
            (2, map2 plus (self (n / 2)) (self (n / 2)));
          ])

let prop_subst_apply_ground =
  qcheck "substituting a ground term grounds the variable" open_term_gen
    (fun t ->
      let sub = Subst.singleton "x" (church 2) in
      let t' = Subst.apply sub t in
      not (List.exists (fun (n, _) -> n = "x") (Term.vars t')))

let prop_subst_compose =
  qcheck "compose s1 s2 = apply s1 then s2"
    QCheck2.Gen.(pair open_term_gen (pair nat_term_gen nat_term_gen))
    (fun (t, (a, b)) ->
      let s1 = Subst.singleton "x" a and s2 = Subst.singleton "y" b in
      Term.equal
        (Subst.apply (Subst.compose s1 s2) t)
        (Subst.apply s2 (Subst.apply s1 t)))

let prop_match_sound =
  qcheck "matching reconstructs the subject"
    QCheck2.Gen.(pair open_term_gen nat_term_gen)
    (fun (pattern, filler) ->
      (* build a subject by grounding the pattern, then match *)
      let ground =
        Term.map_vars (fun _ _ -> filler) pattern
      in
      match Subst.match_term ~pattern ground with
      | Some sub -> Term.equal (Subst.apply sub pattern) ground
      | None -> false)

let prop_unify_sound =
  qcheck "unifiers unify" QCheck2.Gen.(pair open_term_gen open_term_gen)
    (fun (a, b) ->
      (* separate the variable namespaces first *)
      let b = Term.rename (fun x -> x ^ "'") b in
      match Subst.unify a b with
      | None -> true
      | Some mgu -> Term.equal (Subst.apply mgu a) (Subst.apply mgu b))

let prop_normalize_idempotent =
  qcheck "normalization is idempotent" open_term_gen (fun t ->
      let nf = Rewrite.normalize nat_system t in
      Term.equal nf (Rewrite.normalize nat_system nf))

let prop_ground_normal_forms_are_values =
  qcheck "ground normal forms are constructor terms" nat_term_gen (fun t ->
      let t = plus t (church 3) in
      Spec.is_constructor_ground_term nat_spec (Rewrite.normalize nat_system t))

let prop_plus_is_addition =
  qcheck "plus computes addition" QCheck2.Gen.(pair (int_range 0 15) (int_range 0 15))
    (fun (a, b) ->
      Term.equal (church (a + b)) (Rewrite.normalize nat_system (plus (church a) (church b))))

let prop_lpo_strict_on_rewrites =
  qcheck "rewriting strictly decreases the LPO" open_term_gen (fun t ->
      let prec = Ordering.dependency nat_spec in
      match Rewrite.step nat_system t with
      | None -> true
      | Some e -> Ordering.lpo_gt prec e.Rewrite.before e.Rewrite.after)

(* {2 Queue properties} *)

let queue_ops_gen =
  (* a random sequence of queue operations *)
  let open QCheck2.Gen in
  list_size (int_range 0 25)
    (oneof [ map (fun i -> `Add i) item_gen; return `Remove ])

let apply_ops_model ops =
  (* reference: OCaml list, front first; error states are sticky *)
  List.fold_left
    (fun acc op ->
      match (acc, op) with
      | None, _ -> None
      | Some l, `Add i -> Some (l @ [ i ])
      | Some (_ :: rest), `Remove -> Some rest
      | Some [], `Remove -> None)
    (Some []) ops

let apply_ops_symbolically ops =
  let interp = Interp.create Queue_spec.spec in
  let term =
    List.fold_left
      (fun q op ->
        match op with
        | `Add i -> Queue_spec.add q i
        | `Remove -> Queue_spec.remove q)
      Queue_spec.new_ ops
  in
  match Interp.eval interp term with
  | Interp.Value t -> Some t
  | Interp.Error_value _ -> None
  | other -> Alcotest.failf "unexpected %a" Interp.pp_value other

let prop_queue_spec_vs_list_model =
  qcheck ~count:300 "Queue axioms = list semantics on random programs"
    queue_ops_gen (fun ops ->
      match (apply_ops_model ops, apply_ops_symbolically ops) with
      | None, None -> true
      | Some l, Some t -> Queue_spec.to_items t = Some l
      | _ -> false)

let prop_queue_impl_vs_spec =
  qcheck ~count:300 "two-list queue = Queue axioms on random programs"
    queue_ops_gen (fun ops ->
      let impl =
        List.fold_left
          (fun acc op ->
            match (acc, op) with
            | None, _ -> None
            | Some q, `Add i -> Some (Queue_impl.add q i)
            | Some q, `Remove -> (
              match Queue_impl.remove q with
              | q' -> Some q'
              | exception Queue_impl.Error -> None))
          (Some Queue_impl.empty) ops
      in
      match (impl, apply_ops_symbolically ops) with
      | None, None -> true
      | Some q, Some t -> Term.equal (Queue_impl.abstraction q) t
      | _ -> false)

(* {2 Symbol table properties} *)

let symtab_ops_gen =
  let open QCheck2.Gen in
  let id = map Identifier.id (oneofl [ "X"; "Y"; "Z"; "W" ]) in
  let attr = map Attributes.attrs (int_range 1 3) in
  list_size (int_range 0 20)
    (oneof
       [
         map2 (fun i a -> `Add (i, a)) id attr;
         return `Enter;
         return `Leave;
         map (fun i -> `Retrieve i) id;
       ])

let prop_symtab_impl_vs_spec =
  qcheck ~count:200 "stack-of-arrays = Symboltable axioms on random programs"
    symtab_ops_gen (fun ops ->
      let module I = Symboltable_impl.Hash in
      let interp = Interp.create Symboltable_spec.spec in
      let retrieve_sym term id =
        match Interp.eval interp (Symboltable_spec.retrieve term id) with
        | Interp.Value v -> Some v
        | _ -> None
      in
      (* replay; Leave on the outermost scope is skipped on both sides *)
      let rec go term st depth = function
        | [] -> true
        | `Add (i, a) :: rest ->
          go (Symboltable_spec.add term i a) (I.add st i a) depth rest
        | `Enter :: rest ->
          go (Symboltable_spec.enterblock term) (I.enterblock st) (depth + 1) rest
        | `Leave :: rest ->
          if depth = 1 then go term st depth rest
          else go (Symboltable_spec.leaveblock term) (I.leaveblock st) (depth - 1) rest
        | `Retrieve i :: rest ->
          Option.equal Term.equal (retrieve_sym term i) (I.retrieve st i)
          && go term st depth rest
      in
      go Symboltable_spec.init (I.init ()) 1 ops)

(* {2 Enumeration properties} *)

let prop_enum_sizes =
  qcheck ~count:20 "enumerated terms have the advertised size"
    (QCheck2.Gen.int_range 1 7) (fun n ->
      let u = Enum.universe nat_spec in
      List.for_all (fun t -> Term.size t = n) (Enum.terms_exactly u nat ~size:n))

let prop_random_term_bounded =
  qcheck "random terms respect the size bound loosely"
    (QCheck2.Gen.int_range 1 30) (fun n ->
      let u = Enum.universe nat_spec in
      let state = Random.State.make [| n |] in
      match Enum.random_term u nat ~size:n state with
      | Some t -> Term.size t <= (2 * n) + 1
      | None -> false)

(* {2 Pretty/parse round trip} *)

let prop_pretty_parse_nat_terms =
  qcheck "printed ground terms re-parse" nat_term_gen (fun t ->
      match Parser.parse_term nat_spec (Term.to_string t) with
      | Ok t' -> Term.equal t t'
      | Error _ -> false)

let suite =
  [
    prop_subst_apply_ground;
    prop_subst_compose;
    prop_match_sound;
    prop_unify_sound;
    prop_normalize_idempotent;
    prop_ground_normal_forms_are_values;
    prop_plus_is_addition;
    prop_lpo_strict_on_rewrites;
    prop_queue_spec_vs_list_model;
    prop_queue_impl_vs_spec;
    prop_symtab_impl_vs_spec;
    prop_enum_sizes;
    prop_random_term_bounded;
    prop_pretty_parse_nat_terms;
  ]
